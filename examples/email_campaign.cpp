// Email-campaign scenario (the paper's motivating use case): given a
// corporate email network, pick k employees to brief so that a time-critical
// message reaches as much of the organisation as possible, and check the
// choice by simulating the spread under the TCIC model.
//
// Compares IRS-based seeding against High Degree and PageRank seeding.
//
// Run:  ./build/examples/email_campaign [--scale=0.01] [--k=10] [--runs=50]

#include <cstdio>

#include "ipin/baselines/degree.h"
#include "ipin/baselines/pagerank.h"
#include "ipin/common/flags.h"
#include "ipin/core/influence_maximization.h"
#include "ipin/core/influence_oracle.h"
#include "ipin/core/irs_approx.h"
#include "ipin/core/tcic.h"
#include "ipin/datasets/registry.h"
#include "ipin/eval/spread_eval.h"

int main(int argc, char** argv) {
  using namespace ipin;
  const FlagMap flags = FlagMap::Parse(argc, argv);
  const double scale = flags.GetDouble("scale", 0.01);
  const size_t k = static_cast<size_t>(flags.GetInt("k", 10));
  const size_t runs = static_cast<size_t>(flags.GetInt("runs", 50));

  // An Enron-like corporate email network (synthetic stand-in).
  const InteractionGraph graph = LoadSyntheticDataset("enron", scale);
  std::printf("Email network: %zu employees, %zu emails\n",
              graph.num_nodes(), graph.num_interactions());

  // The campaign message stays relevant for ~1% of the archive's time span.
  const Duration window = graph.WindowFromPercent(1.0);
  std::printf("Campaign window: %lld time units (1%% of span)\n\n",
              static_cast<long long>(window));

  // One pass over the email log builds the influence oracle.
  IrsApproxOptions options;
  options.precision = 9;
  const IrsApprox irs = IrsApprox::Compute(graph, window, options);
  const SketchInfluenceOracle oracle(&irs);

  // Greedy seed selection against the oracle.
  const SeedSelection irs_seeds = SelectSeedsCelf(oracle, k);
  const auto hd_seeds = SelectSeedsHighDegree(graph, k);
  const auto pr_seeds = SelectSeedsPageRank(graph, k);

  std::printf("IRS seeds (estimated combined reach %.0f):\n ",
              irs_seeds.total_coverage);
  for (const NodeId s : irs_seeds.seeds) std::printf(" %u", s);
  std::printf("\n\n");

  // Ground-truth check: simulate the campaign under TCIC.
  TcicOptions tcic;
  tcic.window = window;
  tcic.probability = 0.5;  // each email has a 50% chance of being read
  const double spread_irs =
      AverageTcicSpread(graph, irs_seeds.seeds, tcic, runs, 1);
  const double spread_hd = AverageTcicSpread(graph, hd_seeds, tcic, runs, 1);
  const double spread_pr = AverageTcicSpread(graph, pr_seeds, tcic, runs, 1);

  std::printf("Average employees reached over %zu simulated campaigns:\n",
              runs);
  std::printf("  IRS seeds:         %8.1f\n", spread_irs);
  std::printf("  High Degree seeds: %8.1f\n", spread_hd);
  std::printf("  PageRank seeds:    %8.1f\n", spread_pr);
  std::printf("\nIRS vs best static baseline: %+.1f%%\n",
              100.0 * (spread_irs / std::max(spread_hd, spread_pr) - 1.0));
  return 0;
}
