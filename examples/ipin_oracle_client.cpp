// ipin_oracle_client: command-line client for ipin_oracled, built on the
// retrying serve::OracleClient. Two shapes:
//
//   Single request (default) — send one request, print the response fields:
//     ipin_oracle_client --socket=/tmp/ipin.sock --seeds=1,2,3 [--mode=auto]
//         [--deadline_ms=0]
//         [--method=query|health|stats|reload|metrics|debug|reshard_status]
//         [--format=prom|json]           # metrics payload format
//         [--trace_id=<hex>]             # propagate trace context
//     Queries print "trace_id=<hex>" (the given one, or the one the client
//     generated) so the request can be found in the server's trace and
//     logs; metrics/debug print their payload document after the status
//     line.
//
//   Burst (--requests=N) — closed-loop load from --concurrency threads, each
//     with its own connection, then a one-line tally the smoke test parses,
//     with client-side latency percentiles over all completed calls:
//     ipin_oracle_client --socket=... --seeds=1,2 --requests=500
//         --concurrency=8 [--retry_overloaded]
//     => "burst: sent=500 ok=481 degraded=12 overloaded=19 deadline=0
//         unavailable=0 bad=0 transport_errors=0 retries=19
//         p50_us=812 p95_us=2210 p99_us=4105"
//
// --metrics_out=<json> writes the client-side metrics report (including the
// client.burst.latency_us histogram) on exit.
//
// Exit codes: 0 when the single request got status OK (or a burst got at
// least one OK), 1 on any other status, 2 on transport failure / bad usage.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "ipin/common/flags.h"
#include "ipin/common/string_util.h"
#include "ipin/obs/export.h"
#include "ipin/obs/metrics.h"
#include "ipin/serve/client.h"

namespace ipin {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: ipin_oracle_client (--socket=<path> | --port=<n>) "
               "[--host=127.0.0.1]\n"
               "  [--method=query|topk|health|stats|reload|metrics|debug|reshard_status]\n"
               "  [--seeds=a,b,c] [--mode=sketch|exact|auto] [--k=10] "
               "[--deadline_ms=0]\n"
               "  [--format=prom|json] [--trace_id=<hex>]\n"
               "  [--requests=<n> --concurrency=<c>] [--retry_overloaded]\n"
               "  [--max_attempts=4] [--io_timeout_ms=2000] "
               "[--metrics_out=<json>]\n");
  return 2;
}

struct Tally {
  std::atomic<size_t> ok{0};
  std::atomic<size_t> degraded{0};
  std::atomic<size_t> overloaded{0};
  std::atomic<size_t> deadline{0};
  std::atomic<size_t> unavailable{0};
  std::atomic<size_t> bad{0};
  std::atomic<size_t> transport_errors{0};
  std::atomic<size_t> retries{0};

  void Count(const std::optional<serve::Response>& response) {
    if (!response.has_value()) {
      ++transport_errors;
      return;
    }
    switch (response->status) {
      case serve::StatusCode::kOk:
        ++ok;
        if (response->degraded) ++degraded;
        break;
      case serve::StatusCode::kOverloaded:
        ++overloaded;
        break;
      case serve::StatusCode::kDeadlineExceeded:
        ++deadline;
        break;
      case serve::StatusCode::kUnavailable:
        ++unavailable;
        break;
      default:
        ++bad;
        break;
    }
  }
};

std::optional<serve::Request> BuildRequest(const FlagMap& flags) {
  serve::Request request;
  const std::string method = flags.GetString("method", "query");
  if (method == "query") {
    request.method = serve::Method::kQuery;
  } else if (method == "health") {
    request.method = serve::Method::kHealth;
  } else if (method == "stats") {
    request.method = serve::Method::kStats;
  } else if (method == "reload") {
    request.method = serve::Method::kReload;
  } else if (method == "metrics") {
    request.method = serve::Method::kMetrics;
  } else if (method == "debug") {
    request.method = serve::Method::kDebug;
  } else if (method == "reshard_status") {
    request.method = serve::Method::kReshardStatus;
  } else if (method == "topk") {
    request.method = serve::Method::kTopk;
    request.k = flags.GetInt("k", 10);
    if (request.k < 1) {
      std::fprintf(stderr, "bad --k %lld\n",
                   static_cast<long long>(request.k));
      return std::nullopt;
    }
  } else {
    std::fprintf(stderr, "bad --method '%s'\n", method.c_str());
    return std::nullopt;
  }

  const std::string format = flags.GetString("format", "prom");
  if (format == "json") {
    request.format = serve::MetricsFormat::kJson;
  } else if (format != "prom") {
    std::fprintf(stderr, "bad --format '%s'\n", format.c_str());
    return std::nullopt;
  }

  const std::string trace_hex = flags.GetString("trace_id", "");
  if (!trace_hex.empty()) {
    const auto trace_id = serve::TraceIdFromHex(trace_hex);
    if (!trace_id.has_value()) {
      std::fprintf(stderr, "bad --trace_id '%s' (1-16 hex digits)\n",
                   trace_hex.c_str());
      return std::nullopt;
    }
    request.trace_id = *trace_id;
  }

  const std::string mode = flags.GetString("mode", "auto");
  if (mode == "sketch") {
    request.mode = serve::QueryMode::kSketch;
  } else if (mode == "exact") {
    request.mode = serve::QueryMode::kExact;
  } else if (mode == "auto") {
    request.mode = serve::QueryMode::kAuto;
  } else {
    std::fprintf(stderr, "bad --mode '%s'\n", mode.c_str());
    return std::nullopt;
  }

  request.deadline_ms = flags.GetInt("deadline_ms", 0);
  // Named string: SplitString returns views into it, and a temporary dies
  // before the loop body runs (pre-C++23 range-for dangling).
  const std::string seeds_flag = flags.GetString("seeds");
  for (const auto piece : SplitString(seeds_flag, ",")) {
    const auto id = ParseInt64(piece);
    if (!id || *id < 0) {
      std::fprintf(stderr, "bad seed id '%.*s'\n",
                   static_cast<int>(piece.size()), piece.data());
      return std::nullopt;
    }
    request.seeds.push_back(static_cast<NodeId>(*id));
  }
  if (request.method == serve::Method::kQuery && request.seeds.empty()) {
    std::fprintf(stderr, "query needs --seeds\n");
    return std::nullopt;
  }
  return request;
}

int RunSingle(const serve::ClientOptions& options,
              const serve::Request& request) {
  serve::OracleClient client(options);
  std::string error;
  const auto response = client.Call(request, &error);
  if (!response.has_value()) {
    std::fprintf(stderr, "ipin_oracle_client: %s\n", error.c_str());
    return 2;
  }
  std::printf("status=%s", StatusCodeName(response->status));
  if (request.method == serve::Method::kQuery &&
      response->status == serve::StatusCode::kOk) {
    std::printf(" estimate=%.1f degraded=%d", response->estimate,
                response->degraded ? 1 : 0);
  }
  if (request.method == serve::Method::kTopk &&
      response->status == serve::StatusCode::kOk) {
    std::printf(" degraded=%d topk=", response->degraded ? 1 : 0);
    for (size_t i = 0; i < response->topk.size(); ++i) {
      std::printf("%s%llu:%.1f", i == 0 ? "" : ",",
                  static_cast<unsigned long long>(response->topk[i].first),
                  response->topk[i].second);
    }
  }
  // Scatter-gather answers carry the partial-result accounting.
  if (response->shards_total > 0) {
    std::printf(" shards_answered=%lld shards_total=%lld coverage=%.3f",
                static_cast<long long>(response->shards_answered),
                static_cast<long long>(response->shards_total),
                response->coverage);
  }
  std::printf(" epoch=%llu",
              static_cast<unsigned long long>(response->epoch));
  if (response->retry_after_ms > 0) {
    std::printf(" retry_after_ms=%lld",
                static_cast<long long>(response->retry_after_ms));
  }
  if (!response->error.empty()) {
    std::printf(" error=\"%s\"", response->error.c_str());
  }
  for (const auto& [key, value] : response->info) {
    std::printf(" %s=%g", key.c_str(), value);
  }
  const uint64_t trace_id = response->trace_id != 0 ? response->trace_id
                                                    : client.last_trace_id();
  if (trace_id != 0) {
    std::printf(" trace_id=%s", serve::TraceIdToHex(trace_id).c_str());
  }
  std::printf("\n");
  // metrics/debug carry a whole document; print it after the status line.
  if (!response->payload.empty()) {
    std::fputs(response->payload.c_str(), stdout);
    if (response->payload.back() != '\n') std::fputc('\n', stdout);
  }
  return response->status == serve::StatusCode::kOk ? 0 : 1;
}

int RunBurst(const serve::ClientOptions& options,
             const serve::Request& request, size_t requests,
             size_t concurrency) {
  if (concurrency == 0) concurrency = 1;
  if (concurrency > requests) concurrency = requests;
  Tally tally;
  std::atomic<size_t> next{0};
  std::vector<std::thread> threads;
  threads.reserve(concurrency);
  // Client-observed call latency (including any retries/backoff inside
  // Call). Explicit registry use, not the IPIN_* macros, so the burst
  // percentiles work even in obs-disabled builds.
  obs::Histogram* const latency =
      obs::MetricsRegistry::Global().GetHistogram("client.burst.latency_us");
  for (size_t t = 0; t < concurrency; ++t) {
    threads.emplace_back([&, t]() {
      serve::ClientOptions per_thread = options;
      per_thread.jitter_seed = options.jitter_seed + t;
      serve::OracleClient client(per_thread);
      while (next.fetch_add(1) < requests) {
        const auto start = std::chrono::steady_clock::now();
        tally.Count(client.Call(request));
        latency->Record(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - start)
                .count()));
      }
      tally.retries += client.retries();
    });
  }
  for (auto& thread : threads) thread.join();

  // Snapshot the histogram for the interpolated percentiles.
  obs::HistogramSnapshot snapshot;
  snapshot.count = latency->Count();
  snapshot.sum = latency->Sum();
  snapshot.min = latency->Min();
  snapshot.max = latency->Max();
  for (size_t i = 0; i < obs::Histogram::kNumBuckets; ++i) {
    snapshot.buckets[i] = latency->BucketCount(i);
  }
  std::printf(
      "burst: sent=%zu ok=%zu degraded=%zu overloaded=%zu deadline=%zu "
      "unavailable=%zu bad=%zu transport_errors=%zu retries=%zu "
      "p50_us=%.0f p95_us=%.0f p99_us=%.0f\n",
      requests, tally.ok.load(), tally.degraded.load(),
      tally.overloaded.load(), tally.deadline.load(),
      tally.unavailable.load(), tally.bad.load(),
      tally.transport_errors.load(), tally.retries.load(), snapshot.P50(),
      snapshot.P95(), snapshot.P99());
  return tally.ok.load() > 0 ? 0 : 1;
}

int Run(int argc, char** argv) {
  const FlagMap flags = FlagMap::Parse(argc, argv);

  serve::ClientOptions options;
  options.unix_socket_path = flags.GetString("socket");
  options.tcp_host = flags.GetString("host", "127.0.0.1");
  options.tcp_port =
      flags.Has("port") ? static_cast<int>(flags.GetInt("port", -1)) : -1;
  if (options.unix_socket_path.empty() == (options.tcp_port < 0)) {
    return Usage();
  }
  options.max_attempts = static_cast<int>(flags.GetInt("max_attempts", 4));
  options.io_timeout_ms = flags.GetInt("io_timeout_ms", 2000);
  options.retry_overloaded = flags.GetBool("retry_overloaded", false);

  const auto request = BuildRequest(flags);
  if (!request.has_value()) return Usage();

  const size_t requests =
      static_cast<size_t>(flags.GetInt("requests", 0));
  const int rc =
      requests > 0
          ? RunBurst(options, *request, requests,
                     static_cast<size_t>(flags.GetInt("concurrency", 4)))
          : RunSingle(options, *request);

  const std::string metrics_out = flags.GetString("metrics_out", "");
  if (!metrics_out.empty() && obs::WriteMetricsReportFile(metrics_out)) {
    std::fprintf(stderr, "ipin_oracle_client: wrote metrics report to %s\n",
                 metrics_out.c_str());
  }
  return rc;
}

}  // namespace
}  // namespace ipin

int main(int argc, char** argv) { return ipin::Run(argc, argv); }
