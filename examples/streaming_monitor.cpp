// Streaming influence monitor: processes interactions strictly in arrival
// order (something the paper's reverse-scan algorithm cannot do — see
// Section 3) and continuously answers "who could have influenced this node
// within the last omega time units?" using the library's source-set dual.
//
// Demonstrates: SourceSetExact / SourceSetApprox, online checkpoints.
//
// Run:  ./build/examples/streaming_monitor [--scale=0.01] [--window-pct=5]

#include <algorithm>
#include <cstdio>
#include <vector>

#include "ipin/common/flags.h"
#include "ipin/core/source_sets.h"
#include "ipin/datasets/registry.h"

int main(int argc, char** argv) {
  using namespace ipin;
  const FlagMap flags = FlagMap::Parse(argc, argv);
  const double scale = flags.GetDouble("scale", 0.01);
  const double window_pct = flags.GetDouble("window-pct", 5.0);

  const InteractionGraph graph = LoadSyntheticDataset("higgs", scale);
  const Duration window = graph.WindowFromPercent(window_pct);
  std::printf(
      "Streaming %zu interactions among %zu nodes (window = %lld units)\n\n",
      graph.num_interactions(), graph.num_nodes(),
      static_cast<long long>(window));

  IrsApproxOptions options;
  options.precision = 9;
  SourceSetExact exact(graph.num_nodes(), window);
  SourceSetApprox approx(graph.num_nodes(), window, options);

  // Feed the stream; at a few checkpoints report the most-influenced nodes
  // so far ("largest audience of potential influencers").
  const size_t m = graph.num_interactions();
  const std::vector<size_t> checkpoints = {m / 4, m / 2, (3 * m) / 4, m};
  size_t next_checkpoint = 0;

  for (size_t i = 0; i < m; ++i) {
    exact.ProcessInteraction(graph.interaction(i));
    approx.ProcessInteraction(graph.interaction(i));
    if (next_checkpoint < checkpoints.size() &&
        i + 1 == checkpoints[next_checkpoint]) {
      ++next_checkpoint;
      // Find the node with the largest exact source set right now.
      NodeId best = 0;
      for (NodeId v = 1; v < graph.num_nodes(); ++v) {
        if (exact.SourceSetSize(v) > exact.SourceSetSize(best)) best = v;
      }
      std::printf(
          "after %7zu interactions: node %-7u reachable-by %5zu nodes "
          "(sketch estimate %7.1f)\n",
          i + 1, best, exact.SourceSetSize(best),
          approx.EstimateSourceSetSize(best));
    }
  }

  // Final: group query — how many distinct nodes could have influenced the
  // ten most-influenced targets?
  std::vector<std::pair<size_t, NodeId>> by_size;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    by_size.emplace_back(exact.SourceSetSize(v), v);
  }
  std::sort(by_size.rbegin(), by_size.rend());
  std::vector<NodeId> targets;
  for (size_t i = 0; i < 10 && i < by_size.size(); ++i) {
    targets.push_back(by_size[i].second);
  }
  std::printf(
      "\nUnion of the top-10 targets' influencer sets: exact %zu, "
      "sketch %.1f\n",
      exact.UnionSize(targets), approx.EstimateUnionSize(targets));
  std::printf("Sketch memory: %.1f MB vs exact summaries %.1f MB\n",
              approx.MemoryUsageBytes() / (1024.0 * 1024.0),
              exact.MemoryUsageBytes() / (1024.0 * 1024.0));
  return 0;
}
