// Quickstart: the paper's running example (Figure 1a) end to end.
//
//   * build a small interaction network,
//   * compute exact IRS summaries (Algorithm 2) and print them,
//   * compute the sketch-based summaries (Algorithm 3),
//   * answer influence-oracle queries,
//   * pick the top-2 influencers with greedy maximization.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "ipin/core/influence_maximization.h"
#include "ipin/core/influence_oracle.h"
#include "ipin/core/irs_approx.h"
#include "ipin/core/irs_exact.h"
#include "ipin/graph/interaction_graph.h"

namespace {

constexpr const char* kNames = "abcdef";

}  // namespace

int main() {
  using namespace ipin;

  // Figure 1a: timestamped directed interactions among nodes a..f.
  InteractionGraph graph(6);
  graph.AddInteraction(0, 3, 1);  // a -> d
  graph.AddInteraction(4, 5, 2);  // e -> f
  graph.AddInteraction(3, 4, 3);  // d -> e
  graph.AddInteraction(4, 1, 4);  // e -> b
  graph.AddInteraction(0, 1, 5);  // a -> b
  graph.AddInteraction(1, 4, 6);  // b -> e
  graph.AddInteraction(4, 2, 7);  // e -> c
  graph.AddInteraction(1, 2, 8);  // b -> c
  std::printf("Interaction network: %s\n\n", graph.DebugString().c_str());

  // Exact IRS at window 3 (the paper's Example 2).
  const Duration window = 3;
  const IrsExact exact = IrsExact::Compute(graph, window);
  std::printf("Exact IRS summaries (window = %lld):\n",
              static_cast<long long>(window));
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    std::printf("  phi(%c) = {", kNames[u]);
    bool first = true;
    for (const auto& [v, t] : exact.Summary(u)) {
      std::printf("%s(%c,%lld)", first ? "" : ", ", kNames[v],
                  static_cast<long long>(t));
      first = false;
    }
    std::printf("}\n");
  }

  // Approximate IRS with a versioned HyperLogLog per node.
  IrsApproxOptions options;
  options.precision = 9;  // beta = 512, the paper's default
  const IrsApprox approx = IrsApprox::Compute(graph, window, options);
  std::printf("\nSketch estimates vs exact sizes:\n");
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    std::printf("  |sigma(%c)|: exact %zu, estimated %.2f\n", kNames[u],
                exact.IrsSize(u), approx.EstimateIrsSize(u));
  }

  // Influence-oracle queries: how many distinct nodes can a seed set reach?
  const ExactInfluenceOracle oracle(&exact);
  const std::vector<NodeId> seed_set = {0, 4};  // {a, e}
  std::printf("\nOracle: |sigma(a) u sigma(e)| = %.0f\n",
              oracle.InfluenceOfSet(seed_set));

  // Greedy influence maximization (Algorithm 4 / CELF).
  const SeedSelection top2 = SelectSeedsCelf(oracle, 2);
  std::printf("Top-2 influencers: ");
  for (size_t i = 0; i < top2.seeds.size(); ++i) {
    std::printf("%s%c (gain %.0f)", i ? ", " : "", kNames[top2.seeds[i]],
                top2.gains[i]);
  }
  std::printf("  — combined reach %.0f nodes\n", top2.total_coverage);
  return 0;
}
