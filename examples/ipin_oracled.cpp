// ipin_oracled: the influence-oracle daemon. Serves |sigma(S)| queries from
// a persisted vHLL index (built with `ipin_cli build-index`) over the
// newline-delimited JSON protocol of src/ipin/serve/protocol.h, with
// per-request deadlines, admission control, graceful degradation, and hot
// index reload (a background watcher and/or the "reload" request re-read the
// index file and swap it in atomically; corrupt files roll back).
//
// Usage:
//   ipin_oracled --index=index.bin --socket=/tmp/ipin.sock
//   ipin_oracled --index=index.bin --port=0            # ephemeral TCP port
//       [--graph=net.txt [--window-pct=10]]            # load exact map too
//       [--workers=4] [--queue_capacity=64] [--max_connections=64]
//       [--default_deadline_ms=1000] [--exact_budget_ms=50]
//       [--retry_after_ms=50] [--drain_deadline_ms=2000]
//       [--reload_check_ms=0]                          # >0: file watcher
//       [--slow_query_us=100000] [--flight_size=256] [--flight_slow_size=64]
//       [--audit_rate=0]                               # e.g. 0.01 = 1 in 100
//       [--stats_window_s=10]
//       [--trace_out=trace.json]                       # Chrome trace at exit
//       [--metrics_out=report.json] [--log_level=debug]
//
// On SIGTERM or SIGINT the daemon drains in-flight requests (bounded by
// --drain_deadline_ms) and exits 0. On SIGUSR1 it logs the slow-query
// flight recorder dump (the same "ipin.debug.v1" document the "debug"
// request verb returns) without interrupting service. Readiness: the line
// "ipin_oracled: serving ..." on stdout means the socket is accepting.

#include <csignal>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>

#include "ipin/common/flags.h"
#include "ipin/common/logging.h"
#include "ipin/core/irs_exact.h"
#include "ipin/graph/graph_io.h"
#include "ipin/obs/export.h"
#include "ipin/obs/memtally.h"
#include "ipin/obs/trace_events.h"
#include "ipin/serve/index_manager.h"
#include "ipin/serve/port_file.h"
#include "ipin/serve/server.h"

namespace ipin {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: ipin_oracled --index=<file> (--socket=<path> | "
               "--port=<n>)\n"
               "  [--graph=<edges> [--window-pct=10]]  load exact summaries\n"
               "  [--workers=4] [--queue_capacity=64] [--max_connections=64]\n"
               "  [--default_deadline_ms=1000] [--exact_budget_ms=50]\n"
               "  [--retry_after_ms=50] [--drain_deadline_ms=2000]\n"
               "  [--reload_check_ms=0] [--slow_query_us=100000]\n"
               "  [--flight_size=256] [--flight_slow_size=64] "
               "[--audit_rate=0]\n"
               "  [--stats_window_s=10] [--trace_out=<json>]\n"
               "  [--metrics_out=<json>] [--log_level=<level>]\n"
               "  [--port_file=<path>]   publish pid+bound endpoint once serving\n"
               "  [--shard_id=<i> --shard_count=<n>]   sharded deployment\n");
  return 2;
}

// Signal-handler flags: the main thread sleeps in a loop on them, so the
// handlers themselves only need one async-signal-safe store each.
volatile std::sig_atomic_t g_stop = 0;
volatile std::sig_atomic_t g_dump = 0;

void HandleStopSignal(int) { g_stop = 1; }
void HandleDumpSignal(int) { g_dump = 1; }

int Run(int argc, char** argv) {
  const FlagMap flags = FlagMap::Parse(argc, argv);

  const std::string log_level = flags.GetString("log_level", "");
  if (!log_level.empty()) {
    LogLevel level = GetLogLevel();
    if (!ParseLogLevel(log_level, &level)) {
      std::fprintf(stderr, "bad --log_level '%s'\n", log_level.c_str());
      return Usage();
    }
    SetLogLevel(level);
  }

  const std::string index_path = flags.GetString("index");
  const std::string socket_path = flags.GetString("socket");
  const bool have_port = flags.Has("port");
  if (index_path.empty() || (socket_path.empty() == !have_port)) {
    return Usage();
  }

  serve::IndexManager index(index_path);
  if (index.Reload() != serve::ReloadStatus::kOk) {
    std::fprintf(stderr, "ipin_oracled: cannot load index '%s'\n",
                 index_path.c_str());
    return 2;
  }

  // Optional exact-summary map, built from the interaction log. Costs build
  // time and memory but lets "exact"/"auto" queries answer precisely while
  // the latency budget allows.
  const std::string graph_path = flags.GetString("graph");
  if (!graph_path.empty()) {
    const auto graph = LoadInteractionsFromFile(
        graph_path, EdgeListFormat::kSrcDstTime, ParseMode::kStrict);
    if (!graph.has_value()) return 2;
    const Duration window =
        graph->WindowFromPercent(flags.GetDouble("window-pct", 10.0));
    index.SetExact(
        std::make_shared<const IrsExact>(IrsExact::Compute(*graph, window)));
    LogInfo("ipin_oracled: exact summaries loaded from " + graph_path);
  }

  serve::ServerOptions options;
  options.unix_socket_path = socket_path;
  options.tcp_port = have_port ? static_cast<int>(flags.GetInt("port", 0)) : -1;
  options.num_workers = static_cast<int>(flags.GetInt("workers", 4));
  options.queue_capacity =
      static_cast<size_t>(flags.GetInt("queue_capacity", 64));
  options.max_connections =
      static_cast<size_t>(flags.GetInt("max_connections", 64));
  options.default_deadline_ms = flags.GetInt("default_deadline_ms", 1000);
  options.exact_budget_ms = flags.GetInt("exact_budget_ms", 50);
  options.retry_after_ms = flags.GetInt("retry_after_ms", 50);
  options.drain_deadline_ms = flags.GetInt("drain_deadline_ms", 2000);
  options.slow_query_us = flags.GetInt("slow_query_us", 100000);
  options.flight_recorder_size =
      static_cast<size_t>(flags.GetInt("flight_size", 256));
  options.flight_slow_size =
      static_cast<size_t>(flags.GetInt("flight_slow_size", 64));
  options.audit_rate = flags.GetDouble("audit_rate", 0.0);
  options.stats_window_s = flags.GetInt("stats_window_s", 10);
  // Sharded deployments (ipin_routerd + per-shard indexes from ipin_shard):
  // the identity is echoed by the stats verb so operators and the shard
  // drill can tell backends apart.
  options.shard_id = static_cast<int>(flags.GetInt("shard_id", -1));
  options.shard_count = static_cast<int>(flags.GetInt("shard_count", 0));

  // --trace_out records Chrome trace events for the whole serving session;
  // each request renders as one async lane keyed by its trace_id. The file
  // is written after the drain.
  const std::string trace_out = flags.GetString("trace_out", "");
  if (!trace_out.empty()) obs::StartTraceRecording();

  serve::OracleServer server(&index, options);
  if (!server.Start()) return 1;

  const int64_t reload_check_ms = flags.GetInt("reload_check_ms", 0);
  if (reload_check_ms > 0) index.StartWatcher(reload_check_ms);

  std::signal(SIGTERM, HandleStopSignal);
  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGUSR1, HandleDumpSignal);
  std::signal(SIGPIPE, SIG_IGN);

  if (socket_path.empty()) {
    std::printf("ipin_oracled: serving on 127.0.0.1:%d (epoch %llu)\n",
                server.bound_port(),
                static_cast<unsigned long long>(index.Epoch()));
  } else {
    std::printf("ipin_oracled: serving on %s (epoch %llu)\n",
                socket_path.c_str(),
                static_cast<unsigned long long>(index.Epoch()));
  }
  std::fflush(stdout);

  // --port_file publishes the bound endpoint once serving: with --port=0
  // (kernel-assigned port) scripts read the file instead of guessing a
  // fixed port that another test running in parallel may hold. Written
  // via rename so a reader never sees a half-written file.
  const std::string port_file = flags.GetString("port_file", "");
  if (!port_file.empty() &&
      !serve::WritePortFile(port_file, "ipin_oracled", server.bound_port(),
                            socket_path)) {
    std::fprintf(stderr, "ipin_oracled: cannot write port file '%s'\n",
                 port_file.c_str());
    server.Shutdown();
    return 1;
  }

  while (g_stop == 0) {
    if (g_dump != 0) {
      g_dump = 0;
      // One log line, service uninterrupted: the operator's kill -USR1
      // answer to "what are the slow queries doing".
      LogInfo("ipin_oracled: flight recorder dump: " + server.DebugDump());
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  LogInfo("ipin_oracled: stop signal received, draining");
  index.StopWatcher();
  server.Shutdown();

  if (!trace_out.empty()) {
    obs::StopTraceRecording();
    if (obs::WriteChromeTrace(trace_out)) {
      LogInfo("wrote chrome trace to " + trace_out);
    }
  }
  const std::string metrics_out = flags.GetString("metrics_out", "");
  if (!metrics_out.empty()) {
    obs::PublishMemoryGauges();
    if (obs::WriteMetricsReportFile(metrics_out)) {
      LogInfo("wrote metrics report to " + metrics_out);
    }
  }
  std::printf("ipin_oracled: drained, exiting\n");
  return 0;
}

}  // namespace
}  // namespace ipin

int main(int argc, char** argv) { return ipin::Run(argc, argv); }
