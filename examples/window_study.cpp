// Window-length study: how does the maximal channel duration omega change
// who the top influencers are and how far information can flow?
//
// Reproduces the qualitative finding behind the paper's Table 5: short and
// long windows can disagree almost completely on the top-k seed set.
//
// Run:  ./build/examples/window_study [--dataset=facebook] [--scale=0.01]

#include <cstdio>
#include <vector>

#include "ipin/common/flags.h"
#include "ipin/core/influence_maximization.h"
#include "ipin/core/influence_oracle.h"
#include "ipin/core/irs_approx.h"
#include "ipin/datasets/registry.h"
#include "ipin/eval/metrics.h"

int main(int argc, char** argv) {
  using namespace ipin;
  const FlagMap flags = FlagMap::Parse(argc, argv);
  const std::string dataset = flags.GetString("dataset", "facebook");
  const double scale = flags.GetDouble("scale", 0.01);
  const size_t k = static_cast<size_t>(flags.GetInt("k", 10));

  const InteractionGraph graph = LoadSyntheticDataset(dataset, scale);
  std::printf("Dataset %s: %zu nodes, %zu interactions\n\n", dataset.c_str(),
              graph.num_nodes(), graph.num_interactions());

  const std::vector<double> percents = {0.5, 1, 5, 10, 20, 50};
  std::vector<std::vector<NodeId>> seeds_per_window;
  std::vector<double> reach_per_window;

  std::printf("%8s  %14s  %14s  top-3 seeds\n", "window%", "avg |IRS|",
              "greedy reach");
  for (const double pct : percents) {
    const Duration window = graph.WindowFromPercent(pct);
    IrsApproxOptions options;
    options.precision = 9;
    const IrsApprox irs = IrsApprox::Compute(graph, window, options);

    double total = 0.0;
    for (NodeId u = 0; u < graph.num_nodes(); ++u) {
      total += irs.EstimateIrsSize(u);
    }
    const SketchInfluenceOracle oracle(&irs);
    const SeedSelection selection = SelectSeedsCelf(oracle, k);
    seeds_per_window.push_back(selection.seeds);
    reach_per_window.push_back(selection.total_coverage);

    std::printf("%8.1f  %14.1f  %14.1f  ", pct,
                total / static_cast<double>(graph.num_nodes()),
                selection.total_coverage);
    for (size_t i = 0; i < std::min<size_t>(3, selection.seeds.size()); ++i) {
      std::printf("%u ", selection.seeds[i]);
    }
    std::printf("\n");
  }

  std::printf("\nSeed-set overlap between window lengths (of %zu):\n", k);
  std::printf("%10s", "");
  for (const double pct : percents) std::printf("%7.1f%%", pct);
  std::printf("\n");
  for (size_t i = 0; i < percents.size(); ++i) {
    std::printf("%9.1f%%", percents[i]);
    for (size_t j = 0; j < percents.size(); ++j) {
      std::printf("%8zu",
                  SeedOverlap(seeds_per_window[i], seeds_per_window[j]));
    }
    std::printf("\n");
  }
  std::printf(
      "\nTakeaway: the window length materially changes the optimal seed "
      "set —\ninfluence maximization must be window-aware (paper Section "
      "6.5).\n");
  return 0;
}
