// Influencer evolution: slice an interaction archive into consecutive
// periods and track how the top influencers change over time — churn of
// the influential set is itself a signal (stable community leaders vs
// bursty one-off spreaders).
//
// Demonstrates: TimeSlice, per-period IRS indexes, seed-overlap metrics.
//
// Run:  ./build/examples/influencer_evolution [--dataset=higgs]
//       [--scale=0.02] [--periods=4] [--k=10]

#include <cstdio>
#include <vector>

#include "ipin/common/flags.h"
#include "ipin/core/influence_maximization.h"
#include "ipin/core/influence_oracle.h"
#include "ipin/core/irs_approx.h"
#include "ipin/datasets/registry.h"
#include "ipin/eval/metrics.h"
#include "ipin/graph/transforms.h"

int main(int argc, char** argv) {
  using namespace ipin;
  const FlagMap flags = FlagMap::Parse(argc, argv);
  const std::string dataset = flags.GetString("dataset", "higgs");
  const double scale = flags.GetDouble("scale", 0.02);
  const size_t periods = static_cast<size_t>(flags.GetInt("periods", 4));
  const size_t k = static_cast<size_t>(flags.GetInt("k", 10));

  const InteractionGraph graph = LoadSyntheticDataset(dataset, scale);
  const auto stats = graph.ComputeStats();
  std::printf("%s stand-in: %zu nodes, %zu interactions over %lld units\n\n",
              dataset.c_str(), graph.num_nodes(), graph.num_interactions(),
              static_cast<long long>(stats.time_span));

  // Slice into equal-length periods and compute per-period top-k seeds.
  std::vector<std::vector<NodeId>> seeds_per_period;
  const Timestamp span = stats.time_span;
  for (size_t p = 0; p < periods; ++p) {
    const Timestamp begin =
        stats.min_time + static_cast<Timestamp>(p) * span / periods;
    const Timestamp end =
        stats.min_time + static_cast<Timestamp>(p + 1) * span / periods - 1;
    const InteractionGraph slice = TimeSlice(graph, begin, end);
    if (slice.empty()) {
      seeds_per_period.emplace_back();
      std::printf("period %zu: empty\n", p + 1);
      continue;
    }
    IrsApproxOptions options;
    options.precision = 9;
    const IrsApprox irs =
        IrsApprox::Compute(slice, slice.WindowFromPercent(10.0), options);
    const SketchInfluenceOracle oracle(&irs);
    const SeedSelection top = SelectSeedsCelf(oracle, k);
    seeds_per_period.push_back(top.seeds);
    std::printf("period %zu: %7zu interactions, reach %7.1f, top-3:", p + 1,
                slice.num_interactions(), top.total_coverage);
    for (size_t i = 0; i < std::min<size_t>(3, top.seeds.size()); ++i) {
      std::printf(" %u", top.seeds[i]);
    }
    std::printf("\n");
  }

  std::printf("\nTop-%zu influencer overlap between periods:\n        ", k);
  for (size_t p = 0; p < periods; ++p) std::printf("  P%zu", p + 1);
  std::printf("\n");
  for (size_t a = 0; a < periods; ++a) {
    std::printf("  P%zu   ", a + 1);
    for (size_t b = 0; b < periods; ++b) {
      std::printf("%4zu",
                  SeedOverlap(seeds_per_period[a], seeds_per_period[b]));
    }
    std::printf("\n");
  }
  std::printf(
      "\nLow off-diagonal overlap = influencer churn: yesterday's top "
      "spreaders are not\ntomorrow's — rerun influence analyses per period "
      "rather than once per archive.\n");
  return 0;
}
