// ipin_routerd: the scatter-gather router of the sharded serving tier
// (DESIGN.md §11). Speaks the same newline-delimited JSON protocol as
// ipin_oracled, but answers each query by fanning it out to the per-shard
// backends named in an "ipin.shardmap.v1" map file, merging their rank
// partials into the exact global estimate, and degrading to a partial
// answer (degraded=true, shards_answered < shards_total) when shards are
// down instead of erroring.
//
// Usage:
//   ipin_routerd --map=shards.json --socket=/tmp/ipin-router.sock
//   ipin_routerd --map=shards.json --port=0        # ephemeral TCP port
//       [--workers=4] [--queue_capacity=64] [--max_connections=64]
//       [--default_deadline_ms=1000] [--retry_after_ms=50]
//       [--drain_deadline_ms=2000]
//       [--connect_timeout_ms=250] [--shard_deadline_margin_ms=20]
//       [--hedge_after_ms=0]                       # >0 enables hedging
//       [--suspect_after=1] [--down_after=3] [--probe_interval_ms=200]
//       [--slow_query_us=100000] [--flight_size=256] [--flight_slow_size=64]
//       [--stats_window_s=10]
//       [--ledger_dir=<dir>]                       # run manifest on exit
//       [--trace_out=trace.json] [--metrics_out=report.json]
//       [--log_level=<level>]
//
// Signals: SIGTERM/SIGINT drain and exit 0; SIGHUP re-reads the shard map
// (epoch-swapped; a corrupt map rolls back and the old epoch keeps
// routing); SIGUSR1 logs the flight-recorder dump (request records plus
// one record per shard leg) without interrupting service. Readiness: the
// line "ipin_routerd: routing ..." on stdout means the socket is
// accepting.

#include <csignal>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>

#include "ipin/common/flags.h"
#include "ipin/common/logging.h"
#include "ipin/common/string_util.h"
#include "ipin/obs/export.h"
#include "ipin/obs/ledger.h"
#include "ipin/obs/memtally.h"
#include "ipin/obs/trace_events.h"
#include "ipin/serve/port_file.h"
#include "ipin/serve/router.h"
#include "ipin/serve/shard_map.h"

namespace ipin {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: ipin_routerd --map=<shards.json> (--socket=<path> | "
               "--port=<n>)\n"
               "  [--workers=4] [--queue_capacity=64] [--max_connections=64]\n"
               "  [--default_deadline_ms=1000] [--retry_after_ms=50]\n"
               "  [--drain_deadline_ms=2000] [--connect_timeout_ms=250]\n"
               "  [--shard_deadline_margin_ms=20] [--hedge_after_ms=0]\n"
               "  [--suspect_after=1] [--down_after=3] "
               "[--probe_interval_ms=200]\n"
               "  [--slow_query_us=100000] [--flight_size=256]\n"
               "  [--flight_slow_size=64] [--stats_window_s=10]\n"
               "  [--ledger_dir=<dir>] [--trace_out=<json>]\n"
               "  [--metrics_out=<json>] [--log_level=<level>]\n"
               "  [--port_file=<path>]   publish pid+bound endpoint once serving\n");
  return 2;
}

// Signal-handler flags: the main thread polls them, so the handlers only
// need one async-signal-safe store each.
volatile std::sig_atomic_t g_stop = 0;
volatile std::sig_atomic_t g_dump = 0;
volatile std::sig_atomic_t g_reload = 0;

void HandleStopSignal(int) { g_stop = 1; }
void HandleDumpSignal(int) { g_dump = 1; }
void HandleReloadSignal(int) { g_reload = 1; }

std::string JoinArgs(int argc, char** argv) {
  std::string joined;
  for (int i = 1; i < argc; ++i) {
    if (!joined.empty()) joined += ' ';
    joined += argv[i];
  }
  return joined;
}

int Run(int argc, char** argv) {
  const FlagMap flags = FlagMap::Parse(argc, argv);

  const std::string log_level = flags.GetString("log_level", "");
  if (!log_level.empty()) {
    LogLevel level = GetLogLevel();
    if (!ParseLogLevel(log_level, &level)) {
      std::fprintf(stderr, "bad --log_level '%s'\n", log_level.c_str());
      return Usage();
    }
    SetLogLevel(level);
  }

  const std::string map_path = flags.GetString("map");
  const std::string socket_path = flags.GetString("socket");
  const bool have_port = flags.Has("port");
  if (map_path.empty() || (socket_path.empty() == !have_port)) {
    return Usage();
  }

  obs::RunLedger& ledger = obs::RunLedger::Global();
  ledger.Begin({flags.GetString("ledger_dir", ""), "ipin_routerd", "serve",
                JoinArgs(argc, argv)});
  ledger.RecordInputFile(map_path);

  serve::ShardMapManager map(map_path);
  if (map.Reload() != serve::ReloadStatus::kOk) {
    std::fprintf(stderr, "ipin_routerd: cannot load shard map '%s'\n",
                 map_path.c_str());
    ledger.Finish(2);
    return 2;
  }

  serve::RouterOptions options;
  options.unix_socket_path = socket_path;
  options.tcp_port = have_port ? static_cast<int>(flags.GetInt("port", 0)) : -1;
  options.num_workers = static_cast<int>(flags.GetInt("workers", 4));
  options.queue_capacity =
      static_cast<size_t>(flags.GetInt("queue_capacity", 64));
  options.max_connections =
      static_cast<size_t>(flags.GetInt("max_connections", 64));
  options.default_deadline_ms = flags.GetInt("default_deadline_ms", 1000);
  options.retry_after_ms = flags.GetInt("retry_after_ms", 50);
  options.drain_deadline_ms = flags.GetInt("drain_deadline_ms", 2000);
  options.connect_timeout_ms = flags.GetInt("connect_timeout_ms", 250);
  options.shard_deadline_margin_ms =
      flags.GetInt("shard_deadline_margin_ms", 20);
  options.hedge_after_ms = flags.GetInt("hedge_after_ms", 0);
  options.health.suspect_after =
      static_cast<int>(flags.GetInt("suspect_after", 1));
  options.health.down_after = static_cast<int>(flags.GetInt("down_after", 3));
  options.health.probe_interval_ms = flags.GetInt("probe_interval_ms", 200);
  options.slow_query_us = flags.GetInt("slow_query_us", 100000);
  options.flight_recorder_size =
      static_cast<size_t>(flags.GetInt("flight_size", 256));
  options.flight_slow_size =
      static_cast<size_t>(flags.GetInt("flight_slow_size", 64));
  options.stats_window_s = flags.GetInt("stats_window_s", 10);

  const std::string trace_out = flags.GetString("trace_out", "");
  if (!trace_out.empty()) obs::StartTraceRecording();

  serve::RouterServer server(&map, options);
  if (!server.Start()) {
    ledger.Finish(1);
    return 1;
  }

  std::signal(SIGTERM, HandleStopSignal);
  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGHUP, HandleReloadSignal);
  std::signal(SIGUSR1, HandleDumpSignal);
  std::signal(SIGPIPE, SIG_IGN);

  const size_t num_shards = map.Current()->num_shards();
  if (socket_path.empty()) {
    std::printf("ipin_routerd: routing %zu shards on 127.0.0.1:%d "
                "(map epoch %llu)\n",
                num_shards, server.bound_port(),
                static_cast<unsigned long long>(map.Epoch()));
  } else {
    std::printf("ipin_routerd: routing %zu shards on %s (map epoch %llu)\n",
                num_shards, socket_path.c_str(),
                static_cast<unsigned long long>(map.Epoch()));
  }
  std::fflush(stdout);

  // --port_file publishes the bound endpoint once routing (see
  // serve/port_file.h): with --port=0 scripts read the kernel-assigned
  // port from the file instead of hardcoding one.
  const std::string port_file = flags.GetString("port_file", "");
  if (!port_file.empty() &&
      !serve::WritePortFile(port_file, "ipin_routerd", server.bound_port(),
                            socket_path)) {
    std::fprintf(stderr, "ipin_routerd: cannot write port file '%s'\n",
                 port_file.c_str());
    server.Shutdown();
    ledger.Finish(1);
    return 1;
  }

  while (g_stop == 0) {
    if (g_reload != 0) {
      g_reload = 0;
      const serve::ReloadStatus status = map.Reload();
      ledger.RecordEvent("shardmap.reload",
                         status == serve::ReloadStatus::kRolledBack
                             ? "rolled_back"
                             : "ok");
      LogInfo(StrFormat("ipin_routerd: SIGHUP shard-map reload: %s (epoch "
                        "%llu)",
                        status == serve::ReloadStatus::kRolledBack
                            ? "rolled back"
                            : "ok",
                        static_cast<unsigned long long>(map.Epoch())));
    }
    if (g_dump != 0) {
      g_dump = 0;
      LogInfo("ipin_routerd: flight recorder dump: " + server.DebugDump());
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  LogInfo("ipin_routerd: stop signal received, draining");
  server.Shutdown();

  if (!trace_out.empty()) {
    obs::StopTraceRecording();
    if (obs::WriteChromeTrace(trace_out)) {
      ledger.RecordOutput(trace_out);
      LogInfo("wrote chrome trace to " + trace_out);
    }
  }
  const std::string metrics_out = flags.GetString("metrics_out", "");
  if (!metrics_out.empty()) {
    obs::PublishMemoryGauges();
    if (obs::WriteMetricsReportFile(metrics_out)) {
      ledger.RecordOutput(metrics_out);
      LogInfo("wrote metrics report to " + metrics_out);
    }
  }
  ledger.Finish(0);
  std::printf("ipin_routerd: drained, exiting\n");
  return 0;
}

}  // namespace
}  // namespace ipin

int main(int argc, char** argv) { return ipin::Run(argc, argv); }
