// Edge-list analysis: run the full pipeline on an interaction network read
// from a text file ("src dst time" per line — e.g. a SNAP temporal network).
// If no file is given, a demo file is generated first so the example is
// self-contained.
//
// Run:  ./build/examples/edge_list_analysis [path/to/edges.txt]
//       ./build/examples/edge_list_analysis --window-pct=10 --k=10

#include <cstdio>
#include <string>

#include "ipin/common/flags.h"
#include "ipin/core/influence_maximization.h"
#include "ipin/core/influence_oracle.h"
#include "ipin/core/irs_approx.h"
#include "ipin/datasets/synthetic.h"
#include "ipin/graph/graph_io.h"

int main(int argc, char** argv) {
  using namespace ipin;
  const FlagMap flags = FlagMap::Parse(argc, argv);
  const double window_pct = flags.GetDouble("window-pct", 10.0);
  const size_t k = static_cast<size_t>(flags.GetInt("k", 5));

  std::string path;
  if (!flags.positional().empty()) {
    path = flags.positional()[0];
  } else {
    // Self-contained demo: write a synthetic network to a temp file.
    path = "/tmp/ipin_demo_edges.txt";
    SyntheticConfig config;
    config.num_nodes = 2000;
    config.num_interactions = 30000;
    config.time_span = 500000;
    const InteractionGraph demo = GenerateInteractionNetwork(config);
    if (!SaveInteractionsToFile(demo, path)) {
      std::fprintf(stderr, "failed to write demo file %s\n", path.c_str());
      return 1;
    }
    std::printf("No input file given; generated demo network at %s\n",
                path.c_str());
  }

  const auto graph = LoadInteractionsFromFile(path);
  if (!graph.has_value()) {
    std::fprintf(stderr, "could not load %s\n", path.c_str());
    return 1;
  }
  const auto stats = graph->ComputeStats();
  std::printf(
      "Loaded %zu interactions among %zu nodes; time span %lld units, %zu "
      "distinct static edges\n",
      stats.num_interactions, stats.num_nodes,
      static_cast<long long>(stats.time_span), stats.num_static_edges);

  const Duration window = graph->WindowFromPercent(window_pct);
  std::printf("Window: %.1f%% of span = %lld units\n\n", window_pct,
              static_cast<long long>(window));

  IrsApproxOptions options;
  options.precision = 9;
  const IrsApprox irs = IrsApprox::Compute(*graph, window, options);
  std::printf("Sketch memory: %.1f MB across %zu active sources\n",
              static_cast<double>(irs.MemoryUsageBytes()) / (1024 * 1024),
              irs.NumAllocatedSketches());

  const SketchInfluenceOracle oracle(&irs);
  const SeedSelection top = SelectSeedsCelf(oracle, k);
  std::printf("\nTop-%zu influencers (window-constrained):\n", k);
  for (size_t i = 0; i < top.seeds.size(); ++i) {
    std::printf("  %2zu. node %-8u marginal gain %8.1f\n", i + 1,
                top.seeds[i], top.gains[i]);
  }
  std::printf("Combined estimated reach: %.1f nodes (%.1f%% of network)\n",
              top.total_coverage,
              100.0 * top.total_coverage /
                  static_cast<double>(graph->num_nodes()));
  return 0;
}
