// ipin_cli: command-line front end to the library — generate datasets,
// inspect them, build/persist influence indexes, answer oracle queries,
// select seed sets, and simulate cascades, all from the shell.
//
// Usage:
//   ipin_cli generate  --dataset=enron --scale=0.01 --out=net.txt
//   ipin_cli stats     net.txt
//   ipin_cli build-index --in=net.txt --window-pct=10 --out=index.bin
//       [--checkpoint_dir=ckpt --checkpoint_every=100000]
//   ipin_cli topk      --index=index.bin --k=10
//   ipin_cli query     --index=index.bin --seeds=1,2,3
//   ipin_cli simulate  --in=net.txt --seeds=1,2,3 --window-pct=10 --p=0.5
//   ipin_cli convert   --in=net.txt --dimacs=net.gr
//   ipin_cli report    --in=net.txt --window-pct=10 --format=prom
//
// Global flags (any command): --metrics_out=FILE writes the metrics
// registry + span tree as a JSON run report on exit; --trace_out=FILE
// records trace events during the command and writes a Chrome/Perfetto
// trace_event JSON file on exit (open with https://ui.perfetto.dev);
// --ledger_dir=DIR persists an ipin.run.v1 manifest (config, provenance,
// per-phase timings, outcome) on exit — inspect with tools/ipin_runs;
// --progress_out=FILE appends ipin.heartbeat.v1 JSON lines during the
// command at --heartbeat_ms cadence (default 1000); --progress adds a
// human ticker on stderr; --log_level=LEVEL (debug|info|warning|error)
// sets the logger threshold (overriding the IPIN_LOG_LEVEL environment
// variable); --threads=N sizes the global worker pool (0/absent =
// IPIN_THREADS env or hardware concurrency, 1 = exact sequential
// execution).

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "ipin/common/flags.h"
#include "ipin/common/logging.h"
#include "ipin/common/random.h"
#include "ipin/common/string_util.h"
#include "ipin/common/thread_pool.h"
#include "ipin/common/timer.h"
#include "ipin/core/checkpoint.h"
#include "ipin/core/influence_maximization.h"
#include "ipin/core/influence_oracle.h"
#include "ipin/core/irs_approx.h"
#include "ipin/core/irs_exact.h"
#include "ipin/core/oracle_io.h"
#include "ipin/core/tcic.h"
#include "ipin/datasets/registry.h"
#include "ipin/graph/graph_io.h"
#include "ipin/graph/static_graph.h"
#include "ipin/obs/export.h"
#include "ipin/obs/ledger.h"
#include "ipin/obs/memtally.h"
#include "ipin/obs/metrics.h"
#include "ipin/obs/progress.h"
#include "ipin/obs/trace.h"
#include "ipin/obs/trace_events.h"

namespace ipin {
namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: ipin_cli <command> [flags]\n"
      "  generate    --dataset=<name> [--scale=0.01] --out=<file>\n"
      "  stats       <file>\n"
      "  build-index --in=<file> [--window-pct=10] [--precision=9] "
      "[--checkpoint_dir=<dir> --checkpoint_every=<edges>] --out=<index>\n"
      "  topk        --index=<index> [--k=10]\n"
      "  query       --index=<index> --seeds=a,b,c\n"
      "  simulate    --in=<file> --seeds=a,b,c [--window-pct=10] [--p=0.5] "
      "[--runs=50]\n"
      "  convert     --in=<file> --dimacs=<out>\n"
      "  report      --in=<file> [--window-pct=10] [--precision=9] "
      "[--queries=32] [--format=text|json|prom]\n"
      "global flags: --metrics_out=<json> --trace_out=<json> "
      "--log_level=<level> --lenient (salvage damaged edge lists)\n"
      "              --threads=<n> (0 = IPIN_THREADS env / hardware; "
      "1 = sequential)\n"
      "              --ledger_dir=<dir> (write an ipin.run.v1 manifest; "
      "see ipin_runs)\n"
      "              --progress_out=<jsonl> --heartbeat_ms=<ms> "
      "--progress (stderr ticker)\n");
  return 2;
}

// Exit code 2 marks an input problem the user can fix (missing or unreadable
// file, bad usage); exit 1 is reserved for operations that failed downstream.
constexpr int kExitBadInput = 2;

bool FileReadable(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

std::vector<NodeId> ParseSeeds(const std::string& arg, size_t num_nodes) {
  std::vector<NodeId> seeds;
  for (const auto piece : SplitString(arg, ",")) {
    const auto id = ParseInt64(piece);
    if (!id || *id < 0 || static_cast<size_t>(*id) >= num_nodes) {
      std::fprintf(stderr, "bad seed id '%.*s'\n",
                   static_cast<int>(piece.size()), piece.data());
      return {};
    }
    seeds.push_back(static_cast<NodeId>(*id));
  }
  return seeds;
}

int CmdGenerate(const FlagMap& flags) {
  const std::string dataset = flags.GetString("dataset", "slashdot");
  const double scale = flags.GetDouble("scale", 0.01);
  const std::string out = flags.GetString("out");
  if (out.empty()) return Usage();
  const auto config = GetDatasetConfig(dataset, scale);
  if (!config.has_value()) {
    std::fprintf(stderr, "unknown dataset '%s' (known:", dataset.c_str());
    for (const auto& name : ListDatasetNames()) {
      std::fprintf(stderr, " %s", name.c_str());
    }
    std::fprintf(stderr, ")\n");
    return 1;
  }
  const InteractionGraph graph = GenerateInteractionNetwork(*config);
  if (!SaveInteractionsToFile(graph, out)) return 1;
  obs::RunLedger::Global().RecordOutput(out);
  std::printf("wrote %zu interactions / %zu nodes to %s\n",
              graph.num_interactions(), graph.num_nodes(), out.c_str());
  return 0;
}

// Loads the dataset argument, setting *rc on failure: missing/unreadable
// paths are a clear one-line stderr error with exit 2, parse failures
// (already logged with line and reason) exit 1.
std::optional<InteractionGraph> LoadGraphArg(const FlagMap& flags,
                                             const std::string& path,
                                             int* rc) {
  if (path.empty()) {
    *rc = Usage();
    return std::nullopt;
  }
  if (!FileReadable(path)) {
    std::fprintf(stderr, "ipin_cli: cannot open dataset '%s': %s\n",
                 path.c_str(), std::strerror(errno));
    *rc = kExitBadInput;
    return std::nullopt;
  }
  obs::RunLedger::Global().RecordInputFile(path);
  const ParseMode mode = flags.GetBool("lenient", false) ? ParseMode::kLenient
                                                         : ParseMode::kStrict;
  auto graph = LoadInteractionsFromFile(path, EdgeListFormat::kSrcDstTime, mode);
  if (!graph.has_value()) *rc = 1;
  return graph;
}

// Loads the index argument with the same exit-code contract; a degraded
// (partially corrupt) index is served with a stderr warning.
std::optional<IrsApprox> LoadIndexArg(const std::string& path, int* rc) {
  if (path.empty()) {
    *rc = Usage();
    return std::nullopt;
  }
  // Pre-check readability so a missing path yields exactly one stderr line
  // (the loader would log its own error first).
  if (!FileReadable(path)) {
    std::fprintf(stderr, "ipin_cli: cannot open index '%s': %s\n",
                 path.c_str(), std::strerror(errno));
    *rc = kExitBadInput;
    return std::nullopt;
  }
  obs::RunLedger::Global().RecordInputFile(path);
  IndexLoadResult result = LoadInfluenceIndexDetailed(path);
  if (result.status == IndexLoadStatus::kMissing) {
    std::fprintf(stderr, "ipin_cli: cannot open index '%s'\n", path.c_str());
    *rc = kExitBadInput;
    return std::nullopt;
  }
  if (!result.usable()) {
    std::fprintf(stderr,
                 "ipin_cli: index '%s' is %s and cannot be loaded\n",
                 path.c_str(),
                 result.status == IndexLoadStatus::kTruncated ? "truncated"
                                                              : "corrupt");
    *rc = 1;
    return std::nullopt;
  }
  if (result.status == IndexLoadStatus::kDegraded) {
    std::fprintf(stderr,
                 "ipin_cli: warning: index '%s' is degraded (%zu of %zu "
                 "sections dropped); estimates may be low\n",
                 path.c_str(), result.sections_dropped,
                 result.sections_total);
  }
  return std::move(result.index);
}

int CmdStats(const FlagMap& flags) {
  if (flags.positional().size() < 2) return Usage();
  int rc = 1;
  const auto graph = LoadGraphArg(flags, flags.positional()[1], &rc);
  if (!graph.has_value()) return rc;
  const auto stats = graph->ComputeStats();
  std::printf("nodes               %zu\n", stats.num_nodes);
  std::printf("interactions        %zu\n", stats.num_interactions);
  std::printf("distinct edges      %zu\n", stats.num_static_edges);
  std::printf("time span           %lld\n",
              static_cast<long long>(stats.time_span));
  std::printf("min/max timestamp   %lld / %lld\n",
              static_cast<long long>(stats.min_time),
              static_cast<long long>(stats.max_time));
  return 0;
}

int CmdBuildIndex(const FlagMap& flags) {
  int rc = 1;
  const auto graph = LoadGraphArg(flags, flags.GetString("in"), &rc);
  if (!graph.has_value()) return rc;
  const std::string out = flags.GetString("out");
  if (out.empty()) return Usage();
  const double window_pct = flags.GetDouble("window-pct", 10.0);
  IrsApproxOptions options;
  options.precision = static_cast<int>(flags.GetInt("precision", 9));

  // Optional crash-safe checkpointing: with both flags set, the scan saves
  // its state every N edges and a rerun after a crash resumes from the
  // newest valid checkpoint instead of starting over.
  CheckpointOptions ckpt;
  ckpt.dir = flags.GetString("checkpoint_dir", "");
  ckpt.every_edges =
      static_cast<size_t>(flags.GetInt("checkpoint_every", 0));
  CheckpointStats ckpt_stats;

  WallTimer timer;
  const Duration window = graph->WindowFromPercent(window_pct);
  const IrsApprox index =
      ckpt.enabled()
          ? ComputeIrsApproxCheckpointed(*graph, window, options, ckpt,
                                         &ckpt_stats)
          : IrsApprox::Compute(*graph, window, options);
  const double build_seconds = timer.ElapsedSeconds();
  if (ckpt.enabled()) {
    std::printf(
        "checkpointing: resumed %zu edges, wrote %zu checkpoints "
        "(%zu save failures, %zu invalid skipped)\n",
        ckpt_stats.resumed_edges, ckpt_stats.checkpoints_written,
        ckpt_stats.checkpoint_failures,
        ckpt_stats.invalid_checkpoints_skipped);
  }
  if (!SaveInfluenceIndex(index, out)) return 1;
  obs::RunLedger::Global().RecordOutput(out);
  std::printf(
      "built index in %.2fs (window %lld, beta %zu, %.1f MB) -> %s\n",
      build_seconds, static_cast<long long>(index.window()),
      static_cast<size_t>(1) << options.precision,
      index.MemoryUsageBytes() / (1024.0 * 1024.0), out.c_str());
  return 0;
}

int CmdTopk(const FlagMap& flags) {
  int rc = 1;
  const auto index = LoadIndexArg(flags.GetString("index"), &rc);
  if (!index.has_value()) return rc;
  const size_t k = static_cast<size_t>(flags.GetInt("k", 10));
  const SketchInfluenceOracle oracle(&*index);
  WallTimer timer;
  const SeedSelection selection = SelectSeedsCelf(oracle, k);
  std::printf("# top-%zu influencers (%.0f ms)\n", k, timer.ElapsedMillis());
  std::printf("# rank node gain\n");
  for (size_t i = 0; i < selection.seeds.size(); ++i) {
    std::printf("%zu %u %.1f\n", i + 1, selection.seeds[i],
                selection.gains[i]);
  }
  std::printf("# combined reach: %.1f\n", selection.total_coverage);
  return 0;
}

int CmdQuery(const FlagMap& flags) {
  int rc = 1;
  const auto index = LoadIndexArg(flags.GetString("index"), &rc);
  if (!index.has_value()) return rc;
  const auto seeds = ParseSeeds(flags.GetString("seeds"), index->num_nodes());
  if (seeds.empty()) return 1;
  WallTimer timer;
  const double estimate = index->EstimateUnionSize(seeds);
  std::printf("estimated influence of %zu seeds: %.1f nodes (%.3f ms)\n",
              seeds.size(), estimate, timer.ElapsedMillis());
  return 0;
}

int CmdSimulate(const FlagMap& flags) {
  int rc = 1;
  const auto graph = LoadGraphArg(flags, flags.GetString("in"), &rc);
  if (!graph.has_value()) return rc;
  const auto seeds = ParseSeeds(flags.GetString("seeds"), graph->num_nodes());
  if (seeds.empty()) return 1;
  TcicOptions options;
  options.window = graph->WindowFromPercent(flags.GetDouble("window-pct", 10));
  options.probability = flags.GetDouble("p", 0.5);
  const size_t runs = static_cast<size_t>(flags.GetInt("runs", 50));
  const double spread = AverageTcicSpread(*graph, seeds, options,
                                          runs, flags.GetInt("seed", 1));
  std::printf("TCIC spread over %zu runs (w=%lld, p=%.2f): %.1f nodes\n",
              runs, static_cast<long long>(options.window),
              options.probability, spread);
  return 0;
}

int CmdConvert(const FlagMap& flags) {
  int rc = 1;
  const auto graph = LoadGraphArg(flags, flags.GetString("in"), &rc);
  if (!graph.has_value()) return rc;
  const std::string dimacs = flags.GetString("dimacs");
  if (dimacs.empty()) return Usage();
  const StaticGraph flat = StaticGraph::FromInteractions(*graph);
  if (!SaveDimacs(flat, dimacs)) return 1;
  obs::RunLedger::Global().RecordOutput(dimacs);
  std::printf("wrote DIMACS graph (%zu nodes, %zu arcs) to %s\n",
              flat.num_nodes(), flat.num_edges(), dimacs.c_str());
  return 0;
}

// Builds both the exact and sketch IRS over one network, cross-checks them
// with random oracle queries, and prints a pipeline health summary. Pair
// with --metrics_out to capture the full instrumentation in JSON.
int CmdReport(const FlagMap& flags) {
  int rc = 1;
  const auto graph = LoadGraphArg(flags, flags.GetString("in"), &rc);
  if (!graph.has_value()) return rc;
  const double window_pct = flags.GetDouble("window-pct", 10.0);
  const Duration window = graph->WindowFromPercent(window_pct);
  IrsApproxOptions options;
  options.precision = static_cast<int>(flags.GetInt("precision", 9));
  const size_t num_queries =
      static_cast<size_t>(flags.GetInt("queries", 32));

  WallTimer exact_timer;
  const IrsExact exact = IrsExact::Compute(*graph, window);
  const double exact_seconds = exact_timer.ElapsedSeconds();
  WallTimer approx_timer;
  const IrsApprox approx = IrsApprox::Compute(*graph, window, options);
  const double approx_seconds = approx_timer.ElapsedSeconds();

  const ExactInfluenceOracle exact_oracle(&exact);
  const SketchInfluenceOracle sketch_oracle(&approx);
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 7)));
  double error_sum = 0.0;
  size_t error_count = 0;
  for (size_t q = 0; q < num_queries; ++q) {
    std::vector<NodeId> seeds;
    for (size_t i = 0; i < 8; ++i) {
      seeds.push_back(static_cast<NodeId>(rng.NextBounded(graph->num_nodes())));
    }
    const double truth = exact_oracle.InfluenceOfSet(seeds);
    const double estimate = sketch_oracle.InfluenceOfSet(seeds);
    if (truth > 0) {
      error_sum += std::fabs(estimate - truth) / truth;
      ++error_count;
    }
  }

  std::printf("# pipeline report\n");
  std::printf("nodes / interactions   %zu / %zu\n", graph->num_nodes(),
              graph->num_interactions());
  std::printf("window                 %lld (%.3g%% of time span)\n",
              static_cast<long long>(window), window_pct);
  std::printf("exact IRS build        %.3fs (%zu entries, %.1f MB)\n",
              exact_seconds, exact.TotalSummaryEntries(),
              exact.MemoryUsageBytes() / (1024.0 * 1024.0));
  std::printf("sketch IRS build       %.3fs (beta %zu, %zu entries, %.1f MB)\n",
              approx_seconds, static_cast<size_t>(1) << options.precision,
              approx.TotalSketchEntries(),
              approx.MemoryUsageBytes() / (1024.0 * 1024.0));
  std::printf("oracle cross-check     %zu queries, mean relative error %.3f\n",
              num_queries,
              error_count > 0 ? error_sum / static_cast<double>(error_count)
                              : 0.0);

  // --format selects how the collected instrumentation is appended:
  // text (default, pretty one-per-line), json (ipin.metrics.v1 document),
  // prom (Prometheus exposition text, ready to push to a textfile
  // collector).
  const std::string format = flags.GetString("format", "text");
  obs::PublishMemoryGauges();
  PublishPoolPhaseMetrics();
  const obs::MetricsSnapshot snapshot = obs::MetricsRegistry::Global().Snapshot();
  if (format == "json") {
    std::printf("%s\n",
                obs::MetricsReportJson(snapshot, obs::SpanTreeSnapshot())
                    .c_str());
  } else if (format == "prom") {
    std::printf("%s", obs::MetricsPrometheusText(snapshot).c_str());
  } else if (format == "text") {
    std::printf("\n# metrics\n");
    obs::WriteMetricsText(snapshot, stdout);
  } else {
    std::fprintf(stderr, "bad --format '%s' (text|json|prom)\n",
                 format.c_str());
    return Usage();
  }
  return 0;
}

int Dispatch(const std::string& command, const FlagMap& flags) {
  if (command == "generate") return CmdGenerate(flags);
  if (command == "stats") return CmdStats(flags);
  if (command == "build-index") return CmdBuildIndex(flags);
  if (command == "topk") return CmdTopk(flags);
  if (command == "query") return CmdQuery(flags);
  if (command == "simulate") return CmdSimulate(flags);
  if (command == "convert") return CmdConvert(flags);
  if (command == "report") return CmdReport(flags);
  std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
  return Usage();
}

int Run(int argc, char** argv) {
  const FlagMap flags = FlagMap::Parse(argc, argv);
  if (flags.positional().empty()) return Usage();

  const std::string log_level = flags.GetString("log_level", "");
  if (!log_level.empty()) {
    LogLevel level = GetLogLevel();
    if (!ParseLogLevel(log_level, &level)) {
      std::fprintf(stderr, "bad --log_level '%s'\n", log_level.c_str());
      return Usage();
    }
    SetLogLevel(level);
  }

  if (flags.Has("threads")) {
    const int64_t threads = flags.GetInt("threads", 0);
    SetGlobalThreads(threads <= 0 ? 0 : static_cast<size_t>(threads));
  }

  // The run ledger always records (events, wall time); it only writes a
  // manifest file when --ledger_dir (or IPIN_LEDGER_DIR) names a directory.
  obs::RunLedgerOptions ledger_options;
  ledger_options.dir = flags.GetString("ledger_dir", "");
  if (ledger_options.dir.empty()) {
    if (const char* env = std::getenv("IPIN_LEDGER_DIR");
        env != nullptr && env[0] != '\0') {
      ledger_options.dir = env;
    }
  }
  ledger_options.tool = "ipin_cli";
  ledger_options.command = flags.positional()[0];
  for (int i = 1; i < argc; ++i) {
    if (i > 1) ledger_options.args += " ";
    ledger_options.args += argv[i];
  }
  obs::RunLedger& ledger = obs::RunLedger::Global();
  ledger.Begin(ledger_options);

  const std::string trace_out = flags.GetString("trace_out", "");
  if (!trace_out.empty()) obs::StartTraceRecording();

  const std::string progress_out = flags.GetString("progress_out", "");
  const bool progress_ticker = flags.GetBool("progress", false);
  if (!progress_out.empty() || progress_ticker) {
    obs::ProgressOptions popts;
    popts.interval_ms =
        static_cast<uint64_t>(flags.GetInt("heartbeat_ms", 1000));
    popts.out_path = progress_out;
    popts.stderr_ticker = progress_ticker;
    const bool started = obs::StartProgressReporting(popts);
#ifndef IPIN_OBS_DISABLED
    if (!started && !progress_out.empty()) {
      std::fprintf(stderr, "ipin_cli: cannot open --progress_out '%s'\n",
                   progress_out.c_str());
      return kExitBadInput;
    }
#else
    // Progress engine compiled out: the flags stay accepted no-ops so
    // scripts work against both build modes.
    (void)started;
#endif
  }

  int rc = Dispatch(flags.positional()[0], flags);

  // Stop the reporter before the ledger snapshots heartbeat state, so the
  // final heartbeat is on disk and in the ledger's recent-lines ring.
  obs::StopProgressReporting();
  if (!progress_out.empty()) ledger.RecordOutput(progress_out);

  if (!trace_out.empty()) {
    obs::StopTraceRecording();
    if (obs::WriteChromeTrace(trace_out)) {
      LogInfo("wrote chrome trace to " + trace_out);
      ledger.RecordOutput(trace_out);
    } else if (rc == 0) {
      rc = 1;
    }
  }

  const std::string metrics_out = flags.GetString("metrics_out", "");
  if (!metrics_out.empty()) {
    obs::PublishMemoryGauges();
    PublishPoolPhaseMetrics();
    if (obs::WriteMetricsReportFile(metrics_out)) {
      LogInfo("wrote metrics report to " + metrics_out);
      ledger.RecordOutput(metrics_out);
    } else if (rc == 0) {
      rc = 1;
    }
  }

  const double wall_seconds = ledger.WallSeconds();
  std::string outputs;
  for (const std::string& out : ledger.Outputs()) outputs += " " + out;
  const std::string ledger_path = ledger.Finish(rc);
  if (!ledger_path.empty()) LogInfo("wrote run ledger to " + ledger_path);
  if (rc == 0) {
    // Success-only: error paths keep their single-line stderr contract.
    LogInfo(StrFormat("done in %.2fs (peak rss %.1f MB, threads %zu)%s%s",
                      wall_seconds,
                      obs::PeakRssBytes() / (1024.0 * 1024.0),
                      GlobalThreads(), outputs.empty() ? "" : " ->",
                      outputs.c_str()));
  }
  return rc;
}

}  // namespace
}  // namespace ipin

int main(int argc, char** argv) { return ipin::Run(argc, argv); }
