// Influence forensics: EXPLAIN why a node is influential by reconstructing
// the concrete information channels behind its influence reachability set —
// the audit-trail use case of channel mining (who could have leaked what to
// whom, through which chain of messages?).
//
// Demonstrates: IrsExact summaries, FindEarliestChannel path evidence,
// temporal statistics.
//
// Run:  ./build/examples/influence_forensics [--scale=0.005] [--window-pct=2]

#include <algorithm>
#include <cstdio>
#include <vector>

#include "ipin/common/flags.h"
#include "ipin/core/information_channel.h"
#include "ipin/core/irs_exact.h"
#include "ipin/datasets/registry.h"
#include "ipin/graph/temporal_stats.h"

int main(int argc, char** argv) {
  using namespace ipin;
  const FlagMap flags = FlagMap::Parse(argc, argv);
  const double scale = flags.GetDouble("scale", 0.005);
  const double window_pct = flags.GetDouble("window-pct", 2.0);

  const InteractionGraph graph = LoadSyntheticDataset("enron", scale);
  std::printf("Corporate email archive (synthetic stand-in):\n%s\n",
              TemporalStatsReport(ComputeTemporalStats(graph)).c_str());

  const Duration window = graph.WindowFromPercent(window_pct);
  const IrsExact irs = IrsExact::Compute(graph, window);

  // Find the most influential employee.
  NodeId suspect = 0;
  for (NodeId u = 1; u < graph.num_nodes(); ++u) {
    if (irs.IrsSize(u) > irs.IrsSize(suspect)) suspect = u;
  }
  std::printf(
      "Most influential node: %u — information could have reached %zu "
      "distinct nodes\nwithin any %lld-unit window.\n\n",
      suspect, irs.IrsSize(suspect), static_cast<long long>(window));

  // Reconstruct evidence: the three earliest-completing channels.
  std::vector<std::pair<Timestamp, NodeId>> targets;
  for (const auto& [v, lambda] : irs.Summary(suspect)) {
    targets.emplace_back(lambda, v);
  }
  std::sort(targets.begin(), targets.end());
  std::printf("Channel evidence (earliest-completing targets first):\n");
  const size_t show = std::min<size_t>(3, targets.size());
  for (size_t i = 0; i < show; ++i) {
    const NodeId target = targets[i].second;
    const auto path = FindEarliestChannel(graph, suspect, target, window);
    std::printf("  to node %u (channel completes at t=%lld, %zu hops):\n",
                target, static_cast<long long>(targets[i].first),
                path.size());
    for (const Interaction& e : path) {
      std::printf("    %u -> %u at t=%lld\n", e.src, e.dst,
                  static_cast<long long>(e.time));
    }
  }

  // How much of the influence is direct vs multi-hop?
  size_t direct = 0;
  for (const auto& [v, lambda] : irs.Summary(suspect)) {
    const auto path = FindEarliestChannel(graph, suspect, v, window);
    if (path.size() == 1) ++direct;
  }
  std::printf(
      "\nOf %zu reachable nodes, %zu are direct contacts; %zu are only "
      "reachable\nthrough multi-hop information channels — influence the "
      "static contact list\nwould miss entirely.\n",
      irs.IrsSize(suspect), direct, irs.IrsSize(suspect) - direct);
  return 0;
}
