// Figure 4: influence-oracle query time (milliseconds) as a function of the
// seed-set size (up to 10,000 random seeds) at window length 20%. The key
// property: query time is O(|seeds| * beta), independent of graph size.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "ipin/common/random.h"
#include "ipin/core/irs_approx.h"
#include "ipin/eval/table.h"
#include "ipin/obs/metrics.h"

namespace ipin {
namespace {

int Run(int argc, char** argv) {
  const FlagMap flags = FlagMap::Parse(argc, argv);
  SetupBenchObservability(flags, "fig4_oracle_query");
  const double scale = flags.GetDouble("scale", 0.01);
  const int precision = static_cast<int>(flags.GetInt("precision", 9));
  const size_t repeats = static_cast<size_t>(flags.GetInt("repeats", 5));
  PrintBanner("Figure 4: oracle query time vs seed-set size", flags, scale);

  const std::vector<size_t> seed_counts = {10,   50,   100,  500, 1000,
                                           2000, 5000, 10000};

  TablePrinter table(
      "Figure 4 — influence-oracle query time (ms), window = 20%");
  std::vector<std::string> header = {"Dataset", "n"};
  for (const size_t s : seed_counts) {
    header.push_back(StrFormat("%zu", s));
  }
  table.SetHeader(std::move(header));

  for (const std::string& name : DatasetsFromFlags(flags)) {
    const InteractionGraph graph = LoadBenchDataset(name, scale);
    IrsApproxOptions options;
    options.precision = precision;
    IrsApprox approx =
        IrsApprox::Compute(graph, graph.WindowFromPercent(20.0), options);
    approx.Seal();  // build -> query handoff: pack for the union fast path

    Rng rng(4242);
    std::vector<std::string> row = {name, TablePrinter::Cell(graph.num_nodes())};
    for (const size_t count : seed_counts) {
      std::vector<NodeId> seeds;
      seeds.reserve(count);
      for (size_t i = 0; i < count; ++i) {
        seeds.push_back(static_cast<NodeId>(rng.NextBounded(graph.num_nodes())));
      }
      // One histogram sample per (dataset, seed count) batch; the printed
      // cell is the same measurement divided by `repeats`.
      obs::ScopedTimer timer(
          obs::MetricsRegistry::Global().GetHistogram("bench.fig4.query_us"));
      double sink = 0.0;
      for (size_t r = 0; r < repeats; ++r) {
        sink += approx.EstimateUnionSize(seeds);
      }
      const double ms = timer.Stop() * 1e3 / static_cast<double>(repeats);
      if (sink < 0) std::printf("impossible\n");  // keep the loop observable
      row.push_back(TablePrinter::Cell(ms, 3));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf(
      "\nPaper shape: query time scales linearly with the seed count, is a "
      "few ms even at 10k seeds,\nand is nearly identical across graph "
      "sizes.\n");
  EmitRunReport(flags);
  return 0;
}

}  // namespace
}  // namespace ipin

int main(int argc, char** argv) { return ipin::Run(argc, argv); }
