// Micro-benchmarks for the one-pass IRS algorithms and the TCIC simulator
// (google-benchmark): end-to-end scan throughput at several graph sizes.

#include <benchmark/benchmark.h>

#include "ipin/common/random.h"
#include "ipin/core/irs_approx.h"
#include "ipin/core/irs_exact.h"
#include "ipin/core/tcic.h"
#include "ipin/datasets/synthetic.h"

namespace ipin {
namespace {

InteractionGraph MakeGraph(size_t num_interactions) {
  SyntheticConfig config;
  config.num_nodes = num_interactions / 10;
  config.num_interactions = num_interactions;
  config.time_span = static_cast<Duration>(num_interactions) * 20;
  config.seed = 99;
  return GenerateInteractionNetwork(config);
}

void BM_IrsExactScan(benchmark::State& state) {
  const InteractionGraph g = MakeGraph(static_cast<size_t>(state.range(0)));
  const Duration window = g.WindowFromPercent(10.0);
  for (auto _ : state) {
    const IrsExact irs = IrsExact::Compute(g, window);
    benchmark::DoNotOptimize(irs.TotalSummaryEntries());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(g.num_interactions()));
}
BENCHMARK(BM_IrsExactScan)->Arg(2000)->Arg(10000)->Arg(50000)
    ->Unit(benchmark::kMillisecond);

void BM_IrsApproxScan(benchmark::State& state) {
  const InteractionGraph g = MakeGraph(static_cast<size_t>(state.range(0)));
  const Duration window = g.WindowFromPercent(10.0);
  IrsApproxOptions options;
  options.precision = static_cast<int>(state.range(1));
  for (auto _ : state) {
    const IrsApprox irs = IrsApprox::Compute(g, window, options);
    benchmark::DoNotOptimize(irs.TotalSketchEntries());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(g.num_interactions()));
}
BENCHMARK(BM_IrsApproxScan)
    ->Args({10000, 6})
    ->Args({10000, 9})
    ->Args({50000, 6})
    ->Args({50000, 9})
    ->Unit(benchmark::kMillisecond);

void BM_OracleUnionQuery(benchmark::State& state) {
  const InteractionGraph g = MakeGraph(20000);
  IrsApproxOptions options;
  options.precision = 9;
  IrsApprox irs = IrsApprox::Compute(g, g.WindowFromPercent(20.0), options);
  irs.Seal();  // query micro-bench: measure the sealed fast path
  Rng rng(5);
  std::vector<NodeId> seeds;
  for (int64_t i = 0; i < state.range(0); ++i) {
    seeds.push_back(static_cast<NodeId>(rng.NextBounded(g.num_nodes())));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(irs.EstimateUnionSize(seeds));
  }
}
BENCHMARK(BM_OracleUnionQuery)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000);

void BM_TcicSimulation(benchmark::State& state) {
  const InteractionGraph g = MakeGraph(static_cast<size_t>(state.range(0)));
  TcicOptions options;
  options.window = g.WindowFromPercent(10.0);
  options.probability = 0.5;
  const std::vector<NodeId> seeds = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  Rng rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SimulateTcic(g, seeds, options, &rng));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(g.num_interactions()));
}
BENCHMARK(BM_TcicSimulation)->Arg(10000)->Arg(50000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ipin
