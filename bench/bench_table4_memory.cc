// Table 4: memory (MB) used by the approximate algorithm's sketches after
// processing all interactions, at window lengths 1/10/20 percent.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "ipin/core/irs_approx.h"
#include "ipin/eval/table.h"

namespace ipin {
namespace {

int Run(int argc, char** argv) {
  const FlagMap flags = FlagMap::Parse(argc, argv);
  SetupBenchObservability(flags, "table4_memory");
  const double scale = flags.GetDouble("scale", 0.01);
  const int precision = static_cast<int>(flags.GetInt("precision", 9));
  PrintBanner("Table 4: sketch memory (MB) vs window length", flags, scale);

  const std::vector<double> window_percents = {1.0, 10.0, 20.0};
  TablePrinter table("Table 4 — approximate-algorithm memory (MB)");
  table.SetHeader({"Dataset", "nodes", "w=1%", "w=10%", "w=20%",
                   "measured @20%", "entries @20%"});

  obs::MemoryTally& vhll_tally = obs::GetMemoryTally("vhll");
  for (const std::string& name : DatasetsFromFlags(flags)) {
    const InteractionGraph graph = LoadBenchDataset(name, scale);
    std::vector<std::string> row = {name,
                                    TablePrinter::Cell(graph.num_nodes())};
    size_t entries_at_20 = 0;
    double measured_mb_at_20 = 0.0;
    for (const double pct : window_percents) {
      IrsApproxOptions options;
      options.precision = precision;
      const int64_t tally_before = vhll_tally.CurrentBytes();
      const IrsApprox approx =
          IrsApprox::Compute(graph, graph.WindowFromPercent(pct), options);
      row.push_back(TablePrinter::Cell(
          static_cast<double>(approx.MemoryUsageBytes()) / (1024.0 * 1024.0),
          1));
      entries_at_20 = approx.TotalSketchEntries();
      // Allocator-counted cell-list bytes of THIS index (tally delta), vs
      // the analytic estimate in the w=... columns.
      measured_mb_at_20 =
          static_cast<double>(vhll_tally.CurrentBytes() - tally_before) /
          (1024.0 * 1024.0);
    }
    row.push_back(TablePrinter::Cell(measured_mb_at_20, 1));
    row.push_back(TablePrinter::Cell(entries_at_20));
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf(
      "\nPaper shape: memory tracks the number of (sending) nodes, not the "
      "interaction count,\nand grows mildly with the window length.\n");
  EmitRunReport(flags);
  return 0;
}

}  // namespace
}  // namespace ipin

int main(int argc, char** argv) { return ipin::Run(argc, argv); }
