// Oracle-serving latency/throughput: closed-loop clients against an
// in-process OracleServer over a Unix socket, sweeping offered load
// (client concurrency) with admission control on (small bounded queue,
// overload is shed with a retry hint) and off (effectively unbounded
// queue). Reports client-side p50/p95/p99 latency and goodput per level.
//
// The paper's serving story (Section 4.1) is that |sigma(S)| queries are
// O(|S| * beta) and thus cheap enough to serve online; this harness checks
// the serving layer preserves that: tail latency stays bounded under
// overload when shedding is on, and collapses when it is off.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bench_common.h"
#include "ipin/common/random.h"
#include "ipin/core/irs_approx.h"
#include "ipin/eval/table.h"
#include "ipin/obs/metrics.h"
#include "ipin/serve/client.h"
#include "ipin/serve/index_manager.h"
#include "ipin/serve/server.h"

namespace ipin {
namespace {

struct LevelResult {
  size_t ok = 0;
  size_t shed = 0;
  size_t errors = 0;
  double elapsed_s = 0.0;
  std::vector<double> latencies_us;  // per successful request

  double Percentile(double p) {
    if (latencies_us.empty()) return 0.0;
    std::sort(latencies_us.begin(), latencies_us.end());
    const size_t idx = static_cast<size_t>(
        p * static_cast<double>(latencies_us.size() - 1));
    return latencies_us[idx];
  }
};

LevelResult RunLevel(const serve::ClientOptions& client_options,
                     const serve::Request& request, size_t concurrency,
                     size_t requests) {
  LevelResult result;
  std::mutex mu;
  std::atomic<size_t> next{0};
  std::vector<std::thread> threads;
  threads.reserve(concurrency);
  const auto start = std::chrono::steady_clock::now();
  for (size_t t = 0; t < concurrency; ++t) {
    threads.emplace_back([&, t] {
      serve::ClientOptions options = client_options;
      options.jitter_seed = t + 1;
      serve::OracleClient client(options);
      size_t ok = 0, shed = 0, errors = 0;
      std::vector<double> latencies;
      while (next.fetch_add(1) < requests) {
        const auto t0 = std::chrono::steady_clock::now();
        const auto response = client.Call(request);
        const auto t1 = std::chrono::steady_clock::now();
        if (!response.has_value()) {
          ++errors;
          continue;
        }
        if (response->status == serve::StatusCode::kOverloaded) {
          ++shed;
          continue;
        }
        if (response->status != serve::StatusCode::kOk) {
          ++errors;
          continue;
        }
        ++ok;
        const double us =
            std::chrono::duration<double, std::micro>(t1 - t0).count();
        latencies.push_back(us);
        IPIN_HISTOGRAM_RECORD("bench.serve.query_us",
                              static_cast<uint64_t>(us));
      }
      std::lock_guard<std::mutex> lock(mu);
      result.ok += ok;
      result.shed += shed;
      result.errors += errors;
      result.latencies_us.insert(result.latencies_us.end(), latencies.begin(),
                                 latencies.end());
    });
  }
  for (auto& thread : threads) thread.join();
  result.elapsed_s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
  return result;
}

int Run(int argc, char** argv) {
  const FlagMap flags = FlagMap::Parse(argc, argv);
  SetupBenchObservability(flags, "oracle_serving");
  const double scale = flags.GetDouble("scale", 0.01);
  const int precision = static_cast<int>(flags.GetInt("precision", 9));
  const size_t requests = static_cast<size_t>(flags.GetInt("requests", 2000));
  const size_t num_seeds = static_cast<size_t>(flags.GetInt("seeds", 5));
  const int workers = static_cast<int>(flags.GetInt("workers", 2));
  PrintBanner("Oracle serving: closed-loop latency vs offered load", flags,
              scale);

  const std::vector<std::string> datasets = DatasetsFromFlags(flags);
  const InteractionGraph graph = LoadBenchDataset(
      datasets.empty() ? "slashdot" : datasets.front(), scale);
  IrsApproxOptions options;
  options.precision = precision;
  serve::IndexManager index("");
  index.Install(std::make_shared<const IrsApprox>(
      IrsApprox::Compute(graph, graph.WindowFromPercent(20.0), options)));

  Rng rng(4242);
  serve::Request request;
  request.method = serve::Method::kQuery;
  request.mode = serve::QueryMode::kSketch;
  request.deadline_ms = 10000;
  for (size_t i = 0; i < num_seeds; ++i) {
    request.seeds.push_back(
        static_cast<NodeId>(rng.NextBounded(graph.num_nodes())));
  }

  const std::vector<size_t> concurrency_levels = {1, 4, 16, 32};

  TablePrinter table(StrFormat(
      "Oracle serving — %d workers, %zu sketch queries per level, "
      "client-side latency (us)",
      workers, requests));
  table.SetHeader({"Shedding", "Clients", "p50", "p95", "p99", "goodput/s",
                   "shed", "errors"});

  for (const bool shedding : {true, false}) {
    const std::string socket_path =
        StrFormat("/tmp/ipin_bench_serving_%d_%d.sock",
                  static_cast<int>(getpid()), shedding ? 1 : 0);
    serve::ServerOptions server_options;
    server_options.unix_socket_path = socket_path;
    server_options.num_workers = workers;
    // Shedding on: a short queue bounds waiting time and rejects overflow.
    // Shedding off: a queue deep enough to hold every in-flight request, so
    // nothing is rejected and latency absorbs the whole backlog.
    server_options.queue_capacity = shedding ? static_cast<size_t>(2 * workers)
                                             : (requests + 1);
    server_options.default_deadline_ms = 10000;
    serve::OracleServer server(&index, server_options);
    if (!server.Start()) {
      std::fprintf(stderr, "cannot start server on %s\n", socket_path.c_str());
      return 1;
    }

    serve::ClientOptions client_options;
    client_options.unix_socket_path = socket_path;
    client_options.max_attempts = 1;  // measure raw responses, not retries

    for (const size_t concurrency : concurrency_levels) {
      LevelResult result =
          RunLevel(client_options, request, concurrency, requests);
      const double goodput =
          result.elapsed_s > 0
              ? static_cast<double>(result.ok) / result.elapsed_s
              : 0.0;
      table.AddRow({shedding ? "on" : "off", TablePrinter::Cell(concurrency),
                    TablePrinter::Cell(result.Percentile(0.50), 1),
                    TablePrinter::Cell(result.Percentile(0.95), 1),
                    TablePrinter::Cell(result.Percentile(0.99), 1),
                    TablePrinter::Cell(goodput, 0),
                    TablePrinter::Cell(result.shed),
                    TablePrinter::Cell(result.errors)});
      IPIN_HISTOGRAM_RECORD(
          shedding ? "bench.serve.shed_on.p99_us" : "bench.serve.shed_off.p99_us",
          static_cast<uint64_t>(result.Percentile(0.99)));
    }
    server.Shutdown();
  }
  table.Print();
  std::printf(
      "\nExpected shape: with shedding on, p99 stays near the service time "
      "at every load level\n(excess demand is rejected with a retry hint); "
      "with shedding off, p99 grows with the\nbacklog as clients queue "
      "behind each other.\n");
  EmitRunReport(flags);
  return 0;
}

}  // namespace
}  // namespace ipin

int main(int argc, char** argv) { return ipin::Run(argc, argv); }
