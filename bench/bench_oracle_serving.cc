// Oracle-serving latency/throughput: closed-loop clients against an
// in-process OracleServer over a Unix socket, sweeping offered load
// (client concurrency) with admission control on (small bounded queue,
// overload is shed with a retry hint) and off (effectively unbounded
// queue). Reports client-side p50/p95/p99 latency and goodput per level.
//
// The paper's serving story (Section 4.1) is that |sigma(S)| queries are
// O(|S| * beta) and thus cheap enough to serve online; this harness checks
// the serving layer preserves that: tail latency stays bounded under
// overload when shedding is on, and collapses when it is off.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bench_common.h"
#include "ipin/common/random.h"
#include "ipin/common/string_util.h"
#include "ipin/core/irs_approx.h"
#include "ipin/eval/table.h"
#include "ipin/obs/metrics.h"
#include "ipin/serve/client.h"
#include "ipin/serve/index_manager.h"
#include "ipin/serve/router.h"
#include "ipin/serve/server.h"
#include "ipin/serve/shard_map.h"

namespace ipin {
namespace {

struct LevelResult {
  size_t ok = 0;
  size_t shed = 0;
  size_t errors = 0;
  double elapsed_s = 0.0;
  std::vector<double> latencies_us;  // per successful request

  double Percentile(double p) {
    if (latencies_us.empty()) return 0.0;
    std::sort(latencies_us.begin(), latencies_us.end());
    const size_t idx = static_cast<size_t>(
        p * static_cast<double>(latencies_us.size() - 1));
    return latencies_us[idx];
  }
};

LevelResult RunLevel(const serve::ClientOptions& client_options,
                     const serve::Request& request, size_t concurrency,
                     size_t requests) {
  LevelResult result;
  std::mutex mu;
  std::atomic<size_t> next{0};
  std::vector<std::thread> threads;
  threads.reserve(concurrency);
  const auto start = std::chrono::steady_clock::now();
  for (size_t t = 0; t < concurrency; ++t) {
    threads.emplace_back([&, t] {
      serve::ClientOptions options = client_options;
      options.jitter_seed = t + 1;
      serve::OracleClient client(options);
      size_t ok = 0, shed = 0, errors = 0;
      std::vector<double> latencies;
      while (next.fetch_add(1) < requests) {
        const auto t0 = std::chrono::steady_clock::now();
        const auto response = client.Call(request);
        const auto t1 = std::chrono::steady_clock::now();
        if (!response.has_value()) {
          ++errors;
          continue;
        }
        if (response->status == serve::StatusCode::kOverloaded) {
          ++shed;
          continue;
        }
        if (response->status != serve::StatusCode::kOk) {
          ++errors;
          continue;
        }
        ++ok;
        const double us =
            std::chrono::duration<double, std::micro>(t1 - t0).count();
        latencies.push_back(us);
        IPIN_HISTOGRAM_RECORD("bench.serve.query_us",
                              static_cast<uint64_t>(us));
      }
      std::lock_guard<std::mutex> lock(mu);
      result.ok += ok;
      result.shed += shed;
      result.errors += errors;
      result.latencies_us.insert(result.latencies_us.end(), latencies.begin(),
                                 latencies.end());
    });
  }
  for (auto& thread : threads) thread.join();
  result.elapsed_s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
  return result;
}

// Scatter-gather sweep: the same closed-loop load against an ipin_routerd
// core routing N in-process shard servers, for each N in `shard_counts`.
// The interesting curve is the fan-out cost: every query pays the slowest
// of its shard legs, so p99 tracks max-of-N leg latencies while goodput
// gains from the per-shard worker pools.
void RunShardedSweep(const IrsApprox& full, const serve::Request& request,
                     const std::vector<size_t>& shard_counts,
                     const std::vector<size_t>& concurrency_levels,
                     size_t requests, int workers, TablePrinter* table) {
  for (const size_t num_shards : shard_counts) {
    std::vector<serve::ShardInfo> infos(num_shards);
    for (size_t i = 0; i < num_shards; ++i) {
      infos[i].name = StrFormat("shard%zu", i);
      infos[i].endpoint.unix_socket_path =
          StrFormat("/tmp/ipin_bench_shard_%d_%zu_%zu.sock",
                    static_cast<int>(getpid()), num_shards, i);
    }
    auto map = std::make_shared<const serve::ShardMap>(infos);

    std::vector<std::unique_ptr<serve::IndexManager>> managers;
    std::vector<std::unique_ptr<serve::OracleServer>> shards;
    for (size_t i = 0; i < num_shards; ++i) {
      managers.push_back(std::make_unique<serve::IndexManager>(""));
      managers.back()->Install(std::make_shared<const IrsApprox>(
          serve::ExtractShardIndex(full, *map, i)));
      serve::ServerOptions options;
      options.unix_socket_path = infos[i].endpoint.unix_socket_path;
      options.num_workers = workers;
      options.queue_capacity = requests + 1;
      options.default_deadline_ms = 10000;
      shards.push_back(std::make_unique<serve::OracleServer>(
          managers.back().get(), options));
      if (!shards.back()->Start()) {
        std::fprintf(stderr, "cannot start shard %zu/%zu\n", i, num_shards);
        return;
      }
    }

    serve::ShardMapManager map_manager("");
    map_manager.Install(map);
    serve::RouterOptions router_options;
    router_options.unix_socket_path = StrFormat(
        "/tmp/ipin_bench_router_%d_%zu.sock", static_cast<int>(getpid()),
        num_shards);
    router_options.num_workers = workers;
    router_options.queue_capacity = requests + 1;
    router_options.default_deadline_ms = 10000;
    serve::RouterServer router(&map_manager, router_options);
    if (!router.Start()) {
      std::fprintf(stderr, "cannot start router for %zu shards\n", num_shards);
      return;
    }

    serve::ClientOptions client_options;
    client_options.unix_socket_path = router_options.unix_socket_path;
    client_options.max_attempts = 1;

    for (const size_t concurrency : concurrency_levels) {
      LevelResult result =
          RunLevel(client_options, request, concurrency, requests);
      const double goodput =
          result.elapsed_s > 0
              ? static_cast<double>(result.ok) / result.elapsed_s
              : 0.0;
      table->AddRow({StrFormat("%zu", num_shards),
                     TablePrinter::Cell(concurrency),
                     TablePrinter::Cell(result.Percentile(0.50), 1),
                     TablePrinter::Cell(result.Percentile(0.95), 1),
                     TablePrinter::Cell(result.Percentile(0.99), 1),
                     TablePrinter::Cell(goodput, 0),
                     TablePrinter::Cell(result.shed),
                     TablePrinter::Cell(result.errors)});
      // Registry lookup, not the IPIN_* macro: the macro caches the metric
      // per call-site, which would fold every N into the first name.
#ifndef IPIN_OBS_DISABLED
      obs::MetricsRegistry::Global()
          .GetHistogram(StrFormat("bench.serve.shards%zu.p99_us", num_shards))
          ->Record(static_cast<uint64_t>(result.Percentile(0.99)));
      obs::MetricsRegistry::Global()
          .GetHistogram(StrFormat("bench.serve.shards%zu.goodput", num_shards))
          ->Record(static_cast<uint64_t>(goodput));
#endif
    }

    router.Shutdown();
    for (auto& shard : shards) shard->Shutdown();
  }
}

int Run(int argc, char** argv) {
  const FlagMap flags = FlagMap::Parse(argc, argv);
  const bool sharded_only = flags.GetBool("sharded_only", false);
  SetupBenchObservability(
      flags, sharded_only ? "oracle_serving_shards" : "oracle_serving");
  const double scale = flags.GetDouble("scale", 0.01);
  const int precision = static_cast<int>(flags.GetInt("precision", 9));
  const size_t requests = static_cast<size_t>(flags.GetInt("requests", 2000));
  const size_t num_seeds = static_cast<size_t>(flags.GetInt("seeds", 5));
  const int workers = static_cast<int>(flags.GetInt("workers", 2));
  PrintBanner("Oracle serving: closed-loop latency vs offered load", flags,
              scale);

  const std::vector<std::string> datasets = DatasetsFromFlags(flags);
  const InteractionGraph graph = LoadBenchDataset(
      datasets.empty() ? "slashdot" : datasets.front(), scale);
  IrsApproxOptions options;
  options.precision = precision;
  serve::IndexManager index("");
  auto built = std::make_shared<IrsApprox>(
      IrsApprox::Compute(graph, graph.WindowFromPercent(20.0), options));
  built->Seal();  // build -> serve handoff: pack for the query fast paths
  index.Install(std::move(built));

  Rng rng(4242);
  serve::Request request;
  request.method = serve::Method::kQuery;
  request.mode = serve::QueryMode::kSketch;
  request.deadline_ms = 10000;
  for (size_t i = 0; i < num_seeds; ++i) {
    request.seeds.push_back(
        static_cast<NodeId>(rng.NextBounded(graph.num_nodes())));
  }

  const std::vector<size_t> concurrency_levels = {1, 4, 16, 32};

  if (sharded_only) {
    // Harness mode for BENCH_oracle_serving_shards: only the scatter-gather
    // load curves, so the two history documents stay independent.
  } else {
  TablePrinter table(StrFormat(
      "Oracle serving — %d workers, %zu sketch queries per level, "
      "client-side latency (us)",
      workers, requests));
  table.SetHeader({"Shedding", "Clients", "p50", "p95", "p99", "goodput/s",
                   "shed", "errors"});

  for (const bool shedding : {true, false}) {
    const std::string socket_path =
        StrFormat("/tmp/ipin_bench_serving_%d_%d.sock",
                  static_cast<int>(getpid()), shedding ? 1 : 0);
    serve::ServerOptions server_options;
    server_options.unix_socket_path = socket_path;
    server_options.num_workers = workers;
    // Shedding on: a short queue bounds waiting time and rejects overflow.
    // Shedding off: a queue deep enough to hold every in-flight request, so
    // nothing is rejected and latency absorbs the whole backlog.
    server_options.queue_capacity = shedding ? static_cast<size_t>(2 * workers)
                                             : (requests + 1);
    server_options.default_deadline_ms = 10000;
    serve::OracleServer server(&index, server_options);
    if (!server.Start()) {
      std::fprintf(stderr, "cannot start server on %s\n", socket_path.c_str());
      return 1;
    }

    serve::ClientOptions client_options;
    client_options.unix_socket_path = socket_path;
    client_options.max_attempts = 1;  // measure raw responses, not retries

    for (const size_t concurrency : concurrency_levels) {
      LevelResult result =
          RunLevel(client_options, request, concurrency, requests);
      const double goodput =
          result.elapsed_s > 0
              ? static_cast<double>(result.ok) / result.elapsed_s
              : 0.0;
      table.AddRow({shedding ? "on" : "off", TablePrinter::Cell(concurrency),
                    TablePrinter::Cell(result.Percentile(0.50), 1),
                    TablePrinter::Cell(result.Percentile(0.95), 1),
                    TablePrinter::Cell(result.Percentile(0.99), 1),
                    TablePrinter::Cell(goodput, 0),
                    TablePrinter::Cell(result.shed),
                    TablePrinter::Cell(result.errors)});
      IPIN_HISTOGRAM_RECORD(
          shedding ? "bench.serve.shed_on.p99_us" : "bench.serve.shed_off.p99_us",
          static_cast<uint64_t>(result.Percentile(0.99)));
    }
    server.Shutdown();
  }
  table.Print();
  std::printf(
      "\nExpected shape: with shedding on, p99 stays near the service time "
      "at every load level\n(excess demand is rejected with a retry hint); "
      "with shedding off, p99 grows with the\nbacklog as clients queue "
      "behind each other.\n");
  }

  // --- Scatter-gather load curves: N shards behind the router ------------
  const std::string shards_flag =
      flags.GetString("shards", sharded_only ? "2,4,8" : "");
  if (!shards_flag.empty()) {
    std::vector<size_t> shard_counts;
    for (const auto piece : SplitString(shards_flag, ",")) {
      const auto n = ParseInt64(piece);
      if (!n.has_value() || *n < 1) {
        std::fprintf(stderr, "bad --shards entry '%.*s'\n",
                     static_cast<int>(piece.size()), piece.data());
        return 2;
      }
      shard_counts.push_back(static_cast<size_t>(*n));
    }
    TablePrinter sharded_table(StrFormat(
        "Sharded serving — router over N shards, %d workers each, %zu "
        "sketch queries per level, client-side latency (us)",
        workers, requests));
    sharded_table.SetHeader({"Shards", "Clients", "p50", "p95", "p99",
                             "goodput/s", "shed", "errors"});
    RunShardedSweep(*index.Current(), request, shard_counts,
                    concurrency_levels, requests, workers, &sharded_table);
    sharded_table.Print();
    std::printf(
        "\nExpected shape: the merged answer is exact at every N, p50 "
        "stays near the single-shard\nservice time plus one router hop, "
        "and p99 tracks the max of N shard legs — the\nscatter-gather tax "
        "the partial-result degradation exists to bound.\n");
  }

  EmitRunReport(flags);
  return 0;
}

}  // namespace
}  // namespace ipin

int main(int argc, char** argv) { return ipin::Run(argc, argv); }
