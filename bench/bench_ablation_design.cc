// Ablation harness for the design choices called out in DESIGN.md:
//   A. CELF lazy queue vs the paper's Algorithm 4 sorted scan
//      (same seeds; how many gain evaluations does each need?).
//   B. Lazy sketch allocation (only senders get a sketch) vs eager.
//   C. vHLL domination pruning: undominated entries vs total insertions.
//   D. Seed-set transfer across propagation models: IRS seeds evaluated
//      under TCIC *and* TCLT (are the seeds model-independent, as the
//      data-driven framing claims?).

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "ipin/common/timer.h"
#include "ipin/core/influence_maximization.h"
#include "ipin/core/influence_oracle.h"
#include "ipin/core/irs_approx.h"
#include "ipin/core/irs_approx_bottom_k.h"
#include "ipin/core/irs_exact.h"
#include "ipin/core/tcic.h"
#include "ipin/core/tclt.h"
#include "ipin/eval/metrics.h"
#include "ipin/eval/table.h"

namespace ipin {
namespace {

int Run(int argc, char** argv) {
  const FlagMap flags = FlagMap::Parse(argc, argv);
  SetupBenchObservability(flags, "ablation_design");
  const double scale = flags.GetDouble("scale", 0.01);
  const size_t k = static_cast<size_t>(flags.GetInt("k", 10));
  PrintBanner("Ablations: design choices of the IRS pipeline", flags, scale);

  // ---- A + B + C on every dataset -------------------------------------
  TablePrinter structure("A/B/C — greedy strategy, allocation, pruning");
  structure.SetHeader({"Dataset", "greedy evals", "CELF evals", "senders",
                       "nodes", "entries", "inserts", "saved %"});

  for (const std::string& name : DatasetsFromFlags(flags)) {
    const InteractionGraph graph = LoadBenchDataset(name, scale);
    const Duration window = graph.WindowFromPercent(10.0);
    IrsApproxOptions options;
    options.precision = 9;
    IrsApprox irs = IrsApprox::Compute(graph, window, options);
    irs.Seal();
    const SketchInfluenceOracle oracle(&irs);

    const SeedSelection greedy = SelectSeedsGreedy(oracle, k);
    const SeedSelection celf = SelectSeedsCelf(oracle, k);

    // C: how much does domination pruning discard? Compare the retained
    // entries against the total AddEntry volume (direct adds + merges).
    const size_t retained = irs.TotalSketchEntries();
    const size_t inserts = irs.TotalInsertAttempts();
    const double saved =
        inserts == 0 ? 0.0
                     : 100.0 * (1.0 - static_cast<double>(retained) /
                                          static_cast<double>(inserts));

    structure.AddRow({name, TablePrinter::Cell(greedy.gain_evaluations),
                      TablePrinter::Cell(celf.gain_evaluations),
                      TablePrinter::Cell(irs.NumAllocatedSketches()),
                      TablePrinter::Cell(irs.num_nodes()),
                      TablePrinter::Cell(retained),
                      TablePrinter::Cell(inserts),
                      TablePrinter::Cell(saved, 1)});
  }
  structure.Print();
  std::printf(
      "\nA: CELF and Algorithm 4 return identical seeds; compare their "
      "evaluation counts.\nB: 'senders'/'nodes' is the fraction of sketches "
      "lazy allocation actually materializes.\nC: 'entries' vs 'inserts' "
      "shows what domination pruning keeps.\n\n");

  // ---- D: model transfer ----------------------------------------------
  TablePrinter transfer("D — IRS seed quality under TCIC vs TCLT");
  transfer.SetHeader({"Dataset", "TCIC spread", "TCLT spread",
                      "TCIC random", "TCLT random"});
  for (const std::string& name : DatasetsFromFlags(flags)) {
    const InteractionGraph graph = LoadBenchDataset(name, scale);
    const Duration window = graph.WindowFromPercent(10.0);
    IrsApproxOptions options;
    options.precision = 9;
    IrsApprox irs = IrsApprox::Compute(graph, window, options);
    irs.Seal();
    const SketchInfluenceOracle oracle(&irs);
    const SeedSelection seeds = SelectSeedsCelf(oracle, k);

    Rng rng(777);
    std::vector<NodeId> random_seeds;
    for (const uint64_t x :
         rng.SampleWithoutReplacement(graph.num_nodes(), k)) {
      random_seeds.push_back(static_cast<NodeId>(x));
    }

    TcicOptions tcic;
    tcic.window = window;
    tcic.probability = 0.5;
    TcltOptions tclt;
    tclt.window = window;

    transfer.AddRow(
        {name,
         TablePrinter::Cell(
             AverageTcicSpread(graph, seeds.seeds, tcic, 20, 5), 1),
         TablePrinter::Cell(
             AverageTcltSpread(graph, seeds.seeds, tclt, 20, 5), 1),
         TablePrinter::Cell(
             AverageTcicSpread(graph, random_seeds, tcic, 20, 5), 1),
         TablePrinter::Cell(
             AverageTcltSpread(graph, random_seeds, tclt, 20, 5), 1)});
  }
  transfer.Print();
  std::printf(
      "\nD: IRS seeds should beat random under BOTH cascade models — the "
      "channel structure,\nnot the model, carries the signal.\n\n");

  // ---- E: sketch backend (the paper's vHLL vs versioned bottom-k) ------
  // Accuracy and memory at comparable budgets on the two exact-feasible
  // datasets, plus build time.
  TablePrinter backend("E — sketch backend: versioned HLL vs bottom-k");
  backend.SetHeader({"Dataset", "vHLL err", "vBK err", "vHLL MB", "vBK MB",
                     "vHLL s", "vBK s"});
  for (const std::string& name :
       std::vector<std::string>{"slashdot", "higgs"}) {
    const InteractionGraph graph = LoadBenchDataset(name, scale * 2);
    const Duration window = graph.WindowFromPercent(10.0);
    const IrsExact exact = IrsExact::Compute(graph, window);
    std::vector<double> truth(graph.num_nodes());
    for (NodeId u = 0; u < graph.num_nodes(); ++u) {
      truth[u] = static_cast<double>(exact.IrsSize(u));
    }

    WallTimer vhll_timer;
    IrsApproxOptions vhll_options;
    vhll_options.precision = 9;  // beta = 512
    const IrsApprox vhll = IrsApprox::Compute(graph, window, vhll_options);
    const double vhll_seconds = vhll_timer.ElapsedSeconds();

    WallTimer vbk_timer;
    IrsBottomKOptions vbk_options;
    vbk_options.k = 512;  // same nominal budget
    const IrsApproxBottomK vbk =
        IrsApproxBottomK::Compute(graph, window, vbk_options);
    const double vbk_seconds = vbk_timer.ElapsedSeconds();

    std::vector<double> vhll_est(graph.num_nodes());
    std::vector<double> vbk_est(graph.num_nodes());
    for (NodeId u = 0; u < graph.num_nodes(); ++u) {
      vhll_est[u] = vhll.EstimateIrsSize(u);
      vbk_est[u] = vbk.EstimateIrsSize(u);
    }
    backend.AddRow(
        {name, TablePrinter::Cell(MeanRelativeError(truth, vhll_est), 3),
         TablePrinter::Cell(MeanRelativeError(truth, vbk_est), 3),
         TablePrinter::Cell(vhll.MemoryUsageBytes() / (1024.0 * 1024.0), 1),
         TablePrinter::Cell(vbk.MemoryUsageBytes() / (1024.0 * 1024.0), 1),
         TablePrinter::Cell(vhll_seconds, 2),
         TablePrinter::Cell(vbk_seconds, 2)});
  }
  backend.Print();
  std::printf(
      "\nE: bottom-k is exact below k and unbiased, but costs more per "
      "entry and per merge;\nvHLL's fixed-size cells win once sets exceed "
      "k — the paper's choice.\n");
  EmitRunReport(flags);
  return 0;
}

}  // namespace
}  // namespace ipin

int main(int argc, char** argv) { return ipin::Run(argc, argv); }
