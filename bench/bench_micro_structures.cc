// Micro-benchmarks for the extension structures: streaming source sets,
// sliding-window neighborhood profiles, versioned bottom-k, temporal paths
// and transforms (google-benchmark).

#include <benchmark/benchmark.h>

#include "ipin/baselines/temporal_pagerank.h"
#include "ipin/common/random.h"
#include "ipin/core/neighborhood_profile.h"
#include "ipin/core/source_sets.h"
#include "ipin/datasets/synthetic.h"
#include "ipin/graph/temporal_paths.h"
#include "ipin/graph/transforms.h"
#include "ipin/sketch/versioned_bottom_k.h"

namespace ipin {
namespace {

InteractionGraph MakeGraph(size_t num_interactions) {
  SyntheticConfig config;
  config.num_nodes = num_interactions / 10;
  config.num_interactions = num_interactions;
  config.time_span = static_cast<Duration>(num_interactions) * 20;
  config.seed = 17;
  return GenerateInteractionNetwork(config);
}

void BM_SourceSetApproxStream(benchmark::State& state) {
  const InteractionGraph g = MakeGraph(static_cast<size_t>(state.range(0)));
  const Duration window = g.WindowFromPercent(10.0);
  IrsApproxOptions options;
  options.precision = static_cast<int>(state.range(1));
  for (auto _ : state) {
    SourceSetApprox sets(g.num_nodes(), window, options);
    for (const Interaction& e : g.interactions()) {
      sets.ProcessInteraction(e);
    }
    benchmark::DoNotOptimize(sets.TotalSketchEntries());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(g.num_interactions()));
}
BENCHMARK(BM_SourceSetApproxStream)
    ->Args({10000, 6})
    ->Args({10000, 9})
    ->Unit(benchmark::kMillisecond);

void BM_WindowedProfileStream(benchmark::State& state) {
  const InteractionGraph g = MakeGraph(5000);
  ProfileOptions options;
  options.max_distance = static_cast<int>(state.range(0));
  options.window = g.WindowFromPercent(5.0);
  IrsApproxOptions sketch_options;
  sketch_options.precision = 6;
  for (auto _ : state) {
    WindowedProfileApprox profiles(g.num_nodes(), options, sketch_options);
    for (const Interaction& e : g.interactions()) {
      profiles.ProcessInteraction(e);
    }
    benchmark::DoNotOptimize(profiles.MemoryUsageBytes());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(g.num_interactions()));
}
BENCHMARK(BM_WindowedProfileStream)->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMillisecond);

void BM_VersionedBottomKAdd(benchmark::State& state) {
  VersionedBottomK sketch(static_cast<size_t>(state.range(0)));
  Rng rng(3);
  Timestamp t = 1LL << 40;
  for (auto _ : state) {
    sketch.Add(rng.NextUint64(), t--);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VersionedBottomKAdd)->Arg(64)->Arg(256)->Arg(512);

void BM_EarliestArrival(benchmark::State& state) {
  const InteractionGraph g = MakeGraph(static_cast<size_t>(state.range(0)));
  const auto stats = g.ComputeStats();
  Rng rng(5);
  for (auto _ : state) {
    const NodeId src = static_cast<NodeId>(rng.NextBounded(g.num_nodes()));
    benchmark::DoNotOptimize(
        EarliestArrival(g, src, stats.min_time, stats.max_time));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(g.num_interactions()));
}
BENCHMARK(BM_EarliestArrival)->Arg(10000)->Arg(50000)
    ->Unit(benchmark::kMillisecond);

void BM_FastestPaths(benchmark::State& state) {
  const InteractionGraph g = MakeGraph(static_cast<size_t>(state.range(0)));
  Rng rng(7);
  for (auto _ : state) {
    const NodeId src = static_cast<NodeId>(rng.NextBounded(g.num_nodes()));
    benchmark::DoNotOptimize(FastestPaths(g, src));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(g.num_interactions()));
}
BENCHMARK(BM_FastestPaths)->Arg(10000)->Arg(50000)
    ->Unit(benchmark::kMillisecond);

void BM_TemporalPageRank(benchmark::State& state) {
  const InteractionGraph g = MakeGraph(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeTemporalPageRank(g));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(g.num_interactions()));
}
BENCHMARK(BM_TemporalPageRank)->Arg(10000)->Arg(50000)
    ->Unit(benchmark::kMillisecond);

void BM_TemporalTranspose(benchmark::State& state) {
  const InteractionGraph g = MakeGraph(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(TemporalTranspose(g));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(g.num_interactions()));
}
BENCHMARK(BM_TemporalTranspose)->Arg(50000)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ipin
