// Table 6: wall-clock seconds to select the top-50 seeds with each method
// (IRS-approx, SKIM, PageRank, HighDegree, SmartHighDegree, ConTinEst).

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "ipin/baselines/continest.h"
#include "ipin/baselines/degree.h"
#include "ipin/baselines/pagerank.h"
#include "ipin/baselines/skim.h"
#include "ipin/common/timer.h"
#include "ipin/core/influence_maximization.h"
#include "ipin/core/influence_oracle.h"
#include "ipin/core/irs_approx.h"
#include "ipin/eval/table.h"

namespace ipin {
namespace {

int Run(int argc, char** argv) {
  const FlagMap flags = FlagMap::Parse(argc, argv);
  SetupBenchObservability(flags, "table6_seed_time");
  const double scale = flags.GetDouble("scale", 0.01);
  const size_t k = static_cast<size_t>(flags.GetInt("k", 50));
  const bool run_cte = flags.GetBool("continest", true);
  PrintBanner("Table 6: time (s) to select top-50 seeds", flags, scale);

  TablePrinter table(
      StrFormat("Table 6 — seconds to select top-%zu seeds", k));
  table.SetHeader({"Dataset", "IRS", "SKIM", "PR", "HD", "SHD", "CTE"});

  for (const std::string& name : DatasetsFromFlags(flags)) {
    const InteractionGraph graph = LoadBenchDataset(name, scale);
    std::vector<std::string> row = {name};

    {
      // IRS time includes the one-pass sketch build plus the greedy
      // selection, like the paper's "IRS approx" column.
      WallTimer timer;
      IrsApproxOptions options;
      options.precision = 9;
      IrsApprox approx =
          IrsApprox::Compute(graph, graph.WindowFromPercent(10.0), options);
      approx.Seal();
      const SketchInfluenceOracle oracle(&approx);
      const auto seeds = SelectSeedsCelf(oracle, k);
      (void)seeds;
      row.push_back(TablePrinter::Cell(timer.ElapsedSeconds(), 2));
    }
    {
      // SKIM time excludes flattening (the paper's DIMACS preprocessing is
      // reported separately there too).
      const StaticGraph flat = StaticGraph::FromInteractions(graph);
      WallTimer timer;
      SkimOptions options;
      options.probability = 0.5;
      options.num_instances = 16;
      (void)SelectSeedsSkim(flat, k, options);
      row.push_back(TablePrinter::Cell(timer.ElapsedSeconds(), 2));
    }
    {
      WallTimer timer;
      (void)SelectSeedsPageRank(graph, k);
      row.push_back(TablePrinter::Cell(timer.ElapsedSeconds(), 2));
    }
    {
      const StaticGraph flat = StaticGraph::FromInteractions(graph);
      WallTimer timer;
      (void)SelectSeedsHighDegree(flat, k);
      row.push_back(TablePrinter::Cell(timer.ElapsedSeconds(), 2));
    }
    {
      const StaticGraph flat = StaticGraph::FromInteractions(graph);
      WallTimer timer;
      (void)SelectSeedsSmartHighDegree(flat, k);
      row.push_back(TablePrinter::Cell(timer.ElapsedSeconds(), 2));
    }
    if (run_cte) {
      WallTimer timer;
      ContinestOptions options;
      options.time_horizon = 5.0;
      options.num_samples = 16;
      (void)SelectSeedsContinest(graph, k, options);
      row.push_back(TablePrinter::Cell(timer.ElapsedSeconds(), 2));
    } else {
      row.push_back("-");
    }
    table.AddRow(std::move(row));
    table.Print();  // progressive output
    std::printf("\n");
  }
  std::printf(
      "Paper shape: HD fastest, SKIM fast after preprocessing, IRS "
      "competitive and linear in m,\nConTinEst slowest (did not finish "
      "us2016 in the paper).\n");
  EmitRunReport(flags);
  return 0;
}

}  // namespace
}  // namespace ipin

int main(int argc, char** argv) { return ipin::Run(argc, argv); }
