// Live-reshard serving cost: closed-loop clients against an in-process
// router while the shard map grows 4 -> 6 shards. Three phases, same
// offered load in each:
//
//   steady4     the settled 4-shard fleet (the baseline),
//   transition  the v2 transition map installed — every query
//               double-dispatches across both epochs' owners,
//   final6      the finalized 6-shard map (double-dispatch over).
//
// The claim under test is the resharding runbook's: the transition phase
// costs extra fan-out (two epochs' legs per query) but answers stay
// bit-identical to the single-index oracle the whole way through, so
// "zero downtime" is a latency tax, not a correctness gamble. Each phase
// verifies one reference query exactly against a full-index server.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bench_common.h"
#include "ipin/common/random.h"
#include "ipin/common/string_util.h"
#include "ipin/core/irs_approx.h"
#include "ipin/eval/table.h"
#include "ipin/obs/metrics.h"
#include "ipin/serve/client.h"
#include "ipin/serve/index_manager.h"
#include "ipin/serve/router.h"
#include "ipin/serve/server.h"
#include "ipin/serve/shard_map.h"

namespace ipin {
namespace {

struct LevelResult {
  size_t ok = 0;
  size_t shed = 0;
  size_t errors = 0;
  size_t degraded = 0;
  double elapsed_s = 0.0;
  std::vector<double> latencies_us;

  double Percentile(double p) {
    if (latencies_us.empty()) return 0.0;
    std::sort(latencies_us.begin(), latencies_us.end());
    const size_t idx = static_cast<size_t>(
        p * static_cast<double>(latencies_us.size() - 1));
    return latencies_us[idx];
  }
};

LevelResult RunLevel(const serve::ClientOptions& client_options,
                     const serve::Request& request, size_t concurrency,
                     size_t requests) {
  LevelResult result;
  std::mutex mu;
  std::atomic<size_t> next{0};
  std::vector<std::thread> threads;
  threads.reserve(concurrency);
  const auto start = std::chrono::steady_clock::now();
  for (size_t t = 0; t < concurrency; ++t) {
    threads.emplace_back([&, t] {
      serve::ClientOptions options = client_options;
      options.jitter_seed = t + 1;
      serve::OracleClient client(options);
      size_t ok = 0, shed = 0, errors = 0, degraded = 0;
      std::vector<double> latencies;
      while (next.fetch_add(1) < requests) {
        const auto t0 = std::chrono::steady_clock::now();
        const auto response = client.Call(request);
        const auto t1 = std::chrono::steady_clock::now();
        if (!response.has_value()) {
          ++errors;
          continue;
        }
        if (response->status == serve::StatusCode::kOverloaded) {
          ++shed;
          continue;
        }
        if (response->status != serve::StatusCode::kOk) {
          ++errors;
          continue;
        }
        ++ok;
        if (response->degraded) ++degraded;
        latencies.push_back(
            std::chrono::duration<double, std::micro>(t1 - t0).count());
      }
      std::lock_guard<std::mutex> lock(mu);
      result.ok += ok;
      result.shed += shed;
      result.errors += errors;
      result.degraded += degraded;
      result.latencies_us.insert(result.latencies_us.end(), latencies.begin(),
                                 latencies.end());
    });
  }
  for (auto& thread : threads) thread.join();
  result.elapsed_s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
  return result;
}

// One query through the router and through the full-index reference server;
// the estimates must agree bit-for-bit (the double-dispatch overlap merges
// idempotently). Returns false on any mismatch or transport failure.
bool VerifyExactAgainstReference(const serve::ClientOptions& router_options,
                                 const serve::ClientOptions& reference_options,
                                 const serve::Request& request,
                                 const char* phase) {
  serve::OracleClient router_client(router_options);
  serve::OracleClient reference_client(reference_options);
  const auto got = router_client.Call(request);
  const auto want = reference_client.Call(request);
  if (!got.has_value() || got->status != serve::StatusCode::kOk ||
      !want.has_value() || want->status != serve::StatusCode::kOk) {
    std::fprintf(stderr, "reshard[%s]: verification query failed\n", phase);
    return false;
  }
  if (got->degraded || got->estimate != want->estimate) {
    std::fprintf(stderr,
                 "reshard[%s]: WRONG ANSWER router=%.17g reference=%.17g "
                 "degraded=%d\n",
                 phase, got->estimate, want->estimate,
                 got->degraded ? 1 : 0);
    return false;
  }
  return true;
}

int Run(int argc, char** argv) {
  const FlagMap flags = FlagMap::Parse(argc, argv);
  SetupBenchObservability(flags, "reshard");
  const double scale = flags.GetDouble("scale", 0.01);
  const int precision = static_cast<int>(flags.GetInt("precision", 9));
  const size_t requests = static_cast<size_t>(flags.GetInt("requests", 2000));
  const size_t num_seeds = static_cast<size_t>(flags.GetInt("seeds", 5));
  const int workers = static_cast<int>(flags.GetInt("workers", 2));
  PrintBanner("Live reshard: serving cost of the 4 -> 6 shard transition",
              flags, scale);

  const std::vector<std::string> datasets = DatasetsFromFlags(flags);
  const InteractionGraph graph = LoadBenchDataset(
      datasets.empty() ? "slashdot" : datasets.front(), scale);
  IrsApproxOptions options;
  options.precision = precision;
  auto built = std::make_shared<IrsApprox>(
      IrsApprox::Compute(graph, graph.WindowFromPercent(20.0), options));
  built->Seal();
  const std::shared_ptr<const IrsApprox> full = std::move(built);

  // Six endpoints; the first four form the old fleet. Old shards keep
  // their names (and thus their ring points) in the grown map, so growth
  // only MOVES ownership to shard4/shard5 — the invariant the minimal-
  // movement migration and the double-dispatch proof both rest on.
  constexpr size_t kOldShards = 4;
  constexpr size_t kNewShards = 6;
  std::vector<serve::ShardInfo> infos(kNewShards);
  for (size_t i = 0; i < kNewShards; ++i) {
    infos[i].name = StrFormat("shard%zu", i);
    infos[i].endpoint.unix_socket_path = StrFormat(
        "/tmp/ipin_bench_reshard_%d_%zu.sock", static_cast<int>(getpid()), i);
  }
  const auto old_map = std::make_shared<const serve::ShardMap>(
      std::vector<serve::ShardInfo>(infos.begin(),
                                    infos.begin() + kOldShards));
  const auto final_map = std::make_shared<const serve::ShardMap>(infos);
  auto transition = std::make_shared<serve::ShardMap>(infos);
  transition->BeginTransition(old_map);

  // Old shards serve their ORIGINAL pieces (supersets of their post-grow
  // ownership — exactly what live daemons hold mid-migration); the new
  // shards serve pieces cut by the final map.
  std::vector<std::unique_ptr<serve::IndexManager>> managers;
  std::vector<std::unique_ptr<serve::OracleServer>> shards;
  for (size_t i = 0; i < kNewShards; ++i) {
    const serve::ShardMap& cut = i < kOldShards ? *old_map : *final_map;
    managers.push_back(std::make_unique<serve::IndexManager>(""));
    managers.back()->Install(std::make_shared<const IrsApprox>(
        serve::ExtractShardIndex(*full, cut, i)));
    serve::ServerOptions server_options;
    server_options.unix_socket_path = infos[i].endpoint.unix_socket_path;
    server_options.num_workers = workers;
    server_options.queue_capacity = requests + 1;
    server_options.default_deadline_ms = 10000;
    shards.push_back(std::make_unique<serve::OracleServer>(
        managers.back().get(), server_options));
    if (!shards.back()->Start()) {
      std::fprintf(stderr, "cannot start shard %zu\n", i);
      return 1;
    }
  }

  // Full-index reference server: the exactness yardstick for each phase.
  serve::IndexManager reference_index("");
  reference_index.Install(full);
  serve::ServerOptions reference_options;
  reference_options.unix_socket_path = StrFormat(
      "/tmp/ipin_bench_reshard_%d_ref.sock", static_cast<int>(getpid()));
  reference_options.num_workers = 1;
  reference_options.queue_capacity = 16;
  reference_options.default_deadline_ms = 10000;
  serve::OracleServer reference(&reference_index, reference_options);
  if (!reference.Start()) {
    std::fprintf(stderr, "cannot start reference server\n");
    return 1;
  }

  serve::ShardMapManager map_manager("");
  map_manager.Install(old_map);
  serve::RouterOptions router_options;
  router_options.unix_socket_path = StrFormat(
      "/tmp/ipin_bench_reshard_%d_router.sock", static_cast<int>(getpid()));
  router_options.num_workers = workers;
  router_options.queue_capacity = requests + 1;
  router_options.default_deadline_ms = 10000;
  serve::RouterServer router(&map_manager, router_options);
  if (!router.Start()) {
    std::fprintf(stderr, "cannot start router\n");
    return 1;
  }

  serve::ClientOptions router_client;
  router_client.unix_socket_path = router_options.unix_socket_path;
  router_client.max_attempts = 1;
  serve::ClientOptions reference_client;
  reference_client.unix_socket_path = reference_options.unix_socket_path;
  reference_client.max_attempts = 1;

  Rng rng(4242);
  serve::Request request;
  request.method = serve::Method::kQuery;
  request.mode = serve::QueryMode::kSketch;
  request.deadline_ms = 10000;
  for (size_t i = 0; i < num_seeds; ++i) {
    request.seeds.push_back(
        static_cast<NodeId>(rng.NextBounded(graph.num_nodes())));
  }

  struct Phase {
    const char* name;
    std::shared_ptr<const serve::ShardMap> map;
  };
  const Phase phases[] = {
      {"steady4", old_map},
      {"transition", transition},
      {"final6", final_map},
  };
  const std::vector<size_t> concurrency_levels = {1, 4, 16};

  TablePrinter table(StrFormat(
      "Live reshard — %d workers/shard, %zu sketch queries per level, "
      "client-side latency (us)",
      workers, requests));
  table.SetHeader({"Phase", "Clients", "p50", "p95", "p99", "goodput/s",
                   "degraded", "errors"});

  bool exact = true;
  for (const Phase& phase : phases) {
    map_manager.Install(phase.map);
    exact = VerifyExactAgainstReference(router_client, reference_client,
                                        request, phase.name) &&
            exact;
    for (const size_t concurrency : concurrency_levels) {
      LevelResult result =
          RunLevel(router_client, request, concurrency, requests);
      const double goodput =
          result.elapsed_s > 0
              ? static_cast<double>(result.ok) / result.elapsed_s
              : 0.0;
      table.AddRow({phase.name, TablePrinter::Cell(concurrency),
                    TablePrinter::Cell(result.Percentile(0.50), 1),
                    TablePrinter::Cell(result.Percentile(0.95), 1),
                    TablePrinter::Cell(result.Percentile(0.99), 1),
                    TablePrinter::Cell(goodput, 0),
                    TablePrinter::Cell(result.degraded),
                    TablePrinter::Cell(result.errors)});
      // Registry lookup, not the IPIN_* macro: the macro caches the metric
      // per call-site, which would fold every phase into the first name.
#ifndef IPIN_OBS_DISABLED
      obs::MetricsRegistry::Global()
          .GetHistogram(StrFormat("bench.reshard.%s.p99_us", phase.name))
          ->Record(static_cast<uint64_t>(result.Percentile(0.99)));
      obs::MetricsRegistry::Global()
          .GetHistogram(StrFormat("bench.reshard.%s.goodput", phase.name))
          ->Record(static_cast<uint64_t>(goodput));
#endif
    }
  }
  table.Print();
  std::printf(
      "\nExpected shape: the transition phase pays the double-dispatch tax "
      "(two epochs'\nlegs per query) in p50/p99 and goodput; steady4 and "
      "final6 bracket it. Every\nphase's answers are verified bit-identical "
      "to the full single-index oracle —\ndegraded must be 0 throughout.\n");

  router.Shutdown();
  reference.Shutdown();
  for (auto& shard : shards) shard->Shutdown();

  EmitRunReport(flags);
  if (!exact) {
    std::fprintf(stderr, "reshard: exactness verification FAILED\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace ipin

int main(int argc, char** argv) { return ipin::Run(argc, argv); }
