// Micro-benchmarks for the sketch data structures (google-benchmark):
// HLL/vHLL insertion, windowed merge, estimation, and the domination-pruning
// ablation called out in DESIGN.md.

#include <benchmark/benchmark.h>

#include <vector>

#include "ipin/common/random.h"
#include "ipin/sketch/bottom_k.h"
#include "ipin/sketch/hll.h"
#include "ipin/sketch/vhll.h"

namespace ipin {
namespace {

void BM_HllAdd(benchmark::State& state) {
  HyperLogLog hll(static_cast<int>(state.range(0)));
  Rng rng(1);
  for (auto _ : state) {
    hll.Add(rng.NextUint64());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HllAdd)->Arg(6)->Arg(9)->Arg(12);

void BM_HllEstimate(benchmark::State& state) {
  HyperLogLog hll(static_cast<int>(state.range(0)));
  Rng rng(2);
  for (int i = 0; i < 100000; ++i) hll.Add(rng.NextUint64());
  for (auto _ : state) {
    benchmark::DoNotOptimize(hll.Estimate());
  }
}
BENCHMARK(BM_HllEstimate)->Arg(6)->Arg(9)->Arg(12);

void BM_VhllAddReverseTime(benchmark::State& state) {
  // The IRS access pattern: items arrive with decreasing timestamps.
  VersionedHll vhll(static_cast<int>(state.range(0)));
  Rng rng(3);
  Timestamp t = 1LL << 40;
  for (auto _ : state) {
    vhll.Add(rng.NextUint64(), t--);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VhllAddReverseTime)->Arg(6)->Arg(9)->Arg(12);

void BM_VhllMergeWindow(benchmark::State& state) {
  const int precision = static_cast<int>(state.range(0));
  VersionedHll source(precision);
  Rng rng(4);
  for (int i = 0; i < 20000; ++i) {
    source.Add(rng.NextUint64(), static_cast<Timestamp>(rng.NextBounded(10000)));
  }
  VersionedHll target(precision);
  for (auto _ : state) {
    target.MergeWindow(source, 2000, 5000);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VhllMergeWindow)->Arg(6)->Arg(9);

void BM_VhllEstimate(benchmark::State& state) {
  VersionedHll vhll(static_cast<int>(state.range(0)));
  Rng rng(5);
  for (int i = 0; i < 50000; ++i) {
    vhll.Add(rng.NextUint64(), static_cast<Timestamp>(rng.NextBounded(10000)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(vhll.Estimate());
  }
}
BENCHMARK(BM_VhllEstimate)->Arg(6)->Arg(9);

// Time-bounded estimation: the fresh-allocation overload builds a max-rank
// vector per call, the scratch overload reuses a caller-owned buffer. Run
// side by side they show what threading the scratch buffer through hot
// query loops (oracle InfluenceOfAll, greedy gain evaluation) saves.
void BM_VhllEstimateBeforeFreshAlloc(benchmark::State& state) {
  VersionedHll vhll(static_cast<int>(state.range(0)));
  Rng rng(8);
  for (int i = 0; i < 50000; ++i) {
    vhll.Add(rng.NextUint64(), static_cast<Timestamp>(rng.NextBounded(10000)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(vhll.EstimateBefore(5000));
  }
}
BENCHMARK(BM_VhllEstimateBeforeFreshAlloc)->Arg(6)->Arg(9);

void BM_VhllEstimateBeforeScratch(benchmark::State& state) {
  VersionedHll vhll(static_cast<int>(state.range(0)));
  Rng rng(8);
  for (int i = 0; i < 50000; ++i) {
    vhll.Add(rng.NextUint64(), static_cast<Timestamp>(rng.NextBounded(10000)));
  }
  std::vector<uint8_t> scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(vhll.EstimateBefore(5000, &scratch));
  }
}
BENCHMARK(BM_VhllEstimateBeforeScratch)->Arg(6)->Arg(9);

// Ablation: what domination pruning buys. The naive variant appends every
// (rank, time) pair; memory and per-bound scans degrade from O(log) to O(n)
// per cell.
void BM_AblationNaiveUnprunedCell(benchmark::State& state) {
  Rng rng(6);
  for (auto _ : state) {
    std::vector<std::pair<uint8_t, Timestamp>> cell;
    for (int i = 0; i < 4096; ++i) {
      cell.emplace_back(static_cast<uint8_t>(1 + rng.NextBounded(30)),
                        static_cast<Timestamp>(4096 - i));
    }
    uint8_t best = 0;
    for (const auto& [r, t] : cell) {
      if (t < 2048 && r > best) best = r;
    }
    benchmark::DoNotOptimize(best);
  }
}
BENCHMARK(BM_AblationNaiveUnprunedCell);

void BM_AblationPrunedCell(benchmark::State& state) {
  Rng rng(6);
  for (auto _ : state) {
    VersionedHll vhll(4);
    for (int i = 0; i < 4096; ++i) {
      // Force everything into one cell by driving AddEntry directly.
      vhll.AddEntry(0, static_cast<uint8_t>(1 + rng.NextBounded(30)),
                    static_cast<Timestamp>(4096 - i));
    }
    uint8_t best = 0;
    for (const auto& e : vhll.cell(0)) {
      if (e.time >= 2048) break;
      best = e.rank;
    }
    benchmark::DoNotOptimize(best);
  }
}
BENCHMARK(BM_AblationPrunedCell);

void BM_BottomKAdd(benchmark::State& state) {
  BottomK sketch(static_cast<size_t>(state.range(0)));
  Rng rng(7);
  for (auto _ : state) {
    sketch.Add(rng.NextUint64());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BottomKAdd)->Arg(64)->Arg(256);

}  // namespace
}  // namespace ipin
