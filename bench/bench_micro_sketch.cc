// Micro-benchmarks for the sketch data structures (google-benchmark):
// HLL/vHLL insertion, windowed merge, estimation, and the domination-pruning
// ablation called out in DESIGN.md.

#include <benchmark/benchmark.h>

#include <bit>
#include <vector>

#include "ipin/common/random.h"
#include "ipin/sketch/bottom_k.h"
#include "ipin/sketch/hll.h"
#include "ipin/sketch/kernels.h"
#include "ipin/sketch/vhll.h"

namespace ipin {
namespace {

void BM_HllAdd(benchmark::State& state) {
  HyperLogLog hll(static_cast<int>(state.range(0)));
  Rng rng(1);
  for (auto _ : state) {
    hll.Add(rng.NextUint64());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HllAdd)->Arg(6)->Arg(9)->Arg(12);

void BM_HllEstimate(benchmark::State& state) {
  HyperLogLog hll(static_cast<int>(state.range(0)));
  Rng rng(2);
  for (int i = 0; i < 100000; ++i) hll.Add(rng.NextUint64());
  for (auto _ : state) {
    benchmark::DoNotOptimize(hll.Estimate());
  }
}
BENCHMARK(BM_HllEstimate)->Arg(6)->Arg(9)->Arg(12);

void BM_VhllAddReverseTime(benchmark::State& state) {
  // The IRS access pattern: items arrive with decreasing timestamps.
  VersionedHll vhll(static_cast<int>(state.range(0)));
  Rng rng(3);
  Timestamp t = 1LL << 40;
  for (auto _ : state) {
    vhll.Add(rng.NextUint64(), t--);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VhllAddReverseTime)->Arg(6)->Arg(9)->Arg(12);

void BM_VhllMergeWindow(benchmark::State& state) {
  const int precision = static_cast<int>(state.range(0));
  VersionedHll source(precision);
  Rng rng(4);
  for (int i = 0; i < 20000; ++i) {
    source.Add(rng.NextUint64(), static_cast<Timestamp>(rng.NextBounded(10000)));
  }
  VersionedHll target(precision);
  for (auto _ : state) {
    target.MergeWindow(source, 2000, 5000);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VhllMergeWindow)->Arg(6)->Arg(9);

void BM_VhllEstimate(benchmark::State& state) {
  VersionedHll vhll(static_cast<int>(state.range(0)));
  Rng rng(5);
  for (int i = 0; i < 50000; ++i) {
    vhll.Add(rng.NextUint64(), static_cast<Timestamp>(rng.NextBounded(10000)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(vhll.Estimate());
  }
}
BENCHMARK(BM_VhllEstimate)->Arg(6)->Arg(9);

// Time-bounded estimation: the fresh-allocation overload builds a max-rank
// vector per call, the scratch overload reuses a caller-owned buffer. Run
// side by side they show what threading the scratch buffer through hot
// query loops (oracle InfluenceOfAll, greedy gain evaluation) saves.
void BM_VhllEstimateBeforeFreshAlloc(benchmark::State& state) {
  VersionedHll vhll(static_cast<int>(state.range(0)));
  Rng rng(8);
  for (int i = 0; i < 50000; ++i) {
    vhll.Add(rng.NextUint64(), static_cast<Timestamp>(rng.NextBounded(10000)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(vhll.EstimateBefore(5000));
  }
}
BENCHMARK(BM_VhllEstimateBeforeFreshAlloc)->Arg(6)->Arg(9);

void BM_VhllEstimateBeforeScratch(benchmark::State& state) {
  VersionedHll vhll(static_cast<int>(state.range(0)));
  Rng rng(8);
  for (int i = 0; i < 50000; ++i) {
    vhll.Add(rng.NextUint64(), static_cast<Timestamp>(rng.NextBounded(10000)));
  }
  std::vector<uint8_t> scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(vhll.EstimateBefore(5000, &scratch));
  }
}
BENCHMARK(BM_VhllEstimateBeforeScratch)->Arg(6)->Arg(9);

// Ablation: what domination pruning buys. The naive variant appends every
// (rank, time) pair; memory and per-bound scans degrade from O(log) to O(n)
// per cell.
void BM_AblationNaiveUnprunedCell(benchmark::State& state) {
  Rng rng(6);
  for (auto _ : state) {
    std::vector<std::pair<uint8_t, Timestamp>> cell;
    for (int i = 0; i < 4096; ++i) {
      cell.emplace_back(static_cast<uint8_t>(1 + rng.NextBounded(30)),
                        static_cast<Timestamp>(4096 - i));
    }
    uint8_t best = 0;
    for (const auto& [r, t] : cell) {
      if (t < 2048 && r > best) best = r;
    }
    benchmark::DoNotOptimize(best);
  }
}
BENCHMARK(BM_AblationNaiveUnprunedCell);

void BM_AblationPrunedCell(benchmark::State& state) {
  Rng rng(6);
  for (auto _ : state) {
    VersionedHll vhll(4);
    for (int i = 0; i < 4096; ++i) {
      // Force everything into one cell by driving AddEntry directly.
      vhll.AddEntry(0, static_cast<uint8_t>(1 + rng.NextBounded(30)),
                    static_cast<Timestamp>(4096 - i));
    }
    uint8_t best = 0;
    for (const auto& e : vhll.cell(0)) {
      if (e.time >= 2048) break;
      best = e.rank;
    }
    benchmark::DoNotOptimize(best);
  }
}
BENCHMARK(BM_AblationPrunedCell);

// --- SIMD kernel engine ---------------------------------------------------
// Scalar vs dispatched variants of the same workload, in the same binary on
// the same machine, so the speedup is a clean in-run ratio
// (scripts/check_kernel_speedup.py gates on it in CI). The scalar kernel is
// compiled with auto-vectorization disabled — it is the true portable
// baseline, not GCC quietly emitting the same SIMD.

constexpr size_t kUnionWidth = 16;  // sketches folded per union estimate

// Production-shaped rank rows: HLL ranks are geometric (half the cells hold
// rank 1), and the histogram build's store-forwarding behavior depends on
// the value distribution, so uniform filler would misstate the kernels.
std::vector<std::vector<uint8_t>> RandomRankRows(size_t beta, size_t rows) {
  Rng rng(9);
  std::vector<std::vector<uint8_t>> out(rows, std::vector<uint8_t>(beta));
  for (auto& row : out) {
    for (auto& r : row) {
      r = static_cast<uint8_t>(
          std::countr_zero(rng.NextUint64() | (uint64_t{1} << 62)) + 1);
    }
  }
  return out;
}

// One oracle union estimate: fold kUnionWidth max-rank rows into a scratch
// accumulator, then estimate — the exact inner loop of EstimateUnionSize.
void RunUnionEstimate(benchmark::State& state,
                      const kernels::KernelOps& ops) {
  const size_t beta = size_t{1} << static_cast<int>(state.range(0));
  const auto rows = RandomRankRows(beta, kUnionWidth);
  std::vector<uint8_t> scratch(beta);
  for (auto _ : state) {
    std::fill(scratch.begin(), scratch.end(), 0);
    for (const auto& row : rows) {
      ops.cellwise_max_u8(scratch.data(), row.data(), beta);
    }
    benchmark::DoNotOptimize(ops.estimate_from_ranks(scratch.data(), beta));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kUnionWidth * beta));
}

void BM_KernelUnionEstimateScalar(benchmark::State& state) {
  RunUnionEstimate(state,
                   *kernels::KernelsFor(kernels::SimdTarget::kScalar));
}
BENCHMARK(BM_KernelUnionEstimateScalar)->Arg(6)->Arg(9)->Arg(12);

void BM_KernelUnionEstimateDispatched(benchmark::State& state) {
  state.SetLabel(kernels::SimdTargetName(kernels::DispatchedTarget()));
  RunUnionEstimate(state, kernels::Dispatched());
}
BENCHMARK(BM_KernelUnionEstimateDispatched)->Arg(6)->Arg(9)->Arg(12);

void RunCellwiseMax(benchmark::State& state, const kernels::KernelOps& ops) {
  const size_t beta = size_t{1} << static_cast<int>(state.range(0));
  const auto rows = RandomRankRows(beta, 2);
  std::vector<uint8_t> dst(rows[0]);
  for (auto _ : state) {
    ops.cellwise_max_u8(dst.data(), rows[1].data(), beta);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(beta));
}

void BM_KernelCellwiseMaxScalar(benchmark::State& state) {
  RunCellwiseMax(state, *kernels::KernelsFor(kernels::SimdTarget::kScalar));
}
BENCHMARK(BM_KernelCellwiseMaxScalar)->Arg(9)->Arg(12);

void BM_KernelCellwiseMaxDispatched(benchmark::State& state) {
  state.SetLabel(kernels::SimdTargetName(kernels::DispatchedTarget()));
  RunCellwiseMax(state, kernels::Dispatched());
}
BENCHMARK(BM_KernelCellwiseMaxDispatched)->Arg(9)->Arg(12);

void RunEstimateFromRanks(benchmark::State& state,
                          const kernels::KernelOps& ops) {
  const size_t beta = size_t{1} << static_cast<int>(state.range(0));
  auto ranks = RandomRankRows(beta, 1)[0];
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops.estimate_from_ranks(ranks.data(), beta));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(beta));
}

void BM_KernelEstimateFromRanksScalar(benchmark::State& state) {
  RunEstimateFromRanks(state,
                       *kernels::KernelsFor(kernels::SimdTarget::kScalar));
}
BENCHMARK(BM_KernelEstimateFromRanksScalar)->Arg(9)->Arg(12);

void BM_KernelEstimateFromRanksDispatched(benchmark::State& state) {
  state.SetLabel(kernels::SimdTargetName(kernels::DispatchedTarget()));
  RunEstimateFromRanks(state, kernels::Dispatched());
}
BENCHMARK(BM_KernelEstimateFromRanksDispatched)->Arg(9)->Arg(12);

// The windowed materialization kernel over arena-layout entry lists.
void RunBoundedMaxInto(benchmark::State& state,
                       const kernels::KernelOps& ops) {
  const int precision = static_cast<int>(state.range(0));
  const size_t beta = size_t{1} << precision;
  VersionedHll sketch(precision);
  Rng rng(10);
  for (int i = 0; i < 50000; ++i) {
    sketch.Add(rng.NextUint64(), static_cast<Timestamp>(rng.NextBounded(10000)));
  }
  std::vector<uint8_t> counts(beta);
  std::vector<uint8_t> ranks;
  std::vector<int64_t> times;
  for (size_t c = 0; c < beta; ++c) {
    counts[c] = static_cast<uint8_t>(sketch.cell(c).size());
    for (const auto& e : sketch.cell(c)) {
      ranks.push_back(e.rank);
      times.push_back(e.time);
    }
  }
  std::vector<uint8_t> dst(beta);
  for (auto _ : state) {
    std::fill(dst.begin(), dst.end(), 0);
    ops.bounded_max_into(counts.data(), ranks.data(), times.data(), beta,
                         ranks.size(), 5000, dst.data());
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(ranks.size()));
}

void BM_KernelBoundedMaxIntoScalar(benchmark::State& state) {
  RunBoundedMaxInto(state,
                    *kernels::KernelsFor(kernels::SimdTarget::kScalar));
}
BENCHMARK(BM_KernelBoundedMaxIntoScalar)->Arg(6)->Arg(9);

void BM_KernelBoundedMaxIntoDispatched(benchmark::State& state) {
  state.SetLabel(kernels::SimdTargetName(kernels::DispatchedTarget()));
  RunBoundedMaxInto(state, kernels::Dispatched());
}
BENCHMARK(BM_KernelBoundedMaxIntoDispatched)->Arg(6)->Arg(9);

void BM_BottomKAdd(benchmark::State& state) {
  BottomK sketch(static_cast<size_t>(state.range(0)));
  Rng rng(7);
  for (auto _ : state) {
    sketch.Add(rng.NextUint64());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BottomKAdd)->Arg(64)->Arg(256);

}  // namespace
}  // namespace ipin
