// Figure 5 (a-l): average TCIC spread of the top-k seeds selected by each
// method (PR, HD, SHD, SKIM, IRS-approx, IRS-exact, ConTinEst), for
// k in {5..50}, window length in {1, 20} percent, and infection probability
// in {0.5, 1.0}, on the Lkml, Enron and Facebook datasets.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "ipin/baselines/continest.h"
#include "ipin/baselines/degree.h"
#include "ipin/baselines/degree_discount.h"
#include "ipin/baselines/pagerank.h"
#include "ipin/baselines/skim.h"
#include "ipin/baselines/temporal_pagerank.h"
#include "ipin/core/influence_maximization.h"
#include "ipin/core/influence_oracle.h"
#include "ipin/core/irs_approx.h"
#include "ipin/core/irs_exact.h"
#include "ipin/core/tcic.h"
#include "ipin/eval/spread_eval.h"
#include "ipin/eval/table.h"

namespace ipin {
namespace {

struct MethodSeeds {
  std::string name;
  std::vector<NodeId> seeds;
};

// ConTinEst diffusion horizon calibrated to the TCIC window fraction: delays
// are O(1) units per hop, so a 1% window corresponds to a short horizon and
// 20% to a generous one (see DESIGN.md substitutions).
double ContinestHorizon(double window_percent) {
  return window_percent <= 1.0 ? 1.0 : 5.0;
}

std::vector<MethodSeeds> SelectAllSeeds(const InteractionGraph& graph,
                                        Duration window, double probability,
                                        double window_percent, size_t k,
                                        bool extended) {
  std::vector<MethodSeeds> all;

  all.push_back({"PR", SelectSeedsPageRank(graph, k)});
  all.push_back({"HD", SelectSeedsHighDegree(graph, k)});
  all.push_back({"SHD", SelectSeedsSmartHighDegree(graph, k)});
  if (extended) {
    // Extension baselines beyond the paper's Figure 5 line-up.
    all.push_back({"DD", SelectSeedsDegreeDiscount(graph, k, probability)});
    all.push_back({"TPR", SelectSeedsTemporalPageRank(graph, k)});
  }

  SkimOptions skim_options;
  skim_options.probability = probability;
  skim_options.num_instances = 16;
  all.push_back({"SKIM", SelectSeedsSkim(graph, k, skim_options).seeds});

  ContinestOptions cte_options;
  cte_options.time_horizon = ContinestHorizon(window_percent);
  cte_options.num_samples = 16;
  all.push_back(
      {"CTE", SelectSeedsContinest(graph, k, cte_options).seeds});

  IrsApproxOptions approx_options;
  approx_options.precision = 9;
  IrsApprox approx = IrsApprox::Compute(graph, window, approx_options);
  approx.Seal();
  const SketchInfluenceOracle sketch_oracle(&approx);
  all.push_back(
      {"IRS(Approx)", SelectSeedsCelf(sketch_oracle, k).seeds});

  const IrsExact exact = IrsExact::Compute(graph, window);
  const ExactInfluenceOracle exact_oracle(&exact);
  all.push_back({"IRS(Exact)", SelectSeedsCelf(exact_oracle, k).seeds});

  return all;
}

int Run(int argc, char** argv) {
  const FlagMap flags = FlagMap::Parse(argc, argv);
  SetupBenchObservability(flags, "fig5_spread");
  const double scale = flags.GetDouble("scale", 0.02);
  const size_t runs = static_cast<size_t>(flags.GetInt("runs", 20));
  const size_t max_k = static_cast<size_t>(flags.GetInt("k", 50));
  const bool extended = flags.GetBool("extended", false);
  PrintBanner("Figure 5: TCIC spread of top-k seeds per method", flags, scale);

  const std::vector<std::string> datasets = [&flags] {
    const std::string arg =
        flags.GetString("datasets", "lkml,enron,facebook");
    std::vector<std::string> names;
    for (const auto piece : SplitString(arg, ",")) names.emplace_back(piece);
    return names;
  }();

  std::vector<size_t> ks;
  for (size_t k = 5; k <= max_k; k += 5) ks.push_back(k);

  for (const double probability : {0.5, 1.0}) {
    for (const double window_percent : {1.0, 20.0}) {
      for (const std::string& name : datasets) {
        const InteractionGraph graph = LoadBenchDataset(name, scale);
        const Duration window = graph.WindowFromPercent(window_percent);

        const std::vector<MethodSeeds> methods = SelectAllSeeds(
            graph, window, probability, window_percent, max_k, extended);

        TcicOptions tcic;
        tcic.window = window;
        tcic.probability = probability;

        TablePrinter table(StrFormat(
            "Figure 5 — %s (w = %g%%, p = %.0f%%): avg spread of top-k seeds",
            name.c_str(), window_percent, probability * 100));
        std::vector<std::string> header = {"k"};
        for (const MethodSeeds& m : methods) header.push_back(m.name);
        table.SetHeader(std::move(header));

        std::vector<SpreadCurve> curves;
        for (const MethodSeeds& m : methods) {
          curves.push_back(EvaluateSpreadCurve(graph, m.name, m.seeds, ks,
                                               tcic, runs, 777));
        }
        for (size_t ki = 0; ki < ks.size(); ++ki) {
          std::vector<std::string> row = {TablePrinter::Cell(ks[ki])};
          for (const SpreadCurve& curve : curves) {
            row.push_back(TablePrinter::Cell(curve.spreads[ki], 1));
          }
          table.AddRow(std::move(row));
        }
        table.Print();
        std::printf("\n");
      }
    }
  }
  std::printf(
      "Paper shape: IRS(Exact) leads or ties every configuration; "
      "IRS(Approx) is close;\nstatic methods catch up as the window "
      "grows.\n");
  EmitRunReport(flags);
  return 0;
}

}  // namespace
}  // namespace ipin

int main(int argc, char** argv) { return ipin::Run(argc, argv); }
