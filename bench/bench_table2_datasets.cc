// Table 2: characteristics of the interaction networks (|V|, |E|, days).
// Prints the paper's published numbers next to the generated synthetic
// stand-ins at the chosen scale.

#include <cstdio>

#include "bench_common.h"
#include "ipin/eval/table.h"
#include "ipin/graph/temporal_stats.h"

namespace ipin {
namespace {

int Run(int argc, char** argv) {
  const FlagMap flags = FlagMap::Parse(argc, argv);
  SetupBenchObservability(flags, "table2_datasets");
  const double scale = flags.GetDouble("scale", 0.01);
  PrintBanner("Table 2: dataset characteristics", flags, scale);

  TablePrinter table("Table 2 — paper vs generated (counts in thousands)");
  table.SetHeader({"Dataset", "paper |V|[k]", "paper |E|[k]", "paper days",
                   "gen |V|[k]", "gen |E|[k]", "gen days",
                   "gen static edges[k]"});

  for (const PaperDatasetStats& paper : PaperTable2()) {
    const InteractionGraph graph = LoadBenchDataset(paper.name, scale);
    const InteractionGraphStats stats = graph.ComputeStats();
    const double days =
        static_cast<double>(stats.time_span) / 86400.0;  // second resolution
    table.AddRow({paper.name,
                  TablePrinter::Cell(paper.num_nodes / 1000.0, 1),
                  TablePrinter::Cell(paper.num_interactions / 1000.0, 1),
                  TablePrinter::Cell(static_cast<int64_t>(paper.days)),
                  TablePrinter::Cell(stats.num_nodes / 1000.0, 1),
                  TablePrinter::Cell(stats.num_interactions / 1000.0, 1),
                  TablePrinter::Cell(days, 0),
                  TablePrinter::Cell(stats.num_static_edges / 1000.0, 1)});
  }
  table.Print();

  // Extension: temporal-fingerprint statistics of the generated networks —
  // evidence that each stand-in carries its family's signature (heavy-tail
  // hubs, reply chains, burstiness).
  TablePrinter fingerprint("Temporal fingerprints of the generated networks");
  fingerprint.SetHeader({"Dataset", "top1% sender share", "reciprocity",
                         "reply fraction", "burstiness CV"});
  for (const PaperDatasetStats& paper : PaperTable2()) {
    const InteractionGraph graph = LoadBenchDataset(paper.name, scale);
    const TemporalStats stats = ComputeTemporalStats(graph);
    fingerprint.AddRow(
        {paper.name,
         TablePrinter::Cell(stats.out_activity.top1_percent_share, 2),
         TablePrinter::Cell(stats.reciprocity, 3),
         TablePrinter::Cell(stats.reply_fraction, 3),
         TablePrinter::Cell(stats.burstiness_cv, 2)});
  }
  std::printf("\n");
  fingerprint.Print();
  EmitRunReport(flags);
  return 0;
}

}  // namespace
}  // namespace ipin

int main(int argc, char** argv) { return ipin::Run(argc, argv); }
