// Table 5: number of common seeds among the top-10 seed sets selected by the
// IRS method at different window lengths (1%, 10%, 20%).

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "ipin/core/influence_maximization.h"
#include "ipin/core/influence_oracle.h"
#include "ipin/core/irs_approx.h"
#include "ipin/eval/metrics.h"
#include "ipin/eval/table.h"

namespace ipin {
namespace {

int Run(int argc, char** argv) {
  const FlagMap flags = FlagMap::Parse(argc, argv);
  SetupBenchObservability(flags, "table5_seed_overlap");
  const double scale = flags.GetDouble("scale", 0.01);
  const size_t k = static_cast<size_t>(flags.GetInt("k", 10));
  PrintBanner("Table 5: common seeds across window lengths", flags, scale);

  TablePrinter table(
      StrFormat("Table 5 — common seeds between window lengths (top %zu)", k));
  table.SetHeader({"Dataset", "1% - 10%", "1% - 20%", "10% - 20%"});

  for (const std::string& name : DatasetsFromFlags(flags)) {
    const InteractionGraph graph = LoadBenchDataset(name, scale);
    const std::vector<double> percents = {1.0, 10.0, 20.0};
    std::vector<std::vector<NodeId>> seeds;
    for (const double pct : percents) {
      IrsApproxOptions options;
      options.precision = 9;
      IrsApprox approx =
          IrsApprox::Compute(graph, graph.WindowFromPercent(pct), options);
      approx.Seal();
      const SketchInfluenceOracle oracle(&approx);
      seeds.push_back(SelectSeedsCelf(oracle, k).seeds);
    }
    table.AddRow({name, TablePrinter::Cell(SeedOverlap(seeds[0], seeds[1])),
                  TablePrinter::Cell(SeedOverlap(seeds[0], seeds[2])),
                  TablePrinter::Cell(SeedOverlap(seeds[1], seeds[2]))});
  }
  table.Print();
  std::printf(
      "\nPaper shape: little overlap between 1%% and the larger windows; "
      "10%% and 20%% agree much more\n(the window length genuinely changes "
      "who the top influencers are).\n");
  EmitRunReport(flags);
  return 0;
}

}  // namespace
}  // namespace ipin

int main(int argc, char** argv) { return ipin::Run(argc, argv); }
