// Shared main for the google-benchmark micro-benches. Replaces
// benchmark::benchmark_main so the observability flags the harnesses take
// work here too:
//
//   --trace_out=FILE    record trace events, write a Chrome trace on exit
//   --metrics_out=FILE  write the ipin.metrics.v1 run report on exit
//
// Both flags are stripped from argv before benchmark::Initialize (which
// rejects flags it does not know). Everything else behaves like the stock
// benchmark main, including --benchmark_format=json etc.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "ipin/obs/export.h"
#include "ipin/obs/ledger.h"
#include "ipin/obs/memtally.h"
#include "ipin/obs/trace_events.h"

namespace {

// Extracts "--<name>=value" from argv (removing it) and returns the value,
// or "" when absent.
std::string TakeFlag(int* argc, char** argv, const char* name) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) != 0) continue;
    std::string value = argv[i] + prefix.size();
    for (int j = i; j + 1 < *argc; ++j) argv[j] = argv[j + 1];
    --*argc;
    return value;
  }
  return "";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string trace_out = TakeFlag(&argc, argv, "trace_out");
  const std::string metrics_out = TakeFlag(&argc, argv, "metrics_out");

  // google-benchmark rejects unknown flags, so the ledger directory comes
  // in through the environment (run_benches.sh exports it).
  ipin::obs::RunLedgerOptions ledger_options;
  if (const char* env = std::getenv("IPIN_LEDGER_DIR");
      env != nullptr && env[0] != '\0') {
    ledger_options.dir = env;
  }
  ledger_options.tool = "bench_micro";
  std::string self = argv[0] != nullptr ? argv[0] : "bench_micro";
  if (const size_t slash = self.find_last_of('/');
      slash != std::string::npos) {
    self = self.substr(slash + 1);
  }
  ledger_options.command = self;
  ipin::obs::RunLedger::Global().Begin(ledger_options);

  if (!trace_out.empty()) ipin::obs::StartTraceRecording();

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  if (!trace_out.empty()) {
    ipin::obs::StopTraceRecording();
    if (ipin::obs::WriteChromeTrace(trace_out)) {
      std::fprintf(stderr, "# chrome trace -> %s\n", trace_out.c_str());
    }
  }
  if (!metrics_out.empty()) {
    ipin::obs::PublishMemoryGauges();
    if (ipin::obs::WriteMetricsReportFile(metrics_out)) {
      std::fprintf(stderr, "# metrics report -> %s\n", metrics_out.c_str());
    }
  }
  const std::string ledger_path = ipin::obs::RunLedger::Global().Finish(0);
  if (!ledger_path.empty()) {
    std::fprintf(stderr, "# run ledger -> %s\n", ledger_path.c_str());
  }
  return 0;
}
