// Table 3: average relative error of the vHLL-estimated IRS sizes versus
// the exact algorithm, as a function of beta in {16..512} and window length
// in {1, 10, 20} percent, on the Higgs and Slashdot datasets.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "ipin/core/irs_approx.h"
#include "ipin/core/irs_exact.h"
#include "ipin/eval/metrics.h"
#include "ipin/eval/table.h"

namespace ipin {
namespace {

int Run(int argc, char** argv) {
  const FlagMap flags = FlagMap::Parse(argc, argv);
  SetupBenchObservability(flags, "table3_accuracy");
  // The paper runs exact on Higgs and Slashdot only (memory); scale so that
  // the exact algorithm fits comfortably.
  const double scale = flags.GetDouble("scale", 0.05);
  PrintBanner("Table 3: avg relative error of IRS size vs beta", flags, scale);

  const std::vector<std::string> datasets = [&flags] {
    const std::string arg = flags.GetString("datasets", "higgs,slashdot");
    std::vector<std::string> names;
    for (const auto piece : SplitString(arg, ",")) names.emplace_back(piece);
    return names;
  }();
  const std::vector<double> window_percents = {1.0, 10.0, 20.0};
  const std::vector<int> precisions = {4, 5, 6, 7, 8, 9};  // beta 16..512

  TablePrinter table("Table 3 — mean relative error of |IRS| estimates");
  table.SetHeader({"Dataset", "beta", "w=1%", "w=10%", "w=20%"});

  for (const std::string& name : datasets) {
    const InteractionGraph graph = LoadBenchDataset(name, scale);

    // Exact sizes per window (computed once per window).
    std::vector<std::vector<double>> exact_sizes;
    for (const double pct : window_percents) {
      const Duration window = graph.WindowFromPercent(pct);
      const IrsExact exact = IrsExact::Compute(graph, window);
      std::vector<double> sizes(graph.num_nodes());
      for (NodeId u = 0; u < graph.num_nodes(); ++u) {
        sizes[u] = static_cast<double>(exact.IrsSize(u));
      }
      exact_sizes.push_back(std::move(sizes));
    }

    for (const int precision : precisions) {
      std::vector<std::string> row = {
          name, TablePrinter::Cell(static_cast<size_t>(1) << precision)};
      for (size_t wi = 0; wi < window_percents.size(); ++wi) {
        const Duration window = graph.WindowFromPercent(window_percents[wi]);
        IrsApproxOptions options;
        options.precision = precision;
        IrsApprox approx = IrsApprox::Compute(graph, window, options);
        approx.Seal();
        std::vector<double> est(graph.num_nodes());
        for (NodeId u = 0; u < graph.num_nodes(); ++u) {
          est[u] = approx.EstimateIrsSize(u);
        }
        row.push_back(
            TablePrinter::Cell(MeanRelativeError(exact_sizes[wi], est), 3));
      }
      table.AddRow(std::move(row));
    }
  }
  table.Print();
  std::printf(
      "\nPaper shape: error decreases with beta (~1.04/sqrt(beta)) and grows "
      "mildly with window length.\n");
  EmitRunReport(flags);
  return 0;
}

}  // namespace
}  // namespace ipin

int main(int argc, char** argv) { return ipin::Run(argc, argv); }
