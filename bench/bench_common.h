#ifndef IPIN_BENCH_BENCH_COMMON_H_
#define IPIN_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>
#include <vector>

#include "ipin/common/check.h"
#include "ipin/common/flags.h"
#include "ipin/common/string_util.h"
#include "ipin/common/thread_pool.h"
#include "ipin/datasets/registry.h"
#include "ipin/graph/interaction_graph.h"
#include "ipin/obs/export.h"
#include "ipin/obs/memtally.h"
#include "ipin/obs/metrics.h"
#include "ipin/obs/trace_events.h"

// Shared plumbing for the table/figure harnesses: flag handling, dataset
// loading at a bench-appropriate scale, small formatting helpers, and the
// machine-readable run report every harness emits on exit.

namespace ipin {

/// Extra down-scaling applied to the us2016 dataset: the paper ran it on a
/// dedicated 64 GB machine; the default harness scale targets a laptop.
inline constexpr double kUs2016ExtraScale = 0.25;

/// Loads a named synthetic dataset at `scale` (us2016 gets the extra
/// factor), sanity-checking the result.
inline InteractionGraph LoadBenchDataset(const std::string& name,
                                         double scale) {
  const double effective =
      name == "us2016" ? scale * kUs2016ExtraScale : scale;
  InteractionGraph graph = LoadSyntheticDataset(name, effective);
  IPIN_CHECK(graph.is_sorted());
  return graph;
}

/// Datasets to run: --datasets=a,b,c or all six by default.
inline std::vector<std::string> DatasetsFromFlags(const FlagMap& flags) {
  const std::string arg = flags.GetString("datasets", "");
  if (arg.empty()) return ListDatasetNames();
  std::vector<std::string> names;
  for (const auto piece : SplitString(arg, ",")) {
    names.emplace_back(piece);
  }
  return names;
}

/// Prints the standard harness banner with the resolved configuration.
inline void PrintBanner(const char* experiment, const FlagMap& flags,
                        double scale) {
  std::printf("# %s\n", experiment);
  std::printf("# scale=%.4g (use --scale=... to change)\n", scale);
  std::printf(
      "# NOTE: datasets are synthetic stand-ins for the paper's corpora "
      "(see DESIGN.md);\n#       compare shapes, not absolute values.\n\n");
  (void)flags;
}

/// Starts opt-in trace-event recording when --trace_out=FILE was passed and
/// applies --threads=N to the global pool (0 or absent = IPIN_THREADS env /
/// hardware default). Call once, right after parsing flags; EmitRunReport
/// stops the session and writes the Chrome trace file.
inline void SetupBenchObservability(const FlagMap& flags) {
  if (flags.Has("threads")) {
    const int64_t threads = flags.GetInt("threads", 0);
    SetGlobalThreads(threads <= 0 ? 0 : static_cast<size_t>(threads));
  }
  if (!flags.GetString("trace_out", "").empty()) {
    obs::StartTraceRecording();
  }
}

/// Emits the harness's machine-readable run report (metrics registry +
/// span tree, JSON schema ipin.metrics.v1). With --metrics_out=FILE the
/// report is written there; otherwise it is appended to stdout so every
/// bench run carries its counters alongside the printed timings. When
/// --trace_out=FILE is set (and SetupBenchObservability started recording),
/// stops the session and writes the Chrome trace there. Call once, at the
/// end of main.
inline void EmitRunReport(const FlagMap& flags) {
  const std::string trace_path = flags.GetString("trace_out", "");
  if (!trace_path.empty()) {
    obs::StopTraceRecording();
    if (obs::WriteChromeTrace(trace_path)) {
      std::printf("\n# chrome trace -> %s\n", trace_path.c_str());
    }
  }
  // Mirror measured byte tallies into mem.* gauges so the report (and any
  // trace counter tracks already sampled) carries them.
  obs::PublishMemoryGauges();
  // Record the effective parallelism so a bench JSON is self-describing:
  // a thread-count=1 run is comparable against the bench history, a
  // multi-thread run is labelled as such.
  IPIN_GAUGE_SET("parallel.threads.effective", GlobalThreads());
  const std::string path = flags.GetString("metrics_out", "");
  if (!path.empty()) {
    if (obs::WriteMetricsReportFile(path)) {
      std::printf("\n# metrics report -> %s\n", path.c_str());
    }
    return;
  }
  std::printf("\n# run report (pass --metrics_out=FILE to write to a file):\n");
  std::printf("%s\n", obs::GlobalMetricsReportJson().c_str());
}

}  // namespace ipin

#endif  // IPIN_BENCH_BENCH_COMMON_H_
