#ifndef IPIN_BENCH_BENCH_COMMON_H_
#define IPIN_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "ipin/common/check.h"
#include "ipin/common/flags.h"
#include "ipin/common/string_util.h"
#include "ipin/common/thread_pool.h"
#include "ipin/datasets/registry.h"
#include "ipin/graph/interaction_graph.h"
#include "ipin/obs/export.h"
#include "ipin/obs/ledger.h"
#include "ipin/obs/memtally.h"
#include "ipin/obs/metrics.h"
#include "ipin/obs/progress.h"
#include "ipin/obs/trace_events.h"

// Shared plumbing for the table/figure harnesses: flag handling, dataset
// loading at a bench-appropriate scale, small formatting helpers, and the
// machine-readable run report every harness emits on exit.

namespace ipin {

/// Extra down-scaling applied to the us2016 dataset: the paper ran it on a
/// dedicated 64 GB machine; the default harness scale targets a laptop.
inline constexpr double kUs2016ExtraScale = 0.25;

/// Loads a named synthetic dataset at `scale` (us2016 gets the extra
/// factor), sanity-checking the result.
inline InteractionGraph LoadBenchDataset(const std::string& name,
                                         double scale) {
  const double effective =
      name == "us2016" ? scale * kUs2016ExtraScale : scale;
  InteractionGraph graph = LoadSyntheticDataset(name, effective);
  IPIN_CHECK(graph.is_sorted());
  return graph;
}

/// Datasets to run: --datasets=a,b,c or all six by default.
inline std::vector<std::string> DatasetsFromFlags(const FlagMap& flags) {
  const std::string arg = flags.GetString("datasets", "");
  if (arg.empty()) return ListDatasetNames();
  std::vector<std::string> names;
  for (const auto piece : SplitString(arg, ",")) {
    names.emplace_back(piece);
  }
  return names;
}

/// Prints the standard harness banner with the resolved configuration.
inline void PrintBanner(const char* experiment, const FlagMap& flags,
                        double scale) {
  std::printf("# %s\n", experiment);
  std::printf("# scale=%.4g (use --scale=... to change)\n", scale);
  std::printf(
      "# NOTE: datasets are synthetic stand-ins for the paper's corpora "
      "(see DESIGN.md);\n#       compare shapes, not absolute values.\n\n");
  (void)flags;
}

/// Starts opt-in trace-event recording when --trace_out=FILE was passed,
/// applies --threads=N to the global pool (0 or absent = IPIN_THREADS env /
/// hardware default), opens the run ledger (written on EmitRunReport when
/// --ledger_dir=DIR or IPIN_LEDGER_DIR names a directory), and starts the
/// heartbeat reporter when --progress_out=FILE (cadence --heartbeat_ms,
/// default 1000). Call once, right after parsing flags; EmitRunReport
/// closes everything out. `experiment` names the run in its ledger.
inline void SetupBenchObservability(const FlagMap& flags,
                                    const char* experiment = "bench") {
  if (flags.Has("threads")) {
    const int64_t threads = flags.GetInt("threads", 0);
    SetGlobalThreads(threads <= 0 ? 0 : static_cast<size_t>(threads));
  }
  if (!flags.GetString("trace_out", "").empty()) {
    obs::StartTraceRecording();
  }
  obs::RunLedgerOptions ledger_options;
  ledger_options.dir = flags.GetString("ledger_dir", "");
  if (ledger_options.dir.empty()) {
    if (const char* env = std::getenv("IPIN_LEDGER_DIR");
        env != nullptr && env[0] != '\0') {
      ledger_options.dir = env;
    }
  }
  ledger_options.tool = "bench";
  ledger_options.command = experiment;
  ledger_options.args = StrFormat(
      "--scale=%g --datasets=%s --threads=%zu",
      flags.GetDouble("scale", 0.0),
      flags.GetString("datasets", "all").c_str(), GlobalThreads());
  obs::RunLedger::Global().Begin(ledger_options);
  const std::string progress_out = flags.GetString("progress_out", "");
  if (!progress_out.empty()) {
    obs::ProgressOptions popts;
    popts.interval_ms =
        static_cast<uint64_t>(flags.GetInt("heartbeat_ms", 1000));
    popts.out_path = progress_out;
    obs::StartProgressReporting(popts);
  }
}

/// Emits the harness's machine-readable run report (metrics registry +
/// span tree, JSON schema ipin.metrics.v1). With --metrics_out=FILE the
/// report is written there; otherwise it is appended to stdout so every
/// bench run carries its counters alongside the printed timings. When
/// --trace_out=FILE is set (and SetupBenchObservability started recording),
/// stops the session and writes the Chrome trace there. Call once, at the
/// end of main.
inline void EmitRunReport(const FlagMap& flags) {
  obs::StopProgressReporting();
  const std::string trace_path = flags.GetString("trace_out", "");
  if (!trace_path.empty()) {
    obs::StopTraceRecording();
    if (obs::WriteChromeTrace(trace_path)) {
      std::printf("\n# chrome trace -> %s\n", trace_path.c_str());
      obs::RunLedger::Global().RecordOutput(trace_path);
    }
  }
  // Mirror measured byte tallies into mem.* gauges so the report (and any
  // trace counter tracks already sampled) carries them; ditto the
  // per-phase pool profiles (parallel.phase.*).
  obs::PublishMemoryGauges();
  PublishPoolPhaseMetrics();
  // Record the effective parallelism so a bench JSON is self-describing:
  // a thread-count=1 run is comparable against the bench history, a
  // multi-thread run is labelled as such.
  IPIN_GAUGE_SET("parallel.threads.effective", GlobalThreads());
  const std::string path = flags.GetString("metrics_out", "");
  if (!path.empty()) {
    if (obs::WriteMetricsReportFile(path)) {
      std::printf("\n# metrics report -> %s\n", path.c_str());
      obs::RunLedger::Global().RecordOutput(path);
    }
  } else {
    std::printf(
        "\n# run report (pass --metrics_out=FILE to write to a file):\n");
    std::printf("%s\n", obs::GlobalMetricsReportJson().c_str());
  }
  const std::string ledger_path = obs::RunLedger::Global().Finish(0);
  if (!ledger_path.empty()) {
    std::printf("# run ledger -> %s\n", ledger_path.c_str());
  }
}

}  // namespace ipin

#endif  // IPIN_BENCH_BENCH_COMMON_H_
