// Figure 3: time for the approximate one-pass algorithm to process all
// interactions, as a function of the window length (1% .. 100% of the time
// span). The paper plots log(time); we print seconds per (dataset, window).

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "ipin/core/irs_approx.h"
#include "ipin/eval/table.h"
#include "ipin/obs/metrics.h"

namespace ipin {
namespace {

int Run(int argc, char** argv) {
  const FlagMap flags = FlagMap::Parse(argc, argv);
  SetupBenchObservability(flags, "fig3_processing_time");
  const double scale = flags.GetDouble("scale", 0.01);
  const int precision = static_cast<int>(flags.GetInt("precision", 9));
  PrintBanner("Figure 3: processing time vs window length", flags, scale);

  const std::vector<double> window_percents = {1,  2,  5,  10, 20,
                                               40, 60, 80, 100};

  TablePrinter table(
      "Figure 3 — one-pass processing time (seconds) per window length (%)");
  std::vector<std::string> header = {"Dataset", "m"};
  for (const double pct : window_percents) {
    header.push_back(StrFormat("%g%%", pct));
  }
  table.SetHeader(std::move(header));

  for (const std::string& name : DatasetsFromFlags(flags)) {
    const InteractionGraph graph = LoadBenchDataset(name, scale);
    std::vector<std::string> row = {
        name, TablePrinter::Cell(graph.num_interactions())};
    for (const double pct : window_percents) {
      IrsApproxOptions options;
      options.precision = precision;
      // ScopedTimer: the table cell and the "bench.fig3.compute_us"
      // histogram in the run report come from the same measurement.
      obs::ScopedTimer timer(
          obs::MetricsRegistry::Global().GetHistogram("bench.fig3.compute_us"));
      const IrsApprox approx =
          IrsApprox::Compute(graph, graph.WindowFromPercent(pct), options);
      (void)approx;
      row.push_back(TablePrinter::Cell(timer.Stop(), 3));
    }
    table.AddRow(std::move(row));
    table.Print();  // progressive output: reprint after each dataset
    std::printf("\n");
  }
  std::printf(
      "Paper shape: time grows with the window, then flattens once the "
      "window exceeds ~10%%\n(the IRS stops changing and the analysis "
      "approaches the static-graph case).\n");
  EmitRunReport(flags);
  return 0;
}

}  // namespace
}  // namespace ipin

int main(int argc, char** argv) { return ipin::Run(argc, argv); }
