// ipin_top: live terminal dashboard for a running ipin_oracled, in the
// spirit of top(1). Once a second (configurable) it sends a "stats" request
// and renders the windowed rates and latency percentiles the server
// computes from its WindowedAggregator:
//
//   ipin_top --socket=/tmp/ipin.sock [--interval_ms=1000] [--count=0]
//   ipin_top --port=7411 [--once]
//
//   epoch  3  queue  2/64  conns  5  workers 4  exact yes
//   win 10s  qps 412.3  ok/s 408.1  shed/s 0.0  degr/s 1.2  ddl/s 0.4
//   query latency  p50 812us  p95 2.2ms  p99 4.1ms  (n=4096)
//
// --once (or --count=N) prints N samples without clearing the screen —
// the scriptable mode the smoke test uses. The win_* fields are only
// exported by obs-enabled servers; against an obs-disabled build ipin_top
// still shows the queue/connection gauges and prints "-" for the rest.
//
// Exit codes: 0 after --count samples (or on SIGINT), 2 when the server
// cannot be reached.

#include <csignal>
#include <cstdio>
#include <map>
#include <string>
#include <thread>

#include "ipin/common/flags.h"
#include "ipin/serve/client.h"

namespace ipin {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: ipin_top (--socket=<path> | --port=<n>) "
               "[--host=127.0.0.1]\n"
               "  [--interval_ms=1000] [--count=0] [--once]\n");
  return 2;
}

volatile std::sig_atomic_t g_stop = 0;
void HandleStopSignal(int) { g_stop = 1; }

// One microsecond value, humanized: 812us / 2.2ms / 1.3s.
std::string FormatUs(double us) {
  char buf[32];
  if (us < 1000.0) {
    std::snprintf(buf, sizeof(buf), "%.0fus", us);
  } else if (us < 1e6) {
    std::snprintf(buf, sizeof(buf), "%.1fms", us / 1000.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", us / 1e6);
  }
  return buf;
}

void Render(const serve::Response& response, bool clear) {
  std::map<std::string, double> info(response.info.begin(),
                                     response.info.end());
  const auto get = [&info](const char* key, double fallback = -1.0) {
    const auto it = info.find(key);
    return it == info.end() ? fallback : it->second;
  };
  if (clear) std::printf("\x1b[H\x1b[2J");

  std::printf("epoch %llu  queue %.0f/%.0f  conns %.0f  workers %.0f  "
              "exact %s  draining %s\n",
              static_cast<unsigned long long>(response.epoch),
              get("queue_depth", 0.0), get("queue_capacity", 0.0),
              get("connections_active", 0.0), get("workers", 0.0),
              get("exact_loaded", 0.0) > 0 ? "yes" : "no",
              get("draining", 0.0) > 0 ? "yes" : "no");

  if (get("win_s") < 0) {
    // Server compiled with -DIPIN_OBS_DISABLED: no windowed aggregation.
    std::printf("win -  (server exports no windowed metrics)\n");
  } else {
    std::printf("win %.0fs  qps %.1f  ok/s %.1f  shed/s %.1f  degr/s %.1f  "
                "ddl/s %.1f\n",
                get("win_s", 0.0), get("win_qps", 0.0),
                get("win_ok_per_s", 0.0), get("win_shed_per_s", 0.0),
                get("win_degraded_per_s", 0.0),
                get("win_deadline_per_s", 0.0));
    std::printf("query latency  p50 %s  p95 %s  p99 %s  (n=%.0f)\n",
                FormatUs(get("win_p50_us", 0.0)).c_str(),
                FormatUs(get("win_p95_us", 0.0)).c_str(),
                FormatUs(get("win_p99_us", 0.0)).c_str(),
                get("win_query_count", 0.0));
  }
  std::fflush(stdout);
}

int Run(int argc, char** argv) {
  const FlagMap flags = FlagMap::Parse(argc, argv);

  serve::ClientOptions options;
  options.unix_socket_path = flags.GetString("socket");
  options.tcp_host = flags.GetString("host", "127.0.0.1");
  options.tcp_port =
      flags.Has("port") ? static_cast<int>(flags.GetInt("port", -1)) : -1;
  if (options.unix_socket_path.empty() == (options.tcp_port < 0)) {
    return Usage();
  }
  options.max_attempts = 1;  // a missed poll just shows up next interval

  const int64_t interval_ms = flags.GetInt("interval_ms", 1000);
  int64_t count = flags.GetInt("count", 0);
  if (flags.GetBool("once", false)) count = 1;
  // Interactive mode (no fixed count) owns the screen; scripted mode
  // appends lines.
  const bool clear = count == 0;

  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);

  serve::OracleClient client(options);
  serve::Request request;
  request.method = serve::Method::kStats;

  int64_t shown = 0;
  while (g_stop == 0 && (count == 0 || shown < count)) {
    std::string error;
    const auto response = client.Call(request, &error);
    if (!response.has_value()) {
      std::fprintf(stderr, "ipin_top: %s\n", error.c_str());
      return 2;
    }
    Render(*response, clear);
    ++shown;
    if (count != 0 && shown >= count) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
  return 0;
}

}  // namespace
}  // namespace ipin

int main(int argc, char** argv) { return ipin::Run(argc, argv); }
