// bench_compare: the bench-history regression gate. Diffs two
// ipin.bench.v1 documents (tools/bench_history output) and exits nonzero
// when any shared metric regressed beyond the noise threshold.
//
// Usage:
//   bench_compare --baseline=old.json --current=new.json
//       [--threshold=0.10] [--stat=median] [--lower_is_better=true]
//
// Semantics:
//   * Comparison uses the chosen statistic (median by default — robust to
//     one noisy rep) of each metric present in BOTH files.
//   * With lower_is_better (the default; bench metrics are times/bytes), a
//     metric regresses when current > baseline * (1 + threshold).
//   * Metrics only in one file are listed as a note, never a failure —
//     benches gain and lose counters across commits.
//   * Exit code: 0 = no regression, 1 = at least one regression,
//     2 = usage/parse error. Identical inputs always exit 0.

#include <cmath>
#include <cstdio>
#include <map>
#include <string>

#include "ipin/common/flags.h"
#include "ipin/common/json.h"

namespace ipin {
namespace {

std::map<std::string, double> MetricsOf(const JsonValue& doc,
                                        const std::string& stat) {
  std::map<std::string, double> out;
  const JsonValue* metrics = doc.Find("metrics");
  if (metrics == nullptr || !metrics->is_object()) return out;
  for (const auto& [name, entry] : metrics->object_items()) {
    const JsonValue* value = entry.Find(stat);
    if (value != nullptr && value->is_number()) {
      out[name] = value->number_value();
    }
  }
  return out;
}

int Run(int argc, char** argv) {
  const FlagMap flags = FlagMap::Parse(argc, argv);
  const std::string baseline_path = flags.GetString("baseline", "");
  const std::string current_path = flags.GetString("current", "");
  if (baseline_path.empty() || current_path.empty()) {
    std::fprintf(stderr,
                 "usage: bench_compare --baseline=FILE --current=FILE "
                 "[--threshold=0.10] [--stat=median] "
                 "[--lower_is_better=true]\n");
    return 2;
  }
  const double threshold = flags.GetDouble("threshold", 0.10);
  const std::string stat = flags.GetString("stat", "median");
  const bool lower_is_better = flags.GetBool("lower_is_better", true);

  // Distinguish a file that is absent from one that exists but does not
  // parse — both are exit 2 (input error), never the regression exit 1.
  for (const auto& path : {baseline_path, current_path}) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_compare: cannot open %s\n", path.c_str());
      return 2;
    }
    std::fclose(f);
  }
  const auto baseline_doc = JsonValue::ParseFile(baseline_path);
  const auto current_doc = JsonValue::ParseFile(current_path);
  if (!baseline_doc.has_value() || !current_doc.has_value()) {
    std::fprintf(stderr, "bench_compare: cannot parse %s (not valid JSON)\n",
                 !baseline_doc.has_value() ? baseline_path.c_str()
                                           : current_path.c_str());
    return 2;
  }
  for (const auto* doc : {&*baseline_doc, &*current_doc}) {
    if (doc->FindString("schema", "") != "ipin.bench.v1") {
      std::fprintf(stderr, "bench_compare: input is not ipin.bench.v1\n");
      return 2;
    }
  }

  // Cross-environment comparisons are legitimate (that is the point of an
  // archived history) but noisier, so differing provenance warns rather
  // than fails.
  const JsonValue* base_prov = baseline_doc->Find("provenance");
  const JsonValue* cur_prov = current_doc->Find("provenance");
  if (base_prov != nullptr && cur_prov != nullptr) {
    for (const char* key : {"hostname", "build_type", "obs"}) {
      const std::string b = base_prov->FindString(key, "");
      const std::string c = cur_prov->FindString(key, "");
      if (b != c) {
        std::fprintf(stderr,
                     "bench_compare: warning: %s differs (baseline '%s', "
                     "current '%s'); deltas may reflect the environment\n",
                     key, b.c_str(), c.c_str());
      }
    }
    if (base_prov->FindNumber("threads", 0.0) !=
        cur_prov->FindNumber("threads", 0.0)) {
      std::fprintf(stderr,
                   "bench_compare: warning: thread counts differ (baseline "
                   "%.0f, current %.0f); timing deltas are not like-for-like\n",
                   base_prov->FindNumber("threads", 0.0),
                   cur_prov->FindNumber("threads", 0.0));
    }
  }

  const auto baseline = MetricsOf(*baseline_doc, stat);
  const auto current = MetricsOf(*current_doc, stat);

  std::printf("# bench_compare %s vs %s (stat=%s, threshold=%.0f%%)\n",
              baseline_path.c_str(), current_path.c_str(), stat.c_str(),
              threshold * 100.0);
  std::printf("%-48s %14s %14s %9s\n", "metric", "baseline", "current",
              "delta");

  size_t regressions = 0;
  size_t compared = 0;
  size_t only_one_side = 0;
  for (const auto& [name, base_value] : baseline) {
    const auto it = current.find(name);
    if (it == current.end()) {
      ++only_one_side;
      continue;
    }
    ++compared;
    const double cur_value = it->second;
    double delta = 0.0;
    if (base_value != 0.0) {
      delta = (cur_value - base_value) / std::fabs(base_value);
    } else if (cur_value != 0.0) {
      delta = lower_is_better ? 1e9 : -1e9;  // from zero: treat as unbounded
    }
    const bool worse = lower_is_better ? delta > threshold : delta < -threshold;
    std::printf("%-48s %14.6g %14.6g %+8.1f%%%s\n", name.c_str(), base_value,
                cur_value, delta * 100.0, worse ? "  REGRESSION" : "");
    regressions += worse ? 1 : 0;
  }
  for (const auto& [name, value] : current) {
    (void)value;
    if (baseline.find(name) == baseline.end()) ++only_one_side;
  }

  std::printf("# %zu compared, %zu regression(s), %zu metric(s) in only one "
              "file\n",
              compared, regressions, only_one_side);
  if (compared == 0) {
    std::fprintf(stderr, "bench_compare: no shared metrics to compare\n");
    return 2;
  }
  return regressions > 0 ? 1 : 0;
}

}  // namespace
}  // namespace ipin

int main(int argc, char** argv) { return ipin::Run(argc, argv); }
