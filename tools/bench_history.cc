// bench_history: aggregates the per-repetition JSON files of one benchmark
// into a single bench-history document (schema ipin.bench.v1) suitable for
// archiving and for tools/bench_compare.
//
// Usage:
//   bench_history --bench=micro_irs --out=BENCH_micro_irs.json
//       [--git_sha=...] [--compiler=...] [--dataset=...] [--omega=...]
//       rep1.json rep2.json ...
//
// Each positional input is one repetition, in either of the two formats the
// repo produces:
//   * google-benchmark --benchmark_format=json output: every entry of
//     "benchmarks" contributes the metric <name> = real_time (in its
//     time_unit) and <name>/cpu = cpu_time;
//   * an ipin.metrics.v1 run report (EmitRunReport / --metrics_out): every
//     counter and gauge contributes a metric; histograms contribute their
//     mean as <name> plus <name>/p95.
//
// Output (schema ipin.bench.v1):
//   {
//     "schema": "ipin.bench.v1",
//     "bench": "micro_irs",
//     "git_sha": "...", "compiler": "...", "dataset": "...", "omega": "...",
//     "reps": 3,
//     "metrics": {"BM_x/64": {"min": ..., "mean": ..., "median": ...,
//                             "max": ...}, ...}
//   }
//
// Metric statistics are computed over the repetitions that carried the
// metric; a metric present in only some reps is still aggregated (reps can
// legitimately differ, e.g. a gauge only set on the first run).

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "ipin/common/flags.h"
#include "ipin/common/json.h"
#include "ipin/obs/ledger.h"

namespace ipin {
namespace {

using MetricSamples = std::map<std::string, std::vector<double>>;

// Collects metrics from a google-benchmark JSON document.
void CollectGoogleBenchmark(const JsonValue& doc, MetricSamples* samples) {
  const JsonValue* benches = doc.Find("benchmarks");
  if (benches == nullptr || !benches->is_array()) return;
  for (const JsonValue& b : benches->array_items()) {
    const std::string name = b.FindString("name", "");
    if (name.empty()) continue;
    // Skip google-benchmark's own aggregate rows; we aggregate ourselves.
    if (b.Find("aggregate_name") != nullptr) continue;
    (*samples)[name].push_back(b.FindNumber("real_time", 0.0));
    (*samples)[name + "/cpu"].push_back(b.FindNumber("cpu_time", 0.0));
  }
}

// Collects metrics from an ipin.metrics.v1 run report.
void CollectMetricsReport(const JsonValue& doc, MetricSamples* samples) {
  for (const char* section : {"counters", "gauges"}) {
    const JsonValue* obj = doc.Find(section);
    if (obj == nullptr || !obj->is_object()) continue;
    for (const auto& [name, value] : obj->object_items()) {
      if (value.is_number()) (*samples)[name].push_back(value.number_value());
    }
  }
  const JsonValue* hists = doc.Find("histograms");
  if (hists != nullptr && hists->is_object()) {
    for (const auto& [name, h] : hists->object_items()) {
      (*samples)[name].push_back(h.FindNumber("mean", 0.0));
      if (h.Find("p95") != nullptr) {
        (*samples)[name + "/p95"].push_back(h.FindNumber("p95", 0.0));
      }
    }
  }
}

std::string JsonNumber(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// Escapes a string for embedding in JSON output.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

int Run(int argc, char** argv) {
  const FlagMap flags = FlagMap::Parse(argc, argv);
  const std::string bench = flags.GetString("bench", "");
  const std::string out_path = flags.GetString("out", "");
  if (bench.empty() || out_path.empty() || flags.positional().empty()) {
    std::fprintf(stderr,
                 "usage: bench_history --bench=NAME --out=FILE [--git_sha=..] "
                 "[--compiler=..] [--dataset=..] [--omega=..] rep.json...\n");
    return 2;
  }

  MetricSamples samples;
  size_t reps = 0;
  for (const std::string& path : flags.positional()) {
    const auto doc = JsonValue::ParseFile(path);
    if (!doc.has_value()) {
      std::fprintf(stderr, "bench_history: cannot parse %s\n", path.c_str());
      return 1;
    }
    if (doc->Find("benchmarks") != nullptr) {
      CollectGoogleBenchmark(*doc, &samples);
    } else if (doc->FindString("schema", "") == "ipin.metrics.v1") {
      CollectMetricsReport(*doc, &samples);
    } else {
      std::fprintf(stderr,
                   "bench_history: %s is neither google-benchmark JSON nor "
                   "an ipin.metrics.v1 report\n",
                   path.c_str());
      return 1;
    }
    ++reps;
  }
  if (samples.empty()) {
    std::fprintf(stderr, "bench_history: no metrics found in inputs\n");
    return 1;
  }

  // Provenance of the machine aggregating the reps (the same machine that
  // ran them in this pipeline). --git_sha/--compiler still win when the
  // caller passes them (CI knows its exact toolchain); the collected
  // environment rides along so bench_compare can warn when two documents
  // came from different hosts or build configurations.
  const obs::RunProvenance prov = obs::CollectRunProvenance();

  std::string out = "{\n  \"schema\": \"ipin.bench.v1\",\n";
  out += "  \"bench\": \"" + JsonEscape(bench) + "\",\n";
  const std::string git_sha = flags.GetString("git_sha", prov.git_sha);
  out += "  \"git_sha\": \"" + JsonEscape(git_sha) + "\",\n";
  for (const char* key : {"compiler", "dataset", "omega"}) {
    out += std::string("  \"") + key + "\": \"" +
           JsonEscape(flags.GetString(key, "unknown")) + "\",\n";
  }
  out += "  \"provenance\": {\"hostname\": \"" + JsonEscape(prov.hostname) +
         "\", \"build_type\": \"" + JsonEscape(prov.build_type) +
         "\", \"obs\": \"" + JsonEscape(prov.obs_mode) +
         "\", \"cpus\": " + std::to_string(prov.cpus) +
         ", \"threads\": " + std::to_string(prov.threads) + "},\n";
  out += "  \"reps\": " + std::to_string(reps) + ",\n";
  out += "  \"metrics\": {\n";
  bool first = true;
  for (auto& [name, values] : samples) {
    std::sort(values.begin(), values.end());
    double sum = 0.0;
    for (const double v : values) sum += v;
    const size_t n = values.size();
    const double median = n % 2 == 1
                              ? values[n / 2]
                              : 0.5 * (values[n / 2 - 1] + values[n / 2]);
    if (!first) out += ",\n";
    first = false;
    out += "    \"" + JsonEscape(name) + "\": {\"min\": " +
           JsonNumber(values.front()) +
           ", \"mean\": " + JsonNumber(sum / static_cast<double>(n)) +
           ", \"median\": " + JsonNumber(median) +
           ", \"max\": " + JsonNumber(values.back()) +
           ", \"samples\": " + std::to_string(n) + "}";
  }
  out += "\n  }\n}\n";

  std::ofstream file(out_path);
  if (!file) {
    std::fprintf(stderr, "bench_history: cannot write %s\n", out_path.c_str());
    return 1;
  }
  file << out;
  std::printf("bench_history: %zu reps, %zu metrics -> %s\n", reps,
              samples.size(), out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace ipin

int main(int argc, char** argv) { return ipin::Run(argc, argv); }
