// ipin_runs: inspect the run ledgers written by ipin_cli, the bench
// harnesses, and checkpointed builds (--ledger_dir / IPIN_LEDGER_DIR; see
// src/ipin/obs/ledger.h for the ipin.run.v1 format).
//
// Usage:
//   ipin_runs list <dir>                 one line per ledger, newest last
//   ipin_runs show <ledger>              full manifest: provenance, events,
//                                        phases, pool profiles, metrics
//   ipin_runs diff <A> <B> [--threshold=0.10] [--quiet]
//
// `diff` compares run B against baseline A: total wall seconds and the
// wall time of every phase present in both, plus pool utilization.
// Exit codes (mirroring bench_compare): 0 = within threshold, 1 = at least
// one timing regressed by more than --threshold (B slower than A), 2 =
// usage error or unusable ledger. Negative ratios are reported as
// speedups; only slowdowns can fail the gate.

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "ipin/common/flags.h"
#include "ipin/common/json.h"
#include "ipin/common/string_util.h"
#include "ipin/obs/ledger.h"

namespace ipin {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: ipin_runs list <dir>\n"
               "       ipin_runs show <ledger.ipinrun>\n"
               "       ipin_runs diff <baseline.ipinrun> <candidate.ipinrun>"
               " [--threshold=0.10] [--quiet]\n");
  return 2;
}

const char* StatusName(obs::LedgerLoadStatus status) {
  switch (status) {
    case obs::LedgerLoadStatus::kOk:
      return "ok";
    case obs::LedgerLoadStatus::kDegraded:
      return "degraded";
    case obs::LedgerLoadStatus::kCorrupt:
      return "corrupt";
    case obs::LedgerLoadStatus::kMissing:
      return "missing";
  }
  return "?";
}

// Loads a ledger for reading, reporting unusable files on stderr.
bool LoadOrComplain(const std::string& path, obs::LedgerLoadResult* out) {
  *out = obs::LoadRunLedger(path);
  if (!out->usable()) {
    std::fprintf(stderr, "ipin_runs: ledger '%s' is %s\n", path.c_str(),
                 StatusName(out->status));
    return false;
  }
  if (out->status == obs::LedgerLoadStatus::kDegraded) {
    std::fprintf(stderr,
                 "ipin_runs: warning: ledger '%s' is degraded "
                 "(%zu of %zu frames dropped)\n",
                 path.c_str(), out->frames_dropped, out->frames_total);
  }
  return true;
}

// phase name -> wall_us from the activity section (completed aggregates).
std::map<std::string, double> PhaseWalls(const JsonValue& doc) {
  std::map<std::string, double> walls;
  const JsonValue* phases = doc.Find("phases");
  if (phases == nullptr || !phases->is_array()) return walls;
  for (const JsonValue& p : phases->array_items()) {
    const std::string name = p.FindString("name", "");
    if (!name.empty()) walls[name] += p.FindNumber("wall_us", 0.0);
  }
  return walls;
}

// Mean pool utilization across profiled parallel sections (0 when the run
// had none).
double MeanPoolUtilization(const JsonValue& doc) {
  const JsonValue* pool = doc.Find("pool");
  if (pool == nullptr) return 0.0;
  const JsonValue* phases = pool->Find("phases");
  if (phases == nullptr || !phases->is_array() ||
      phases->array_items().empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (const JsonValue& p : phases->array_items()) {
    sum += p.FindNumber("utilization", 0.0);
  }
  return sum / static_cast<double>(phases->array_items().size());
}

int CmdList(const std::string& dir) {
  const std::vector<std::string> paths = obs::ListRunLedgers(dir);
  if (paths.empty()) {
    std::fprintf(stderr, "ipin_runs: no ledgers in '%s'\n", dir.c_str());
    return 2;
  }
  std::printf("%-44s %-10s %-12s %-8s %10s %10s\n", "ledger", "tool",
              "command", "outcome", "wall_s", "rss_mb");
  for (const std::string& path : paths) {
    const obs::LedgerLoadResult result = obs::LoadRunLedger(path);
    const size_t slash = path.find_last_of('/');
    const std::string name =
        slash == std::string::npos ? path : path.substr(slash + 1);
    if (!result.usable()) {
      std::printf("%-44s [%s]\n", name.c_str(), StatusName(result.status));
      continue;
    }
    std::printf("%-44s %-10s %-12s %-8s %10.2f %10.1f\n", name.c_str(),
                result.doc.FindString("tool", "?").c_str(),
                result.doc.FindString("command", "?").c_str(),
                result.doc.FindString("outcome", "?").c_str(),
                result.doc.FindNumber("wall_seconds", 0.0),
                result.doc.FindNumber("peak_rss_bytes", 0.0) /
                    (1024.0 * 1024.0));
  }
  return 0;
}

int CmdShow(const std::string& path) {
  obs::LedgerLoadResult result;
  if (!LoadOrComplain(path, &result)) return 2;
  const JsonValue& doc = result.doc;

  std::printf("ledger    %s (%s)\n", path.c_str(),
              StatusName(result.status));
  std::printf("tool      %s %s\n", doc.FindString("tool", "?").c_str(),
              doc.FindString("command", "").c_str());
  std::printf("args      %s\n", doc.FindString("args", "").c_str());
  std::printf("outcome   %s (exit %d)\n",
              doc.FindString("outcome", "?").c_str(),
              static_cast<int>(doc.FindNumber("exit_code", 0.0)));
  std::printf("wall      %.3fs   peak rss %.1f MB\n",
              doc.FindNumber("wall_seconds", 0.0),
              doc.FindNumber("peak_rss_bytes", 0.0) / (1024.0 * 1024.0));
  if (const JsonValue* prov = doc.Find("provenance"); prov != nullptr) {
    std::printf("build     git %s, %s, obs %s, host %s, %d cpus, %d threads\n",
                prov->FindString("git_sha", "?").c_str(),
                prov->FindString("build_type", "?").c_str(),
                prov->FindString("obs", "?").c_str(),
                prov->FindString("hostname", "?").c_str(),
                static_cast<int>(prov->FindNumber("cpus", 0.0)),
                static_cast<int>(prov->FindNumber("threads", 0.0)));
  }
  if (const JsonValue* inputs = doc.Find("inputs");
      inputs != nullptr && inputs->is_array()) {
    for (const JsonValue& in : inputs->array_items()) {
      std::printf("input     %s (%lld bytes, crc32c %08llx)\n",
                  in.FindString("path", "?").c_str(),
                  static_cast<long long>(in.FindNumber("bytes", 0.0)),
                  static_cast<unsigned long long>(
                      in.FindNumber("crc32c", 0.0)));
    }
  }
  if (const JsonValue* outputs = doc.Find("outputs");
      outputs != nullptr && outputs->is_array()) {
    for (const JsonValue& out : outputs->array_items()) {
      if (out.is_string()) {
        std::printf("output    %s\n", out.string_value().c_str());
      }
    }
  }

  if (const JsonValue* events = doc.Find("events");
      events != nullptr && events->is_array() &&
      !events->array_items().empty()) {
    std::printf("\n# events\n");
    for (const JsonValue& e : events->array_items()) {
      std::printf("%8.0fms  %-24s %s\n", e.FindNumber("t_ms", 0.0),
                  e.FindString("kind", "?").c_str(),
                  e.FindString("detail", "").c_str());
    }
    const double dropped = doc.FindNumber("events_dropped", 0.0);
    if (dropped > 0) std::printf("(%.0f events dropped)\n", dropped);
  }

  if (const JsonValue* phases = doc.Find("phases");
      phases != nullptr && phases->is_array() &&
      !phases->array_items().empty()) {
    std::printf("\n# phases\n");
    std::printf("%-28s %10s %12s %12s %12s\n", "phase", "wall_ms",
                "cpu_ms", "units", "units/s");
    for (const JsonValue& p : phases->array_items()) {
      const double wall_us = p.FindNumber("wall_us", 0.0);
      const double units = p.FindNumber("units_done", 0.0);
      std::printf("%-28s %10.1f %12.1f %12.0f %12.0f\n",
                  p.FindString("name", "?").c_str(), wall_us / 1000.0,
                  p.FindNumber("cpu_us", 0.0) / 1000.0, units,
                  wall_us > 0 ? units / (wall_us / 1e6) : 0.0);
    }
  }

  if (const JsonValue* pool = doc.Find("pool"); pool != nullptr) {
    const JsonValue* phases = pool->Find("phases");
    if (phases != nullptr && phases->is_array() &&
        !phases->array_items().empty()) {
      std::printf("\n# pool (%d threads)\n",
                  static_cast<int>(pool->FindNumber("threads", 0.0)));
      std::printf("%-28s %8s %10s %10s %10s %6s\n", "phase", "tasks",
                  "busy_ms", "wall_ms", "imbal", "util");
      for (const JsonValue& p : phases->array_items()) {
        std::printf("%-28s %8.0f %10.1f %10.1f %10.2f %6.2f\n",
                    p.FindString("name", "?").c_str(),
                    p.FindNumber("tasks", 0.0),
                    p.FindNumber("busy_us", 0.0) / 1000.0,
                    p.FindNumber("wall_us", 0.0) / 1000.0,
                    p.FindNumber("imbalance", 0.0),
                    p.FindNumber("utilization", 0.0));
      }
    }
  }

  if (const JsonValue* hb = doc.Find("heartbeats"); hb != nullptr) {
    const double emitted = hb->FindNumber("emitted", 0.0);
    if (emitted > 0) std::printf("\nheartbeats emitted: %.0f\n", emitted);
  }
  return 0;
}

struct DiffRow {
  std::string name;
  double base = 0.0;       // seconds
  double candidate = 0.0;  // seconds
};

int CmdDiff(const FlagMap& flags) {
  const std::string base_path = flags.positional()[1];
  const std::string cand_path = flags.positional()[2];
  const double threshold = flags.GetDouble("threshold", 0.10);
  const bool quiet = flags.GetBool("quiet", false);

  obs::LedgerLoadResult base, cand;
  if (!LoadOrComplain(base_path, &base) ||
      !LoadOrComplain(cand_path, &cand)) {
    return 2;
  }

  std::vector<DiffRow> rows;
  rows.push_back({"total.wall",
                  base.doc.FindNumber("wall_seconds", 0.0),
                  cand.doc.FindNumber("wall_seconds", 0.0)});
  const auto base_walls = PhaseWalls(base.doc);
  const auto cand_walls = PhaseWalls(cand.doc);
  size_t unshared = 0;
  for (const auto& [name, wall_us] : base_walls) {
    const auto it = cand_walls.find(name);
    if (it == cand_walls.end()) {
      ++unshared;
      continue;
    }
    rows.push_back({"phase." + name, wall_us / 1e6, it->second / 1e6});
  }
  for (const auto& [name, wall_us] : cand_walls) {
    if (base_walls.count(name) == 0) ++unshared;
  }

  if (!quiet) {
    std::printf("baseline:  %s (%s, threads %d)\n", base_path.c_str(),
                base.doc.FindString("outcome", "?").c_str(),
                static_cast<int>(base.doc.Find("provenance") != nullptr
                                     ? base.doc.Find("provenance")
                                           ->FindNumber("threads", 0.0)
                                     : 0.0));
    std::printf("candidate: %s (%s, threads %d)\n", cand_path.c_str(),
                cand.doc.FindString("outcome", "?").c_str(),
                static_cast<int>(cand.doc.Find("provenance") != nullptr
                                     ? cand.doc.Find("provenance")
                                           ->FindNumber("threads", 0.0)
                                     : 0.0));
    std::printf("%-36s %12s %12s %9s %9s\n", "timing", "base_s", "cand_s",
                "delta", "speedup");
  }

  int rc = 0;
  for (const DiffRow& row : rows) {
    const double delta =
        row.base > 0 ? (row.candidate - row.base) / row.base : 0.0;
    const double speedup = row.candidate > 0 ? row.base / row.candidate : 0.0;
    const bool regressed = row.base > 0 && delta > threshold;
    if (regressed) rc = 1;
    if (!quiet) {
      std::printf("%-36s %12.4f %12.4f %+8.1f%% %8.2fx%s\n",
                  row.name.c_str(), row.base, row.candidate, delta * 100.0,
                  speedup, regressed ? "  REGRESSED" : "");
    }
  }
  if (!quiet) {
    std::printf("pool utilization: base %.2f, candidate %.2f\n",
                MeanPoolUtilization(base.doc),
                MeanPoolUtilization(cand.doc));
    if (unshared > 0) {
      std::printf("(%zu phases present in only one run, not compared)\n",
                  unshared);
    }
    std::printf(rc == 0 ? "OK: no timing regressed by more than %.0f%%\n"
                        : "FAIL: timings regressed by more than %.0f%%\n",
                threshold * 100.0);
  }
  return rc;
}

int Run(int argc, char** argv) {
  const FlagMap flags = FlagMap::Parse(argc, argv);
  const auto& pos = flags.positional();
  if (pos.empty()) return Usage();
  const std::string& cmd = pos[0];
  if (cmd == "list" && pos.size() == 2) return CmdList(pos[1]);
  if (cmd == "show" && pos.size() == 2) return CmdShow(pos[1]);
  if (cmd == "diff" && pos.size() == 3) return CmdDiff(flags);
  return Usage();
}

}  // namespace
}  // namespace ipin

int main(int argc, char** argv) { return ipin::Run(argc, argv); }
