// ipin_shard: offline sharding for the scatter-gather serving tier
// (DESIGN.md §11). Splits one full influence index into per-shard index
// files — each keeping the full node space with only its owned nodes'
// sketches, the invariant the router's exact merge rests on — and writes
// the matching "ipin.shardmap.v1" map that ipin_routerd routes by.
//
// Usage:
//   ipin_shard split --index=<full.bin> --shards=<n> --out_prefix=<p>
//       --map_out=<shards.json>
//       [--socket_prefix=/tmp/ipin-shard]   shard i dials <prefix><i>.sock
//       [--virtual_points=64]               consistent-hash ring density
//
//     Writes <p>0.bin ... <p>{n-1}.bin plus the map. Start one ipin_oracled
//     per shard file (--shard_id=i --shard_count=n) on the map's endpoint,
//     then point ipin_routerd at the map.
//
//   ipin_shard show --map=<shards.json> [--nodes=100000]
//
//     Prints the parsed map and the ownership balance over the first
//     --nodes node ids.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "ipin/common/flags.h"
#include "ipin/common/logging.h"
#include "ipin/common/string_util.h"
#include "ipin/core/oracle_io.h"
#include "ipin/serve/shard_map.h"

namespace ipin {
namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: ipin_shard split --index=<full.bin> --shards=<n>\n"
      "         --out_prefix=<p> --map_out=<shards.json>\n"
      "         [--socket_prefix=/tmp/ipin-shard] [--virtual_points=64]\n"
      "       ipin_shard show --map=<shards.json> [--nodes=100000]\n"
      "       ipin_shard owner --map=<shards.json> --node=<id>\n");
  return 2;
}

bool WriteTextFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << content << '\n';
  return static_cast<bool>(out.flush());
}

int RunSplit(const FlagMap& flags) {
  const std::string index_path = flags.GetString("index");
  const int64_t num_shards = flags.GetInt("shards", 0);
  const std::string out_prefix = flags.GetString("out_prefix");
  const std::string map_out = flags.GetString("map_out");
  if (index_path.empty() || num_shards < 1 || out_prefix.empty() ||
      map_out.empty()) {
    return Usage();
  }
  const std::string socket_prefix =
      flags.GetString("socket_prefix", "/tmp/ipin-shard");
  const int virtual_points =
      static_cast<int>(flags.GetInt("virtual_points", 64));

  std::vector<serve::ShardInfo> shards(static_cast<size_t>(num_shards));
  for (size_t i = 0; i < shards.size(); ++i) {
    shards[i].name = StrFormat("shard%zu", i);
    shards[i].endpoint.unix_socket_path =
        StrFormat("%s%zu.sock", socket_prefix.c_str(), i);
  }
  const serve::ShardMap map(shards, virtual_points);
  if (map.num_shards() != shards.size()) {
    std::fprintf(stderr, "ipin_shard: invalid shard configuration\n");
    return 2;
  }

  const IndexLoadResult load = LoadInfluenceIndexDetailed(index_path);
  if (!load.usable()) {
    std::fprintf(stderr, "ipin_shard: cannot load index '%s'\n",
                 index_path.c_str());
    return 2;
  }
  const IrsApprox& full = *load.index;

  for (size_t i = 0; i < map.num_shards(); ++i) {
    const IrsApprox piece = serve::ExtractShardIndex(full, map, i);
    size_t owned = 0;
    for (NodeId u = 0; u < piece.num_nodes(); ++u) {
      if (piece.Sketch(u) != nullptr) ++owned;
    }
    const std::string out = StrFormat("%s%zu.bin", out_prefix.c_str(), i);
    if (!SaveInfluenceIndex(piece, out)) {
      std::fprintf(stderr, "ipin_shard: cannot write '%s'\n", out.c_str());
      return 1;
    }
    std::printf("ipin_shard: %s <- %s (%zu/%zu nodes owned)\n", out.c_str(),
                map.shard(i).name.c_str(), owned, piece.num_nodes());
  }

  if (!WriteTextFile(map_out, map.ToJson())) {
    std::fprintf(stderr, "ipin_shard: cannot write map '%s'\n",
                 map_out.c_str());
    return 1;
  }
  std::printf("ipin_shard: wrote map %s (%zu shards, %d virtual points)\n",
              map_out.c_str(), map.num_shards(), map.virtual_points());
  return 0;
}

int RunShow(const FlagMap& flags) {
  const std::string map_path = flags.GetString("map");
  if (map_path.empty()) return Usage();
  std::string error;
  const auto map = serve::ShardMap::ParseFile(map_path, &error);
  if (!map.has_value()) {
    std::fprintf(stderr, "ipin_shard: %s: %s\n", map_path.c_str(),
                 error.c_str());
    return 2;
  }
  std::printf("%s: %zu shards, %d virtual points\n", map_path.c_str(),
              map->num_shards(), map->virtual_points());
  const size_t num_nodes =
      static_cast<size_t>(flags.GetInt("nodes", 100000));
  std::vector<size_t> owned(map->num_shards(), 0);
  for (NodeId u = 0; u < num_nodes; ++u) ++owned[map->OwnerOf(u)];
  for (size_t i = 0; i < map->num_shards(); ++i) {
    const serve::ShardInfo& info = map->shard(i);
    const std::string endpoint =
        !info.endpoint.unix_socket_path.empty()
            ? info.endpoint.unix_socket_path
            : StrFormat("%s:%d", info.endpoint.tcp_host.c_str(),
                        info.endpoint.tcp_port);
    std::printf("  %-10s %-32s owns %6zu/%zu (%.1f%%)%s\n",
                info.name.c_str(), endpoint.c_str(), owned[i], num_nodes,
                100.0 * static_cast<double>(owned[i]) /
                    static_cast<double>(num_nodes),
                info.mirror.valid() ? "  [mirrored]" : "");
  }
  return 0;
}

// Resolves which shard owns a node — fault drills use this to pick the one
// daemon whose death is guaranteed to leave the queried seed unanswered.
int RunOwner(const FlagMap& flags) {
  const std::string map_path = flags.GetString("map");
  const int64_t node = flags.GetInt("node", -1);
  if (map_path.empty() || node < 0) return Usage();
  std::string error;
  const auto map = serve::ShardMap::ParseFile(map_path, &error);
  if (!map.has_value()) {
    std::fprintf(stderr, "ipin_shard: %s: %s\n", map_path.c_str(),
                 error.c_str());
    return 2;
  }
  const size_t shard = map->OwnerOf(static_cast<NodeId>(node));
  std::printf("node=%lld shard=%zu name=%s\n", static_cast<long long>(node),
              shard, map->shard(shard).name.c_str());
  return 0;
}

int Run(int argc, char** argv) {
  const FlagMap flags = FlagMap::Parse(argc, argv);
  if (flags.positional().empty()) return Usage();
  const std::string& verb = flags.positional()[0];
  if (verb == "split") return RunSplit(flags);
  if (verb == "show") return RunShow(flags);
  if (verb == "owner") return RunOwner(flags);
  return Usage();
}

}  // namespace
}  // namespace ipin

int main(int argc, char** argv) { return ipin::Run(argc, argv); }
