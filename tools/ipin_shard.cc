// ipin_shard: offline sharding and live-reshard planning for the
// scatter-gather serving tier (DESIGN.md §11). Splits one full influence
// index into per-shard index files — each keeping the full node space with
// only its owned nodes' sketches, the invariant the router's exact merge
// rests on — and writes the matching "ipin.shardmap.v1/v2" map that
// ipin_routerd routes by.
//
// Verbs:
//   ipin_shard split --index=<full.bin> --shards=<n> --out_prefix=<p>
//       --map_out=<shards.json>
//       [--socket_prefix=/tmp/ipin-shard]   shard i dials <prefix><i>.sock
//       [--virtual_points=64]               consistent-hash ring density
//
//     Writes <p>0.bin ... <p>{n-1}.bin plus the map (with per-shard
//     index_file + crc32c fingerprint). Start one ipin_oracled per shard
//     file (--shard_id=i --shard_count=n) on the map's endpoint, then point
//     ipin_routerd at the map.
//
//   ipin_shard show --map=<shards.json> [--nodes=100000]
//
//     Prints the parsed map (including a transition block, if present) and
//     the ownership balance over the first --nodes node ids.
//
//   ipin_shard owner --map=<shards.json> --node=<id>
//
//     Which shard owns a node (fault drills pick SIGKILL victims with it).
//
//   ipin_shard plan --map=<old.json> --shards=<new_n> [--nodes=100000]
//       [--socket_prefix=/tmp/ipin-shard]
//
//     Dry-run of a reshard to <new_n> shards: per-shard before/after node
//     counts and the moved fraction. Consistent hashing keeps existing
//     shards' ring points, so growth moves only the slices the new shards
//     steal (~(new_n - old_n)/new_n of the space), never between survivors.
//
//   ipin_shard rebalance --map=<old.json> --shards=<new_n>
//       --out_prefix=<p> --map_out=<new.json>
//       [--in_prefix=<q>]                   old piece i at <q><i>.bin when
//                                           the old map carries no index_file
//       [--socket_prefix=/tmp/ipin-shard] [--sample=64] [--seed=42]
//
//     Materializes the reshard: reconstructs the full index from the old
//     pieces (every node's sketch lives in exactly one old piece), extracts
//     and writes all <new_n> new pieces, re-loads each written file (CRC
//     walk) and spot-checks rank equality on --sample random owned nodes
//     against the reconstruction, then writes a v2 map whose "transition"
//     block is the old assignment. Routers reloading that map enter
//     double-dispatch; old daemons keep serving their old (superset) files
//     until `finalize`.
//
//   ipin_shard finalize --map=<new.json> [--map_out=<final.json>]
//
//     Strips the transition block (in place unless --map_out differs),
//     ending double-dispatch on the next router reload. Run it after the
//     new fleet is up and verified.
//
//   ipin_shard verify <map.json> <dir>   (or --map=... --dir=...)
//
//     Offline consistency check of a map against materialized shard files
//     in <dir>: every piece loads cleanly, matches its recorded crc32c
//     fingerprint, has a consistent node space, and contains sketches ONLY
//     for nodes the map assigns to it (which also proves cross-piece
//     disjointness); a transition block's pieces are checked against the
//     OLD assignment the same way; replica endpoints must be dialable
//     specs. Exit 0 = consistent, 1 = verification failure, 2 = usage/IO.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "ipin/common/flags.h"
#include "ipin/common/logging.h"
#include "ipin/common/random.h"
#include "ipin/common/safe_io.h"
#include "ipin/common/string_util.h"
#include "ipin/core/oracle_io.h"
#include "ipin/serve/shard_map.h"

namespace ipin {
namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: ipin_shard split --index=<full.bin> --shards=<n>\n"
      "         --out_prefix=<p> --map_out=<shards.json>\n"
      "         [--socket_prefix=/tmp/ipin-shard] [--virtual_points=64]\n"
      "       ipin_shard show --map=<shards.json> [--nodes=100000]\n"
      "       ipin_shard owner --map=<shards.json> --node=<id>\n"
      "       ipin_shard plan --map=<old.json> --shards=<new_n>\n"
      "         [--nodes=100000] [--socket_prefix=/tmp/ipin-shard]\n"
      "       ipin_shard rebalance --map=<old.json> --shards=<new_n>\n"
      "         --out_prefix=<p> --map_out=<new.json> [--in_prefix=<q>]\n"
      "         [--socket_prefix=/tmp/ipin-shard] [--sample=64] "
      "[--seed=42]\n"
      "       ipin_shard finalize --map=<new.json> [--map_out=<final.json>]\n"
      "       ipin_shard verify <map.json> <dir>\n");
  return 2;
}

bool WriteTextFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << content << '\n';
  return static_cast<bool>(out.flush());
}

std::string Dirname(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string(".")
                                    : path.substr(0, slash);
}

std::string Basename(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

/// "crc32c:%08x" over the file's raw bytes; nullopt when unreadable.
std::optional<std::string> FileFingerprint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!in.good() && !in.eof()) return std::nullopt;
  const std::string bytes = buf.str();
  return StrFormat("crc32c:%08x", Crc32c(bytes.data(), bytes.size()));
}

/// Resolves the on-disk path of old-map shard i: the map's index_file
/// (relative to the map's directory) when recorded, else <in_prefix><i>.bin.
std::string OldPiecePath(const serve::ShardMap& map, size_t i,
                         const std::string& map_dir,
                         const std::string& in_prefix) {
  const serve::ShardInfo& info = map.shard(i);
  if (!info.index_file.empty()) {
    return info.index_file.front() == '/'
               ? info.index_file
               : map_dir + "/" + info.index_file;
  }
  if (!in_prefix.empty()) return StrFormat("%s%zu.bin", in_prefix.c_str(), i);
  return {};
}

/// The grown shard list: old shards keep their names, endpoints, mirrors
/// and replicas (their ring points — hence their retained ownership — are a
/// pure function of the name); new shards get the first free "shard<k>"
/// names and <socket_prefix><k>.sock endpoints.
std::vector<serve::ShardInfo> GrowShards(const serve::ShardMap& old_map,
                                         size_t new_n,
                                         const std::string& socket_prefix) {
  std::vector<serve::ShardInfo> shards;
  shards.reserve(new_n);
  for (size_t i = 0; i < old_map.num_shards() && i < new_n; ++i) {
    shards.push_back(old_map.shard(i));
  }
  size_t next = old_map.num_shards();
  while (shards.size() < new_n) {
    serve::ShardInfo info;
    for (;; ++next) {
      info.name = StrFormat("shard%zu", next);
      bool taken = false;
      for (const serve::ShardInfo& existing : shards) {
        if (existing.name == info.name) taken = true;
      }
      if (!taken) break;
    }
    info.endpoint.unix_socket_path =
        StrFormat("%s%zu.sock", socket_prefix.c_str(), next);
    ++next;
    shards.push_back(std::move(info));
  }
  return shards;
}

int RunSplit(const FlagMap& flags) {
  const std::string index_path = flags.GetString("index");
  const int64_t num_shards = flags.GetInt("shards", 0);
  const std::string out_prefix = flags.GetString("out_prefix");
  const std::string map_out = flags.GetString("map_out");
  if (index_path.empty() || num_shards < 1 || out_prefix.empty() ||
      map_out.empty()) {
    return Usage();
  }
  const std::string socket_prefix =
      flags.GetString("socket_prefix", "/tmp/ipin-shard");
  const int virtual_points =
      static_cast<int>(flags.GetInt("virtual_points", 64));

  std::vector<serve::ShardInfo> shards(static_cast<size_t>(num_shards));
  for (size_t i = 0; i < shards.size(); ++i) {
    shards[i].name = StrFormat("shard%zu", i);
    shards[i].endpoint.unix_socket_path =
        StrFormat("%s%zu.sock", socket_prefix.c_str(), i);
  }
  const serve::ShardMap map(shards, virtual_points);
  if (map.num_shards() != shards.size()) {
    std::fprintf(stderr, "ipin_shard: invalid shard configuration\n");
    return 2;
  }

  const IndexLoadResult load = LoadInfluenceIndexDetailed(index_path);
  if (!load.usable()) {
    std::fprintf(stderr, "ipin_shard: cannot load index '%s'\n",
                 index_path.c_str());
    return 2;
  }
  const IrsApprox& full = *load.index;

  for (size_t i = 0; i < map.num_shards(); ++i) {
    const IrsApprox piece = serve::ExtractShardIndex(full, map, i);
    size_t owned = 0;
    for (NodeId u = 0; u < piece.num_nodes(); ++u) {
      if (piece.Sketch(u)) ++owned;
    }
    const std::string out = StrFormat("%s%zu.bin", out_prefix.c_str(), i);
    if (!SaveInfluenceIndex(piece, out)) {
      std::fprintf(stderr, "ipin_shard: cannot write '%s'\n", out.c_str());
      return 1;
    }
    const std::optional<std::string> fp = FileFingerprint(out);
    if (!fp.has_value()) {
      std::fprintf(stderr, "ipin_shard: cannot fingerprint '%s'\n",
                   out.c_str());
      return 1;
    }
    shards[i].index_file = Basename(out);
    shards[i].fingerprint = *fp;
    std::printf("ipin_shard: %s <- %s (%zu/%zu nodes owned, %s)\n",
                out.c_str(), map.shard(i).name.c_str(), owned,
                piece.num_nodes(), fp->c_str());
  }

  // Same names => same ring => same ownership; this rebuild only picks up
  // the index_file/fingerprint bindings.
  const serve::ShardMap final_map(shards, virtual_points);
  if (!WriteTextFile(map_out, final_map.ToJson())) {
    std::fprintf(stderr, "ipin_shard: cannot write map '%s'\n",
                 map_out.c_str());
    return 1;
  }
  std::printf("ipin_shard: wrote map %s (%zu shards, %d virtual points)\n",
              map_out.c_str(), final_map.num_shards(),
              final_map.virtual_points());
  return 0;
}

int RunShow(const FlagMap& flags) {
  const std::string map_path = flags.GetString("map");
  if (map_path.empty()) return Usage();
  std::string error;
  const auto map = serve::ShardMap::ParseFile(map_path, &error);
  if (!map.has_value()) {
    std::fprintf(stderr, "ipin_shard: %s: %s\n", map_path.c_str(),
                 error.c_str());
    return 2;
  }
  std::printf("%s: %zu shards, %d virtual points%s\n", map_path.c_str(),
              map->num_shards(), map->virtual_points(),
              map->InTransition() ? ", IN TRANSITION" : "");
  const size_t num_nodes =
      static_cast<size_t>(flags.GetInt("nodes", 100000));
  std::vector<size_t> owned(map->num_shards(), 0);
  for (NodeId u = 0; u < num_nodes; ++u) ++owned[map->OwnerOf(u)];
  for (size_t i = 0; i < map->num_shards(); ++i) {
    const serve::ShardInfo& info = map->shard(i);
    const std::string endpoint =
        !info.endpoint.unix_socket_path.empty()
            ? info.endpoint.unix_socket_path
            : StrFormat("%s:%d", info.endpoint.tcp_host.c_str(),
                        info.endpoint.tcp_port);
    std::printf("  %-10s %-32s owns %6zu/%zu (%.1f%%)%s%s\n",
                info.name.c_str(), endpoint.c_str(), owned[i], num_nodes,
                100.0 * static_cast<double>(owned[i]) /
                    static_cast<double>(num_nodes),
                info.mirror.valid() ? "  [mirrored]" : "",
                info.replicas.empty()
                    ? ""
                    : StrFormat("  [%zu replicas]", info.replicas.size())
                          .c_str());
  }
  if (map->InTransition()) {
    const serve::ShardMap& prev = *map->previous();
    size_t moved = 0;
    for (NodeId u = 0; u < num_nodes; ++u) {
      if (map->OwnerMoved(u)) ++moved;
    }
    std::printf("  transition: previous epoch has %zu shards; %zu/%zu "
                "nodes (%.1f%%) double-dispatched\n",
                prev.num_shards(), moved, num_nodes,
                100.0 * static_cast<double>(moved) /
                    static_cast<double>(num_nodes));
  }
  return 0;
}

// Resolves which shard owns a node — fault drills use this to pick the one
// daemon whose death is guaranteed to leave the queried seed unanswered.
int RunOwner(const FlagMap& flags) {
  const std::string map_path = flags.GetString("map");
  const int64_t node = flags.GetInt("node", -1);
  if (map_path.empty() || node < 0) return Usage();
  std::string error;
  const auto map = serve::ShardMap::ParseFile(map_path, &error);
  if (!map.has_value()) {
    std::fprintf(stderr, "ipin_shard: %s: %s\n", map_path.c_str(),
                 error.c_str());
    return 2;
  }
  const size_t shard = map->OwnerOf(static_cast<NodeId>(node));
  std::printf("node=%lld shard=%zu name=%s\n", static_cast<long long>(node),
              shard, map->shard(shard).name.c_str());
  return 0;
}

int RunPlan(const FlagMap& flags) {
  const std::string map_path = flags.GetString("map");
  const int64_t new_n = flags.GetInt("shards", 0);
  if (map_path.empty() || new_n < 1) return Usage();
  std::string error;
  const auto old_map = serve::ShardMap::ParseFile(map_path, &error);
  if (!old_map.has_value()) {
    std::fprintf(stderr, "ipin_shard: %s: %s\n", map_path.c_str(),
                 error.c_str());
    return 2;
  }
  const std::string socket_prefix =
      flags.GetString("socket_prefix", "/tmp/ipin-shard");
  const serve::ShardMap new_map(
      GrowShards(*old_map, static_cast<size_t>(new_n), socket_prefix),
      old_map->virtual_points());
  if (new_map.num_shards() != static_cast<size_t>(new_n)) {
    std::fprintf(stderr, "ipin_shard: invalid target configuration\n");
    return 2;
  }
  const size_t num_nodes =
      static_cast<size_t>(flags.GetInt("nodes", 100000));
  std::vector<size_t> before(old_map->num_shards(), 0);
  std::vector<size_t> after(new_map.num_shards(), 0);
  size_t moved = 0;
  for (NodeId u = 0; u < num_nodes; ++u) {
    const size_t old_owner = old_map->OwnerOf(u);
    const size_t new_owner = new_map.OwnerOf(u);
    ++before[old_owner];
    ++after[new_owner];
    if (old_map->shard(old_owner).name != new_map.shard(new_owner).name) {
      ++moved;
    }
  }
  std::printf("plan: %zu -> %zu shards over %zu nodes\n",
              old_map->num_shards(), new_map.num_shards(), num_nodes);
  for (size_t i = 0; i < new_map.num_shards(); ++i) {
    const std::string& name = new_map.shard(i).name;
    size_t was = 0;
    bool existed = false;
    for (size_t j = 0; j < old_map->num_shards(); ++j) {
      if (old_map->shard(j).name == name) {
        was = before[j];
        existed = true;
      }
    }
    std::printf("  %-10s %6zu -> %6zu%s\n", name.c_str(), was, after[i],
                existed ? "" : "  [new]");
  }
  std::printf("plan: %zu/%zu nodes move (%.1f%%; ideal for growth: "
              "%.1f%%)\n",
              moved, num_nodes,
              100.0 * static_cast<double>(moved) /
                  static_cast<double>(num_nodes),
              new_map.num_shards() > old_map->num_shards()
                  ? 100.0 *
                        static_cast<double>(new_map.num_shards() -
                                            old_map->num_shards()) /
                        static_cast<double>(new_map.num_shards())
                  : 0.0);
  return 0;
}

/// Loads the old pieces and reassembles the full index (every node's sketch
/// lives in exactly one old piece — checked). nullopt (with a message on
/// stderr) on any load, ownership, or disjointness violation.
std::optional<IrsApprox> ReconstructFullIndex(const serve::ShardMap& old_map,
                                              const std::string& map_dir,
                                              const std::string& in_prefix) {
  std::vector<std::unique_ptr<VersionedHll>> sketches;
  size_t num_nodes = 0;
  std::optional<Duration> window;
  IrsApproxOptions options;
  for (size_t i = 0; i < old_map.num_shards(); ++i) {
    const std::string path = OldPiecePath(old_map, i, map_dir, in_prefix);
    if (path.empty()) {
      std::fprintf(stderr,
                   "ipin_shard: shard %zu (%s) has no index_file and no "
                   "--in_prefix was given\n",
                   i, old_map.shard(i).name.c_str());
      return std::nullopt;
    }
    const IndexLoadResult load = LoadInfluenceIndexDetailed(path);
    if (!load.usable()) {
      std::fprintf(stderr, "ipin_shard: cannot load piece '%s'\n",
                   path.c_str());
      return std::nullopt;
    }
    const IrsApprox& piece = *load.index;
    if (i == 0) {
      num_nodes = piece.num_nodes();
      window = piece.window();
      options = piece.options();
      sketches.resize(num_nodes);
    } else if (piece.num_nodes() != num_nodes ||
               piece.window() != *window ||
               piece.options().precision != options.precision ||
               piece.options().salt != options.salt) {
      std::fprintf(stderr,
                   "ipin_shard: piece '%s' disagrees with piece 0 on node "
                   "space, window, or sketch parameters\n",
                   path.c_str());
      return std::nullopt;
    }
    for (NodeId u = 0; u < piece.num_nodes(); ++u) {
      const SketchView sketch = piece.Sketch(u);
      if (!sketch) continue;
      if (old_map.OwnerOf(u) != i) {
        std::fprintf(stderr,
                     "ipin_shard: piece '%s' holds node %llu owned by "
                     "shard %zu\n",
                     path.c_str(), static_cast<unsigned long long>(u),
                     old_map.OwnerOf(u));
        return std::nullopt;
      }
      if (sketches[u] != nullptr) {
        std::fprintf(stderr,
                     "ipin_shard: node %llu appears in two pieces\n",
                     static_cast<unsigned long long>(u));
        return std::nullopt;
      }
      sketches[u] = sketch.Materialize();
    }
  }
  if (!window.has_value()) {
    std::fprintf(stderr, "ipin_shard: old map has no shards\n");
    return std::nullopt;
  }
  return IrsApprox(*window, options, std::move(sketches));
}

int RunRebalance(const FlagMap& flags) {
  const std::string map_path = flags.GetString("map");
  const int64_t new_n = flags.GetInt("shards", 0);
  const std::string out_prefix = flags.GetString("out_prefix");
  const std::string map_out = flags.GetString("map_out");
  if (map_path.empty() || new_n < 1 || out_prefix.empty() ||
      map_out.empty()) {
    return Usage();
  }
  const std::string in_prefix = flags.GetString("in_prefix");
  const std::string socket_prefix =
      flags.GetString("socket_prefix", "/tmp/ipin-shard");
  const size_t sample = static_cast<size_t>(flags.GetInt("sample", 64));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  std::string error;
  auto old_map = serve::ShardMap::ParseFile(map_path, &error);
  if (!old_map.has_value()) {
    std::fprintf(stderr, "ipin_shard: %s: %s\n", map_path.c_str(),
                 error.c_str());
    return 2;
  }
  // A reshard starts from a settled assignment: chaining off an unfinalized
  // one would make "previous epoch" ambiguous.
  old_map->ClearTransition();

  std::optional<IrsApprox> full =
      ReconstructFullIndex(*old_map, Dirname(map_path), in_prefix);
  if (!full.has_value()) return 2;

  std::vector<serve::ShardInfo> shards =
      GrowShards(*old_map, static_cast<size_t>(new_n), socket_prefix);
  serve::ShardMap new_map(shards, old_map->virtual_points());
  if (new_map.num_shards() != static_cast<size_t>(new_n)) {
    std::fprintf(stderr, "ipin_shard: invalid target configuration\n");
    return 2;
  }

  // Materialize, then re-load each written piece (the safe_io CRC walk runs
  // on load) and spot-check rank equality against the reconstruction.
  Rng rng(seed);
  for (size_t i = 0; i < new_map.num_shards(); ++i) {
    const IrsApprox piece = serve::ExtractShardIndex(*full, new_map, i);
    const std::string out = StrFormat("%s%zu.bin", out_prefix.c_str(), i);
    if (!SaveInfluenceIndex(piece, out)) {
      std::fprintf(stderr, "ipin_shard: cannot write '%s'\n", out.c_str());
      return 1;
    }
    const IndexLoadResult reload = LoadInfluenceIndexDetailed(out);
    if (!reload.usable()) {
      std::fprintf(stderr, "ipin_shard: reload of '%s' failed\n",
                   out.c_str());
      return 1;
    }
    size_t checked = 0;
    for (size_t attempt = 0;
         attempt < sample * 8 && checked < sample && full->num_nodes() > 0;
         ++attempt) {
      const NodeId u =
          static_cast<NodeId>(rng.NextBounded(full->num_nodes()));
      if (new_map.OwnerOf(u) != i) continue;
      const SketchView want = full->Sketch(u);
      const SketchView got = reload.index->Sketch(u);
      const bool equal =
          want.valid() == got.valid() &&
          (!want ||
           std::equal(want.max_ranks().begin(), want.max_ranks().end(),
                      got.max_ranks().begin(), got.max_ranks().end()));
      if (!equal) {
        std::fprintf(stderr,
                     "ipin_shard: rank mismatch for node %llu in '%s'\n",
                     static_cast<unsigned long long>(u), out.c_str());
        return 1;
      }
      ++checked;
    }
    const std::optional<std::string> fp = FileFingerprint(out);
    if (!fp.has_value()) {
      std::fprintf(stderr, "ipin_shard: cannot fingerprint '%s'\n",
                   out.c_str());
      return 1;
    }
    shards[i].index_file = Basename(out);
    shards[i].fingerprint = *fp;
    std::printf("ipin_shard: %s <- %s (%zu spot checks, %s)\n", out.c_str(),
                new_map.shard(i).name.c_str(), checked, fp->c_str());
  }

  serve::ShardMap final_map(shards, old_map->virtual_points());
  final_map.BeginTransition(
      std::make_shared<const serve::ShardMap>(*old_map));
  if (!WriteTextFile(map_out, final_map.ToJson())) {
    std::fprintf(stderr, "ipin_shard: cannot write map '%s'\n",
                 map_out.c_str());
    return 1;
  }
  std::printf(
      "ipin_shard: wrote transition map %s (%zu -> %zu shards); reload "
      "routers to begin double-dispatch, then `ipin_shard finalize` once "
      "the new fleet is up\n",
      map_out.c_str(), old_map->num_shards(), final_map.num_shards());
  return 0;
}

int RunFinalize(const FlagMap& flags) {
  const std::string map_path = flags.GetString("map");
  if (map_path.empty()) return Usage();
  const std::string map_out = flags.GetString("map_out", map_path);
  std::string error;
  auto map = serve::ShardMap::ParseFile(map_path, &error);
  if (!map.has_value()) {
    std::fprintf(stderr, "ipin_shard: %s: %s\n", map_path.c_str(),
                 error.c_str());
    return 2;
  }
  if (!map->InTransition()) {
    std::printf("ipin_shard: %s is not in transition; nothing to do\n",
                map_path.c_str());
  }
  map->ClearTransition();
  if (!WriteTextFile(map_out, map->ToJson())) {
    std::fprintf(stderr, "ipin_shard: cannot write map '%s'\n",
                 map_out.c_str());
    return 1;
  }
  std::printf("ipin_shard: wrote finalized map %s (%zu shards)\n",
              map_out.c_str(), map->num_shards());
  return 0;
}

/// Checks one assignment's pieces under `dir`. Returns the number of
/// verification failures (printing each); bumps *checked per piece
/// inspected. IO problems count as failures here — the map made a claim
/// (index_file) the directory cannot back.
size_t VerifyAssignment(const serve::ShardMap& map, const std::string& dir,
                        const char* label, size_t* checked) {
  size_t failures = 0;
  std::optional<size_t> num_nodes;
  for (size_t i = 0; i < map.num_shards(); ++i) {
    const serve::ShardInfo& info = map.shard(i);
    for (const serve::ShardEndpoint& replica : info.replicas) {
      if (!replica.valid()) {
        std::printf("FAIL %s %s: invalid replica endpoint\n", label,
                    info.name.c_str());
        ++failures;
      }
    }
    if (info.index_file.empty()) continue;
    ++*checked;
    const std::string path = info.index_file.front() == '/'
                                 ? info.index_file
                                 : dir + "/" + info.index_file;
    if (!info.fingerprint.empty()) {
      const std::optional<std::string> fp = FileFingerprint(path);
      if (!fp.has_value() || *fp != info.fingerprint) {
        std::printf("FAIL %s %s: fingerprint %s, recorded %s\n", label,
                    info.name.c_str(),
                    fp.has_value() ? fp->c_str() : "(unreadable)",
                    info.fingerprint.c_str());
        ++failures;
        continue;
      }
    }
    const IndexLoadResult load = LoadInfluenceIndexDetailed(path);
    if (!load.usable()) {
      std::printf("FAIL %s %s: piece '%s' does not load\n", label,
                  info.name.c_str(), path.c_str());
      ++failures;
      continue;
    }
    const IrsApprox& piece = *load.index;
    if (num_nodes.has_value() && piece.num_nodes() != *num_nodes) {
      std::printf("FAIL %s %s: node space %zu, expected %zu\n", label,
                  info.name.c_str(), piece.num_nodes(), *num_nodes);
      ++failures;
      continue;
    }
    num_nodes = piece.num_nodes();
    size_t owned = 0;
    size_t foreign = 0;
    for (NodeId u = 0; u < piece.num_nodes(); ++u) {
      if (!piece.Sketch(u)) continue;
      if (map.OwnerOf(u) == i) {
        ++owned;
      } else {
        ++foreign;
      }
    }
    if (foreign > 0) {
      // Sketches only where the map says so — this per-piece containment
      // is also what makes the pieces pairwise disjoint.
      std::printf("FAIL %s %s: %zu sketches for nodes it does not own\n",
                  label, info.name.c_str(), foreign);
      ++failures;
      continue;
    }
    std::printf("ok   %s %-10s %s (%zu owned sketches)\n", label,
                info.name.c_str(), info.index_file.c_str(), owned);
  }
  return failures;
}

int RunVerify(const FlagMap& flags) {
  std::string map_path = flags.GetString("map");
  std::string dir = flags.GetString("dir");
  if (map_path.empty() && flags.positional().size() >= 2) {
    map_path = flags.positional()[1];
  }
  if (dir.empty() && flags.positional().size() >= 3) {
    dir = flags.positional()[2];
  }
  if (map_path.empty() || dir.empty()) return Usage();
  std::string error;
  const auto map = serve::ShardMap::ParseFile(map_path, &error);
  if (!map.has_value()) {
    std::fprintf(stderr, "ipin_shard: %s: %s\n", map_path.c_str(),
                 error.c_str());
    return 2;
  }
  size_t checked = 0;
  size_t failures = VerifyAssignment(*map, dir, "new", &checked);
  if (map->InTransition()) {
    failures += VerifyAssignment(*map->previous(), dir, "old", &checked);
  }
  if (checked == 0) {
    std::fprintf(stderr,
                 "ipin_shard: map records no index_file bindings; nothing "
                 "to verify\n");
    return 2;
  }
  if (failures > 0) {
    std::printf("verify: %zu FAILURE(S) across %zu piece(s)\n", failures,
                checked);
    return 1;
  }
  std::printf("verify: %zu piece(s) consistent\n", checked);
  return 0;
}

int Run(int argc, char** argv) {
  const FlagMap flags = FlagMap::Parse(argc, argv);
  if (flags.positional().empty()) return Usage();
  const std::string& verb = flags.positional()[0];
  if (verb == "split") return RunSplit(flags);
  if (verb == "show") return RunShow(flags);
  if (verb == "owner") return RunOwner(flags);
  if (verb == "plan") return RunPlan(flags);
  if (verb == "rebalance") return RunRebalance(flags);
  if (verb == "finalize") return RunFinalize(flags);
  if (verb == "verify") return RunVerify(flags);
  return Usage();
}

}  // namespace
}  // namespace ipin

int main(int argc, char** argv) { return ipin::Run(argc, argv); }
