// ipin_chaos: deterministic chaos drills for the sharded serving tier
// (DESIGN.md §11). Prepares a complete fixture under --work_dir (synthetic
// dataset, full reference index, per-shard pieces, the 4→6 reshard maps),
// spawns the fleet (old primaries, the seed-chosen victim's replica, a
// reference single-index daemon, the router), and replays a seeded
// ChaosSchedule against it while the verifier thread cross-checks every
// router answer against the reference. Exit 0 iff every invariant held.
//
// Scenarios (see src/ipin/serve/chaos.h):
//   kill-primary-mid-reshard   the acceptance drill: grow 4→6 shards live,
//       SIGKILL one old primary mid-migration, probe corrupt-map rollback,
//       restart the victim, finalize — zero wrong answers throughout.
//   replica-failover           kill + restart one primary, no reshard.
//
// Usage:
//   ipin_chaos --oracled=<bin> --routerd=<bin> --work_dir=<dir>
//       [--scenario=kill-primary-mid-reshard] [--seed=42]
//       [--print_schedule]          # print the timeline JSON and exit —
//                                   # CI replays a seed by diffing this
//       [--spacing_ms=500] [--jitter=0.1]
//       [--nodes=2000] [--interactions=20000] [--data_seed=7]
//       [--min_availability=0.99] [--recovery_deadline_ms=10000]
//       [--query_deadline_ms=400] [--verifier_pause_ms=2]
//       [--ledger=<work_dir>/chaos_ledger.jsonl]
//
// Determinism: the action timeline (kinds, victim, offsets) is a pure
// function of (scenario, seed); rerunning --print_schedule with the same
// seed is byte-identical. Wall-clock execution of the timeline is only as
// deterministic as the OS scheduler — the ledger records planned vs actual
// offsets for every action so drift is visible.

#include <sys/stat.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "ipin/common/flags.h"
#include "ipin/core/irs_approx.h"
#include "ipin/core/oracle_io.h"
#include "ipin/datasets/synthetic.h"
#include "ipin/serve/chaos.h"
#include "ipin/serve/shard_map.h"

namespace ipin {
namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: ipin_chaos --oracled=<bin> --routerd=<bin> --work_dir=<dir>\n"
      "  [--scenario=kill-primary-mid-reshard|replica-failover] [--seed=42]\n"
      "  [--print_schedule]  print the seeded timeline JSON and exit\n"
      "  [--spacing_ms=500] [--jitter=0.1]\n"
      "  [--nodes=2000] [--interactions=20000] [--data_seed=7]\n"
      "  [--min_availability=0.99] [--recovery_deadline_ms=10000]\n"
      "  [--query_deadline_ms=400] [--verifier_pause_ms=2]\n"
      "  [--ledger=<path>]\n");
  return 2;
}

bool WriteTextFile(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  std::fclose(f);
  return ok;
}

serve::ChaosDaemonSpec OracledSpec(const std::string& binary,
                                   const std::string& work_dir,
                                   const std::string& name,
                                   const std::string& index_file,
                                   const std::string& socket) {
  serve::ChaosDaemonSpec spec;
  spec.name = name;
  spec.log_file = work_dir + "/" + name + ".log";
  spec.port_file = work_dir + "/" + name + ".port";
  spec.argv = {binary,
               "--index=" + index_file,
               "--socket=" + socket,
               "--port_file=" + spec.port_file,
               "--workers=2",
               "--queue_capacity=128"};
  return spec;
}

int Run(int argc, char** argv) {
  const FlagMap flags = FlagMap::Parse(argc, argv);

  const std::string scenario =
      flags.GetString("scenario", "kill-primary-mid-reshard");
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  serve::ChaosScheduleOptions schedule_options;
  schedule_options.spacing_ms = flags.GetInt("spacing_ms", 500);
  schedule_options.jitter = flags.GetDouble("jitter", 0.1);
  constexpr size_t kOldShards = 4;
  constexpr size_t kNewShards = 6;
  schedule_options.num_old_shards = kOldShards;
  schedule_options.num_new_shards = kNewShards;

  const std::optional<serve::ChaosSchedule> schedule =
      serve::ChaosSchedule::Generate(scenario, seed, schedule_options);
  if (!schedule.has_value()) {
    std::fprintf(stderr, "ipin_chaos: unknown scenario '%s'\n",
                 scenario.c_str());
    return Usage();
  }

  if (flags.Has("print_schedule")) {
    std::printf("%s\n", schedule->ToJson().c_str());
    return 0;
  }

  const std::string oracled = flags.GetString("oracled");
  const std::string routerd = flags.GetString("routerd");
  const std::string work_dir = flags.GetString("work_dir");
  if (oracled.empty() || routerd.empty() || work_dir.empty()) return Usage();
  ::mkdir(work_dir.c_str(), 0755);

  // The schedule names the victim; provision its replica before anything
  // else so the failover path is live from t=0.
  size_t victim = kOldShards;
  for (const serve::ChaosAction& action : schedule->actions) {
    if (action.kind == serve::ChaosActionKind::kKillPrimary &&
        action.target.rfind("old", 0) == 0) {
      victim = static_cast<size_t>(
          std::strtoul(action.target.c_str() + 3, nullptr, 10));
    }
  }
  if (victim >= kOldShards) {
    std::fprintf(stderr, "ipin_chaos: schedule names no old-shard victim\n");
    return 2;
  }

  // --- Fixture: dataset, full index, shard pieces, reshard maps. ---
  std::printf("ipin_chaos: building fixture in %s\n", work_dir.c_str());
  std::fflush(stdout);
  const size_t num_nodes =
      static_cast<size_t>(flags.GetInt("nodes", 2000));
  const InteractionGraph graph = GenerateUniformRandomNetwork(
      num_nodes, static_cast<size_t>(flags.GetInt("interactions", 20000)),
      /*time_span=*/1000000,
      static_cast<uint64_t>(flags.GetInt("data_seed", 7)));
  const Duration window = graph.WindowFromPercent(10.0);
  const IrsApprox full = IrsApprox::Compute(graph, window);
  const std::string full_index = work_dir + "/full.bin";
  if (!SaveInfluenceIndex(full, full_index)) {
    std::fprintf(stderr, "ipin_chaos: cannot write %s\n", full_index.c_str());
    return 2;
  }

  std::vector<serve::ShardInfo> old_shards(kOldShards);
  for (size_t i = 0; i < kOldShards; ++i) {
    old_shards[i].name = "old" + std::to_string(i);
    old_shards[i].endpoint.unix_socket_path =
        work_dir + "/old" + std::to_string(i) + ".sock";
  }
  // One failover replica, on the shard the schedule will SIGKILL.
  serve::ShardEndpoint replica_endpoint;
  replica_endpoint.unix_socket_path =
      work_dir + "/old" + std::to_string(victim) + "r.sock";
  old_shards[victim].replicas.push_back(replica_endpoint);

  // Growth keeps the old shards' ring points: old names + virtual points
  // unchanged, so every node NOT owned by new4/new5 keeps its old owner and
  // the old daemons' (superset) pieces stay valid through the transition.
  std::vector<serve::ShardInfo> new_shards = old_shards;
  for (size_t i = kOldShards; i < kNewShards; ++i) {
    serve::ShardInfo info;
    info.name = "new" + std::to_string(i);
    info.endpoint.unix_socket_path =
        work_dir + "/new" + std::to_string(i) + ".sock";
    new_shards.push_back(std::move(info));
  }

  const serve::ShardMap old_map(old_shards);
  serve::ShardMap final_map(new_shards);
  if (old_map.num_shards() != kOldShards ||
      final_map.num_shards() != kNewShards) {
    std::fprintf(stderr, "ipin_chaos: shard map construction failed\n");
    return 2;
  }

  std::vector<serve::ChaosDaemonSpec> initial;
  for (size_t i = 0; i < kOldShards; ++i) {
    const IrsApprox piece = serve::ExtractShardIndex(full, old_map, i);
    const std::string piece_file =
        work_dir + "/piece" + std::to_string(i) + ".bin";
    if (!SaveInfluenceIndex(piece, piece_file)) {
      std::fprintf(stderr, "ipin_chaos: cannot write %s\n",
                   piece_file.c_str());
      return 2;
    }
    initial.push_back(OracledSpec(oracled, work_dir,
                                  "old" + std::to_string(i), piece_file,
                                  old_shards[i].endpoint.unix_socket_path));
  }
  // The replica serves the SAME piece file as its primary.
  initial.push_back(OracledSpec(
      oracled, work_dir, "replica" + std::to_string(victim),
      work_dir + "/piece" + std::to_string(victim) + ".bin",
      replica_endpoint.unix_socket_path));
  initial.push_back(OracledSpec(oracled, work_dir, "reference", full_index,
                                work_dir + "/single.sock"));

  std::vector<serve::ChaosDaemonSpec> grown;
  for (size_t i = kOldShards; i < kNewShards; ++i) {
    const IrsApprox piece = serve::ExtractShardIndex(full, final_map, i);
    const std::string piece_file =
        work_dir + "/new" + std::to_string(i) + ".bin";
    if (!SaveInfluenceIndex(piece, piece_file)) {
      std::fprintf(stderr, "ipin_chaos: cannot write %s\n",
                   piece_file.c_str());
      return 2;
    }
    grown.push_back(OracledSpec(oracled, work_dir, "new" + std::to_string(i),
                                piece_file,
                                new_shards[i].endpoint.unix_socket_path));
  }

  const std::string live_map = work_dir + "/map.json";
  const std::string transition_map = work_dir + "/map_transition.json";
  const std::string final_map_path = work_dir + "/map_final.json";
  serve::ShardMap transition = final_map;
  transition.BeginTransition(
      std::make_shared<const serve::ShardMap>(old_map));
  if (!WriteTextFile(live_map, old_map.ToJson() + "\n") ||
      !WriteTextFile(transition_map, transition.ToJson() + "\n") ||
      !WriteTextFile(final_map_path, final_map.ToJson() + "\n")) {
    std::fprintf(stderr, "ipin_chaos: cannot write shard maps\n");
    return 2;
  }

  serve::ChaosDaemonSpec router;
  router.name = "router";
  router.log_file = work_dir + "/router.log";
  router.port_file = work_dir + "/router.port";
  const std::string router_socket = work_dir + "/router.sock";
  router.argv = {routerd,
                 "--map=" + live_map,
                 "--socket=" + router_socket,
                 "--port_file=" + router.port_file,
                 "--workers=4",
                 "--probe_interval_ms=100",
                 "--suspect_after=1",
                 "--down_after=2",
                 "--connect_timeout_ms=100"};
  initial.push_back(std::move(router));  // last: its probes find backends

  serve::ChaosDrillOptions drill_options;
  drill_options.schedule = *schedule;
  drill_options.initial_daemons = std::move(initial);
  drill_options.new_shards = std::move(grown);
  drill_options.live_map_path = live_map;
  drill_options.transition_map_path = transition_map;
  drill_options.final_map_path = final_map_path;
  drill_options.router.unix_socket_path = router_socket;
  drill_options.reference.unix_socket_path = work_dir + "/single.sock";
  drill_options.num_nodes = num_nodes;
  drill_options.query_deadline_ms = flags.GetInt("query_deadline_ms", 400);
  drill_options.verifier_pause_ms = flags.GetInt("verifier_pause_ms", 2);
  drill_options.min_availability =
      flags.GetDouble("min_availability", 0.99);
  drill_options.recovery_deadline_ms =
      flags.GetInt("recovery_deadline_ms", 10000);
  drill_options.ledger_path =
      flags.GetString("ledger", work_dir + "/chaos_ledger.jsonl");

  std::printf("ipin_chaos: schedule %s\n", schedule->ToJson().c_str());
  std::fflush(stdout);

  serve::ChaosDrill drill(std::move(drill_options));
  const serve::ChaosDrillReport report = drill.Run();

  std::printf(
      "ipin_chaos: queries=%zu ok=%zu degraded=%zu wrong=%zu "
      "invariant_violations=%zu failed=%zu availability=%.4f "
      "recovered=%d recovery_ms=%lld leaked=%zu\n",
      report.queries_total, report.queries_ok, report.queries_degraded,
      report.wrong_answers, report.invariant_violations,
      report.queries_failed, report.availability, report.recovered ? 1 : 0,
      static_cast<long long>(report.recovery_ms),
      report.leaked_daemons.size());
  if (report.passed) {
    std::printf("ipin_chaos: PASS (seed %llu)\n",
                static_cast<unsigned long long>(seed));
    return 0;
  }
  std::printf("ipin_chaos: FAIL: %s (replay with --seed=%llu)\n",
              report.failure.c_str(), static_cast<unsigned long long>(seed));
  return 1;
}

}  // namespace
}  // namespace ipin

int main(int argc, char** argv) { return ipin::Run(argc, argv); }
