#ifndef IPIN_SKETCH_ESTIMATORS_H_
#define IPIN_SKETCH_ESTIMATORS_H_

#include <cstddef>
#include <cstdint>
#include <span>

// Shared cardinality-estimation math for HyperLogLog-family sketches
// (Flajolet et al., 2007). Both the classic HLL and the paper's versioned
// HLL reduce a query to "one max-rank per cell"; this header turns that rank
// vector into a cardinality estimate.

namespace ipin {

/// Bias-correction constant alpha_m for m cells (m a power of two >= 16;
/// the standard small-m values are special-cased).
double HllAlpha(size_t num_cells);

/// Raw + corrected HyperLogLog estimate from one max-rank per cell.
/// rank 0 means "cell never touched". Applies the linear-counting
/// small-range correction; no large-range correction is needed with 64-bit
/// hashes.
double EstimateFromRanks(std::span<const uint8_t> ranks);

/// Expected relative standard error of an HLL with `num_cells` cells
/// (~1.04/sqrt(m)); used by tests to set statistical tolerances.
double HllStandardError(size_t num_cells);

}  // namespace ipin

#endif  // IPIN_SKETCH_ESTIMATORS_H_
