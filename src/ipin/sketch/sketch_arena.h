#ifndef IPIN_SKETCH_SKETCH_ARENA_H_
#define IPIN_SKETCH_SKETCH_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ipin/graph/types.h"
#include "ipin/obs/memtally.h"
#include "ipin/sketch/vhll.h"

// Struct-of-arrays storage for a sealed set of per-node versioned-HLL
// sketches (DESIGN.md §12). Index builds still mutate one VersionedHll per
// node (domination pruning needs the per-cell lists to be insertable), but
// once a build finishes the sketches are read-only forever; SketchArena is
// that read-only form, packed for the query hot paths:
//
//   rank plane   num_nodes x beta max-rank bytes, one contiguous row per
//                node (zero rows for absent nodes), so cellwise-max unions
//                and Estimate() stream cache lines instead of chasing
//                per-node heap objects;
//   entry store  per-cell entry counts (u8 — a cell holds at most 64
//                undominated pairs) plus all (rank, time) pairs concatenated
//                in cell order, split into parallel rank/time arrays for the
//                windowed bounded-max kernel.
//
// Serialization is byte-compatible with VersionedHll::Serialize, so
// oracle_io round-trips unchanged whether a node is serialized from a live
// sketch or from the arena.

namespace ipin {

/// Byte tally charged for all arena allocations (component "sketch_arena");
/// published as the mem.sketch_arena.* gauges.
obs::MemoryTally& SketchArenaMemTally();

class SketchArena {
 public:
  /// Slot sentinel for nodes that never received a sketch.
  static constexpr uint32_t kNoSlot = 0xffffffffu;

  /// Seals `sketches` (indexed by node id; null entries = absent node) into
  /// packed form. The arena copies everything out; callers free the source
  /// sketches afterwards.
  SketchArena(int precision, uint64_t salt,
              std::span<const std::unique_ptr<VersionedHll>> sketches);

  int precision() const { return precision_; }
  uint64_t salt() const { return salt_; }
  size_t num_cells() const { return beta_; }
  size_t num_nodes() const { return num_nodes_; }

  /// True if node `u` had a sketch when the arena was sealed.
  bool has_node(NodeId u) const {
    return u < num_nodes_ && slot_of_[u] != kNoSlot;
  }

  /// Number of nodes with a sketch.
  size_t NumAllocated() const { return num_allocated_; }

  /// The node's row of the max-rank plane (all zeros for absent nodes —
  /// every node has a row, so union loops index without branching).
  std::span<const uint8_t> rank_row(NodeId u) const {
    return {rank_plane_.data() + static_cast<size_t>(u) * beta_, beta_};
  }

  /// Stored (rank, time) pairs of node `u` (0 for absent nodes).
  size_t NodeNumEntries(NodeId u) const;

  /// Total stored pairs across all nodes.
  size_t TotalEntries() const { return entry_ranks_.size(); }

  /// Unbounded estimate for node `u` via the dispatched kernel.
  double EstimateNode(NodeId u) const;

  /// Windowed estimate (entries with time < bound) for node `u`, reusing
  /// *scratch for the rank vector.
  double EstimateNodeBefore(NodeId u, Timestamp bound,
                            std::vector<uint8_t>* scratch) const;

  /// Folds node `u`'s windowed max ranks into dst (size num_cells):
  /// dst[c] = max(dst[c], max rank among cell c entries with time < bound).
  void BoundedMaxInto(NodeId u, Timestamp bound, uint8_t* dst) const;

  /// Appends node `u`'s encoding to *out, byte-identical to what
  /// VersionedHll::Serialize would have produced for the sealed sketch.
  /// Must not be called for absent nodes.
  void SerializeNode(NodeId u, std::string* out) const;

  /// Reconstructs node `u` as a standalone mutable sketch (shard
  /// extraction). Must not be called for absent nodes.
  std::unique_ptr<VersionedHll> MaterializeNode(NodeId u) const;

  /// Verifies the per-cell invariants of node `u`'s stored entries and that
  /// its rank-plane row matches them. Test helper; true for absent nodes.
  bool CheckNodeInvariants(NodeId u) const;

  /// Approximate heap footprint in bytes.
  size_t MemoryUsageBytes() const;

 private:
  template <typename T>
  using TallyVec = std::vector<T, obs::TallyAllocator<T, &SketchArenaMemTally>>;

  /// Slot of node u; callers must have checked has_node.
  size_t slot(NodeId u) const { return slot_of_[u]; }

  int precision_;
  uint64_t salt_;
  size_t beta_;
  size_t num_nodes_;
  size_t num_allocated_ = 0;
  TallyVec<uint8_t> rank_plane_;        // num_nodes x beta
  TallyVec<uint32_t> slot_of_;          // num_nodes, kNoSlot when absent
  TallyVec<uint8_t> cell_counts_;       // num_allocated x beta
  TallyVec<uint64_t> slot_entry_base_;  // num_allocated + 1
  TallyVec<uint8_t> entry_ranks_;       // total entries, cell order
  TallyVec<int64_t> entry_times_;       // parallel to entry_ranks_
};

/// Uniform read handle over one node's sketch in either storage mode:
/// a live VersionedHll during a build, or an arena slot once sealed.
/// Query code written against SketchView works identically in both modes —
/// including Serialize, which is byte-identical either way (the mid-build
/// checkpoint writer and the sealed oracle writer share this contract).
class SketchView {
 public:
  SketchView() = default;
  explicit SketchView(const VersionedHll* hll) : hll_(hll) {}
  SketchView(const SketchArena* arena, NodeId node)
      : arena_(arena), node_(node) {}

  /// False for absent nodes (no sketch ever allocated).
  bool valid() const {
    return hll_ != nullptr || (arena_ != nullptr && arena_->has_node(node_));
  }
  explicit operator bool() const { return valid(); }

  int precision() const {
    return hll_ != nullptr ? hll_->precision() : arena_->precision();
  }
  uint64_t salt() const {
    return hll_ != nullptr ? hll_->salt() : arena_->salt();
  }
  size_t num_cells() const {
    return hll_ != nullptr ? hll_->num_cells() : arena_->num_cells();
  }

  /// Per-cell max rank, contiguous (the union fast path input).
  std::span<const uint8_t> max_ranks() const {
    return hll_ != nullptr ? hll_->max_ranks() : arena_->rank_row(node_);
  }

  size_t NumEntries() const {
    return hll_ != nullptr ? hll_->NumEntries() : arena_->NodeNumEntries(node_);
  }

  double Estimate() const;
  double EstimateBefore(Timestamp bound, std::vector<uint8_t>* scratch) const;

  /// Folds the windowed per-cell max ranks into *ranks (size num_cells),
  /// like VersionedHll::MaxRanks.
  void MaxRanks(Timestamp bound, std::vector<uint8_t>* ranks) const;

  void Serialize(std::string* out) const;
  bool CheckInvariants() const;

  /// Deep copy into a standalone mutable sketch.
  std::unique_ptr<VersionedHll> Materialize() const;

 private:
  const VersionedHll* hll_ = nullptr;
  const SketchArena* arena_ = nullptr;
  NodeId node_ = kInvalidNode;
};

}  // namespace ipin

#endif  // IPIN_SKETCH_SKETCH_ARENA_H_
