#include "ipin/sketch/vhll.h"

#include <algorithm>
#include <cstring>

#include "ipin/common/check.h"
#include "ipin/common/hash.h"
#include "ipin/sketch/estimators.h"

namespace ipin {

obs::MemoryTally& VhllMemTally() {
  static obs::MemoryTally& tally = obs::GetMemoryTally("vhll");
  return tally;
}

VersionedHll::VersionedHll(int precision, uint64_t salt)
    : precision_(precision), salt_(salt) {
  IPIN_CHECK_GE(precision, 4);
  IPIN_CHECK_LE(precision, 18);
  cells_.resize(static_cast<size_t>(1) << precision);
  max_ranks_.resize(cells_.size(), 0);
}

bool VersionedHll::Add(uint64_t item, Timestamp t) {
  return AddHash(Hash64(item, salt_), t);
}

bool VersionedHll::AddHash(uint64_t hash, Timestamp t) {
  const size_t cell = static_cast<size_t>(hash & (cells_.size() - 1));
  const uint64_t rest = hash >> precision_;
  const int r = std::min(RhoLsb(rest), 64 - precision_ + 1);
  return AddEntry(cell, static_cast<uint8_t>(r), t);
}

bool VersionedHll::AddEntry(size_t cell_index, uint8_t rank, Timestamp t) {
  IPIN_DCHECK(cell_index < cells_.size());
  IPIN_DCHECK(rank > 0);
  ++insert_attempts_;
  CellList& list = cells_[cell_index];

  // Lists are ascending in both time and rank. Locate the first entry with
  // time > t; every entry before it has time <= t, and the largest rank in
  // that prefix sits immediately before the insertion point.
  size_t pos = list.size();
  while (pos > 0 && list[pos - 1].time > t) --pos;

  if (pos > 0 && list[pos - 1].rank >= rank) {
    return false;  // dominated by an earlier (or simultaneous) >=-rank entry
  }

  // Entries sharing timestamp t all have rank < `rank` at this point (the
  // prefix max did), so the new pair dominates them too; pull them into the
  // removal run.
  while (pos > 0 && list[pos - 1].time == t) --pos;

  // The new pair dominates every later entry with rank <= `rank`; since
  // ranks ascend, those form a contiguous run starting at pos.
  size_t end = pos;
  while (end < list.size() && list[end].rank <= rank) ++end;

  if (end == pos) {
    list.insert(list.begin() + static_cast<ptrdiff_t>(pos),
                Entry{rank, t});
  } else {
    evictions_ += end - pos;  // dominated pairs dropped for the new one
    list[pos] = Entry{rank, t};
    if (end > pos + 1) {
      list.erase(list.begin() + static_cast<ptrdiff_t>(pos) + 1,
                 list.begin() + static_cast<ptrdiff_t>(end));
    }
  }
  // Ranks ascend within a list, so the cached cell max is just the tail.
  max_ranks_[cell_index] = list.back().rank;
  return true;
}

void VersionedHll::MergeWindow(const VersionedHll& other, Timestamp merge_time,
                               Duration window) {
  IPIN_CHECK_EQ(precision_, other.precision_);
  IPIN_CHECK_EQ(salt_, other.salt_);
  const Timestamp bound = merge_time + window;  // keep entries with t < bound
  size_t scanned = 0;
  size_t kept = 0;
  for (size_t c = 0; c < cells_.size(); ++c) {
    for (const Entry& e : other.cells_[c]) {
      if (e.time >= bound) break;  // ascending time: rest is out of window
      ++scanned;
      kept += AddEntry(c, e.rank, e.time);
    }
  }
  merge_entries_scanned_ += scanned;
  cell_updates_ += kept;
}

void VersionedHll::MergeAll(const VersionedHll& other) {
  IPIN_CHECK_EQ(precision_, other.precision_);
  IPIN_CHECK_EQ(salt_, other.salt_);
  for (size_t c = 0; c < cells_.size(); ++c) {
    for (const Entry& e : other.cells_[c]) {
      AddEntry(c, e.rank, e.time);
    }
  }
}

bool VersionedHll::MergeWithFloor(const VersionedHll& other, Timestamp floor,
                                  Timestamp bound) {
  IPIN_CHECK_EQ(precision_, other.precision_);
  IPIN_CHECK_EQ(salt_, other.salt_);
  bool changed = false;
  for (size_t c = 0; c < cells_.size(); ++c) {
    for (const Entry& e : other.cells_[c]) {
      if (e.time >= bound) break;  // ascending time: rest is out of window
      changed |= AddEntry(c, e.rank, std::max(e.time, floor));
    }
  }
  return changed;
}

double VersionedHll::Estimate() const {
  return EstimateFromRanks({max_ranks_.data(), max_ranks_.size()});
}

double VersionedHll::EstimateBefore(Timestamp bound) const {
  std::vector<uint8_t> scratch;
  return EstimateBefore(bound, &scratch);
}

double VersionedHll::EstimateBefore(Timestamp bound,
                                    std::vector<uint8_t>* scratch) const {
  scratch->assign(cells_.size(), 0);
  MaxRanks(bound, scratch);
  return EstimateFromRanks(*scratch);
}

void VersionedHll::MaxRanks(Timestamp bound,
                            std::vector<uint8_t>* ranks) const {
  IPIN_CHECK_EQ(ranks->size(), cells_.size());
  for (size_t c = 0; c < cells_.size(); ++c) {
    const CellList& list = cells_[c];
    // Times ascend and ranks strictly ascend, so the in-window entries are
    // a prefix whose max rank is its last entry — no max fold needed.
    size_t k = 0;
    while (k < list.size() && list[k].time < bound) ++k;
    if (k > 0 && list[k - 1].rank > (*ranks)[c]) {
      (*ranks)[c] = list[k - 1].rank;
    }
  }
}

void VersionedHll::CompactExpired(Timestamp frontier, Duration window) {
  const Timestamp bound = frontier + window;
  for (size_t c = 0; c < cells_.size(); ++c) {
    CellList& list = cells_[c];
    while (!list.empty() && list.back().time >= bound) list.pop_back();
    max_ranks_[c] = list.empty() ? 0 : list.back().rank;
  }
}

void VersionedHll::Clear() {
  for (CellList& list : cells_) list.clear();
  std::fill(max_ranks_.begin(), max_ranks_.end(), 0);
}

size_t VersionedHll::NumEntries() const {
  size_t total = 0;
  for (const CellList& list : cells_) total += list.size();
  return total;
}

bool VersionedHll::CheckInvariants() const {
  for (size_t c = 0; c < cells_.size(); ++c) {
    const CellList& list = cells_[c];
    if (max_ranks_[c] != (list.empty() ? 0 : list.back().rank)) return false;
    for (size_t i = 1; i < list.size(); ++i) {
      // Strictly ascending rank; non-descending time; no domination either
      // way (equal times with equal ranks would have been collapsed).
      if (list[i].rank <= list[i - 1].rank) return false;
      if (list[i].time < list[i - 1].time) return false;
    }
    for (const Entry& e : list) {
      if (e.rank == 0) return false;
    }
  }
  return true;
}

namespace {

// Serialization layout (little-endian):
//   u8  format version (1)
//   u8  precision
//   u64 salt
//   per cell (2^precision of them): u32 count, then count x (u8 rank,
//   i64 time).
constexpr uint8_t kVhllFormatVersion = 1;

template <typename T>
void AppendRaw(std::string* out, T value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadRaw(std::string_view data, size_t* offset, T* value) {
  if (data.size() - *offset < sizeof(T)) return false;
  std::memcpy(value, data.data() + *offset, sizeof(T));
  *offset += sizeof(T);
  return true;
}

}  // namespace

void VersionedHll::Serialize(std::string* out) const {
  AppendRaw<uint8_t>(out, kVhllFormatVersion);
  AppendRaw<uint8_t>(out, static_cast<uint8_t>(precision_));
  AppendRaw<uint64_t>(out, salt_);
  for (const CellList& list : cells_) {
    AppendRaw<uint32_t>(out, static_cast<uint32_t>(list.size()));
    for (const Entry& e : list) {
      AppendRaw<uint8_t>(out, e.rank);
      AppendRaw<int64_t>(out, e.time);
    }
  }
}

std::optional<VersionedHll> VersionedHll::Deserialize(std::string_view data,
                                                      size_t* offset) {
  uint8_t version = 0;
  uint8_t precision = 0;
  uint64_t salt = 0;
  if (!ReadRaw(data, offset, &version) || version != kVhllFormatVersion) {
    return std::nullopt;
  }
  if (!ReadRaw(data, offset, &precision) || precision < 4 || precision > 18) {
    return std::nullopt;
  }
  if (!ReadRaw(data, offset, &salt)) return std::nullopt;

  VersionedHll sketch(precision, salt);
  for (size_t c = 0; c < sketch.cells_.size(); ++c) {
    uint32_t count = 0;
    if (!ReadRaw(data, offset, &count)) return std::nullopt;
    // A cell holds at most 64 undominated ranks; anything larger is corrupt.
    if (count > 64) return std::nullopt;
    sketch.cells_[c].reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      Entry e;
      if (!ReadRaw(data, offset, &e.rank) || !ReadRaw(data, offset, &e.time)) {
        return std::nullopt;
      }
      sketch.cells_[c].push_back(e);
    }
    if (count > 0) sketch.max_ranks_[c] = sketch.cells_[c].back().rank;
  }
  if (!sketch.CheckInvariants()) return std::nullopt;
  return sketch;
}

size_t VersionedHll::MemoryUsageBytes() const {
  size_t bytes = cells_.capacity() * sizeof(CellList);
  bytes += max_ranks_.capacity() * sizeof(uint8_t);
  for (const CellList& list : cells_) {
    bytes += list.capacity() * sizeof(Entry);
  }
  return bytes;
}

}  // namespace ipin
