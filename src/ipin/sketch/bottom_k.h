#ifndef IPIN_SKETCH_BOTTOM_K_H_
#define IPIN_SKETCH_BOTTOM_K_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ipin {

/// Bottom-k min-hash sketch (Cohen's size-estimation framework). Keeps the
/// k smallest distinct hash values seen; the cardinality of the underlying
/// set is estimated from the k-th smallest value. Mergeable by union. Used
/// by the SKIM baseline's combined-reachability sketches.
class BottomK {
 public:
  /// `k` must be >= 1.
  explicit BottomK(size_t k, uint64_t salt = 0);

  /// Inserts a 64-bit item (hashed internally with the sketch's salt).
  void Add(uint64_t item);

  /// Inserts a pre-computed hash value.
  void AddHash(uint64_t hash);

  /// Merges another sketch (same k and salt required).
  void Merge(const BottomK& other);

  /// Estimated number of distinct items: exact count while the sketch holds
  /// fewer than k hashes, otherwise (k-1) / normalized k-th minimum.
  double Estimate() const;

  /// True once k distinct hashes have been absorbed (estimates switch from
  /// exact to statistical).
  bool IsFull() const { return hashes_.size() >= k_; }

  size_t k() const { return k_; }
  uint64_t salt() const { return salt_; }

  /// The stored hashes, sorted ascending (size <= k).
  const std::vector<uint64_t>& hashes() const { return hashes_; }

  /// Approximate heap footprint in bytes.
  size_t MemoryUsageBytes() const;

 private:
  size_t k_;
  uint64_t salt_;
  std::vector<uint64_t> hashes_;  // sorted ascending, distinct
};

}  // namespace ipin

#endif  // IPIN_SKETCH_BOTTOM_K_H_
