#ifndef IPIN_SKETCH_VERSIONED_BOTTOM_K_H_
#define IPIN_SKETCH_VERSIONED_BOTTOM_K_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "ipin/graph/types.h"
#include "ipin/obs/memtally.h"

namespace ipin {

/// Byte tally charged for versioned bottom-k entry-list allocations
/// (component "bottom_k"); published as the mem.bottom_k.* gauges.
obs::MemoryTally& BottomKMemTally();

/// Versioned bottom-k sketch: the bottom-k analogue of the paper's
/// versioned HyperLogLog, provided as a design-alternative backend for the
/// IRS computation (see bench_ablation_design).
///
/// A plain bottom-k sketch keeps the k smallest item hashes; a *versioned*
/// one keeps (hash, timestamp) pairs such that, for ANY time bound b, the k
/// smallest hashes among entries with time < b are retained. An entry is
/// dominated — and dropped — exactly when k entries with smaller hashes and
/// earlier-or-equal timestamps exist (they will outlive it in every
/// window). Expected size is O(k log(n/k)).
///
/// Like the vHLL, merges can filter by a time bound, so the one-pass IRS
/// scan works unchanged; estimates use the classic (k-1)/kth-minimum rule.
class VersionedBottomK {
 public:
  /// One (hash, timestamp) pair; entries_ stays sorted ascending by time.
  struct Entry {
    uint64_t hash = 0;
    Timestamp time = 0;
  };

  /// Entry storage charges the "bottom_k" MemoryTally, so mem.bottom_k.bytes
  /// reports measured (allocator-counted) footprint.
  using EntryList =
      std::vector<Entry, obs::TallyAllocator<Entry, &BottomKMemTally>>;

  /// `k` >= 2 (the estimator divides by the k-th minimum).
  explicit VersionedBottomK(size_t k, uint64_t salt = 0);

  /// Inserts an item observed at time `t`. Returns true if kept.
  bool Add(uint64_t item, Timestamp t);

  /// Inserts a pre-computed hash observed at time `t`.
  bool AddHash(uint64_t hash, Timestamp t);

  /// Folds in every entry of `other` with time < merge_time + window
  /// (the windowed merge of the IRS scan).
  void MergeWindow(const VersionedBottomK& other, Timestamp merge_time,
                   Duration window);

  /// Unrestricted merge.
  void MergeAll(const VersionedBottomK& other);

  /// Estimated number of distinct items ever inserted.
  double Estimate() const;

  /// Estimated number of distinct items with timestamp < `bound`.
  double EstimateBefore(Timestamp bound) const;

  size_t k() const { return k_; }
  uint64_t salt() const { return salt_; }
  size_t NumEntries() const { return entries_.size(); }
  const EntryList& entries() const { return entries_; }

  /// Verifies the domination invariant (test helper, O(len^2)).
  bool CheckInvariants() const;

  /// Appends a self-contained binary encoding (k, salt, entry list) to
  /// *out. Little-endian, versioned; the persistence-layer counterpart of
  /// VersionedHll::Serialize.
  void Serialize(std::string* out) const;

  /// Reads an encoding produced by Serialize from data starting at *offset,
  /// advancing *offset past it. Returns nullopt on truncation or corruption
  /// (including invariant violations).
  static std::optional<VersionedBottomK> Deserialize(std::string_view data,
                                                     size_t* offset);

  /// Approximate heap footprint in bytes.
  size_t MemoryUsageBytes() const;

 private:
  // Re-establishes the invariant after an insertion: one pass in time
  // order, dropping entries preceded by >= k smaller hashes.
  void Compact();

  size_t k_;
  uint64_t salt_;
  EntryList entries_;  // ascending time; distinct hashes
};

}  // namespace ipin

#endif  // IPIN_SKETCH_VERSIONED_BOTTOM_K_H_
