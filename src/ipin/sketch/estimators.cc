#include "ipin/sketch/estimators.h"

#include <cmath>

#include "ipin/common/check.h"
#include "ipin/sketch/kernels.h"

namespace ipin {

double HllAlpha(size_t num_cells) {
  IPIN_CHECK_GE(num_cells, 2u);
  switch (num_cells) {
    case 16:
      return 0.673;
    case 32:
      return 0.697;
    case 64:
      return 0.709;
    default:
      if (num_cells < 16) return 0.673;  // below the published table; clamp
      return 0.7213 / (1.0 + 1.079 / static_cast<double>(num_cells));
  }
}

double EstimateFromRanks(std::span<const uint8_t> ranks) {
  IPIN_CHECK_GE(ranks.size(), 2u);
  // Delegates to the dispatched kernel (kernels.cc): a 256-bin rank
  // histogram folded against a precomputed 2^-r table in fixed ascending-
  // rank order, so the result is bit-identical across SIMD targets.
  return kernels::Dispatched().estimate_from_ranks(ranks.data(), ranks.size());
}

double HllStandardError(size_t num_cells) {
  return 1.04 / std::sqrt(static_cast<double>(num_cells));
}

}  // namespace ipin
