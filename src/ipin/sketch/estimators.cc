#include "ipin/sketch/estimators.h"

#include <cmath>

#include "ipin/common/check.h"

namespace ipin {

double HllAlpha(size_t num_cells) {
  IPIN_CHECK_GE(num_cells, 2u);
  switch (num_cells) {
    case 16:
      return 0.673;
    case 32:
      return 0.697;
    case 64:
      return 0.709;
    default:
      if (num_cells < 16) return 0.673;  // below the published table; clamp
      return 0.7213 / (1.0 + 1.079 / static_cast<double>(num_cells));
  }
}

double EstimateFromRanks(std::span<const uint8_t> ranks) {
  const size_t m = ranks.size();
  IPIN_CHECK_GE(m, 2u);
  double inverse_sum = 0.0;
  size_t zeros = 0;
  for (const uint8_t r : ranks) {
    inverse_sum += std::ldexp(1.0, -static_cast<int>(r));
    if (r == 0) ++zeros;
  }
  const double md = static_cast<double>(m);
  const double raw = HllAlpha(m) * md * md / inverse_sum;
  if (raw <= 2.5 * md && zeros > 0) {
    // Linear counting in the small-cardinality regime.
    return md * std::log(md / static_cast<double>(zeros));
  }
  return raw;
}

double HllStandardError(size_t num_cells) {
  return 1.04 / std::sqrt(static_cast<double>(num_cells));
}

}  // namespace ipin
