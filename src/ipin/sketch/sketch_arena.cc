#include "ipin/sketch/sketch_arena.h"

#include <algorithm>
#include <cstring>

#include "ipin/common/check.h"
#include "ipin/sketch/kernels.h"

namespace ipin {

obs::MemoryTally& SketchArenaMemTally() {
  static obs::MemoryTally& tally = obs::GetMemoryTally("sketch_arena");
  return tally;
}

SketchArena::SketchArena(
    int precision, uint64_t salt,
    std::span<const std::unique_ptr<VersionedHll>> sketches)
    : precision_(precision),
      salt_(salt),
      beta_(static_cast<size_t>(1) << precision),
      num_nodes_(sketches.size()) {
  IPIN_CHECK_GE(precision, 4);
  IPIN_CHECK_LE(precision, 18);

  // Pass 1: count slots and entries so every array is allocated exactly once.
  size_t total_entries = 0;
  for (const auto& sketch : sketches) {
    if (sketch == nullptr) continue;
    IPIN_CHECK_EQ(sketch->precision(), precision_);
    IPIN_CHECK_EQ(sketch->salt(), salt_);
    ++num_allocated_;
    total_entries += sketch->NumEntries();
  }

  rank_plane_.resize(num_nodes_ * beta_, 0);
  slot_of_.resize(num_nodes_, kNoSlot);
  cell_counts_.resize(num_allocated_ * beta_, 0);
  slot_entry_base_.resize(num_allocated_ + 1, 0);
  entry_ranks_.resize(total_entries);
  entry_times_.resize(total_entries);

  // Pass 2: pack. Entries keep their in-cell order (ascending time,
  // strictly ascending rank — the vHLL invariant the kernels rely on).
  size_t next_slot = 0;
  size_t next_entry = 0;
  for (size_t u = 0; u < num_nodes_; ++u) {
    const VersionedHll* sketch = sketches[u].get();
    if (sketch == nullptr) continue;
    const size_t s = next_slot++;
    slot_of_[u] = static_cast<uint32_t>(s);
    const std::span<const uint8_t> ranks = sketch->max_ranks();
    std::memcpy(rank_plane_.data() + u * beta_, ranks.data(), beta_);
    uint8_t* counts = cell_counts_.data() + s * beta_;
    slot_entry_base_[s] = next_entry;
    for (size_t c = 0; c < beta_; ++c) {
      const VersionedHll::CellList& list = sketch->cell(c);
      // u8 per-cell counts: an undominated list holds at most 64 entries
      // (strictly ascending u8 ranks bounded by the hash width).
      IPIN_CHECK_LE(list.size(), 64u);
      counts[c] = static_cast<uint8_t>(list.size());
      for (const VersionedHll::Entry& e : list) {
        entry_ranks_[next_entry] = e.rank;
        entry_times_[next_entry] = e.time;
        ++next_entry;
      }
    }
  }
  slot_entry_base_[num_allocated_] = next_entry;
  IPIN_CHECK_EQ(next_entry, total_entries);
}

size_t SketchArena::NodeNumEntries(NodeId u) const {
  if (!has_node(u)) return 0;
  const size_t s = slot(u);
  return slot_entry_base_[s + 1] - slot_entry_base_[s];
}

double SketchArena::EstimateNode(NodeId u) const {
  return kernels::Dispatched().estimate_from_ranks(
      rank_plane_.data() + static_cast<size_t>(u) * beta_, beta_);
}

double SketchArena::EstimateNodeBefore(NodeId u, Timestamp bound,
                                       std::vector<uint8_t>* scratch) const {
  scratch->assign(beta_, 0);
  BoundedMaxInto(u, bound, scratch->data());
  return kernels::Dispatched().estimate_from_ranks(scratch->data(), beta_);
}

void SketchArena::BoundedMaxInto(NodeId u, Timestamp bound,
                                 uint8_t* dst) const {
  if (!has_node(u)) return;
  const size_t s = slot(u);
  const size_t base = slot_entry_base_[s];
  const size_t total = slot_entry_base_[s + 1] - base;
  static_assert(sizeof(Timestamp) == sizeof(int64_t));
  kernels::Dispatched().bounded_max_into(
      cell_counts_.data() + s * beta_, entry_ranks_.data() + base,
      entry_times_.data() + base, beta_, total, bound, dst);
}

namespace {

// Mirrors the VersionedHll serialization layout (vhll.cc) byte for byte.
constexpr uint8_t kVhllFormatVersion = 1;

template <typename T>
void AppendRaw(std::string* out, T value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

}  // namespace

void SketchArena::SerializeNode(NodeId u, std::string* out) const {
  IPIN_CHECK(has_node(u));
  const size_t s = slot(u);
  const uint8_t* counts = cell_counts_.data() + s * beta_;
  size_t entry = slot_entry_base_[s];
  AppendRaw<uint8_t>(out, kVhllFormatVersion);
  AppendRaw<uint8_t>(out, static_cast<uint8_t>(precision_));
  AppendRaw<uint64_t>(out, salt_);
  for (size_t c = 0; c < beta_; ++c) {
    const size_t n = counts[c];
    AppendRaw<uint32_t>(out, static_cast<uint32_t>(n));
    for (size_t i = 0; i < n; ++i, ++entry) {
      AppendRaw<uint8_t>(out, entry_ranks_[entry]);
      AppendRaw<int64_t>(out, entry_times_[entry]);
    }
  }
}

std::unique_ptr<VersionedHll> SketchArena::MaterializeNode(NodeId u) const {
  // Round-trip through the wire format: exact by construction, and this
  // path (shard extraction) is nowhere near hot.
  std::string blob;
  SerializeNode(u, &blob);
  size_t offset = 0;
  std::optional<VersionedHll> sketch = VersionedHll::Deserialize(blob, &offset);
  IPIN_CHECK(sketch.has_value());
  return std::make_unique<VersionedHll>(std::move(*sketch));
}

bool SketchArena::CheckNodeInvariants(NodeId u) const {
  if (!has_node(u)) return true;
  const size_t s = slot(u);
  const uint8_t* counts = cell_counts_.data() + s * beta_;
  const uint8_t* row = rank_plane_.data() + static_cast<size_t>(u) * beta_;
  size_t entry = slot_entry_base_[s];
  for (size_t c = 0; c < beta_; ++c) {
    const size_t n = counts[c];
    if (n > 64) return false;
    for (size_t i = 0; i < n; ++i) {
      if (entry_ranks_[entry + i] == 0) return false;
      if (i > 0) {
        if (entry_ranks_[entry + i] <= entry_ranks_[entry + i - 1]) {
          return false;
        }
        if (entry_times_[entry + i] < entry_times_[entry + i - 1]) {
          return false;
        }
      }
    }
    const uint8_t expected = n == 0 ? 0 : entry_ranks_[entry + n - 1];
    if (row[c] != expected) return false;
    entry += n;
  }
  return entry == slot_entry_base_[s + 1];
}

size_t SketchArena::MemoryUsageBytes() const {
  return rank_plane_.capacity() * sizeof(uint8_t) +
         slot_of_.capacity() * sizeof(uint32_t) +
         cell_counts_.capacity() * sizeof(uint8_t) +
         slot_entry_base_.capacity() * sizeof(uint64_t) +
         entry_ranks_.capacity() * sizeof(uint8_t) +
         entry_times_.capacity() * sizeof(int64_t);
}

double SketchView::Estimate() const {
  if (hll_ != nullptr) return hll_->Estimate();
  return arena_->EstimateNode(node_);
}

double SketchView::EstimateBefore(Timestamp bound,
                                  std::vector<uint8_t>* scratch) const {
  if (hll_ != nullptr) return hll_->EstimateBefore(bound, scratch);
  return arena_->EstimateNodeBefore(node_, bound, scratch);
}

void SketchView::MaxRanks(Timestamp bound, std::vector<uint8_t>* ranks) const {
  if (hll_ != nullptr) {
    hll_->MaxRanks(bound, ranks);
    return;
  }
  IPIN_CHECK_EQ(ranks->size(), arena_->num_cells());
  arena_->BoundedMaxInto(node_, bound, ranks->data());
}

void SketchView::Serialize(std::string* out) const {
  if (hll_ != nullptr) {
    hll_->Serialize(out);
    return;
  }
  arena_->SerializeNode(node_, out);
}

bool SketchView::CheckInvariants() const {
  if (hll_ != nullptr) return hll_->CheckInvariants();
  return arena_->CheckNodeInvariants(node_);
}

std::unique_ptr<VersionedHll> SketchView::Materialize() const {
  if (hll_ != nullptr) return std::make_unique<VersionedHll>(*hll_);
  return arena_->MaterializeNode(node_);
}

}  // namespace ipin
