#ifndef IPIN_SKETCH_VHLL_H_
#define IPIN_SKETCH_VHLL_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "ipin/graph/types.h"
#include "ipin/obs/memtally.h"

namespace ipin {

/// Byte tally charged for every vHLL cell-list allocation (component
/// "vhll"); published as the mem.vhll.* gauges.
obs::MemoryTally& VhllMemTally();

/// Versioned HyperLogLog sketch (Section 3.2.2 of the paper).
///
/// Each of the beta = 2^precision cells stores a short list of
/// (rank, timestamp) pairs instead of a single max rank, so the sketch can
/// answer "max rank among items whose timestamp is below a bound" — exactly
/// what the window-constrained Merge of the IRS algorithm needs
/// (an entry of phi(v) with end time t_x may flow into phi(u) via an edge at
/// time t only if t_x - t < omega, i.e. t_x < t + omega).
///
/// Domination (the paper's pruning rule): (r1, t1) dominates (r2, t2) iff
/// t1 <= t2 and r1 >= r2 — an earlier, higher-rank pair makes the other one
/// useless for every possible bound. Undominated lists are therefore
/// strictly increasing in both time and rank; we keep them sorted ascending
/// by time, which makes every windowed query a prefix scan and keeps the
/// expected list length logarithmic (Lemma 4).
///
/// Note on expiry: the paper's generic sliding-window vHLL periodically
/// drops entries far ahead of the scan frontier. In the IRS application
/// those entries still belong to sigma_omega(u) (only their merge
/// eligibility has expired), so dropping them would bias Estimate(); the
/// IRS algorithm therefore never calls CompactExpired. It is provided for
/// callers that only ever issue windowed queries (EstimateBefore).
class VersionedHll {
 public:
  /// One (rank, timestamp) pair of a cell list.
  struct Entry {
    uint8_t rank = 0;
    Timestamp time = 0;
  };

  /// Cell lists charge the "vhll" MemoryTally for their allocations, so
  /// mem.vhll.bytes reports measured (allocator-counted) footprint.
  using CellList =
      std::vector<Entry, obs::TallyAllocator<Entry, &VhllMemTally>>;

  /// `precision` must be in [4, 18]; all sketches that will ever be merged
  /// must share `precision` and `salt`.
  explicit VersionedHll(int precision, uint64_t salt = 0);

  /// Inserts item observed at time `t` (hashes the item internally).
  /// Returns true if the sketch changed.
  bool Add(uint64_t item, Timestamp t);

  /// Inserts a pre-computed hash observed at time `t`. Returns true if the
  /// sketch changed.
  bool AddHash(uint64_t hash, Timestamp t);

  /// Inserts an explicit (cell, rank, time) triple, applying domination
  /// pruning (the paper's ApproxAdd). Exposed for merges and tests.
  /// Returns true if the sketch changed (entry kept).
  bool AddEntry(size_t cell, uint8_t rank, Timestamp t);

  /// The paper's ApproxMerge: folds in every entry of `other` whose time t_x
  /// satisfies t_x - merge_time < window.
  void MergeWindow(const VersionedHll& other, Timestamp merge_time,
                   Duration window);

  /// Unrestricted merge (all entries); used when unioning the final
  /// per-node sketches in the influence oracle.
  void MergeAll(const VersionedHll& other);

  /// Merge for sliding-window neighborhood profiles (Kumar et al. 2015):
  /// folds in entries of `other` with time < bound, CLAMPING each merged
  /// timestamp to at least `floor` (in the negated-time encoding this caps
  /// a path's freshness at the connecting edge's timestamp). Returns true
  /// if the sketch changed.
  bool MergeWithFloor(const VersionedHll& other, Timestamp floor,
                      Timestamp bound);

  /// Estimated number of distinct items ever inserted. O(beta): reads the
  /// per-cell max-rank cache, not the entry lists.
  double Estimate() const;

  /// Estimated number of distinct items with timestamp < `bound`.
  double EstimateBefore(Timestamp bound) const;

  /// As above, but reuses `*scratch` for the rank vector instead of
  /// allocating one per call (hot in oracle serving, where one worker
  /// answers many windowed queries back to back). `*scratch` is resized as
  /// needed; contents on entry are ignored.
  double EstimateBefore(Timestamp bound, std::vector<uint8_t>* scratch) const;

  /// Drops entries that can no longer affect any windowed query with
  /// merge_time <= frontier: entries with time >= frontier + window.
  /// WARNING: biases Estimate() downwards; see class comment.
  void CompactExpired(Timestamp frontier, Duration window);

  /// Resets to the empty sketch.
  void Clear();

  int precision() const { return precision_; }
  uint64_t salt() const { return salt_; }
  size_t num_cells() const { return cells_.size(); }

  /// Total number of stored (rank, time) pairs across all cells.
  size_t NumEntries() const;

  /// Lifetime count of AddEntry calls (before domination filtering); the
  /// ratio NumEntries()/NumInsertAttempts() measures what pruning saves.
  size_t NumInsertAttempts() const { return insert_attempts_; }

  /// Lifetime count of stored pairs evicted because a newly inserted pair
  /// dominated them (the flip side of NumInsertAttempts' rejected inserts).
  size_t NumEvictions() const { return evictions_; }

  /// Lifetime count of entries examined by MergeWindow (window-eligible
  /// pairs read from the other sketch) and of those that survived
  /// domination filtering and updated a cell. Plain tallies: the merge
  /// loop stays atomics-free and callers roll them up into the registry.
  size_t NumMergeEntriesScanned() const { return merge_entries_scanned_; }
  size_t NumCellUpdates() const { return cell_updates_; }

  /// The raw list of cell `i` (ascending time, strictly ascending rank).
  const CellList& cell(size_t i) const { return cells_[i]; }

  /// Per-cell max rank (0 for an empty cell), maintained on every mutation.
  /// Contiguous, so cellwise-max union loops (the oracle's hot path) touch
  /// one cache line per 64 cells instead of chasing every cell list.
  std::span<const uint8_t> max_ranks() const {
    return {max_ranks_.data(), max_ranks_.size()};
  }

  /// Fills `ranks` (size num_cells) with the per-cell max rank, optionally
  /// bounded: only entries with time < bound count. Used by the oracle's
  /// union-estimate fast path.
  void MaxRanks(Timestamp bound, std::vector<uint8_t>* ranks) const;

  /// Verifies the per-cell invariants (sortedness, strict domination-freeness).
  /// Test helper; O(total entries).
  bool CheckInvariants() const;

  /// Appends a self-contained binary encoding (precision, salt, cell lists)
  /// to *out. Little-endian, versioned; see vhll.cc for the layout.
  void Serialize(std::string* out) const;

  /// Reads an encoding produced by Serialize from data starting at *offset,
  /// advancing *offset past it. Returns nullopt on truncation or corruption
  /// (including invariant violations).
  static std::optional<VersionedHll> Deserialize(std::string_view data,
                                                 size_t* offset);

  /// Approximate heap footprint in bytes (vector headers + allocations).
  size_t MemoryUsageBytes() const;

 private:
  int precision_;
  uint64_t salt_;
  size_t insert_attempts_ = 0;
  size_t evictions_ = 0;
  size_t merge_entries_scanned_ = 0;
  size_t cell_updates_ = 0;
  std::vector<CellList, obs::TallyAllocator<CellList, &VhllMemTally>> cells_;
  // Cache of cells_[c].back().rank (0 when empty), kept in sync by every
  // mutating method so Estimate() and the union fast paths are O(beta).
  std::vector<uint8_t, obs::TallyAllocator<uint8_t, &VhllMemTally>> max_ranks_;
};

}  // namespace ipin

#endif  // IPIN_SKETCH_VHLL_H_
