#include "ipin/sketch/versioned_bottom_k.h"

#include <algorithm>
#include <cstring>

#include "ipin/common/check.h"
#include "ipin/common/hash.h"
#include "ipin/common/memory.h"

namespace ipin {

obs::MemoryTally& BottomKMemTally() {
  static obs::MemoryTally& tally = obs::GetMemoryTally("bottom_k");
  return tally;
}

VersionedBottomK::VersionedBottomK(size_t k, uint64_t salt)
    : k_(k), salt_(salt) {
  IPIN_CHECK_GE(k, 2u);
}

bool VersionedBottomK::Add(uint64_t item, Timestamp t) {
  return AddHash(Hash64(item, salt_), t);
}

bool VersionedBottomK::AddHash(uint64_t hash, Timestamp t) {
  // Same hash: the earlier timestamp dominates (outlives in every window).
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].hash == hash) {
      if (entries_[i].time <= t) return false;
      entries_.erase(entries_.begin() + static_cast<ptrdiff_t>(i));
      break;
    }
  }
  // Dominated if k smaller hashes exist at earlier-or-equal times.
  size_t smaller_earlier = 0;
  for (const Entry& e : entries_) {
    if (e.time > t) break;  // ascending time
    if (e.hash < hash && ++smaller_earlier >= k_) return false;
  }
  // Insert keeping (time, hash) order — same-time entries sorted by hash so
  // Compact's single forward pass sees every earlier-or-equal dominator —
  // then drop newly dominated entries.
  const Entry entry{hash, t};
  const auto pos = std::upper_bound(
      entries_.begin(), entries_.end(), entry,
      [](const Entry& a, const Entry& b) {
        if (a.time != b.time) return a.time < b.time;
        return a.hash < b.hash;
      });
  entries_.insert(pos, entry);
  Compact();
  return true;
}

void VersionedBottomK::Compact() {
  // One pass in time order: an entry preceded by >= k smaller hashes is
  // dominated. `seen` holds the hashes of kept earlier entries, sorted.
  std::vector<uint64_t> seen;
  seen.reserve(entries_.size());
  size_t out = 0;
  for (size_t i = 0; i < entries_.size(); ++i) {
    const Entry e = entries_[i];
    const auto it = std::lower_bound(seen.begin(), seen.end(), e.hash);
    const size_t rank = static_cast<size_t>(it - seen.begin());
    if (rank >= k_) continue;  // dominated: drop
    seen.insert(it, e.hash);
    entries_[out++] = e;
  }
  entries_.resize(out);
}

void VersionedBottomK::MergeWindow(const VersionedBottomK& other,
                                   Timestamp merge_time, Duration window) {
  IPIN_CHECK_EQ(k_, other.k_);
  IPIN_CHECK_EQ(salt_, other.salt_);
  const Timestamp bound = merge_time + window;
  for (const Entry& e : other.entries_) {
    if (e.time >= bound) break;  // ascending time
    AddHash(e.hash, e.time);
  }
}

void VersionedBottomK::MergeAll(const VersionedBottomK& other) {
  IPIN_CHECK_EQ(k_, other.k_);
  IPIN_CHECK_EQ(salt_, other.salt_);
  for (const Entry& e : other.entries_) AddHash(e.hash, e.time);
}

namespace {

double EstimateFromHashes(std::vector<uint64_t>* hashes, size_t k) {
  if (hashes->size() < k) return static_cast<double>(hashes->size());
  std::nth_element(hashes->begin(),
                   hashes->begin() + static_cast<ptrdiff_t>(k - 1),
                   hashes->end());
  const double kth =
      static_cast<double>((*hashes)[k - 1]) / 18446744073709551616.0;
  if (kth <= 0.0) return static_cast<double>(k);
  return static_cast<double>(k - 1) / kth;
}

}  // namespace

double VersionedBottomK::Estimate() const {
  std::vector<uint64_t> hashes;
  hashes.reserve(entries_.size());
  for (const Entry& e : entries_) hashes.push_back(e.hash);
  return EstimateFromHashes(&hashes, k_);
}

double VersionedBottomK::EstimateBefore(Timestamp bound) const {
  std::vector<uint64_t> hashes;
  for (const Entry& e : entries_) {
    if (e.time >= bound) break;
    hashes.push_back(e.hash);
  }
  return EstimateFromHashes(&hashes, k_);
}

bool VersionedBottomK::CheckInvariants() const {
  for (size_t i = 1; i < entries_.size(); ++i) {
    if (entries_[i].time < entries_[i - 1].time) return false;
  }
  for (size_t i = 0; i < entries_.size(); ++i) {
    size_t smaller_earlier = 0;
    for (size_t j = 0; j < entries_.size(); ++j) {
      if (j == i) continue;
      if (entries_[j].hash == entries_[i].hash) return false;  // duplicates
      if (entries_[j].time <= entries_[i].time &&
          entries_[j].hash < entries_[i].hash) {
        ++smaller_earlier;
      }
    }
    if (smaller_earlier >= k_) return false;  // dominated entry retained
  }
  return true;
}

size_t VersionedBottomK::MemoryUsageBytes() const {
  return VectorBytes(entries_);
}

namespace {

constexpr uint8_t kBottomKFormatVersion = 1;
// An honest sketch of k = 2^16 - 1 with the O(k log(n/k)) expected size
// stays far below this; a larger count in a blob is corruption.
constexpr uint32_t kMaxSerializedEntries = 1u << 24;

template <typename T>
void AppendRaw(std::string* out, T value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(value));
}

template <typename T>
bool ReadRaw(std::string_view data, size_t* offset, T* value) {
  if (*offset > data.size() || data.size() - *offset < sizeof(T)) return false;
  std::memcpy(value, data.data() + *offset, sizeof(T));
  *offset += sizeof(T);
  return true;
}

}  // namespace

void VersionedBottomK::Serialize(std::string* out) const {
  AppendRaw<uint8_t>(out, kBottomKFormatVersion);
  AppendRaw<uint32_t>(out, static_cast<uint32_t>(k_));
  AppendRaw<uint64_t>(out, salt_);
  AppendRaw<uint32_t>(out, static_cast<uint32_t>(entries_.size()));
  for (const Entry& e : entries_) {
    AppendRaw<uint64_t>(out, e.hash);
    AppendRaw<int64_t>(out, e.time);
  }
}

std::optional<VersionedBottomK> VersionedBottomK::Deserialize(
    std::string_view data, size_t* offset) {
  uint8_t version = 0;
  uint32_t k = 0;
  uint64_t salt = 0;
  uint32_t count = 0;
  if (!ReadRaw(data, offset, &version) || version != kBottomKFormatVersion) {
    return std::nullopt;
  }
  if (!ReadRaw(data, offset, &k) || k < 2) return std::nullopt;
  if (!ReadRaw(data, offset, &salt)) return std::nullopt;
  if (!ReadRaw(data, offset, &count) || count > kMaxSerializedEntries) {
    return std::nullopt;
  }
  VersionedBottomK sketch(k, salt);
  sketch.entries_.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    Entry e;
    if (!ReadRaw(data, offset, &e.hash) || !ReadRaw(data, offset, &e.time)) {
      return std::nullopt;
    }
    sketch.entries_.push_back(e);
  }
  if (!sketch.CheckInvariants()) return std::nullopt;
  return sketch;
}

}  // namespace ipin
