#ifndef IPIN_SKETCH_HLL_H_
#define IPIN_SKETCH_HLL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ipin {

/// Classic HyperLogLog cardinality sketch (Flajolet et al., 2007) over
/// 64-bit items. `precision` k gives beta = 2^k cells; relative standard
/// error is ~1.04/sqrt(2^k). Mergeable by cellwise max.
///
/// An item x is hashed to h = Hash64(x, salt); the low k bits pick the cell
/// and the rank is the 1-based position of the least significant set bit of
/// the remaining bits (the paper's rho) — matching Section 3.2.1.
class HyperLogLog {
 public:
  /// `precision` must be in [4, 18]. Sketches built with different salts are
  /// independent hash functions and must not be merged.
  explicit HyperLogLog(int precision, uint64_t salt = 0);

  /// Inserts a 64-bit item.
  void Add(uint64_t item);

  /// Inserts a pre-computed hash value (for callers sharing hashes across
  /// sketches).
  void AddHash(uint64_t hash);

  /// Estimated number of distinct inserted items.
  double Estimate() const;

  /// Cellwise-max merge. Both sketches must have equal precision and salt.
  void Merge(const HyperLogLog& other);

  /// Resets to the empty sketch.
  void Clear();

  int precision() const { return precision_; }
  uint64_t salt() const { return salt_; }
  size_t num_cells() const { return cells_.size(); }
  const std::vector<uint8_t>& cells() const { return cells_; }

  /// Splits a hash into (cell index, rank) exactly as Add does.
  void HashToCell(uint64_t hash, size_t* cell, uint8_t* rank) const;

  /// Approximate heap footprint in bytes.
  size_t MemoryUsageBytes() const;

 private:
  int precision_;
  uint64_t salt_;
  std::vector<uint8_t> cells_;
};

}  // namespace ipin

#endif  // IPIN_SKETCH_HLL_H_
