#ifndef IPIN_SKETCH_KERNELS_H_
#define IPIN_SKETCH_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <span>

// Vectorized sketch kernels (DESIGN.md §12). The oracle's hot path reduces
// to three integer/table primitives over per-cell max-rank arrays:
//
//   cellwise_max_u8    - the union fast path (cellwise max of two rank rows)
//   estimate_from_ranks- rank histogram + precomputed 2^-r table
//   bounded_max_into   - windowed max-rank materialization over the arena's
//                        struct-of-arrays entry storage
//
// Each primitive has one implementation per SIMD target, selected once per
// process from CPUID (overridable with IPIN_SIMD=avx2|sse2|neon|scalar).
// Every target is bit-identical by construction: the max/compare kernels
// are pure integer ops, and the estimate fixes its floating-point summation
// order (ascending rank over the histogram, every term exact), so the same
// rank vector produces the same double on every target. The equivalence
// fuzz in tests/test_sketch_kernels.cc enforces this against the scalar
// reference for every runnable target.

namespace ipin::kernels {

enum class SimdTarget {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
  kNeon = 3,
};

/// Lower-case target name ("scalar", "sse2", "avx2", "neon").
const char* SimdTargetName(SimdTarget target);

struct KernelOps {
  /// dst[i] = max(dst[i], src[i]) for i in [0, n). Unions are folds of this.
  void (*cellwise_max_u8)(uint8_t* dst, const uint8_t* src, size_t n);

  /// HyperLogLog estimate from one max rank per cell (rank 0 = untouched
  /// cell), with the standard linear-counting small-range correction.
  double (*estimate_from_ranks)(const uint8_t* ranks, size_t n);

  /// Windowed max-rank materialization over struct-of-arrays entry storage:
  /// cell c holds counts[c] entries, all cells' entries concatenated in
  /// `ranks`/`times` in cell order with times ascending and ranks strictly
  /// ascending within a cell (the vHLL invariant). Folds each cell's max
  /// rank among entries with time < bound into dst: dst[c] = max(dst[c], r).
  /// `total` is the sum of counts (bounds the entry arrays).
  void (*bounded_max_into)(const uint8_t* counts, const uint8_t* ranks,
                           const int64_t* times, size_t num_cells,
                           size_t total, int64_t bound, uint8_t* dst);
};

/// The kernel table for the dispatched target. Resolution happens once per
/// process: IPIN_SIMD env override if runnable, else the best CPUID-detected
/// target; the choice is logged and published as the sketch.kernel.* gauges.
const KernelOps& Dispatched();

/// The target Dispatched() resolved to.
SimdTarget DispatchedTarget();

/// Kernel table for an explicit target, or nullptr when this build/CPU
/// cannot run it. The fuzz tests iterate all runnable targets.
const KernelOps* KernelsFor(SimdTarget target);

/// Convenience wrappers over Dispatched().
inline void CellwiseMaxU8(uint8_t* dst, const uint8_t* src, size_t n) {
  Dispatched().cellwise_max_u8(dst, src, n);
}
inline double EstimateFromRanksDispatched(std::span<const uint8_t> ranks) {
  return Dispatched().estimate_from_ranks(ranks.data(), ranks.size());
}

}  // namespace ipin::kernels

#endif  // IPIN_SKETCH_KERNELS_H_
