#include "ipin/sketch/kernels.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>

#include "ipin/common/logging.h"
#include "ipin/obs/metrics.h"
#include "ipin/sketch/estimators.h"

#if defined(__x86_64__) || defined(__i386__)
#define IPIN_KERNELS_X86 1
#include <immintrin.h>
#endif
#if defined(__aarch64__)
#define IPIN_KERNELS_NEON 1
#include <arm_neon.h>
#endif

// The scalar implementations are the reference the fuzz tests compare
// against AND the baseline the benchmarks measure speedups against, so the
// compiler must not auto-vectorize them (-O3 would happily turn the byte
// max loop into the very AVX2 code we are comparing to).
#if defined(__GNUC__) && !defined(__clang__)
#define IPIN_NO_AUTOVEC __attribute__((optimize("no-tree-vectorize")))
#else
#define IPIN_NO_AUTOVEC
#endif

namespace ipin::kernels {
namespace {

// ---------------------------------------------------------------------------
// Shared estimate epilogue.
//
// Deserialized ranks are only bounded by the list-length invariant, not by
// value, so the histogram covers the full uint8_t range. Each term
// hist[r] * 2^-r is exact in double (hist[r] <= 2^18 well under 2^53, the
// power is a power of two), and the terms are summed in fixed ascending-rank
// order, so the resulting double depends only on the histogram contents —
// never on how a target built the histogram. That is the bit-identity
// argument for the one floating-point kernel.
// ---------------------------------------------------------------------------

constexpr size_t kHistBins = 256;

struct Pow2NegTable {
  double value[kHistBins];
  Pow2NegTable() {
    for (size_t r = 0; r < kHistBins; ++r) {
      value[r] = std::ldexp(1.0, -static_cast<int>(r));
    }
  }
};

const Pow2NegTable& Pow2Neg() {
  static const Pow2NegTable table;
  return table;
}

// `bins` is an upper bound on the nonzero region (all ranks < bins): the
// summation still visits exactly the nonzero bins in ascending order, so
// the result is bit-identical whatever bound a target derives.
double EstimateFromHistogram(const uint32_t* hist, size_t bins, size_t m) {
  const Pow2NegTable& table = Pow2Neg();
  double inverse_sum = 0.0;
  for (size_t r = 0; r < bins; ++r) {
    if (hist[r] != 0) {
      inverse_sum += static_cast<double>(hist[r]) * table.value[r];
    }
  }
  const size_t zeros = hist[0];
  const double md = static_cast<double>(m);
  const double raw = HllAlpha(m) * md * md / inverse_sum;
  if (raw <= 2.5 * md && zeros > 0) {
    // Linear counting in the small-cardinality regime.
    return md * std::log(md / static_cast<double>(zeros));
  }
  return raw;
}

// ---------------------------------------------------------------------------
// Scalar reference kernels.
// ---------------------------------------------------------------------------

IPIN_NO_AUTOVEC
void CellwiseMaxU8Scalar(uint8_t* dst, const uint8_t* src, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    const uint8_t s = src[i];
    if (s > dst[i]) dst[i] = s;
  }
}

IPIN_NO_AUTOVEC
double EstimateFromRanksScalar(const uint8_t* ranks, size_t n) {
  uint32_t hist[kHistBins] = {0};
  for (size_t i = 0; i < n; ++i) ++hist[ranks[i]];
  return EstimateFromHistogram(hist, kHistBins, n);
}

// Shared fast histogram build for the SIMD targets. Rank data is geometric
// (half the cells hold rank 1), so a single histogram stalls on
// store-to-load forwarding between back-to-back increments of the same bin;
// eight interleaved sub-histograms fed from one u64 load break that chain.
// The caller passes `bins` = max rank + 1 (from a vector max-reduce) so
// zeroing and merging touch only the live prefix instead of all 256 bins —
// that fixed cost is what would otherwise swamp small precisions. Integer
// adds throughout: the merged histogram is exactly the scalar one.
double EstimateInterleaved(const uint8_t* ranks, size_t n, size_t bins) {
  uint32_t hist[8][kHistBins];
  for (auto& h : hist) std::memset(h, 0, bins * sizeof(uint32_t));
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    uint64_t w;
    std::memcpy(&w, ranks + i, sizeof(w));
    ++hist[0][w & 0xff];
    ++hist[1][(w >> 8) & 0xff];
    ++hist[2][(w >> 16) & 0xff];
    ++hist[3][(w >> 24) & 0xff];
    ++hist[4][(w >> 32) & 0xff];
    ++hist[5][(w >> 40) & 0xff];
    ++hist[6][(w >> 48) & 0xff];
    ++hist[7][(w >> 56) & 0xff];
  }
  for (; i < n; ++i) ++hist[0][ranks[i]];
  for (size_t r = 0; r < bins; ++r) {
    for (int h = 1; h < 8; ++h) hist[0][r] += hist[h][r];
  }
  return EstimateFromHistogram(hist[0], bins, n);
}

IPIN_NO_AUTOVEC
void BoundedMaxIntoScalar(const uint8_t* counts, const uint8_t* ranks,
                          const int64_t* times, size_t num_cells,
                          size_t /*total*/, int64_t bound, uint8_t* dst) {
  size_t base = 0;
  for (size_t c = 0; c < num_cells; ++c) {
    const size_t n = counts[c];
    // Times ascend within a cell, so the in-window entries are a prefix;
    // ranks strictly ascend, so the prefix's max rank is its last entry.
    size_t k = 0;
    while (k < n && times[base + k] < bound) ++k;
    if (k > 0) {
      const uint8_t r = ranks[base + k - 1];
      if (r > dst[c]) dst[c] = r;
    }
    base += n;
  }
}

constexpr KernelOps kScalarOps = {
    &CellwiseMaxU8Scalar,
    &EstimateFromRanksScalar,
    &BoundedMaxIntoScalar,
};

// ---------------------------------------------------------------------------
// SSE2 (x86_64 baseline — always runnable there).
// ---------------------------------------------------------------------------

#ifdef IPIN_KERNELS_X86

void CellwiseMaxU8Sse2(uint8_t* dst, const uint8_t* src, size_t n) {
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    const __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), _mm_max_epu8(d, s));
  }
  for (; i < n; ++i) {
    if (src[i] > dst[i]) dst[i] = src[i];
  }
}

double EstimateFromRanksSse2(const uint8_t* ranks, size_t n) {
  __m128i m = _mm_setzero_si128();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    m = _mm_max_epu8(
        m, _mm_loadu_si128(reinterpret_cast<const __m128i*>(ranks + i)));
  }
  m = _mm_max_epu8(m, _mm_srli_si128(m, 8));
  m = _mm_max_epu8(m, _mm_srli_si128(m, 4));
  m = _mm_max_epu8(m, _mm_srli_si128(m, 2));
  m = _mm_max_epu8(m, _mm_srli_si128(m, 1));
  uint8_t rmax = static_cast<uint8_t>(_mm_cvtsi128_si32(m) & 0xff);
  for (; i < n; ++i) rmax = std::max(rmax, ranks[i]);
  return EstimateInterleaved(ranks, n, static_cast<size_t>(rmax) + 1);
}

constexpr KernelOps kSse2Ops = {
    &CellwiseMaxU8Sse2,
    &EstimateFromRanksSse2,
    // SSE2 has no packed 64-bit compare; the per-cell walk is short (<= 64
    // entries) and branchy, so the scalar routine is the right tool.
    &BoundedMaxIntoScalar,
};

// ---------------------------------------------------------------------------
// AVX2 (compiled with a target attribute, entered only after CPUID check).
// ---------------------------------------------------------------------------

__attribute__((target("avx2"))) void CellwiseMaxU8Avx2(uint8_t* dst,
                                                       const uint8_t* src,
                                                       size_t n) {
  size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m256i d0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i d1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i + 32));
    const __m256i s0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i s1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 32));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_max_epu8(d0, s0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 32),
                        _mm256_max_epu8(d1, s1));
  }
  for (; i + 32 <= n; i += 32) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_max_epu8(d, s));
  }
  for (; i + 16 <= n; i += 16) {
    const __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    const __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), _mm_max_epu8(d, s));
  }
  for (; i < n; ++i) {
    if (src[i] > dst[i]) dst[i] = src[i];
  }
}

__attribute__((target("avx2"))) double EstimateFromRanksAvx2(
    const uint8_t* ranks, size_t n) {
  __m256i m = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    m = _mm256_max_epu8(
        m, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ranks + i)));
  }
  __m128i m128 = _mm_max_epu8(_mm256_castsi256_si128(m),
                              _mm256_extracti128_si256(m, 1));
  m128 = _mm_max_epu8(m128, _mm_srli_si128(m128, 8));
  m128 = _mm_max_epu8(m128, _mm_srli_si128(m128, 4));
  m128 = _mm_max_epu8(m128, _mm_srli_si128(m128, 2));
  m128 = _mm_max_epu8(m128, _mm_srli_si128(m128, 1));
  uint8_t rmax = static_cast<uint8_t>(_mm_cvtsi128_si32(m128) & 0xff);
  for (; i < n; ++i) rmax = std::max(rmax, ranks[i]);
  return EstimateInterleaved(ranks, n, static_cast<size_t>(rmax) + 1);
}

__attribute__((target("avx2"))) void BoundedMaxIntoAvx2(
    const uint8_t* counts, const uint8_t* ranks, const int64_t* times,
    size_t num_cells, size_t total, int64_t bound, uint8_t* dst) {
  const __m256i bound_v = _mm256_set1_epi64x(bound);
  size_t base = 0;
  for (size_t c = 0; c < num_cells; ++c) {
    const size_t n = counts[c];
    size_t k = 0;
    // Count the `time < bound` prefix four timestamps at a stride; the
    // ascending-time invariant makes the comparison mask a run of ones, so
    // countr_one on the first non-full mask finishes the search.
    while (k + 4 <= n && base + k + 4 <= total) {
      const __m256i t = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(times + base + k));
      const unsigned mask = static_cast<unsigned>(
          _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpgt_epi64(bound_v, t))));
      if (mask != 0xFu) {
        k += static_cast<size_t>(std::countr_one(mask));
        goto prefix_done;
      }
      k += 4;
    }
    while (k < n && times[base + k] < bound) ++k;
  prefix_done:
    if (k > 0) {
      const uint8_t r = ranks[base + k - 1];
      if (r > dst[c]) dst[c] = r;
    }
    base += n;
  }
}

constexpr KernelOps kAvx2Ops = {
    &CellwiseMaxU8Avx2,
    &EstimateFromRanksAvx2,
    &BoundedMaxIntoAvx2,
};

#endif  // IPIN_KERNELS_X86

// ---------------------------------------------------------------------------
// NEON (aarch64 baseline).
// ---------------------------------------------------------------------------

#ifdef IPIN_KERNELS_NEON

void CellwiseMaxU8Neon(uint8_t* dst, const uint8_t* src, size_t n) {
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    vst1q_u8(dst + i, vmaxq_u8(vld1q_u8(dst + i), vld1q_u8(src + i)));
  }
  for (; i < n; ++i) {
    if (src[i] > dst[i]) dst[i] = src[i];
  }
}

double EstimateFromRanksNeon(const uint8_t* ranks, size_t n) {
  uint8x16_t m = vdupq_n_u8(0);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    m = vmaxq_u8(m, vld1q_u8(ranks + i));
  }
  uint8_t rmax = vmaxvq_u8(m);
  for (; i < n; ++i) rmax = std::max(rmax, ranks[i]);
  return EstimateInterleaved(ranks, n, static_cast<size_t>(rmax) + 1);
}

constexpr KernelOps kNeonOps = {
    &CellwiseMaxU8Neon,
    &EstimateFromRanksNeon,
    &BoundedMaxIntoScalar,
};

#endif  // IPIN_KERNELS_NEON

// ---------------------------------------------------------------------------
// Dispatch.
// ---------------------------------------------------------------------------

SimdTarget DetectBestTarget() {
#ifdef IPIN_KERNELS_X86
  if (__builtin_cpu_supports("avx2")) return SimdTarget::kAvx2;
  return SimdTarget::kSse2;
#elif defined(IPIN_KERNELS_NEON)
  return SimdTarget::kNeon;
#else
  return SimdTarget::kScalar;
#endif
}

bool ParseSimdTarget(const std::string& text, SimdTarget* out) {
  std::string lower;
  lower.reserve(text.size());
  for (const char ch : text) {
    lower.push_back(ch >= 'A' && ch <= 'Z' ? static_cast<char>(ch - 'A' + 'a')
                                           : ch);
  }
  if (lower == "scalar") {
    *out = SimdTarget::kScalar;
  } else if (lower == "sse2") {
    *out = SimdTarget::kSse2;
  } else if (lower == "avx2") {
    *out = SimdTarget::kAvx2;
  } else if (lower == "neon") {
    *out = SimdTarget::kNeon;
  } else {
    return false;
  }
  return true;
}

struct Dispatch {
  SimdTarget target;
  const KernelOps* ops;
};

Dispatch ResolveDispatch() {
  SimdTarget target = DetectBestTarget();
  if (const char* env = std::getenv("IPIN_SIMD"); env != nullptr && *env) {
    SimdTarget requested;
    if (!ParseSimdTarget(env, &requested)) {
      LogWarning(std::string("IPIN_SIMD=") + env +
                 " is not a known target (scalar|sse2|avx2|neon); using " +
                 SimdTargetName(target));
    } else if (KernelsFor(requested) == nullptr) {
      LogWarning(std::string("IPIN_SIMD=") + env +
                 " is not runnable on this build/CPU; using " +
                 SimdTargetName(target));
    } else {
      target = requested;
    }
  }
  const KernelOps* ops = KernelsFor(target);
  LogInfo(std::string("sketch kernels dispatched: ") + SimdTargetName(target));
  IPIN_GAUGE_SET("sketch.kernel.target", static_cast<int>(target));
  switch (target) {
    case SimdTarget::kScalar:
      IPIN_GAUGE_SET("sketch.kernel.scalar", 1);
      break;
    case SimdTarget::kSse2:
      IPIN_GAUGE_SET("sketch.kernel.sse2", 1);
      break;
    case SimdTarget::kAvx2:
      IPIN_GAUGE_SET("sketch.kernel.avx2", 1);
      break;
    case SimdTarget::kNeon:
      IPIN_GAUGE_SET("sketch.kernel.neon", 1);
      break;
  }
  return Dispatch{target, ops};
}

const Dispatch& GetDispatch() {
  static const Dispatch dispatch = ResolveDispatch();
  return dispatch;
}

}  // namespace

const char* SimdTargetName(SimdTarget target) {
  switch (target) {
    case SimdTarget::kScalar:
      return "scalar";
    case SimdTarget::kSse2:
      return "sse2";
    case SimdTarget::kAvx2:
      return "avx2";
    case SimdTarget::kNeon:
      return "neon";
  }
  return "unknown";
}

const KernelOps* KernelsFor(SimdTarget target) {
  switch (target) {
    case SimdTarget::kScalar:
      return &kScalarOps;
    case SimdTarget::kSse2:
#ifdef IPIN_KERNELS_X86
      return &kSse2Ops;
#else
      return nullptr;
#endif
    case SimdTarget::kAvx2:
#ifdef IPIN_KERNELS_X86
      return __builtin_cpu_supports("avx2") ? &kAvx2Ops : nullptr;
#else
      return nullptr;
#endif
    case SimdTarget::kNeon:
#ifdef IPIN_KERNELS_NEON
      return &kNeonOps;
#else
      return nullptr;
#endif
  }
  return nullptr;
}

const KernelOps& Dispatched() { return *GetDispatch().ops; }

SimdTarget DispatchedTarget() { return GetDispatch().target; }

}  // namespace ipin::kernels
