#include "ipin/sketch/bottom_k.h"

#include <algorithm>

#include "ipin/common/check.h"
#include "ipin/common/hash.h"
#include "ipin/common/memory.h"

namespace ipin {

BottomK::BottomK(size_t k, uint64_t salt) : k_(k), salt_(salt) {
  IPIN_CHECK_GE(k, 1u);
  hashes_.reserve(k);
}

void BottomK::Add(uint64_t item) { AddHash(Hash64(item, salt_)); }

void BottomK::AddHash(uint64_t hash) {
  if (hashes_.size() >= k_ && hash >= hashes_.back()) return;
  const auto it = std::lower_bound(hashes_.begin(), hashes_.end(), hash);
  if (it != hashes_.end() && *it == hash) return;  // duplicate
  hashes_.insert(it, hash);
  if (hashes_.size() > k_) hashes_.pop_back();
}

void BottomK::Merge(const BottomK& other) {
  IPIN_CHECK_EQ(k_, other.k_);
  IPIN_CHECK_EQ(salt_, other.salt_);
  for (const uint64_t h : other.hashes_) AddHash(h);
}

double BottomK::Estimate() const {
  if (hashes_.size() < k_) return static_cast<double>(hashes_.size());
  // k-th minimum of n uniform [0,1) values is ~ k/(n+1); invert.
  const double kth = static_cast<double>(hashes_.back()) /
                     18446744073709551616.0;  // 2^64
  if (kth <= 0.0) return static_cast<double>(k_);
  return static_cast<double>(k_ - 1) / kth;
}

size_t BottomK::MemoryUsageBytes() const { return VectorBytes(hashes_); }

}  // namespace ipin
