#include "ipin/sketch/hll.h"

#include <algorithm>

#include "ipin/common/check.h"
#include "ipin/common/hash.h"
#include "ipin/common/memory.h"
#include "ipin/sketch/estimators.h"

namespace ipin {

HyperLogLog::HyperLogLog(int precision, uint64_t salt)
    : precision_(precision), salt_(salt) {
  IPIN_CHECK_GE(precision, 4);
  IPIN_CHECK_LE(precision, 18);
  cells_.assign(static_cast<size_t>(1) << precision, 0);
}

void HyperLogLog::HashToCell(uint64_t hash, size_t* cell,
                             uint8_t* rank) const {
  *cell = static_cast<size_t>(hash & (cells_.size() - 1));
  const uint64_t rest = hash >> precision_;
  // Cap the rank so it fits the remaining bit budget even for rest == 0.
  const int r = std::min(RhoLsb(rest), 64 - precision_ + 1);
  *rank = static_cast<uint8_t>(r);
}

void HyperLogLog::Add(uint64_t item) { AddHash(Hash64(item, salt_)); }

void HyperLogLog::AddHash(uint64_t hash) {
  size_t cell;
  uint8_t rank;
  HashToCell(hash, &cell, &rank);
  cells_[cell] = std::max(cells_[cell], rank);
}

double HyperLogLog::Estimate() const { return EstimateFromRanks(cells_); }

void HyperLogLog::Merge(const HyperLogLog& other) {
  IPIN_CHECK_EQ(precision_, other.precision_);
  IPIN_CHECK_EQ(salt_, other.salt_);
  for (size_t i = 0; i < cells_.size(); ++i) {
    cells_[i] = std::max(cells_[i], other.cells_[i]);
  }
}

void HyperLogLog::Clear() { std::fill(cells_.begin(), cells_.end(), 0); }

size_t HyperLogLog::MemoryUsageBytes() const { return VectorBytes(cells_); }

}  // namespace ipin
