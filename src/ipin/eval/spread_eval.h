#ifndef IPIN_EVAL_SPREAD_EVAL_H_
#define IPIN_EVAL_SPREAD_EVAL_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "ipin/core/tcic.h"
#include "ipin/graph/interaction_graph.h"
#include "ipin/graph/types.h"

namespace ipin {

/// One seed-selection method's spread curve: average TCIC spread of its top
/// k seeds for each k in `top_k_values`.
struct SpreadCurve {
  std::string method;
  std::vector<size_t> top_k_values;
  std::vector<double> spreads;  // parallel to top_k_values
};

/// Evaluates a ranked seed list under the TCIC model (the paper's Figure 5
/// protocol): for each k, simulate the top-k prefix `num_runs` times and
/// average the number of influenced nodes.
SpreadCurve EvaluateSpreadCurve(const InteractionGraph& graph,
                                const std::string& method,
                                std::span<const NodeId> ranked_seeds,
                                std::span<const size_t> top_k_values,
                                const TcicOptions& options, size_t num_runs,
                                uint64_t seed);

}  // namespace ipin

#endif  // IPIN_EVAL_SPREAD_EVAL_H_
