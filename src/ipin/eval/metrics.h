#ifndef IPIN_EVAL_METRICS_H_
#define IPIN_EVAL_METRICS_H_

#include <cstddef>
#include <span>

#include "ipin/graph/types.h"

namespace ipin {

/// Mean relative error |est - exact| / exact over entries whose exact value
/// is positive (the paper's Table 3 accuracy metric); entries with exact
/// value 0 are skipped. Returns 0 when nothing qualifies.
double MeanRelativeError(std::span<const double> exact,
                         std::span<const double> estimated);

/// Number of elements common to the two seed lists (order-insensitive) —
/// the paper's Table 5 seed-overlap metric.
size_t SeedOverlap(std::span<const NodeId> a, std::span<const NodeId> b);

/// Jaccard similarity of the two seed lists viewed as sets.
double SeedJaccard(std::span<const NodeId> a, std::span<const NodeId> b);

}  // namespace ipin

#endif  // IPIN_EVAL_METRICS_H_
