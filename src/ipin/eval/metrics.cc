#include "ipin/eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "ipin/common/check.h"

namespace ipin {

double MeanRelativeError(std::span<const double> exact,
                         std::span<const double> estimated) {
  IPIN_CHECK_EQ(exact.size(), estimated.size());
  double total = 0.0;
  size_t count = 0;
  for (size_t i = 0; i < exact.size(); ++i) {
    if (exact[i] <= 0.0) continue;
    total += std::abs(estimated[i] - exact[i]) / exact[i];
    ++count;
  }
  return count == 0 ? 0.0 : total / static_cast<double>(count);
}

size_t SeedOverlap(std::span<const NodeId> a, std::span<const NodeId> b) {
  const std::unordered_set<NodeId> set_a(a.begin(), a.end());
  std::unordered_set<NodeId> counted;
  size_t overlap = 0;
  for (const NodeId x : b) {
    if (set_a.count(x) > 0 && counted.insert(x).second) ++overlap;
  }
  return overlap;
}

double SeedJaccard(std::span<const NodeId> a, std::span<const NodeId> b) {
  const std::unordered_set<NodeId> set_a(a.begin(), a.end());
  const std::unordered_set<NodeId> set_b(b.begin(), b.end());
  if (set_a.empty() && set_b.empty()) return 1.0;
  size_t inter = 0;
  for (const NodeId x : set_b) {
    if (set_a.count(x) > 0) ++inter;
  }
  const size_t uni = set_a.size() + set_b.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

}  // namespace ipin
