#include "ipin/eval/spread_eval.h"

#include <algorithm>

#include "ipin/common/check.h"

namespace ipin {

SpreadCurve EvaluateSpreadCurve(const InteractionGraph& graph,
                                const std::string& method,
                                std::span<const NodeId> ranked_seeds,
                                std::span<const size_t> top_k_values,
                                const TcicOptions& options, size_t num_runs,
                                uint64_t seed) {
  SpreadCurve curve;
  curve.method = method;
  for (const size_t k : top_k_values) {
    const size_t use = std::min(k, ranked_seeds.size());
    const std::span<const NodeId> prefix = ranked_seeds.subspan(0, use);
    curve.top_k_values.push_back(k);
    curve.spreads.push_back(
        AverageTcicSpread(graph, prefix, options, num_runs, seed));
  }
  return curve;
}

}  // namespace ipin
