#ifndef IPIN_EVAL_TABLE_H_
#define IPIN_EVAL_TABLE_H_

#include <string>
#include <vector>

namespace ipin {

/// Minimal right-aligned ASCII table printer used by the bench harnesses to
/// emit the paper's tables/series in a uniform, diffable format.
class TablePrinter {
 public:
  /// Optional table caption printed above the header.
  explicit TablePrinter(std::string title = "");

  /// Sets the column headers; must be called before AddRow.
  void SetHeader(std::vector<std::string> header);

  /// Appends a row (must have exactly as many cells as the header).
  void AddRow(std::vector<std::string> row);

  /// Convenience cell formatters.
  static std::string Cell(double value, int decimals = 3);
  static std::string Cell(size_t value);
  static std::string Cell(int64_t value);

  /// Renders the table to a string.
  std::string ToString() const;

  /// Prints to stdout.
  void Print() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ipin

#endif  // IPIN_EVAL_TABLE_H_
