#include "ipin/eval/table.h"

#include <cstdio>

#include "ipin/common/check.h"
#include "ipin/common/string_util.h"

namespace ipin {

TablePrinter::TablePrinter(std::string title) : title_(std::move(title)) {}

void TablePrinter::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  IPIN_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::Cell(double value, int decimals) {
  return StrFormat("%.*f", decimals, value);
}

std::string TablePrinter::Cell(size_t value) {
  return StrFormat("%zu", value);
}

std::string TablePrinter::Cell(int64_t value) {
  return StrFormat("%lld", static_cast<long long>(value));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::string out;
  if (!title_.empty()) {
    out += "== " + title_ + " ==\n";
  }
  const auto emit_row = [&out, &widths](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += "  ";
      const size_t pad = widths[c] - row[c].size();
      out.append(pad, ' ');
      out += row[c];
    }
    out += '\n';
  };
  emit_row(header_);
  size_t total = header_.size() >= 1 ? 2 * (header_.size() - 1) : 0;
  for (const size_t w : widths) total += w;
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) emit_row(row);
  return out;
}

void TablePrinter::Print() const {
  const std::string s = ToString();
  std::fwrite(s.data(), 1, s.size(), stdout);
  std::fflush(stdout);
}

}  // namespace ipin
