#include "ipin/obs/trace_events.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "ipin/common/logging.h"
#include "ipin/common/string_util.h"
#include "ipin/obs/memtally.h"
#include "ipin/obs/metrics.h"

namespace ipin::obs {

namespace internal {
std::atomic<bool> g_trace_recording{false};
}  // namespace internal

namespace {

enum class Phase : char {
  kBegin = 'B',
  kEnd = 'E',
  kInstant = 'i',
  kCounter = 'C',
  kAsyncBegin = 'b',
  kAsyncEnd = 'e',
};

struct TraceEvent {
  const char* name = nullptr;  // must outlive the session
  double value = 0.0;          // counter events only
  uint64_t ts_ns = 0;          // nanoseconds since the session clock origin
  uint64_t id = 0;             // async events only: the lane id
  Phase phase = Phase::kInstant;
};

/// One thread's ring buffer. Owned by the global registry; the owning
/// thread writes without synchronization while recording is on (the
/// exporter only reads after StopTraceRecording).
struct ThreadEventBuffer {
  explicit ThreadEventBuffer(uint32_t tid_in, size_t capacity)
      : tid(tid_in), events(capacity) {}

  void Push(const TraceEvent& event) {
    events[next % events.size()] = event;
    ++next;
  }

  size_t Size() const { return std::min(next, events.size()); }
  size_t Dropped() const {
    return next > events.size() ? next - events.size() : 0;
  }

  /// Buffered events, oldest first (unwinds the ring).
  void CollectInOrder(std::vector<TraceEvent>* out) const {
    const size_t count = Size();
    const size_t start = next - count;  // absolute index of the oldest
    for (size_t i = 0; i < count; ++i) {
      out->push_back(events[(start + i) % events.size()]);
    }
  }

  const uint32_t tid;
  std::vector<TraceEvent> events;
  size_t next = 0;  // absolute write index; next % capacity is the slot
};

// Buffer registry. Starting a session bumps the generation; threads holding
// a buffer from an older generation re-register, and the old buffers move
// to a retired list instead of being freed — a thread preempted around a
// session boundary may still complete one store into its stale buffer, so
// retired buffers must stay valid (they are dropped only by
// ResetTraceEventsForTest, under its no-concurrent-recording contract).
std::mutex g_buffers_mu;
std::vector<std::unique_ptr<ThreadEventBuffer>>* CurrentBuffersLocked() {
  static auto* const buffers =
      new std::vector<std::unique_ptr<ThreadEventBuffer>>();
  return buffers;
}
std::vector<std::unique_ptr<ThreadEventBuffer>>* RetiredBuffersLocked() {
  static auto* const buffers =
      new std::vector<std::unique_ptr<ThreadEventBuffer>>();
  return buffers;
}

std::atomic<uint64_t> g_session_generation{0};

// Session configuration, fixed while recording is on.
size_t g_events_per_thread = 1 << 16;

// Clock origin shared by all threads in a session.
std::chrono::steady_clock::time_point g_clock_origin;

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - g_clock_origin)
          .count());
}

thread_local ThreadEventBuffer* t_buffer = nullptr;
thread_local uint64_t t_buffer_generation = 0;

ThreadEventBuffer* GetThreadBuffer() {
  const uint64_t generation =
      g_session_generation.load(std::memory_order_acquire);
  if (t_buffer == nullptr || t_buffer_generation != generation) {
    std::lock_guard<std::mutex> lock(g_buffers_mu);
    auto* buffers = CurrentBuffersLocked();
    const uint32_t tid = static_cast<uint32_t>(buffers->size() + 1);
    buffers->push_back(
        std::make_unique<ThreadEventBuffer>(tid, g_events_per_thread));
    t_buffer = buffers->back().get();
    t_buffer_generation = generation;
  }
  return t_buffer;
}

void Record(Phase phase, const char* name, double value, uint64_t id = 0) {
  TraceEvent event;
  event.name = name;
  event.value = value;
  event.ts_ns = NowNs();
  event.id = id;
  event.phase = phase;
  GetThreadBuffer()->Push(event);
}

/// Background thread: snapshots the metrics registry every period and
/// records changed counters/gauges as counter-track events, plus the
/// process RSS. Metric names are std::strings in the snapshot, so they are
/// interned once into a leaked pool to satisfy the const char* lifetime
/// rule.
class CounterSampler {
 public:
  void Start(int period_ms) {
    stop_ = false;
    thread_ = std::thread([this, period_ms] { Loop(period_ms); });
  }

  void Stop() {
    if (!thread_.joinable()) return;
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  void Loop(int period_ms) {
    std::map<std::string, double> last;
    while (true) {
      SampleOnce(&last);
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock, std::chrono::milliseconds(period_ms),
                   [this] { return stop_; });
      if (stop_) {
        lock.unlock();
        SampleOnce(&last);  // final sample so tracks reach the trace end
        return;
      }
    }
  }

  void SampleOnce(std::map<std::string, double>* last) {
    const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
    for (const auto& [name, value] : snapshot.counters) {
      // The span tree already carries trace.* aggregates; re-plotting every
      // span path as a counter track would drown the view.
      if (StartsWith(name, "trace.")) continue;
      MaybeRecord(name, static_cast<double>(value), last);
    }
    for (const auto& [name, value] : snapshot.gauges) {
      MaybeRecord(name, value, last);
    }
    const size_t rss = CurrentRssBytes();
    if (rss > 0) {
      MaybeRecord("mem.process.rss_bytes", static_cast<double>(rss), last);
    }
  }

  void MaybeRecord(const std::string& name, double value,
                   std::map<std::string, double>* last) {
    auto [it, inserted] = last->emplace(name, value);
    if (!inserted) {
      if (it->second == value) return;  // unchanged: skip the sample
      it->second = value;
    }
    // Bypasses the IsTraceRecording gate: the final Stop()-time sample runs
    // after the flag clears and must still land in the buffers.
    Record(Phase::kCounter, Intern(name), value);
  }

  const char* Intern(const std::string& name) {
    // Leaked pool: names must outlive the buffers, which outlive sessions.
    static auto* const pool = new std::set<std::string>();
    return pool->insert(name).first->c_str();
  }

  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

CounterSampler g_sampler;
bool g_sampler_running = false;  // touched only under g_buffers_mu / by Stop

void AppendEventJson(const TraceEvent& event, uint32_t tid,
                     std::string* out) {
  // ts is microseconds (Chrome's unit), with ns precision kept as decimals.
  out->append(StrFormat("{\"name\":\"%s\",\"ph\":\"%c\",\"pid\":1,"
                        "\"tid\":%u,\"ts\":%.3f",
                        event.name, static_cast<char>(event.phase), tid,
                        static_cast<double>(event.ts_ns) / 1000.0));
  switch (event.phase) {
    case Phase::kCounter:
      out->append(StrFormat(",\"args\":{\"value\":%.10g}", event.value));
      break;
    case Phase::kInstant:
      out->append(",\"s\":\"t\"");  // thread-scoped instant
      break;
    case Phase::kAsyncBegin:
    case Phase::kAsyncEnd:
      // cat+id+name identify the async track; Chrome renders all events
      // sharing an id as one lane.
      out->append(StrFormat(",\"cat\":\"request\",\"id\":\"0x%llx\"",
                            static_cast<unsigned long long>(event.id)));
      break;
    default:
      break;
  }
  out->append("},\n");
}

}  // namespace

bool StartTraceRecording(const TraceRecorderOptions& options) {
  bool start_sampler = false;
  {
    std::lock_guard<std::mutex> lock(g_buffers_mu);
    if (internal::g_trace_recording.load(std::memory_order_relaxed)) {
      return false;
    }
    // Previous session's buffers retire (see the registry comment); the new
    // session starts empty at its own capacity.
    auto* current = CurrentBuffersLocked();
    auto* retired = RetiredBuffersLocked();
    for (auto& buffer : *current) retired->push_back(std::move(buffer));
    current->clear();
    g_events_per_thread = std::max<size_t>(options.events_per_thread, 16);
    g_clock_origin = std::chrono::steady_clock::now();
    g_session_generation.fetch_add(1, std::memory_order_release);
    internal::g_trace_recording.store(true, std::memory_order_release);
    start_sampler = options.counter_sample_period_ms > 0;
    if (start_sampler) {
      g_sampler_running = true;
    }
  }
  if (start_sampler) {
    g_sampler.Start(options.counter_sample_period_ms);
  }
  return true;
}

void StopTraceRecording() {
  bool join_sampler = false;
  {
    std::lock_guard<std::mutex> lock(g_buffers_mu);
    if (!internal::g_trace_recording.load(std::memory_order_relaxed)) return;
    internal::g_trace_recording.store(false, std::memory_order_release);
    join_sampler = g_sampler_running;
    g_sampler_running = false;
  }
  // Join outside the lock: the sampler's final pass records events, which
  // may need to register a buffer.
  if (join_sampler) {
    g_sampler.Stop();
  }
}

void RecordInstantEvent(const char* name) {
  if (!IsTraceRecording()) return;
  Record(Phase::kInstant, name, 0.0);
}

void RecordCounterEvent(const char* name, double value) {
  if (!IsTraceRecording()) return;
  Record(Phase::kCounter, name, value);
}

void RecordAsyncBeginEvent(const char* name, uint64_t id) {
  if (!IsTraceRecording()) return;
  Record(Phase::kAsyncBegin, name, 0.0, id);
}

void RecordAsyncEndEvent(const char* name, uint64_t id) {
  if (!IsTraceRecording()) return;
  Record(Phase::kAsyncEnd, name, 0.0, id);
}

void RecordBeginEvent(const char* name) { Record(Phase::kBegin, name, 0.0); }

void RecordEndEvent(const char* name) { Record(Phase::kEnd, name, 0.0); }

bool WriteChromeTrace(const std::string& path) {
  // Snapshot the current session's buffers. Call after StopTraceRecording:
  // threads still recording would race the copy.
  std::vector<std::vector<TraceEvent>> per_thread;
  std::vector<uint32_t> tids;
  {
    std::lock_guard<std::mutex> lock(g_buffers_mu);
    for (const auto& buffer : *CurrentBuffersLocked()) {
      per_thread.emplace_back();
      buffer->CollectInOrder(&per_thread.back());
      tids.push_back(buffer->tid);
    }
  }

  std::string out;
  out.append("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
  uint64_t last_ts_ns = 0;
  for (const auto& events : per_thread) {
    if (!events.empty()) {
      last_ts_ns = std::max(last_ts_ns, events.back().ts_ns);
    }
  }
  for (size_t b = 0; b < per_thread.size(); ++b) {
    const std::vector<TraceEvent>& events = per_thread[b];
    const uint32_t tid = tids[b];
    // Balance begin/end within the thread. Spans are RAII so each thread's
    // B/E sequence is well nested; after ring wrap-around we hold a suffix
    // of it, in which a stack pass matches exactly the pairs that survived
    // and identifies ends whose begin was overwritten (dropped below).
    std::vector<const TraceEvent*> open;
    for (const TraceEvent& event : events) {
      if (event.phase == Phase::kBegin) {
        open.push_back(&event);
        AppendEventJson(event, tid, &out);
      } else if (event.phase == Phase::kEnd) {
        if (open.empty()) continue;  // begin lost to wrap-around: drop
        open.pop_back();
        AppendEventJson(event, tid, &out);
      } else {
        AppendEventJson(event, tid, &out);
      }
    }
    // Close spans still open at the buffer end (innermost first) so viewers
    // render them instead of discarding the whole thread track.
    for (size_t i = open.size(); i > 0; --i) {
      TraceEvent synthetic = *open[i - 1];
      synthetic.phase = Phase::kEnd;
      synthetic.ts_ns = std::max(last_ts_ns, synthetic.ts_ns);
      AppendEventJson(synthetic, tid, &out);
    }
  }
  // Replace the trailing ",\n" (if any event was written) to close the array.
  if (out.size() >= 2 && out[out.size() - 2] == ',') {
    out.erase(out.size() - 2, 1);
  }
  out.append("]}\n");

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    LogError("cannot open trace file: " + path + ": " + std::strerror(errno));
    return false;
  }
  const size_t written = std::fwrite(out.data(), 1, out.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != out.size() || !close_ok) {
    LogError("short write on trace file: " + path);
    return false;
  }
  return true;
}

TraceEventStats GetTraceEventStats() {
  std::lock_guard<std::mutex> lock(g_buffers_mu);
  TraceEventStats stats;
  for (const auto& buffer : *CurrentBuffersLocked()) {
    if (buffer->next == 0) continue;
    ++stats.threads;
    stats.recorded_events += buffer->Size();
    stats.dropped_events += buffer->Dropped();
  }
  return stats;
}

void ResetTraceEventsForTest() {
  std::lock_guard<std::mutex> lock(g_buffers_mu);
  CurrentBuffersLocked()->clear();
  RetiredBuffersLocked()->clear();
  // Invalidate every thread's cached pointer (they re-check the generation).
  g_session_generation.fetch_add(1, std::memory_order_release);
  t_buffer = nullptr;
}

}  // namespace ipin::obs
