#include "ipin/obs/ledger.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <set>
#include <utility>

#ifdef __unix__
#include <unistd.h>
#endif

#include "ipin/common/logging.h"
#include "ipin/common/safe_io.h"
#include "ipin/common/string_util.h"
#include "ipin/common/thread_pool.h"
#include "ipin/obs/export.h"
#include "ipin/obs/memtally.h"
#include "ipin/obs/metrics.h"
#include "ipin/obs/progress.h"

namespace ipin::obs {
namespace {

namespace fs = std::filesystem;

// Input files are fingerprinted by size plus the CRC of their first MiB:
// enough to tell "same dataset?" across runs without rescanning gigabytes.
constexpr size_t kFingerprintBytes = 1 << 20;

uint64_t NowUnixMillis() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

uint64_t NowSteadyMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct LedgerInput {
  std::string path;
  uint64_t bytes = 0;
  uint32_t crc32c = 0;
};

struct LedgerEvent {
  uint64_t t_ms = 0;
  std::string kind;
  std::string detail;
};

void AppendU64(const char* key, uint64_t value, std::string* out) {
  out->append(StrFormat("\"%s\":%llu", key,
                        static_cast<unsigned long long>(value)));
}

}  // namespace

RunProvenance CollectRunProvenance() {
  RunProvenance p;
  if (const char* env = std::getenv("IPIN_GIT_SHA");
      env != nullptr && env[0] != '\0') {
    p.git_sha = env;
  } else {
#ifdef IPIN_GIT_SHA
    p.git_sha = IPIN_GIT_SHA;
#else
    p.git_sha = "unknown";
#endif
  }
#ifdef __unix__
  char host[256] = {0};
  if (gethostname(host, sizeof(host) - 1) == 0 && host[0] != '\0') {
    p.hostname = host;
  }
#endif
  if (p.hostname.empty()) p.hostname = "unknown";
#ifdef IPIN_BUILD_TYPE
  p.build_type = IPIN_BUILD_TYPE;
#else
  p.build_type = "unknown";
#endif
#ifdef IPIN_OBS_DISABLED
  p.obs_mode = "disabled";
#else
  p.obs_mode = "enabled";
#endif
  p.cpus = HardwareThreads();
  p.threads = GlobalThreads();
  return p;
}

struct RunLedger::Impl {
  mutable std::mutex mu;
  bool begun = false;
  RunLedgerOptions options;
  uint64_t start_unix_ms = 0;
  uint64_t start_steady_us = 0;
  uint64_t seq = 0;  // per-process run counter, disambiguates filenames
  std::vector<LedgerInput> inputs;
  std::vector<std::string> outputs;
  std::vector<LedgerEvent> events;
  size_t events_dropped = 0;
  std::set<std::string> event_kinds;  // survives the event cap

  std::string CoreFrame(const std::string& outcome, int exit_code,
                        double wall_seconds) const {
    const RunProvenance prov = CollectRunProvenance();
    std::string out = "{\"schema\":\"ipin.run.v1\",\"section\":\"core\"";
    out += ",\"tool\":";
    AppendJsonString(options.tool, &out);
    out += ",\"command\":";
    AppendJsonString(options.command, &out);
    out += ",\"args\":";
    AppendJsonString(options.args, &out);
    out += ",";
    AppendU64("start_unix_ms", start_unix_ms, &out);
    out += ",\"wall_seconds\":";
    AppendJsonDouble(wall_seconds, &out);
    out += ",\"outcome\":";
    AppendJsonString(outcome, &out);
    out += StrFormat(",\"exit_code\":%d", exit_code);
    out += ",\"provenance\":{\"git_sha\":";
    AppendJsonString(prov.git_sha, &out);
    out += ",\"hostname\":";
    AppendJsonString(prov.hostname, &out);
    out += ",\"build_type\":";
    AppendJsonString(prov.build_type, &out);
    out += ",\"obs\":";
    AppendJsonString(prov.obs_mode, &out);
    out += ",";
    AppendU64("cpus", prov.cpus, &out);
    out += ",";
    AppendU64("threads", prov.threads, &out);
    out += "},\"inputs\":[";
    for (size_t i = 0; i < inputs.size(); ++i) {
      if (i > 0) out += ",";
      out += "{\"path\":";
      AppendJsonString(inputs[i].path, &out);
      out += ",";
      AppendU64("bytes", inputs[i].bytes, &out);
      out += ",";
      AppendU64("crc32c", inputs[i].crc32c, &out);
      out += "}";
    }
    out += "],\"outputs\":[";
    for (size_t i = 0; i < outputs.size(); ++i) {
      if (i > 0) out += ",";
      AppendJsonString(outputs[i], &out);
    }
    out += "],";
    AppendU64("peak_rss_bytes", PeakRssBytes(), &out);
    out += "}";
    return out;
  }

  std::string ActivityFrame() const {
    std::string out = "{\"section\":\"activity\",\"events\":[";
    for (size_t i = 0; i < events.size(); ++i) {
      if (i > 0) out += ",";
      out += "{";
      AppendU64("t_ms", events[i].t_ms, &out);
      out += ",\"kind\":";
      AppendJsonString(events[i].kind, &out);
      out += ",\"detail\":";
      AppendJsonString(events[i].detail, &out);
      out += "}";
    }
    out += "],";
    AppendU64("events_dropped", events_dropped, &out);
    out += ",\"phases\":[";
    bool first = true;
    for (const ProgressPhaseSnapshot& p : ProgressPhases()) {
      if (!first) out += ",";
      first = false;
      out += "{\"name\":";
      AppendJsonString(p.name, &out);
      out += ",";
      AppendU64("instances", p.instances, &out);
      out += ",";
      AppendU64("units_done", p.units_done, &out);
      out += ",";
      AppendU64("units_total", p.units_total, &out);
      out += ",";
      AppendU64("wall_us", p.wall_us, &out);
      out += ",";
      AppendU64("cpu_us", p.cpu_us, &out);
      out += StrFormat(",\"active\":%s}", p.active ? "true" : "false");
    }
    out += StrFormat("],\"pool\":{\"threads\":%llu,\"phases\":[",
                     static_cast<unsigned long long>(GlobalThreads()));
    first = true;
    for (const PoolPhaseProfile& p : PoolPhaseProfiles()) {
      if (!first) out += ",";
      first = false;
      out += "{\"name\":";
      AppendJsonString(p.name, &out);
      out += ",";
      AppendU64("tasks", p.tasks, &out);
      out += ",";
      AppendU64("busy_us", p.busy_us, &out);
      out += ",";
      AppendU64("max_task_us", p.max_task_us, &out);
      out += ",";
      AppendU64("wall_us", p.wall_us, &out);
      out += ",\"imbalance\":";
      AppendJsonDouble(p.ImbalanceRatio(), &out);
      out += ",\"utilization\":";
      AppendJsonDouble(p.Utilization(GlobalThreads()), &out);
      out += "}";
    }
    out += "]},\"heartbeats\":{";
    AppendU64("emitted", ProgressHeartbeatsEmitted(), &out);
    out += ",\"recent\":[";
    first = true;
    for (const std::string& line : RecentHeartbeatLines()) {
      if (!first) out += ",";
      first = false;
      out += line;  // each heartbeat line is itself a JSON object
    }
    out += "]}}";
    return out;
  }

  std::string MetricsFrame() const {
    const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
    std::string out = "{\"section\":\"metrics\",\"counters\":{";
    bool first = true;
    for (const auto& [name, value] : snapshot.counters) {
      if (!first) out += ",";
      first = false;
      AppendJsonString(name, &out);
      out += StrFormat(":%llu", static_cast<unsigned long long>(value));
    }
    out += "},\"gauges\":{";
    first = true;
    for (const auto& [name, value] : snapshot.gauges) {
      if (!first) out += ",";
      first = false;
      AppendJsonString(name, &out);
      out += ":";
      AppendJsonDouble(value, &out);
    }
    out += "},\"histograms\":{";
    first = true;
    for (const HistogramSnapshot& h : snapshot.histograms) {
      if (!first) out += ",";
      first = false;
      AppendJsonString(h.name, &out);
      out += StrFormat(":{\"count\":%llu,\"mean\":",
                       static_cast<unsigned long long>(h.count));
      AppendJsonDouble(h.Mean(), &out);
      out += ",\"p95\":";
      AppendJsonDouble(h.P95(), &out);
      out += "}";
    }
    out += "}}";
    return out;
  }
};

RunLedger::RunLedger() : impl_(new Impl) {}

RunLedger& RunLedger::Global() {
  static auto* ledger = new RunLedger();
  return *ledger;
}

void RunLedger::Begin(RunLedgerOptions options) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->begun = true;
  impl_->options = std::move(options);
  impl_->start_unix_ms = NowUnixMillis();
  impl_->start_steady_us = NowSteadyMicros();
  ++impl_->seq;
  impl_->inputs.clear();
  impl_->outputs.clear();
  impl_->events.clear();
  impl_->events_dropped = 0;
  impl_->event_kinds.clear();
}

bool RunLedger::begun() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->begun;
}

void RunLedger::RecordInputFile(const std::string& path) {
  LedgerInput input;
  input.path = path;
  if (std::FILE* f = std::fopen(path.c_str(), "rb"); f != nullptr) {
    std::string head(kFingerprintBytes, '\0');
    const size_t read = std::fread(head.data(), 1, head.size(), f);
    input.crc32c = Crc32c(head.data(), read);
    std::error_code ec;
    const auto size = fs::file_size(path, ec);
    input.bytes = ec ? static_cast<uint64_t>(read)
                     : static_cast<uint64_t>(size);
    std::fclose(f);
  }
  std::lock_guard<std::mutex> lock(impl_->mu);
  if (!impl_->begun) return;
  impl_->inputs.push_back(std::move(input));
}

void RunLedger::RecordOutput(const std::string& path) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  if (!impl_->begun) return;
  impl_->outputs.push_back(path);
}

void RunLedger::RecordEvent(const std::string& kind,
                            const std::string& detail) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  if (!impl_->begun) return;
  impl_->event_kinds.insert(kind);
  if (impl_->events.size() >= kMaxEvents) {
    ++impl_->events_dropped;
    return;
  }
  LedgerEvent event;
  event.t_ms = (NowSteadyMicros() - impl_->start_steady_us) / 1000u;
  event.kind = kind;
  event.detail = detail;
  impl_->events.push_back(std::move(event));
}

bool RunLedger::SawEvent(const std::string& kind) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->event_kinds.count(kind) > 0;
}

double RunLedger::WallSeconds() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return static_cast<double>(NowSteadyMicros() - impl_->start_steady_us) /
         1e6;
}

std::vector<std::string> RunLedger::Outputs() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->outputs;
}

std::string RunLedger::Finish(int exit_code) {
  // Mirror the derived gauges into the registry before snapshotting it so
  // the metrics frame is as complete as a --metrics_out report.
  PublishPoolPhaseMetrics();
  PublishMemoryGauges();

  std::lock_guard<std::mutex> lock(impl_->mu);
  if (!impl_->begun) return "";
  impl_->begun = false;
  const double wall_seconds =
      static_cast<double>(NowSteadyMicros() - impl_->start_steady_us) / 1e6;
  const std::string outcome =
      exit_code != 0 ? "error"
      : impl_->event_kinds.count("checkpoint.resume") > 0 ? "resumed"
                                                          : "ok";
  if (impl_->options.dir.empty()) return "";

  std::error_code ec;
  fs::create_directories(impl_->options.dir, ec);
  if (ec) {
    LogWarning("ledger: cannot create directory " + impl_->options.dir +
               ": " + ec.message());
    return "";
  }
  const std::string path = StrFormat(
      "%s/run_%llu_%d_%03llu%s", impl_->options.dir.c_str(),
      static_cast<unsigned long long>(impl_->start_unix_ms),
#ifdef __unix__
      static_cast<int>(getpid()),
#else
      0,
#endif
      static_cast<unsigned long long>(impl_->seq), kLedgerFileSuffix);
  SafeFileWriter writer(path, kLedgerFileType, kLedgerVersion);
  writer.AppendFrame(impl_->CoreFrame(outcome, exit_code, wall_seconds));
  writer.AppendFrame(impl_->ActivityFrame());
  writer.AppendFrame(impl_->MetricsFrame());
  if (!writer.Commit()) {
    LogWarning("ledger: failed to write " + path);
    return "";
  }
  return path;
}

// ---- reader ---------------------------------------------------------------

LedgerLoadResult LoadRunLedger(const std::string& path) {
  LedgerLoadResult result;
  SafeFileReader reader;
  const SafeOpenStatus open = reader.Open(path, kLedgerFileType);
  if (open == SafeOpenStatus::kMissing) {
    result.status = LedgerLoadStatus::kMissing;
    return result;
  }
  if (open != SafeOpenStatus::kOk) {
    result.status = LedgerLoadStatus::kCorrupt;
    return result;
  }

  // Splice the surviving frames' members into one JSON object. Frames are
  // emitted by this file, so textual splicing is safe; a frame that fails
  // its CRC (or no longer parses) is dropped, not fatal.
  std::string merged = "{";
  bool any_member = false;
  std::string payload;
  for (;;) {
    const FrameStatus status = reader.ReadFrame(&payload);
    if (status == FrameStatus::kEndOfFile) break;
    ++result.frames_total;
    if (status != FrameStatus::kOk) {
      ++result.frames_dropped;
      if (status == FrameStatus::kTruncated || !reader.CanContinue()) break;
      continue;
    }
    const auto parsed = JsonValue::Parse(payload);
    if (!parsed.has_value() || !parsed->is_object()) {
      ++result.frames_dropped;
      continue;
    }
    const size_t open_brace = payload.find('{');
    const size_t close_brace = payload.rfind('}');
    const std::string inner =
        payload.substr(open_brace + 1, close_brace - open_brace - 1);
    if (inner.empty()) continue;
    if (any_member) merged += ",";
    any_member = true;
    merged += inner;
  }
  merged += "}";

  auto doc = JsonValue::Parse(merged);
  if (!doc.has_value() ||
      doc->FindString("schema", "") != "ipin.run.v1") {
    // The core frame (which carries the schema tag) did not survive.
    result.status = LedgerLoadStatus::kCorrupt;
    return result;
  }
  result.text = std::move(merged);
  result.doc = std::move(*doc);
  result.status = result.frames_dropped > 0 ? LedgerLoadStatus::kDegraded
                                            : LedgerLoadStatus::kOk;
  return result;
}

std::vector<std::string> ListRunLedgers(const std::string& dir) {
  std::vector<std::string> out;
  constexpr size_t kSuffixLen = sizeof(kLedgerFileSuffix) - 1;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() > kSuffixLen &&
        name.substr(name.size() - kSuffixLen) == kLedgerFileSuffix) {
      out.push_back(entry.path().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace ipin::obs
