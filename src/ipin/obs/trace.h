#ifndef IPIN_OBS_TRACE_H_
#define IPIN_OBS_TRACE_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "ipin/common/timer.h"
#include "ipin/obs/metrics.h"

// Scoped tracing spans. IPIN_TRACE_SPAN("irs.scan") times the enclosing
// scope; spans nest (a span opened while another is active on the same
// thread becomes its child), and every (parent-path, name) pair aggregates
// call count and total wall time into one node of a process-wide span tree.
// Each span end also feeds the metrics registry: the counter
// "trace.<path>.calls" and the latency histogram "trace.<path>.us".
//
// Nesting is tracked per thread (thread-local parent pointer); the tree
// itself is shared, with node creation mutex-guarded and per-node totals
// accumulated via relaxed atomics.

namespace ipin::obs {

struct SpanNode;  // internal; defined in trace.cc

/// Aggregated statistics of one span-tree node, flattened depth-first.
/// `path` joins the nesting chain with '/' (span names themselves are
/// dotted, e.g. "irs.approx.compute/sketch.merge").
struct SpanStats {
  std::string path;
  int depth = 0;
  uint64_t calls = 0;
  uint64_t total_ns = 0;

  double TotalSeconds() const { return static_cast<double>(total_ns) * 1e-9; }
};

/// RAII span. Construct on the stack (normally via IPIN_TRACE_SPAN); the
/// destructor records the elapsed time. `name` must outlive the span
/// (string literals in practice).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  WallTimer timer_;
  const char* name_;  // kept for the event recorder (node_ may outlive resets)
  SpanNode* node_;
  SpanNode* prev_;  // the span active on this thread before this one
};

/// Flattened copy of the span tree, depth-first, children sorted by name.
std::vector<SpanStats> SpanTreeSnapshot();

/// Pretty-prints the span tree (indented by depth) to `out`.
void DumpSpanTree(std::FILE* out);

/// Clears the span tree. Test-only: callers must guarantee no span is
/// currently open on any thread.
void ResetSpanTreeForTest();

}  // namespace ipin::obs

#ifdef IPIN_OBS_DISABLED
#define IPIN_TRACE_SPAN(name)
#else
/// Opens a TraceSpan covering the rest of the enclosing scope.
#define IPIN_TRACE_SPAN(name) \
  ::ipin::obs::TraceSpan IPIN_OBS_CONCAT(ipin_obs_span_, __LINE__)(name)
#endif

#endif  // IPIN_OBS_TRACE_H_
