#ifndef IPIN_OBS_PROGRESS_H_
#define IPIN_OBS_PROGRESS_H_

#include <cstdint>
#include <string>
#include <vector>

// Progress/heartbeat engine for batch jobs (builds, seed selection, Monte
// Carlo runs). Long phases register themselves with a ProgressPhase RAII
// scope and tick work-unit counters (edges scanned, slabs built, greedy
// rounds, TCIC runs); a background reporter thread periodically turns the
// innermost active phase into
//
//   * a machine-readable heartbeat line (schema ipin.heartbeat.v1, one JSON
//     object per line) appended to --progress_out, and
//   * an optional throttled human ticker on stderr,
//
// so a wedged multi-hour build is distinguishable from a merely slow one:
// heartbeats keep coming either way, but units_done stops moving when the
// job is stuck. Completed phases aggregate by name (bounded memory even in
// a long-lived server) and are summarized into the run ledger
// (obs/ledger.h) together with the per-phase thread-pool profiles.
//
// ProgressPhase also tags the calling thread's parallel sections (see
// SetCurrentPoolPhase in common/thread_pool.h) so pool task accounting
// lands under the same phase name.
//
// Under IPIN_OBS_DISABLED everything here compiles to no-ops: phases cost
// nothing, StartProgressReporting reports nothing.

namespace ipin::obs {

/// One phase as seen by snapshots: a completed per-name aggregate
/// (active == false, instances >= 1) or a live phase (active == true).
struct ProgressPhaseSnapshot {
  std::string name;
  uint64_t instances = 0;    // phases merged into this aggregate
  uint64_t units_done = 0;
  uint64_t units_total = 0;  // 0 = unknown / open-ended
  uint64_t wall_us = 0;
  uint64_t cpu_us = 0;       // process CPU consumed while the phase ran
  bool active = false;
};

/// Reporter configuration (see StartProgressReporting).
struct ProgressOptions {
  uint64_t interval_ms = 1000;  // heartbeat cadence (clamped to >= 1)
  std::string out_path;         // heartbeat JSONL file; empty = none
  bool stderr_ticker = false;   // one human-readable line per interval
};

#ifndef IPIN_OBS_DISABLED

/// RAII scope for one phase of a batch job. Construction registers the
/// phase (and tags the thread's pool sections with `name`); destruction
/// finalizes its timings and folds it into the per-name aggregate. Tick /
/// SetDone are callable from any thread (relaxed atomics) — workers inside
/// a ParallelFor may tick the phase of the section they run under.
/// `name` must outlive the object (string literals in practice).
class ProgressPhase {
 public:
  ProgressPhase(const char* name, uint64_t total_units);
  ~ProgressPhase();

  ProgressPhase(const ProgressPhase&) = delete;
  ProgressPhase& operator=(const ProgressPhase&) = delete;

  /// Adds `delta` completed work units.
  void Tick(uint64_t delta = 1);

  /// Sets the absolute completed-unit count (resumed builds, chunked
  /// loops that track their own cursor).
  void SetDone(uint64_t done);

  struct State;  // implementation detail, public for the engine in the .cc

 private:
  State* state_;
  const char* prev_pool_phase_;
};

/// Starts the background heartbeat reporter. Returns false (and changes
/// nothing) if a reporter is already running or the output file cannot be
/// opened. A final heartbeat is always emitted on stop, so any run with a
/// reporter produces at least one line.
bool StartProgressReporting(const ProgressOptions& options);

/// Stops the reporter (no-op when none is running): emits a final
/// heartbeat, joins the thread, closes the output file.
void StopProgressReporting();

/// Completed per-name aggregates (sorted by name) followed by live phases
/// in creation order.
std::vector<ProgressPhaseSnapshot> ProgressPhases();

/// Heartbeat lines emitted since process start (monotone; survives
/// reporter restarts).
uint64_t ProgressHeartbeatsEmitted();

/// The most recent heartbeat lines (bounded ring, newest last), kept for
/// the run ledger.
std::vector<std::string> RecentHeartbeatLines();

/// Clears completed-phase aggregates and the heartbeat ring (tests).
/// Active phases are unaffected.
void ResetProgressForTest();

#else  // IPIN_OBS_DISABLED

class ProgressPhase {
 public:
  ProgressPhase(const char*, uint64_t) {}
  ProgressPhase(const ProgressPhase&) = delete;
  ProgressPhase& operator=(const ProgressPhase&) = delete;
  void Tick(uint64_t = 1) {}
  void SetDone(uint64_t) {}
};

inline bool StartProgressReporting(const ProgressOptions&) { return false; }
inline void StopProgressReporting() {}
inline std::vector<ProgressPhaseSnapshot> ProgressPhases() { return {}; }
inline uint64_t ProgressHeartbeatsEmitted() { return 0; }
inline std::vector<std::string> RecentHeartbeatLines() { return {}; }
inline void ResetProgressForTest() {}

#endif  // IPIN_OBS_DISABLED

}  // namespace ipin::obs

#endif  // IPIN_OBS_PROGRESS_H_
