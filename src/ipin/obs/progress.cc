#include "ipin/obs/progress.h"

#ifndef IPIN_OBS_DISABLED

#include <time.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

#include "ipin/common/string_util.h"
#include "ipin/common/thread_pool.h"
#include "ipin/obs/memtally.h"

namespace ipin::obs {

struct ProgressPhase::State {
  const char* name = nullptr;
  std::atomic<uint64_t> done{0};
  std::atomic<uint64_t> total{0};
  uint64_t start_steady_us = 0;
  uint64_t start_cpu_us = 0;
};

namespace {

constexpr size_t kRecentLines = 64;

uint64_t NowSteadyMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t NowUnixMillis() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

// CPU time consumed by the whole process: overlapping phases each see the
// process total, which is the honest number when workers serve a phase.
uint64_t ProcessCpuMicros() {
  struct timespec ts;
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<uint64_t>(ts.tv_sec) * 1000000u +
         static_cast<uint64_t>(ts.tv_nsec) / 1000u;
}

// Completed phases fold into one aggregate per name so repeated phases
// (bench reps, serving queries that select seeds) cost bounded memory.
struct PhaseAgg {
  uint64_t instances = 0;
  uint64_t units_done = 0;
  uint64_t units_total = 0;
  uint64_t wall_us = 0;
  uint64_t cpu_us = 0;
};

struct EngineState {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<ProgressPhase::State*> active;  // creation order
  std::map<std::string, PhaseAgg> completed;
  std::deque<std::string> recent;  // last kRecentLines heartbeat lines
  uint64_t heartbeats = 0;
  // Reporter thread state.
  std::thread reporter;
  bool reporter_running = false;
  bool stop = false;
  std::FILE* out = nullptr;
  ProgressOptions options;
  uint64_t report_start_us = 0;
};

EngineState& Engine() {
  static auto* engine = new EngineState;
  return *engine;
}

// Composes and emits one heartbeat line. Caller holds Engine().mu.
void EmitHeartbeat(EngineState* e) {
  ++e->heartbeats;
  const char* phase = "idle";
  uint64_t done = 0;
  uint64_t total = 0;
  double rate = 0.0;
  double eta_s = -1.0;
  if (!e->active.empty()) {
    const ProgressPhase::State* s = e->active.back();  // innermost
    phase = s->name;
    done = s->done.load(std::memory_order_relaxed);
    total = s->total.load(std::memory_order_relaxed);
    const double phase_seconds =
        static_cast<double>(NowSteadyMicros() - s->start_steady_us) / 1e6;
    if (phase_seconds > 0.0) rate = static_cast<double>(done) / phase_seconds;
    if (rate > 0.0 && total > done) {
      eta_s = static_cast<double>(total - done) / rate;
    }
  }
  std::string line = StrFormat(
      "{\"schema\":\"ipin.heartbeat.v1\",\"seq\":%llu,\"unix_ms\":%llu,"
      "\"elapsed_ms\":%llu,\"phase\":\"%s\",\"units_done\":%llu,"
      "\"units_total\":%llu,\"rate_per_s\":%.6g,\"rss_bytes\":%llu",
      static_cast<unsigned long long>(e->heartbeats),
      static_cast<unsigned long long>(NowUnixMillis()),
      static_cast<unsigned long long>(
          (NowSteadyMicros() - e->report_start_us) / 1000u),
      phase, static_cast<unsigned long long>(done),
      static_cast<unsigned long long>(total), rate,
      static_cast<unsigned long long>(CurrentRssBytes()));
  if (eta_s >= 0.0) line += StrFormat(",\"eta_s\":%.6g", eta_s);
  line += "}";

  if (e->out != nullptr) {
    std::fprintf(e->out, "%s\n", line.c_str());
    std::fflush(e->out);
  }
  if (e->options.stderr_ticker) {
    if (total > 0) {
      std::fprintf(stderr, "[ipin][progress] %s %llu/%llu (%.3g/s%s)\n",
                   phase, static_cast<unsigned long long>(done),
                   static_cast<unsigned long long>(total), rate,
                   eta_s >= 0.0 ? StrFormat(", eta %.0fs", eta_s).c_str()
                                : "");
    } else {
      std::fprintf(stderr, "[ipin][progress] %s %llu units (%.3g/s)\n",
                   phase, static_cast<unsigned long long>(done), rate);
    }
  }
  e->recent.push_back(std::move(line));
  while (e->recent.size() > kRecentLines) e->recent.pop_front();
}

void ReporterMain() {
  EngineState& e = Engine();
  std::unique_lock<std::mutex> lock(e.mu);
  const auto interval =
      std::chrono::milliseconds(std::max<uint64_t>(1, e.options.interval_ms));
  while (!e.stop) {
    if (e.cv.wait_for(lock, interval, [&e] { return e.stop; })) break;
    EmitHeartbeat(&e);
  }
  EmitHeartbeat(&e);  // final line: every reported run emits at least one
  if (e.out != nullptr) {
    std::fclose(e.out);
    e.out = nullptr;
  }
}

}  // namespace

ProgressPhase::ProgressPhase(const char* name, uint64_t total_units)
    : state_(new State) {
  state_->name = name;
  state_->total.store(total_units, std::memory_order_relaxed);
  state_->start_steady_us = NowSteadyMicros();
  state_->start_cpu_us = ProcessCpuMicros();
  {
    EngineState& e = Engine();
    std::lock_guard<std::mutex> lock(e.mu);
    e.active.push_back(state_);
  }
  prev_pool_phase_ = SetCurrentPoolPhase(name);
}

ProgressPhase::~ProgressPhase() {
  SetCurrentPoolPhase(prev_pool_phase_);
  const uint64_t wall_us = NowSteadyMicros() - state_->start_steady_us;
  const uint64_t cpu_us = ProcessCpuMicros() - state_->start_cpu_us;
  {
    EngineState& e = Engine();
    std::lock_guard<std::mutex> lock(e.mu);
    e.active.erase(std::find(e.active.begin(), e.active.end(), state_));
    PhaseAgg& agg = e.completed[state_->name];
    ++agg.instances;
    agg.units_done += state_->done.load(std::memory_order_relaxed);
    agg.units_total += state_->total.load(std::memory_order_relaxed);
    agg.wall_us += wall_us;
    agg.cpu_us += cpu_us;
  }
  delete state_;
}

void ProgressPhase::Tick(uint64_t delta) {
  state_->done.fetch_add(delta, std::memory_order_relaxed);
}

void ProgressPhase::SetDone(uint64_t done) {
  state_->done.store(done, std::memory_order_relaxed);
}

bool StartProgressReporting(const ProgressOptions& options) {
  EngineState& e = Engine();
  std::lock_guard<std::mutex> lock(e.mu);
  if (e.reporter_running) return false;
  std::FILE* out = nullptr;
  if (!options.out_path.empty()) {
    out = std::fopen(options.out_path.c_str(), "wb");
    if (out == nullptr) return false;
  }
  e.out = out;
  e.options = options;
  e.stop = false;
  e.report_start_us = NowSteadyMicros();
  e.reporter = std::thread(ReporterMain);
  e.reporter_running = true;
  return true;
}

void StopProgressReporting() {
  EngineState& e = Engine();
  std::thread reporter;
  {
    std::lock_guard<std::mutex> lock(e.mu);
    if (!e.reporter_running) return;
    e.stop = true;
    reporter = std::move(e.reporter);
    e.reporter_running = false;
  }
  e.cv.notify_all();
  reporter.join();
}

std::vector<ProgressPhaseSnapshot> ProgressPhases() {
  std::vector<ProgressPhaseSnapshot> out;
  EngineState& e = Engine();
  std::lock_guard<std::mutex> lock(e.mu);
  for (const auto& [name, agg] : e.completed) {
    ProgressPhaseSnapshot snap;
    snap.name = name;
    snap.instances = agg.instances;
    snap.units_done = agg.units_done;
    snap.units_total = agg.units_total;
    snap.wall_us = agg.wall_us;
    snap.cpu_us = agg.cpu_us;
    out.push_back(std::move(snap));
  }
  for (const ProgressPhase::State* s : e.active) {
    ProgressPhaseSnapshot snap;
    snap.name = s->name;
    snap.instances = 1;
    snap.units_done = s->done.load(std::memory_order_relaxed);
    snap.units_total = s->total.load(std::memory_order_relaxed);
    snap.wall_us = NowSteadyMicros() - s->start_steady_us;
    snap.cpu_us = ProcessCpuMicros() - s->start_cpu_us;
    snap.active = true;
    out.push_back(std::move(snap));
  }
  return out;
}

uint64_t ProgressHeartbeatsEmitted() {
  EngineState& e = Engine();
  std::lock_guard<std::mutex> lock(e.mu);
  return e.heartbeats;
}

std::vector<std::string> RecentHeartbeatLines() {
  EngineState& e = Engine();
  std::lock_guard<std::mutex> lock(e.mu);
  return {e.recent.begin(), e.recent.end()};
}

void ResetProgressForTest() {
  EngineState& e = Engine();
  std::lock_guard<std::mutex> lock(e.mu);
  e.completed.clear();
  e.recent.clear();
}

}  // namespace ipin::obs

#endif  // IPIN_OBS_DISABLED
