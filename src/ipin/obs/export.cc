#include "ipin/obs/export.h"

#include <cerrno>
#include <cstring>

#include "ipin/common/logging.h"
#include "ipin/common/string_util.h"

namespace ipin::obs {

void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      case '\r':
        out->append("\\r");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out->append(StrFormat("\\u%04x", c));
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendJsonDouble(double value, std::string* out) {
  // %.17g round-trips but is noisy; %.10g is plenty for metric values.
  std::string text = StrFormat("%.10g", value);
  // JSON has no inf/nan literals; clamp to null.
  if (text.find("inf") != std::string::npos ||
      text.find("nan") != std::string::npos) {
    text = "null";
  }
  out->append(text);
}

namespace {

void AppendHistogramJson(const HistogramSnapshot& h, std::string* out) {
  out->append(StrFormat("{\"count\":%llu,\"sum\":%llu,\"min\":%llu,"
                        "\"max\":%llu,\"mean\":",
                        static_cast<unsigned long long>(h.count),
                        static_cast<unsigned long long>(h.sum),
                        static_cast<unsigned long long>(h.min),
                        static_cast<unsigned long long>(h.max)));
  AppendJsonDouble(h.Mean(), out);
  out->append(",\"p50\":");
  AppendJsonDouble(h.P50(), out);
  out->append(",\"p95\":");
  AppendJsonDouble(h.P95(), out);
  out->append(",\"p99\":");
  AppendJsonDouble(h.P99(), out);
  out->append(",\"buckets\":[");
  bool first = true;
  for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    if (h.buckets[i] == 0) continue;
    if (!first) out->push_back(',');
    first = false;
    out->append(StrFormat(
        "{\"le\":%llu,\"count\":%llu}",
        static_cast<unsigned long long>(Histogram::BucketUpperBound(i)),
        static_cast<unsigned long long>(h.buckets[i])));
  }
  out->append("]}");
}

// Sanitizes to a valid Prometheus metric name ([a-zA-Z_:][a-zA-Z0-9_:]*):
// every invalid character (dots, dashes, slashes, spaces, ...) becomes '_',
// and a leading digit gets a '_' prefix. Registry names are free-form
// strings, so escaping here — not at every registration site — is what
// keeps the exposition parseable.
std::string PrometheusName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool valid = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!valid) c = '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) {
    out.insert(out.begin(), '_');
  }
  return out;
}

// Prometheus label values live inside double quotes; backslash, quote, and
// newline must be escaped per the exposition format.
std::string PrometheusLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        out.append("\\\\");
        break;
      case '"':
        out.append("\\\"");
        break;
      case '\n':
        out.append("\\n");
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

}  // namespace

void WriteMetricsText(const MetricsSnapshot& snapshot, std::FILE* out) {
  for (const auto& [name, value] : snapshot.counters) {
    std::fprintf(out, "%-48s %llu\n", name.c_str(),
                 static_cast<unsigned long long>(value));
  }
  for (const auto& [name, value] : snapshot.gauges) {
    std::fprintf(out, "%-48s %.6g\n", name.c_str(), value);
  }
  for (const HistogramSnapshot& h : snapshot.histograms) {
    std::fprintf(out,
                 "%-48s count=%llu mean=%.1f p50=%.1f p95=%.1f p99=%.1f "
                 "min=%llu max=%llu\n",
                 h.name.c_str(), static_cast<unsigned long long>(h.count),
                 h.Mean(), h.P50(), h.P95(), h.P99(),
                 static_cast<unsigned long long>(h.min),
                 static_cast<unsigned long long>(h.max));
  }
}

std::string MetricsReportJson(const MetricsSnapshot& snapshot,
                              const std::vector<SpanStats>& spans) {
  std::string out;
  out.append("{\"schema\":\"ipin.metrics.v1\",\"counters\":{");
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(name, &out);
    out.append(StrFormat(":%llu", static_cast<unsigned long long>(value)));
  }
  out.append("},\"gauges\":{");
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(name, &out);
    out.push_back(':');
    AppendJsonDouble(value, &out);
  }
  out.append("},\"histograms\":{");
  first = true;
  for (const HistogramSnapshot& h : snapshot.histograms) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(h.name, &out);
    out.push_back(':');
    AppendHistogramJson(h, &out);
  }
  out.append("},\"spans\":[");
  first = true;
  for (const SpanStats& span : spans) {
    if (!first) out.push_back(',');
    first = false;
    out.append("{\"path\":");
    AppendJsonString(span.path, &out);
    out.append(StrFormat(",\"depth\":%d,\"calls\":%llu,\"total_us\":",
                         span.depth,
                         static_cast<unsigned long long>(span.calls)));
    AppendJsonDouble(static_cast<double>(span.total_ns) * 1e-3, &out);
    out.push_back('}');
  }
  out.append("]}");
  return out;
}

std::string MetricsPrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    // Counters carry the conventional _total suffix (avoiding __total when
    // a registry name already ends in it).
    std::string prom = PrometheusName(name);
    if (prom.size() < 6 || prom.compare(prom.size() - 6, 6, "_total") != 0) {
      prom += "_total";
    }
    out.append(StrFormat("# TYPE %s counter\n%s %llu\n", prom.c_str(),
                         prom.c_str(),
                         static_cast<unsigned long long>(value)));
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = PrometheusName(name);
    out.append(StrFormat("# TYPE %s gauge\n%s %.10g\n", prom.c_str(),
                         prom.c_str(), value));
  }
  for (const HistogramSnapshot& h : snapshot.histograms) {
    const std::string prom = PrometheusName(h.name);
    out.append(StrFormat("# TYPE %s histogram\n", prom.c_str()));
    uint64_t cumulative = 0;
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      if (h.buckets[i] == 0) continue;
      cumulative += h.buckets[i];
      const std::string le = PrometheusLabelValue(StrFormat(
          "%llu",
          static_cast<unsigned long long>(Histogram::BucketUpperBound(i))));
      out.append(StrFormat("%s_bucket{le=\"%s\"} %llu\n", prom.c_str(),
                           le.c_str(),
                           static_cast<unsigned long long>(cumulative)));
    }
    out.append(StrFormat("%s_bucket{le=\"+Inf\"} %llu\n", prom.c_str(),
                         static_cast<unsigned long long>(h.count)));
    out.append(StrFormat("%s_sum %llu\n%s_count %llu\n", prom.c_str(),
                         static_cast<unsigned long long>(h.sum), prom.c_str(),
                         static_cast<unsigned long long>(h.count)));
    // Pre-computed quantiles as companion gauges (a histogram TYPE cannot
    // carry quantile series; scrapers that want exact ones can still derive
    // them from the _bucket series).
    out.append(StrFormat("# TYPE %s_p50 gauge\n%s_p50 %.10g\n", prom.c_str(),
                         prom.c_str(), h.P50()));
    out.append(StrFormat("# TYPE %s_p95 gauge\n%s_p95 %.10g\n", prom.c_str(),
                         prom.c_str(), h.P95()));
    out.append(StrFormat("# TYPE %s_p99 gauge\n%s_p99 %.10g\n", prom.c_str(),
                         prom.c_str(), h.P99()));
  }
  return out;
}

std::string GlobalMetricsReportJson() {
  return MetricsReportJson(MetricsRegistry::Global().Snapshot(),
                           SpanTreeSnapshot());
}

bool WriteMetricsReportFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    LogError("cannot open metrics report file: " + path + ": " +
             std::strerror(errno));
    return false;
  }
  const std::string json = GlobalMetricsReportJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool newline_ok = std::fputc('\n', f) != EOF;
  const bool close_ok = std::fclose(f) == 0;
  if (written != json.size() || !newline_ok || !close_ok) {
    LogError("short write on metrics report file: " + path);
    return false;
  }
  return true;
}

}  // namespace ipin::obs
