#ifndef IPIN_OBS_MEMTALLY_H_
#define IPIN_OBS_MEMTALLY_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

// Measured (allocator-counted) memory accounting per component. Where
// ipin/common/memory.h estimates footprints analytically from container
// shapes, a MemoryTally counts the bytes the component actually requested
// from the allocator: containers on the accounted paths (exact IRS summary
// maps, vHLL cell lists, versioned bottom-k entry lists) use the
// TallyAllocator adaptor below, and explicit buffers (oracle index
// serialization) report through ScopedMemoryCharge. PublishMemoryGauges()
// mirrors every tally into "mem.<component>.bytes" / ".peak_bytes" gauges
// (plus the process RSS) so run reports carry measured numbers.
//
// Cost model: two relaxed atomic updates per allocate/deallocate — noise
// next to the allocation itself, so tallies stay active even under
// -DIPIN_OBS_DISABLED (only the hot-path *macros* compile out).

namespace ipin::obs {

/// Byte counter for one component: current outstanding bytes plus the
/// high-water mark. Thread-safe; updates are relaxed atomics.
class MemoryTally {
 public:
  explicit MemoryTally(std::string name) : name_(std::move(name)) {}
  MemoryTally(const MemoryTally&) = delete;
  MemoryTally& operator=(const MemoryTally&) = delete;

  void Add(size_t bytes) {
    const int64_t now = current_.fetch_add(static_cast<int64_t>(bytes),
                                           std::memory_order_relaxed) +
                        static_cast<int64_t>(bytes);
    int64_t peak = peak_.load(std::memory_order_relaxed);
    while (now > peak &&
           !peak_.compare_exchange_weak(peak, now,
                                        std::memory_order_relaxed)) {
    }
  }

  void Sub(size_t bytes) {
    current_.fetch_sub(static_cast<int64_t>(bytes),
                       std::memory_order_relaxed);
  }

  /// Outstanding bytes right now (allocated minus freed).
  int64_t CurrentBytes() const {
    return current_.load(std::memory_order_relaxed);
  }

  /// Highest value CurrentBytes has reached.
  int64_t PeakBytes() const { return peak_.load(std::memory_order_relaxed); }

  /// Re-arms the high-water mark at the current level (between-run resets).
  void ResetPeak() {
    peak_.store(current_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
  }

  const std::string& name() const { return name_; }

 private:
  const std::string name_;
  std::atomic<int64_t> current_{0};
  std::atomic<int64_t> peak_{0};
};

/// Finds or creates the process-wide tally for `component`. The returned
/// reference is valid for the process lifetime; same name, same tally.
MemoryTally& GetMemoryTally(const std::string& component);

/// Every registered tally, sorted by component name.
std::vector<MemoryTally*> AllMemoryTallies();

/// Mirrors each tally into the metrics registry as the gauges
/// "mem.<component>.bytes" and "mem.<component>.peak_bytes", plus
/// "mem.process.rss_bytes" when the platform exposes it. Call before
/// snapshotting the registry for a run report.
void PublishMemoryGauges();

/// Resident-set size of the current process in bytes (/proc/self/statm);
/// 0 where unavailable.
size_t CurrentRssBytes();

/// Lifetime peak resident-set size in bytes (getrusage ru_maxrss); 0 where
/// unavailable. The run ledger records this as the job's memory high-water
/// mark.
size_t PeakRssBytes();

/// std::allocator adaptor that charges a MemoryTally for every allocation.
/// The tally is named by a function pointer template argument, so the
/// allocator is stateless: all instances compare equal and containers never
/// need allocator propagation. Example:
///
///   obs::MemoryTally& WidgetMemTally();  // { static auto& t = ...; }
///   using WidgetList =
///       std::vector<Widget, obs::TallyAllocator<Widget, &WidgetMemTally>>;
template <typename T, MemoryTally& (*TallyFn)()>
class TallyAllocator {
 public:
  using value_type = T;
  using is_always_equal = std::true_type;

  TallyAllocator() = default;
  template <typename U>
  TallyAllocator(const TallyAllocator<U, TallyFn>&) {}  // NOLINT(runtime/explicit)

  T* allocate(size_t n) {
    TallyFn().Add(n * sizeof(T));
    return std::allocator<T>().allocate(n);
  }

  void deallocate(T* p, size_t n) {
    TallyFn().Sub(n * sizeof(T));
    std::allocator<T>().deallocate(p, n);
  }

  template <typename U>
  struct rebind {
    using other = TallyAllocator<U, TallyFn>;
  };
};

template <typename T, typename U, MemoryTally& (*TallyFn)()>
bool operator==(const TallyAllocator<T, TallyFn>&,
                const TallyAllocator<U, TallyFn>&) {
  return true;
}

template <typename T, typename U, MemoryTally& (*TallyFn)()>
bool operator!=(const TallyAllocator<T, TallyFn>&,
                const TallyAllocator<U, TallyFn>&) {
  return false;
}

/// RAII charge for an explicitly sized buffer (serialization scratch,
/// mapped files): Add on construction, Sub on destruction.
class ScopedMemoryCharge {
 public:
  ScopedMemoryCharge(MemoryTally& tally, size_t bytes)
      : tally_(tally), bytes_(bytes) {
    tally_.Add(bytes_);
  }
  ~ScopedMemoryCharge() { tally_.Sub(bytes_); }
  ScopedMemoryCharge(const ScopedMemoryCharge&) = delete;
  ScopedMemoryCharge& operator=(const ScopedMemoryCharge&) = delete;

  /// Re-sizes the charge (e.g. after a buffer grows).
  void Resize(size_t bytes) {
    if (bytes > bytes_) {
      tally_.Add(bytes - bytes_);
    } else {
      tally_.Sub(bytes_ - bytes);
    }
    bytes_ = bytes;
  }

 private:
  MemoryTally& tally_;
  size_t bytes_;
};

}  // namespace ipin::obs

#endif  // IPIN_OBS_MEMTALLY_H_
