#include "ipin/obs/memtally.h"

#include <cstdio>
#include <map>
#include <mutex>

#include "ipin/obs/metrics.h"

#ifdef __unix__
#include <sys/resource.h>
#include <unistd.h>
#endif

namespace ipin::obs {
namespace {

std::mutex g_tallies_mu;

std::map<std::string, std::unique_ptr<MemoryTally>>& Tallies() {
  // Leaked, like the metrics registry: tallies must stay usable while
  // static-storage containers deallocate during teardown.
  static auto* const tallies =
      new std::map<std::string, std::unique_ptr<MemoryTally>>();
  return *tallies;
}

}  // namespace

MemoryTally& GetMemoryTally(const std::string& component) {
  std::lock_guard<std::mutex> lock(g_tallies_mu);
  auto& tallies = Tallies();
  auto it = tallies.find(component);
  if (it == tallies.end()) {
    it = tallies.emplace(component, std::make_unique<MemoryTally>(component))
             .first;
  }
  return *it->second;
}

std::vector<MemoryTally*> AllMemoryTallies() {
  std::lock_guard<std::mutex> lock(g_tallies_mu);
  std::vector<MemoryTally*> out;
  out.reserve(Tallies().size());
  for (const auto& [name, tally] : Tallies()) {
    out.push_back(tally.get());
  }
  return out;
}

void PublishMemoryGauges() {
  MetricsRegistry& registry = MetricsRegistry::Global();
  for (MemoryTally* tally : AllMemoryTallies()) {
    registry.GetGauge("mem." + tally->name() + ".bytes")
        ->Set(static_cast<double>(tally->CurrentBytes()));
    registry.GetGauge("mem." + tally->name() + ".peak_bytes")
        ->Set(static_cast<double>(tally->PeakBytes()));
  }
  const size_t rss = CurrentRssBytes();
  if (rss > 0) {
    registry.GetGauge("mem.process.rss_bytes")
        ->Set(static_cast<double>(rss));
  }
}

size_t CurrentRssBytes() {
#ifdef __unix__
  // statm: size resident shared text lib data dt — pages.
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long long size_pages = 0;
  unsigned long long resident_pages = 0;
  const int fields = std::fscanf(f, "%llu %llu", &size_pages, &resident_pages);
  std::fclose(f);
  if (fields != 2) return 0;
  const long page = sysconf(_SC_PAGESIZE);
  if (page <= 0) return 0;
  return static_cast<size_t>(resident_pages) * static_cast<size_t>(page);
#else
  return 0;
#endif
}

size_t PeakRssBytes() {
#ifdef __unix__
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  // Linux reports ru_maxrss in kilobytes.
  return static_cast<size_t>(usage.ru_maxrss) * 1024u;
#else
  return 0;
#endif
}

}  // namespace ipin::obs
