#include "ipin/obs/trace.h"

#include <atomic>
#include <map>
#include <memory>
#include <mutex>

#include "ipin/obs/trace_events.h"

namespace ipin::obs {

struct SpanNode {
  std::string name;
  std::string path;
  SpanNode* parent = nullptr;
  int depth = -1;  // the root sentinel sits at depth -1
  std::atomic<uint64_t> calls{0};
  std::atomic<uint64_t> total_ns{0};
  Counter* calls_counter = nullptr;
  Histogram* latency_us = nullptr;
  std::map<std::string, std::unique_ptr<SpanNode>> children;  // by g_tree_mu
};

namespace {

std::mutex g_tree_mu;  // guards every SpanNode::children map

SpanNode* Root() {
  static SpanNode* const root = new SpanNode();  // leaked, like the registry
  return root;
}

// The innermost open span on this thread; nullptr when none.
thread_local SpanNode* t_current = nullptr;

SpanNode* FindOrCreateChild(SpanNode* parent, const char* name) {
  std::lock_guard<std::mutex> lock(g_tree_mu);
  auto it = parent->children.find(name);
  if (it != parent->children.end()) return it->second.get();

  auto node = std::make_unique<SpanNode>();
  node->name = name;
  node->path = parent == Root() ? name : parent->path + "/" + name;
  node->parent = parent;
  node->depth = parent->depth + 1;
  node->calls_counter =
      MetricsRegistry::Global().GetCounter("trace." + node->path + ".calls");
  node->latency_us =
      MetricsRegistry::Global().GetHistogram("trace." + node->path + ".us");
  SpanNode* raw = node.get();
  parent->children.emplace(node->name, std::move(node));
  return raw;
}

void CollectDepthFirst(const SpanNode& node, std::vector<SpanStats>* out) {
  for (const auto& [name, child] : node.children) {
    SpanStats stats;
    stats.path = child->path;
    stats.depth = child->depth;
    stats.calls = child->calls.load(std::memory_order_relaxed);
    stats.total_ns = child->total_ns.load(std::memory_order_relaxed);
    out->push_back(std::move(stats));
    CollectDepthFirst(*child, out);
  }
}

}  // namespace

TraceSpan::TraceSpan(const char* name) : name_(name), prev_(t_current) {
  SpanNode* parent = prev_ != nullptr ? prev_ : Root();
  node_ = FindOrCreateChild(parent, name);
  t_current = node_;
  // Feed the opt-in event recorder (one relaxed load when off). The begin
  // event sits outside the measured interval, like the tree lookup.
  if (IsTraceRecording()) RecordBeginEvent(name_);
  timer_.Restart();  // exclude the tree lookup from the measured time
}

TraceSpan::~TraceSpan() {
  const uint64_t ns = static_cast<uint64_t>(timer_.ElapsedSeconds() * 1e9);
  if (IsTraceRecording()) RecordEndEvent(name_);
  node_->calls.fetch_add(1, std::memory_order_relaxed);
  node_->total_ns.fetch_add(ns, std::memory_order_relaxed);
  node_->calls_counter->Add(1);
  node_->latency_us->Record(ns / 1000);
  t_current = prev_;
}

std::vector<SpanStats> SpanTreeSnapshot() {
  std::lock_guard<std::mutex> lock(g_tree_mu);
  std::vector<SpanStats> out;
  CollectDepthFirst(*Root(), &out);
  return out;
}

void DumpSpanTree(std::FILE* out) {
  const std::vector<SpanStats> spans = SpanTreeSnapshot();
  if (spans.empty()) {
    std::fprintf(out, "(no spans recorded)\n");
    return;
  }
  for (const SpanStats& span : spans) {
    // Indent by depth; show the leaf name only (the path encodes the rest).
    const size_t slash = span.path.rfind('/');
    const std::string leaf =
        slash == std::string::npos ? span.path : span.path.substr(slash + 1);
    std::fprintf(out, "%*s%-40s calls=%llu total=%.3fms\n", span.depth * 2, "",
                 leaf.c_str(), static_cast<unsigned long long>(span.calls),
                 static_cast<double>(span.total_ns) * 1e-6);
  }
}

void ResetSpanTreeForTest() {
  std::lock_guard<std::mutex> lock(g_tree_mu);
  Root()->children.clear();
  t_current = nullptr;
}

}  // namespace ipin::obs
