#ifndef IPIN_OBS_TRACE_EVENTS_H_
#define IPIN_OBS_TRACE_EVENTS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

// Opt-in trace-EVENT recording: where obs/trace.h aggregates spans into a
// (path -> calls/total time) tree, this layer records the individual
// begin/end/instant events into per-thread ring buffers and exports them as
// a Chrome/Perfetto trace_event JSON file — the flame-graph view of one run
// (open with https://ui.perfetto.dev or chrome://tracing).
//
// Cost model: recording is OFF by default; every IPIN_TRACE_SPAN then pays
// one relaxed atomic load and a predictable branch on top of its existing
// work. While recording, each event is a bounds check plus a struct store
// into a thread-local ring buffer — no locks, no allocation on the hot path
// (buffers allocate once, on each thread's first event). When a ring fills
// it wraps, keeping the newest events and counting the overwritten ones.
//
// A background sampler thread (optional, on by default while recording)
// periodically snapshots the metrics registry and records changed counters
// and gauges as Chrome counter ("C") events, plus the process RSS — so the
// exported trace carries metric tracks alongside the span flame graph.

namespace ipin::obs {

struct TraceRecorderOptions {
  /// Events retained per thread; older events are overwritten when a
  /// thread's ring fills. ~48 bytes per slot.
  size_t events_per_thread = 1 << 16;
  /// Period of the metric-counter/RSS sampler thread; 0 disables it.
  int counter_sample_period_ms = 10;
};

namespace internal {
extern std::atomic<bool> g_trace_recording;
}  // namespace internal

/// True while a recording session is active. One relaxed load; this is the
/// only cost tracing adds to span hot paths when recording is off.
inline bool IsTraceRecording() {
  return internal::g_trace_recording.load(std::memory_order_relaxed);
}

/// Starts a recording session. Returns false (and changes nothing) if one
/// is already active. Thread-safe.
bool StartTraceRecording(const TraceRecorderOptions& options = {});

/// Stops the active session (joins the sampler thread). Recorded events
/// stay buffered for WriteChromeTrace until the next StartTraceRecording.
/// No-op when not recording.
void StopTraceRecording();

/// Records an instant event ("i" phase). `name` must outlive the recording
/// session (string literals in practice). No-op when not recording.
void RecordInstantEvent(const char* name);

/// Records one sample of a counter track ("C" phase). Same lifetime rule
/// for `name`. No-op when not recording.
void RecordCounterEvent(const char* name, double value);

/// Records one side of an async ("b"/"e") event pair. Async events carry a
/// 64-bit id; Chrome/Perfetto groups events of the same category by id onto
/// one async track, so every stage of one request renders as a single lane
/// no matter which thread (reader, worker, reload) recorded it — this is how
/// the serving layer turns a wire-propagated trace_id into one request lane.
/// Same lifetime rule for `name`. No-op when not recording.
void RecordAsyncBeginEvent(const char* name, uint64_t id);
void RecordAsyncEndEvent(const char* name, uint64_t id);

// Hooks for TraceSpan (trace.cc); callers use IPIN_TRACE_SPAN as before.
void RecordBeginEvent(const char* name);
void RecordEndEvent(const char* name);

/// Writes every buffered event as a Chrome trace_event JSON document
/// ({"traceEvents": [...]}, timestamps in microseconds). Begin/end events
/// are balanced per thread: ends with no matching begin (begun before the
/// session, or whose begin was overwritten by ring wrap-around) are
/// dropped, and spans still open at the end of the buffer get a synthetic
/// end so viewers render them. Returns false and logs on I/O failure.
/// Call after StopTraceRecording.
bool WriteChromeTrace(const std::string& path);

/// Counts for tests and the CLI summary line.
struct TraceEventStats {
  size_t recorded_events = 0;  // currently buffered (post-wrap)
  size_t dropped_events = 0;   // overwritten by ring wrap-around
  size_t threads = 0;          // threads that recorded at least one event
};
TraceEventStats GetTraceEventStats();

/// Discards all buffered events and per-thread buffers. Test-only: callers
/// must guarantee no recording session is active and no thread is mid-event.
void ResetTraceEventsForTest();

}  // namespace ipin::obs

#ifdef IPIN_OBS_DISABLED
#define IPIN_TRACE_INSTANT(name) \
  do {                           \
  } while (0)
#define IPIN_TRACE_ASYNC_BEGIN(name, id) \
  do {                                   \
  } while (0)
#define IPIN_TRACE_ASYNC_END(name, id) \
  do {                                 \
  } while (0)
#else
/// Records an instant event when a recording session is active.
#define IPIN_TRACE_INSTANT(name)                         \
  do {                                                   \
    if (::ipin::obs::IsTraceRecording()) {               \
      ::ipin::obs::RecordInstantEvent(name);             \
    }                                                    \
  } while (0)
/// Opens/closes one stage of an async (per-id) lane when recording.
#define IPIN_TRACE_ASYNC_BEGIN(name, id)                 \
  do {                                                   \
    if (::ipin::obs::IsTraceRecording()) {               \
      ::ipin::obs::RecordAsyncBeginEvent(name, id);      \
    }                                                    \
  } while (0)
#define IPIN_TRACE_ASYNC_END(name, id)                   \
  do {                                                   \
    if (::ipin::obs::IsTraceRecording()) {               \
      ::ipin::obs::RecordAsyncEndEvent(name, id);        \
    }                                                    \
  } while (0)
#endif  // IPIN_OBS_DISABLED

#endif  // IPIN_OBS_TRACE_EVENTS_H_
