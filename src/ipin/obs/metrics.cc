#include "ipin/obs/metrics.h"

namespace ipin::obs {
namespace {

template <typename T>
T* FindOrCreate(std::map<std::string, std::unique_ptr<T>>* metrics,
                const std::string& name) {
  auto it = metrics->find(name);
  if (it == metrics->end()) {
    it = metrics->emplace(name, std::make_unique<T>()).first;
  }
  return it->second.get();
}

}  // namespace

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* const registry = new MetricsRegistry();
  return *registry;  // intentionally leaked: usable during static teardown
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return FindOrCreate(&counters_, name);
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return FindOrCreate(&gauges_, name);
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return FindOrCreate(&histograms_, name);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace_back(name, counter->Value());
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace_back(name, gauge->Value());
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot h;
    h.name = name;
    h.count = histogram->Count();
    h.sum = histogram->Sum();
    h.min = histogram->Min();
    h.max = histogram->Max();
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      h.buckets[i] = histogram->BucketCount(i);
    }
    snapshot.histograms.push_back(std::move(h));
  }
  return snapshot;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) counter->Reset();
  for (const auto& [name, gauge] : gauges_) gauge->Reset();
  for (const auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace ipin::obs
