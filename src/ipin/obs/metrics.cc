#include "ipin/obs/metrics.h"

#include <algorithm>

namespace ipin::obs {
namespace {

template <typename T>
T* FindOrCreate(std::map<std::string, std::unique_ptr<T>>* metrics,
                const std::string& name) {
  auto it = metrics->find(name);
  if (it == metrics->end()) {
    it = metrics->emplace(name, std::make_unique<T>()).first;
  }
  return it->second.get();
}

}  // namespace

double HistogramSnapshot::Percentile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target sample, 1-based: q = 0 -> first, q = 1 -> last.
  const double target = q * (static_cast<double>(count) - 1.0) + 1.0;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    if (buckets[i] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += buckets[i];
    if (static_cast<double>(cumulative) < target) continue;
    // Interpolate within [lower, upper]: the target is sample number
    // (target - before) of this bucket's buckets[i] samples, assumed
    // uniformly spread across the bucket's value range.
    const double lower =
        i == 0 ? 0.0
               : static_cast<double>(Histogram::BucketUpperBound(i - 1)) + 1.0;
    const double upper = static_cast<double>(Histogram::BucketUpperBound(i));
    const double fraction =
        buckets[i] <= 1
            ? 0.0
            : (target - before - 1.0) / static_cast<double>(buckets[i] - 1);
    const double value = lower + fraction * (upper - lower);
    // The recorded extremes are exact; never report beyond them.
    return std::clamp(value, static_cast<double>(min),
                      static_cast<double>(max));
  }
  return static_cast<double>(max);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* const registry = new MetricsRegistry();
  return *registry;  // intentionally leaked: usable during static teardown
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return FindOrCreate(&counters_, name);
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return FindOrCreate(&gauges_, name);
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return FindOrCreate(&histograms_, name);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace_back(name, counter->Value());
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace_back(name, gauge->Value());
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot h;
    h.name = name;
    h.count = histogram->Count();
    h.sum = histogram->Sum();
    h.min = histogram->Min();
    h.max = histogram->Max();
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      h.buckets[i] = histogram->BucketCount(i);
    }
    snapshot.histograms.push_back(std::move(h));
  }
  return snapshot;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) counter->Reset();
  for (const auto& [name, gauge] : gauges_) gauge->Reset();
  for (const auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace ipin::obs
