#ifndef IPIN_OBS_WINDOW_H_
#define IPIN_OBS_WINDOW_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "ipin/obs/metrics.h"

// Windowed view over the cumulative metrics registry. The registry's
// counters and histograms only ever grow, which answers "how many since
// process start" but not "how fast right now" — the question a live
// dashboard (ipin_top, the extended stats verb) actually asks. The
// WindowedAggregator keeps a ring of periodic registry snapshots (one
// per-second bucket by default) and answers trailing-window questions by
// subtracting the snapshot nearest the window's far edge from the newest
// one: counter deltas become rates, histogram bucket deltas become a
// windowed histogram whose percentiles describe only the window's samples.
//
// Cost model: one registry snapshot per period on a background thread
// (milliseconds of work for hundreds of metrics); queries copy under the
// same mutex. Nothing here touches a metric hot path.

namespace ipin::obs {

struct WindowedAggregatorOptions {
  /// Snapshot period — the bucket width of the ring.
  int64_t sample_period_ms = 1000;
  /// Ring capacity; history beyond num_buckets * sample_period_ms is gone.
  size_t num_buckets = 64;
};

class WindowedAggregator {
 public:
  explicit WindowedAggregator(WindowedAggregatorOptions options = {});
  ~WindowedAggregator();

  WindowedAggregator(const WindowedAggregator&) = delete;
  WindowedAggregator& operator=(const WindowedAggregator&) = delete;

  /// Starts the background sampler thread (taking one sample immediately).
  /// Idempotent.
  void Start();
  /// Stops and joins the sampler. Buffered samples remain queryable.
  void Stop();

  /// Takes one snapshot right now (Start not required — tests and pull-based
  /// callers can drive the ring manually).
  void SampleNow();

  /// Per-second rate of `counter` over the trailing `window_s` seconds
  /// (delta between the newest sample and the one nearest the window edge,
  /// divided by their actual spacing). 0 with fewer than two samples or an
  /// unknown counter.
  double Rate(const std::string& counter, double window_s) const;

  /// Absolute increase of `counter` over the trailing window.
  uint64_t DeltaCount(const std::string& counter, double window_s) const;

  /// Histogram of only the samples recorded during the trailing window
  /// (bucket-wise delta). `min`/`max` are bucket-resolution estimates, not
  /// exact extremes — the cumulative extremes cannot be windowed. Empty
  /// (count 0) with fewer than two samples or an unknown histogram.
  HistogramSnapshot WindowedHistogram(const std::string& histogram,
                                      double window_s) const;

  /// Number of buffered samples (at most num_buckets).
  size_t sample_count() const;

 private:
  using Clock = std::chrono::steady_clock;
  struct Sample {
    Clock::time_point at;
    MetricsSnapshot snapshot;
  };

  void SampleLocked();
  /// Newest sample and the buffered sample closest to (newest - window_s);
  /// false when fewer than two samples exist.
  bool FindWindowLocked(double window_s, const Sample** oldest,
                        const Sample** newest) const;

  const WindowedAggregatorOptions options_;

  mutable std::mutex mu_;
  std::vector<Sample> ring_;  // ring of size options_.num_buckets
  size_t next_ = 0;           // absolute write index
  std::condition_variable cv_;
  std::thread sampler_;
  bool running_ = false;
  bool stop_ = false;
};

}  // namespace ipin::obs

#endif  // IPIN_OBS_WINDOW_H_
