#ifndef IPIN_OBS_LEDGER_H_
#define IPIN_OBS_LEDGER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ipin/common/json.h"

// Durable per-run manifests for batch jobs. Every CLI command, checkpointed
// build, and bench harness can open the process-wide RunLedger at startup
// and finish it on exit; with a ledger directory configured
// (--ledger_dir=DIR), Finish() persists one `run_<start_ms>_<pid>.ipinrun`
// file through safe_io. The file carries three frames, each a
// self-contained JSON object:
//
//   core      schema "ipin.run.v1": tool/command/args, start time, wall
//             seconds, outcome (ok | error | resumed), exit code,
//             provenance (git sha, hostname, cpus, threads, build type,
//             obs mode), input-file fingerprints (size + CRC32C of the
//             first MiB), output paths, peak RSS;
//   activity  recorded events (checkpoint saves/resumes, ...), per-phase
//             wall/CPU/work-unit timings from the progress engine, the
//             per-phase thread-pool profiles, and a heartbeat summary with
//             the most recent heartbeat lines;
//   metrics   a final snapshot of the metrics registry (counters, gauges,
//             histogram count/mean/p95).
//
// The frame split is what makes corrupt ledgers degrade instead of vanish:
// per-frame CRCs let LoadRunLedger drop a damaged activity or metrics
// frame and still return the core outcome record. Under IPIN_OBS_DISABLED
// the ledger stays fully functional (it is cold-path code); the activity
// and metrics frames are simply near-empty because the instrumentation
// feeding them compiled out.
//
// tools/ipin_runs lists, shows, and diffs these files.

namespace ipin::obs {

/// safe_io file type tag of ledger files ("IRUN" little-endian).
inline constexpr uint32_t kLedgerFileType = 0x4e555249;
inline constexpr uint32_t kLedgerVersion = 1;
inline constexpr char kLedgerFileSuffix[] = ".ipinrun";

/// Where and who: stamped into every ledger (and BENCH documents).
struct RunProvenance {
  std::string git_sha;     // IPIN_GIT_SHA env, else compile-time stamp
  std::string hostname;
  std::string build_type;  // CMAKE_BUILD_TYPE at compile time
  std::string obs_mode;    // "enabled" | "disabled"
  uint64_t cpus = 0;       // hardware concurrency
  uint64_t threads = 0;    // effective GlobalThreads()
};

/// Collects the current process's provenance.
RunProvenance CollectRunProvenance();

/// Configuration for RunLedger::Begin.
struct RunLedgerOptions {
  std::string dir;      // empty: track in memory, write nothing on Finish
  std::string tool;     // "ipin_cli", "bench", "bench_micro", ...
  std::string command;  // subcommand or experiment name
  std::string args;     // human-readable reconstruction of the invocation
};

/// The process-wide run manifest. All methods are thread-safe; recording
/// calls before Begin (library code running outside a ledgered command)
/// are silently dropped.
class RunLedger {
 public:
  static RunLedger& Global();

  /// Starts a new run record (resets any previous unfinished one).
  void Begin(RunLedgerOptions options);

  /// True between Begin and Finish.
  bool begun() const;

  /// Fingerprints `path` (size + CRC32C of the first MiB) into the inputs
  /// section; unreadable files record with size 0.
  void RecordInputFile(const std::string& path);

  /// Records an output artifact path.
  void RecordOutput(const std::string& path);

  /// Records a timestamped event ("checkpoint.resume", ...). Bounded: after
  /// kMaxEvents the ledger counts drops instead of growing.
  void RecordEvent(const std::string& kind, const std::string& detail);

  /// True when an event of `kind` was recorded since Begin.
  bool SawEvent(const std::string& kind) const;

  /// Closes the record: outcome is "error" when exit_code != 0, else
  /// "resumed" when a checkpoint.resume event was recorded, else "ok".
  /// With a ledger directory configured, publishes pool-phase and memory
  /// gauges, snapshots the registry, and writes the ledger file, returning
  /// its path ("" when writing is disabled or failed). Ends the record
  /// either way.
  std::string Finish(int exit_code);

  /// Wall seconds since Begin (for end-of-command summary lines).
  double WallSeconds() const;

  /// Output paths recorded so far.
  std::vector<std::string> Outputs() const;

  static constexpr size_t kMaxEvents = 200;

 private:
  struct Impl;
  Impl* impl_;  // leaked singleton state

  RunLedger();
};

// ---- reader side ----------------------------------------------------------

enum class LedgerLoadStatus {
  kOk,        // every frame verified
  kDegraded,  // core frame present, >= 1 later frame dropped
  kCorrupt,   // header bad or no readable core frame
  kMissing,   // file absent
};

struct LedgerLoadResult {
  LedgerLoadStatus status = LedgerLoadStatus::kMissing;
  size_t frames_total = 0;
  size_t frames_dropped = 0;
  std::string text;  // surviving frames merged into one JSON object
  JsonValue doc;     // parsed form of `text`

  bool usable() const {
    return status == LedgerLoadStatus::kOk ||
           status == LedgerLoadStatus::kDegraded;
  }
};

/// Reads a ledger file, dropping damaged frames (kDegraded) as long as the
/// core frame survives.
LedgerLoadResult LoadRunLedger(const std::string& path);

/// Ledger files in `dir` (full paths), sorted ascending by filename — i.e.
/// chronologically, thanks to the start-timestamp naming.
std::vector<std::string> ListRunLedgers(const std::string& dir);

}  // namespace ipin::obs

#endif  // IPIN_OBS_LEDGER_H_
