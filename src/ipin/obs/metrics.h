#ifndef IPIN_OBS_METRICS_H_
#define IPIN_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "ipin/common/timer.h"

// Process-wide metrics registry (counters, gauges, fixed-bucket histograms)
// for the IRS/oracle/IM pipeline. Hot paths use the IPIN_COUNTER_ADD /
// IPIN_LATENCY_SCOPE macros below, which cache the metric pointer in a
// function-local static so the registry lookup happens once per call site.
// Compiling with -DIPIN_OBS_DISABLED turns every macro into a no-op while
// keeping the registry classes available for explicit (cold-path) use.
//
// Metric-name conventions: dot-separated "<subsystem>.<component>.<what>",
// lowercase, with a unit suffix for time-valued histograms ("_us"), e.g.
// "irs.exact.edges_scanned", "sketch.vhll.merges", "oracle.sketch.query_us".

namespace ipin::obs {

/// Monotonically increasing event count. Lock-free; increments use relaxed
/// atomics (per-metric totals are exact, cross-metric ordering is not).
class Counter {
 public:
  void Add(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-written point-in-time value (memory bytes, entry totals, ...).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram over non-negative integer samples (latencies in
/// microseconds by convention). Buckets are powers of two: bucket 0 holds
/// the value 0 and bucket i (i >= 1) holds values in [2^(i-1), 2^i).
/// Lock-free: count/sum/min/max/buckets are all relaxed atomics.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 65;  // bit_width(uint64) + 1

  void Record(uint64_t value) {
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    AtomicMin(&min_, value);
    AtomicMax(&max_, value);
  }

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Smallest recorded sample; 0 when empty.
  uint64_t Min() const {
    const uint64_t m = min_.load(std::memory_order_relaxed);
    return m == UINT64_MAX ? 0 : m;
  }
  uint64_t Max() const { return max_.load(std::memory_order_relaxed); }
  uint64_t BucketCount(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// The bucket a sample lands in: 0 for 0, else bit_width(value).
  static size_t BucketIndex(uint64_t value) { return std::bit_width(value); }
  /// Inclusive upper bound of bucket i (2^i - 1; UINT64_MAX for the last).
  static uint64_t BucketUpperBound(size_t i) {
    return i >= 64 ? UINT64_MAX : (uint64_t{1} << i) - 1;
  }

  void Reset() {
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    min_.store(UINT64_MAX, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  }

 private:
  static void AtomicMin(std::atomic<uint64_t>* slot, uint64_t value) {
    uint64_t current = slot->load(std::memory_order_relaxed);
    while (value < current &&
           !slot->compare_exchange_weak(current, value,
                                        std::memory_order_relaxed)) {
    }
  }
  static void AtomicMax(std::atomic<uint64_t>* slot, uint64_t value) {
    uint64_t current = slot->load(std::memory_order_relaxed);
    while (value > current &&
           !slot->compare_exchange_weak(current, value,
                                        std::memory_order_relaxed)) {
    }
  }

  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
};

/// Point-in-time copy of one histogram.
struct HistogramSnapshot {
  std::string name;
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  std::array<uint64_t, Histogram::kNumBuckets> buckets{};

  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  /// Estimated q-quantile (q in [0, 1]), linearly interpolated inside the
  /// power-of-two bucket the target rank falls in and clamped to the
  /// recorded [min, max]. Exact when samples concentrate per bucket; off by
  /// at most the bucket width otherwise. 0 when empty.
  double Percentile(double q) const;

  double P50() const { return Percentile(0.50); }
  double P95() const { return Percentile(0.95); }
  double P99() const { return Percentile(0.99); }
};

/// Point-in-time copy of the whole registry; safe to read and serialize
/// while the live metrics keep moving.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;  // sorted by name
  std::vector<std::pair<std::string, double>> gauges;      // sorted by name
  std::vector<HistogramSnapshot> histograms;               // sorted by name
};

/// Registry of named metrics. Registration (Get*) takes a mutex; the
/// returned pointers are stable for the process lifetime, so hot paths
/// resolve a metric once and then touch only lock-free atomics.
class MetricsRegistry {
 public:
  /// The process-wide registry used by the IPIN_* macros.
  static MetricsRegistry& Global();

  /// Finds or creates the metric. Pointers remain valid forever; calling
  /// with the same name always returns the same pointer.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Copies every registered metric into a snapshot struct (sorted by name).
  MetricsSnapshot Snapshot() const;

  /// Zeroes every registered metric without invalidating pointers cached by
  /// call sites. Intended for tests and between-run resets.
  void ResetAll();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// RAII timer that records its elapsed time (in microseconds) into a
/// histogram when destroyed — the MetricsRegistry-reporting extension of
/// WallTimer. Stop() reports early and returns the elapsed seconds, which
/// lets bench harnesses keep the measured value for their tables while the
/// same sample lands in the run report.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram) : histogram_(histogram) {}
  ~ScopedTimer() {
    if (!stopped_) Report();
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Records the sample now (idempotent) and returns elapsed seconds.
  double Stop() {
    const double seconds = timer_.ElapsedSeconds();
    if (!stopped_) Report();
    return seconds;
  }

  double ElapsedSeconds() const { return timer_.ElapsedSeconds(); }

 private:
  void Report() {
    stopped_ = true;
    if (histogram_ != nullptr) {
      histogram_->Record(static_cast<uint64_t>(timer_.ElapsedMicros()));
    }
  }

  WallTimer timer_;
  Histogram* histogram_;
  bool stopped_ = false;
};

}  // namespace ipin::obs

#define IPIN_OBS_CONCAT_INNER(a, b) a##b
#define IPIN_OBS_CONCAT(a, b) IPIN_OBS_CONCAT_INNER(a, b)

#ifdef IPIN_OBS_DISABLED

#define IPIN_COUNTER_ADD(name, delta) \
  do {                                \
  } while (0)
#define IPIN_GAUGE_SET(name, value) \
  do {                              \
  } while (0)
#define IPIN_HISTOGRAM_RECORD(name, value) \
  do {                                     \
  } while (0)
#define IPIN_LATENCY_SCOPE(name)

#else  // !IPIN_OBS_DISABLED

/// Adds `delta` to the named global counter; the lookup is amortized away
/// via a function-local static pointer.
#define IPIN_COUNTER_ADD(name, delta)                            \
  do {                                                           \
    static ::ipin::obs::Counter* const ipin_obs_counter =        \
        ::ipin::obs::MetricsRegistry::Global().GetCounter(name); \
    ipin_obs_counter->Add(static_cast<uint64_t>(delta));         \
  } while (0)

/// Sets the named global gauge to `value`.
#define IPIN_GAUGE_SET(name, value)                            \
  do {                                                         \
    static ::ipin::obs::Gauge* const ipin_obs_gauge =          \
        ::ipin::obs::MetricsRegistry::Global().GetGauge(name); \
    ipin_obs_gauge->Set(static_cast<double>(value));           \
  } while (0)

/// Records one sample into the named global histogram.
#define IPIN_HISTOGRAM_RECORD(name, value)                         \
  do {                                                             \
    static ::ipin::obs::Histogram* const ipin_obs_hist =           \
        ::ipin::obs::MetricsRegistry::Global().GetHistogram(name); \
    ipin_obs_hist->Record(static_cast<uint64_t>(value));           \
  } while (0)

/// Times the enclosing scope and records the latency (microseconds) into
/// the named global histogram.
#define IPIN_LATENCY_SCOPE(name)                                          \
  static ::ipin::obs::Histogram* const IPIN_OBS_CONCAT(ipin_obs_hist_,    \
                                                       __LINE__) =        \
      ::ipin::obs::MetricsRegistry::Global().GetHistogram(name);          \
  ::ipin::obs::ScopedTimer IPIN_OBS_CONCAT(ipin_obs_latency_, __LINE__)(  \
      IPIN_OBS_CONCAT(ipin_obs_hist_, __LINE__))

#endif  // IPIN_OBS_DISABLED

#endif  // IPIN_OBS_METRICS_H_
