#ifndef IPIN_OBS_EXPORT_H_
#define IPIN_OBS_EXPORT_H_

#include <cstdio>
#include <string>
#include <vector>

#include "ipin/obs/metrics.h"
#include "ipin/obs/trace.h"

// Serialization of metric snapshots and span trees: pretty text for humans,
// JSON for machine-readable run reports, and Prometheus exposition text for
// scrapers. The JSON schema ("ipin.metrics.v1"):
//
//   {
//     "schema": "ipin.metrics.v1",
//     "counters":   {"irs.exact.edges_scanned": 123, ...},
//     "gauges":     {"sketch.vhll.total_entries": 4096.0, ...},
//     "histograms": {"oracle.sketch.query_us": {
//         "count": 5, "sum": 117, "min": 12, "max": 40, "mean": 23.4,
//         "buckets": [{"le": 15, "count": 3}, {"le": 63, "count": 2}]}},
//     "spans": [{"path": "irs.approx.compute", "depth": 0, "calls": 1,
//                "total_us": 1523.8}, ...]
//   }
//
// Histogram buckets are power-of-two ranges; only non-empty buckets are
// emitted, each with its inclusive upper bound `le`.

namespace ipin::obs {

/// Appends `s` to *out as a quoted, escaped JSON string literal. Shared by
/// every hand-rolled emitter in the obs layer (run reports, run ledgers).
void AppendJsonString(const std::string& s, std::string* out);

/// Appends `value` as a JSON number (%.10g); non-finite values become null.
void AppendJsonDouble(double value, std::string* out);

/// Pretty-prints a snapshot (counters, gauges, histogram summaries) to
/// `out`, one metric per line, sorted by name.
void WriteMetricsText(const MetricsSnapshot& snapshot, std::FILE* out);

/// Renders the snapshot + span tree as a self-contained JSON document.
std::string MetricsReportJson(const MetricsSnapshot& snapshot,
                              const std::vector<SpanStats>& spans);

/// Prometheus text exposition format. Metric names are sanitized to
/// [a-zA-Z_:][a-zA-Z0-9_:]* (every other character becomes '_'); counters
/// carry the conventional "_total" suffix; histograms export cumulative
/// "_bucket" series plus "_sum"/"_count" and companion _p50/_p95/_p99
/// gauges. One sample per line, label values escaped per the exposition
/// format.
std::string MetricsPrometheusText(const MetricsSnapshot& snapshot);

/// Snapshots the global registry and span tree and renders them as JSON.
std::string GlobalMetricsReportJson();

/// Writes GlobalMetricsReportJson() to `path` (overwriting). Returns false
/// and logs on I/O failure.
bool WriteMetricsReportFile(const std::string& path);

}  // namespace ipin::obs

#endif  // IPIN_OBS_EXPORT_H_
