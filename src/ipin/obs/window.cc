#include "ipin/obs/window.h"

#include <algorithm>
#include <cmath>

namespace ipin::obs {
namespace {

// Snapshot vectors are sorted by name (MetricsRegistry::Snapshot contract).
uint64_t CounterValue(const MetricsSnapshot& snapshot,
                      const std::string& name) {
  const auto it = std::lower_bound(
      snapshot.counters.begin(), snapshot.counters.end(), name,
      [](const auto& entry, const std::string& key) {
        return entry.first < key;
      });
  if (it == snapshot.counters.end() || it->first != name) return 0;
  return it->second;
}

const HistogramSnapshot* FindHistogram(const MetricsSnapshot& snapshot,
                                       const std::string& name) {
  const auto it = std::lower_bound(
      snapshot.histograms.begin(), snapshot.histograms.end(), name,
      [](const HistogramSnapshot& h, const std::string& key) {
        return h.name < key;
      });
  if (it == snapshot.histograms.end() || it->name != name) return nullptr;
  return &*it;
}

double SecondsBetween(std::chrono::steady_clock::time_point a,
                      std::chrono::steady_clock::time_point b) {
  return std::chrono::duration_cast<std::chrono::duration<double>>(b - a)
      .count();
}

}  // namespace

WindowedAggregator::WindowedAggregator(WindowedAggregatorOptions options)
    : options_(options) {
  ring_.reserve(std::max<size_t>(options_.num_buckets, 2));
}

WindowedAggregator::~WindowedAggregator() { Stop(); }

void WindowedAggregator::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (running_) return;
    running_ = true;
    stop_ = false;
    SampleLocked();  // t0 sample so the first window query has a far edge
  }
  sampler_ = std::thread([this] {
    std::unique_lock<std::mutex> lock(mu_);
    while (!stop_) {
      cv_.wait_for(lock, std::chrono::milliseconds(options_.sample_period_ms),
                   [this] { return stop_; });
      if (stop_) break;
      SampleLocked();
    }
  });
}

void WindowedAggregator::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    running_ = false;
    stop_ = true;
  }
  cv_.notify_all();
  if (sampler_.joinable()) sampler_.join();
}

void WindowedAggregator::SampleNow() {
  std::lock_guard<std::mutex> lock(mu_);
  SampleLocked();
}

void WindowedAggregator::SampleLocked() {
  Sample sample{Clock::now(), MetricsRegistry::Global().Snapshot()};
  const size_t capacity = std::max<size_t>(options_.num_buckets, 2);
  if (ring_.size() < capacity) {
    ring_.push_back(std::move(sample));
  } else {
    ring_[next_ % capacity] = std::move(sample);
  }
  ++next_;
}

size_t WindowedAggregator::sample_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

bool WindowedAggregator::FindWindowLocked(double window_s,
                                          const Sample** oldest,
                                          const Sample** newest) const {
  if (ring_.size() < 2) return false;
  const size_t capacity = std::max<size_t>(options_.num_buckets, 2);
  const Sample* latest =
      ring_.size() < capacity ? &ring_.back()
                              : &ring_[(next_ - 1) % capacity];
  const Clock::time_point edge =
      latest->at - std::chrono::duration_cast<Clock::duration>(
                       std::chrono::duration<double>(std::max(window_s, 0.0)));
  // Among samples strictly older than the newest, pick the one closest to
  // the window edge (an aged ring may no longer reach that far back).
  const Sample* best = nullptr;
  double best_distance = 0.0;
  for (const Sample& sample : ring_) {
    if (&sample == latest) continue;
    const double distance = std::abs(SecondsBetween(edge, sample.at));
    if (best == nullptr || distance < best_distance) {
      best = &sample;
      best_distance = distance;
    }
  }
  if (best == nullptr) return false;
  *oldest = best;
  *newest = latest;
  return true;
}

double WindowedAggregator::Rate(const std::string& counter,
                                double window_s) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Sample* oldest = nullptr;
  const Sample* newest = nullptr;
  if (!FindWindowLocked(window_s, &oldest, &newest)) return 0.0;
  const double span = SecondsBetween(oldest->at, newest->at);
  if (span <= 0.0) return 0.0;
  const uint64_t then = CounterValue(oldest->snapshot, counter);
  const uint64_t now = CounterValue(newest->snapshot, counter);
  if (now <= then) return 0.0;  // reset (or unknown) counters read as idle
  return static_cast<double>(now - then) / span;
}

uint64_t WindowedAggregator::DeltaCount(const std::string& counter,
                                        double window_s) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Sample* oldest = nullptr;
  const Sample* newest = nullptr;
  if (!FindWindowLocked(window_s, &oldest, &newest)) return 0;
  const uint64_t then = CounterValue(oldest->snapshot, counter);
  const uint64_t now = CounterValue(newest->snapshot, counter);
  return now > then ? now - then : 0;
}

HistogramSnapshot WindowedAggregator::WindowedHistogram(
    const std::string& histogram, double window_s) const {
  HistogramSnapshot delta;
  delta.name = histogram;
  std::lock_guard<std::mutex> lock(mu_);
  const Sample* oldest = nullptr;
  const Sample* newest = nullptr;
  if (!FindWindowLocked(window_s, &oldest, &newest)) return delta;
  const HistogramSnapshot* then = FindHistogram(oldest->snapshot, histogram);
  const HistogramSnapshot* now = FindHistogram(newest->snapshot, histogram);
  if (now == nullptr) return delta;
  for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    const uint64_t before = then == nullptr ? 0 : then->buckets[i];
    delta.buckets[i] = now->buckets[i] > before ? now->buckets[i] - before : 0;
    delta.count += delta.buckets[i];
  }
  const uint64_t sum_before = then == nullptr ? 0 : then->sum;
  delta.sum = now->sum > sum_before ? now->sum - sum_before : 0;
  // The cumulative min/max cannot be windowed; report bucket-resolution
  // bounds of the windowed samples so Percentile() clamps sensibly.
  for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    if (delta.buckets[i] == 0) continue;
    delta.min = i == 0 ? 0 : Histogram::BucketUpperBound(i - 1) + 1;
    break;
  }
  for (size_t i = Histogram::kNumBuckets; i > 0; --i) {
    if (delta.buckets[i - 1] == 0) continue;
    delta.max = Histogram::BucketUpperBound(i - 1);
    break;
  }
  return delta;
}

}  // namespace ipin::obs
