#include "ipin/graph/temporal_stats.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "ipin/common/check.h"
#include "ipin/common/string_util.h"

namespace ipin {

DistributionSummary SummarizeCounts(std::vector<double> counts) {
  DistributionSummary summary;
  if (counts.empty()) return summary;
  std::sort(counts.begin(), counts.end());
  const size_t n = counts.size();
  double total = 0.0;
  for (const double c : counts) total += c;
  summary.mean = total / static_cast<double>(n);
  summary.median = counts[n / 2];
  summary.p90 = counts[static_cast<size_t>(0.9 * (n - 1))];
  summary.p99 = counts[static_cast<size_t>(0.99 * (n - 1))];
  summary.max = counts.back();
  const size_t top = std::max<size_t>(1, n / 100);
  double top_mass = 0.0;
  for (size_t i = n - top; i < n; ++i) top_mass += counts[i];
  summary.top1_percent_share = total > 0.0 ? top_mass / total : 0.0;
  return summary;
}

TemporalStats ComputeTemporalStats(const InteractionGraph& graph,
                                   Duration reply_horizon) {
  IPIN_CHECK(graph.is_sorted());
  TemporalStats stats;
  stats.num_nodes = graph.num_nodes();
  stats.num_interactions = graph.num_interactions();
  if (graph.empty()) return stats;

  if (reply_horizon <= 0) reply_horizon = graph.WindowFromPercent(1.0);
  stats.reply_horizon = reply_horizon;

  const size_t n = graph.num_nodes();
  std::vector<double> out_count(n, 0.0);
  std::vector<double> in_count(n, 0.0);
  std::vector<std::unordered_set<NodeId>> out_neighbors(n);
  // For reciprocity: has v ever sent to u before time t?
  std::unordered_set<uint64_t> seen_edges;
  seen_edges.reserve(graph.num_interactions() * 2);
  // For reply detection: last time each node received anything.
  std::vector<Timestamp> last_received(n, kNoTimestamp);

  size_t reciprocated = 0;
  size_t replies = 0;
  for (const Interaction& e : graph.interactions()) {
    out_count[e.src] += 1.0;
    in_count[e.dst] += 1.0;
    out_neighbors[e.src].insert(e.dst);

    const uint64_t reverse_key =
        (static_cast<uint64_t>(e.dst) << 32) | e.src;
    if (seen_edges.count(reverse_key) > 0) ++reciprocated;
    seen_edges.insert((static_cast<uint64_t>(e.src) << 32) | e.dst);

    if (last_received[e.src] != kNoTimestamp &&
        e.time - last_received[e.src] <= reply_horizon) {
      ++replies;
    }
    last_received[e.dst] = e.time;
  }
  const double m = static_cast<double>(graph.num_interactions());
  stats.reciprocity = static_cast<double>(reciprocated) / m;
  stats.reply_fraction = static_cast<double>(replies) / m;

  stats.out_activity = SummarizeCounts(out_count);
  stats.in_activity = SummarizeCounts(in_count);
  std::vector<double> degrees(n, 0.0);
  for (size_t u = 0; u < n; ++u) {
    degrees[u] = static_cast<double>(out_neighbors[u].size());
  }
  stats.out_degree = SummarizeCounts(std::move(degrees));

  // Burstiness: coefficient of variation of consecutive inter-event times.
  if (graph.num_interactions() >= 3) {
    double sum = 0.0;
    double sum_sq = 0.0;
    size_t count = 0;
    for (size_t i = 1; i < graph.num_interactions(); ++i) {
      const double gap = static_cast<double>(graph.interaction(i).time -
                                             graph.interaction(i - 1).time);
      sum += gap;
      sum_sq += gap * gap;
      ++count;
    }
    const double mean = sum / static_cast<double>(count);
    const double var = sum_sq / static_cast<double>(count) - mean * mean;
    stats.burstiness_cv = mean > 0.0 ? std::sqrt(std::max(var, 0.0)) / mean
                                     : 0.0;
  }
  return stats;
}

std::string TemporalStatsReport(const TemporalStats& stats) {
  std::string out;
  out += StrFormat("nodes %zu, interactions %zu\n", stats.num_nodes,
                   stats.num_interactions);
  const auto line = [&out](const char* name, const DistributionSummary& d) {
    out += StrFormat(
        "%-13s mean %.2f median %.0f p90 %.0f p99 %.0f max %.0f "
        "top1%%-share %.2f\n",
        name, d.mean, d.median, d.p90, d.p99, d.max, d.top1_percent_share);
  };
  line("out-activity", stats.out_activity);
  line("in-activity", stats.in_activity);
  line("out-degree", stats.out_degree);
  out += StrFormat("reciprocity   %.3f\n", stats.reciprocity);
  out += StrFormat("reply-frac    %.3f (horizon %lld)\n", stats.reply_fraction,
                   static_cast<long long>(stats.reply_horizon));
  out += StrFormat("burstiness CV %.2f\n", stats.burstiness_cv);
  return out;
}

}  // namespace ipin
