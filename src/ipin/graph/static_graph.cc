#include "ipin/graph/static_graph.h"

#include <algorithm>
#include <tuple>

#include "ipin/common/check.h"
#include "ipin/common/memory.h"

namespace ipin {

StaticGraph StaticGraph::FromEdges(
    size_t num_nodes, std::vector<std::pair<NodeId, NodeId>> edges) {
  for (const auto& [u, v] : edges) {
    IPIN_CHECK_LT(u, num_nodes);
    IPIN_CHECK_LT(v, num_nodes);
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  StaticGraph g;
  g.offsets_.assign(num_nodes + 1, 0);
  g.targets_.resize(edges.size());
  for (const auto& [u, v] : edges) g.offsets_[u + 1]++;
  for (size_t i = 1; i <= num_nodes; ++i) g.offsets_[i] += g.offsets_[i - 1];
  size_t pos = 0;
  for (const auto& [u, v] : edges) {
    (void)u;
    g.targets_[pos++] = v;
  }
  return g;
}

StaticGraph StaticGraph::FromInteractions(const InteractionGraph& graph,
                                          bool reversed) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(graph.num_interactions());
  for (const Interaction& e : graph.interactions()) {
    if (reversed) {
      edges.emplace_back(e.dst, e.src);
    } else {
      edges.emplace_back(e.src, e.dst);
    }
  }
  return FromEdges(graph.num_nodes(), std::move(edges));
}

StaticGraph StaticGraph::Transpose() const {
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(num_edges());
  const size_t n = num_nodes();
  for (NodeId u = 0; u < n; ++u) {
    for (const NodeId v : Neighbors(u)) edges.emplace_back(v, u);
  }
  return FromEdges(n, std::move(edges));
}

bool StaticGraph::HasEdge(NodeId u, NodeId v) const {
  IPIN_CHECK_LT(u, num_nodes());
  const auto nbrs = Neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

size_t StaticGraph::MemoryUsageBytes() const {
  return VectorBytes(offsets_) + VectorBytes(targets_);
}

WeightedStaticGraph WeightedStaticGraph::FromEdges(
    size_t num_nodes, std::vector<std::tuple<NodeId, NodeId, double>> edges) {
  for (const auto& [u, v, w] : edges) {
    (void)w;
    IPIN_CHECK_LT(u, num_nodes);
    IPIN_CHECK_LT(v, num_nodes);
  }
  std::sort(edges.begin(), edges.end());
  // Keep the smallest weight per (src, dst); sorted order puts it first.
  std::vector<std::tuple<NodeId, NodeId, double>> dedup;
  dedup.reserve(edges.size());
  for (const auto& e : edges) {
    if (!dedup.empty() && std::get<0>(dedup.back()) == std::get<0>(e) &&
        std::get<1>(dedup.back()) == std::get<1>(e)) {
      continue;
    }
    dedup.push_back(e);
  }

  WeightedStaticGraph g;
  g.offsets_.assign(num_nodes + 1, 0);
  g.edges_.resize(dedup.size());
  for (const auto& [u, v, w] : dedup) {
    (void)v;
    (void)w;
    g.offsets_[u + 1]++;
  }
  for (size_t i = 1; i <= num_nodes; ++i) g.offsets_[i] += g.offsets_[i - 1];
  size_t pos = 0;
  for (const auto& [u, v, w] : dedup) {
    (void)u;
    g.edges_[pos++] = Edge{v, w};
  }
  return g;
}

size_t WeightedStaticGraph::MemoryUsageBytes() const {
  return VectorBytes(offsets_) + VectorBytes(edges_);
}

}  // namespace ipin
