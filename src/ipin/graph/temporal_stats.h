#ifndef IPIN_GRAPH_TEMPORAL_STATS_H_
#define IPIN_GRAPH_TEMPORAL_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "ipin/graph/interaction_graph.h"
#include "ipin/graph/types.h"

// Descriptive statistics of interaction networks, used to characterize
// datasets (and to validate that the synthetic stand-ins behave like the
// paper's corpora families: heavy-tailed activity, reply chains, bursts).

namespace ipin {

/// Quantiles and tail shape of a count distribution.
struct DistributionSummary {
  double mean = 0.0;
  double median = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
  /// Fraction of the total mass held by the top 1% of entries — a simple
  /// heavy-tail indicator (1% of senders produce X% of interactions).
  double top1_percent_share = 0.0;
};

/// Full temporal/topological profile of an interaction network.
struct TemporalStats {
  /// Out-interactions per node (activity).
  DistributionSummary out_activity;
  /// In-interactions per node (popularity).
  DistributionSummary in_activity;
  /// Distinct out-neighbours per node (static out-degree).
  DistributionSummary out_degree;
  /// Fraction of interactions (u, v, t) for which some (v, u, t') with
  /// t' < t exists — how often messages flow back along used edges.
  double reciprocity = 0.0;
  /// Fraction of interactions whose sender received some interaction within
  /// the preceding `reply_horizon` time units — the chain/forwarding signal
  /// that creates long information channels.
  double reply_fraction = 0.0;
  /// Horizon used for reply_fraction.
  Duration reply_horizon = 0;
  /// Coefficient of variation of inter-event times (1 = Poisson,
  /// > 1 = bursty).
  double burstiness_cv = 0.0;
  size_t num_nodes = 0;
  size_t num_interactions = 0;
};

/// Computes the full profile. `reply_horizon` defaults to 1% of the time
/// span when 0. O(m log m).
TemporalStats ComputeTemporalStats(const InteractionGraph& graph,
                                   Duration reply_horizon = 0);

/// Summarizes a vector of per-node counts.
DistributionSummary SummarizeCounts(std::vector<double> counts);

/// Multi-line human-readable report.
std::string TemporalStatsReport(const TemporalStats& stats);

}  // namespace ipin

#endif  // IPIN_GRAPH_TEMPORAL_STATS_H_
