#ifndef IPIN_GRAPH_GRAPH_IO_H_
#define IPIN_GRAPH_GRAPH_IO_H_

#include <optional>
#include <string>

#include "ipin/graph/interaction_graph.h"
#include "ipin/graph/static_graph.h"

namespace ipin {

/// Text formats for timestamped edge lists.
enum class EdgeListFormat {
  /// "src dst time" per line (SNAP temporal networks; also accepts commas).
  kSrcDstTime,
  /// "src dst weight time" per line (KONECT "out." files); weight is ignored.
  kKonect,
};

/// How malformed input lines are handled.
enum class ParseMode {
  /// Any malformed data line fails the whole load with the line number and
  /// reason (the historical behavior; default).
  kStrict,
  /// Malformed lines — and, because damaged logs often interleave garbage
  /// timestamps, lines whose timestamp runs backwards relative to the
  /// previous accepted line — are skipped, counted in the
  /// "graph.io.skipped_lines" metric, and summarized in one warning.
  /// Use to salvage a partially corrupted edge list.
  kLenient,
};

/// Loads an interaction network from a whitespace/comma-separated text file.
/// Lines starting with '#' or '%' are comments. Node ids may be arbitrary
/// non-negative integers; they are remapped to a dense [0, n) range in order
/// of first appearance. Interactions are sorted by time after loading.
/// Returns nullopt if the file cannot be opened or (in strict mode) any data
/// line is malformed (logs the offending line and reason).
std::optional<InteractionGraph> LoadInteractionsFromFile(
    const std::string& path, EdgeListFormat format = EdgeListFormat::kSrcDstTime,
    ParseMode mode = ParseMode::kStrict);

/// Writes "src dst time" lines (the kSrcDstTime format). Returns false on
/// I/O error.
bool SaveInteractionsToFile(const InteractionGraph& graph,
                            const std::string& path);

/// Writes a static graph in the DIMACS shortest-paths format the SKIM code
/// of Cohen et al. consumes: "p sp <n> <m>" header plus one "a u v 1" line
/// per edge (1-based node ids). Returns false on I/O error.
bool SaveDimacs(const StaticGraph& graph, const std::string& path);

/// Reads a DIMACS "p sp" file back into a static graph (arc weights are
/// ignored). Returns nullopt on open/parse failure.
std::optional<StaticGraph> LoadDimacs(const std::string& path);

}  // namespace ipin

#endif  // IPIN_GRAPH_GRAPH_IO_H_
