#ifndef IPIN_GRAPH_TRANSFORMS_H_
#define IPIN_GRAPH_TRANSFORMS_H_

#include <cstddef>
#include <vector>

#include "ipin/common/random.h"
#include "ipin/graph/interaction_graph.h"
#include "ipin/graph/types.h"

// Preprocessing transforms for interaction networks: the operations a
// practitioner applies before analysis (slicing an archive to a study
// period, subsampling for experimentation, restricting to a community,
// merging shards). Every transform returns a fresh, time-sorted graph.

namespace ipin {

/// Keeps interactions with time in [t_begin, t_end]; node-id space is
/// preserved.
InteractionGraph TimeSlice(const InteractionGraph& graph, Timestamp t_begin,
                           Timestamp t_end);

/// Keeps each interaction independently with probability `p` (thinning).
InteractionGraph SampleInteractions(const InteractionGraph& graph, double p,
                                    Rng* rng);

/// Keeps only interactions whose endpoints are both in `nodes`; node-id
/// space is preserved.
InteractionGraph InducedSubgraph(const InteractionGraph& graph,
                                 const std::vector<NodeId>& nodes);

/// Compacts the node-id space to [0, k): ids are renumbered in order of
/// first appearance; `old_to_new` (optional, may be null) receives the
/// mapping (kInvalidNode for untouched nodes).
InteractionGraph RelabelDense(const InteractionGraph& graph,
                              std::vector<NodeId>* old_to_new);

/// Concatenates two interaction sets over a shared node-id space and
/// re-sorts by time.
InteractionGraph MergeNetworks(const InteractionGraph& a,
                               const InteractionGraph& b);

/// Reverses every interaction's direction (timestamps kept). Note this is
/// NOT the temporal dual: time-respecting chains do not survive plain
/// direction reversal. See TemporalTranspose.
InteractionGraph ReverseDirections(const InteractionGraph& graph);

/// The temporal transpose: reverses directions AND mirrors timestamps
/// (t -> min_time + max_time - t). Time-respecting channels map exactly
/// onto reversed channels with preserved durations, so
/// sigma_omega(transpose) equals tau_omega(original) — who-can-u-reach
/// becomes who-can-reach-u.
InteractionGraph TemporalTranspose(const InteractionGraph& graph);

}  // namespace ipin

#endif  // IPIN_GRAPH_TRANSFORMS_H_
