#include "ipin/graph/transforms.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "ipin/common/check.h"

namespace ipin {

InteractionGraph TimeSlice(const InteractionGraph& graph, Timestamp t_begin,
                           Timestamp t_end) {
  IPIN_CHECK_LE(t_begin, t_end);
  std::vector<Interaction> kept;
  for (const Interaction& e : graph.interactions()) {
    if (e.time >= t_begin && e.time <= t_end) kept.push_back(e);
  }
  InteractionGraph result(graph.num_nodes(), std::move(kept));
  result.SortByTime();
  return result;
}

InteractionGraph SampleInteractions(const InteractionGraph& graph, double p,
                                    Rng* rng) {
  IPIN_CHECK(rng != nullptr);
  std::vector<Interaction> kept;
  for (const Interaction& e : graph.interactions()) {
    if (rng->NextBernoulli(p)) kept.push_back(e);
  }
  InteractionGraph result(graph.num_nodes(), std::move(kept));
  result.SortByTime();
  return result;
}

InteractionGraph InducedSubgraph(const InteractionGraph& graph,
                                 const std::vector<NodeId>& nodes) {
  std::vector<char> member(graph.num_nodes(), 0);
  for (const NodeId u : nodes) {
    IPIN_CHECK_LT(u, graph.num_nodes());
    member[u] = 1;
  }
  std::vector<Interaction> kept;
  for (const Interaction& e : graph.interactions()) {
    if (member[e.src] && member[e.dst]) kept.push_back(e);
  }
  InteractionGraph result(graph.num_nodes(), std::move(kept));
  result.SortByTime();
  return result;
}

InteractionGraph RelabelDense(const InteractionGraph& graph,
                              std::vector<NodeId>* old_to_new) {
  std::unordered_map<NodeId, NodeId> remap;
  std::vector<Interaction> edges;
  edges.reserve(graph.num_interactions());
  const auto intern = [&remap](NodeId raw) {
    const auto [it, inserted] =
        remap.emplace(raw, static_cast<NodeId>(remap.size()));
    (void)inserted;
    return it->second;
  };
  for (const Interaction& e : graph.interactions()) {
    const NodeId src = intern(e.src);
    const NodeId dst = intern(e.dst);
    edges.push_back(Interaction{src, dst, e.time});
  }
  if (old_to_new != nullptr) {
    old_to_new->assign(graph.num_nodes(), kInvalidNode);
    for (const auto& [raw, dense] : remap) (*old_to_new)[raw] = dense;
  }
  InteractionGraph result(remap.size(), std::move(edges));
  result.SortByTime();
  return result;
}

InteractionGraph MergeNetworks(const InteractionGraph& a,
                               const InteractionGraph& b) {
  std::vector<Interaction> edges;
  edges.reserve(a.num_interactions() + b.num_interactions());
  edges.insert(edges.end(), a.interactions().begin(), a.interactions().end());
  edges.insert(edges.end(), b.interactions().begin(), b.interactions().end());
  InteractionGraph result(std::max(a.num_nodes(), b.num_nodes()),
                          std::move(edges));
  result.SortByTime();
  return result;
}

InteractionGraph ReverseDirections(const InteractionGraph& graph) {
  std::vector<Interaction> edges;
  edges.reserve(graph.num_interactions());
  for (const Interaction& e : graph.interactions()) {
    edges.push_back(Interaction{e.dst, e.src, e.time});
  }
  InteractionGraph result(graph.num_nodes(), std::move(edges));
  result.SortByTime();
  return result;
}

InteractionGraph TemporalTranspose(const InteractionGraph& graph) {
  if (graph.empty()) return InteractionGraph(graph.num_nodes());
  Timestamp min_t = graph.interaction(0).time;
  Timestamp max_t = graph.interaction(0).time;
  for (const Interaction& e : graph.interactions()) {
    min_t = std::min(min_t, e.time);
    max_t = std::max(max_t, e.time);
  }
  const Timestamp mirror = min_t + max_t;
  std::vector<Interaction> edges;
  edges.reserve(graph.num_interactions());
  for (const Interaction& e : graph.interactions()) {
    edges.push_back(Interaction{e.dst, e.src, mirror - e.time});
  }
  InteractionGraph result(graph.num_nodes(), std::move(edges));
  result.SortByTime();
  return result;
}

}  // namespace ipin
