#include "ipin/graph/graph_io.h"

#include <cstdio>
#include <fstream>
#include <unordered_map>

#include "ipin/common/failpoint.h"
#include "ipin/common/logging.h"
#include "ipin/common/string_util.h"
#include "ipin/obs/metrics.h"
#include "ipin/obs/trace.h"

namespace ipin {
namespace {

bool IsCommentOrBlank(std::string_view line) {
  line = TrimString(line);
  return line.empty() || line[0] == '#' || line[0] == '%';
}

}  // namespace

std::optional<InteractionGraph> LoadInteractionsFromFile(
    const std::string& path, EdgeListFormat format, ParseMode mode) {
  IPIN_TRACE_SPAN("graph.load");
  if (IPIN_FAILPOINT("graph_io.load").fail) {
    LogError("graph_io: injected load failure for " + path);
    return std::nullopt;
  }
  std::ifstream in(path);
  if (!in) {
    LogError("cannot open interaction file: " + path);
    return std::nullopt;
  }

  std::unordered_map<int64_t, NodeId> remap;
  InteractionGraph graph;
  std::string line;
  size_t line_no = 0;
  size_t skipped_malformed = 0;
  size_t skipped_out_of_order = 0;
  // First skipped line numbers (lenient mode), capped so a report on a
  // thoroughly damaged file stays readable; enough to find the bad region.
  constexpr size_t kMaxReportedSkips = 10;
  std::vector<std::pair<size_t, const char*>> first_skips;
  const auto record_skip = [&first_skips, &line_no](const char* reason) {
    if (first_skips.size() < kMaxReportedSkips) {
      first_skips.emplace_back(line_no, reason);
    }
  };
  Timestamp prev_time = 0;
  bool saw_edge = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (IsCommentOrBlank(line)) continue;
    const auto fields = SplitString(line, " \t,");
    const size_t expected = format == EdgeListFormat::kKonect ? 4 : 3;
    if (fields.size() < expected) {
      if (mode == ParseMode::kLenient) {
        ++skipped_malformed;
        record_skip("too few fields");
        continue;
      }
      LogError(StrFormat("%s:%zu: expected %zu fields, got %zu", path.c_str(),
                         line_no, expected, fields.size()));
      return std::nullopt;
    }
    const auto src = ParseInt64(fields[0]);
    const auto dst = ParseInt64(fields[1]);
    const auto time =
        ParseInt64(fields[format == EdgeListFormat::kKonect ? 3 : 2]);
    if (!src || !dst || !time || *src < 0 || *dst < 0) {
      if (mode == ParseMode::kLenient) {
        ++skipped_malformed;
        record_skip("unparsable or negative field");
        continue;
      }
      LogError(StrFormat("%s:%zu: malformed edge line (unparsable or "
                         "negative field)",
                         path.c_str(), line_no));
      return std::nullopt;
    }
    // Lenient mode treats a timestamp running backwards as damage too: a
    // corrupted log line often parses as integers but carries a garbage
    // time. Strict mode keeps such lines (the post-load sort handles
    // legitimately unsorted files).
    if (mode == ParseMode::kLenient && saw_edge && *time < prev_time) {
      ++skipped_out_of_order;
      record_skip("timestamp runs backwards");
      continue;
    }
    prev_time = *time;
    saw_edge = true;
    const auto intern = [&remap](int64_t raw) {
      const auto [it, inserted] =
          remap.emplace(raw, static_cast<NodeId>(remap.size()));
      (void)inserted;
      return it->second;
    };
    // Intern in (src, dst) order; function-argument evaluation order is
    // unspecified, so do it in named statements.
    const NodeId src_id = intern(*src);
    const NodeId dst_id = intern(*dst);
    graph.AddInteraction(src_id, dst_id, *time);
  }
  graph.SortByTime();
  const size_t skipped = skipped_malformed + skipped_out_of_order;
  // Lenient means "tolerate damage", not "accept anything": a file where
  // every line was skipped is not an edge list.
  if (skipped > 0 && graph.num_interactions() == 0) {
    LogError(StrFormat("%s: no usable edge lines (%zu skipped)", path.c_str(),
                       skipped));
    return std::nullopt;
  }
  if (skipped > 0) {
    IPIN_COUNTER_ADD("graph.io.skipped_lines", skipped);
    LogWarning(StrFormat(
        "%s: skipped %zu lines in lenient mode (%zu malformed, %zu "
        "out of order)",
        path.c_str(), skipped, skipped_malformed, skipped_out_of_order));
    for (const auto& [skip_line, reason] : first_skips) {
      LogDebug(StrFormat("%s:%zu: skipped (%s)", path.c_str(), skip_line,
                         reason));
    }
    if (skipped > first_skips.size()) {
      LogDebug(StrFormat("%s: ... and %zu more skipped lines", path.c_str(),
                         skipped - first_skips.size()));
    }
  }
  IPIN_COUNTER_ADD("graph.io.interactions_loaded", graph.num_interactions());
  return graph;
}

bool SaveInteractionsToFile(const InteractionGraph& graph,
                            const std::string& path) {
  if (IPIN_FAILPOINT("graph_io.save").fail) {
    LogError("graph_io: injected save failure for " + path);
    return false;
  }
  std::ofstream out(path);
  if (!out) {
    LogError("cannot open file for writing: " + path);
    return false;
  }
  out << "# src dst time (" << graph.num_nodes() << " nodes, "
      << graph.num_interactions() << " interactions)\n";
  for (const Interaction& e : graph.interactions()) {
    out << e.src << ' ' << e.dst << ' ' << e.time << '\n';
  }
  return static_cast<bool>(out);
}

bool SaveDimacs(const StaticGraph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    LogError("cannot open file for writing: " + path);
    return false;
  }
  out << "p sp " << graph.num_nodes() << ' ' << graph.num_edges() << '\n';
  const size_t n = graph.num_nodes();
  for (NodeId u = 0; u < n; ++u) {
    for (const NodeId v : graph.Neighbors(u)) {
      out << "a " << (u + 1) << ' ' << (v + 1) << " 1\n";
    }
  }
  return static_cast<bool>(out);
}

std::optional<StaticGraph> LoadDimacs(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    LogError("cannot open DIMACS file: " + path);
    return std::nullopt;
  }
  size_t num_nodes = 0;
  std::vector<std::pair<NodeId, NodeId>> edges;
  std::string line;
  size_t line_no = 0;
  bool saw_header = false;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view trimmed = TrimString(line);
    if (trimmed.empty() || trimmed[0] == 'c') continue;
    const auto fields = SplitString(trimmed, " \t");
    if (fields[0] == "p") {
      if (fields.size() < 4 || fields[1] != "sp") {
        LogError(StrFormat("%s:%zu: bad DIMACS header", path.c_str(), line_no));
        return std::nullopt;
      }
      const auto n = ParseInt64(fields[2]);
      if (!n || *n < 0) return std::nullopt;
      num_nodes = static_cast<size_t>(*n);
      saw_header = true;
    } else if (fields[0] == "a") {
      if (!saw_header || fields.size() < 3) {
        LogError(StrFormat("%s:%zu: arc before header or too few fields",
                           path.c_str(), line_no));
        return std::nullopt;
      }
      const auto u = ParseInt64(fields[1]);
      const auto v = ParseInt64(fields[2]);
      if (!u || !v || *u < 1 || *v < 1 ||
          static_cast<size_t>(*u) > num_nodes ||
          static_cast<size_t>(*v) > num_nodes) {
        LogError(StrFormat("%s:%zu: arc endpoint out of range", path.c_str(),
                           line_no));
        return std::nullopt;
      }
      edges.emplace_back(static_cast<NodeId>(*u - 1),
                         static_cast<NodeId>(*v - 1));
    }
  }
  if (!saw_header) {
    LogError("DIMACS file has no 'p sp' header: " + path);
    return std::nullopt;
  }
  return StaticGraph::FromEdges(num_nodes, std::move(edges));
}

}  // namespace ipin
