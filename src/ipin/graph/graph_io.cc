#include "ipin/graph/graph_io.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "ipin/common/failpoint.h"
#include "ipin/common/logging.h"
#include "ipin/common/string_util.h"
#include "ipin/common/thread_pool.h"
#include "ipin/obs/metrics.h"
#include "ipin/obs/progress.h"
#include "ipin/obs/trace.h"

namespace ipin {
namespace {

bool IsCommentOrBlank(std::string_view line) {
  line = TrimString(line);
  return line.empty() || line[0] == '#' || line[0] == '%';
}

// One non-comment line of an edge list, parsed field-wise. Parsing is the
// expensive, order-independent part of a load, so it fans out across the
// pool; everything order-dependent (interning, the lenient out-of-order
// check, error precedence) happens in the sequential splice over these
// records, which therefore behaves exactly like the one-pass loader.
struct ParsedLine {
  int64_t src = 0;
  int64_t dst = 0;
  int64_t time = 0;
  // Line index within the chunk (0-based); the splice adds the chunk's
  // global offset to recover file line numbers for diagnostics.
  uint32_t local_line = 0;
  enum Kind : uint8_t { kOk, kTooFewFields, kUnparsable };
  Kind kind = kOk;
};

struct ParsedChunk {
  std::vector<ParsedLine> lines;  // comments/blanks omitted
  size_t num_lines = 0;           // all lines in the chunk, for numbering
};

// Splits `text` like repeated std::getline: on '\n' only (a '\r' stays in
// the line and fails integer parsing, same as the sequential loader), no
// empty trailing line after a final newline.
void ParseChunk(std::string_view text, EdgeListFormat format,
                ParsedChunk* out) {
  const size_t expected = format == EdgeListFormat::kKonect ? 4 : 3;
  const size_t time_field = format == EdgeListFormat::kKonect ? 3 : 2;
  size_t pos = 0;
  while (pos < text.size()) {
    const size_t eol = text.find('\n', pos);
    const std::string_view line =
        eol == std::string_view::npos ? text.substr(pos)
                                      : text.substr(pos, eol - pos);
    const auto local = static_cast<uint32_t>(out->num_lines++);
    pos = eol == std::string_view::npos ? text.size() : eol + 1;
    if (IsCommentOrBlank(line)) continue;
    ParsedLine parsed;
    parsed.local_line = local;
    const auto fields = SplitString(line, " \t,");
    if (fields.size() < expected) {
      parsed.kind = ParsedLine::kTooFewFields;
      parsed.src = static_cast<int64_t>(fields.size());  // for the message
      out->lines.push_back(parsed);
      continue;
    }
    const auto src = ParseInt64(fields[0]);
    const auto dst = ParseInt64(fields[1]);
    const auto time = ParseInt64(fields[time_field]);
    if (!src || !dst || !time || *src < 0 || *dst < 0) {
      parsed.kind = ParsedLine::kUnparsable;
      out->lines.push_back(parsed);
      continue;
    }
    parsed.src = *src;
    parsed.dst = *dst;
    parsed.time = *time;
    out->lines.push_back(parsed);
  }
}

}  // namespace

std::optional<InteractionGraph> LoadInteractionsFromFile(
    const std::string& path, EdgeListFormat format, ParseMode mode) {
  IPIN_TRACE_SPAN("graph.load");
  if (IPIN_FAILPOINT("graph_io.load").fail) {
    LogError("graph_io: injected load failure for " + path);
    return std::nullopt;
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    LogError("cannot open interaction file: " + path);
    return std::nullopt;
  }
  std::ostringstream buffer_stream;
  buffer_stream << in.rdbuf();
  const std::string buffer = std::move(buffer_stream).str();
  const std::string_view text(buffer);

  // Newline-aligned chunks, parsed in parallel.
  size_t num_chunks = GlobalThreads();
  constexpr size_t kMinChunkBytes = 1 << 16;
  if (num_chunks > 1 && text.size() / num_chunks < kMinChunkBytes) {
    num_chunks = std::max<size_t>(1, text.size() / kMinChunkBytes);
  }
  std::vector<size_t> starts;
  starts.push_back(0);
  for (size_t i = 1; i < num_chunks; ++i) {
    size_t cut = i * text.size() / num_chunks;
    if (cut <= starts.back()) continue;
    const size_t nl = text.find('\n', cut - 1);
    if (nl == std::string_view::npos) break;
    if (nl + 1 >= text.size()) break;
    if (nl + 1 > starts.back()) starts.push_back(nl + 1);
  }
  std::vector<ParsedChunk> chunks(starts.size());
  {
    IPIN_TRACE_SPAN("graph.load.parse");
    obs::ProgressPhase phase("graph.parse", text.size());  // units: bytes
    ParallelFor(0, starts.size(), 1, [&](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) {
        const size_t begin = starts[i];
        const size_t end = i + 1 < starts.size() ? starts[i + 1] : text.size();
        ParseChunk(text.substr(begin, end - begin), format, &chunks[i]);
        phase.Tick(end - begin);
      }
    });
  }

  // Sequential splice: global line numbers, strict-mode error precedence,
  // the lenient out-of-order filter, and first-seen node interning all
  // depend on file order.
  IPIN_TRACE_SPAN("graph.load.splice");
  std::unordered_map<int64_t, NodeId> remap;
  InteractionGraph graph;
  size_t skipped_malformed = 0;
  size_t skipped_out_of_order = 0;
  // First skipped line numbers (lenient mode), capped so a report on a
  // thoroughly damaged file stays readable; enough to find the bad region.
  constexpr size_t kMaxReportedSkips = 10;
  std::vector<std::pair<size_t, const char*>> first_skips;
  const auto record_skip = [&first_skips](size_t line_no, const char* reason) {
    if (first_skips.size() < kMaxReportedSkips) {
      first_skips.emplace_back(line_no, reason);
    }
  };
  const auto intern = [&remap](int64_t raw) {
    const auto [it, inserted] =
        remap.emplace(raw, static_cast<NodeId>(remap.size()));
    (void)inserted;
    return it->second;
  };
  Timestamp prev_time = 0;
  bool saw_edge = false;
  size_t line_offset = 0;
  for (const ParsedChunk& chunk : chunks) {
    for (const ParsedLine& parsed : chunk.lines) {
      const size_t line_no = line_offset + parsed.local_line + 1;
      if (parsed.kind == ParsedLine::kTooFewFields) {
        if (mode == ParseMode::kLenient) {
          ++skipped_malformed;
          record_skip(line_no, "too few fields");
          continue;
        }
        const size_t expected = format == EdgeListFormat::kKonect ? 4 : 3;
        LogError(StrFormat("%s:%zu: expected %zu fields, got %zu",
                           path.c_str(), line_no, expected,
                           static_cast<size_t>(parsed.src)));
        return std::nullopt;
      }
      if (parsed.kind == ParsedLine::kUnparsable) {
        if (mode == ParseMode::kLenient) {
          ++skipped_malformed;
          record_skip(line_no, "unparsable or negative field");
          continue;
        }
        LogError(StrFormat("%s:%zu: malformed edge line (unparsable or "
                           "negative field)",
                           path.c_str(), line_no));
        return std::nullopt;
      }
      // Lenient mode treats a timestamp running backwards as damage too: a
      // corrupted log line often parses as integers but carries a garbage
      // time. Strict mode keeps such lines (the post-load sort handles
      // legitimately unsorted files).
      if (mode == ParseMode::kLenient && saw_edge && parsed.time < prev_time) {
        ++skipped_out_of_order;
        record_skip(line_no, "timestamp runs backwards");
        continue;
      }
      prev_time = parsed.time;
      saw_edge = true;
      // Intern in (src, dst) order; function-argument evaluation order is
      // unspecified, so do it in named statements.
      const NodeId src_id = intern(parsed.src);
      const NodeId dst_id = intern(parsed.dst);
      graph.AddInteraction(src_id, dst_id, parsed.time);
    }
    line_offset += chunk.num_lines;
  }
  graph.SortByTime();
  const size_t skipped = skipped_malformed + skipped_out_of_order;
  // Lenient means "tolerate damage", not "accept anything": a file where
  // every line was skipped is not an edge list.
  if (skipped > 0 && graph.num_interactions() == 0) {
    LogError(StrFormat("%s: no usable edge lines (%zu skipped)", path.c_str(),
                       skipped));
    return std::nullopt;
  }
  if (skipped > 0) {
    IPIN_COUNTER_ADD("graph.io.skipped_lines", skipped);
    LogWarning(StrFormat(
        "%s: skipped %zu lines in lenient mode (%zu malformed, %zu "
        "out of order)",
        path.c_str(), skipped, skipped_malformed, skipped_out_of_order));
    for (const auto& [skip_line, reason] : first_skips) {
      LogDebug(StrFormat("%s:%zu: skipped (%s)", path.c_str(), skip_line,
                         reason));
    }
    if (skipped > first_skips.size()) {
      LogDebug(StrFormat("%s: ... and %zu more skipped lines", path.c_str(),
                         skipped - first_skips.size()));
    }
  }
  IPIN_COUNTER_ADD("graph.io.interactions_loaded", graph.num_interactions());
  return graph;
}

bool SaveInteractionsToFile(const InteractionGraph& graph,
                            const std::string& path) {
  if (IPIN_FAILPOINT("graph_io.save").fail) {
    LogError("graph_io: injected save failure for " + path);
    return false;
  }
  std::ofstream out(path);
  if (!out) {
    LogError("cannot open file for writing: " + path);
    return false;
  }
  out << "# src dst time (" << graph.num_nodes() << " nodes, "
      << graph.num_interactions() << " interactions)\n";
  for (const Interaction& e : graph.interactions()) {
    out << e.src << ' ' << e.dst << ' ' << e.time << '\n';
  }
  return static_cast<bool>(out);
}

bool SaveDimacs(const StaticGraph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    LogError("cannot open file for writing: " + path);
    return false;
  }
  out << "p sp " << graph.num_nodes() << ' ' << graph.num_edges() << '\n';
  const size_t n = graph.num_nodes();
  for (NodeId u = 0; u < n; ++u) {
    for (const NodeId v : graph.Neighbors(u)) {
      out << "a " << (u + 1) << ' ' << (v + 1) << " 1\n";
    }
  }
  return static_cast<bool>(out);
}

std::optional<StaticGraph> LoadDimacs(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    LogError("cannot open DIMACS file: " + path);
    return std::nullopt;
  }
  size_t num_nodes = 0;
  std::vector<std::pair<NodeId, NodeId>> edges;
  std::string line;
  size_t line_no = 0;
  bool saw_header = false;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view trimmed = TrimString(line);
    if (trimmed.empty() || trimmed[0] == 'c') continue;
    const auto fields = SplitString(trimmed, " \t");
    if (fields[0] == "p") {
      if (fields.size() < 4 || fields[1] != "sp") {
        LogError(StrFormat("%s:%zu: bad DIMACS header", path.c_str(), line_no));
        return std::nullopt;
      }
      const auto n = ParseInt64(fields[2]);
      if (!n || *n < 0) return std::nullopt;
      num_nodes = static_cast<size_t>(*n);
      saw_header = true;
    } else if (fields[0] == "a") {
      if (!saw_header || fields.size() < 3) {
        LogError(StrFormat("%s:%zu: arc before header or too few fields",
                           path.c_str(), line_no));
        return std::nullopt;
      }
      const auto u = ParseInt64(fields[1]);
      const auto v = ParseInt64(fields[2]);
      if (!u || !v || *u < 1 || *v < 1 ||
          static_cast<size_t>(*u) > num_nodes ||
          static_cast<size_t>(*v) > num_nodes) {
        LogError(StrFormat("%s:%zu: arc endpoint out of range", path.c_str(),
                           line_no));
        return std::nullopt;
      }
      edges.emplace_back(static_cast<NodeId>(*u - 1),
                         static_cast<NodeId>(*v - 1));
    }
  }
  if (!saw_header) {
    LogError("DIMACS file has no 'p sp' header: " + path);
    return std::nullopt;
  }
  return StaticGraph::FromEdges(num_nodes, std::move(edges));
}

}  // namespace ipin
