#ifndef IPIN_GRAPH_INTERACTION_GRAPH_H_
#define IPIN_GRAPH_INTERACTION_GRAPH_H_

#include <cstddef>
#include <string>
#include <vector>

#include "ipin/graph/types.h"

namespace ipin {

/// Summary statistics of an interaction network (the quantities of the
/// paper's Table 2).
struct InteractionGraphStats {
  size_t num_nodes = 0;
  size_t num_interactions = 0;
  Timestamp min_time = 0;
  Timestamp max_time = 0;
  /// max_time - min_time + 1 (0 for an empty network).
  Duration time_span = 0;
  /// Number of distinct (src, dst) pairs (edges of the flattened graph).
  size_t num_static_edges = 0;
};

/// An interaction network G(V, E): a set of nodes [0, num_nodes) plus a
/// multiset of timestamped directed interactions. This is the input to every
/// algorithm in the library.
///
/// Interactions are stored as a flat vector. Algorithms require the list to
/// be sorted ascending by time (`SortByTime`, checked by `is_sorted()`);
/// the one-pass IRS algorithms then iterate it in reverse.
class InteractionGraph {
 public:
  InteractionGraph() = default;

  /// Creates a network with `num_nodes` nodes and no interactions.
  explicit InteractionGraph(size_t num_nodes) : num_nodes_(num_nodes) {}

  /// Creates a network from a ready-made interaction list; grows the node
  /// count to cover every endpoint.
  InteractionGraph(size_t num_nodes, std::vector<Interaction> interactions);

  /// Appends one interaction; grows the node count to cover the endpoints.
  /// Invalidates sortedness if `time` is out of order.
  void AddInteraction(NodeId src, NodeId dst, Timestamp time);

  /// Sorts interactions ascending by (time, src, dst).
  void SortByTime();

  /// True if interactions are sorted ascending by time.
  bool is_sorted() const { return sorted_; }

  /// True if all timestamps are pairwise distinct (the paper's assumption;
  /// algorithms remain correct with ties, resolved by scan order).
  bool HasDistinctTimestamps() const;

  /// Perturbs tied timestamps into distinct ones by stable re-ranking:
  /// replaces each timestamp with its (0-based) rank in the sorted order.
  /// Preserves relative time order; afterwards timestamps are 0..m-1.
  void RankTimestamps();

  size_t num_nodes() const { return num_nodes_; }
  size_t num_interactions() const { return interactions_.size(); }
  bool empty() const { return interactions_.empty(); }

  const std::vector<Interaction>& interactions() const {
    return interactions_;
  }

  const Interaction& interaction(size_t i) const { return interactions_[i]; }

  /// Computes full summary statistics (O(m log m) for the distinct-edge
  /// count).
  InteractionGraphStats ComputeStats() const;

  /// Duration corresponding to `percent`% of the total time span, at least 1.
  /// This is how the paper expresses window lengths ("omega = 10%").
  Duration WindowFromPercent(double percent) const;

  /// Approximate heap footprint in bytes.
  size_t MemoryUsageBytes() const;

  /// Human-readable one-line description.
  std::string DebugString() const;

 private:
  size_t num_nodes_ = 0;
  std::vector<Interaction> interactions_;
  bool sorted_ = true;
};

}  // namespace ipin

#endif  // IPIN_GRAPH_INTERACTION_GRAPH_H_
