#ifndef IPIN_GRAPH_TEMPORAL_PATHS_H_
#define IPIN_GRAPH_TEMPORAL_PATHS_H_

#include <cstddef>
#include <vector>

#include "ipin/graph/interaction_graph.h"
#include "ipin/graph/types.h"

// Single-source temporal path problems on interaction networks, after
// Wu et al., "Path Problems in Temporal Graphs" (PVLDB 2014) — the general
// framework the paper's information channels specialize ("a special case of
// temporal paths"). All algorithms are one-pass over the time-sorted
// interaction list; contacts are instantaneous and paths must use strictly
// increasing timestamps, matching Definition 1 of the paper.

namespace ipin {

/// Result of a single-source earliest-arrival computation: for each node,
/// the earliest time a time-respecting path from the source can reach it,
/// or kNoTimestamp if unreachable. The source itself gets `t_start`.
struct EarliestArrivalResult {
  std::vector<Timestamp> arrival;
  /// Number of nodes reachable (excluding the source).
  size_t num_reachable = 0;
};

/// Earliest arrival from `source` using only interactions with timestamps
/// in [t_start, t_end]. O(m) single forward scan.
EarliestArrivalResult EarliestArrival(const InteractionGraph& graph,
                                      NodeId source, Timestamp t_start,
                                      Timestamp t_end);

/// Result of a single-target latest-departure computation: for each node,
/// the latest time a time-respecting path can leave it and still reach the
/// target by t_end, or kNoTimestamp if impossible. The target gets `t_end`.
struct LatestDepartureResult {
  std::vector<Timestamp> departure;
  size_t num_sources = 0;
};

/// Latest departure towards `target` using interactions in [t_start, t_end].
/// O(m) single reverse scan.
LatestDepartureResult LatestDeparture(const InteractionGraph& graph,
                                      NodeId target, Timestamp t_start,
                                      Timestamp t_end);

/// Result of a single-source fastest-path computation: for each node, the
/// minimum duration (t_last - t_first + 1) over all time-respecting paths
/// from the source, or -1 if unreachable. Note the direct correspondence to
/// the paper's IRS: fastest_duration(u, v) <= omega iff v is in
/// sigma_omega(u).
struct FastestPathResult {
  std::vector<Duration> duration;
  size_t num_reachable = 0;
};

/// Fastest (minimum-duration) paths from `source` over the whole network.
/// One forward scan keeping a Pareto frontier of (start, arrival) pairs per
/// node; expected cost O(m * frontier), frontier typically tiny.
FastestPathResult FastestPaths(const InteractionGraph& graph, NodeId source);

/// Result of a single-source shortest (fewest-hops) temporal path
/// computation within a time interval: hop count per node, or -1 if
/// unreachable. The source gets 0.
struct ShortestPathResult {
  std::vector<int64_t> hops;
  size_t num_reachable = 0;
};

/// Minimum number of interactions on any time-respecting path from `source`
/// using interactions in [t_start, t_end]. One forward scan keeping a
/// Pareto frontier of (arrival, hops) pairs per node.
ShortestPathResult ShortestTemporalPaths(const InteractionGraph& graph,
                                         NodeId source, Timestamp t_start,
                                         Timestamp t_end);

}  // namespace ipin

#endif  // IPIN_GRAPH_TEMPORAL_PATHS_H_
