#ifndef IPIN_GRAPH_TYPES_H_
#define IPIN_GRAPH_TYPES_H_

#include <cstdint>
#include <tuple>

namespace ipin {

/// Node identifier; nodes are dense integers [0, num_nodes).
using NodeId = uint32_t;

/// Timestamp of an interaction. The paper models timestamps as natural
/// numbers; we use a signed 64-bit value so that subtraction is safe and
/// sentinel values (kNoTimestamp) are representable.
using Timestamp = int64_t;

/// Maximal channel duration (the paper's omega), in timestamp units.
using Duration = int64_t;

/// Sentinel for "no timestamp" (used e.g. for never-activated nodes).
inline constexpr Timestamp kNoTimestamp = INT64_MIN;

/// Invalid node sentinel.
inline constexpr NodeId kInvalidNode = 0xffffffffu;

/// One directed, timestamped interaction (u, v, t): u contacted v at time t.
struct Interaction {
  NodeId src = 0;
  NodeId dst = 0;
  Timestamp time = 0;

  friend bool operator==(const Interaction& a, const Interaction& b) {
    return a.src == b.src && a.dst == b.dst && a.time == b.time;
  }

  /// Orders by (time, src, dst) — the canonical scan order.
  friend bool operator<(const Interaction& a, const Interaction& b) {
    return std::tie(a.time, a.src, a.dst) < std::tie(b.time, b.src, b.dst);
  }
};

}  // namespace ipin

#endif  // IPIN_GRAPH_TYPES_H_
