#ifndef IPIN_GRAPH_STATIC_GRAPH_H_
#define IPIN_GRAPH_STATIC_GRAPH_H_

#include <cstddef>
#include <span>
#include <vector>

#include "ipin/graph/interaction_graph.h"
#include "ipin/graph/types.h"

namespace ipin {

/// Immutable directed graph in CSR (compressed sparse row) form. This is the
/// "flattened" static view of an interaction network used by the static
/// baselines (PageRank, High Degree, SKIM): repeated interactions collapse to
/// a single edge and timestamps are dropped.
class StaticGraph {
 public:
  StaticGraph() = default;

  /// Builds from explicit edge pairs (parallel edges are deduplicated,
  /// self-loops kept as given).
  static StaticGraph FromEdges(size_t num_nodes,
                               std::vector<std::pair<NodeId, NodeId>> edges);

  /// Flattens an interaction network: one edge per distinct (src, dst).
  /// If `reversed`, edge direction is flipped (used for PageRank, which
  /// measures incoming importance — see Section 6 of the paper).
  static StaticGraph FromInteractions(const InteractionGraph& graph,
                                      bool reversed = false);

  size_t num_nodes() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }
  size_t num_edges() const { return targets_.size(); }

  /// Out-neighbours of `u` (sorted ascending, no duplicates).
  std::span<const NodeId> Neighbors(NodeId u) const {
    return std::span<const NodeId>(targets_.data() + offsets_[u],
                                   offsets_[u + 1] - offsets_[u]);
  }

  /// Out-degree of `u`.
  size_t OutDegree(NodeId u) const { return offsets_[u + 1] - offsets_[u]; }

  /// Returns the graph with every edge reversed.
  StaticGraph Transpose() const;

  /// True if edge (u, v) exists (binary search, O(log degree)).
  bool HasEdge(NodeId u, NodeId v) const;

  /// Approximate heap footprint in bytes.
  size_t MemoryUsageBytes() const;

 private:
  // offsets_ has num_nodes+1 entries; targets_[offsets_[u]..offsets_[u+1])
  // are u's out-neighbours.
  std::vector<size_t> offsets_;
  std::vector<NodeId> targets_;
};

/// Directed graph in CSR form with a double weight per edge. Used by the
/// ConTinEst baseline, where the weight parameterizes the transmission-time
/// distribution of the edge.
class WeightedStaticGraph {
 public:
  struct Edge {
    NodeId target = 0;
    double weight = 0.0;
  };

  WeightedStaticGraph() = default;

  /// Builds from (src, dst, weight) triples; duplicate (src, dst) keep the
  /// smallest weight (earliest transmission opportunity).
  static WeightedStaticGraph FromEdges(
      size_t num_nodes, std::vector<std::tuple<NodeId, NodeId, double>> edges);

  size_t num_nodes() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }
  size_t num_edges() const { return edges_.size(); }

  std::span<const Edge> Neighbors(NodeId u) const {
    return std::span<const Edge>(edges_.data() + offsets_[u],
                                 offsets_[u + 1] - offsets_[u]);
  }

  size_t OutDegree(NodeId u) const { return offsets_[u + 1] - offsets_[u]; }

  /// Approximate heap footprint in bytes.
  size_t MemoryUsageBytes() const;

 private:
  std::vector<size_t> offsets_;
  std::vector<Edge> edges_;
};

}  // namespace ipin

#endif  // IPIN_GRAPH_STATIC_GRAPH_H_
