#include "ipin/graph/interaction_graph.h"

#include <algorithm>
#include <cmath>

#include "ipin/common/check.h"
#include "ipin/common/memory.h"
#include "ipin/common/string_util.h"

namespace ipin {

InteractionGraph::InteractionGraph(size_t num_nodes,
                                   std::vector<Interaction> interactions)
    : num_nodes_(num_nodes), interactions_(std::move(interactions)) {
  for (const Interaction& e : interactions_) {
    const size_t needed = static_cast<size_t>(std::max(e.src, e.dst)) + 1;
    if (needed > num_nodes_) num_nodes_ = needed;
  }
  sorted_ = std::is_sorted(
      interactions_.begin(), interactions_.end(),
      [](const Interaction& a, const Interaction& b) { return a.time < b.time; });
}

void InteractionGraph::AddInteraction(NodeId src, NodeId dst, Timestamp time) {
  IPIN_CHECK_NE(src, kInvalidNode);
  IPIN_CHECK_NE(dst, kInvalidNode);
  if (sorted_ && !interactions_.empty() && time < interactions_.back().time) {
    sorted_ = false;
  }
  interactions_.push_back(Interaction{src, dst, time});
  const size_t needed = static_cast<size_t>(std::max(src, dst)) + 1;
  if (needed > num_nodes_) num_nodes_ = needed;
}

void InteractionGraph::SortByTime() {
  std::stable_sort(interactions_.begin(), interactions_.end(),
                   [](const Interaction& a, const Interaction& b) {
                     return a.time < b.time;
                   });
  sorted_ = true;
}

bool InteractionGraph::HasDistinctTimestamps() const {
  IPIN_CHECK(sorted_);
  for (size_t i = 1; i < interactions_.size(); ++i) {
    if (interactions_[i].time == interactions_[i - 1].time) return false;
  }
  return true;
}

void InteractionGraph::RankTimestamps() {
  IPIN_CHECK(sorted_);
  for (size_t i = 0; i < interactions_.size(); ++i) {
    interactions_[i].time = static_cast<Timestamp>(i);
  }
}

InteractionGraphStats InteractionGraph::ComputeStats() const {
  InteractionGraphStats stats;
  stats.num_nodes = num_nodes_;
  stats.num_interactions = interactions_.size();
  if (interactions_.empty()) return stats;

  Timestamp min_t = interactions_.front().time;
  Timestamp max_t = interactions_.front().time;
  for (const Interaction& e : interactions_) {
    min_t = std::min(min_t, e.time);
    max_t = std::max(max_t, e.time);
  }
  stats.min_time = min_t;
  stats.max_time = max_t;
  stats.time_span = max_t - min_t + 1;

  std::vector<uint64_t> pairs;
  pairs.reserve(interactions_.size());
  for (const Interaction& e : interactions_) {
    pairs.push_back((static_cast<uint64_t>(e.src) << 32) | e.dst);
  }
  std::sort(pairs.begin(), pairs.end());
  stats.num_static_edges =
      static_cast<size_t>(std::unique(pairs.begin(), pairs.end()) -
                          pairs.begin());
  return stats;
}

Duration InteractionGraph::WindowFromPercent(double percent) const {
  IPIN_CHECK_GE(percent, 0.0);
  if (interactions_.empty()) return 1;
  Timestamp min_t = interactions_.front().time;
  Timestamp max_t = interactions_.front().time;
  for (const Interaction& e : interactions_) {
    min_t = std::min(min_t, e.time);
    max_t = std::max(max_t, e.time);
  }
  const double span = static_cast<double>(max_t - min_t + 1);
  const Duration w = static_cast<Duration>(std::llround(span * percent / 100.0));
  return std::max<Duration>(w, 1);
}

size_t InteractionGraph::MemoryUsageBytes() const {
  return VectorBytes(interactions_);
}

std::string InteractionGraph::DebugString() const {
  return StrFormat("InteractionGraph(n=%zu, m=%zu, sorted=%d)", num_nodes_,
                   interactions_.size(), sorted_ ? 1 : 0);
}

}  // namespace ipin
