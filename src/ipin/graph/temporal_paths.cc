#include "ipin/graph/temporal_paths.h"

#include <algorithm>

#include "ipin/common/check.h"

namespace ipin {

EarliestArrivalResult EarliestArrival(const InteractionGraph& graph,
                                      NodeId source, Timestamp t_start,
                                      Timestamp t_end) {
  IPIN_CHECK(graph.is_sorted());
  IPIN_CHECK_LT(source, graph.num_nodes());
  EarliestArrivalResult result;
  result.arrival.assign(graph.num_nodes(), kNoTimestamp);
  result.arrival[source] = t_start;

  for (const Interaction& e : graph.interactions()) {
    if (e.time > t_end) break;  // sorted: nothing later qualifies
    if (e.time < t_start) continue;
    const Timestamp arr_u = result.arrival[e.src];
    if (arr_u == kNoTimestamp) continue;
    // The source may leave at its start time; transit requires a strictly
    // earlier arrival (strictly increasing path times).
    const bool usable = e.src == source ? e.time >= arr_u : e.time > arr_u;
    if (!usable) continue;
    if (result.arrival[e.dst] == kNoTimestamp) {
      result.arrival[e.dst] = e.time;  // first reach = earliest (sorted scan)
      if (e.dst != source) ++result.num_reachable;
    }
  }
  return result;
}

LatestDepartureResult LatestDeparture(const InteractionGraph& graph,
                                      NodeId target, Timestamp t_start,
                                      Timestamp t_end) {
  IPIN_CHECK(graph.is_sorted());
  IPIN_CHECK_LT(target, graph.num_nodes());
  LatestDepartureResult result;
  result.departure.assign(graph.num_nodes(), kNoTimestamp);
  result.departure[target] = t_end;

  const auto& edges = graph.interactions();
  for (size_t i = edges.size(); i > 0; --i) {
    const Interaction& e = edges[i - 1];
    if (e.time < t_start) break;  // sorted: nothing earlier qualifies
    if (e.time > t_end) continue;
    const Timestamp dep_v = result.departure[e.dst];
    if (dep_v == kNoTimestamp) continue;
    // Arriving at the target node itself completes the path; transit must
    // depart strictly later than this edge's time.
    const bool usable = e.dst == target ? e.time <= dep_v : e.time < dep_v;
    if (!usable) continue;
    if (result.departure[e.src] == kNoTimestamp) {
      result.departure[e.src] = e.time;  // first set = latest (reverse scan)
      if (e.src != target) ++result.num_sources;
    }
  }
  return result;
}

FastestPathResult FastestPaths(const InteractionGraph& graph, NodeId source) {
  IPIN_CHECK(graph.is_sorted());
  IPIN_CHECK_LT(source, graph.num_nodes());
  FastestPathResult result;
  result.duration.assign(graph.num_nodes(), -1);
  result.duration[source] = 0;  // empty path; self excluded from reachable

  // Pareto frontier per node: (start, arrival) pairs, ascending in both
  // (a kept pair has strictly larger start than every earlier-arrival pair).
  struct Frontier {
    std::vector<std::pair<Timestamp, Timestamp>> pairs;  // (start, arrival)
  };
  std::vector<Frontier> frontier(graph.num_nodes());

  for (const Interaction& e : graph.interactions()) {
    Timestamp best_start = kNoTimestamp;
    if (e.src == source) {
      best_start = e.time;  // a fresh path leaving the source now
    } else {
      // Latest start among paths that arrived strictly before e.time.
      const auto& pairs = frontier[e.src].pairs;
      for (size_t i = pairs.size(); i > 0; --i) {
        if (pairs[i - 1].second < e.time) {
          best_start = pairs[i - 1].first;
          break;
        }
      }
    }
    if (best_start == kNoTimestamp) continue;

    // Record the candidate (best_start, e.time) at the destination.
    std::vector<std::pair<Timestamp, Timestamp>>& pairs =
        frontier[e.dst].pairs;
    const bool dominated =
        !pairs.empty() && pairs.back().first >= best_start;
    if (!dominated) {
      pairs.emplace_back(best_start, e.time);
    }
    if (e.dst != source) {
      const Duration dur = e.time - best_start + 1;
      if (result.duration[e.dst] < 0 || dur < result.duration[e.dst]) {
        if (result.duration[e.dst] < 0) ++result.num_reachable;
        result.duration[e.dst] = dur;
      }
    }
  }
  return result;
}

ShortestPathResult ShortestTemporalPaths(const InteractionGraph& graph,
                                         NodeId source, Timestamp t_start,
                                         Timestamp t_end) {
  IPIN_CHECK(graph.is_sorted());
  IPIN_CHECK_LT(source, graph.num_nodes());
  ShortestPathResult result;
  result.hops.assign(graph.num_nodes(), -1);
  result.hops[source] = 0;

  // Pareto frontier per node: (arrival, hops) with arrival ascending and
  // hops strictly descending (a later arrival is only kept if cheaper).
  struct Frontier {
    std::vector<std::pair<Timestamp, int64_t>> pairs;  // (arrival, hops)
  };
  std::vector<Frontier> frontier(graph.num_nodes());

  for (const Interaction& e : graph.interactions()) {
    if (e.time > t_end) break;
    if (e.time < t_start) continue;

    int64_t hops_u = -1;
    if (e.src == source) hops_u = 0;
    // Transit: cheapest hop count among paths arriving strictly earlier.
    const auto& src_pairs = frontier[e.src].pairs;
    for (size_t i = src_pairs.size(); i > 0; --i) {
      if (src_pairs[i - 1].first < e.time) {
        const int64_t h = src_pairs[i - 1].second;
        if (hops_u < 0 || h < hops_u) hops_u = h;
        break;  // descending hops: the latest qualifying entry is cheapest
      }
    }
    if (hops_u < 0) continue;
    const int64_t hops_v = hops_u + 1;

    std::vector<std::pair<Timestamp, int64_t>>& pairs = frontier[e.dst].pairs;
    if (!pairs.empty() && pairs.back().second <= hops_v &&
        pairs.back().first <= e.time) {
      // Dominated: an earlier-or-equal arrival with fewer-or-equal hops.
    } else {
      if (!pairs.empty() && pairs.back().first == e.time) {
        pairs.back().second = std::min(pairs.back().second, hops_v);
      } else {
        pairs.emplace_back(e.time, hops_v);
      }
    }
    if (e.dst != source) {
      if (result.hops[e.dst] < 0) {
        result.hops[e.dst] = hops_v;
        ++result.num_reachable;
      } else {
        result.hops[e.dst] = std::min(result.hops[e.dst], hops_v);
      }
    }
  }
  return result;
}

}  // namespace ipin
