#ifndef IPIN_COMMON_RANDOM_H_
#define IPIN_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ipin {

/// Fast, seedable PRNG (xoshiro256++). Deterministic across platforms so
/// experiments are reproducible bit-for-bit from a seed. Not for crypto.
class Rng {
 public:
  /// Seeds the four-word state from a single 64-bit seed via splitmix64.
  explicit Rng(uint64_t seed = 0x1234567890abcdefULL);

  /// Returns the next 64 uniformly random bits.
  uint64_t NextUint64();

  /// Returns a uniform integer in [0, bound) using Lemire's method.
  /// `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Returns a uniform double in [0, 1).
  double NextDouble();

  /// Returns true with probability `p` (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Returns an exponentially distributed value with the given rate
  /// (mean 1/rate). `rate` must be > 0.
  double NextExponential(double rate);

  /// Returns a standard-normal deviate (Box-Muller; one value per call).
  double NextGaussian();

  /// Returns an integer drawn from a Zipf distribution on [0, n) with
  /// exponent `s` (rejection-inversion). `n` must be > 0, `s` > 0.
  uint64_t NextZipf(uint64_t n, double s);

  /// Fisher-Yates shuffles `values` in place.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    for (size_t i = values->size(); i > 1; --i) {
      const size_t j = static_cast<size_t>(NextBounded(i));
      std::swap((*values)[i - 1], (*values)[j]);
    }
  }

  /// Samples `k` distinct values uniformly from [0, n). If k >= n, returns
  /// all of [0, n) in random order.
  std::vector<uint64_t> SampleWithoutReplacement(uint64_t n, uint64_t k);

 private:
  uint64_t state_[4];
};

}  // namespace ipin

#endif  // IPIN_COMMON_RANDOM_H_
