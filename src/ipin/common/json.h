#ifndef IPIN_COMMON_JSON_H_
#define IPIN_COMMON_JSON_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

// Minimal JSON reader for the observability tooling: bench-history
// aggregation (tools/bench_history), the regression gate
// (tools/bench_compare), and tests that validate the JSON our exporters
// emit (ipin.metrics.v1 run reports, Chrome trace_event files). Parses the
// full JSON grammar into a value tree; it is a reader only — serialization
// stays with the hand-rolled emitters in obs/export.cc, which control
// their output format exactly.

namespace ipin {

/// One parsed JSON value. Object members keep document order; lookups are
/// linear (documents handled here are small).
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses a complete JSON document (surrounding whitespace allowed).
  /// Returns nullopt on any syntax error or trailing garbage.
  static std::optional<JsonValue> Parse(std::string_view text);

  /// Reads and parses `path`; nullopt on I/O or syntax error.
  static std::optional<JsonValue> ParseFile(const std::string& path);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; the value must hold the matching type (checked).
  bool bool_value() const;
  double number_value() const;
  const std::string& string_value() const;
  const std::vector<JsonValue>& array_items() const;
  const std::vector<std::pair<std::string, JsonValue>>& object_items() const;

  /// Object member by key, or nullptr if absent (or not an object).
  const JsonValue* Find(std::string_view key) const;

  /// Convenience: Find(key) if it holds the expected type, else fallback.
  double FindNumber(std::string_view key, double fallback) const;
  std::string FindString(std::string_view key,
                         const std::string& fallback) const;

  static JsonValue MakeNull() { return JsonValue(); }

 private:
  friend class JsonParser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

}  // namespace ipin

#endif  // IPIN_COMMON_JSON_H_
