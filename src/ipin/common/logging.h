#ifndef IPIN_COMMON_LOGGING_H_
#define IPIN_COMMON_LOGGING_H_

#include <string>

namespace ipin {

/// Severity levels for the process-wide logger.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
};

/// Sets the minimum severity that is emitted; defaults to kInfo.
void SetLogLevel(LogLevel level);

/// Returns the current minimum severity.
LogLevel GetLogLevel();

/// Writes one line to stderr as "[ipin][LEVEL] message" if `level` is at or
/// above the configured minimum. Thread-compatible (callers serialize).
void LogMessage(LogLevel level, const std::string& message);

/// Convenience wrappers.
void LogDebug(const std::string& message);
void LogInfo(const std::string& message);
void LogWarning(const std::string& message);
void LogError(const std::string& message);

}  // namespace ipin

#endif  // IPIN_COMMON_LOGGING_H_
