#ifndef IPIN_COMMON_LOGGING_H_
#define IPIN_COMMON_LOGGING_H_

#include <functional>
#include <string>

namespace ipin {

/// Severity levels for the process-wide logger.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
};

/// Sets the minimum severity that is emitted. The initial value comes from
/// the IPIN_LOG_LEVEL environment variable (any spelling ParseLogLevel
/// accepts), defaulting to kInfo when unset or unparsable.
void SetLogLevel(LogLevel level);

/// Returns the current minimum severity.
LogLevel GetLogLevel();

/// Parses "debug" / "info" / "warning" ("warn") / "error" or a numeric
/// level 0..3 (case-insensitive) into *level. Returns false (leaving
/// *level untouched) on anything else.
bool ParseLogLevel(const std::string& text, LogLevel* level);

/// Receives every emitted record instead of stderr; see SetLogSink.
using LogSink = std::function<void(LogLevel, const std::string&)>;

/// Redirects log output to `sink` (e.g. a test capture buffer); pass an
/// empty function to restore the default stderr writer. The sink is invoked
/// with the logger's mutex held, so it must not log re-entrantly.
void SetLogSink(LogSink sink);

/// Emits "[ipin][LEVEL] message" if `level` is at or above the configured
/// minimum. Thread-safe: the line is assembled off-lock and handed to
/// stderr (or the sink) as a single write under one process-wide mutex.
void LogMessage(LogLevel level, const std::string& message);

/// Convenience wrappers.
void LogDebug(const std::string& message);
void LogInfo(const std::string& message);
void LogWarning(const std::string& message);
void LogError(const std::string& message);

}  // namespace ipin

#endif  // IPIN_COMMON_LOGGING_H_
