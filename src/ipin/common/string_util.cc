#include "ipin/common/string_util.h"

#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace ipin {

std::vector<std::string_view> SplitString(std::string_view s,
                                          std::string_view delims) {
  std::vector<std::string_view> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || delims.find(s[i]) != std::string_view::npos) {
      if (i > start) out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view TrimString(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r' ||
                   s[b] == '\n')) {
    ++b;
  }
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r' ||
                   s[e - 1] == '\n')) {
    --e;
  }
  return s.substr(b, e - b);
}

std::optional<int64_t> ParseInt64(std::string_view s) {
  s = TrimString(s);
  if (s.empty() || s.size() > 30) return std::nullopt;
  char buf[32];
  s.copy(buf, s.size());
  buf[s.size()] = '\0';
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(buf, &end, 10);
  if (errno != 0 || end != buf + s.size()) return std::nullopt;
  return static_cast<int64_t>(v);
}

std::optional<double> ParseDouble(std::string_view s) {
  s = TrimString(s);
  if (s.empty() || s.size() > 60) return std::nullopt;
  char buf[64];
  s.copy(buf, s.size());
  buf[s.size()] = '\0';
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(buf, &end);
  if (errno != 0 || end != buf + s.size()) return std::nullopt;
  return v;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

}  // namespace ipin
