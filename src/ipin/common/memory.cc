#include "ipin/common/memory.h"

#include <cstdio>

namespace ipin {

size_t HashMapBytes(size_t num_elements, size_t num_buckets,
                    size_t element_bytes) {
  // libstdc++ unordered_map: one heap node per element holding the value,
  // a cached hash, and a next pointer, plus the bucket pointer array.
  const size_t node_overhead = 2 * sizeof(void*);
  return num_elements * (element_bytes + node_overhead) +
         num_buckets * sizeof(void*);
}

std::string FormatBytes(size_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f %s", value, units[unit]);
  return std::string(buf);
}

}  // namespace ipin
