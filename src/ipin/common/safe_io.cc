#include "ipin/common/safe_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "ipin/common/failpoint.h"
#include "ipin/common/logging.h"

namespace ipin {
namespace {

constexpr char kMagic[8] = {'I', 'P', 'I', 'N', 'S', 'A', 'F', '1'};
constexpr size_t kHeaderSize = sizeof(kMagic) + 3 * sizeof(uint32_t);
constexpr size_t kFrameHeaderSize = 3 * sizeof(uint32_t);

// CRC-32C (Castagnoli, reflected polynomial 0x82F63B78), byte-at-a-time
// table. Software only: portable, and these files are read/written once per
// build, so checksum throughput is nowhere near the critical path.
const uint32_t* Crc32cTable() {
  static const uint32_t* table = [] {
    auto* t = new uint32_t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78u : 0u);
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

template <typename T>
void AppendRaw(std::string* out, T value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T ReadRawAt(const std::string& buffer, size_t offset) {
  T value;
  std::memcpy(&value, buffer.data() + offset, sizeof(T));
  return value;
}

std::string DirectoryOf(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

uint32_t Crc32c(const void* data, size_t size, uint32_t seed) {
  const uint32_t* table = Crc32cTable();
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ bytes[i]) & 0xff];
  }
  return ~crc;
}

SafeFileWriter::SafeFileWriter(std::string path, uint32_t file_type,
                               uint32_t version)
    : path_(std::move(path)),
      tmp_path_(path_ + ".tmp." + std::to_string(::getpid())) {
  if (IPIN_FAILPOINT("safe_io.open").fail) {
    LogError("safe_io: injected open failure for " + path_);
    return;
  }
  fd_ = ::open(tmp_path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) {
    LogError("safe_io: cannot create temp file " + tmp_path_ + ": " +
             std::strerror(errno));
    return;
  }
  ok_ = true;

  std::string header;
  header.append(kMagic, sizeof(kMagic));
  AppendRaw<uint32_t>(&header, file_type);
  AppendRaw<uint32_t>(&header, version);
  AppendRaw<uint32_t>(&header, Crc32c(header));
  ok_ = WriteAll(header.data(), header.size());
}

SafeFileWriter::~SafeFileWriter() {
  if (!committed_) Abandon();
}

void SafeFileWriter::Abandon() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
    ::unlink(tmp_path_.c_str());
  }
  ok_ = false;
}

bool SafeFileWriter::WriteAll(const void* data, size_t size) {
  if (IPIN_FAILPOINT("safe_io.write").fail) {
    LogError("safe_io: injected write failure for " + path_);
    return false;
  }
  // Torn-write injection: silently persist only a prefix of this write and
  // report success, so the committed file ends up truncated mid-frame —
  // exactly what the reader's kTruncated detection must catch.
  const auto short_write = IPIN_FAILPOINT("safe_io.write.short");
  if (short_write.short_write != failpoint::Result::kNoLimit) {
    size = std::min(size, short_write.short_write);
  }
  const auto* bytes = static_cast<const char*>(data);
  while (size > 0) {
    const ssize_t written = ::write(fd_, bytes, size);
    if (written < 0) {
      if (errno == EINTR) continue;
      LogError("safe_io: write to " + tmp_path_ + " failed: " +
               std::strerror(errno));
      return false;
    }
    bytes += written;
    size -= static_cast<size_t>(written);
  }
  return true;
}

bool SafeFileWriter::AppendFrame(std::string_view payload) {
  if (!ok_) return false;
  std::string frame;
  frame.reserve(kFrameHeaderSize + payload.size());
  AppendRaw<uint32_t>(&frame, static_cast<uint32_t>(payload.size()));
  AppendRaw<uint32_t>(&frame, Crc32c(payload));
  AppendRaw<uint32_t>(&frame, Crc32c(frame));  // guards the length itself
  frame.append(payload);
  ok_ = WriteAll(frame.data(), frame.size());
  return ok_;
}

bool SafeFileWriter::Commit() {
  if (!ok_) {
    Abandon();
    return false;
  }
  // A crash_after_n failpoint here simulates the process dying after the
  // data was written but before it became durable/visible.
  if (IPIN_FAILPOINT("safe_io.commit").fail) {
    LogError("safe_io: injected commit failure for " + path_);
    Abandon();
    return false;
  }
  if (IPIN_FAILPOINT("safe_io.fsync").fail || ::fsync(fd_) != 0) {
    LogError("safe_io: fsync of " + tmp_path_ + " failed");
    Abandon();
    return false;
  }
  ::close(fd_);
  fd_ = -1;
  if (IPIN_FAILPOINT("safe_io.rename").fail ||
      ::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    LogError("safe_io: rename to " + path_ + " failed");
    ::unlink(tmp_path_.c_str());
    ok_ = false;
    return false;
  }
  committed_ = true;
  // Make the rename itself durable. Failure here is logged but not fatal:
  // the data file is complete and correctly named.
  const int dir_fd = ::open(DirectoryOf(path_).c_str(), O_RDONLY);
  if (dir_fd >= 0) {
    if (::fsync(dir_fd) != 0) {
      LogWarning("safe_io: directory fsync failed for " + path_);
    }
    ::close(dir_fd);
  }
  return true;
}

SafeOpenStatus SafeFileReader::Open(const std::string& path,
                                    uint32_t expected_type) {
  buffer_.clear();
  offset_ = 0;
  exhausted_ = false;
  if (IPIN_FAILPOINT("safe_io.read").fail) {
    LogError("safe_io: injected read failure for " + path);
    exhausted_ = true;
    return SafeOpenStatus::kMissing;
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    exhausted_ = true;
    return SafeOpenStatus::kMissing;
  }
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  buffer_ = std::move(contents);
  if (buffer_.size() < sizeof(kMagic)) {
    exhausted_ = true;
    return SafeOpenStatus::kTruncated;
  }
  if (std::memcmp(buffer_.data(), kMagic, sizeof(kMagic)) != 0) {
    exhausted_ = true;
    return SafeOpenStatus::kCorrupt;
  }
  if (buffer_.size() < kHeaderSize) {
    exhausted_ = true;
    return SafeOpenStatus::kTruncated;
  }
  const auto file_type = ReadRawAt<uint32_t>(buffer_, sizeof(kMagic));
  version_ = ReadRawAt<uint32_t>(buffer_, sizeof(kMagic) + 4);
  const auto header_crc = ReadRawAt<uint32_t>(buffer_, sizeof(kMagic) + 8);
  if (Crc32c(buffer_.data(), kHeaderSize - sizeof(uint32_t)) != header_crc ||
      file_type != expected_type) {
    exhausted_ = true;
    return SafeOpenStatus::kCorrupt;
  }
  offset_ = kHeaderSize;
  return SafeOpenStatus::kOk;
}

FrameStatus SafeFileReader::ReadFrame(std::string* payload) {
  payload->clear();
  if (exhausted_) return FrameStatus::kEndOfFile;
  if (offset_ == buffer_.size()) {
    exhausted_ = true;
    return FrameStatus::kEndOfFile;
  }
  if (buffer_.size() - offset_ < kFrameHeaderSize) {
    exhausted_ = true;
    return FrameStatus::kTruncated;
  }
  const auto payload_len = ReadRawAt<uint32_t>(buffer_, offset_);
  const auto payload_crc = ReadRawAt<uint32_t>(buffer_, offset_ + 4);
  const auto header_crc = ReadRawAt<uint32_t>(buffer_, offset_ + 8);
  if (Crc32c(buffer_.data() + offset_, 2 * sizeof(uint32_t)) != header_crc) {
    // The length field cannot be trusted, so later frames are unreachable.
    exhausted_ = true;
    return FrameStatus::kCorrupt;
  }
  if (buffer_.size() - offset_ - kFrameHeaderSize < payload_len) {
    exhausted_ = true;
    return FrameStatus::kTruncated;
  }
  const char* data = buffer_.data() + offset_ + kFrameHeaderSize;
  offset_ += kFrameHeaderSize + payload_len;
  if (Crc32c(static_cast<const void*>(data), payload_len) != payload_crc) {
    return FrameStatus::kCorrupt;  // this frame only; the next is intact
  }
  payload->assign(data, payload_len);
  return FrameStatus::kOk;
}

bool LooksLikeSafeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  char magic[sizeof(kMagic)];
  in.read(magic, sizeof(magic));
  return in.gcount() == sizeof(magic) &&
         std::memcmp(magic, kMagic, sizeof(kMagic)) == 0;
}

}  // namespace ipin
