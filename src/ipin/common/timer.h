#ifndef IPIN_COMMON_TIMER_H_
#define IPIN_COMMON_TIMER_H_

#include <chrono>

namespace ipin {

/// Simple monotonic wall-clock timer for experiment harnesses. For timing
/// that should land in the metrics registry, use ipin::obs::ScopedTimer
/// (obs/metrics.h), which wraps a WallTimer and reports into a histogram
/// on destruction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Resets the epoch to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction / last Restart, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed time in microseconds.
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

  /// Elapsed time in nanoseconds.
  double ElapsedNanos() const { return ElapsedSeconds() * 1e9; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ipin

#endif  // IPIN_COMMON_TIMER_H_
