#include "ipin/common/flags.h"

#include "ipin/common/string_util.h"

namespace ipin {

FlagMap FlagMap::Parse(int argc, char** argv) {
  FlagMap flags;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (StartsWith(arg, "--")) {
      const std::string_view body = arg.substr(2);
      const size_t eq = body.find('=');
      if (eq == std::string_view::npos) {
        flags.values_[std::string(body)] = "true";
      } else {
        flags.values_[std::string(body.substr(0, eq))] =
            std::string(body.substr(eq + 1));
      }
    } else {
      flags.positional_.emplace_back(arg);
    }
  }
  return flags;
}

std::string FlagMap::GetString(const std::string& name,
                               const std::string& def) const {
  const auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

int64_t FlagMap::GetInt(const std::string& name, int64_t def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  const auto parsed = ParseInt64(it->second);
  return parsed.has_value() ? *parsed : def;
}

double FlagMap::GetDouble(const std::string& name, double def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  const auto parsed = ParseDouble(it->second);
  return parsed.has_value() ? *parsed : def;
}

bool FlagMap::GetBool(const std::string& name, bool def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  return def;
}

bool FlagMap::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

}  // namespace ipin
