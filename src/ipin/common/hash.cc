#include "ipin/common/hash.h"

#include <cstring>

namespace ipin {

uint64_t HashBytes(const void* data, size_t length, uint64_t seed) {
  // MurmurHash64A (Austin Appleby, public domain), seeded.
  const uint64_t m = 0xc6a4a7935bd1e995ULL;
  const int r = 47;
  uint64_t h = seed ^ (length * m);

  const unsigned char* p = static_cast<const unsigned char*>(data);
  const unsigned char* end = p + (length / 8) * 8;
  while (p != end) {
    uint64_t k;
    std::memcpy(&k, p, 8);
    p += 8;
    k *= m;
    k ^= k >> r;
    k *= m;
    h ^= k;
    h *= m;
  }

  const size_t tail = length & 7;
  uint64_t k = 0;
  for (size_t i = 0; i < tail; ++i) {
    k |= static_cast<uint64_t>(p[i]) << (8 * i);
  }
  if (tail != 0) {
    h ^= k;
    h *= m;
  }

  h ^= h >> r;
  h *= m;
  h ^= h >> r;
  return h;
}

}  // namespace ipin
