#ifndef IPIN_COMMON_MEMORY_H_
#define IPIN_COMMON_MEMORY_H_

#include <cstddef>
#include <string>
#include <vector>

// Helpers for the analytic memory accounting used by the Table 4 harness.
// Structures report their own footprint via MemoryUsageBytes(); these
// utilities make the per-container arithmetic uniform.

namespace ipin {

/// Bytes held by a vector's allocation (capacity, not size). Accepts any
/// allocator so tally-accounted vectors (obs::TallyAllocator) work too.
template <typename T, typename Alloc>
size_t VectorBytes(const std::vector<T, Alloc>& v) {
  return v.capacity() * sizeof(T);
}

/// Approximate bytes of an unordered_map node store: per-element node
/// overhead (two pointers' worth on common implementations) plus the bucket
/// array. `num_elements`/`num_buckets` are taken from the live container.
size_t HashMapBytes(size_t num_elements, size_t num_buckets,
                    size_t element_bytes);

/// Pretty-prints a byte count as "12.3 MB" (binary units).
std::string FormatBytes(size_t bytes);

}  // namespace ipin

#endif  // IPIN_COMMON_MEMORY_H_
