#include "ipin/common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>

#include "ipin/common/check.h"
#include "ipin/common/string_util.h"
#include "ipin/obs/metrics.h"

namespace ipin {
namespace {

thread_local bool t_on_worker_thread = false;

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerMain(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

bool ThreadPool::OnWorkerThread() { return t_on_worker_thread; }

void ThreadPool::Submit(std::function<void()> fn) {
  IPIN_CHECK(fn != nullptr);
  [[maybe_unused]] size_t depth = 0;  // read only by the obs gauge below
  {
    std::lock_guard<std::mutex> lock(mu_);
    IPIN_CHECK(!stop_);
    tasks_.push_back(std::move(fn));
    depth = tasks_.size();
  }
  IPIN_COUNTER_ADD("parallel.pool.tasks", 1);
  IPIN_GAUGE_SET("parallel.pool.queue_depth", depth);
  cv_.notify_one();
}

void ThreadPool::WorkerMain() {
  t_on_worker_thread = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ set and queue drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
      IPIN_GAUGE_SET("parallel.pool.queue_depth", tasks_.size());
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t begin, size_t end, size_t grain,
                             const std::function<void(size_t, size_t)>& body) {
  if (end <= begin) return;
  if (grain == 0) grain = 1;
  const size_t n = end - begin;
  if (n <= grain || num_threads() <= 1 || OnWorkerThread()) {
    body(begin, end);
    return;
  }

  // Dynamic chunk claiming: small-ish chunks (a few per thread) balance
  // uneven per-index costs; `grain` bounds the scheduling overhead from
  // below.
  size_t chunk = (n + num_threads() * 4 - 1) / (num_threads() * 4);
  if (chunk < grain) chunk = grain;
  const size_t num_chunks = (n + chunk - 1) / chunk;

  struct ForState {
    std::atomic<size_t> next_chunk{0};
    size_t completed = 0;  // guarded by mu
    std::mutex mu;
    std::condition_variable done_cv;
    std::exception_ptr error;  // first failure, guarded by mu
  };
  auto state = std::make_shared<ForState>();

  const auto run_chunks = [state, begin, end, chunk, num_chunks, &body] {
    size_t ran = 0;
    for (;;) {
      const size_t c = state->next_chunk.fetch_add(1);
      if (c >= num_chunks) break;
      const size_t lo = begin + c * chunk;
      const size_t hi = std::min(end, lo + chunk);
      try {
        body(lo, hi);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state->mu);
        if (!state->error) state->error = std::current_exception();
      }
      ++ran;
    }
    if (ran > 0) {
      std::lock_guard<std::mutex> lock(state->mu);
      state->completed += ran;
      if (state->completed == num_chunks) state->done_cv.notify_all();
    }
  };

  // The caller claims chunks too, so at most num_threads() - 1 helpers are
  // useful; tasks that wake up after the range is exhausted are no-ops.
  const size_t helpers = std::min(num_threads() - 1, num_chunks - 1);
  for (size_t i = 0; i < helpers; ++i) Submit(run_chunks);
  run_chunks();

  std::unique_lock<std::mutex> lock(state->mu);
  state->done_cv.wait(lock, [&] { return state->completed == num_chunks; });
  if (state->error) std::rethrow_exception(state->error);
}

size_t HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

namespace {

size_t ResolveDefaultThreads() {
  if (const char* env = std::getenv("IPIN_THREADS")) {
    const auto parsed = ParseInt64(env);
    if (parsed.has_value() && *parsed > 0) return static_cast<size_t>(*parsed);
  }
  return HardwareThreads();
}

std::mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool;      // guarded by g_pool_mu
size_t g_pool_threads = 0;               // size of g_pool, guarded by g_pool_mu
std::atomic<size_t> g_threads{0};        // 0 = not resolved yet

}  // namespace

void SetGlobalThreads(size_t n) {
  g_threads.store(n == 0 ? ResolveDefaultThreads() : n,
                  std::memory_order_release);
}

size_t GlobalThreads() {
  size_t t = g_threads.load(std::memory_order_acquire);
  if (t != 0) return t;
  const size_t resolved = ResolveDefaultThreads();
  size_t expected = 0;
  g_threads.compare_exchange_strong(expected, resolved,
                                    std::memory_order_acq_rel);
  return g_threads.load(std::memory_order_acquire);
}

ThreadPool& GlobalPool() {
  const size_t want = GlobalThreads();
  std::lock_guard<std::mutex> lock(g_pool_mu);
  if (g_pool == nullptr || g_pool_threads != want) {
    g_pool.reset();  // join the old size's workers first
    g_pool = std::make_unique<ThreadPool>(want);
    g_pool_threads = want;
  }
  return *g_pool;
}

void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& body) {
  if (end <= begin) return;
  if (grain == 0) grain = 1;
  if (GlobalThreads() <= 1 || end - begin <= grain ||
      ThreadPool::OnWorkerThread()) {
    body(begin, end);
    return;
  }
  GlobalPool().ParallelFor(begin, end, grain, body);
}

}  // namespace ipin
