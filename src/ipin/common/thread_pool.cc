#include "ipin/common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <map>
#include <memory>

#include "ipin/common/check.h"
#include "ipin/common/string_util.h"
#include "ipin/obs/metrics.h"

namespace ipin {
namespace {

thread_local bool t_on_worker_thread = false;

// ---- per-phase accounting (see PoolPhaseProfile) --------------------------

thread_local const char* t_pool_phase = nullptr;

struct PhaseAccum {
  std::atomic<uint64_t> tasks{0};
  std::atomic<uint64_t> busy_us{0};
  std::atomic<uint64_t> max_task_us{0};
  std::atomic<uint64_t> wall_us{0};
};

std::mutex g_phase_mu;
// unique_ptr values: accumulator addresses stay valid outside the lock.
std::map<std::string, std::unique_ptr<PhaseAccum>>& PhaseAccums() {
  static auto* accums = new std::map<std::string, std::unique_ptr<PhaseAccum>>;
  return *accums;
}

uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// The accumulator for the calling thread's phase tag, or nullptr when
// untagged (or under IPIN_OBS_DISABLED: accounting compiles out, the two
// clock reads per chunk with it).
PhaseAccum* AccumForCurrentPhase() {
#ifdef IPIN_OBS_DISABLED
  return nullptr;
#else
  const char* phase = t_pool_phase;
  if (phase == nullptr) return nullptr;
  std::lock_guard<std::mutex> lock(g_phase_mu);
  auto& slot = PhaseAccums()[phase];
  if (slot == nullptr) slot = std::make_unique<PhaseAccum>();
  return slot.get();
#endif
}

void RecordChunk(PhaseAccum* acc, uint64_t elapsed_us) {
  acc->tasks.fetch_add(1, std::memory_order_relaxed);
  acc->busy_us.fetch_add(elapsed_us, std::memory_order_relaxed);
  uint64_t max = acc->max_task_us.load(std::memory_order_relaxed);
  while (elapsed_us > max &&
         !acc->max_task_us.compare_exchange_weak(max, elapsed_us,
                                                 std::memory_order_relaxed)) {
  }
}

// Clears the tag while a chunk body runs so a nested ParallelFor inside the
// body is not attributed twice (once as the outer chunk, once as its own
// section); restored even when the body throws.
class TagClearGuard {
 public:
  TagClearGuard() : saved_(t_pool_phase) { t_pool_phase = nullptr; }
  ~TagClearGuard() { t_pool_phase = saved_; }
  TagClearGuard(const TagClearGuard&) = delete;
  TagClearGuard& operator=(const TagClearGuard&) = delete;

 private:
  const char* saved_;
};

// Runs one chunk of a tagged section with timing; untagged runs go straight
// to the body.
void RunChunkAccounted(PhaseAccum* acc,
                       const std::function<void(size_t, size_t)>& body,
                       size_t lo, size_t hi) {
  if (acc == nullptr) {
    body(lo, hi);
    return;
  }
  TagClearGuard guard;
  const uint64_t t0 = NowMicros();
  body(lo, hi);
  RecordChunk(acc, NowMicros() - t0);
}

}  // namespace

const char* SetCurrentPoolPhase(const char* phase) {
  const char* prev = t_pool_phase;
  t_pool_phase = phase;
  return prev;
}

const char* CurrentPoolPhase() { return t_pool_phase; }

std::vector<PoolPhaseProfile> PoolPhaseProfiles() {
  std::vector<PoolPhaseProfile> out;
  std::lock_guard<std::mutex> lock(g_phase_mu);
  for (const auto& [name, acc] : PhaseAccums()) {
    PoolPhaseProfile p;
    p.name = name;
    p.tasks = acc->tasks.load(std::memory_order_relaxed);
    p.busy_us = acc->busy_us.load(std::memory_order_relaxed);
    p.max_task_us = acc->max_task_us.load(std::memory_order_relaxed);
    p.wall_us = acc->wall_us.load(std::memory_order_relaxed);
    out.push_back(std::move(p));
  }
  return out;
}

void ResetPoolPhaseProfiles() {
  std::lock_guard<std::mutex> lock(g_phase_mu);
  PhaseAccums().clear();
}

void PublishPoolPhaseMetrics() {
  for (const PoolPhaseProfile& p : PoolPhaseProfiles()) {
    const std::string prefix = "parallel.phase." + p.name;
    auto& registry = obs::MetricsRegistry::Global();
    registry.GetGauge(prefix + ".tasks")->Set(static_cast<double>(p.tasks));
    registry.GetGauge(prefix + ".busy_us")
        ->Set(static_cast<double>(p.busy_us));
    registry.GetGauge(prefix + ".max_task_us")
        ->Set(static_cast<double>(p.max_task_us));
    registry.GetGauge(prefix + ".wall_us")
        ->Set(static_cast<double>(p.wall_us));
    registry.GetGauge(prefix + ".imbalance")->Set(p.ImbalanceRatio());
    registry.GetGauge(prefix + ".utilization")
        ->Set(p.Utilization(GlobalThreads()));
  }
}

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerMain(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

bool ThreadPool::OnWorkerThread() { return t_on_worker_thread; }

void ThreadPool::Submit(std::function<void()> fn) {
  IPIN_CHECK(fn != nullptr);
  [[maybe_unused]] size_t depth = 0;  // read only by the obs gauge below
  {
    std::lock_guard<std::mutex> lock(mu_);
    IPIN_CHECK(!stop_);
    tasks_.push_back(std::move(fn));
    depth = tasks_.size();
  }
  IPIN_COUNTER_ADD("parallel.pool.tasks", 1);
  IPIN_GAUGE_SET("parallel.pool.queue_depth", depth);
  cv_.notify_one();
}

void ThreadPool::WorkerMain() {
  t_on_worker_thread = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ set and queue drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
      IPIN_GAUGE_SET("parallel.pool.queue_depth", tasks_.size());
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t begin, size_t end, size_t grain,
                             const std::function<void(size_t, size_t)>& body) {
  if (end <= begin) return;
  if (grain == 0) grain = 1;
  const size_t n = end - begin;
  PhaseAccum* const acc = AccumForCurrentPhase();
  if (n <= grain || num_threads() <= 1 || OnWorkerThread()) {
    if (acc != nullptr) {
      const uint64_t t0 = NowMicros();
      RunChunkAccounted(acc, body, begin, end);
      acc->wall_us.fetch_add(NowMicros() - t0, std::memory_order_relaxed);
    } else {
      body(begin, end);
    }
    return;
  }
  const uint64_t section_start = acc != nullptr ? NowMicros() : 0;

  // Dynamic chunk claiming: small-ish chunks (a few per thread) balance
  // uneven per-index costs; `grain` bounds the scheduling overhead from
  // below.
  size_t chunk = (n + num_threads() * 4 - 1) / (num_threads() * 4);
  if (chunk < grain) chunk = grain;
  const size_t num_chunks = (n + chunk - 1) / chunk;

  struct ForState {
    std::atomic<size_t> next_chunk{0};
    size_t completed = 0;  // guarded by mu
    std::mutex mu;
    std::condition_variable done_cv;
    std::exception_ptr error;  // first failure, guarded by mu
  };
  auto state = std::make_shared<ForState>();

  const auto run_chunks = [state, begin, end, chunk, num_chunks, &body, acc] {
    size_t ran = 0;
    for (;;) {
      const size_t c = state->next_chunk.fetch_add(1);
      if (c >= num_chunks) break;
      const size_t lo = begin + c * chunk;
      const size_t hi = std::min(end, lo + chunk);
      try {
        RunChunkAccounted(acc, body, lo, hi);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state->mu);
        if (!state->error) state->error = std::current_exception();
      }
      ++ran;
    }
    if (ran > 0) {
      std::lock_guard<std::mutex> lock(state->mu);
      state->completed += ran;
      if (state->completed == num_chunks) state->done_cv.notify_all();
    }
  };

  // The caller claims chunks too, so at most num_threads() - 1 helpers are
  // useful; tasks that wake up after the range is exhausted are no-ops.
  const size_t helpers = std::min(num_threads() - 1, num_chunks - 1);
  for (size_t i = 0; i < helpers; ++i) Submit(run_chunks);
  run_chunks();

  std::unique_lock<std::mutex> lock(state->mu);
  state->done_cv.wait(lock, [&] { return state->completed == num_chunks; });
  if (acc != nullptr) {
    acc->wall_us.fetch_add(NowMicros() - section_start,
                           std::memory_order_relaxed);
  }
  if (state->error) std::rethrow_exception(state->error);
}

size_t HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

namespace {

size_t ResolveDefaultThreads() {
  if (const char* env = std::getenv("IPIN_THREADS")) {
    const auto parsed = ParseInt64(env);
    if (parsed.has_value() && *parsed > 0) return static_cast<size_t>(*parsed);
  }
  return HardwareThreads();
}

std::mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool;      // guarded by g_pool_mu
size_t g_pool_threads = 0;               // size of g_pool, guarded by g_pool_mu
std::atomic<size_t> g_threads{0};        // 0 = not resolved yet

}  // namespace

void SetGlobalThreads(size_t n) {
  g_threads.store(n == 0 ? ResolveDefaultThreads() : n,
                  std::memory_order_release);
}

size_t GlobalThreads() {
  size_t t = g_threads.load(std::memory_order_acquire);
  if (t != 0) return t;
  const size_t resolved = ResolveDefaultThreads();
  size_t expected = 0;
  g_threads.compare_exchange_strong(expected, resolved,
                                    std::memory_order_acq_rel);
  return g_threads.load(std::memory_order_acquire);
}

ThreadPool& GlobalPool() {
  const size_t want = GlobalThreads();
  std::lock_guard<std::mutex> lock(g_pool_mu);
  if (g_pool == nullptr || g_pool_threads != want) {
    g_pool.reset();  // join the old size's workers first
    g_pool = std::make_unique<ThreadPool>(want);
    g_pool_threads = want;
  }
  return *g_pool;
}

void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& body) {
  if (end <= begin) return;
  if (grain == 0) grain = 1;
  if (GlobalThreads() <= 1 || end - begin <= grain ||
      ThreadPool::OnWorkerThread()) {
    PhaseAccum* const acc = AccumForCurrentPhase();
    if (acc != nullptr) {
      const uint64_t t0 = NowMicros();
      RunChunkAccounted(acc, body, begin, end);
      acc->wall_us.fetch_add(NowMicros() - t0, std::memory_order_relaxed);
    } else {
      body(begin, end);
    }
    return;
  }
  GlobalPool().ParallelFor(begin, end, grain, body);
}

}  // namespace ipin
