#include "ipin/common/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "ipin/common/check.h"

namespace ipin {

/// Recursive-descent parser over a string_view; depth-limited so corrupt
/// deeply-nested input cannot blow the stack.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> ParseDocument() {
    JsonValue value;
    if (!ParseValue(&value, 0)) return std::nullopt;
    SkipWhitespace();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return false;
    SkipWhitespace();
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->type_ = JsonValue::Type::kString;
        return ParseString(&out->string_);
      case 't':
        out->type_ = JsonValue::Type::kBool;
        out->bool_ = true;
        return ConsumeLiteral("true");
      case 'f':
        out->type_ = JsonValue::Type::kBool;
        out->bool_ = false;
        return ConsumeLiteral("false");
      case 'n':
        out->type_ = JsonValue::Type::kNull;
        return ConsumeLiteral("null");
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out, int depth) {
    out->type_ = JsonValue::Type::kObject;
    ++pos_;  // '{'
    SkipWhitespace();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWhitespace();
      std::string key;
      if (Peek() != '"' || !ParseString(&key)) return false;
      SkipWhitespace();
      if (Peek() != ':') return false;
      ++pos_;
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) return false;
      out->object_.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool ParseArray(JsonValue* out, int depth) {
    out->type_ = JsonValue::Type::kArray;
    ++pos_;  // '['
    SkipWhitespace();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) return false;
      out->array_.push_back(std::move(value));
      SkipWhitespace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) return false;
        const char esc = text_[pos_ + 1];
        pos_ += 2;
        switch (esc) {
          case '"':
            out->push_back('"');
            break;
          case '\\':
            out->push_back('\\');
            break;
          case '/':
            out->push_back('/');
            break;
          case 'b':
            out->push_back('\b');
            break;
          case 'f':
            out->push_back('\f');
            break;
          case 'n':
            out->push_back('\n');
            break;
          case 'r':
            out->push_back('\r');
            break;
          case 't':
            out->push_back('\t');
            break;
          case 'u': {
            unsigned code = 0;
            if (!ParseHex4(&code)) return false;
            AppendUtf8(code, out);
            break;
          }
          default:
            return false;
        }
        continue;
      }
      // Raw control characters are invalid inside JSON strings.
      if (static_cast<unsigned char>(c) < 0x20) return false;
      out->push_back(c);
      ++pos_;
    }
    return false;  // unterminated
  }

  bool ParseHex4(unsigned* code) {
    if (pos_ + 4 > text_.size()) return false;
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<size_t>(i)];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return false;
      }
    }
    pos_ += 4;
    *code = value;
    return true;
  }

  // Encodes a BMP code point (surrogate pairs are kept as-is: the exporters
  // never emit them, so we do not reassemble them here).
  static void AppendUtf8(unsigned code, std::string* out) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    // JSON forbids leading zeros: after the sign, either a lone '0' or a
    // nonzero-led digit run (strtod below is laxer, so check here).
    if (Peek() == '0' && pos_ + 1 < text_.size() &&
        std::isdigit(static_cast<unsigned char>(text_[pos_ + 1]))) {
      return false;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return false;
    out->type_ = JsonValue::Type::kNumber;
    out->number_ = value;
    return true;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  // One-character lookahead; '\0' at end of input.
  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  std::string_view text_;
  size_t pos_ = 0;
};

std::optional<JsonValue> JsonValue::Parse(std::string_view text) {
  return JsonParser(text).ParseDocument();
}

std::optional<JsonValue> JsonValue::ParseFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  std::string content;
  char buffer[1 << 16];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    content.append(buffer, n);
  }
  const bool read_ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!read_ok) return std::nullopt;
  return Parse(content);
}

bool JsonValue::bool_value() const {
  IPIN_CHECK(is_bool());
  return bool_;
}

double JsonValue::number_value() const {
  IPIN_CHECK(is_number());
  return number_;
}

const std::string& JsonValue::string_value() const {
  IPIN_CHECK(is_string());
  return string_;
}

const std::vector<JsonValue>& JsonValue::array_items() const {
  IPIN_CHECK(is_array());
  return array_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::object_items()
    const {
  IPIN_CHECK(is_object());
  return object_;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [name, value] : object_) {
    if (name == key) return &value;
  }
  return nullptr;
}

double JsonValue::FindNumber(std::string_view key, double fallback) const {
  const JsonValue* value = Find(key);
  return value != nullptr && value->is_number() ? value->number_value()
                                                : fallback;
}

std::string JsonValue::FindString(std::string_view key,
                                  const std::string& fallback) const {
  const JsonValue* value = Find(key);
  return value != nullptr && value->is_string() ? value->string_value()
                                                : fallback;
}

}  // namespace ipin
