#ifndef IPIN_COMMON_HASH_H_
#define IPIN_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

// Deterministic 64-bit hashing used throughout the library. Sketch accuracy
// (HyperLogLog, bottom-k) depends on these hashes behaving like uniform
// random 64-bit values; the mixers below are the splitmix64 finalizer and a
// murmur-inspired byte hash, both of which pass standard avalanche tests.

namespace ipin {

/// splitmix64 finalizer: bijective strong mixer for 64-bit integers.
constexpr uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Hashes a 64-bit value with an optional seed; different seeds give
/// independent-looking hash functions (used for per-sketch salting).
constexpr uint64_t Hash64(uint64_t value, uint64_t seed = 0) {
  return Mix64(value ^ Mix64(seed ^ 0x8f462907e7e9faecULL));
}

/// Hashes an arbitrary byte string (murmur64a-style).
uint64_t HashBytes(const void* data, size_t length, uint64_t seed = 0);

/// Hashes a string view.
inline uint64_t HashString(std::string_view s, uint64_t seed = 0) {
  return HashBytes(s.data(), s.size(), seed);
}

/// Combines two hashes (boost-style, with 64-bit constant).
constexpr uint64_t HashCombine(uint64_t h1, uint64_t h2) {
  return h1 ^ (h2 + 0x9e3779b97f4a7c15ULL + (h1 << 12) + (h1 >> 4));
}

/// Number of trailing one-position of the least significant set bit,
/// 1-based, as used by HyperLogLog's rho function: Rho(1) == 1,
/// Rho(0b100) == 3. Returns 64 for x == 0 (all bits zero: treat as the
/// maximum observable rank so the estimator stays finite).
constexpr int RhoLsb(uint64_t x) {
  if (x == 0) return 64;
  int rho = 1;
  while ((x & 1) == 0) {
    x >>= 1;
    ++rho;
  }
  return rho;
}

}  // namespace ipin

#endif  // IPIN_COMMON_HASH_H_
