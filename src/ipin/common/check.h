#ifndef IPIN_COMMON_CHECK_H_
#define IPIN_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Fatal-assertion macros in the spirit of glog's CHECK family. The project
// does not use exceptions (Google C++ style); invariant violations abort with
// a source location so that failures in one-pass scans are easy to localize.

namespace ipin {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "[ipin] CHECK failed at %s:%d: %s\n", file, line, expr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace ipin

// Always-on invariant check; aborts the process on violation.
#define IPIN_CHECK(expr)                              \
  do {                                                \
    if (!(expr)) {                                    \
      ::ipin::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                 \
  } while (0)

// Binary comparison checks (print only the expression text, not values, to
// keep the header dependency-free).
#define IPIN_CHECK_EQ(a, b) IPIN_CHECK((a) == (b))
#define IPIN_CHECK_NE(a, b) IPIN_CHECK((a) != (b))
#define IPIN_CHECK_LT(a, b) IPIN_CHECK((a) < (b))
#define IPIN_CHECK_LE(a, b) IPIN_CHECK((a) <= (b))
#define IPIN_CHECK_GT(a, b) IPIN_CHECK((a) > (b))
#define IPIN_CHECK_GE(a, b) IPIN_CHECK((a) >= (b))

// Debug-only check; compiled out in release builds.
#ifndef NDEBUG
#define IPIN_DCHECK(expr) IPIN_CHECK(expr)
#else
#define IPIN_DCHECK(expr) \
  do {                    \
  } while (0)
#endif

#endif  // IPIN_COMMON_CHECK_H_
