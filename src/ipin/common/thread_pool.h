#ifndef IPIN_COMMON_THREAD_POOL_H_
#define IPIN_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

// Shared parallel runtime for the hot paths (DESIGN.md §10).
//
// One process-wide pool (GlobalPool) sized by the --threads flag /
// IPIN_THREADS env var / hardware_concurrency, plus a free ParallelFor
// helper that every parallel section goes through. The contract that makes
// the parallelism safe to sprinkle over deterministic algorithms:
//
//   * GlobalThreads() == 1 means *exact sequential fallback*: ParallelFor
//     invokes the body inline on the caller as body(begin, end) — no pool,
//     no task objects, no extra threads. Every parallel section in the
//     codebase is written so that its threaded schedule produces results
//     identical to this fallback (bit-identical sketches, seed-identical
//     greedy/TCIC); tests/test_parallel_irs.cc cross-validates.
//   * Nested ParallelFor calls run inline on the calling worker instead of
//     re-entering the queue, so a parallel section may freely call library
//     code that is itself parallelized without risking deadlock or
//     oversubscription.
//   * SetGlobalThreads must not be called while a parallel section is in
//     flight (the pool is torn down and rebuilt on size changes). In
//     practice it is called once at startup from flag parsing.
//
// Observability: parallel.pool.tasks counts submitted tasks,
// parallel.pool.queue_depth gauges the backlog. Per-phase spans live at the
// call sites, which know what the tasks mean.

namespace ipin {

/// Fixed-size worker pool. `Submit` enqueues fire-and-forget tasks (used by
/// the serving layer for its long-running worker loops); `ParallelFor`
/// partitions an index range into chunks that workers and the caller claim
/// dynamically.
class ThreadPool {
 public:
  /// Spawns `num_threads` (clamped to >= 1) dedicated worker threads.
  explicit ThreadPool(size_t num_threads);

  /// Completes every queued task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.size(); }

  /// Enqueues `fn` for execution on a worker thread.
  void Submit(std::function<void()> fn);

  /// Invokes `body(lo, hi)` over disjoint sub-ranges covering
  /// [begin, end), each at least `grain` long (except possibly the last).
  /// The caller participates; returns when the whole range is done. The
  /// first exception thrown by a body is rethrown here (remaining chunks
  /// still run). Runs inline when the range fits one grain, the pool has a
  /// single thread, or the caller is itself a pool worker (nesting).
  void ParallelFor(size_t begin, size_t end, size_t grain,
                   const std::function<void(size_t, size_t)>& body);

  /// True when the calling thread is a worker of any ThreadPool.
  static bool OnWorkerThread();

 private:
  void WorkerMain();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> tasks_;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

/// std::thread::hardware_concurrency(), never 0.
size_t HardwareThreads();

/// Overrides the global thread count; 0 restores the default resolution
/// (IPIN_THREADS env var if set and positive, else HardwareThreads()).
/// Must not race in-flight parallel sections.
void SetGlobalThreads(size_t n);

/// The effective global thread count (see SetGlobalThreads).
size_t GlobalThreads();

/// The process-wide pool, sized GlobalThreads(); (re)created lazily.
ThreadPool& GlobalPool();

/// ParallelFor on the global pool; exact inline sequential execution when
/// GlobalThreads() <= 1, the range fits one grain, or already on a worker.
void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& body);

// ---- Per-phase pool profiling ---------------------------------------------
//
// Parallel sections tagged with a phase name (obs::ProgressPhase tags the
// calling thread automatically; SetCurrentPoolPhase does it by hand)
// accumulate task-level accounting: how many chunks ran under the tag, the
// summed and slowest chunk execution times, and the caller-side wall time of
// the tagged sections. From those the skew and utilization of a phase are
// derived — e.g. a slab-stitched IRS build where one slab dominates shows
// up as a high imbalance ratio instead of having to be inferred from total
// wall time. Accounting compiles out under IPIN_OBS_DISABLED (the API stays,
// profiles are simply empty). Untagged sections (the serving worker loops)
// are not accounted.

/// Cumulative accounting for every parallel section run under one tag.
struct PoolPhaseProfile {
  std::string name;
  uint64_t tasks = 0;        // chunks executed under the tag
  uint64_t busy_us = 0;      // summed chunk execution wall time
  uint64_t max_task_us = 0;  // slowest single chunk
  uint64_t wall_us = 0;      // summed caller-side section wall time

  double MeanTaskUs() const {
    return tasks == 0 ? 0.0 : static_cast<double>(busy_us) /
                                  static_cast<double>(tasks);
  }

  /// Slowest chunk over mean chunk time: 1.0 = perfectly balanced,
  /// >> 1.0 = one straggler chunk dominated. 0 when nothing ran.
  double ImbalanceRatio() const {
    const double mean = MeanTaskUs();
    return mean == 0.0 ? 0.0 : static_cast<double>(max_task_us) / mean;
  }

  /// Fraction of the section's thread-time that did work:
  /// busy / (wall * threads). 0 when nothing ran.
  double Utilization(size_t threads) const {
    if (wall_us == 0 || threads == 0) return 0.0;
    return static_cast<double>(busy_us) /
           (static_cast<double>(wall_us) * static_cast<double>(threads));
  }
};

/// Tags parallel sections started by the calling thread with `phase`
/// (nullptr = untagged). Returns the previous tag so callers can restore
/// it; the string must stay alive while the tag is set.
const char* SetCurrentPoolPhase(const char* phase);

/// The calling thread's current phase tag (nullptr when untagged).
const char* CurrentPoolPhase();

/// Every phase profile accumulated so far, sorted by name.
std::vector<PoolPhaseProfile> PoolPhaseProfiles();

/// Clears all accumulated phase profiles (tests, between bench reps).
void ResetPoolPhaseProfiles();

/// Mirrors each profile into the metrics registry as the gauges
/// "parallel.phase.<name>.{tasks,busy_us,max_task_us,wall_us,imbalance,
/// utilization}" (utilization computed against GlobalThreads()). Call
/// before snapshotting the registry for a run report or ledger.
void PublishPoolPhaseMetrics();

}  // namespace ipin

#endif  // IPIN_COMMON_THREAD_POOL_H_
