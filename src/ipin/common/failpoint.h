#ifndef IPIN_COMMON_FAILPOINT_H_
#define IPIN_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstddef>
#include <string>
#include <vector>

// Fault-injection registry for robustness testing. Call sites on I/O and
// checkpoint paths declare named failpoints with IPIN_FAILPOINT("name");
// tests (or the IPIN_FAILPOINTS environment variable) arm them with a mode:
//
//   off              disarmed (same as never configured)
//   error            every hit reports an injected error
//   error(n)         hits n, n+1, ... report an error (1-based)
//   error_prob(p)    each hit independently reports an error with
//                    probability p (in [0, 1]). Deterministic: the
//                    per-failpoint PRNG is seeded from IPIN_FAILPOINT_SEED
//                    (default 0) and the failpoint name, so a soak run with
//                    random faults replays bit-identically from its seed
//   crash_after_n(n) the first n hits pass, then the process exits
//                    immediately (std::_Exit, no cleanup — a simulated kill)
//   short_write(b)   write sites truncate their payload to b bytes and
//                    report success (a simulated torn write)
//   delay(ms)        every hit sleeps ms milliseconds, then passes
//
// Environment syntax: IPIN_FAILPOINTS="name=mode;name2=mode(arg)".
//
// Cost when nothing is armed: one relaxed atomic load per site (the macro
// short-circuits before any registry lookup), so production binaries can
// keep failpoints compiled in.

namespace ipin::failpoint {

/// What an armed failpoint tells its call site to do. Crash and delay modes
/// never reach the caller: Evaluate() handles them internally.
struct Result {
  static constexpr size_t kNoLimit = static_cast<size_t>(-1);
  /// True if the site should fail (return its error path).
  bool fail = false;
  /// Byte cap for write sites (kNoLimit = write everything).
  size_t short_write = kNoLimit;

  bool active() const { return fail || short_write != kNoLimit; }
};

/// Number of currently armed failpoints; the macro's fast-path guard.
extern std::atomic<int> g_armed_count;

inline bool AnyArmed() {
  return g_armed_count.load(std::memory_order_relaxed) != 0;
}

/// Looks up `name`, counts the hit, and applies its mode (crashing or
/// sleeping in here when so configured). Returns the default Result when the
/// name is not armed. Prefer the IPIN_FAILPOINT macro, which skips the
/// lookup entirely while nothing is armed.
Result Evaluate(const char* name);

/// Arms (or re-arms) `name` with `spec` — any mode string from the table
/// above. "off" disarms. Returns false on an unparsable spec (registry
/// unchanged). Re-arming resets the hit count.
bool Set(const std::string& name, const std::string& spec);

/// Disarms `name` (no-op if not armed).
void Clear(const std::string& name);

/// Disarms everything (tests call this in TearDown).
void ClearAll();

/// Times `name` was evaluated since it was last armed; 0 if not armed.
size_t HitCount(const std::string& name);

/// "name=spec" for every armed failpoint, sorted by name.
std::vector<std::string> List();

/// Parses IPIN_FAILPOINTS from the environment into the registry. Called
/// once automatically before main(); exposed for tests.
void LoadFromEnv();

}  // namespace ipin::failpoint

/// Evaluates the named failpoint: near-zero cost (one relaxed load) while
/// nothing is armed. Yields a failpoint::Result.
#define IPIN_FAILPOINT(name)                        \
  (::ipin::failpoint::AnyArmed()                    \
       ? ::ipin::failpoint::Evaluate(name)          \
       : ::ipin::failpoint::Result{})

#endif  // IPIN_COMMON_FAILPOINT_H_
