#include "ipin/common/random.h"

#include <cmath>
#include <unordered_set>

#include "ipin/common/check.h"
#include "ipin/common/hash.h"

namespace ipin {
namespace {

constexpr uint64_t RotL(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(uint64_t seed) {
  // splitmix64 seeding, as recommended by the xoshiro authors.
  uint64_t s = seed;
  for (int i = 0; i < 4; ++i) {
    s += 0x9e3779b97f4a7c15ULL;
    state_[i] = Mix64(s);
  }
  // Avoid the (astronomically unlikely) all-zero state.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) {
    state_[0] = 1;
  }
}

uint64_t Rng::NextUint64() {
  const uint64_t result = RotL(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  IPIN_CHECK_GT(bound, 0u);
  // Lemire's nearly-divisionless method with rejection for exact uniformity.
  uint64_t x = NextUint64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    const uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = NextUint64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextExponential(double rate) {
  IPIN_CHECK_GT(rate, 0.0);
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log(u) / rate;
}

double Rng::NextGaussian() {
  // Box-Muller; regenerate on the degenerate u == 0 draw.
  double u1 = NextDouble();
  while (u1 <= 0.0) u1 = NextDouble();
  const double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

uint64_t Rng::NextZipf(uint64_t n, double s) {
  IPIN_CHECK_GT(n, 0u);
  IPIN_CHECK_GT(s, 0.0);
  // Rejection-inversion sampling (Hormann & Derflinger 1996) over [1, n];
  // returned value is shifted to [0, n).
  const double b = std::pow(2.0, 1.0 - s);
  while (true) {
    const double u = NextDouble();
    const double v = NextDouble();
    const double x = std::floor(std::pow(static_cast<double>(n) + 1.0, u));
    // x in [1, n+1); clamp to [1, n].
    const double k = (x > static_cast<double>(n)) ? static_cast<double>(n) : x;
    const double t = std::pow(1.0 + 1.0 / k, s - 1.0);
    if (v * k * (t - 1.0) / (b - 1.0) <= t / b) {
      return static_cast<uint64_t>(k) - 1;
    }
  }
}

std::vector<uint64_t> Rng::SampleWithoutReplacement(uint64_t n, uint64_t k) {
  std::vector<uint64_t> result;
  if (n == 0) return result;
  if (k >= n) {
    result.resize(n);
    for (uint64_t i = 0; i < n; ++i) result[i] = i;
    Shuffle(&result);
    return result;
  }
  result.reserve(k);
  if (k > n / 3) {
    // Dense case: partial Fisher-Yates over an index array.
    std::vector<uint64_t> all(n);
    for (uint64_t i = 0; i < n; ++i) all[i] = i;
    for (uint64_t i = 0; i < k; ++i) {
      const uint64_t j = i + NextBounded(n - i);
      std::swap(all[i], all[j]);
      result.push_back(all[i]);
    }
    return result;
  }
  // Sparse case: rejection sampling into a hash set.
  std::unordered_set<uint64_t> seen;
  seen.reserve(static_cast<size_t>(k) * 2);
  while (result.size() < k) {
    const uint64_t x = NextBounded(n);
    if (seen.insert(x).second) result.push_back(x);
  }
  return result;
}

}  // namespace ipin
