#include "ipin/common/logging.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace ipin {
namespace {

std::mutex g_log_mu;  // guards the sink and serializes writes
LogSink g_sink;       // empty -> write to stderr

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

int LevelFromEnv() {
  LogLevel level = LogLevel::kInfo;
  const char* env = std::getenv("IPIN_LOG_LEVEL");
  if (env != nullptr) ParseLogLevel(env, &level);
  return static_cast<int>(level);
}

// Lazily initialized on first use so IPIN_LOG_LEVEL is honored no matter
// which translation unit logs first.
std::atomic<int>& MinLevel() {
  static std::atomic<int> level{LevelFromEnv()};
  return level;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  MinLevel().store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(MinLevel().load(std::memory_order_relaxed));
}

bool ParseLogLevel(const std::string& text, LogLevel* level) {
  std::string lower;
  lower.reserve(text.size());
  for (const char c : text) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "debug" || lower == "0") {
    *level = LogLevel::kDebug;
  } else if (lower == "info" || lower == "1") {
    *level = LogLevel::kInfo;
  } else if (lower == "warning" || lower == "warn" || lower == "2") {
    *level = LogLevel::kWarning;
  } else if (lower == "error" || lower == "3") {
    *level = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

void SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_log_mu);
  g_sink = std::move(sink);
}

void LogMessage(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < MinLevel().load(std::memory_order_relaxed)) {
    return;
  }
  // Assemble the full line first so concurrent writers cannot interleave
  // within a record, then emit it in one call under the mutex.
  std::string line;
  line.reserve(message.size() + 16);
  line.append("[ipin][").append(LevelName(level)).append("] ");
  line.append(message);
  line.push_back('\n');

  std::lock_guard<std::mutex> lock(g_log_mu);
  if (g_sink) {
    g_sink(level, message);
    return;
  }
  std::fwrite(line.data(), 1, line.size(), stderr);
}

void LogDebug(const std::string& message) {
  LogMessage(LogLevel::kDebug, message);
}
void LogInfo(const std::string& message) {
  LogMessage(LogLevel::kInfo, message);
}
void LogWarning(const std::string& message) {
  LogMessage(LogLevel::kWarning, message);
}
void LogError(const std::string& message) {
  LogMessage(LogLevel::kError, message);
}

}  // namespace ipin
