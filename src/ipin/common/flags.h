#ifndef IPIN_COMMON_FLAGS_H_
#define IPIN_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

// Minimal --key=value command-line parsing shared by the bench harnesses and
// example programs. Not a general flags library: no registration, no types —
// each harness pulls the values it cares about with typed getters.

namespace ipin {

/// Parsed command line: `--name=value` and `--name` (value "true") flags plus
/// positional arguments.
class FlagMap {
 public:
  /// Parses argv[1..argc-1]. Unrecognized syntax ("-x", "x=y") is treated as
  /// a positional argument.
  static FlagMap Parse(int argc, char** argv);

  /// Returns the raw value or `def` if the flag is absent.
  std::string GetString(const std::string& name,
                        const std::string& def = "") const;

  /// Returns the integer value, or `def` if absent/unparsable.
  int64_t GetInt(const std::string& name, int64_t def) const;

  /// Returns the double value, or `def` if absent/unparsable.
  double GetDouble(const std::string& name, double def) const;

  /// Returns the boolean value: present with no value or value in
  /// {"true","1","yes"} -> true; {"false","0","no"} -> false; else `def`.
  bool GetBool(const std::string& name, bool def) const;

  /// True if the flag appeared on the command line.
  bool Has(const std::string& name) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace ipin

#endif  // IPIN_COMMON_FLAGS_H_
