#include "ipin/common/failpoint.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>

#include "ipin/common/hash.h"
#include "ipin/common/random.h"
#include "ipin/common/string_util.h"

namespace ipin::failpoint {

std::atomic<int> g_armed_count{0};

namespace {

enum class Mode { kError, kErrorProb, kCrashAfterN, kShortWrite, kDelay };

struct Config {
  Mode mode = Mode::kError;
  // error: first failing hit (1-based); crash_after_n: passes before the
  // crash; short_write: byte cap; delay: milliseconds.
  int64_t arg = 0;
  // error_prob: per-hit failure probability and its seeded PRNG.
  double prob = 0.0;
  Rng rng{0};
  size_t hits = 0;
};

// Base seed for error_prob PRNGs, from IPIN_FAILPOINT_SEED (0 when unset or
// unparsable). Read at arm time so tests can setenv + re-arm.
uint64_t ProbSeedFromEnv() {
  const char* env = std::getenv("IPIN_FAILPOINT_SEED");
  if (env == nullptr) return 0;
  return static_cast<uint64_t>(ParseInt64(env).value_or(0));
}

struct Registry {
  std::mutex mu;
  std::map<std::string, Config> points;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry;  // leaked: usable during shutdown
  return *registry;
}

// Parses "mode" or "mode(arg)" into *config. Returns false on syntax error.
// The name is only needed to seed error_prob's PRNG.
bool ParseSpec(std::string_view name, std::string_view spec, Config* config) {
  spec = TrimString(spec);
  std::string_view mode = spec;
  std::string_view arg_text;
  std::optional<int64_t> arg;
  const size_t paren = spec.find('(');
  if (paren != std::string_view::npos) {
    if (spec.back() != ')') return false;
    mode = spec.substr(0, paren);
    arg_text = spec.substr(paren + 1, spec.size() - paren - 2);
    arg = ParseInt64(arg_text);
    if (mode != "error_prob" && (!arg.has_value() || *arg < 0)) return false;
  }
  if (mode == "error_prob") {
    const auto prob = ParseDouble(arg_text);
    if (!prob.has_value() || *prob < 0.0 || *prob > 1.0) return false;
    config->mode = Mode::kErrorProb;
    config->prob = *prob;
    // Seed differs per failpoint name so two armed points fail on
    // uncorrelated schedules, yet the whole run replays from one seed.
    config->rng = Rng(HashString(name, ProbSeedFromEnv()));
    return true;
  }
  if (mode == "error") {
    config->mode = Mode::kError;
    config->arg = arg.value_or(1);
    return config->arg >= 1;
  }
  if (mode == "crash_after_n") {
    config->mode = Mode::kCrashAfterN;
    config->arg = arg.value_or(0);
    return true;
  }
  if (mode == "short_write") {
    if (!arg.has_value()) return false;
    config->mode = Mode::kShortWrite;
    config->arg = *arg;
    return true;
  }
  if (mode == "delay") {
    if (!arg.has_value()) return false;
    config->mode = Mode::kDelay;
    config->arg = *arg;
    return true;
  }
  return false;
}

std::string SpecString(const Config& config) {
  char buffer[64];
  switch (config.mode) {
    case Mode::kError:
      std::snprintf(buffer, sizeof(buffer), "error(%lld)",
                    static_cast<long long>(config.arg));
      break;
    case Mode::kErrorProb:
      std::snprintf(buffer, sizeof(buffer), "error_prob(%g)", config.prob);
      break;
    case Mode::kCrashAfterN:
      std::snprintf(buffer, sizeof(buffer), "crash_after_n(%lld)",
                    static_cast<long long>(config.arg));
      break;
    case Mode::kShortWrite:
      std::snprintf(buffer, sizeof(buffer), "short_write(%lld)",
                    static_cast<long long>(config.arg));
      break;
    case Mode::kDelay:
      std::snprintf(buffer, sizeof(buffer), "delay(%lld)",
                    static_cast<long long>(config.arg));
      break;
  }
  return buffer;
}

// Parse IPIN_FAILPOINTS exactly once, before any failpoint can fire in
// main(). g_armed_count is constant-initialized, so the order of this
// dynamic initializer relative to other translation units is immaterial.
const bool g_env_loaded = []() {
  LoadFromEnv();
  return true;
}();

}  // namespace

Result Evaluate(const char* name) {
  Registry& registry = GetRegistry();
  std::unique_lock<std::mutex> lock(registry.mu);
  const auto it = registry.points.find(name);
  if (it == registry.points.end()) return Result{};
  Config& config = it->second;
  const size_t hit = ++config.hits;

  Result result;
  switch (config.mode) {
    case Mode::kError:
      result.fail = hit >= static_cast<size_t>(config.arg);
      break;
    case Mode::kErrorProb:
      // Seeded per-point PRNG (advanced under the registry lock): the fault
      // schedule is a pure function of (IPIN_FAILPOINT_SEED, name, hit#).
      result.fail = config.rng.NextBernoulli(config.prob);
      break;
    case Mode::kCrashAfterN:
      if (hit > static_cast<size_t>(config.arg)) {
        // Simulated kill: no stdio flush, no atexit, no destructors — the
        // closest portable approximation of SIGKILL mid-operation.
        std::fprintf(stderr, "[ipin] failpoint '%s' crashing process (hit %zu)\n",
                     name, hit);
        std::_Exit(134);
      }
      break;
    case Mode::kShortWrite:
      result.short_write = static_cast<size_t>(config.arg);
      break;
    case Mode::kDelay: {
      const auto ms = std::chrono::milliseconds(config.arg);
      lock.unlock();  // do not hold the registry over a sleep
      std::this_thread::sleep_for(ms);
      break;
    }
  }
  return result;
}

bool Set(const std::string& name, const std::string& spec) {
  const std::string_view trimmed = TrimString(spec);
  Registry& registry = GetRegistry();
  if (trimmed == "off") {
    Clear(name);
    return true;
  }
  Config config;
  if (name.empty() || !ParseSpec(name, trimmed, &config)) return false;
  std::lock_guard<std::mutex> lock(registry.mu);
  const auto [it, inserted] = registry.points.insert_or_assign(name, config);
  (void)it;
  if (inserted) g_armed_count.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void Clear(const std::string& name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  if (registry.points.erase(name) > 0) {
    g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
}

void ClearAll() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  g_armed_count.fetch_sub(static_cast<int>(registry.points.size()),
                          std::memory_order_relaxed);
  registry.points.clear();
}

size_t HitCount(const std::string& name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  const auto it = registry.points.find(name);
  return it == registry.points.end() ? 0 : it->second.hits;
}

std::vector<std::string> List() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  std::vector<std::string> out;
  out.reserve(registry.points.size());
  for (const auto& [name, config] : registry.points) {
    out.push_back(name + "=" + SpecString(config));
  }
  return out;
}

void LoadFromEnv() {
  const char* env = std::getenv("IPIN_FAILPOINTS");
  if (env == nullptr || env[0] == '\0') return;
  for (const auto piece : SplitString(env, ";,")) {
    const size_t eq = piece.find('=');
    if (eq == std::string_view::npos) {
      std::fprintf(stderr, "[ipin] IPIN_FAILPOINTS: ignoring '%.*s' (no '=')\n",
                   static_cast<int>(piece.size()), piece.data());
      continue;
    }
    const std::string name(TrimString(piece.substr(0, eq)));
    const std::string spec(piece.substr(eq + 1));
    if (!Set(name, spec)) {
      std::fprintf(stderr, "[ipin] IPIN_FAILPOINTS: bad spec '%.*s'\n",
                   static_cast<int>(piece.size()), piece.data());
    }
  }
}

}  // namespace ipin::failpoint
