#ifndef IPIN_COMMON_SAFE_IO_H_
#define IPIN_COMMON_SAFE_IO_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

// Crash-safe, checksummed file persistence. Every file written through this
// layer is:
//
//   * atomic — data goes to a temp file in the same directory, is fsync'd,
//     and only then renamed over the destination (and the directory entry
//     fsync'd), so readers see either the complete old file or the complete
//     new file, never a torn mix;
//   * framed — the payload is a sequence of length-prefixed frames, each
//     protected by its own CRC32C, so a reader can tell exactly which
//     sections of a damaged file are still trustworthy;
//   * versioned — an 8-byte magic plus a caller-chosen file type tag and
//     format version sit in a checksummed header.
//
// On-disk layout (little-endian):
//   header:  8B magic "IPINSAF1" | u32 file_type | u32 version
//            | u32 crc32c(magic..version)
//   frame:   u32 payload_len | u32 crc32c(payload)
//            | u32 crc32c(payload_len, payload_crc) | payload bytes
//
// The frame header carries its own CRC so a corrupted length field is
// detected instead of desynchronizing every later frame. A frame whose
// header verifies but whose payload does not is reported kCorrupt and
// skipped; the reader continues with the next frame. A corrupt frame
// header (or running out of bytes mid-frame) ends the file: everything
// after it is unrecoverable.
//
// Failpoints (see common/failpoint.h): safe_io.open, safe_io.write,
// safe_io.write.short, safe_io.fsync, safe_io.rename, safe_io.commit.

namespace ipin {

/// CRC-32C (Castagnoli), the checksum used by the framing layer. Software
/// table implementation; `seed` chains incremental computations.
uint32_t Crc32c(const void* data, size_t size, uint32_t seed = 0);
inline uint32_t Crc32c(std::string_view data, uint32_t seed = 0) {
  return Crc32c(data.data(), data.size(), seed);
}

/// Writes one framed file atomically. Usage:
///   SafeFileWriter writer(path, kMyFileType, kMyVersion);
///   writer.AppendFrame(header_payload);
///   writer.AppendFrame(section_payload);  // any number of frames
///   if (!writer.Commit()) { /* destination untouched */ }
/// Destruction without Commit() (or after a failed Commit) removes the temp
/// file and leaves any previous destination file intact.
class SafeFileWriter {
 public:
  SafeFileWriter(std::string path, uint32_t file_type, uint32_t version);
  ~SafeFileWriter();

  SafeFileWriter(const SafeFileWriter&) = delete;
  SafeFileWriter& operator=(const SafeFileWriter&) = delete;

  /// False once any step has failed; AppendFrame/Commit become no-ops.
  bool ok() const { return ok_; }

  /// Appends one checksummed frame. Returns false on I/O error.
  bool AppendFrame(std::string_view payload);

  /// fsyncs the temp file, renames it over the destination, and fsyncs the
  /// directory. Returns false on failure (temp removed, destination intact).
  bool Commit();

 private:
  bool WriteAll(const void* data, size_t size);
  void Abandon();

  std::string path_;
  std::string tmp_path_;
  int fd_ = -1;
  bool ok_ = false;
  bool committed_ = false;
};

/// Outcome of opening a framed file.
enum class SafeOpenStatus {
  kOk,
  kMissing,    // file absent or unreadable
  kTruncated,  // shorter than a complete header
  kCorrupt,    // bad magic, bad header CRC, or wrong file type
};

/// Outcome of reading one frame.
enum class FrameStatus {
  kOk,         // *payload filled
  kEndOfFile,  // clean end: no bytes after the previous frame
  kCorrupt,    // frame damaged; see CanContinue() for whether later frames
               // remain reachable
  kTruncated,  // file ends mid-frame; nothing further is readable
};

/// Reads a file written by SafeFileWriter, frame by frame, verifying every
/// checksum. The whole file is buffered on open (these files are read once
/// into memory anyway by their consumers).
class SafeFileReader {
 public:
  /// Opens and validates the header. `expected_type` guards against feeding
  /// one subsystem's file to another (mismatch => kCorrupt).
  SafeOpenStatus Open(const std::string& path, uint32_t expected_type);

  /// Format version from the header (valid after a kOk Open).
  uint32_t version() const { return version_; }

  /// Reads the next frame into *payload. On kCorrupt with CanContinue(),
  /// the damaged frame was skipped and the next call reads the following
  /// frame; otherwise the reader is exhausted.
  FrameStatus ReadFrame(std::string* payload);

  /// True while later frames are still reachable after a kCorrupt frame.
  bool CanContinue() const { return !exhausted_; }

 private:
  std::string buffer_;
  size_t offset_ = 0;
  uint32_t version_ = 0;
  bool exhausted_ = false;
};

/// Convenience: true if `path` exists and begins with the safe_io magic
/// (used for format auto-detection against legacy files).
bool LooksLikeSafeFile(const std::string& path);

}  // namespace ipin

#endif  // IPIN_COMMON_SAFE_IO_H_
