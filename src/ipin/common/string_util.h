#ifndef IPIN_COMMON_STRING_UTIL_H_
#define IPIN_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ipin {

/// Splits `s` on any character in `delims`, dropping empty pieces.
std::vector<std::string_view> SplitString(std::string_view s,
                                          std::string_view delims = " \t");

/// Strips leading/trailing ASCII whitespace.
std::string_view TrimString(std::string_view s);

/// Parses a signed 64-bit integer; returns nullopt on any syntax error or
/// trailing garbage.
std::optional<int64_t> ParseInt64(std::string_view s);

/// Parses a double; returns nullopt on any syntax error or trailing garbage.
std::optional<double> ParseDouble(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

}  // namespace ipin

#endif  // IPIN_COMMON_STRING_UTIL_H_
