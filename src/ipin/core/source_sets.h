#ifndef IPIN_CORE_SOURCE_SETS_H_
#define IPIN_CORE_SOURCE_SETS_H_

#include <cstddef>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "ipin/core/influence_oracle.h"
#include "ipin/core/irs_approx.h"
#include "ipin/core/irs_exact.h"
#include "ipin/graph/interaction_graph.h"
#include "ipin/graph/types.h"
#include "ipin/sketch/sketch_arena.h"
#include "ipin/sketch/vhll.h"

// Influence SOURCE sets: the exact dual of the paper's influence
// reachability sets. Where sigma_omega(u) asks "whom could u have
// influenced?", the source set tau_omega(v) asks "who could have influenced
// v?" — all nodes with an information channel of duration <= omega INTO v.
//
// The duality makes the forward direction streamable: processing
// interactions in arrival (ascending-time) order, an interaction later than
// everything seen can only change the summary of its *destination*
// (mirror image of the paper's Lemma 1). The summary stores, per source x,
// the LATEST start time of a channel x -> v (mirror of Definition 4's
// earliest end time); an entry of psi(u) with start s survives the merge
// across an edge at time t iff t - s + 1 <= omega.
//
// This addresses the limitation the paper points out ("It is not a
// streaming algorithm because it can not process interactions as they
// arrive"): source-set queries ARE maintainable online.

namespace ipin {

/// Exact streaming source-set computation (forward one-pass).
class SourceSetExact {
 public:
  /// Processes a whole time-sorted interaction list.
  static SourceSetExact Compute(const InteractionGraph& graph,
                                Duration window);

  /// Empty instance; feed interactions with ProcessInteraction in
  /// non-decreasing time order (checked) — i.e. as they arrive.
  SourceSetExact(size_t num_nodes, Duration window);

  /// Processes one interaction in arrival order.
  void ProcessInteraction(const Interaction& interaction);

  /// psi(v): influencing source -> latest start time of a channel into v.
  /// Same accounted map type as the exact IRS: source-set summaries charge
  /// the "irs_exact" tally too (they are the same structure, transposed).
  const IrsSummaryMap& Summary(NodeId v) const { return summaries_[v]; }

  /// |tau_omega(v)|.
  size_t SourceSetSize(NodeId v) const { return summaries_[v].size(); }

  /// tau_omega(v) as a sorted node list.
  std::vector<NodeId> SourceSet(NodeId v) const;

  /// Exact |union of tau_omega(v) for v in targets| ("how many distinct
  /// nodes could have influenced any of these targets?").
  size_t UnionSize(std::span<const NodeId> targets) const;

  size_t num_nodes() const { return summaries_.size(); }
  Duration window() const { return window_; }

  /// Total (node, time) entries across all summaries.
  size_t TotalSummaryEntries() const;

  /// Approximate heap footprint in bytes.
  size_t MemoryUsageBytes() const;

 private:
  void Add(NodeId v, NodeId x, Timestamp start);

  Duration window_;
  Timestamp last_time_;
  bool saw_interaction_ = false;
  std::vector<IrsSummaryMap> summaries_;
};

/// Sketch-based streaming source sets. Internally reuses VersionedHll with
/// NEGATED timestamps: the vHLL keeps, per cell, undominated (rank, time)
/// pairs where earlier time wins; negating start times makes "later start
/// wins" — exactly the survival order of source entries.
class SourceSetApprox {
 public:
  SourceSetApprox(size_t num_nodes, Duration window,
                  const IrsApproxOptions& options);

  static SourceSetApprox Compute(const InteractionGraph& graph,
                                 Duration window,
                                 const IrsApproxOptions& options = {});

  /// Processes one interaction in arrival order. Only valid while unsealed
  /// (the class stays a streaming structure unless the caller seals it).
  void ProcessInteraction(const Interaction& interaction);

  /// Packs the per-node sketches into a read-only SketchArena and frees
  /// them (see IrsApprox::Seal). Compute() seals its result; hand-streamed
  /// instances stay unsealed — and feedable — until sealed explicitly.
  void Seal();
  bool sealed() const { return sealed_; }
  const SketchArena* arena() const { return arena_.get(); }

  /// Estimated |tau_omega(v)|.
  double EstimateSourceSetSize(NodeId v) const;

  /// Estimated |union of tau_omega(v)| over the targets.
  double EstimateUnionSize(std::span<const NodeId> targets) const;

  /// As above, reusing *scratch for the union rank vector (contents on
  /// entry are ignored).
  double EstimateUnionSize(std::span<const NodeId> targets,
                           std::vector<uint8_t>* scratch) const;

  /// View of node v's sketch (invalid if v never received anything).
  SketchView Sketch(NodeId v) const {
    if (sealed_) return SketchView(arena_.get(), v);
    return SketchView(sketches_[v].get());
  }

  size_t num_nodes() const { return num_nodes_; }
  Duration window() const { return window_; }
  const IrsApproxOptions& options() const { return options_; }

  size_t NumAllocatedSketches() const;
  size_t TotalSketchEntries() const;
  size_t MemoryUsageBytes() const;

 private:
  VersionedHll* MutableSketch(NodeId v);

  Duration window_;
  IrsApproxOptions options_;
  size_t num_nodes_ = 0;
  Timestamp last_time_ = 0;
  bool saw_interaction_ = false;
  // Dual-mode storage, same scheme as IrsApprox: build sketches until
  // Seal() packs them into arena_.
  std::vector<std::unique_ptr<VersionedHll>> sketches_;
  std::unique_ptr<SketchArena> arena_;
  bool sealed_ = false;
};

/// Influence-oracle adapter over the sketch-based source sets: treats
/// tau_omega(v) as node v's "set". With the greedy maximizers this solves
/// the dual of influence maximization — SUSCEPTIBILITY maximization: pick k
/// monitor nodes so that the union of their potential-influencer sets is
/// largest (e.g. k inboxes to audit so that a leak from anyone is most
/// likely to be observable).
class SourceSetOracle : public InfluenceOracle {
 public:
  /// `sets` must outlive the oracle.
  explicit SourceSetOracle(const SourceSetApprox* sets);

  size_t num_nodes() const override;
  double InfluenceOf(NodeId v) const override;
  double InfluenceOfSet(std::span<const NodeId> targets) const override;
  std::unique_ptr<CoverageState> NewCoverage() const override;

 private:
  const SourceSetApprox* sets_;
};

}  // namespace ipin

#endif  // IPIN_CORE_SOURCE_SETS_H_
