#include "ipin/core/source_sets.h"

#include <algorithm>

#include "ipin/common/check.h"
#include "ipin/common/memory.h"
#include "ipin/sketch/estimators.h"

namespace ipin {

SourceSetExact::SourceSetExact(size_t num_nodes, Duration window)
    : window_(window), last_time_(0), summaries_(num_nodes) {
  IPIN_CHECK_GE(window, 1);
}

SourceSetExact SourceSetExact::Compute(const InteractionGraph& graph,
                                       Duration window) {
  IPIN_CHECK(graph.is_sorted());
  SourceSetExact sets(graph.num_nodes(), window);
  for (const Interaction& e : graph.interactions()) {
    sets.ProcessInteraction(e);
  }
  return sets;
}

void SourceSetExact::Add(NodeId v, NodeId x, Timestamp start) {
  if (v == x) return;  // mirror of IrsExact: no self-membership
  auto [it, inserted] = summaries_[v].emplace(x, start);
  if (!inserted && it->second < start) it->second = start;  // keep latest
}

void SourceSetExact::ProcessInteraction(const Interaction& interaction) {
  const auto [u, v, t] = interaction;
  IPIN_CHECK_LT(u, summaries_.size());
  IPIN_CHECK_LT(v, summaries_.size());
  if (saw_interaction_) {
    IPIN_CHECK_GE(t, last_time_);  // arrival (ascending) order required
  }
  last_time_ = t;
  saw_interaction_ = true;

  // The single-interaction channel u -> v starts at t.
  Add(v, u, t);

  // Channels x -> u with latest start s extend across this edge while the
  // total duration t - s + 1 stays within the window.
  if (u == v) return;
  for (const auto& [x, sx] : summaries_[u]) {
    if (t - sx < window_) Add(v, x, sx);
  }
}

std::vector<NodeId> SourceSetExact::SourceSet(NodeId v) const {
  std::vector<NodeId> nodes;
  nodes.reserve(summaries_[v].size());
  for (const auto& [x, s] : summaries_[v]) {
    (void)s;
    nodes.push_back(x);
  }
  std::sort(nodes.begin(), nodes.end());
  return nodes;
}

size_t SourceSetExact::UnionSize(std::span<const NodeId> targets) const {
  std::unordered_map<NodeId, char> seen;
  for (const NodeId v : targets) {
    IPIN_CHECK_LT(v, summaries_.size());
    for (const auto& [x, s] : summaries_[v]) {
      (void)s;
      seen.emplace(x, 1);
    }
  }
  return seen.size();
}

size_t SourceSetExact::TotalSummaryEntries() const {
  size_t total = 0;
  for (const auto& summary : summaries_) total += summary.size();
  return total;
}

size_t SourceSetExact::MemoryUsageBytes() const {
  size_t bytes = summaries_.capacity() * sizeof(IrsSummaryMap);
  for (const auto& summary : summaries_) {
    bytes += HashMapBytes(summary.size(), summary.bucket_count(),
                          sizeof(NodeId) + sizeof(Timestamp));
  }
  return bytes;
}

SourceSetApprox::SourceSetApprox(size_t num_nodes, Duration window,
                                 const IrsApproxOptions& options)
    : window_(window), options_(options), sketches_(num_nodes) {
  IPIN_CHECK_GE(window, 1);
}

SourceSetApprox SourceSetApprox::Compute(const InteractionGraph& graph,
                                         Duration window,
                                         const IrsApproxOptions& options) {
  IPIN_CHECK(graph.is_sorted());
  SourceSetApprox sets(graph.num_nodes(), window, options);
  for (const Interaction& e : graph.interactions()) {
    sets.ProcessInteraction(e);
  }
  return sets;
}

VersionedHll* SourceSetApprox::MutableSketch(NodeId v) {
  if (sketches_[v] == nullptr) {
    sketches_[v] =
        std::make_unique<VersionedHll>(options_.precision, options_.salt);
  }
  return sketches_[v].get();
}

void SourceSetApprox::ProcessInteraction(const Interaction& interaction) {
  const auto [u, v, t] = interaction;
  IPIN_CHECK_LT(u, sketches_.size());
  IPIN_CHECK_LT(v, sketches_.size());
  if (saw_interaction_) {
    IPIN_CHECK_GE(t, last_time_);  // arrival (ascending) order required
  }
  last_time_ = t;
  saw_interaction_ = true;

  VersionedHll* sketch_v = MutableSketch(v);
  // Timestamps are NEGATED so the vHLL's "earlier time dominates" rule
  // becomes "later start dominates" (see class comment).
  if (u != v) sketch_v->Add(static_cast<uint64_t>(u), -t);
  if (u == v) return;
  const VersionedHll* sketch_u = sketches_[u].get();
  if (sketch_u != nullptr) {
    // Keep entries with start s satisfying t - s < window, i.e. negated
    // time -s < -t + window.
    sketch_v->MergeWindow(*sketch_u, -t, window_);
  }
}

double SourceSetApprox::EstimateSourceSetSize(NodeId v) const {
  IPIN_CHECK_LT(v, sketches_.size());
  const VersionedHll* sketch = sketches_[v].get();
  return sketch == nullptr ? 0.0 : sketch->Estimate();
}

double SourceSetApprox::EstimateUnionSize(
    std::span<const NodeId> targets) const {
  const size_t beta = static_cast<size_t>(1) << options_.precision;
  std::vector<uint8_t> ranks(beta, 0);
  bool any = false;
  for (const NodeId v : targets) {
    IPIN_CHECK_LT(v, sketches_.size());
    const VersionedHll* sketch = sketches_[v].get();
    if (sketch == nullptr) continue;
    any = true;
    const std::span<const uint8_t> max_ranks = sketch->max_ranks();
    for (size_t c = 0; c < beta; ++c) {
      if (max_ranks[c] > ranks[c]) ranks[c] = max_ranks[c];
    }
  }
  if (!any) return 0.0;
  return EstimateFromRanks(ranks);
}

size_t SourceSetApprox::NumAllocatedSketches() const {
  size_t count = 0;
  for (const auto& s : sketches_) {
    if (s != nullptr) ++count;
  }
  return count;
}

size_t SourceSetApprox::TotalSketchEntries() const {
  size_t total = 0;
  for (const auto& s : sketches_) {
    if (s != nullptr) total += s->NumEntries();
  }
  return total;
}

size_t SourceSetApprox::MemoryUsageBytes() const {
  size_t bytes = sketches_.capacity() * sizeof(std::unique_ptr<VersionedHll>);
  for (const auto& s : sketches_) {
    if (s != nullptr) bytes += sizeof(VersionedHll) + s->MemoryUsageBytes();
  }
  return bytes;
}

namespace {

// Coverage over source-set sketches (mirror of IrsApprox's SketchCoverage).
class SourceSetCoverage : public CoverageState {
 public:
  explicit SourceSetCoverage(const SourceSetApprox* sets)
      : sets_(sets),
        ranks_(static_cast<size_t>(1) << sets->options().precision, 0),
        covered_(0.0) {}

  double Covered() const override { return covered_; }

  double GainOf(NodeId v) const override {
    const VersionedHll* sketch = sets_->Sketch(v);
    if (sketch == nullptr) return 0.0;
    std::vector<uint8_t> merged = ranks_;
    MaxInto(*sketch, &merged);
    return std::max(0.0, EstimateOf(merged) - covered_);
  }

  void Commit(NodeId v) override {
    const VersionedHll* sketch = sets_->Sketch(v);
    if (sketch == nullptr) return;
    MaxInto(*sketch, &ranks_);
    covered_ = EstimateOf(ranks_);
  }

 private:
  static void MaxInto(const VersionedHll& sketch, std::vector<uint8_t>* ranks) {
    const std::span<const uint8_t> max_ranks = sketch.max_ranks();
    for (size_t c = 0; c < ranks->size(); ++c) {
      if (max_ranks[c] > (*ranks)[c]) (*ranks)[c] = max_ranks[c];
    }
  }

  static double EstimateOf(const std::vector<uint8_t>& ranks) {
    for (const uint8_t r : ranks) {
      if (r != 0) return EstimateFromRanks(ranks);
    }
    return 0.0;
  }

  const SourceSetApprox* sets_;
  std::vector<uint8_t> ranks_;
  double covered_;
};

}  // namespace

SourceSetOracle::SourceSetOracle(const SourceSetApprox* sets) : sets_(sets) {
  IPIN_CHECK(sets != nullptr);
}

size_t SourceSetOracle::num_nodes() const { return sets_->num_nodes(); }

double SourceSetOracle::InfluenceOf(NodeId v) const {
  return sets_->EstimateSourceSetSize(v);
}

double SourceSetOracle::InfluenceOfSet(std::span<const NodeId> targets) const {
  return sets_->EstimateUnionSize(targets);
}

std::unique_ptr<CoverageState> SourceSetOracle::NewCoverage() const {
  return std::make_unique<SourceSetCoverage>(sets_);
}

}  // namespace ipin
