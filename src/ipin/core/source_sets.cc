#include "ipin/core/source_sets.h"

#include <algorithm>

#include "ipin/common/check.h"
#include "ipin/common/memory.h"
#include "ipin/sketch/estimators.h"
#include "ipin/sketch/kernels.h"

namespace ipin {

SourceSetExact::SourceSetExact(size_t num_nodes, Duration window)
    : window_(window), last_time_(0), summaries_(num_nodes) {
  IPIN_CHECK_GE(window, 1);
}

SourceSetExact SourceSetExact::Compute(const InteractionGraph& graph,
                                       Duration window) {
  IPIN_CHECK(graph.is_sorted());
  SourceSetExact sets(graph.num_nodes(), window);
  for (const Interaction& e : graph.interactions()) {
    sets.ProcessInteraction(e);
  }
  return sets;
}

void SourceSetExact::Add(NodeId v, NodeId x, Timestamp start) {
  if (v == x) return;  // mirror of IrsExact: no self-membership
  auto [it, inserted] = summaries_[v].emplace(x, start);
  if (!inserted && it->second < start) it->second = start;  // keep latest
}

void SourceSetExact::ProcessInteraction(const Interaction& interaction) {
  const auto [u, v, t] = interaction;
  IPIN_CHECK_LT(u, summaries_.size());
  IPIN_CHECK_LT(v, summaries_.size());
  if (saw_interaction_) {
    IPIN_CHECK_GE(t, last_time_);  // arrival (ascending) order required
  }
  last_time_ = t;
  saw_interaction_ = true;

  // The single-interaction channel u -> v starts at t.
  Add(v, u, t);

  // Channels x -> u with latest start s extend across this edge while the
  // total duration t - s + 1 stays within the window.
  if (u == v) return;
  for (const auto& [x, sx] : summaries_[u]) {
    if (t - sx < window_) Add(v, x, sx);
  }
}

std::vector<NodeId> SourceSetExact::SourceSet(NodeId v) const {
  std::vector<NodeId> nodes;
  nodes.reserve(summaries_[v].size());
  for (const auto& [x, s] : summaries_[v]) {
    (void)s;
    nodes.push_back(x);
  }
  std::sort(nodes.begin(), nodes.end());
  return nodes;
}

size_t SourceSetExact::UnionSize(std::span<const NodeId> targets) const {
  std::unordered_map<NodeId, char> seen;
  for (const NodeId v : targets) {
    IPIN_CHECK_LT(v, summaries_.size());
    for (const auto& [x, s] : summaries_[v]) {
      (void)s;
      seen.emplace(x, 1);
    }
  }
  return seen.size();
}

size_t SourceSetExact::TotalSummaryEntries() const {
  size_t total = 0;
  for (const auto& summary : summaries_) total += summary.size();
  return total;
}

size_t SourceSetExact::MemoryUsageBytes() const {
  size_t bytes = summaries_.capacity() * sizeof(IrsSummaryMap);
  for (const auto& summary : summaries_) {
    bytes += HashMapBytes(summary.size(), summary.bucket_count(),
                          sizeof(NodeId) + sizeof(Timestamp));
  }
  return bytes;
}

SourceSetApprox::SourceSetApprox(size_t num_nodes, Duration window,
                                 const IrsApproxOptions& options)
    : window_(window),
      options_(options),
      num_nodes_(num_nodes),
      sketches_(num_nodes) {
  IPIN_CHECK_GE(window, 1);
}

SourceSetApprox SourceSetApprox::Compute(const InteractionGraph& graph,
                                         Duration window,
                                         const IrsApproxOptions& options) {
  IPIN_CHECK(graph.is_sorted());
  SourceSetApprox sets(graph.num_nodes(), window, options);
  for (const Interaction& e : graph.interactions()) {
    sets.ProcessInteraction(e);
  }
  sets.Seal();
  return sets;
}

void SourceSetApprox::Seal() {
  if (sealed_) return;
  arena_ = std::make_unique<SketchArena>(options_.precision, options_.salt,
                                         std::span(sketches_));
  sealed_ = true;
  sketches_.clear();
  sketches_.shrink_to_fit();
}

VersionedHll* SourceSetApprox::MutableSketch(NodeId v) {
  if (sketches_[v] == nullptr) {
    sketches_[v] =
        std::make_unique<VersionedHll>(options_.precision, options_.salt);
  }
  return sketches_[v].get();
}

void SourceSetApprox::ProcessInteraction(const Interaction& interaction) {
  const auto [u, v, t] = interaction;
  IPIN_CHECK(!sealed_);
  IPIN_CHECK_LT(u, sketches_.size());
  IPIN_CHECK_LT(v, sketches_.size());
  if (saw_interaction_) {
    IPIN_CHECK_GE(t, last_time_);  // arrival (ascending) order required
  }
  last_time_ = t;
  saw_interaction_ = true;

  VersionedHll* sketch_v = MutableSketch(v);
  // Timestamps are NEGATED so the vHLL's "earlier time dominates" rule
  // becomes "later start dominates" (see class comment).
  if (u != v) sketch_v->Add(static_cast<uint64_t>(u), -t);
  if (u == v) return;
  const VersionedHll* sketch_u = sketches_[u].get();
  if (sketch_u != nullptr) {
    // Keep entries with start s satisfying t - s < window, i.e. negated
    // time -s < -t + window.
    sketch_v->MergeWindow(*sketch_u, -t, window_);
  }
}

double SourceSetApprox::EstimateSourceSetSize(NodeId v) const {
  IPIN_CHECK_LT(v, num_nodes_);
  if (sealed_) {
    return arena_->has_node(v) ? arena_->EstimateNode(v) : 0.0;
  }
  const VersionedHll* sketch = sketches_[v].get();
  return sketch == nullptr ? 0.0 : sketch->Estimate();
}

double SourceSetApprox::EstimateUnionSize(
    std::span<const NodeId> targets) const {
  std::vector<uint8_t> ranks;
  return EstimateUnionSize(targets, &ranks);
}

double SourceSetApprox::EstimateUnionSize(
    std::span<const NodeId> targets, std::vector<uint8_t>* scratch) const {
  const size_t beta = static_cast<size_t>(1) << options_.precision;
  scratch->assign(beta, 0);
  uint8_t* const ranks = scratch->data();
  bool any = false;
  for (const NodeId v : targets) {
    IPIN_CHECK_LT(v, num_nodes_);
    const SketchView sketch = Sketch(v);
    if (!sketch) continue;
    any = true;
    kernels::CellwiseMaxU8(ranks, sketch.max_ranks().data(), beta);
  }
  if (!any) return 0.0;
  return kernels::Dispatched().estimate_from_ranks(ranks, beta);
}

size_t SourceSetApprox::NumAllocatedSketches() const {
  if (sealed_) return arena_->NumAllocated();
  size_t count = 0;
  for (const auto& s : sketches_) {
    if (s != nullptr) ++count;
  }
  return count;
}

size_t SourceSetApprox::TotalSketchEntries() const {
  if (sealed_) return arena_->TotalEntries();
  size_t total = 0;
  for (const auto& s : sketches_) {
    if (s != nullptr) total += s->NumEntries();
  }
  return total;
}

size_t SourceSetApprox::MemoryUsageBytes() const {
  if (sealed_) return arena_->MemoryUsageBytes();
  size_t bytes = sketches_.capacity() * sizeof(std::unique_ptr<VersionedHll>);
  for (const auto& s : sketches_) {
    if (s != nullptr) bytes += sizeof(VersionedHll) + s->MemoryUsageBytes();
  }
  return bytes;
}

namespace {

// Coverage over source-set sketches (mirror of IrsApprox's SketchCoverage).
class SourceSetCoverage : public CoverageState {
 public:
  explicit SourceSetCoverage(const SourceSetApprox* sets)
      : sets_(sets),
        ranks_(static_cast<size_t>(1) << sets->options().precision, 0),
        covered_(0.0) {}

  double Covered() const override { return covered_; }

  double GainOf(NodeId v) const override {
    const SketchView sketch = sets_->Sketch(v);
    if (!sketch) return 0.0;
    // thread_local scratch instead of a per-call copy: GainOf is the inner
    // loop of greedy/CELF and may be called concurrently by the parallel
    // maximizer, which forbids a shared mutable member.
    static thread_local std::vector<uint8_t> merged;
    merged = ranks_;
    kernels::CellwiseMaxU8(merged.data(), sketch.max_ranks().data(),
                           merged.size());
    return std::max(0.0, EstimateOf(merged) - covered_);
  }

  void Commit(NodeId v) override {
    const SketchView sketch = sets_->Sketch(v);
    if (!sketch) return;
    kernels::CellwiseMaxU8(ranks_.data(), sketch.max_ranks().data(),
                           ranks_.size());
    covered_ = EstimateOf(ranks_);
  }

 private:
  static double EstimateOf(const std::vector<uint8_t>& ranks) {
    for (const uint8_t r : ranks) {
      if (r != 0) return EstimateFromRanks(ranks);
    }
    return 0.0;
  }

  const SourceSetApprox* sets_;
  std::vector<uint8_t> ranks_;
  double covered_;
};

}  // namespace

SourceSetOracle::SourceSetOracle(const SourceSetApprox* sets) : sets_(sets) {
  IPIN_CHECK(sets != nullptr);
}

size_t SourceSetOracle::num_nodes() const { return sets_->num_nodes(); }

double SourceSetOracle::InfluenceOf(NodeId v) const {
  return sets_->EstimateSourceSetSize(v);
}

double SourceSetOracle::InfluenceOfSet(std::span<const NodeId> targets) const {
  return sets_->EstimateUnionSize(targets);
}

std::unique_ptr<CoverageState> SourceSetOracle::NewCoverage() const {
  return std::make_unique<SourceSetCoverage>(sets_);
}

}  // namespace ipin
