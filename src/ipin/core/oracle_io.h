#ifndef IPIN_CORE_ORACLE_IO_H_
#define IPIN_CORE_ORACLE_IO_H_

#include <optional>
#include <string>

#include "ipin/core/irs_approx.h"

// Persistence for the sketch-based influence index: the one-pass build
// (IrsApprox::Compute) is the expensive step; saving the resulting index
// lets a deployment precompute it offline and serve influence-oracle
// queries (Section 4.1) without re-scanning the interaction log.

namespace ipin {

/// Writes the index to `path` in a self-contained binary format
/// (magic + window + options + per-node sketches). Returns false on I/O
/// error.
bool SaveInfluenceIndex(const IrsApprox& index, const std::string& path);

/// Reads an index written by SaveInfluenceIndex. Returns nullopt on open
/// failure, truncation, or corruption (every sketch is invariant-checked).
std::optional<IrsApprox> LoadInfluenceIndex(const std::string& path);

}  // namespace ipin

#endif  // IPIN_CORE_ORACLE_IO_H_
