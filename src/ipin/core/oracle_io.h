#ifndef IPIN_CORE_ORACLE_IO_H_
#define IPIN_CORE_ORACLE_IO_H_

#include <cstddef>
#include <optional>
#include <string>

#include "ipin/core/irs_approx.h"

// Persistence for the sketch-based influence index: the one-pass build
// (IrsApprox::Compute) is the expensive step; saving the resulting index
// lets a deployment precompute it offline and serve influence-oracle
// queries (Section 4.1) without re-scanning the interaction log.
//
// Since the crash-safety work the index is written through common/safe_io:
// atomically (temp file + fsync + rename) and framed, with one CRC32C-
// protected section per chunk of nodes. A damaged file therefore degrades
// instead of vanishing: every chunk whose checksum verifies is loaded, the
// rest are dropped and reported (robustness.index.* metrics, log warnings).
// Files written by the pre-safe_io format ("IPINIDX1") are still readable.

namespace ipin {

/// Outcome of LoadInfluenceIndexDetailed.
enum class IndexLoadStatus {
  kOk,         // every section verified
  kDegraded,   // index usable, but >= 1 corrupt/unreachable section dropped
  kMissing,    // file absent or unreadable
  kTruncated,  // file ends before the index header is complete
  kCorrupt,    // header (or legacy body) fails verification; nothing usable
};

struct IndexLoadResult {
  IndexLoadStatus status = IndexLoadStatus::kMissing;
  /// Set for kOk and kDegraded.
  std::optional<IrsApprox> index;
  /// Section accounting (new format only; legacy files are all-or-nothing).
  size_t sections_total = 0;
  size_t sections_dropped = 0;

  bool usable() const { return index.has_value(); }
};

/// Writes the index to `path` atomically in the framed safe_io format.
/// Returns false on I/O error (the previous file at `path`, if any, is left
/// intact). Failpoints: oracle_io.save, oracle_io.write.short.
bool SaveInfluenceIndex(const IrsApprox& index, const std::string& path);

/// Reads an index written by SaveInfluenceIndex (either format), reporting
/// exactly what happened. Corrupt sections of a framed file are dropped:
/// the affected nodes lose their sketches (their IRS estimates become 0)
/// and the load reports kDegraded — callers decide whether degraded service
/// is acceptable. Every dropped section is counted in the
/// robustness.index.sections_dropped metric.
IndexLoadResult LoadInfluenceIndexDetailed(const std::string& path);

/// Compatibility wrapper: the index from any usable load (kOk or kDegraded,
/// the latter logged as a warning), nullopt otherwise.
std::optional<IrsApprox> LoadInfluenceIndex(const std::string& path);

}  // namespace ipin

#endif  // IPIN_CORE_ORACLE_IO_H_
