#include "ipin/core/information_channel.h"

#include <algorithm>

#include "ipin/common/check.h"

namespace ipin {
namespace {

// Earliest arrival time at every node over channels that start with the
// interaction at index `start` (inclusive of its destination). Arrival times
// are populated in ascending edge-time order, so the first time a node is
// reached is its earliest arrival. Optionally records, per reached node, the
// index of the interaction that first reached it (for path reconstruction).
std::unordered_map<NodeId, Timestamp> EarliestArrivals(
    const InteractionGraph& graph, size_t start, Duration window,
    std::unordered_map<NodeId, size_t>* via_edge) {
  const auto& edges = graph.interactions();
  const Interaction& first = edges[start];
  const Timestamp t1 = first.time;
  const Timestamp latest_end = t1 + window - 1;  // dur = tk - t1 + 1 <= window

  std::unordered_map<NodeId, Timestamp> arrival;
  arrival.emplace(first.dst, t1);
  if (via_edge != nullptr) via_edge->emplace(first.dst, start);

  for (size_t j = start + 1; j < edges.size(); ++j) {
    const Interaction& e = edges[j];
    if (e.time > latest_end) break;  // sorted ascending: rest is too late
    const auto it = arrival.find(e.src);
    if (it == arrival.end() || it->second >= e.time) continue;  // strict order
    const auto [ins, inserted] = arrival.emplace(e.dst, e.time);
    (void)ins;
    if (inserted && via_edge != nullptr) via_edge->emplace(e.dst, j);
  }
  return arrival;
}

}  // namespace

IrsSummary BruteForceIrsSummary(const InteractionGraph& graph, NodeId source,
                                Duration window) {
  IPIN_CHECK(graph.is_sorted());
  IPIN_CHECK_GE(window, 1);
  IrsSummary summary;
  const auto& edges = graph.interactions();
  for (size_t i = 0; i < edges.size(); ++i) {
    if (edges[i].src != source) continue;
    const auto arrival = EarliestArrivals(graph, i, window, nullptr);
    for (const auto& [node, t] : arrival) {
      // A node is not a member of its own IRS (it may still act as transit
      // on a temporal cycle) — matching the paper's Example 2.
      if (node == source) continue;
      const auto it = summary.find(node);
      if (it == summary.end() || it->second > t) summary[node] = t;
    }
  }
  return summary;
}

std::vector<IrsSummary> BruteForceAllIrsSummaries(const InteractionGraph& graph,
                                                  Duration window) {
  std::vector<IrsSummary> result(graph.num_nodes());
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    result[u] = BruteForceIrsSummary(graph, u, window);
  }
  return result;
}

bool HasInformationChannel(const InteractionGraph& graph, NodeId src,
                           NodeId dst, Duration window) {
  return BruteForceIrsSummary(graph, src, window).count(dst) > 0;
}

std::vector<Interaction> FindEarliestChannel(const InteractionGraph& graph,
                                             NodeId src, NodeId dst,
                                             Duration window) {
  IPIN_CHECK(graph.is_sorted());
  const auto& edges = graph.interactions();

  Timestamp best_end = kNoTimestamp;
  size_t best_start = 0;
  std::unordered_map<NodeId, size_t> best_via;
  for (size_t i = 0; i < edges.size(); ++i) {
    if (edges[i].src != src) continue;
    std::unordered_map<NodeId, size_t> via;
    const auto arrival = EarliestArrivals(graph, i, window, &via);
    const auto it = arrival.find(dst);
    if (it == arrival.end()) continue;
    if (best_end == kNoTimestamp || it->second < best_end) {
      best_end = it->second;
      best_start = i;
      best_via = std::move(via);
    }
  }
  if (best_end == kNoTimestamp) return {};

  // Walk parent edges back from dst to the start interaction.
  std::vector<Interaction> path;
  size_t edge_index = best_via.at(dst);
  while (true) {
    path.push_back(edges[edge_index]);
    if (edge_index == best_start) break;
    edge_index = best_via.at(edges[edge_index].src);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace ipin
