#include "ipin/core/irs_approx.h"

#include <algorithm>
#include <utility>

#include "ipin/common/check.h"
#include "ipin/common/hash.h"
#include "ipin/common/thread_pool.h"
#include "ipin/obs/metrics.h"
#include "ipin/obs/progress.h"
#include "ipin/obs/trace.h"
#include "ipin/sketch/estimators.h"
#include "ipin/sketch/kernels.h"

namespace ipin {
namespace {

// Below this edge count the slab build's fixed costs (P sketch arrays, the
// stitch pass) outweigh any speedup; stay on the one-pass scan.
constexpr size_t kParallelBuildMinEdges = 4096;
// Never cut slabs smaller than this many edges.
constexpr size_t kMinSlabEdges = 1024;

}  // namespace

IrsApprox::IrsApprox(size_t num_nodes, Duration window,
                     const IrsApproxOptions& options)
    : window_(window),
      options_(options),
      num_nodes_(num_nodes),
      sketches_(num_nodes) {
  IPIN_CHECK_GE(window, 1);
}

IrsApprox::IrsApprox(Duration window, const IrsApproxOptions& options,
                     std::vector<std::unique_ptr<VersionedHll>> sketches)
    : window_(window),
      options_(options),
      num_nodes_(sketches.size()),
      sketches_(std::move(sketches)) {
  IPIN_CHECK_GE(window, 1);
  for (const auto& sketch : sketches_) {
    if (sketch != nullptr) {
      IPIN_CHECK_EQ(sketch->precision(), options_.precision);
      IPIN_CHECK_EQ(sketch->salt(), options_.salt);
    }
  }
  // Restored instances (oracle load, shard extraction) are final and
  // query-facing; pack them for the query hot paths right away.
  Seal();
}

void IrsApprox::Seal() {
  if (sealed_) return;
  IPIN_TRACE_SPAN("irs.approx.seal");
  // Capture the per-sketch lifetime tallies before freeing their owners.
  sealed_insert_attempts_ = TotalInsertAttempts();
  sealed_evictions_ = TotalEvictions();
  sealed_merge_entries_scanned_ = TotalMergeEntriesScanned();
  sealed_cell_updates_ = TotalCellUpdates();
  arena_ = std::make_unique<SketchArena>(options_.precision, options_.salt,
                                         std::span(sketches_));
  sealed_ = true;
  sketches_.clear();
  sketches_.shrink_to_fit();
  IPIN_GAUGE_SET("sketch.arena.bytes", arena_->MemoryUsageBytes());
  IPIN_GAUGE_SET("sketch.arena.entries", arena_->TotalEntries());
}

IrsApprox IrsApprox::Compute(const InteractionGraph& graph, Duration window,
                             const IrsApproxOptions& options) {
  const size_t threads = GlobalThreads();
  if (threads > 1 && graph.num_interactions() >= kParallelBuildMinEdges) {
    return ComputeParallel(graph, window, options, threads);
  }
  return ComputeSequential(graph, window, options);
}

IrsApprox IrsApprox::ComputeSequential(const InteractionGraph& graph,
                                       Duration window,
                                       const IrsApproxOptions& options) {
  IPIN_TRACE_SPAN("irs.approx.compute");
  IPIN_CHECK(graph.is_sorted());
  IrsApprox irs(graph.num_nodes(), window, options);
  const auto& edges = graph.interactions();
  obs::ProgressPhase phase("irs.approx.scan", edges.size());
  size_t since_tick = 0;
  for (size_t i = edges.size(); i > 0; --i) {
    irs.ProcessInteraction(edges[i - 1]);
    // Chunked ticks keep the per-edge path atomics-free.
    if (++since_tick == (size_t{64} << 10)) {
      phase.Tick(since_tick);
      since_tick = 0;
    }
  }
  phase.SetDone(edges.size());
  irs.PublishBuildMetrics();
  return irs;
}

// Correctness sketch (full argument in DESIGN.md §10). A node's final cell
// lists are the canonical Pareto frontier (domination pruning, Lemma 3) of
// the set of (rank, channel-end-time) pairs that reach it, and AddEntry
// produces that frontier regardless of insertion order — so any schedule
// inserting the same pair set yields bit-identical sketches. Slab builds
// insert exactly the pairs carried by channels confined to one slab; every
// channel crossing a slab boundary decomposes into its maximal suffix
// (already folded into the stitched suffix sketches) plus slab-local hops,
// which the stitch scan replays: scanning slab i right-to-left, each edge
// (u, v, t) pulls v's suffix-derived entries (prop[v], accumulated by later
// slab-i edges) and v's final suffix sketch through the same
// window-bounded MergeWindow the one-pass scan would have applied at that
// edge. Entries from the suffix all have time >= the slab boundary, so
// once t + window <= boundary nothing further can cross and the scan
// breaks early — with a window far smaller than the trace span the stitch
// touches only a thin band per boundary.
IrsApprox IrsApprox::ComputeParallel(const InteractionGraph& graph,
                                     Duration window,
                                     const IrsApproxOptions& options,
                                     size_t num_slabs) {
  IPIN_CHECK(graph.is_sorted());
  const auto& edges = graph.interactions();
  const size_t m = edges.size();
  const size_t n = graph.num_nodes();
  size_t slabs_wanted = std::max<size_t>(num_slabs, 1);
  if (slabs_wanted > 1 && m / slabs_wanted < kMinSlabEdges) {
    slabs_wanted = std::max<size_t>(1, m / kMinSlabEdges);
  }
  if (slabs_wanted <= 1 || m == 0) {
    return ComputeSequential(graph, window, options);
  }
  IPIN_TRACE_SPAN("irs.approx.compute_parallel");
  const size_t P = slabs_wanted;

  // Slab i owns edge indices [bounds[i], bounds[i+1]); slabs are contiguous
  // in the sorted edge array, so equal-timestamp runs may split across a
  // boundary — harmless, the stitch replays those edges too.
  std::vector<size_t> bounds(P + 1);
  for (size_t i = 0; i <= P; ++i) bounds[i] = i * m / P;

  // Phase 1: independent reverse scans, one (partial) IrsApprox per slab.
  std::vector<IrsApprox> slabs;
  slabs.reserve(P);
  for (size_t i = 0; i < P; ++i) slabs.emplace_back(n, window, options);
  {
    IPIN_TRACE_SPAN("irs.approx.parallel.slab_build");
    obs::ProgressPhase phase("irs.approx.slab_build", P);
    ParallelFor(0, P, 1, [&](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) {
        for (size_t j = bounds[i + 1]; j > bounds[i]; --j) {
          slabs[i].ProcessInteraction(edges[j - 1]);
        }
        phase.Tick();
      }
    });
  }

  // Phases 2+3, right to left: compute the boundary propagation for slab i
  // against the already-stitched suffix, then fold slab i's local sketches
  // and the propagated entries into the final ones.
  std::vector<std::unique_ptr<VersionedHll>> final_sketches =
      std::move(slabs[P - 1].sketches_);
  size_t merge_calls = slabs[P - 1].merge_calls_;
  obs::ProgressPhase stitch_phase("irs.approx.stitch", P - 1);
  for (size_t i = P - 1; i-- > 0;) {
    IPIN_TRACE_SPAN("irs.approx.parallel.stitch");
    const Timestamp boundary = edges[bounds[i + 1]].time;
    // prop[x]: entries of the suffix that flow into x via slab-i edges,
    // built by replaying the reverse scan over the boundary band.
    std::vector<std::unique_ptr<VersionedHll>> prop(n);
    for (size_t j = bounds[i + 1]; j > bounds[i]; --j) {
      const auto [u, v, t] = edges[j - 1];
      if (t + window <= boundary) break;  // suffix out of reach from here on
      if (u == v) continue;  // self-loops never propagate (Algorithm 3)
      const VersionedHll* from_prop = prop[v].get();
      const VersionedHll* from_final = final_sketches[v].get();
      if (from_prop == nullptr && from_final == nullptr) continue;
      if (prop[u] == nullptr) {
        prop[u] = std::make_unique<VersionedHll>(options.precision,
                                                 options.salt);
      }
      if (from_prop != nullptr) {
        prop[u]->MergeWindow(*from_prop, t, window);
        ++merge_calls;
      }
      if (from_final != nullptr) {
        prop[u]->MergeWindow(*from_final, t, window);
        ++merge_calls;
      }
    }
    merge_calls += slabs[i].merge_calls_;
    auto& local = slabs[i].sketches_;
    ParallelFor(0, n, 1024, [&](size_t lo, size_t hi) {
      for (size_t x = lo; x < hi; ++x) {
        if (local[x] != nullptr) {
          if (final_sketches[x] == nullptr) {
            final_sketches[x] = std::move(local[x]);
          } else {
            final_sketches[x]->MergeAll(*local[x]);
          }
        }
        // A node with propagated entries was the source of some slab-i
        // edge, so its local sketch exists and final_sketches[x] is set.
        if (prop[x] != nullptr) final_sketches[x]->MergeAll(*prop[x]);
      }
    });
    stitch_phase.Tick();
  }

  // Assemble directly (not via the restoring ctor, which seals): like the
  // sequential path, parallel builds return unsealed so the pack + free cost
  // lands at the build->query handoff, outside the timed build.
  IrsApprox irs(n, window, options);
  irs.sketches_ = std::move(final_sketches);
  irs.saw_interaction_ = true;
  irs.last_time_ = edges.front().time;
  irs.edges_scanned_ = m;
  irs.merge_calls_ = merge_calls;
  irs.PublishBuildMetrics();
  return irs;
}

void IrsApprox::PublishBuildMetrics() const {
  // Scan and per-sketch tallies (plain members, free to maintain) roll up
  // into the registry once per build, keeping the per-edge path atomics-free.
  IPIN_COUNTER_ADD("irs.approx.edges_scanned", edges_scanned_);
  IPIN_COUNTER_ADD("sketch.vhll.merges", merge_calls_);
  IPIN_COUNTER_ADD("sketch.vhll.merge_entries_scanned",
                   TotalMergeEntriesScanned());
  IPIN_COUNTER_ADD("sketch.vhll.cell_updates", TotalCellUpdates());
  IPIN_COUNTER_ADD("sketch.vhll.insert_attempts", TotalInsertAttempts());
  IPIN_COUNTER_ADD("sketch.vhll.dominance_evictions", TotalEvictions());
  IPIN_GAUGE_SET("sketch.vhll.total_entries", TotalSketchEntries());
  IPIN_GAUGE_SET("irs.approx.allocated_sketches", NumAllocatedSketches());
}

VersionedHll* IrsApprox::MutableSketch(NodeId u) {
  if (sketches_[u] == nullptr) {
    sketches_[u] =
        std::make_unique<VersionedHll>(options_.precision, options_.salt);
  }
  return sketches_[u].get();
}

void IrsApprox::ProcessInteraction(const Interaction& interaction) {
  const auto [u, v, t] = interaction;
  IPIN_CHECK(!sealed_);
  IPIN_CHECK_LT(u, sketches_.size());
  IPIN_CHECK_LT(v, sketches_.size());
  if (saw_interaction_) {
    IPIN_CHECK_LE(t, last_time_);  // reverse chronological order required
  }
  last_time_ = t;
  saw_interaction_ = true;

  ++edges_scanned_;
  VersionedHll* sketch_u = MutableSketch(u);
  // ApproxAdd: v joins sigma(u) with channel end time t. Self-loops are
  // filtered like in IrsExact (a node is not in its own IRS); a merge can
  // still fold u's own hash in via a temporal cycle — a one-item bias the
  // sketch cannot distinguish, documented in DESIGN.md.
  if (u != v) sketch_u->Add(static_cast<uint64_t>(v), t);
  // ApproxMerge: fold in phi(v) entries still inside the window. Self-loops
  // would merge the sketch into itself (a no-op); skip like IrsExact.
  if (u == v) return;
  const VersionedHll* sketch_v = sketches_[v].get();
  if (sketch_v != nullptr) {
    ++merge_calls_;
    sketch_u->MergeWindow(*sketch_v, t, window_);
  }
}

double IrsApprox::EstimateIrsSize(NodeId u) const {
  IPIN_CHECK_LT(u, num_nodes_);
  if (sealed_) {
    return arena_->has_node(u) ? arena_->EstimateNode(u) : 0.0;
  }
  const VersionedHll* sketch = sketches_[u].get();
  return sketch == nullptr ? 0.0 : sketch->Estimate();
}

double IrsApprox::EstimateUnionSize(std::span<const NodeId> seeds) const {
  std::vector<uint8_t> ranks;
  return EstimateUnionSize(seeds, &ranks);
}

double IrsApprox::EstimateUnionSize(std::span<const NodeId> seeds,
                                    std::vector<uint8_t>* scratch) const {
  const size_t beta = static_cast<size_t>(1) << options_.precision;
  scratch->assign(beta, 0);
  uint8_t* const ranks = scratch->data();
  bool any = false;
  for (const NodeId u : seeds) {
    IPIN_CHECK_LT(u, num_nodes_);
    if (sealed_) {
      if (!arena_->has_node(u)) continue;
      any = true;
      // Sealed fast path: fold the node's rank-plane row straight in —
      // one contiguous vector max per seed.
      kernels::CellwiseMaxU8(ranks, arena_->rank_row(u).data(), beta);
      continue;
    }
    const VersionedHll* sketch = sketches_[u].get();
    if (sketch == nullptr) continue;
    any = true;
    kernels::CellwiseMaxU8(ranks, sketch->max_ranks().data(), beta);
  }
  if (!any) return 0.0;
  return kernels::Dispatched().estimate_from_ranks(ranks, beta);
}

size_t IrsApprox::NumAllocatedSketches() const {
  if (sealed_) return arena_->NumAllocated();
  size_t count = 0;
  for (const auto& s : sketches_) {
    if (s != nullptr) ++count;
  }
  return count;
}

size_t IrsApprox::TotalSketchEntries() const {
  if (sealed_) return arena_->TotalEntries();
  size_t total = 0;
  for (const auto& s : sketches_) {
    if (s != nullptr) total += s->NumEntries();
  }
  return total;
}

size_t IrsApprox::TotalInsertAttempts() const {
  if (sealed_) return sealed_insert_attempts_;
  size_t total = 0;
  for (const auto& s : sketches_) {
    if (s != nullptr) total += s->NumInsertAttempts();
  }
  return total;
}

size_t IrsApprox::TotalEvictions() const {
  if (sealed_) return sealed_evictions_;
  size_t total = 0;
  for (const auto& s : sketches_) {
    if (s != nullptr) total += s->NumEvictions();
  }
  return total;
}

size_t IrsApprox::TotalMergeEntriesScanned() const {
  if (sealed_) return sealed_merge_entries_scanned_;
  size_t total = 0;
  for (const auto& s : sketches_) {
    if (s != nullptr) total += s->NumMergeEntriesScanned();
  }
  return total;
}

size_t IrsApprox::TotalCellUpdates() const {
  if (sealed_) return sealed_cell_updates_;
  size_t total = 0;
  for (const auto& s : sketches_) {
    if (s != nullptr) total += s->NumCellUpdates();
  }
  return total;
}

size_t IrsApprox::MemoryUsageBytes() const {
  if (sealed_) return arena_->MemoryUsageBytes();
  size_t bytes = sketches_.capacity() * sizeof(std::unique_ptr<VersionedHll>);
  for (const auto& s : sketches_) {
    if (s != nullptr) bytes += sizeof(VersionedHll) + s->MemoryUsageBytes();
  }
  return bytes;
}

}  // namespace ipin
