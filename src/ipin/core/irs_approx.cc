#include "ipin/core/irs_approx.h"

#include "ipin/common/check.h"
#include "ipin/common/hash.h"
#include "ipin/obs/metrics.h"
#include "ipin/obs/trace.h"
#include "ipin/sketch/estimators.h"

namespace ipin {

IrsApprox::IrsApprox(size_t num_nodes, Duration window,
                     const IrsApproxOptions& options)
    : window_(window), options_(options), sketches_(num_nodes) {
  IPIN_CHECK_GE(window, 1);
}

IrsApprox::IrsApprox(Duration window, const IrsApproxOptions& options,
                     std::vector<std::unique_ptr<VersionedHll>> sketches)
    : window_(window), options_(options), sketches_(std::move(sketches)) {
  IPIN_CHECK_GE(window, 1);
  for (const auto& sketch : sketches_) {
    if (sketch != nullptr) {
      IPIN_CHECK_EQ(sketch->precision(), options_.precision);
      IPIN_CHECK_EQ(sketch->salt(), options_.salt);
    }
  }
}

IrsApprox IrsApprox::Compute(const InteractionGraph& graph, Duration window,
                             const IrsApproxOptions& options) {
  IPIN_TRACE_SPAN("irs.approx.compute");
  IPIN_CHECK(graph.is_sorted());
  IrsApprox irs(graph.num_nodes(), window, options);
  const auto& edges = graph.interactions();
  for (size_t i = edges.size(); i > 0; --i) {
    irs.ProcessInteraction(edges[i - 1]);
  }
  irs.PublishBuildMetrics();
  return irs;
}

void IrsApprox::PublishBuildMetrics() const {
  // Scan and per-sketch tallies (plain members, free to maintain) roll up
  // into the registry once per build, keeping the per-edge path atomics-free.
  IPIN_COUNTER_ADD("irs.approx.edges_scanned", edges_scanned_);
  IPIN_COUNTER_ADD("sketch.vhll.merges", merge_calls_);
  IPIN_COUNTER_ADD("sketch.vhll.merge_entries_scanned",
                   TotalMergeEntriesScanned());
  IPIN_COUNTER_ADD("sketch.vhll.cell_updates", TotalCellUpdates());
  IPIN_COUNTER_ADD("sketch.vhll.insert_attempts", TotalInsertAttempts());
  IPIN_COUNTER_ADD("sketch.vhll.dominance_evictions", TotalEvictions());
  IPIN_GAUGE_SET("sketch.vhll.total_entries", TotalSketchEntries());
  IPIN_GAUGE_SET("irs.approx.allocated_sketches", NumAllocatedSketches());
}

VersionedHll* IrsApprox::MutableSketch(NodeId u) {
  if (sketches_[u] == nullptr) {
    sketches_[u] =
        std::make_unique<VersionedHll>(options_.precision, options_.salt);
  }
  return sketches_[u].get();
}

void IrsApprox::ProcessInteraction(const Interaction& interaction) {
  const auto [u, v, t] = interaction;
  IPIN_CHECK_LT(u, sketches_.size());
  IPIN_CHECK_LT(v, sketches_.size());
  if (saw_interaction_) {
    IPIN_CHECK_LE(t, last_time_);  // reverse chronological order required
  }
  last_time_ = t;
  saw_interaction_ = true;

  ++edges_scanned_;
  VersionedHll* sketch_u = MutableSketch(u);
  // ApproxAdd: v joins sigma(u) with channel end time t. Self-loops are
  // filtered like in IrsExact (a node is not in its own IRS); a merge can
  // still fold u's own hash in via a temporal cycle — a one-item bias the
  // sketch cannot distinguish, documented in DESIGN.md.
  if (u != v) sketch_u->Add(static_cast<uint64_t>(v), t);
  // ApproxMerge: fold in phi(v) entries still inside the window. Self-loops
  // would merge the sketch into itself (a no-op); skip like IrsExact.
  if (u == v) return;
  const VersionedHll* sketch_v = sketches_[v].get();
  if (sketch_v != nullptr) {
    ++merge_calls_;
    sketch_u->MergeWindow(*sketch_v, t, window_);
  }
}

double IrsApprox::EstimateIrsSize(NodeId u) const {
  IPIN_CHECK_LT(u, sketches_.size());
  const VersionedHll* sketch = sketches_[u].get();
  return sketch == nullptr ? 0.0 : sketch->Estimate();
}

double IrsApprox::EstimateUnionSize(std::span<const NodeId> seeds) const {
  const size_t beta = static_cast<size_t>(1) << options_.precision;
  std::vector<uint8_t> ranks(beta, 0);
  bool any = false;
  for (const NodeId u : seeds) {
    IPIN_CHECK_LT(u, sketches_.size());
    const VersionedHll* sketch = sketches_[u].get();
    if (sketch == nullptr) continue;
    any = true;
    for (size_t c = 0; c < beta; ++c) {
      const auto& list = sketch->cell(c);
      if (!list.empty() && list.back().rank > ranks[c]) {
        ranks[c] = list.back().rank;
      }
    }
  }
  if (!any) return 0.0;
  return EstimateFromRanks(ranks);
}

size_t IrsApprox::NumAllocatedSketches() const {
  size_t count = 0;
  for (const auto& s : sketches_) {
    if (s != nullptr) ++count;
  }
  return count;
}

size_t IrsApprox::TotalSketchEntries() const {
  size_t total = 0;
  for (const auto& s : sketches_) {
    if (s != nullptr) total += s->NumEntries();
  }
  return total;
}

size_t IrsApprox::TotalInsertAttempts() const {
  size_t total = 0;
  for (const auto& s : sketches_) {
    if (s != nullptr) total += s->NumInsertAttempts();
  }
  return total;
}

size_t IrsApprox::TotalEvictions() const {
  size_t total = 0;
  for (const auto& s : sketches_) {
    if (s != nullptr) total += s->NumEvictions();
  }
  return total;
}

size_t IrsApprox::TotalMergeEntriesScanned() const {
  size_t total = 0;
  for (const auto& s : sketches_) {
    if (s != nullptr) total += s->NumMergeEntriesScanned();
  }
  return total;
}

size_t IrsApprox::TotalCellUpdates() const {
  size_t total = 0;
  for (const auto& s : sketches_) {
    if (s != nullptr) total += s->NumCellUpdates();
  }
  return total;
}

size_t IrsApprox::MemoryUsageBytes() const {
  size_t bytes = sketches_.capacity() * sizeof(std::unique_ptr<VersionedHll>);
  for (const auto& s : sketches_) {
    if (s != nullptr) bytes += sizeof(VersionedHll) + s->MemoryUsageBytes();
  }
  return bytes;
}

}  // namespace ipin
