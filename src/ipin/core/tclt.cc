#include "ipin/core/tclt.h"

#include <algorithm>
#include <unordered_set>

#include "ipin/common/check.h"
#include "ipin/graph/static_graph.h"

namespace ipin {

size_t SimulateTclt(const InteractionGraph& graph,
                    std::span<const NodeId> seeds, const TcltOptions& options,
                    Rng* rng) {
  IPIN_CHECK(graph.is_sorted());
  IPIN_CHECK_GE(options.window, 0);
  IPIN_CHECK(rng != nullptr);
  const size_t n = graph.num_nodes();

  // Static in-degrees define the classic LT weights 1/d_in(v).
  const StaticGraph reversed =
      StaticGraph::FromInteractions(graph, /*reversed=*/true);

  std::vector<double> threshold(n);
  for (size_t v = 0; v < n; ++v) threshold[v] = rng->NextDouble();

  std::vector<char> active(n, 0);
  std::vector<char> is_seed(n, 0);
  std::vector<double> accumulated(n, 0.0);
  std::vector<Timestamp> activate_time(n, kNoTimestamp);
  for (const NodeId s : seeds) {
    IPIN_CHECK_LT(s, n);
    is_seed[s] = 1;
  }

  // Each static edge contributes at most once, as in classic LT.
  std::unordered_set<uint64_t> contributed;

  for (const Interaction& e : graph.interactions()) {
    const auto [u, v, t] = e;
    if (is_seed[u] && !active[u]) {
      active[u] = 1;
      activate_time[u] = t;
    }
    if (!active[u] || (t - activate_time[u]) > options.window) continue;
    if (u == v) continue;

    const uint64_t key = (static_cast<uint64_t>(u) << 32) | v;
    if (!contributed.insert(key).second) continue;

    const size_t in_degree = reversed.OutDegree(v);
    const double weight = std::min(
        1.0, options.weight_scale / static_cast<double>(std::max<size_t>(
                 in_degree, 1)));
    accumulated[v] += weight;
    if (!active[v] && accumulated[v] >= threshold[v]) {
      active[v] = 1;
      activate_time[v] = activate_time[u];  // inherit the chain start
    } else if (active[v] && activate_time[u] > activate_time[v]) {
      activate_time[v] = activate_time[u];  // fresher chain extends reach
    }
  }

  size_t count = 0;
  for (const char a : active) {
    if (a) ++count;
  }
  return count;
}

double AverageTcltSpread(const InteractionGraph& graph,
                         std::span<const NodeId> seeds,
                         const TcltOptions& options, size_t num_runs,
                         uint64_t seed) {
  IPIN_CHECK_GE(num_runs, 1u);
  double total = 0.0;
  for (size_t run = 0; run < num_runs; ++run) {
    Rng rng(seed + run * 0x9e3779b97f4a7c15ULL);
    total += static_cast<double>(SimulateTclt(graph, seeds, options, &rng));
  }
  return total / static_cast<double>(num_runs);
}

}  // namespace ipin
