#include "ipin/core/influence_maximization.h"

#include <algorithm>
#include <queue>
#include <span>

#include "ipin/common/check.h"
#include "ipin/common/thread_pool.h"
#include "ipin/obs/metrics.h"
#include "ipin/obs/progress.h"
#include "ipin/obs/trace.h"

namespace ipin {
namespace {

// Nodes sorted descending by individual influence; ties by id for
// determinism.
std::vector<NodeId> NodesByInfluence(std::span<const double> influence) {
  std::vector<NodeId> order(influence.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<NodeId>(i);
  std::sort(order.begin(), order.end(), [&influence](NodeId a, NodeId b) {
    if (influence[a] != influence[b]) return influence[a] > influence[b];
    return a < b;
  });
  return order;
}

}  // namespace

SeedSelection SelectSeedsGreedy(const InfluenceOracle& oracle, size_t k) {
  IPIN_TRACE_SPAN("im.greedy.select");
  SeedSelection result;
  const size_t n = oracle.num_nodes();
  if (n == 0 || k == 0) return result;

  const std::vector<double> influence = oracle.InfluenceOfAll();
  const std::vector<NodeId> order = NodesByInfluence(influence);
  std::vector<char> selected(n, 0);
  auto coverage = oracle.NewCoverage();

  // Candidates are evaluated in parallel batches, then reduced strictly in
  // scan order, replaying Algorithm 4's sequential rules: the early-exit
  // bound is checked against the running best *before* consuming a gain,
  // and gain_evaluations counts only consumed gains. Seeds, gains, and
  // counts are therefore identical to the 1-thread scan; the only extra
  // work is the tail of the batch the bound cuts off (counted separately
  // as speculative evaluations).
  const size_t threads = GlobalThreads();
  const size_t batch_size = threads <= 1 ? 1 : std::max<size_t>(2 * threads, 16);
  std::vector<NodeId> batch;
  std::vector<double> batch_gains;
  batch.reserve(batch_size);

  size_t early_exits = 0;
  size_t speculative = 0;
  obs::ProgressPhase phase("im.greedy.rounds", k);
  while (result.seeds.size() < k) {
    double best_gain = 0.0;
    NodeId best_node = kInvalidNode;
    size_t pos = 0;
    bool round_done = false;
    while (pos < n && !round_done) {
      batch.clear();
      while (pos < n && batch.size() < batch_size) {
        const NodeId u = order[pos++];
        if (!selected[u]) batch.push_back(u);
      }
      if (batch.empty()) break;
      // Submodularity: marginal gain <= individual influence. The order is
      // descending in influence, so once the best gain found beats the
      // next candidate's individual influence no later candidate can win.
      if (best_node != kInvalidNode && best_gain >= influence[batch[0]]) {
        ++early_exits;
        break;
      }
      batch_gains.assign(batch.size(), 0.0);
      ParallelFor(0, batch.size(), 1, [&](size_t lo, size_t hi) {
        for (size_t b = lo; b < hi; ++b) {
          batch_gains[b] = coverage->GainOf(batch[b]);
        }
      });
      for (size_t b = 0; b < batch.size(); ++b) {
        const NodeId u = batch[b];
        if (best_node != kInvalidNode && best_gain >= influence[u]) {
          ++early_exits;
          speculative += batch.size() - b;
          round_done = true;
          break;
        }
        ++result.gain_evaluations;
        if (batch_gains[b] > best_gain || best_node == kInvalidNode) {
          best_gain = batch_gains[b];
          best_node = u;
        }
      }
    }
    if (best_node == kInvalidNode) break;  // all nodes selected
    selected[best_node] = 1;
    coverage->Commit(best_node);
    result.seeds.push_back(best_node);
    result.gains.push_back(best_gain);
    phase.Tick();
  }
  result.total_coverage = coverage->Covered();
  IPIN_COUNTER_ADD("im.greedy.gain_evaluations", result.gain_evaluations);
  IPIN_COUNTER_ADD("im.greedy.speculative_evaluations", speculative);
  IPIN_COUNTER_ADD("im.greedy.early_exits", early_exits);
  IPIN_COUNTER_ADD("im.greedy.seeds_selected", result.seeds.size());
  return result;
}

SeedSelection SelectSeedsCelf(const InfluenceOracle& oracle, size_t k) {
  IPIN_TRACE_SPAN("im.celf.select");
  SeedSelection result;
  const size_t n = oracle.num_nodes();
  if (n == 0 || k == 0) return result;

  auto coverage = oracle.NewCoverage();

  // Individual influences, used both as initial gain upper bounds and as the
  // secondary tie-break key so CELF selects exactly the node Algorithm 4's
  // sorted scan would (gain desc, then individual influence desc, then id).
  // Evaluated in parallel; values (and hence the heap order) are
  // thread-count independent.
  const std::vector<double> influence = oracle.InfluenceOfAll();

  // Max-heap of (cached gain, node, round the gain was computed in).
  struct HeapEntry {
    double gain;
    NodeId node;
    size_t round;
  };
  const auto cmp = [&influence](const HeapEntry& a, const HeapEntry& b) {
    if (a.gain != b.gain) return a.gain < b.gain;
    if (influence[a.node] != influence[b.node]) {
      return influence[a.node] < influence[b.node];
    }
    return a.node > b.node;  // final tie-break: smaller id wins
  };
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, decltype(cmp)> heap(
      cmp);
  for (size_t i = 0; i < n; ++i) {
    const NodeId u = static_cast<NodeId>(i);
    // Initial upper bound: individual influence (gain against empty cover).
    heap.push(HeapEntry{influence[i], u, 0});
  }

  size_t round = 1;
  size_t reinserts = 0;
  obs::ProgressPhase phase("im.celf.rounds", k);
  while (result.seeds.size() < k && !heap.empty()) {
    HeapEntry top = heap.top();
    heap.pop();
    if (top.round != round) {
      // Stale: re-evaluate against the current cover and re-insert.
      top.gain = coverage->GainOf(top.node);
      ++result.gain_evaluations;
      ++reinserts;
      top.round = round;
      heap.push(top);
      continue;
    }
    coverage->Commit(top.node);
    result.seeds.push_back(top.node);
    result.gains.push_back(top.gain);
    ++round;
    phase.Tick();
  }
  result.total_coverage = coverage->Covered();
  IPIN_COUNTER_ADD("im.celf.gain_evaluations", result.gain_evaluations);
  IPIN_COUNTER_ADD("im.celf.heap_reinserts", reinserts);
  IPIN_COUNTER_ADD("im.celf.seeds_selected", result.seeds.size());
  return result;
}

SeedSelection SelectSeedsExhaustive(const InfluenceOracle& oracle, size_t k) {
  const size_t n = oracle.num_nodes();
  IPIN_CHECK_LE(n, 25u);  // exponential search: tiny instances only
  SeedSelection best;
  if (n == 0 || k == 0) return best;
  k = std::min(k, n);

  std::vector<NodeId> subset(k);
  std::vector<size_t> idx(k);
  for (size_t i = 0; i < k; ++i) idx[i] = i;
  while (true) {
    for (size_t i = 0; i < k; ++i) subset[i] = static_cast<NodeId>(idx[i]);
    const double value = oracle.InfluenceOfSet(subset);
    ++best.gain_evaluations;
    if (value > best.total_coverage) {
      best.total_coverage = value;
      best.seeds = subset;
    }
    // Next combination.
    size_t i = k;
    while (i > 0 && idx[i - 1] == n - k + i - 1) --i;
    if (i == 0) break;
    ++idx[i - 1];
    for (size_t j = i; j < k; ++j) idx[j] = idx[j - 1] + 1;
  }
  return best;
}

}  // namespace ipin
