#include "ipin/core/oracle_io.h"

#include <cstring>
#include <fstream>
#include <sstream>

#include "ipin/common/logging.h"
#include "ipin/obs/memtally.h"

namespace ipin {
namespace {

// Serialization buffers charge the "oracle_io" tally so index save/load
// peaks show up in the mem.oracle_io.* gauges.
obs::MemoryTally& OracleIoMemTally() {
  static obs::MemoryTally& tally = obs::GetMemoryTally("oracle_io");
  return tally;
}

// File layout (little-endian):
//   8 bytes magic "IPINIDX1"
//   i64 window, u8 precision, u64 salt, u64 num_nodes
//   per node: u8 present; if present, a VersionedHll::Serialize blob.
constexpr char kMagic[8] = {'I', 'P', 'I', 'N', 'I', 'D', 'X', '1'};

template <typename T>
void AppendRaw(std::string* out, T value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadRaw(std::string_view data, size_t* offset, T* value) {
  if (data.size() - *offset < sizeof(T)) return false;
  std::memcpy(value, data.data() + *offset, sizeof(T));
  *offset += sizeof(T);
  return true;
}

}  // namespace

bool SaveInfluenceIndex(const IrsApprox& index, const std::string& path) {
  std::string buffer;
  buffer.append(kMagic, sizeof(kMagic));
  AppendRaw<int64_t>(&buffer, index.window());
  AppendRaw<uint8_t>(&buffer, static_cast<uint8_t>(index.options().precision));
  AppendRaw<uint64_t>(&buffer, index.options().salt);
  AppendRaw<uint64_t>(&buffer, index.num_nodes());
  obs::ScopedMemoryCharge charge(OracleIoMemTally(), buffer.capacity());
  for (NodeId u = 0; u < index.num_nodes(); ++u) {
    const VersionedHll* sketch = index.Sketch(u);
    AppendRaw<uint8_t>(&buffer, sketch != nullptr ? 1 : 0);
    if (sketch != nullptr) sketch->Serialize(&buffer);
    charge.Resize(buffer.capacity());
  }

  std::ofstream out(path, std::ios::binary);
  if (!out) {
    LogError("cannot open index file for writing: " + path);
    return false;
  }
  out.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
  return static_cast<bool>(out);
}

std::optional<IrsApprox> LoadInfluenceIndex(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    LogError("cannot open index file: " + path);
    return std::nullopt;
  }
  std::ostringstream contents;
  contents << in.rdbuf();
  const std::string buffer = contents.str();
  const obs::ScopedMemoryCharge charge(OracleIoMemTally(), buffer.capacity());

  size_t offset = 0;
  if (buffer.size() < sizeof(kMagic) ||
      std::memcmp(buffer.data(), kMagic, sizeof(kMagic)) != 0) {
    LogError("bad magic in index file: " + path);
    return std::nullopt;
  }
  offset = sizeof(kMagic);

  int64_t window = 0;
  uint8_t precision = 0;
  uint64_t salt = 0;
  uint64_t num_nodes = 0;
  if (!ReadRaw<int64_t>(buffer, &offset, &window) ||
      !ReadRaw<uint8_t>(buffer, &offset, &precision) ||
      !ReadRaw<uint64_t>(buffer, &offset, &salt) ||
      !ReadRaw<uint64_t>(buffer, &offset, &num_nodes)) {
    LogError("truncated index header: " + path);
    return std::nullopt;
  }
  if (window < 1 || precision < 4 || precision > 18) {
    LogError("corrupt index header: " + path);
    return std::nullopt;
  }

  std::vector<std::unique_ptr<VersionedHll>> sketches(num_nodes);
  for (uint64_t u = 0; u < num_nodes; ++u) {
    uint8_t present = 0;
    if (!ReadRaw<uint8_t>(buffer, &offset, &present)) {
      LogError("truncated index body: " + path);
      return std::nullopt;
    }
    if (present == 0) continue;
    auto sketch = VersionedHll::Deserialize(buffer, &offset);
    if (!sketch.has_value() || sketch->precision() != precision ||
        sketch->salt() != salt) {
      LogError("corrupt sketch in index file: " + path);
      return std::nullopt;
    }
    sketches[u] = std::make_unique<VersionedHll>(std::move(*sketch));
  }

  IrsApproxOptions options;
  options.precision = precision;
  options.salt = salt;
  return IrsApprox(window, options, std::move(sketches));
}

}  // namespace ipin
