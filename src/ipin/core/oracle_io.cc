#include "ipin/core/oracle_io.h"

#include <cstring>
#include <fstream>
#include <sstream>

#include "ipin/common/failpoint.h"
#include "ipin/common/logging.h"
#include "ipin/common/safe_io.h"
#include "ipin/common/string_util.h"
#include "ipin/obs/memtally.h"
#include "ipin/obs/metrics.h"

namespace ipin {
namespace {

// Serialization buffers charge the "oracle_io" tally so index save/load
// peaks show up in the mem.oracle_io.* gauges.
obs::MemoryTally& OracleIoMemTally() {
  static obs::MemoryTally& tally = obs::GetMemoryTally("oracle_io");
  return tally;
}

// Framed (safe_io) format: file type tag "IIDX", version 2.
//   frame 0: i64 window, u8 precision, u64 salt, u64 num_nodes,
//            u32 chunk_size
//   frame k: u64 first_node, u32 count, then per node
//            u8 present [+ VersionedHll::Serialize blob]
// Chunks cover [0, num_nodes) in order, kChunkSize nodes each, so a dropped
// frame loses exactly one known slice of nodes.
constexpr uint32_t kIndexFileType = 0x58444949;  // "IIDX" little-endian
constexpr uint32_t kIndexFormatVersion = 2;
constexpr uint32_t kChunkSize = 256;

// Pre-safe_io format (version 1): raw "IPINIDX1" header + body, written
// in place. Still readable for backward compatibility.
constexpr char kLegacyMagic[8] = {'I', 'P', 'I', 'N', 'I', 'D', 'X', '1'};

template <typename T>
void AppendRaw(std::string* out, T value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadRaw(std::string_view data, size_t* offset, T* value) {
  if (data.size() - *offset < sizeof(T)) return false;
  std::memcpy(value, data.data() + *offset, sizeof(T));
  *offset += sizeof(T);
  return true;
}

struct IndexHeader {
  int64_t window = 0;
  uint8_t precision = 0;
  uint64_t salt = 0;
  uint64_t num_nodes = 0;
  uint32_t chunk_size = 0;
};

bool ParseIndexHeader(std::string_view payload, IndexHeader* header) {
  size_t offset = 0;
  if (!ReadRaw(payload, &offset, &header->window) ||
      !ReadRaw(payload, &offset, &header->precision) ||
      !ReadRaw(payload, &offset, &header->salt) ||
      !ReadRaw(payload, &offset, &header->num_nodes) ||
      !ReadRaw(payload, &offset, &header->chunk_size)) {
    return false;
  }
  return header->window >= 1 && header->precision >= 4 &&
         header->precision <= 18 && header->chunk_size >= 1;
}

// Parses one chunk frame into `sketches`. Returns false (chunk dropped, no
// partial writes visible beyond already-placed sketches) on any mismatch.
bool ParseChunk(std::string_view payload, const IndexHeader& header,
                std::vector<std::unique_ptr<VersionedHll>>* sketches) {
  size_t offset = 0;
  uint64_t first_node = 0;
  uint32_t count = 0;
  if (!ReadRaw(payload, &offset, &first_node) ||
      !ReadRaw(payload, &offset, &count)) {
    return false;
  }
  if (count > header.chunk_size || first_node + count > header.num_nodes) {
    return false;
  }
  for (uint64_t u = first_node; u < first_node + count; ++u) {
    uint8_t present = 0;
    if (!ReadRaw(payload, &offset, &present)) return false;
    if (present == 0) continue;
    auto sketch = VersionedHll::Deserialize(payload, &offset);
    if (!sketch.has_value() || sketch->precision() != header.precision ||
        sketch->salt() != header.salt) {
      return false;
    }
    (*sketches)[u] = std::make_unique<VersionedHll>(std::move(*sketch));
  }
  return offset == payload.size();
}

bool HasLegacyMagic(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  char magic[sizeof(kLegacyMagic)];
  in.read(magic, sizeof(magic));
  return in.gcount() == sizeof(magic) &&
         std::memcmp(magic, kLegacyMagic, sizeof(kLegacyMagic)) == 0;
}

// Loads the pre-safe_io in-place format: no per-section checksums, so any
// damage makes the whole file unusable (all-or-nothing).
IndexLoadResult LoadLegacyIndex(const std::string& path) {
  IndexLoadResult result;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    LogError("cannot open index file: " + path);
    result.status = IndexLoadStatus::kMissing;
    return result;
  }
  std::ostringstream contents;
  contents << in.rdbuf();
  const std::string buffer = contents.str();
  const obs::ScopedMemoryCharge charge(OracleIoMemTally(), buffer.capacity());
  IPIN_COUNTER_ADD("robustness.index.legacy_loads", 1);

  size_t offset = sizeof(kLegacyMagic);
  int64_t window = 0;
  uint8_t precision = 0;
  uint64_t salt = 0;
  uint64_t num_nodes = 0;
  if (!ReadRaw<int64_t>(buffer, &offset, &window) ||
      !ReadRaw<uint8_t>(buffer, &offset, &precision) ||
      !ReadRaw<uint64_t>(buffer, &offset, &salt) ||
      !ReadRaw<uint64_t>(buffer, &offset, &num_nodes)) {
    LogError("truncated index header: " + path);
    result.status = IndexLoadStatus::kTruncated;
    return result;
  }
  if (window < 1 || precision < 4 || precision > 18) {
    LogError("corrupt index header: " + path);
    result.status = IndexLoadStatus::kCorrupt;
    return result;
  }

  std::vector<std::unique_ptr<VersionedHll>> sketches(num_nodes);
  for (uint64_t u = 0; u < num_nodes; ++u) {
    uint8_t present = 0;
    if (!ReadRaw<uint8_t>(buffer, &offset, &present)) {
      LogError("truncated index body: " + path);
      result.status = IndexLoadStatus::kTruncated;
      return result;
    }
    if (present == 0) continue;
    auto sketch = VersionedHll::Deserialize(buffer, &offset);
    if (!sketch.has_value() || sketch->precision() != precision ||
        sketch->salt() != salt) {
      LogError("corrupt sketch in index file: " + path);
      result.status = IndexLoadStatus::kCorrupt;
      return result;
    }
    sketches[u] = std::make_unique<VersionedHll>(std::move(*sketch));
  }

  IrsApproxOptions options;
  options.precision = precision;
  options.salt = salt;
  result.index.emplace(window, options, std::move(sketches));
  result.status = IndexLoadStatus::kOk;
  return result;
}

}  // namespace

bool SaveInfluenceIndex(const IrsApprox& index, const std::string& path) {
  if (IPIN_FAILPOINT("oracle_io.save").fail) {
    LogError("oracle_io: injected save failure for " + path);
    return false;
  }
  SafeFileWriter writer(path, kIndexFileType, kIndexFormatVersion);

  std::string header;
  AppendRaw<int64_t>(&header, index.window());
  AppendRaw<uint8_t>(&header, static_cast<uint8_t>(index.options().precision));
  AppendRaw<uint64_t>(&header, index.options().salt);
  AppendRaw<uint64_t>(&header, index.num_nodes());
  AppendRaw<uint32_t>(&header, kChunkSize);
  if (!writer.AppendFrame(header)) return false;

  std::string chunk;
  obs::ScopedMemoryCharge charge(OracleIoMemTally(), chunk.capacity());
  for (uint64_t first = 0; first < index.num_nodes(); first += kChunkSize) {
    const uint32_t count = static_cast<uint32_t>(
        std::min<uint64_t>(kChunkSize, index.num_nodes() - first));
    chunk.clear();
    AppendRaw<uint64_t>(&chunk, first);
    AppendRaw<uint32_t>(&chunk, count);
    for (uint64_t u = first; u < first + count; ++u) {
      const SketchView sketch = index.Sketch(static_cast<NodeId>(u));
      AppendRaw<uint8_t>(&chunk, sketch ? 1 : 0);
      if (sketch) sketch.Serialize(&chunk);
    }
    charge.Resize(chunk.capacity());
    // Torn-section injection: hand safe_io a CRC-consistent but truncated
    // payload, producing a frame that verifies yet fails to parse — the
    // "corrupt section" recovery path, distinct from a torn file.
    const auto short_write = IPIN_FAILPOINT("oracle_io.write.short");
    std::string_view payload = chunk;
    if (short_write.short_write != failpoint::Result::kNoLimit) {
      payload = payload.substr(0, short_write.short_write);
    }
    if (!writer.AppendFrame(payload)) return false;
  }
  return writer.Commit();
}

IndexLoadResult LoadInfluenceIndexDetailed(const std::string& path) {
  IndexLoadResult result;
  if (IPIN_FAILPOINT("oracle_io.load").fail) {
    LogError("oracle_io: injected load failure for " + path);
    return result;  // kMissing
  }

  SafeFileReader reader;
  const SafeOpenStatus open_status = reader.Open(path, kIndexFileType);
  if (open_status != SafeOpenStatus::kOk) {
    if (open_status == SafeOpenStatus::kCorrupt && HasLegacyMagic(path)) {
      return LoadLegacyIndex(path);
    }
    switch (open_status) {
      case SafeOpenStatus::kMissing:
        LogError("cannot open index file: " + path);
        result.status = IndexLoadStatus::kMissing;
        break;
      case SafeOpenStatus::kTruncated:
        LogError("index file truncated before header: " + path);
        result.status = IndexLoadStatus::kTruncated;
        break;
      default:
        LogError("index file header corrupt: " + path);
        result.status = IndexLoadStatus::kCorrupt;
        break;
    }
    return result;
  }

  std::string payload;
  const FrameStatus header_status = reader.ReadFrame(&payload);
  IndexHeader header;
  if (header_status != FrameStatus::kOk || !ParseIndexHeader(payload, &header)) {
    LogError("index header frame unreadable: " + path);
    result.status = header_status == FrameStatus::kTruncated
                        ? IndexLoadStatus::kTruncated
                        : IndexLoadStatus::kCorrupt;
    return result;
  }

  result.sections_total =
      static_cast<size_t>((header.num_nodes + header.chunk_size - 1) /
                          header.chunk_size);
  std::vector<std::unique_ptr<VersionedHll>> sketches(header.num_nodes);
  const obs::ScopedMemoryCharge charge(OracleIoMemTally(),
                                       payload.capacity());
  size_t sections_read = 0;
  while (sections_read < result.sections_total) {
    const FrameStatus status = reader.ReadFrame(&payload);
    if (status == FrameStatus::kOk) {
      ++sections_read;
      if (!ParseChunk(payload, header, &sketches)) {
        ++result.sections_dropped;
        LogWarning(StrFormat("index %s: section %zu unparsable, dropped",
                             path.c_str(), sections_read - 1));
      }
      continue;
    }
    if (status == FrameStatus::kCorrupt && reader.CanContinue()) {
      ++sections_read;
      ++result.sections_dropped;
      LogWarning(StrFormat("index %s: section %zu failed checksum, dropped",
                           path.c_str(), sections_read - 1));
      continue;
    }
    // Truncation, an untrustworthy frame header, or a premature clean EOF:
    // every section not yet seen is unreachable.
    result.sections_dropped += result.sections_total - sections_read;
    LogWarning(StrFormat("index %s: %zu trailing section(s) unreachable",
                         path.c_str(), result.sections_total - sections_read));
    break;
  }

  IrsApproxOptions options;
  options.precision = header.precision;
  options.salt = header.salt;
  result.index.emplace(header.window, options, std::move(sketches));
  result.status = result.sections_dropped == 0 ? IndexLoadStatus::kOk
                                               : IndexLoadStatus::kDegraded;
  IPIN_COUNTER_ADD("robustness.index.sections_dropped",
                   result.sections_dropped);
  if (result.status == IndexLoadStatus::kDegraded) {
    IPIN_COUNTER_ADD("robustness.index.degraded_loads", 1);
  }
  IPIN_GAUGE_SET("robustness.index.degraded",
                 result.status == IndexLoadStatus::kDegraded ? 1 : 0);
  return result;
}

std::optional<IrsApprox> LoadInfluenceIndex(const std::string& path) {
  IndexLoadResult result = LoadInfluenceIndexDetailed(path);
  if (result.status == IndexLoadStatus::kDegraded) {
    LogWarning(StrFormat(
        "index %s loaded DEGRADED: %zu of %zu sections dropped", path.c_str(),
        result.sections_dropped, result.sections_total));
  }
  return std::move(result.index);
}

}  // namespace ipin
