#include "ipin/core/irs_exact.h"

#include <algorithm>

#include "ipin/common/check.h"
#include "ipin/common/memory.h"

namespace ipin {

IrsExact::IrsExact(size_t num_nodes, Duration window)
    : window_(window), last_time_(0), summaries_(num_nodes) {
  IPIN_CHECK_GE(window, 1);
}

IrsExact IrsExact::Compute(const InteractionGraph& graph, Duration window) {
  IPIN_CHECK(graph.is_sorted());
  IrsExact irs(graph.num_nodes(), window);
  const auto& edges = graph.interactions();
  for (size_t i = edges.size(); i > 0; --i) {
    irs.ProcessInteraction(edges[i - 1]);
  }
  return irs;
}

void IrsExact::Add(NodeId u, NodeId v, Timestamp t) {
  // A node is not part of its own IRS: the paper's Example 2 drops the
  // temporal cycle e -> b -> e from phi(e), so Add filters self-entries
  // (they can arise from self-loop interactions or temporal cycles).
  if (u == v) return;
  auto [it, inserted] = summaries_[u].emplace(v, t);
  if (!inserted && it->second > t) it->second = t;
}

void IrsExact::ProcessInteraction(const Interaction& interaction) {
  const auto [u, v, t] = interaction;
  IPIN_CHECK_LT(u, summaries_.size());
  IPIN_CHECK_LT(v, summaries_.size());
  if (saw_interaction_) {
    IPIN_CHECK_LE(t, last_time_);  // reverse chronological order required
  }
  last_time_ = t;
  saw_interaction_ = true;

  // Add: the single-interaction channel u -> v ends at t.
  Add(u, v, t);

  // Merge: channels that start with (u, v, t) and continue along a channel
  // from v reaching x at time t_x are valid iff t_x - t < window
  // (duration t_x - t + 1 <= window). A self-loop would merge phi(u) into
  // itself — semantically a no-op (Add never worsens an entry), so skip it
  // rather than iterate a container being modified.
  if (u == v) return;
  for (const auto& [x, tx] : summaries_[v]) {
    if (tx - t < window_) Add(u, x, tx);  // Add drops x == u (self-cycles)
  }
}

std::vector<NodeId> IrsExact::IrsSet(NodeId u) const {
  std::vector<NodeId> nodes;
  nodes.reserve(summaries_[u].size());
  for (const auto& [v, t] : summaries_[u]) {
    (void)t;
    nodes.push_back(v);
  }
  std::sort(nodes.begin(), nodes.end());
  return nodes;
}

size_t IrsExact::UnionSize(std::span<const NodeId> seeds) const {
  std::unordered_map<NodeId, char> seen;
  for (const NodeId u : seeds) {
    IPIN_CHECK_LT(u, summaries_.size());
    for (const auto& [v, t] : summaries_[u]) {
      (void)t;
      seen.emplace(v, 1);
    }
  }
  return seen.size();
}

size_t IrsExact::TotalSummaryEntries() const {
  size_t total = 0;
  for (const auto& summary : summaries_) total += summary.size();
  return total;
}

size_t IrsExact::MemoryUsageBytes() const {
  size_t bytes = summaries_.capacity() *
                 sizeof(std::unordered_map<NodeId, Timestamp>);
  for (const auto& summary : summaries_) {
    bytes += HashMapBytes(summary.size(), summary.bucket_count(),
                          sizeof(NodeId) + sizeof(Timestamp));
  }
  return bytes;
}

}  // namespace ipin
