#include "ipin/core/irs_exact.h"

#include <algorithm>

#include "ipin/common/check.h"
#include "ipin/common/memory.h"
#include "ipin/obs/metrics.h"
#include "ipin/obs/progress.h"
#include "ipin/obs/trace.h"

namespace ipin {

obs::MemoryTally& IrsExactMemTally() {
  static obs::MemoryTally& tally = obs::GetMemoryTally("irs_exact");
  return tally;
}

IrsExact::IrsExact(size_t num_nodes, Duration window)
    : window_(window), last_time_(0), summaries_(num_nodes) {
  IPIN_CHECK_GE(window, 1);
}

IrsExact IrsExact::Compute(const InteractionGraph& graph, Duration window) {
  IPIN_TRACE_SPAN("irs.exact.compute");
  IPIN_CHECK(graph.is_sorted());
  IrsExact irs(graph.num_nodes(), window);
  const auto& edges = graph.interactions();
  obs::ProgressPhase phase("irs.exact.scan", edges.size());
  size_t since_tick = 0;
  for (size_t i = edges.size(); i > 0; --i) {
    irs.ProcessInteraction(edges[i - 1]);
    // Chunked ticks keep the per-edge path atomics-free.
    if (++since_tick == (size_t{64} << 10)) {
      phase.Tick(since_tick);
      since_tick = 0;
    }
  }
  phase.SetDone(edges.size());
  irs.PublishBuildMetrics();
  return irs;
}

void IrsExact::PublishBuildMetrics() const {
  // Scan tallies (plain members, free to maintain) roll up into the
  // registry once per build, keeping the per-edge path atomics-free.
  IPIN_COUNTER_ADD("irs.exact.edges_scanned", edges_scanned_);
  IPIN_COUNTER_ADD("irs.exact.summary_inserts", summary_inserts_);
  IPIN_COUNTER_ADD("irs.exact.summary_updates", summary_updates_);
  IPIN_COUNTER_ADD("irs.exact.window_prunes", window_prunes_);
  IPIN_GAUGE_SET("irs.exact.summary_entries", TotalSummaryEntries());
}

IrsExact::AddResult IrsExact::Add(NodeId u, NodeId v, Timestamp t) {
  // A node is not part of its own IRS: the paper's Example 2 drops the
  // temporal cycle e -> b -> e from phi(e), so Add filters self-entries
  // (they can arise from self-loop interactions or temporal cycles).
  if (u == v) return AddResult::kUnchanged;
  auto [it, inserted] = summaries_[u].emplace(v, t);
  if (inserted) return AddResult::kInserted;
  if (it->second > t) {
    it->second = t;
    return AddResult::kImproved;
  }
  return AddResult::kUnchanged;
}

void IrsExact::ProcessInteraction(const Interaction& interaction) {
  const auto [u, v, t] = interaction;
  IPIN_CHECK_LT(u, summaries_.size());
  IPIN_CHECK_LT(v, summaries_.size());
  if (saw_interaction_) {
    IPIN_CHECK_LE(t, last_time_);  // reverse chronological order required
  }
  last_time_ = t;
  saw_interaction_ = true;

  ++edges_scanned_;
  const auto tally = [this](AddResult result) {
    summary_inserts_ += result == AddResult::kInserted;
    summary_updates_ += result == AddResult::kImproved;
  };

  // Add: the single-interaction channel u -> v ends at t.
  tally(Add(u, v, t));

  // Merge: channels that start with (u, v, t) and continue along a channel
  // from v reaching x at time t_x are valid iff t_x - t < window
  // (duration t_x - t + 1 <= window). A self-loop would merge phi(u) into
  // itself — semantically a no-op (Add never worsens an entry), so skip it
  // rather than iterate a container being modified.
  if (u != v) {
    for (const auto& [x, tx] : summaries_[v]) {
      if (tx - t < window_) {
        tally(Add(u, x, tx));  // Add drops x == u (self-cycles)
      } else {
        ++window_prunes_;  // window prune: channel too old to extend
      }
    }
  }
}

std::vector<NodeId> IrsExact::IrsSet(NodeId u) const {
  std::vector<NodeId> nodes;
  nodes.reserve(summaries_[u].size());
  for (const auto& [v, t] : summaries_[u]) {
    (void)t;
    nodes.push_back(v);
  }
  std::sort(nodes.begin(), nodes.end());
  return nodes;
}

size_t IrsExact::UnionSize(std::span<const NodeId> seeds) const {
  std::unordered_map<NodeId, char> seen;
  for (const NodeId u : seeds) {
    IPIN_CHECK_LT(u, summaries_.size());
    for (const auto& [v, t] : summaries_[u]) {
      (void)t;
      seen.emplace(v, 1);
    }
  }
  return seen.size();
}

size_t IrsExact::TotalSummaryEntries() const {
  size_t total = 0;
  for (const auto& summary : summaries_) total += summary.size();
  return total;
}

size_t IrsExact::MemoryUsageBytes() const {
  size_t bytes = summaries_.capacity() * sizeof(IrsSummaryMap);
  for (const auto& summary : summaries_) {
    bytes += HashMapBytes(summary.size(), summary.bucket_count(),
                          sizeof(NodeId) + sizeof(Timestamp));
  }
  return bytes;
}

}  // namespace ipin
