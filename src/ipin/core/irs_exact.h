#ifndef IPIN_CORE_IRS_EXACT_H_
#define IPIN_CORE_IRS_EXACT_H_

#include <cstddef>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "ipin/graph/interaction_graph.h"
#include "ipin/graph/types.h"
#include "ipin/obs/memtally.h"

namespace ipin {

/// Byte tally charged for every exact-IRS summary-map allocation (component
/// "irs_exact"); published as the mem.irs_exact.* gauges.
obs::MemoryTally& IrsExactMemTally();

/// phi(u) map type: reachable node -> earliest channel end time. Nodes and
/// buckets charge the "irs_exact" MemoryTally, so mem.irs_exact.bytes is a
/// measured (allocator-counted) footprint.
using IrsSummaryMap = std::unordered_map<
    NodeId, Timestamp, std::hash<NodeId>, std::equal_to<NodeId>,
    obs::TallyAllocator<std::pair<const NodeId, Timestamp>,
                        &IrsExactMemTally>>;

/// Exact influence-reachability-set computation (the paper's Algorithm 2).
///
/// Scans the interaction list once in reverse chronological order and
/// maintains, per node u, the IRS summary phi(u) = {(v, lambda(u, v))}: for
/// every node v reachable from u by an information channel of duration at
/// most `window`, the earliest end time of such a channel. By Lemma 1, an
/// interaction earlier than everything processed so far can only change the
/// summary of its own source, which makes the single reverse pass correct
/// (Theorem 1).
///
/// Complexity: O(m * n) time, O(n^2) space worst case (Lemma 3) — exact but
/// memory-hungry; see IrsApprox for the sketch-based variant.
class IrsExact {
 public:
  /// Runs the full reverse scan. `graph` must be sorted by time;
  /// `window` >= 1.
  static IrsExact Compute(const InteractionGraph& graph, Duration window);

  /// Creates an empty instance (all summaries empty) for `num_nodes` nodes;
  /// use ProcessInteraction to feed interactions in reverse time order.
  IrsExact(size_t num_nodes, Duration window);

  /// Processes one interaction; MUST be called in non-increasing time order
  /// (checked). This is the body of Algorithm 2's loop: Add + Merge.
  void ProcessInteraction(const Interaction& interaction);

  /// phi(u): reachable node -> earliest channel end time.
  const IrsSummaryMap& Summary(NodeId u) const { return summaries_[u]; }

  /// |sigma_omega(u)|.
  size_t IrsSize(NodeId u) const { return summaries_[u].size(); }

  /// sigma_omega(u) as a sorted node list.
  std::vector<NodeId> IrsSet(NodeId u) const;

  /// Exact cardinality of the union of the seeds' IRSs (the Influence
  /// Oracle of Section 4.1, exact flavour).
  size_t UnionSize(std::span<const NodeId> seeds) const;

  size_t num_nodes() const { return summaries_.size(); }
  Duration window() const { return window_; }

  /// Total number of (node, time) entries across all summaries.
  size_t TotalSummaryEntries() const;

  /// Approximate heap footprint in bytes.
  size_t MemoryUsageBytes() const;

 private:
  // Serialization/restore hooks for the crash-safe checkpoint layer
  // (core/checkpoint.cc): reads and reinstates the private scan state so a
  // resumed build is indistinguishable from an uninterrupted one.
  friend class CheckpointAccess;

  // What Algorithm 2's Add did to phi(u); reported to the metrics registry.
  enum class AddResult { kUnchanged, kInserted, kImproved };

  // Algorithm 2's Add: keep the smaller lambda for an existing target.
  AddResult Add(NodeId u, NodeId v, Timestamp t);

  // Rolls the plain-member scan tallies up into the metrics registry; called
  // once per completed build (by Compute and the checkpointed variant).
  void PublishBuildMetrics() const;

  Duration window_;
  Timestamp last_time_;
  bool saw_interaction_ = false;
  // Scan tallies: plain members so the per-edge path stays atomics-free;
  // Compute() rolls them up into the metrics registry once per build.
  size_t edges_scanned_ = 0;
  size_t summary_inserts_ = 0;
  size_t summary_updates_ = 0;
  size_t window_prunes_ = 0;
  std::vector<IrsSummaryMap> summaries_;
};

}  // namespace ipin

#endif  // IPIN_CORE_IRS_EXACT_H_
