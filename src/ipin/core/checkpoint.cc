#include "ipin/core/checkpoint.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <memory>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "ipin/common/check.h"
#include "ipin/common/failpoint.h"
#include "ipin/common/hash.h"
#include "ipin/common/logging.h"
#include "ipin/common/safe_io.h"
#include "ipin/common/string_util.h"
#include "ipin/obs/ledger.h"
#include "ipin/obs/metrics.h"
#include "ipin/obs/progress.h"
#include "ipin/obs/trace.h"

namespace ipin {

// Friend of IrsExact and IrsApprox: the only code that reads/reinstates
// their private scan state, keeping the checkpoint format out of the
// algorithm classes.
class CheckpointAccess {
 public:
  static void SetScanPosition(IrsExact* irs, Timestamp last_time,
                              bool saw_interaction) {
    irs->last_time_ = last_time;
    irs->saw_interaction_ = saw_interaction;
  }
  static void SetScanPosition(IrsApprox* irs, Timestamp last_time,
                              bool saw_interaction) {
    irs->last_time_ = last_time;
    irs->saw_interaction_ = saw_interaction;
  }

  // Tallies travel in the checkpoint's meta frame so a resumed build
  // publishes the same irs.* scan metrics as an uninterrupted one.
  // (Per-sketch lifetime tallies inside VersionedHll are NOT checkpointed;
  // see DESIGN.md §8.)
  static void GetTallies(const IrsExact& irs, uint64_t tally[4]) {
    tally[0] = irs.edges_scanned_;
    tally[1] = irs.summary_inserts_;
    tally[2] = irs.summary_updates_;
    tally[3] = irs.window_prunes_;
  }
  static void SetTallies(IrsExact* irs, const uint64_t tally[4]) {
    irs->edges_scanned_ = tally[0];
    irs->summary_inserts_ = tally[1];
    irs->summary_updates_ = tally[2];
    irs->window_prunes_ = tally[3];
  }
  static void GetTallies(const IrsApprox& irs, uint64_t tally[4]) {
    tally[0] = irs.edges_scanned_;
    tally[1] = irs.merge_calls_;
    tally[2] = tally[3] = 0;
  }
  static void SetTallies(IrsApprox* irs, const uint64_t tally[4]) {
    irs->edges_scanned_ = tally[0];
    irs->merge_calls_ = tally[1];
  }

  static Timestamp LastTime(const IrsExact& irs) { return irs.last_time_; }
  static Timestamp LastTime(const IrsApprox& irs) { return irs.last_time_; }
  static bool SawInteraction(const IrsExact& irs) {
    return irs.saw_interaction_;
  }
  static bool SawInteraction(const IrsApprox& irs) {
    return irs.saw_interaction_;
  }

  static IrsSummaryMap* MutableSummary(IrsExact* irs, NodeId u) {
    return &irs->summaries_[u];
  }
  static void InstallSketch(IrsApprox* irs, NodeId u,
                            std::unique_ptr<VersionedHll> sketch) {
    irs->sketches_[u] = std::move(sketch);
  }
  static void Publish(const IrsExact& irs) { irs.PublishBuildMetrics(); }
  static void Publish(const IrsApprox& irs) { irs.PublishBuildMetrics(); }
};

namespace {

namespace fs = std::filesystem;

constexpr uint32_t kCheckpointFileType = 0x504b4349;  // "ICKP" little-endian
constexpr uint32_t kCheckpointVersion = 1;
constexpr uint32_t kChunkSize = 256;  // nodes per frame
constexpr uint8_t kAlgoExact = 1;
constexpr uint8_t kAlgoApprox = 2;
constexpr char kSuffix[] = ".ipinckpt";

template <typename T>
void AppendRaw(std::string* out, T value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadRaw(std::string_view data, size_t* offset, T* value) {
  if (data.size() - *offset < sizeof(T)) return false;
  std::memcpy(value, data.data() + *offset, sizeof(T));
  *offset += sizeof(T);
  return true;
}

// Everything a checkpoint must agree on with the running build before it is
// allowed to resume into it.
struct Fingerprint {
  uint8_t algo = 0;
  int64_t window = 0;
  uint64_t num_nodes = 0;
  uint64_t num_interactions = 0;
  uint64_t graph_hash = 0;
  uint8_t precision = 0;  // approx only, 0 for exact
  uint64_t salt = 0;      // approx only, 0 for exact

  bool Matches(const Fingerprint& other) const {
    return algo == other.algo && window == other.window &&
           num_nodes == other.num_nodes &&
           num_interactions == other.num_interactions &&
           graph_hash == other.graph_hash && precision == other.precision &&
           salt == other.salt;
  }
};

// Scan position + tallies carried in the meta frame beside the fingerprint.
struct MetaFrame {
  Fingerprint fp;
  uint64_t edges_processed = 0;
  int64_t last_time = 0;
  uint8_t saw_interaction = 0;
  uint32_t chunk_size = 0;
  uint64_t tally[4] = {0, 0, 0, 0};
};

uint64_t GraphHash(const InteractionGraph& graph) {
  static_assert(std::has_unique_object_representations_v<Interaction>,
                "Interaction must be padding-free to hash its bytes");
  const auto& edges = graph.interactions();
  const uint64_t h =
      HashBytes(edges.data(), edges.size() * sizeof(Interaction),
                /*seed=*/0x49504e43u);
  return HashCombine(h, Hash64(graph.num_nodes()));
}

void SerializeMeta(const MetaFrame& meta, std::string* out) {
  AppendRaw<uint8_t>(out, meta.fp.algo);
  AppendRaw<int64_t>(out, meta.fp.window);
  AppendRaw<uint64_t>(out, meta.fp.num_nodes);
  AppendRaw<uint64_t>(out, meta.fp.num_interactions);
  AppendRaw<uint64_t>(out, meta.fp.graph_hash);
  AppendRaw<uint8_t>(out, meta.fp.precision);
  AppendRaw<uint64_t>(out, meta.fp.salt);
  AppendRaw<uint64_t>(out, meta.edges_processed);
  AppendRaw<int64_t>(out, meta.last_time);
  AppendRaw<uint8_t>(out, meta.saw_interaction);
  AppendRaw<uint32_t>(out, meta.chunk_size);
  for (const uint64_t t : meta.tally) AppendRaw<uint64_t>(out, t);
}

bool ParseMeta(std::string_view payload, MetaFrame* meta) {
  size_t offset = 0;
  if (!ReadRaw(payload, &offset, &meta->fp.algo) ||
      !ReadRaw(payload, &offset, &meta->fp.window) ||
      !ReadRaw(payload, &offset, &meta->fp.num_nodes) ||
      !ReadRaw(payload, &offset, &meta->fp.num_interactions) ||
      !ReadRaw(payload, &offset, &meta->fp.graph_hash) ||
      !ReadRaw(payload, &offset, &meta->fp.precision) ||
      !ReadRaw(payload, &offset, &meta->fp.salt) ||
      !ReadRaw(payload, &offset, &meta->edges_processed) ||
      !ReadRaw(payload, &offset, &meta->last_time) ||
      !ReadRaw(payload, &offset, &meta->saw_interaction) ||
      !ReadRaw(payload, &offset, &meta->chunk_size)) {
    return false;
  }
  for (uint64_t& t : meta->tally) {
    if (!ReadRaw(payload, &offset, &t)) return false;
  }
  return offset == payload.size() && meta->chunk_size >= 1;
}

const char* AlgoName(uint8_t algo) {
  return algo == kAlgoExact ? "exact" : "approx";
}

std::string CheckpointPath(const std::string& dir, uint8_t algo,
                           uint64_t edges) {
  return StrFormat("%s/ckpt_%s_%020llu%s", dir.c_str(), AlgoName(algo),
                   static_cast<unsigned long long>(edges), kSuffix);
}

// Checkpoint files for `algo` in `dir`, newest (most edges) first.
std::vector<std::pair<uint64_t, std::string>> ListCheckpoints(
    const std::string& dir, uint8_t algo) {
  std::vector<std::pair<uint64_t, std::string>> found;
  const std::string prefix = StrFormat("ckpt_%s_", AlgoName(algo));
  constexpr size_t kSuffixLen = sizeof(kSuffix) - 1;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (!StartsWith(name, prefix) ||
        name.size() <= prefix.size() + kSuffixLen ||
        name.substr(name.size() - kSuffixLen) != kSuffix) {
      continue;
    }
    const auto edges = ParseInt64(
        name.substr(prefix.size(), name.size() - prefix.size() - kSuffixLen));
    if (!edges.has_value() || *edges < 0) continue;
    found.emplace_back(static_cast<uint64_t>(*edges), entry.path().string());
  }
  std::sort(found.begin(), found.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  return found;
}

void PruneCheckpoints(const std::string& dir, uint8_t algo, size_t keep) {
  const auto files = ListCheckpoints(dir, algo);
  for (size_t i = keep; i < files.size(); ++i) {
    std::error_code ec;
    fs::remove(files[i].second, ec);
  }
}

// ---- per-algorithm chunk encodings ----------------------------------------

// Exact: per node, u64 entry count then (u32 target, i64 time) pairs sorted
// by target id — deterministic bytes for identical summaries.
void SerializeExactChunk(const IrsExact& irs, NodeId first, uint32_t count,
                         std::string* out) {
  AppendRaw<uint64_t>(out, first);
  AppendRaw<uint32_t>(out, count);
  std::vector<std::pair<NodeId, Timestamp>> entries;
  for (NodeId u = first; u < first + count; ++u) {
    const IrsSummaryMap& summary = irs.Summary(u);
    entries.assign(summary.begin(), summary.end());
    std::sort(entries.begin(), entries.end());
    AppendRaw<uint64_t>(out, entries.size());
    for (const auto& [v, t] : entries) {
      AppendRaw<uint32_t>(out, v);
      AppendRaw<int64_t>(out, t);
    }
  }
}

bool ParseExactChunk(std::string_view payload, NodeId expected_first,
                     uint32_t expected_count, const Fingerprint& fp,
                     IrsExact* irs) {
  size_t offset = 0;
  uint64_t first = 0;
  uint32_t count = 0;
  if (!ReadRaw(payload, &offset, &first) ||
      !ReadRaw(payload, &offset, &count) || first != expected_first ||
      count != expected_count || first + count > fp.num_nodes) {
    return false;
  }
  for (NodeId u = static_cast<NodeId>(first); u < first + count; ++u) {
    uint64_t entries = 0;
    if (!ReadRaw(payload, &offset, &entries)) return false;
    IrsSummaryMap* summary = CheckpointAccess::MutableSummary(irs, u);
    for (uint64_t i = 0; i < entries; ++i) {
      uint32_t v = 0;
      int64_t t = 0;
      if (!ReadRaw(payload, &offset, &v) || !ReadRaw(payload, &offset, &t) ||
          v >= fp.num_nodes) {
        return false;
      }
      if (!summary->emplace(v, t).second) return false;  // duplicate target
    }
  }
  return offset == payload.size();
}

// Approx: per node, u8 present + VersionedHll::Serialize blob.
void SerializeApproxChunk(const IrsApprox& irs, NodeId first, uint32_t count,
                          std::string* out) {
  AppendRaw<uint64_t>(out, first);
  AppendRaw<uint32_t>(out, count);
  for (NodeId u = first; u < first + count; ++u) {
    const SketchView sketch = irs.Sketch(u);
    AppendRaw<uint8_t>(out, sketch ? 1 : 0);
    if (sketch) sketch.Serialize(out);
  }
}

bool ParseApproxChunk(std::string_view payload, NodeId expected_first,
                      uint32_t expected_count, const Fingerprint& fp,
                      IrsApprox* irs) {
  size_t offset = 0;
  uint64_t first = 0;
  uint32_t count = 0;
  if (!ReadRaw(payload, &offset, &first) ||
      !ReadRaw(payload, &offset, &count) || first != expected_first ||
      count != expected_count || first + count > fp.num_nodes) {
    return false;
  }
  for (NodeId u = static_cast<NodeId>(first); u < first + count; ++u) {
    uint8_t present = 0;
    if (!ReadRaw(payload, &offset, &present)) return false;
    if (present == 0) continue;
    auto sketch = VersionedHll::Deserialize(payload, &offset);
    if (!sketch.has_value() || sketch->precision() != fp.precision ||
        sketch->salt() != fp.salt) {
      return false;
    }
    CheckpointAccess::InstallSketch(
        irs, u, std::make_unique<VersionedHll>(std::move(*sketch)));
  }
  return offset == payload.size();
}

// ---- save / load ----------------------------------------------------------

template <typename Irs, typename SerializeChunk>
bool SaveCheckpoint(const Irs& irs, const MetaFrame& meta,
                    const std::string& dir, SerializeChunk serialize_chunk) {
  IPIN_TRACE_SPAN("checkpoint.save");
  if (IPIN_FAILPOINT("checkpoint.save").fail) {
    LogError("checkpoint: injected save failure");
    return false;
  }
  const std::string path =
      CheckpointPath(dir, meta.fp.algo, meta.edges_processed);
  SafeFileWriter writer(path, kCheckpointFileType, kCheckpointVersion);
  std::string payload;
  SerializeMeta(meta, &payload);
  if (!writer.AppendFrame(payload)) return false;
  for (uint64_t first = 0; first < meta.fp.num_nodes; first += kChunkSize) {
    const uint32_t count = static_cast<uint32_t>(
        std::min<uint64_t>(kChunkSize, meta.fp.num_nodes - first));
    payload.clear();
    serialize_chunk(irs, static_cast<NodeId>(first), count, &payload);
    if (!writer.AppendFrame(payload)) return false;
  }
  return writer.Commit();
}

// Loads one checkpoint file in full. Unlike a saved index, a checkpoint is
// all-or-nothing: any unverifiable frame invalidates it and the caller falls
// back to an older file (resuming from a partial state would silently lose
// summaries). On success fills *irs and *meta.
template <typename Irs, typename ParseChunk>
bool LoadCheckpoint(const std::string& path, const Fingerprint& expected,
                    Irs* irs, MetaFrame* meta, ParseChunk parse_chunk) {
  if (IPIN_FAILPOINT("checkpoint.load").fail) {
    LogError("checkpoint: injected load failure for " + path);
    return false;
  }
  SafeFileReader reader;
  if (reader.Open(path, kCheckpointFileType) != SafeOpenStatus::kOk) {
    return false;
  }
  std::string payload;
  if (reader.ReadFrame(&payload) != FrameStatus::kOk ||
      !ParseMeta(payload, meta) || !meta->fp.Matches(expected) ||
      meta->edges_processed > meta->fp.num_interactions) {
    return false;
  }
  for (uint64_t first = 0; first < meta->fp.num_nodes;
       first += meta->chunk_size) {
    const uint32_t count = static_cast<uint32_t>(
        std::min<uint64_t>(meta->chunk_size, meta->fp.num_nodes - first));
    if (reader.ReadFrame(&payload) != FrameStatus::kOk ||
        !parse_chunk(payload, static_cast<NodeId>(first), count, expected,
                     irs)) {
      return false;
    }
  }
  return true;
}

// Walks checkpoints newest-first until one verifies, restoring scan state
// and tallies into *irs. Returns the resumed edge count (0 = fresh start).
template <typename Irs, typename MakeFresh, typename ParseChunk>
uint64_t TryResume(const CheckpointOptions& options,
                   const Fingerprint& expected, Irs* irs,
                   CheckpointStats* stats, MakeFresh make_fresh,
                   ParseChunk parse_chunk) {
  IPIN_TRACE_SPAN("checkpoint.resume");
  for (const auto& [edges, path] :
       ListCheckpoints(options.dir, expected.algo)) {
    MetaFrame meta;
    Irs candidate = make_fresh();
    if (!LoadCheckpoint(path, expected, &candidate, &meta, parse_chunk)) {
      ++stats->invalid_checkpoints_skipped;
      LogWarning("checkpoint " + path + " failed verification, skipped");
      continue;
    }
    CheckpointAccess::SetScanPosition(&candidate, meta.last_time,
                                      meta.saw_interaction != 0);
    CheckpointAccess::SetTallies(&candidate, meta.tally);
    *irs = std::move(candidate);
    stats->resumed_edges = meta.edges_processed;
    const std::string detail = StrFormat(
        "resuming %s IRS build from %s (%llu/%llu edges)",
        AlgoName(expected.algo), path.c_str(),
        static_cast<unsigned long long>(meta.edges_processed),
        static_cast<unsigned long long>(meta.fp.num_interactions));
    LogInfo(detail);
    obs::RunLedger::Global().RecordEvent("checkpoint.resume", detail);
    return meta.edges_processed;
  }
  return 0;
}

template <typename Irs, typename SerializeChunk>
void MaybeCheckpoint(const Irs& irs, const Fingerprint& fp, uint64_t done,
                     uint64_t total, const CheckpointOptions& options,
                     CheckpointStats* stats, SerializeChunk serialize_chunk) {
  if (done % options.every_edges != 0 || done >= total) return;
  MetaFrame meta;
  meta.fp = fp;
  meta.edges_processed = done;
  meta.last_time = CheckpointAccess::LastTime(irs);
  meta.saw_interaction = CheckpointAccess::SawInteraction(irs) ? 1 : 0;
  meta.chunk_size = kChunkSize;
  CheckpointAccess::GetTallies(irs, meta.tally);
  if (SaveCheckpoint(irs, meta, options.dir, serialize_chunk)) {
    ++stats->checkpoints_written;
    obs::RunLedger::Global().RecordEvent(
        "checkpoint.save",
        StrFormat("%llu/%llu edges",
                  static_cast<unsigned long long>(done),
                  static_cast<unsigned long long>(total)));
    PruneCheckpoints(options.dir, fp.algo, options.keep);
  } else {
    ++stats->checkpoint_failures;
    const std::string detail =
        StrFormat("checkpoint save at edge %llu failed; continuing",
                  static_cast<unsigned long long>(done));
    LogWarning(detail);
    obs::RunLedger::Global().RecordEvent("checkpoint.save_failure", detail);
  }
}

void PublishCheckpointMetrics([[maybe_unused]] const CheckpointStats& stats) {
  IPIN_COUNTER_ADD("robustness.checkpoint.saves", stats.checkpoints_written);
  IPIN_COUNTER_ADD("robustness.checkpoint.save_failures",
                   stats.checkpoint_failures);
  IPIN_COUNTER_ADD("robustness.checkpoint.resumed_edges",
                   stats.resumed_edges);
  IPIN_COUNTER_ADD("robustness.checkpoint.invalid_skipped",
                   stats.invalid_checkpoints_skipped);
}

bool EnsureDir(const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    LogError("checkpoint: cannot create directory " + dir + ": " +
             ec.message());
    return false;
  }
  return true;
}

}  // namespace

IrsExact ComputeIrsExactCheckpointed(const InteractionGraph& graph,
                                     Duration window,
                                     const CheckpointOptions& options,
                                     CheckpointStats* stats) {
  IPIN_TRACE_SPAN("irs.exact.compute");
  IPIN_CHECK(graph.is_sorted());
  CheckpointStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = CheckpointStats{};

  const auto& edges = graph.interactions();
  const uint64_t m = edges.size();
  Fingerprint fp;
  fp.algo = kAlgoExact;
  fp.window = window;
  fp.num_nodes = graph.num_nodes();
  fp.num_interactions = m;
  fp.graph_hash = GraphHash(graph);

  IrsExact irs(graph.num_nodes(), window);
  const bool enabled = options.enabled() && EnsureDir(options.dir);
  uint64_t done =
      enabled
          ? TryResume(
                options, fp, &irs, stats,
                [&] { return IrsExact(graph.num_nodes(), window); },
                ParseExactChunk)
          : 0;

  obs::ProgressPhase phase("irs.exact.scan", m);
  phase.SetDone(done);  // resumed edges count as completed work
  uint64_t since_tick = 0;
  for (uint64_t i = m - done; i > 0; --i) {
    irs.ProcessInteraction(edges[i - 1]);
    ++done;
    if (++since_tick == (uint64_t{64} << 10)) {
      phase.SetDone(done);
      since_tick = 0;
    }
    if (enabled) {
      MaybeCheckpoint(irs, fp, done, m, options, stats, SerializeExactChunk);
    }
  }
  phase.SetDone(done);
  CheckpointAccess::Publish(irs);
  PublishCheckpointMetrics(*stats);
  return irs;
}

IrsApprox ComputeIrsApproxCheckpointed(const InteractionGraph& graph,
                                       Duration window,
                                       const IrsApproxOptions& irs_options,
                                       const CheckpointOptions& options,
                                       CheckpointStats* stats) {
  IPIN_TRACE_SPAN("irs.approx.compute");
  IPIN_CHECK(graph.is_sorted());
  CheckpointStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = CheckpointStats{};

  const auto& edges = graph.interactions();
  const uint64_t m = edges.size();
  Fingerprint fp;
  fp.algo = kAlgoApprox;
  fp.window = window;
  fp.num_nodes = graph.num_nodes();
  fp.num_interactions = m;
  fp.graph_hash = GraphHash(graph);
  fp.precision = static_cast<uint8_t>(irs_options.precision);
  fp.salt = irs_options.salt;

  IrsApprox irs(graph.num_nodes(), window, irs_options);
  const bool enabled = options.enabled() && EnsureDir(options.dir);
  uint64_t done = enabled
                      ? TryResume(options, fp, &irs, stats,
                                  [&] {
                                    return IrsApprox(graph.num_nodes(),
                                                     window, irs_options);
                                  },
                                  ParseApproxChunk)
                      : 0;

  obs::ProgressPhase phase("irs.approx.scan", m);
  phase.SetDone(done);  // resumed edges count as completed work
  uint64_t since_tick = 0;
  for (uint64_t i = m - done; i > 0; --i) {
    irs.ProcessInteraction(edges[i - 1]);
    ++done;
    if (++since_tick == (uint64_t{64} << 10)) {
      phase.SetDone(done);
      since_tick = 0;
    }
    if (enabled) {
      MaybeCheckpoint(irs, fp, done, m, options, stats, SerializeApproxChunk);
    }
  }
  phase.SetDone(done);
  CheckpointAccess::Publish(irs);
  PublishCheckpointMetrics(*stats);
  // Checkpointed builds feed the save/serve path directly, so pack into the
  // arena here (plain Compute() defers this to the caller). Earlier mid-scan
  // checkpoints serialized from the mutable sketches — the same bytes
  // SerializeNode produces from the arena, so a full rebuild and a resumed
  // one still emit identical files.
  irs.Seal();
  return irs;
}

}  // namespace ipin
