#ifndef IPIN_CORE_INFLUENCE_MAXIMIZATION_H_
#define IPIN_CORE_INFLUENCE_MAXIMIZATION_H_

#include <cstddef>
#include <vector>

#include "ipin/core/influence_oracle.h"
#include "ipin/graph/types.h"

namespace ipin {

/// Result of a greedy influence-maximization run.
struct SeedSelection {
  /// Selected seeds in pick order (size <= k; smaller if coverage saturates).
  std::vector<NodeId> seeds;
  /// Marginal gain of each pick (same length as `seeds`).
  std::vector<double> gains;
  /// Coverage after the last pick.
  double total_coverage = 0.0;
  /// Number of GainOf evaluations (for efficiency comparisons).
  size_t gain_evaluations = 0;
};

/// The paper's Algorithm 4: nodes are sorted descending by individual
/// influence |sigma(u)|; each round scans that list, tracking the best
/// marginal gain, and stops early as soon as the best gain found exceeds the
/// next candidate's individual influence (an upper bound on its marginal
/// gain by submodularity, Lemma 8). The greedy solution is a (1 - 1/e)
/// approximation of the NP-hard optimum (Lemma 7).
SeedSelection SelectSeedsGreedy(const InfluenceOracle& oracle, size_t k);

/// CELF lazy-greedy variant (Leskovec et al. 2007): identical output for a
/// deterministic oracle, typically far fewer gain evaluations. Stale gains
/// live in a max-heap and are re-evaluated only when they reach the top.
SeedSelection SelectSeedsCelf(const InfluenceOracle& oracle, size_t k);

/// Exhaustive search over all size-k seed subsets; exponential, for
/// cross-validating greedy on tiny instances in tests.
SeedSelection SelectSeedsExhaustive(const InfluenceOracle& oracle, size_t k);

}  // namespace ipin

#endif  // IPIN_CORE_INFLUENCE_MAXIMIZATION_H_
