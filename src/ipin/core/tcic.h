#ifndef IPIN_CORE_TCIC_H_
#define IPIN_CORE_TCIC_H_

#include <cstddef>
#include <span>
#include <vector>

#include "ipin/common/random.h"
#include "ipin/graph/interaction_graph.h"
#include "ipin/graph/types.h"

namespace ipin {

/// Parameters of the Time-Constrained Information Cascade model
/// (the paper's Algorithm 1).
struct TcicOptions {
  /// Maximal spread window omega: an active node u spreads over an
  /// interaction (u, v, t) only while t - activate_time(u) <= window.
  Duration window = 1;
  /// Per-interaction infection probability p (the paper evaluates 0.5
  /// and 1.0).
  double probability = 0.5;
};

/// Runs one TCIC cascade over a time-sorted interaction list and returns
/// the number of active (influenced) nodes, seeds included once activated.
///
/// Semantics follow Algorithm 1: a seed activates at its first interaction
/// as a source; on a successful infection the target inherits
/// max(parent activation time, own activation time), so the window budget
/// is counted from the start of the infecting chain.
size_t SimulateTcic(const InteractionGraph& graph,
                    std::span<const NodeId> seeds, const TcicOptions& options,
                    Rng* rng);

/// Runs `num_runs` independent cascades and returns the mean active count.
/// Deterministic given `seed`.
double AverageTcicSpread(const InteractionGraph& graph,
                         std::span<const NodeId> seeds,
                         const TcicOptions& options, size_t num_runs,
                         uint64_t seed);

/// Per-node activation detail of a single cascade, for analyses beyond the
/// headline count.
struct TcicTrace {
  /// active[v] != 0 iff v was influenced.
  std::vector<char> active;
  /// Inherited activation time per node (kNoTimestamp if inactive).
  std::vector<Timestamp> activate_time;
  size_t num_active = 0;
};

/// As SimulateTcic but returns the full per-node trace.
TcicTrace SimulateTcicTrace(const InteractionGraph& graph,
                            std::span<const NodeId> seeds,
                            const TcicOptions& options, Rng* rng);

}  // namespace ipin

#endif  // IPIN_CORE_TCIC_H_
