#ifndef IPIN_CORE_IRS_APPROX_H_
#define IPIN_CORE_IRS_APPROX_H_

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "ipin/graph/interaction_graph.h"
#include "ipin/graph/types.h"
#include "ipin/sketch/sketch_arena.h"
#include "ipin/sketch/vhll.h"

namespace ipin {

/// Options for the sketch-based IRS computation.
struct IrsApproxOptions {
  /// HLL precision k; beta = 2^k cells per node. The paper evaluates
  /// beta in {16 .. 512} and defaults to 512 (k = 9).
  int precision = 9;
  /// Hash salt; runs with different salts are independent estimators.
  uint64_t salt = 0;
};

/// Approximate influence-reachability-set computation (the paper's
/// Algorithm 3): the same one-pass reverse scan as IrsExact, with each
/// node's exact summary phi(u) replaced by a versioned HyperLogLog sketch.
///
/// Expected complexity: O(m * beta * log^2(window)) time and
/// O(n * beta * log^2(window)) space (Lemmas 5-6); estimates carry the HLL
/// relative error of ~1.04/sqrt(beta).
class IrsApprox {
 public:
  /// Runs the full reverse scan over a time-sorted interaction list.
  /// Dispatches to ComputeParallel when the global thread count
  /// (common/thread_pool.h) is > 1 and the graph is large enough for the
  /// slab overhead to pay off; the result is identical either way.
  static IrsApprox Compute(const InteractionGraph& graph, Duration window,
                           const IrsApproxOptions& options = {});

  /// Parallel build (DESIGN.md §10): splits the reverse scan into
  /// `num_slabs` contiguous time slabs built independently, then stitches
  /// right-to-left so entries from later slabs flow across slab boundaries
  /// exactly as the one-pass scan would have propagated them. Per-node
  /// sketches are bit-identical to the sequential Compute for every slab
  /// count (cross-validated in tests/test_parallel_irs.cc); slab builds and
  /// per-node folds run on the global pool.
  static IrsApprox ComputeParallel(const InteractionGraph& graph,
                                   Duration window,
                                   const IrsApproxOptions& options,
                                   size_t num_slabs);

  /// Empty instance; feed interactions with ProcessInteraction in reverse
  /// time order.
  IrsApprox(size_t num_nodes, Duration window, const IrsApproxOptions& options);

  /// Reassembles an instance from per-node sketches (nullptr = node never
  /// sent). Used by the oracle persistence layer (oracle_io.h) and shard
  /// extraction; every non-null sketch must match `options`' precision and
  /// salt (checked). The result is sealed (query-facing from birth).
  IrsApprox(Duration window, const IrsApproxOptions& options,
            std::vector<std::unique_ptr<VersionedHll>> sketches);

  /// Processes one interaction; MUST be called in non-increasing time order
  /// (checked). Only valid while the instance is unsealed.
  void ProcessInteraction(const Interaction& interaction);

  /// Packs the per-node build sketches into a read-only SketchArena
  /// (struct-of-arrays; DESIGN.md §12) and frees them. Queries answered
  /// after sealing are bit-identical to before (same entries, same
  /// kernels), just faster: unions and estimates stream the contiguous
  /// max-rank plane. Compute/ComputeParallel return UNSEALED so the pack +
  /// free cost stays out of the timed build scan (fig3); call Seal() at the
  /// build->query handoff, before sustained querying. The restore paths
  /// (oracle load, shard extraction) seal automatically — those instances
  /// are query-facing from birth. Idempotent. After sealing,
  /// ProcessInteraction is forbidden (checked).
  void Seal();

  /// True once Seal() ran (directly or via a Compute/restore path).
  bool sealed() const { return sealed_; }

  /// The packed sketch store, or nullptr while unsealed. Query hot loops
  /// (influence_oracle.cc) use it to stream rank-plane rows directly.
  const SketchArena* arena() const { return arena_.get(); }

  /// Estimated |sigma_omega(u)|.
  double EstimateIrsSize(NodeId u) const;

  /// Estimated |union of sigma_omega(s) for s in seeds| — the sketch-based
  /// Influence Oracle (Section 4.1): cellwise max over the seeds' sketches,
  /// O(|seeds| * beta * log) time, independent of the set sizes.
  double EstimateUnionSize(std::span<const NodeId> seeds) const;

  /// As above, reusing *scratch for the union rank vector instead of
  /// allocating one per call (hot under greedy/CELF and oracle serving).
  /// *scratch is resized as needed; contents on entry are ignored.
  double EstimateUnionSize(std::span<const NodeId> seeds,
                           std::vector<uint8_t>* scratch) const;

  /// View of node u's sketch (invalid if u never appeared as a source —
  /// its IRS is empty). Works in both storage modes; see SketchView.
  SketchView Sketch(NodeId u) const {
    if (sealed_) return SketchView(arena_.get(), u);
    return SketchView(sketches_[u].get());
  }

  size_t num_nodes() const { return num_nodes_; }
  Duration window() const { return window_; }
  const IrsApproxOptions& options() const { return options_; }

  /// Number of nodes that own a (non-null) sketch.
  size_t NumAllocatedSketches() const;

  /// Total (rank, time) entries across all sketches.
  size_t TotalSketchEntries() const;

  /// Total AddEntry attempts across all sketches (pre-pruning volume).
  size_t TotalInsertAttempts() const;

  /// Total dominance-pair evictions across all sketches.
  size_t TotalEvictions() const;

  /// Total entries examined by MergeWindow across all sketches, and the
  /// subset that survived domination filtering and updated a cell.
  size_t TotalMergeEntriesScanned() const;
  size_t TotalCellUpdates() const;

  /// Approximate heap footprint in bytes (the paper's Table 4 quantity).
  size_t MemoryUsageBytes() const;

 private:
  // Serialization/restore hooks for the crash-safe checkpoint layer
  // (core/checkpoint.cc): reads and reinstates the private scan state so a
  // resumed build is indistinguishable from an uninterrupted one.
  friend class CheckpointAccess;

  VersionedHll* MutableSketch(NodeId u);

  // The plain one-pass reverse scan (the paper's Algorithm 3 verbatim).
  static IrsApprox ComputeSequential(const InteractionGraph& graph,
                                     Duration window,
                                     const IrsApproxOptions& options);

  // Rolls the plain-member scan tallies up into the metrics registry; called
  // once per completed build (by Compute and the checkpointed variant).
  void PublishBuildMetrics() const;

  Duration window_;
  IrsApproxOptions options_;
  size_t num_nodes_ = 0;
  Timestamp last_time_ = 0;
  bool saw_interaction_ = false;
  // Scan tallies: plain members so the per-edge path stays atomics-free;
  // Compute() rolls them up into the metrics registry once per build.
  size_t edges_scanned_ = 0;
  size_t merge_calls_ = 0;
  // Dual-mode storage. While building, sketches are allocated lazily (a
  // node that never sends has an empty IRS and needs no sketch — phi(v) =
  // {} in the exact algorithm, memory proportional to *active* sources).
  // Seal() packs them into arena_ and frees them; exactly one of the two
  // representations is live at a time.
  std::vector<std::unique_ptr<VersionedHll>> sketches_;
  std::unique_ptr<SketchArena> arena_;
  bool sealed_ = false;
  // Per-sketch lifetime tallies, captured by Seal() before the sketches
  // are freed so the Total*() accessors keep working.
  size_t sealed_insert_attempts_ = 0;
  size_t sealed_evictions_ = 0;
  size_t sealed_merge_entries_scanned_ = 0;
  size_t sealed_cell_updates_ = 0;
};

}  // namespace ipin

#endif  // IPIN_CORE_IRS_APPROX_H_
