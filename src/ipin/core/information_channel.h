#ifndef IPIN_CORE_INFORMATION_CHANNEL_H_
#define IPIN_CORE_INFORMATION_CHANNEL_H_

#include <unordered_map>
#include <vector>

#include "ipin/graph/interaction_graph.h"
#include "ipin/graph/types.h"

// Reference (brute-force) implementations of the paper's Definitions 1-4:
// information channels, influence reachability sets (IRS), and IRS
// summaries. These run in O(m^2) per source and exist to cross-validate the
// one-pass algorithms in tests; use IrsExact / IrsApprox for real workloads.

namespace ipin {

/// lambda(u, v) values for one source: for every node v reachable from u via
/// an information channel of duration <= window, the earliest end time of
/// such a channel (Definition 4).
using IrsSummary = std::unordered_map<NodeId, Timestamp>;

/// Computes sigma_omega(u) and lambda(u, .) for a single source by forward
/// temporal scans (one per outgoing interaction of `u`). `graph` must be
/// sorted by time.
IrsSummary BruteForceIrsSummary(const InteractionGraph& graph, NodeId source,
                                Duration window);

/// Computes summaries for every node. O(n * m^2) worst case — test sizes
/// only.
std::vector<IrsSummary> BruteForceAllIrsSummaries(const InteractionGraph& graph,
                                                  Duration window);

/// True if at least one information channel of duration <= window exists
/// from `src` to `dst`.
bool HasInformationChannel(const InteractionGraph& graph, NodeId src,
                           NodeId dst, Duration window);

/// Returns one minimum-end-time channel from `src` to `dst` of duration <=
/// window as a sequence of interactions, or an empty vector if none exists.
std::vector<Interaction> FindEarliestChannel(const InteractionGraph& graph,
                                             NodeId src, NodeId dst,
                                             Duration window);

}  // namespace ipin

#endif  // IPIN_CORE_INFORMATION_CHANNEL_H_
