#ifndef IPIN_CORE_INFLUENCE_ORACLE_H_
#define IPIN_CORE_INFLUENCE_ORACLE_H_

#include <memory>
#include <span>
#include <unordered_set>
#include <vector>

#include "ipin/core/irs_approx.h"
#include "ipin/core/irs_exact.h"
#include "ipin/graph/types.h"

namespace ipin {

/// Incremental set-union accumulator used by greedy influence maximization:
/// tracks the "covered" set (union of committed nodes' influence sets) and
/// answers marginal-gain queries against it.
class CoverageState {
 public:
  virtual ~CoverageState() = default;

  /// Current |covered| (exact count or sketch estimate).
  virtual double Covered() const = 0;

  /// |covered union sigma(u)| - |covered| without modifying state.
  virtual double GainOf(NodeId u) const = 0;

  /// Folds sigma(u) into the covered set.
  virtual void Commit(NodeId u) = 0;
};

/// The paper's Influence Oracle (Section 4.1): answers influence-spread
/// queries |union of sigma_omega(s)| for arbitrary seed sets, plus the
/// incremental interface greedy maximization needs.
class InfluenceOracle {
 public:
  virtual ~InfluenceOracle() = default;

  virtual size_t num_nodes() const = 0;

  /// |sigma(u)| (exact or estimated).
  virtual double InfluenceOf(NodeId u) const = 0;

  /// |union of sigma(s) for s in seeds|.
  virtual double InfluenceOfSet(std::span<const NodeId> seeds) const = 0;

  /// Fresh, empty coverage accumulator.
  virtual std::unique_ptr<CoverageState> NewCoverage() const = 0;
};

/// Oracle over the exact IRS summaries. Union queries take time linear in
/// the summed set sizes.
class ExactInfluenceOracle : public InfluenceOracle {
 public:
  /// `irs` must outlive the oracle.
  explicit ExactInfluenceOracle(const IrsExact* irs);

  size_t num_nodes() const override;
  double InfluenceOf(NodeId u) const override;
  double InfluenceOfSet(std::span<const NodeId> seeds) const override;
  std::unique_ptr<CoverageState> NewCoverage() const override;

 private:
  const IrsExact* irs_;
};

/// Oracle over the vHLL sketches. Union queries take O(|seeds| * beta)
/// regardless of the set sizes — the property Figure 4 measures.
class SketchInfluenceOracle : public InfluenceOracle {
 public:
  /// `irs` must outlive the oracle.
  explicit SketchInfluenceOracle(const IrsApprox* irs);

  size_t num_nodes() const override;
  double InfluenceOf(NodeId u) const override;
  double InfluenceOfSet(std::span<const NodeId> seeds) const override;
  std::unique_ptr<CoverageState> NewCoverage() const override;

 private:
  const IrsApprox* irs_;
};

/// Oracle over explicit per-node sets. Used for the Smart High Degree
/// baseline (sets = static out-neighbourhoods; the paper notes SHD is the
/// special case omega = 0) and as a tiny-instance testing oracle.
class SetCoverageOracle : public InfluenceOracle {
 public:
  /// One influence set per node; sets need not be sorted.
  explicit SetCoverageOracle(std::vector<std::vector<NodeId>> sets);

  size_t num_nodes() const override;
  double InfluenceOf(NodeId u) const override;
  double InfluenceOfSet(std::span<const NodeId> seeds) const override;
  std::unique_ptr<CoverageState> NewCoverage() const override;

  const std::vector<NodeId>& set(NodeId u) const { return sets_[u]; }

 private:
  std::vector<std::vector<NodeId>> sets_;
};

}  // namespace ipin

#endif  // IPIN_CORE_INFLUENCE_ORACLE_H_
