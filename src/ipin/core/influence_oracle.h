#ifndef IPIN_CORE_INFLUENCE_ORACLE_H_
#define IPIN_CORE_INFLUENCE_ORACLE_H_

#include <chrono>
#include <memory>
#include <span>
#include <unordered_set>
#include <vector>

#include "ipin/core/irs_approx.h"
#include "ipin/core/irs_exact.h"
#include "ipin/graph/types.h"

namespace ipin {

/// Incremental set-union accumulator used by greedy influence maximization:
/// tracks the "covered" set (union of committed nodes' influence sets) and
/// answers marginal-gain queries against it.
class CoverageState {
 public:
  virtual ~CoverageState() = default;

  /// Current |covered| (exact count or sketch estimate).
  virtual double Covered() const = 0;

  /// |covered union sigma(u)| - |covered| without modifying state.
  /// Implementations must tolerate concurrent GainOf calls (the parallel
  /// greedy rounds evaluate candidate gains from several threads between
  /// Commits); Commit itself is never called concurrently with anything.
  virtual double GainOf(NodeId u) const = 0;

  /// Folds sigma(u) into the covered set.
  virtual void Commit(NodeId u) = 0;
};

/// Wall-clock budget for one oracle query, used by the serving layer to
/// bound tail latency: evaluation checks the deadline periodically and
/// abandons the query instead of running to completion.
struct QueryBudget {
  /// Evaluation must not run past this instant.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  /// Summary entries scanned between deadline checks (amortizes the clock
  /// read on the exact path, whose summaries can hold millions of entries).
  size_t check_every = 1024;

  bool Expired() const {
    return std::chrono::steady_clock::now() >= deadline;
  }
};

/// Result of a budgeted query. When `exceeded` is set the evaluation was
/// abandoned mid-way and `value` is a partial (under-)count — callers
/// degrade (e.g. fall back to a sketch estimate) rather than trust it.
struct BudgetedValue {
  double value = 0.0;
  bool exceeded = false;
};

/// The paper's Influence Oracle (Section 4.1): answers influence-spread
/// queries |union of sigma_omega(s)| for arbitrary seed sets, plus the
/// incremental interface greedy maximization needs.
class InfluenceOracle {
 public:
  virtual ~InfluenceOracle() = default;

  virtual size_t num_nodes() const = 0;

  /// |sigma(u)| (exact or estimated). Must be safe to call concurrently
  /// (every oracle here is read-only after construction) — InfluenceOfAll
  /// and the greedy candidate scans fan it out across the global pool.
  virtual double InfluenceOf(NodeId u) const = 0;

  /// {InfluenceOf(u) : u < num_nodes()}, evaluated in parallel on the
  /// global pool. Entry u is exactly InfluenceOf(u), so the result does not
  /// depend on the thread count.
  virtual std::vector<double> InfluenceOfAll() const;

  /// |union of sigma(s) for s in seeds|.
  virtual double InfluenceOfSet(std::span<const NodeId> seeds) const = 0;

  /// InfluenceOfSet under a wall-clock budget. The default runs the
  /// unbudgeted query (never reports exceeded); oracles whose evaluation
  /// can take long override it with periodic deadline checks.
  virtual BudgetedValue InfluenceOfSetBudgeted(
      std::span<const NodeId> seeds, const QueryBudget& budget) const {
    (void)budget;
    return {InfluenceOfSet(seeds), false};
  }

  /// Fresh, empty coverage accumulator.
  virtual std::unique_ptr<CoverageState> NewCoverage() const = 0;
};

/// Oracle over the exact IRS summaries. Union queries take time linear in
/// the summed set sizes.
class ExactInfluenceOracle : public InfluenceOracle {
 public:
  /// `irs` must outlive the oracle.
  explicit ExactInfluenceOracle(const IrsExact* irs);

  size_t num_nodes() const override;
  double InfluenceOf(NodeId u) const override;
  double InfluenceOfSet(std::span<const NodeId> seeds) const override;
  /// Exact union evaluation with deadline checks every
  /// `budget.check_every` summary entries; an expired budget abandons the
  /// scan (partial value, exceeded = true) so a worker never runs an
  /// oversized exact query to completion.
  BudgetedValue InfluenceOfSetBudgeted(
      std::span<const NodeId> seeds, const QueryBudget& budget) const override;
  std::unique_ptr<CoverageState> NewCoverage() const override;

 private:
  const IrsExact* irs_;
};

/// Oracle over the vHLL sketches. Union queries take O(|seeds| * beta)
/// regardless of the set sizes — the property Figure 4 measures.
class SketchInfluenceOracle : public InfluenceOracle {
 public:
  /// `irs` must outlive the oracle.
  explicit SketchInfluenceOracle(const IrsApprox* irs);

  size_t num_nodes() const override;
  double InfluenceOf(NodeId u) const override;
  double InfluenceOfSet(std::span<const NodeId> seeds) const override;
  /// Sketch unions are O(|seeds| * beta); the budget is checked once per
  /// seed, which is plenty at that granularity.
  BudgetedValue InfluenceOfSetBudgeted(
      std::span<const NodeId> seeds, const QueryBudget& budget) const override;
  std::unique_ptr<CoverageState> NewCoverage() const override;

 private:
  const IrsApprox* irs_;
};

/// Oracle over explicit per-node sets. Used for the Smart High Degree
/// baseline (sets = static out-neighbourhoods; the paper notes SHD is the
/// special case omega = 0) and as a tiny-instance testing oracle.
class SetCoverageOracle : public InfluenceOracle {
 public:
  /// One influence set per node; sets need not be sorted.
  explicit SetCoverageOracle(std::vector<std::vector<NodeId>> sets);

  size_t num_nodes() const override;
  double InfluenceOf(NodeId u) const override;
  double InfluenceOfSet(std::span<const NodeId> seeds) const override;
  std::unique_ptr<CoverageState> NewCoverage() const override;

  const std::vector<NodeId>& set(NodeId u) const { return sets_[u]; }

 private:
  std::vector<std::vector<NodeId>> sets_;
};

}  // namespace ipin

#endif  // IPIN_CORE_INFLUENCE_ORACLE_H_
