#ifndef IPIN_CORE_CHECKPOINT_H_
#define IPIN_CORE_CHECKPOINT_H_

#include <cstddef>
#include <string>

#include "ipin/core/irs_approx.h"
#include "ipin/core/irs_exact.h"
#include "ipin/graph/interaction_graph.h"

// Crash-safe checkpoint/resume for the one-pass reverse scan (Algorithms
// 2/3). The scan is the expensive step of the whole pipeline; on a 100M-edge
// log, a crash at edge 90M must not cost 90M edges of rework. With
// checkpointing enabled, the scan state (position + per-node summaries or
// sketches + tallies) is serialized through common/safe_io every N edges,
// and a restarted build resumes from the newest checkpoint that verifies —
// falling back to the next-older one when the newest is damaged. A resumed
// build produces results identical to an uninterrupted run.
//
// Checkpoint files are named ckpt_<algo>_<edges>.ipinckpt inside
// `options.dir`. They carry a fingerprint of (graph, window, sketch
// options); a checkpoint taken against different inputs is ignored rather
// than resumed into a wrong build. Files beyond `options.keep` newest are
// pruned after each successful save. Checkpoints are kept after a completed
// build (a rerun with identical inputs resumes at 100% and just replays the
// final state); delete the directory to force a fresh build.
//
// Failpoints: checkpoint.save (arm with crash_after_n to kill a build
// mid-scan), checkpoint.load, plus everything in common/safe_io.

namespace ipin {

/// Where and how often to checkpoint. Disabled unless both `dir` is
/// non-empty and `every_edges` > 0.
struct CheckpointOptions {
  /// Directory for checkpoint files (created if absent).
  std::string dir;
  /// Checkpoint after every N processed edges (0 = never).
  size_t every_edges = 0;
  /// Newest checkpoints retained per algorithm; older ones are pruned.
  size_t keep = 2;

  bool enabled() const { return !dir.empty() && every_edges > 0; }
};

/// What the checkpointed build did (also published as robustness.* metrics).
struct CheckpointStats {
  /// Edges skipped because a checkpoint was resumed.
  size_t resumed_edges = 0;
  /// Checkpoints successfully written during this build.
  size_t checkpoints_written = 0;
  /// Checkpoint writes that failed (build continues regardless).
  size_t checkpoint_failures = 0;
  /// Newer checkpoints that failed verification and were skipped before a
  /// valid one (or a fresh start) was chosen.
  size_t invalid_checkpoints_skipped = 0;
};

/// IrsExact::Compute with checkpoint/resume. Identical results to
/// IrsExact::Compute(graph, window); `stats` (optional) reports resume and
/// save activity.
IrsExact ComputeIrsExactCheckpointed(const InteractionGraph& graph,
                                     Duration window,
                                     const CheckpointOptions& options,
                                     CheckpointStats* stats = nullptr);

/// IrsApprox::Compute with checkpoint/resume. Identical results to
/// IrsApprox::Compute(graph, window, irs_options).
IrsApprox ComputeIrsApproxCheckpointed(const InteractionGraph& graph,
                                       Duration window,
                                       const IrsApproxOptions& irs_options,
                                       const CheckpointOptions& options,
                                       CheckpointStats* stats = nullptr);

}  // namespace ipin

#endif  // IPIN_CORE_CHECKPOINT_H_
