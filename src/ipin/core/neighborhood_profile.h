#ifndef IPIN_CORE_NEIGHBORHOOD_PROFILE_H_
#define IPIN_CORE_NEIGHBORHOOD_PROFILE_H_

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "ipin/core/irs_approx.h"
#include "ipin/graph/interaction_graph.h"
#include "ipin/graph/types.h"
#include "ipin/sketch/vhll.h"

// Sliding-window neighborhood profiles, after Kumar, Calders, Gionis,
// Tatti: "Maintaining Sliding-Window Neighborhood Profiles in Interaction
// Networks" (ECML/PKDD 2015) — the paper's reference [15] and the origin of
// its versioned-HLL idea.
//
// The *snapshot graph* at time `now` contains every interaction observed in
// the window (now - window, now]. The d-hop neighborhood profile of node u
// is the number of distinct nodes reachable from u within d hops in that
// snapshot. A path's *freshness* is the minimum timestamp of its edges: the
// path (and its contribution) expires exactly when that oldest edge slides
// out of the window. Summaries therefore store, per reachable node, the
// MAXIMUM freshness over connecting paths, and a query at time `now` counts
// entries with freshness > now - window.
//
// Updates propagate: a new edge (u, v, t) extends not only u's profile but,
// recursively, the profiles of nodes with recent edges into u. Both
// variants below perform this bounded BFS propagation; the approximate one
// stores per-(node, distance) vHLL sketches (negated freshness timestamps,
// so "fresher dominates") and is what makes the structure practical.

namespace ipin {

/// Options for the windowed profile structures.
struct ProfileOptions {
  /// Maximum hop distance H tracked (profiles exist for d = 1..H).
  int max_distance = 3;
  /// Sliding-window length W.
  Duration window = 1;
};

/// Exact sliding-window neighborhood profiles. Memory and update cost can
/// be large (per node and distance, a map over reachable nodes): intended
/// as the testing reference and for small graphs.
class WindowedProfileExact {
 public:
  WindowedProfileExact(size_t num_nodes, const ProfileOptions& options);

  /// Processes one interaction in arrival (non-decreasing time) order.
  void ProcessInteraction(const Interaction& interaction);

  /// Number of distinct nodes within <= `distance` hops of `u` in the
  /// current snapshot (u itself excluded).
  size_t NeighborhoodSize(NodeId u, int distance) const;

  /// Timestamp of the last processed interaction (kNoTimestamp if none).
  Timestamp now() const { return saw_interaction_ ? now_ : kNoTimestamp; }

  const ProfileOptions& options() const { return options_; }
  size_t num_nodes() const { return in_edges_.size(); }

  /// Approximate heap footprint in bytes.
  size_t MemoryUsageBytes() const;

 private:
  // profiles_[u][d-1]: reachable node -> max freshness over <= d-hop paths.
  using Layer = std::unordered_map<NodeId, Timestamp>;

  bool AddPath(NodeId u, int distance, NodeId target, Timestamp freshness);
  void Propagate(const Interaction& interaction);
  void PruneInEdges(NodeId u);

  ProfileOptions options_;
  Timestamp now_ = 0;
  bool saw_interaction_ = false;
  std::vector<std::vector<Layer>> profiles_;
  // Recent in-edges per node: (source, time), pruned lazily.
  std::vector<std::vector<std::pair<NodeId, Timestamp>>> in_edges_;
};

/// Sketch-based sliding-window neighborhood profiles: per (node, distance)
/// a versioned HLL over reachable nodes keyed by negated freshness.
class WindowedProfileApprox {
 public:
  WindowedProfileApprox(size_t num_nodes, const ProfileOptions& options,
                        const IrsApproxOptions& sketch_options);

  /// Processes one interaction in arrival (non-decreasing time) order.
  void ProcessInteraction(const Interaction& interaction);

  /// Estimated number of distinct nodes within <= `distance` hops of `u`
  /// in the current snapshot.
  double EstimateNeighborhoodSize(NodeId u, int distance) const;

  /// As above, reusing *scratch for the union rank vector instead of
  /// allocating one per call (hot when profiling every node each tick).
  /// *scratch is resized as needed; contents on entry are ignored.
  double EstimateNeighborhoodSize(NodeId u, int distance,
                                  std::vector<uint8_t>* scratch) const;

  Timestamp now() const { return saw_interaction_ ? now_ : kNoTimestamp; }
  const ProfileOptions& options() const { return options_; }
  size_t num_nodes() const { return in_edges_.size(); }

  /// Approximate heap footprint in bytes.
  size_t MemoryUsageBytes() const;

 private:
  VersionedHll* MutableSketch(NodeId u, int distance);
  void PruneInEdges(NodeId u);

  ProfileOptions options_;
  IrsApproxOptions sketch_options_;
  Timestamp now_ = 0;
  bool saw_interaction_ = false;
  // sketches_[u][d-1], allocated lazily.
  std::vector<std::vector<std::unique_ptr<VersionedHll>>> sketches_;
  std::vector<std::vector<std::pair<NodeId, Timestamp>>> in_edges_;
};

}  // namespace ipin

#endif  // IPIN_CORE_NEIGHBORHOOD_PROFILE_H_
