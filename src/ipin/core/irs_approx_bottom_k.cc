#include "ipin/core/irs_approx_bottom_k.h"

#include <algorithm>

#include "ipin/common/check.h"

namespace ipin {

IrsApproxBottomK::IrsApproxBottomK(size_t num_nodes, Duration window,
                                   const IrsBottomKOptions& options)
    : window_(window), options_(options), sketches_(num_nodes) {
  IPIN_CHECK_GE(window, 1);
}

IrsApproxBottomK IrsApproxBottomK::Compute(const InteractionGraph& graph,
                                           Duration window,
                                           const IrsBottomKOptions& options) {
  IPIN_CHECK(graph.is_sorted());
  IrsApproxBottomK irs(graph.num_nodes(), window, options);
  const auto& edges = graph.interactions();
  for (size_t i = edges.size(); i > 0; --i) {
    irs.ProcessInteraction(edges[i - 1]);
  }
  return irs;
}

VersionedBottomK* IrsApproxBottomK::MutableSketch(NodeId u) {
  if (sketches_[u] == nullptr) {
    sketches_[u] =
        std::make_unique<VersionedBottomK>(options_.k, options_.salt);
  }
  return sketches_[u].get();
}

void IrsApproxBottomK::ProcessInteraction(const Interaction& interaction) {
  const auto [u, v, t] = interaction;
  IPIN_CHECK_LT(u, sketches_.size());
  IPIN_CHECK_LT(v, sketches_.size());
  if (saw_interaction_) {
    IPIN_CHECK_LE(t, last_time_);  // reverse chronological order required
  }
  last_time_ = t;
  saw_interaction_ = true;

  VersionedBottomK* sketch_u = MutableSketch(u);
  if (u != v) sketch_u->Add(static_cast<uint64_t>(v), t);
  if (u == v) return;
  const VersionedBottomK* sketch_v = sketches_[v].get();
  if (sketch_v != nullptr) {
    sketch_u->MergeWindow(*sketch_v, t, window_);
  }
}

double IrsApproxBottomK::EstimateIrsSize(NodeId u) const {
  IPIN_CHECK_LT(u, sketches_.size());
  const VersionedBottomK* sketch = sketches_[u].get();
  return sketch == nullptr ? 0.0 : sketch->Estimate();
}

double IrsApproxBottomK::EstimateUnionSize(
    std::span<const NodeId> seeds) const {
  VersionedBottomK merged(options_.k, options_.salt);
  for (const NodeId u : seeds) {
    IPIN_CHECK_LT(u, sketches_.size());
    const VersionedBottomK* sketch = sketches_[u].get();
    if (sketch != nullptr) merged.MergeAll(*sketch);
  }
  return merged.Estimate();
}

size_t IrsApproxBottomK::NumAllocatedSketches() const {
  size_t count = 0;
  for (const auto& s : sketches_) {
    if (s != nullptr) ++count;
  }
  return count;
}

size_t IrsApproxBottomK::TotalSketchEntries() const {
  size_t total = 0;
  for (const auto& s : sketches_) {
    if (s != nullptr) total += s->NumEntries();
  }
  return total;
}

size_t IrsApproxBottomK::MemoryUsageBytes() const {
  size_t bytes =
      sketches_.capacity() * sizeof(std::unique_ptr<VersionedBottomK>);
  for (const auto& s : sketches_) {
    if (s != nullptr) bytes += sizeof(VersionedBottomK) + s->MemoryUsageBytes();
  }
  return bytes;
}

}  // namespace ipin
