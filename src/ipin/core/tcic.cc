#include "ipin/core/tcic.h"

#include <vector>

#include "ipin/common/check.h"
#include "ipin/common/thread_pool.h"
#include "ipin/obs/metrics.h"
#include "ipin/obs/progress.h"
#include "ipin/obs/trace.h"

namespace ipin {

TcicTrace SimulateTcicTrace(const InteractionGraph& graph,
                            std::span<const NodeId> seeds,
                            const TcicOptions& options, Rng* rng) {
  IPIN_CHECK(graph.is_sorted());
  IPIN_CHECK_GE(options.window, 0);
  IPIN_CHECK(rng != nullptr);
  const size_t n = graph.num_nodes();

  TcicTrace trace;
  trace.active.assign(n, 0);
  trace.activate_time.assign(n, kNoTimestamp);

  std::vector<char> is_seed(n, 0);
  for (const NodeId s : seeds) {
    IPIN_CHECK_LT(s, n);
    is_seed[s] = 1;
  }

  for (const Interaction& e : graph.interactions()) {
    const auto [u, v, t] = e;
    // Seeds activate at their first interaction as a source.
    if (is_seed[u] && !trace.active[u]) {
      trace.active[u] = 1;
      trace.activate_time[u] = t;
    }
    if (trace.active[u] && (t - trace.activate_time[u]) <= options.window) {
      if (rng->NextBernoulli(options.probability)) {
        trace.active[v] = 1;
        // The child inherits the chain's start time (max over infections),
        // exactly as in Algorithm 1.
        if (trace.activate_time[u] > trace.activate_time[v]) {
          trace.activate_time[v] = trace.activate_time[u];
        }
      }
    }
  }

  for (const char a : trace.active) {
    if (a) ++trace.num_active;
  }
  IPIN_COUNTER_ADD("tcic.sim.runs", 1);
  IPIN_COUNTER_ADD("tcic.sim.activations", trace.num_active);
  IPIN_COUNTER_ADD("tcic.sim.interactions_scanned",
                   graph.num_interactions());
  return trace;
}

size_t SimulateTcic(const InteractionGraph& graph,
                    std::span<const NodeId> seeds, const TcicOptions& options,
                    Rng* rng) {
  return SimulateTcicTrace(graph, seeds, options, rng).num_active;
}

double AverageTcicSpread(const InteractionGraph& graph,
                         std::span<const NodeId> seeds,
                         const TcicOptions& options, size_t num_runs,
                         uint64_t seed) {
  IPIN_TRACE_SPAN("tcic.average_spread");
  IPIN_CHECK_GE(num_runs, 1u);
  // Monte Carlo runs are independent, each on its own SplitMix-derived RNG
  // stream keyed by the run index — so the per-run spreads, and the sum
  // accumulated below in run order, are identical for any thread count.
  std::vector<double> spread(num_runs);
  obs::ProgressPhase phase("tcic.mc_runs", num_runs);
  ParallelFor(0, num_runs, 1, [&](size_t lo, size_t hi) {
    for (size_t run = lo; run < hi; ++run) {
      Rng rng(seed + run * 0x9e3779b97f4a7c15ULL);
      spread[run] =
          static_cast<double>(SimulateTcic(graph, seeds, options, &rng));
      phase.Tick();
    }
  });
  double total = 0.0;
  for (const double s : spread) total += s;
  return total / static_cast<double>(num_runs);
}

}  // namespace ipin
