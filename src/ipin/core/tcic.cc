#include "ipin/core/tcic.h"

#include "ipin/common/check.h"
#include "ipin/obs/metrics.h"
#include "ipin/obs/trace.h"

namespace ipin {

TcicTrace SimulateTcicTrace(const InteractionGraph& graph,
                            std::span<const NodeId> seeds,
                            const TcicOptions& options, Rng* rng) {
  IPIN_CHECK(graph.is_sorted());
  IPIN_CHECK_GE(options.window, 0);
  IPIN_CHECK(rng != nullptr);
  const size_t n = graph.num_nodes();

  TcicTrace trace;
  trace.active.assign(n, 0);
  trace.activate_time.assign(n, kNoTimestamp);

  std::vector<char> is_seed(n, 0);
  for (const NodeId s : seeds) {
    IPIN_CHECK_LT(s, n);
    is_seed[s] = 1;
  }

  for (const Interaction& e : graph.interactions()) {
    const auto [u, v, t] = e;
    // Seeds activate at their first interaction as a source.
    if (is_seed[u] && !trace.active[u]) {
      trace.active[u] = 1;
      trace.activate_time[u] = t;
    }
    if (trace.active[u] && (t - trace.activate_time[u]) <= options.window) {
      if (rng->NextBernoulli(options.probability)) {
        trace.active[v] = 1;
        // The child inherits the chain's start time (max over infections),
        // exactly as in Algorithm 1.
        if (trace.activate_time[u] > trace.activate_time[v]) {
          trace.activate_time[v] = trace.activate_time[u];
        }
      }
    }
  }

  for (const char a : trace.active) {
    if (a) ++trace.num_active;
  }
  IPIN_COUNTER_ADD("tcic.sim.runs", 1);
  IPIN_COUNTER_ADD("tcic.sim.activations", trace.num_active);
  IPIN_COUNTER_ADD("tcic.sim.interactions_scanned",
                   graph.num_interactions());
  return trace;
}

size_t SimulateTcic(const InteractionGraph& graph,
                    std::span<const NodeId> seeds, const TcicOptions& options,
                    Rng* rng) {
  return SimulateTcicTrace(graph, seeds, options, rng).num_active;
}

double AverageTcicSpread(const InteractionGraph& graph,
                         std::span<const NodeId> seeds,
                         const TcicOptions& options, size_t num_runs,
                         uint64_t seed) {
  IPIN_TRACE_SPAN("tcic.average_spread");
  IPIN_CHECK_GE(num_runs, 1u);
  double total = 0.0;
  for (size_t run = 0; run < num_runs; ++run) {
    Rng rng(seed + run * 0x9e3779b97f4a7c15ULL);
    total += static_cast<double>(SimulateTcic(graph, seeds, options, &rng));
  }
  return total / static_cast<double>(num_runs);
}

}  // namespace ipin
