#include "ipin/core/neighborhood_profile.h"

#include <algorithm>
#include <deque>

#include "ipin/common/check.h"
#include "ipin/common/hash.h"
#include "ipin/common/memory.h"
#include "ipin/sketch/estimators.h"

namespace ipin {

WindowedProfileExact::WindowedProfileExact(size_t num_nodes,
                                           const ProfileOptions& options)
    : options_(options),
      profiles_(num_nodes,
                std::vector<Layer>(static_cast<size_t>(options.max_distance))),
      in_edges_(num_nodes) {
  IPIN_CHECK_GE(options.max_distance, 1);
  IPIN_CHECK_GE(options.window, 1);
}

bool WindowedProfileExact::AddPath(NodeId u, int distance, NodeId target,
                                   Timestamp freshness) {
  if (u == target) return false;  // self never counts (cycles are walks)
  Layer& layer = profiles_[u][static_cast<size_t>(distance) - 1];
  auto [it, inserted] = layer.emplace(target, freshness);
  if (!inserted) {
    if (it->second >= freshness) return false;
    it->second = freshness;  // keep the maximum freshness
  }
  return true;
}

void WindowedProfileExact::PruneInEdges(NodeId u) {
  const Timestamp expiry = now_ - options_.window;
  auto& edges = in_edges_[u];
  edges.erase(std::remove_if(edges.begin(), edges.end(),
                             [expiry](const std::pair<NodeId, Timestamp>& e) {
                               return e.second <= expiry;
                             }),
              edges.end());
}

void WindowedProfileExact::ProcessInteraction(const Interaction& interaction) {
  const auto [u, v, t] = interaction;
  IPIN_CHECK_LT(u, profiles_.size());
  IPIN_CHECK_LT(v, profiles_.size());
  if (saw_interaction_) IPIN_CHECK_GE(t, now_);
  now_ = t;
  saw_interaction_ = true;
  if (u != v) in_edges_[v].emplace_back(u, t);

  const Timestamp expiry = t - options_.window;

  // Work items: target became reachable from `node` at exactly `distance`
  // hops with `freshness`; back-propagate along fresh in-edges.
  struct Item {
    NodeId node;
    int distance;
    NodeId target;
    Timestamp freshness;
  };
  std::deque<Item> queue;

  // Paths created by the new edge: u -> v plus u -> v -> (paths from v).
  if (AddPath(u, 1, v, t)) queue.push_back({u, 1, v, t});
  for (int d = 1; d < options_.max_distance; ++d) {
    for (const auto& [x, f] : profiles_[v][static_cast<size_t>(d) - 1]) {
      if (f <= expiry) continue;  // stale path, cannot matter anymore
      const Timestamp fresh = std::min(f, t);
      if (AddPath(u, d + 1, x, fresh)) queue.push_back({u, d + 1, x, fresh});
    }
  }

  // Bounded BFS back-propagation.
  while (!queue.empty()) {
    const Item item = queue.front();
    queue.pop_front();
    if (item.distance >= options_.max_distance) continue;
    PruneInEdges(item.node);
    for (const auto& [w, tw] : in_edges_[item.node]) {
      const Timestamp fresh = std::min(item.freshness, tw);
      if (fresh <= expiry) continue;
      if (AddPath(w, item.distance + 1, item.target, fresh)) {
        queue.push_back({w, item.distance + 1, item.target, fresh});
      }
    }
  }
}

size_t WindowedProfileExact::NeighborhoodSize(NodeId u, int distance) const {
  IPIN_CHECK_LT(u, profiles_.size());
  IPIN_CHECK_GE(distance, 1);
  IPIN_CHECK_LE(distance, options_.max_distance);
  if (!saw_interaction_) return 0;
  const Timestamp expiry = now_ - options_.window;
  std::unordered_map<NodeId, char> seen;
  for (int d = 1; d <= distance; ++d) {
    for (const auto& [x, f] : profiles_[u][static_cast<size_t>(d) - 1]) {
      if (f > expiry) seen.emplace(x, 1);
    }
  }
  return seen.size();
}

size_t WindowedProfileExact::MemoryUsageBytes() const {
  size_t bytes = 0;
  for (const auto& layers : profiles_) {
    for (const Layer& layer : layers) {
      bytes += HashMapBytes(layer.size(), layer.bucket_count(),
                            sizeof(NodeId) + sizeof(Timestamp));
    }
  }
  for (const auto& edges : in_edges_) bytes += VectorBytes(edges);
  return bytes;
}

WindowedProfileApprox::WindowedProfileApprox(
    size_t num_nodes, const ProfileOptions& options,
    const IrsApproxOptions& sketch_options)
    : options_(options),
      sketch_options_(sketch_options),
      sketches_(num_nodes),
      in_edges_(num_nodes) {
  IPIN_CHECK_GE(options.max_distance, 1);
  IPIN_CHECK_GE(options.window, 1);
  for (auto& layers : sketches_) {
    layers.resize(static_cast<size_t>(options.max_distance));
  }
}

VersionedHll* WindowedProfileApprox::MutableSketch(NodeId u, int distance) {
  auto& slot = sketches_[u][static_cast<size_t>(distance) - 1];
  if (slot == nullptr) {
    slot = std::make_unique<VersionedHll>(sketch_options_.precision,
                                          sketch_options_.salt);
  }
  return slot.get();
}

void WindowedProfileApprox::PruneInEdges(NodeId u) {
  const Timestamp expiry = now_ - options_.window;
  auto& edges = in_edges_[u];
  edges.erase(std::remove_if(edges.begin(), edges.end(),
                             [expiry](const std::pair<NodeId, Timestamp>& e) {
                               return e.second <= expiry;
                             }),
              edges.end());
}

void WindowedProfileApprox::ProcessInteraction(
    const Interaction& interaction) {
  const auto [u, v, t] = interaction;
  IPIN_CHECK_LT(u, sketches_.size());
  IPIN_CHECK_LT(v, sketches_.size());
  if (saw_interaction_) IPIN_CHECK_GE(t, now_);
  now_ = t;
  saw_interaction_ = true;
  if (u != v) in_edges_[v].emplace_back(u, t);

  // Negated-freshness encoding: an entry with freshness f is stored at time
  // -f; only entries with f > now - window, i.e. stored time < bound, are
  // alive.
  const Timestamp bound = -(t - options_.window);

  struct Item {
    NodeId node;
    int distance;
  };
  std::deque<Item> queue;

  // The new edge: v joins u's 1-hop profile with freshness t...
  if (u != v &&
      MutableSketch(u, 1)->Add(static_cast<uint64_t>(v), -t)) {
    queue.push_back({u, 1});
  }

  // ...and v's d-hop profile extends u's (d+1)-hop profile (freshness
  // clamped at t — a no-op since all stored freshness <= t).
  for (int d = 1; d < options_.max_distance; ++d) {
    const auto& src = sketches_[v][static_cast<size_t>(d) - 1];
    if (src == nullptr || u == v) continue;
    if (MutableSketch(u, d + 1)->MergeWithFloor(*src, -t, bound)) {
      queue.push_back({u, d + 1});
    }
  }

  // Back-propagate changed (node, distance) sketches along fresh in-edges.
  while (!queue.empty()) {
    const Item item = queue.front();
    queue.pop_front();
    if (item.distance >= options_.max_distance) continue;
    PruneInEdges(item.node);
    const auto& src =
        sketches_[item.node][static_cast<size_t>(item.distance) - 1];
    if (src == nullptr) continue;
    for (const auto& [w, tw] : in_edges_[item.node]) {
      if (w == item.node) continue;
      if (MutableSketch(w, item.distance + 1)
              ->MergeWithFloor(*src, -tw, bound)) {
        queue.push_back({w, item.distance + 1});
      }
    }
  }
}

double WindowedProfileApprox::EstimateNeighborhoodSize(NodeId u,
                                                       int distance) const {
  std::vector<uint8_t> scratch;
  return EstimateNeighborhoodSize(u, distance, &scratch);
}

double WindowedProfileApprox::EstimateNeighborhoodSize(
    NodeId u, int distance, std::vector<uint8_t>* scratch) const {
  IPIN_CHECK_LT(u, sketches_.size());
  IPIN_CHECK_GE(distance, 1);
  IPIN_CHECK_LE(distance, options_.max_distance);
  if (!saw_interaction_) return 0.0;
  const Timestamp bound = -(now_ - options_.window);
  const size_t beta = static_cast<size_t>(1) << sketch_options_.precision;
  scratch->assign(beta, 0);
  bool any = false;
  for (int d = 1; d <= distance; ++d) {
    const auto& sketch = sketches_[u][static_cast<size_t>(d) - 1];
    if (sketch == nullptr) continue;
    any = true;
    sketch->MaxRanks(bound, scratch);
  }
  if (!any) return 0.0;
  return EstimateFromRanks(*scratch);
}

size_t WindowedProfileApprox::MemoryUsageBytes() const {
  size_t bytes = 0;
  for (const auto& layers : sketches_) {
    for (const auto& sketch : layers) {
      if (sketch != nullptr) {
        bytes += sizeof(VersionedHll) + sketch->MemoryUsageBytes();
      }
    }
  }
  for (const auto& edges : in_edges_) bytes += VectorBytes(edges);
  return bytes;
}

}  // namespace ipin
