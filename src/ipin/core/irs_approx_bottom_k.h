#ifndef IPIN_CORE_IRS_APPROX_BOTTOM_K_H_
#define IPIN_CORE_IRS_APPROX_BOTTOM_K_H_

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "ipin/graph/interaction_graph.h"
#include "ipin/graph/types.h"
#include "ipin/sketch/versioned_bottom_k.h"

namespace ipin {

/// Options for the bottom-k-backed IRS computation.
struct IrsBottomKOptions {
  /// Sketch size k; relative standard error ~ 1/sqrt(k-2).
  size_t k = 256;
  /// Hash salt.
  uint64_t salt = 0;
};

/// IRS computation with versioned bottom-k sketches instead of the paper's
/// versioned HLL: the same one-pass reverse scan, a different mergeable
/// windowed distinct-counter per node. Exists to quantify the paper's
/// sketch choice (see bench_ablation_design): bottom-k gives unbiased
/// estimates and exact counts below k, at a larger per-entry footprint
/// (16 bytes vs ~9) and costlier merges.
class IrsApproxBottomK {
 public:
  static IrsApproxBottomK Compute(const InteractionGraph& graph,
                                  Duration window,
                                  const IrsBottomKOptions& options = {});

  IrsApproxBottomK(size_t num_nodes, Duration window,
                   const IrsBottomKOptions& options);

  /// Processes one interaction; MUST be called in non-increasing time
  /// order (checked).
  void ProcessInteraction(const Interaction& interaction);

  /// Estimated |sigma_omega(u)|.
  double EstimateIrsSize(NodeId u) const;

  /// Estimated union size over a seed set (merges the seeds' sketches).
  double EstimateUnionSize(std::span<const NodeId> seeds) const;

  const VersionedBottomK* Sketch(NodeId u) const { return sketches_[u].get(); }

  size_t num_nodes() const { return sketches_.size(); }
  Duration window() const { return window_; }
  const IrsBottomKOptions& options() const { return options_; }

  size_t NumAllocatedSketches() const;
  size_t TotalSketchEntries() const;
  size_t MemoryUsageBytes() const;

 private:
  VersionedBottomK* MutableSketch(NodeId u);

  Duration window_;
  IrsBottomKOptions options_;
  Timestamp last_time_ = 0;
  bool saw_interaction_ = false;
  std::vector<std::unique_ptr<VersionedBottomK>> sketches_;
};

}  // namespace ipin

#endif  // IPIN_CORE_IRS_APPROX_BOTTOM_K_H_
