#include "ipin/core/influence_oracle.h"

#include <algorithm>

#include "ipin/common/check.h"
#include "ipin/common/thread_pool.h"
#include "ipin/obs/metrics.h"
#include "ipin/obs/progress.h"
#include "ipin/obs/trace.h"
#include "ipin/sketch/estimators.h"
#include "ipin/sketch/kernels.h"

namespace ipin {
namespace {

// Coverage over exact hash-set summaries.
class ExactCoverage : public CoverageState {
 public:
  explicit ExactCoverage(const IrsExact* irs) : irs_(irs) {}

  double Covered() const override {
    return static_cast<double>(covered_.size());
  }

  double GainOf(NodeId u) const override {
    size_t gain = 0;
    for (const auto& [v, t] : irs_->Summary(u)) {
      (void)t;
      if (covered_.find(v) == covered_.end()) ++gain;
    }
    return static_cast<double>(gain);
  }

  void Commit(NodeId u) override {
    for (const auto& [v, t] : irs_->Summary(u)) {
      (void)t;
      covered_.insert(v);
    }
  }

 private:
  const IrsExact* irs_;
  std::unordered_set<NodeId> covered_;
};

// Coverage over vHLL sketches: the covered set is a plain rank vector
// (cellwise max of committed sketches).
class SketchCoverage : public CoverageState {
 public:
  explicit SketchCoverage(const IrsApprox* irs)
      : irs_(irs),
        ranks_(static_cast<size_t>(1) << irs->options().precision, 0),
        covered_(0.0) {}

  double Covered() const override { return covered_; }

  double GainOf(NodeId u) const override {
    const SketchView sketch = irs_->Sketch(u);
    if (!sketch) return 0.0;
    // thread_local scratch instead of a per-call copy: GainOf is the inner
    // loop of greedy/CELF and may be called concurrently by the parallel
    // maximizer, which forbids a shared mutable member.
    static thread_local std::vector<uint8_t> merged;
    merged = ranks_;
    kernels::CellwiseMaxU8(merged.data(), sketch.max_ranks().data(),
                           merged.size());
    const double with_u = EstimateOf(merged);
    return std::max(0.0, with_u - covered_);
  }

  void Commit(NodeId u) override {
    const SketchView sketch = irs_->Sketch(u);
    if (!sketch) return;
    kernels::CellwiseMaxU8(ranks_.data(), sketch.max_ranks().data(),
                           ranks_.size());
    covered_ = EstimateOf(ranks_);
  }

 private:
  static double EstimateOf(const std::vector<uint8_t>& ranks) {
    bool any = false;
    for (const uint8_t r : ranks) {
      if (r != 0) {
        any = true;
        break;
      }
    }
    return any ? EstimateFromRanks(ranks) : 0.0;
  }

  const IrsApprox* irs_;
  std::vector<uint8_t> ranks_;
  double covered_;
};

// Coverage over explicit sets.
class SetCoverage : public CoverageState {
 public:
  explicit SetCoverage(const SetCoverageOracle* oracle) : oracle_(oracle) {}

  double Covered() const override {
    return static_cast<double>(covered_.size());
  }

  double GainOf(NodeId u) const override {
    size_t gain = 0;
    for (const NodeId v : oracle_->set(u)) {
      if (covered_.find(v) == covered_.end()) ++gain;
    }
    return static_cast<double>(gain);
  }

  void Commit(NodeId u) override {
    for (const NodeId v : oracle_->set(u)) covered_.insert(v);
  }

 private:
  const SetCoverageOracle* oracle_;
  std::unordered_set<NodeId> covered_;
};

}  // namespace

std::vector<double> InfluenceOracle::InfluenceOfAll() const {
  IPIN_TRACE_SPAN("oracle.influence_of_all");
  std::vector<double> influence(num_nodes());
  obs::ProgressPhase phase("oracle.influence_all", influence.size());
  ParallelFor(0, influence.size(), 256, [&](size_t lo, size_t hi) {
    for (size_t u = lo; u < hi; ++u) {
      influence[u] = InfluenceOf(static_cast<NodeId>(u));
    }
    phase.Tick(hi - lo);
  });
  return influence;
}

ExactInfluenceOracle::ExactInfluenceOracle(const IrsExact* irs) : irs_(irs) {
  IPIN_CHECK(irs != nullptr);
}

size_t ExactInfluenceOracle::num_nodes() const { return irs_->num_nodes(); }

double ExactInfluenceOracle::InfluenceOf(NodeId u) const {
  return static_cast<double>(irs_->IrsSize(u));
}

double ExactInfluenceOracle::InfluenceOfSet(
    std::span<const NodeId> seeds) const {
  IPIN_LATENCY_SCOPE("oracle.exact.query_us");
  return static_cast<double>(irs_->UnionSize(seeds));
}

BudgetedValue ExactInfluenceOracle::InfluenceOfSetBudgeted(
    std::span<const NodeId> seeds, const QueryBudget& budget) const {
  IPIN_LATENCY_SCOPE("oracle.exact.query_us");
  std::unordered_set<NodeId> seen;
  size_t until_check = budget.check_every;
  for (const NodeId u : seeds) {
    // At least one check per seed: a budget that was already burned before
    // the call (e.g. by a slow-eval fault) is noticed even when every
    // summary is far smaller than check_every.
    if (budget.Expired()) {
      return {static_cast<double>(seen.size()), true};
    }
    for (const auto& [v, t] : irs_->Summary(u)) {
      (void)t;
      seen.insert(v);
      if (--until_check == 0) {
        until_check = budget.check_every;
        if (budget.Expired()) {
          return {static_cast<double>(seen.size()), true};
        }
      }
    }
  }
  return {static_cast<double>(seen.size()), false};
}

std::unique_ptr<CoverageState> ExactInfluenceOracle::NewCoverage() const {
  return std::make_unique<ExactCoverage>(irs_);
}

SketchInfluenceOracle::SketchInfluenceOracle(const IrsApprox* irs)
    : irs_(irs) {
  IPIN_CHECK(irs != nullptr);
}

size_t SketchInfluenceOracle::num_nodes() const { return irs_->num_nodes(); }

double SketchInfluenceOracle::InfluenceOf(NodeId u) const {
  return irs_->EstimateIrsSize(u);
}

double SketchInfluenceOracle::InfluenceOfSet(
    std::span<const NodeId> seeds) const {
  IPIN_LATENCY_SCOPE("oracle.sketch.query_us");
  return irs_->EstimateUnionSize(seeds);
}

BudgetedValue SketchInfluenceOracle::InfluenceOfSetBudgeted(
    std::span<const NodeId> seeds, const QueryBudget& budget) const {
  IPIN_LATENCY_SCOPE("oracle.sketch.query_us");
  const size_t beta =
      static_cast<size_t>(1) << irs_->options().precision;
  // thread_local scratch: serving workers answer many budgeted queries
  // back to back and this path must not allocate per call.
  static thread_local std::vector<uint8_t> ranks;
  ranks.assign(beta, 0);
  bool any = false;
  for (size_t i = 0; i < seeds.size(); ++i) {
    if (budget.Expired()) {
      const double partial =
          any ? EstimateFromRanks(ranks) : 0.0;
      return {partial, true};
    }
    const SketchView sketch = irs_->Sketch(seeds[i]);
    if (!sketch) continue;
    any = true;
    kernels::CellwiseMaxU8(ranks.data(), sketch.max_ranks().data(), beta);
  }
  return {any ? EstimateFromRanks(ranks) : 0.0, false};
}

std::unique_ptr<CoverageState> SketchInfluenceOracle::NewCoverage() const {
  return std::make_unique<SketchCoverage>(irs_);
}

SetCoverageOracle::SetCoverageOracle(std::vector<std::vector<NodeId>> sets)
    : sets_(std::move(sets)) {}

size_t SetCoverageOracle::num_nodes() const { return sets_.size(); }

double SetCoverageOracle::InfluenceOf(NodeId u) const {
  return static_cast<double>(sets_[u].size());
}

double SetCoverageOracle::InfluenceOfSet(std::span<const NodeId> seeds) const {
  std::unordered_set<NodeId> seen;
  for (const NodeId u : seeds) {
    IPIN_CHECK_LT(u, sets_.size());
    seen.insert(sets_[u].begin(), sets_[u].end());
  }
  return static_cast<double>(seen.size());
}

std::unique_ptr<CoverageState> SetCoverageOracle::NewCoverage() const {
  return std::make_unique<SetCoverage>(this);
}

}  // namespace ipin
