#ifndef IPIN_CORE_TCLT_H_
#define IPIN_CORE_TCLT_H_

#include <cstddef>
#include <span>
#include <vector>

#include "ipin/common/random.h"
#include "ipin/graph/interaction_graph.h"
#include "ipin/graph/types.h"

// Time-Constrained Linear Threshold model: the LT counterpart of the
// paper's TCIC (Section 2 derives TCIC from Independent Cascade and notes
// LT as the other classic model). Each node draws a uniform threshold; an
// interaction (u, v, t) from an active node u whose chain window has not
// expired contributes u's edge weight to v (once per distinct static edge);
// v activates when the accumulated weight reaches its threshold, inheriting
// the chain's start time exactly like TCIC. Used as an extension experiment
// validating that IRS seed sets transfer across propagation models.

namespace ipin {

/// Parameters of the TCLT simulation.
struct TcltOptions {
  /// Maximal spread window omega (chain-anchored, like TCIC).
  Duration window = 1;
  /// Edge weight scale: weight(u, v) = scale / static_in_degree(v),
  /// clamped to 1. scale = 1 gives the classic normalized LT weights.
  double weight_scale = 1.0;
};

/// Runs one TCLT cascade over a time-sorted interaction list; returns the
/// number of active nodes (seeds included once activated).
size_t SimulateTclt(const InteractionGraph& graph,
                    std::span<const NodeId> seeds, const TcltOptions& options,
                    Rng* rng);

/// Mean active count over `num_runs` cascades (fresh thresholds per run).
/// Deterministic given `seed`.
double AverageTcltSpread(const InteractionGraph& graph,
                         std::span<const NodeId> seeds,
                         const TcltOptions& options, size_t num_runs,
                         uint64_t seed);

}  // namespace ipin

#endif  // IPIN_CORE_TCLT_H_
