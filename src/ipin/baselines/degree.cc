#include "ipin/baselines/degree.h"

#include <algorithm>
#include <queue>
#include <unordered_set>

namespace ipin {

std::vector<NodeId> SelectSeedsHighDegree(const StaticGraph& graph, size_t k) {
  const size_t n = graph.num_nodes();
  std::vector<NodeId> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = static_cast<NodeId>(i);
  k = std::min(k, n);
  std::partial_sort(order.begin(), order.begin() + static_cast<ptrdiff_t>(k),
                    order.end(), [&graph](NodeId a, NodeId b) {
                      const size_t da = graph.OutDegree(a);
                      const size_t db = graph.OutDegree(b);
                      if (da != db) return da > db;
                      return a < b;
                    });
  order.resize(k);
  return order;
}

std::vector<NodeId> SelectSeedsHighDegree(const InteractionGraph& interactions,
                                          size_t k) {
  return SelectSeedsHighDegree(StaticGraph::FromInteractions(interactions), k);
}

std::vector<NodeId> SelectSeedsSmartHighDegree(const StaticGraph& graph,
                                               size_t k) {
  const size_t n = graph.num_nodes();
  k = std::min(k, n);
  std::vector<NodeId> seeds;
  if (k == 0) return seeds;

  std::unordered_set<NodeId> covered;
  struct HeapEntry {
    size_t gain;
    NodeId node;
    size_t round;
  };
  const auto cmp = [](const HeapEntry& a, const HeapEntry& b) {
    if (a.gain != b.gain) return a.gain < b.gain;
    return a.node > b.node;
  };
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, decltype(cmp)> heap(
      cmp);
  for (NodeId u = 0; u < n; ++u) {
    heap.push(HeapEntry{graph.OutDegree(u), u, 0});
  }

  const auto gain_of = [&graph, &covered](NodeId u) {
    size_t gain = 0;
    for (const NodeId v : graph.Neighbors(u)) {
      if (covered.find(v) == covered.end()) ++gain;
    }
    return gain;
  };

  size_t round = 1;
  while (seeds.size() < k && !heap.empty()) {
    HeapEntry top = heap.top();
    heap.pop();
    if (top.round != round) {
      top.gain = gain_of(top.node);
      top.round = round;
      heap.push(top);
      continue;
    }
    for (const NodeId v : graph.Neighbors(top.node)) covered.insert(v);
    seeds.push_back(top.node);
    ++round;
  }
  return seeds;
}

std::vector<NodeId> SelectSeedsSmartHighDegree(
    const InteractionGraph& interactions, size_t k) {
  return SelectSeedsSmartHighDegree(StaticGraph::FromInteractions(interactions),
                                    k);
}

}  // namespace ipin
