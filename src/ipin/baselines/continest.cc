#include "ipin/baselines/continest.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "ipin/common/check.h"
#include "ipin/common/random.h"

namespace ipin {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Reverse view of a weighted graph with per-run sampled delays.
struct ReverseEdges {
  std::vector<size_t> offsets;
  struct Arc {
    NodeId source;  // original edge source (target in the reverse view)
    double weight;  // original edge weight (delay scale input)
  };
  std::vector<Arc> arcs;
};

ReverseEdges BuildReverse(const WeightedStaticGraph& graph) {
  const size_t n = graph.num_nodes();
  ReverseEdges rev;
  rev.offsets.assign(n + 1, 0);
  for (NodeId u = 0; u < n; ++u) {
    for (const auto& e : graph.Neighbors(u)) rev.offsets[e.target + 1]++;
  }
  for (size_t i = 1; i <= n; ++i) rev.offsets[i] += rev.offsets[i - 1];
  rev.arcs.resize(graph.num_edges());
  std::vector<size_t> cursor(rev.offsets.begin(), rev.offsets.end() - 1);
  for (NodeId u = 0; u < n; ++u) {
    for (const auto& e : graph.Neighbors(u)) {
      rev.arcs[cursor[e.target]++] = ReverseEdges::Arc{u, e.weight};
    }
  }
  return rev;
}

double MeanWeight(const WeightedStaticGraph& graph) {
  if (graph.num_edges() == 0) return 1.0;
  double total = 0.0;
  const size_t n = graph.num_nodes();
  for (NodeId u = 0; u < n; ++u) {
    for (const auto& e : graph.Neighbors(u)) total += e.weight;
  }
  return std::max(total / static_cast<double>(graph.num_edges()), 1e-9);
}

// One round of Cohen's randomized neighbourhood estimation: computes, for
// every node u, the minimum exponential label among nodes in u's forward
// ball of radius T under freshly sampled delays. Works on the reverse graph
// (w reaches u in reverse == u reaches w forward), processing sources in
// ascending label order with distance-based pruning, so each node is
// expanded O(log n) expected times.
void MinLabelRound(const WeightedStaticGraph& graph, const ReverseEdges& rev,
                   double mean_weight, double horizon, Rng* rng,
                   std::vector<double>* min_label) {
  const size_t n = graph.num_nodes();
  min_label->assign(n, kInf);

  // Per-round exponential delay for each reverse arc: Exp(1) scaled by the
  // edge's normalized weight (slower historical interaction -> slower
  // expected transmission).
  std::vector<double> delay(rev.arcs.size());
  for (size_t i = 0; i < rev.arcs.size(); ++i) {
    const double scale = 1.0 + rev.arcs[i].weight / mean_weight;
    delay[i] = rng->NextExponential(1.0) * scale;
  }

  std::vector<double> label(n);
  std::vector<NodeId> order(n);
  for (NodeId u = 0; u < n; ++u) {
    label[u] = rng->NextExponential(1.0);
    order[u] = u;
  }
  std::sort(order.begin(), order.end(),
            [&label](NodeId a, NodeId b) { return label[a] < label[b]; });

  std::vector<double> dist_best(n, kInf);
  using QueueItem = std::pair<double, NodeId>;
  std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>> pq;

  for (const NodeId w : order) {
    if (dist_best[w] <= 0.0) continue;  // already reached at distance 0
    pq.push({0.0, w});
    while (!pq.empty()) {
      const auto [d, v] = pq.top();
      pq.pop();
      if (d >= dist_best[v]) continue;  // a smaller label got here closer
      dist_best[v] = d;
      if ((*min_label)[v] == kInf) (*min_label)[v] = label[w];
      for (size_t i = rev.offsets[v]; i < rev.offsets[v + 1]; ++i) {
        const double nd = d + delay[i];
        const NodeId x = rev.arcs[i].source;
        if (nd <= horizon && nd < dist_best[x]) pq.push({nd, x});
      }
    }
  }
}

}  // namespace

WeightedStaticGraph BuildContinestGraph(const InteractionGraph& interactions) {
  IPIN_CHECK(interactions.is_sorted());
  const size_t n = interactions.num_nodes();
  std::vector<Timestamp> first_out(n, kNoTimestamp);
  for (const Interaction& e : interactions.interactions()) {
    if (first_out[e.src] == kNoTimestamp) first_out[e.src] = e.time;
  }
  std::vector<std::tuple<NodeId, NodeId, double>> edges;
  edges.reserve(interactions.num_interactions());
  for (const Interaction& e : interactions.interactions()) {
    const double w = static_cast<double>(e.time - first_out[e.src]);
    edges.emplace_back(e.src, e.dst, w);
  }
  return WeightedStaticGraph::FromEdges(n, std::move(edges));
}

ContinestResult SelectSeedsContinest(const WeightedStaticGraph& graph,
                                     size_t k,
                                     const ContinestOptions& options) {
  IPIN_CHECK_GE(options.num_samples, 2u);
  IPIN_CHECK_GT(options.time_horizon, 0.0);
  ContinestResult result;
  const size_t n = graph.num_nodes();
  if (n == 0 || k == 0) return result;
  k = std::min(k, n);

  const ReverseEdges rev = BuildReverse(graph);
  const double mean_weight = MeanWeight(graph);
  Rng rng(options.seed);

  // min_labels[l][u]: round l's minimum label within u's forward ball.
  const size_t L = options.num_samples;
  std::vector<std::vector<double>> min_labels(L);
  for (size_t l = 0; l < L; ++l) {
    MinLabelRound(graph, rev, mean_weight, options.time_horizon, &rng,
                  &min_labels[l]);
  }

  // Influence estimator for a seed set: sigma(S) ~ (L-1) / sum_l lambda_l,
  // lambda_l = min over seeds of min_labels[l][seed].
  std::vector<double> current(L, kInf);
  const auto estimate_with = [&](NodeId u) {
    double sum = 0.0;
    for (size_t l = 0; l < L; ++l) {
      sum += std::min(current[l], min_labels[l][u]);
    }
    if (sum <= 0.0 || !std::isfinite(sum)) return 0.0;
    return static_cast<double>(L - 1) / sum;
  };
  double current_estimate = 0.0;

  // CELF lazy greedy.
  struct HeapEntry {
    double gain;
    NodeId node;
    size_t round;
  };
  const auto cmp = [](const HeapEntry& a, const HeapEntry& b) {
    if (a.gain != b.gain) return a.gain < b.gain;
    return a.node > b.node;
  };
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, decltype(cmp)> heap(
      cmp);
  for (NodeId u = 0; u < n; ++u) {
    heap.push(HeapEntry{estimate_with(u), u, 1});
  }

  size_t round = 1;
  while (result.seeds.size() < k && !heap.empty()) {
    HeapEntry top = heap.top();
    heap.pop();
    if (top.round != round) {
      top.gain = std::max(0.0, estimate_with(top.node) - current_estimate);
      top.round = round;
      heap.push(top);
      continue;
    }
    for (size_t l = 0; l < L; ++l) {
      current[l] = std::min(current[l], min_labels[l][top.node]);
    }
    current_estimate = 0.0;
    {
      double sum = 0.0;
      for (const double c : current) sum += c;
      if (sum > 0.0 && std::isfinite(sum)) {
        current_estimate = static_cast<double>(L - 1) / sum;
      }
    }
    result.seeds.push_back(top.node);
    result.influence_after_pick.push_back(current_estimate);
    ++round;
  }
  return result;
}

ContinestResult SelectSeedsContinest(const InteractionGraph& interactions,
                                     size_t k,
                                     const ContinestOptions& options) {
  return SelectSeedsContinest(BuildContinestGraph(interactions), k, options);
}

}  // namespace ipin
