#include "ipin/baselines/temporal_pagerank.h"

#include <algorithm>
#include <cmath>

#include "ipin/baselines/pagerank.h"
#include "ipin/common/check.h"
#include "ipin/graph/transforms.h"

namespace ipin {

std::vector<double> ComputeTemporalPageRank(
    const InteractionGraph& graph, const TemporalPageRankOptions& options) {
  IPIN_CHECK(graph.is_sorted());
  IPIN_CHECK_GT(options.alpha, 0.0);
  IPIN_CHECK_LT(options.alpha, 1.0);
  const size_t n = graph.num_nodes();
  std::vector<double> score(n, 0.0);
  if (graph.empty()) return score;

  double tau = options.tau;
  if (tau <= 0.0) {
    tau = static_cast<double>(graph.WindowFromPercent(10.0));
  }

  // active[u]: decayed mass of walks currently sitting at u;
  // last_active[u]: when that mass was last updated.
  std::vector<double> active(n, 0.0);
  std::vector<Timestamp> last_active(n, kNoTimestamp);

  const auto decayed = [&](NodeId u, Timestamp now) {
    if (last_active[u] == kNoTimestamp || active[u] == 0.0) return 0.0;
    const double dt = static_cast<double>(now - last_active[u]);
    return active[u] * std::exp(-dt / tau);
  };

  for (const Interaction& e : graph.interactions()) {
    const auto [u, v, t] = e;
    // A fresh unit walk starts at u, plus whatever decayed mass u held.
    const double mass_u = 1.0 + decayed(u, t);
    const double forwarded = options.alpha * mass_u;
    // u keeps the non-forwarded remainder (walks that stop here).
    active[u] = mass_u - forwarded;
    last_active[u] = t;
    // v receives the forwarded mass on top of its own decayed holdings.
    active[v] = decayed(v, t) + forwarded;
    last_active[v] = t;
    score[v] += forwarded;
  }

  double total = 0.0;
  for (const double s : score) total += s;
  if (total > 0.0) {
    for (double& s : score) s /= total;
  }
  return score;
}

std::vector<NodeId> SelectSeedsTemporalPageRank(
    const InteractionGraph& graph, size_t k,
    const TemporalPageRankOptions& options) {
  // The temporal transpose (reversed directions + mirrored time) converts
  // incoming temporal importance into outgoing temporal influence while
  // preserving time-respecting chains.
  const InteractionGraph transposed = TemporalTranspose(graph);
  return TopKByScore(ComputeTemporalPageRank(transposed, options), k);
}

}  // namespace ipin
