#ifndef IPIN_BASELINES_SKIM_H_
#define IPIN_BASELINES_SKIM_H_

#include <cstddef>
#include <vector>

#include "ipin/graph/interaction_graph.h"
#include "ipin/graph/static_graph.h"
#include "ipin/graph/types.h"

namespace ipin {

/// Options for the SKIM-style sketch-based influence maximizer
/// (after Cohen, Delling, Pajor, Werneck: "Sketch-based Influence
/// Maximization and Computation", CIKM 2014).
struct SkimOptions {
  /// Number ell of Monte-Carlo instances of the IC model.
  size_t num_instances = 32;
  /// Bottom-k sketch size (the paper's k; larger = tighter estimates).
  size_t sketch_k = 64;
  /// IC edge-activation probability used to sample instances.
  double probability = 0.5;
  /// PRNG seed (instance sampling + rank permutation).
  uint64_t seed = 0x51c1a5eedULL;
  /// Safety valve: maximum exact gain evaluations during the greedy phase.
  size_t max_gain_evaluations = 1u << 20;
};

/// Result of a SKIM run.
struct SkimResult {
  std::vector<NodeId> seeds;
  /// Exact residual coverage gain of each pick, summed over instances.
  std::vector<double> gains;
  /// Total covered (instance, node) pairs divided by num_instances — the
  /// estimated expected IC spread of the seed set.
  double estimated_spread = 0.0;
};

/// Runs SKIM-style influence maximization on a static graph: samples ell
/// live-edge instances, builds combined bottom-k reachability sketches
/// (Cohen's ascending-rank reverse-search algorithm), then greedily selects
/// seeds. Sketch estimates drive a CELF lazy queue whose entries are
/// confirmed with exact residual coverage (forward search over uncovered
/// pairs) before committing — the quantity SKIM's incremental sketches
/// approximate. See DESIGN.md for the fidelity discussion.
SkimResult SelectSeedsSkim(const StaticGraph& graph, size_t k,
                           const SkimOptions& options = {});

/// Convenience: flattens the interaction network (the paper's preprocessing
/// step: drop timestamps and repeated interactions), then runs SKIM.
SkimResult SelectSeedsSkim(const InteractionGraph& interactions, size_t k,
                           const SkimOptions& options = {});

}  // namespace ipin

#endif  // IPIN_BASELINES_SKIM_H_
