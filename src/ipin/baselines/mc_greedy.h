#ifndef IPIN_BASELINES_MC_GREEDY_H_
#define IPIN_BASELINES_MC_GREEDY_H_

#include <cstddef>
#include <vector>

#include "ipin/core/tcic.h"
#include "ipin/graph/interaction_graph.h"
#include "ipin/graph/types.h"

namespace ipin {

/// Options for Monte-Carlo greedy influence maximization.
struct McGreedyOptions {
  /// TCIC parameters the spread estimates simulate under.
  TcicOptions tcic;
  /// Cascades simulated per marginal-gain evaluation.
  size_t num_runs = 50;
  /// PRNG seed (shared across evaluations for common random numbers,
  /// which reduces the variance of marginal-gain comparisons).
  uint64_t seed = 0x9ceedULL;
  /// Safety valve on total simulated cascades.
  size_t max_simulations = 1u << 22;
  /// Restrict candidates to the `candidate_pool` highest out-degree nodes
  /// (0 = all nodes). The full KDD'03 greedy evaluates every node; the pool
  /// keeps the cubic cost tractable on larger inputs.
  size_t candidate_pool = 0;
};

/// Result of a Monte-Carlo greedy run.
struct McGreedyResult {
  std::vector<NodeId> seeds;
  /// Estimated spread after each pick.
  std::vector<double> spread_after_pick;
  size_t simulations_used = 0;
};

/// The classic simulation-based greedy of Kempe, Kleinberg, Tardos
/// (KDD 2003), adapted to the TCIC model: each marginal gain is estimated
/// by averaging Monte-Carlo cascades, with a CELF lazy queue (Leskovec et
/// al. 2007) cutting the number of evaluations. This is the method the
/// paper's Section 5 calls unscalable — included as the quality yardstick
/// for small instances and for the ablation harness.
McGreedyResult SelectSeedsMcGreedy(const InteractionGraph& graph, size_t k,
                                   const McGreedyOptions& options);

}  // namespace ipin

#endif  // IPIN_BASELINES_MC_GREEDY_H_
