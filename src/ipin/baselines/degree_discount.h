#ifndef IPIN_BASELINES_DEGREE_DISCOUNT_H_
#define IPIN_BASELINES_DEGREE_DISCOUNT_H_

#include <cstddef>
#include <vector>

#include "ipin/graph/interaction_graph.h"
#include "ipin/graph/static_graph.h"
#include "ipin/graph/types.h"

namespace ipin {

/// DegreeDiscountIC heuristic (Chen, Wang, Yang, KDD 2009 — cited by the
/// paper as a scalable IC heuristic): picks k seeds by out-degree, but
/// discounts each candidate's score for already-selected in-neighbours:
///   dd(v) = d_v - 2 t_v - (d_v - t_v) t_v p
/// where d_v is v's out-degree and t_v the number of selected seeds with an
/// edge into v. An extension baseline for the ablation harness.
std::vector<NodeId> SelectSeedsDegreeDiscount(const StaticGraph& graph,
                                              size_t k, double probability);

/// Convenience overload flattening an interaction network first.
std::vector<NodeId> SelectSeedsDegreeDiscount(
    const InteractionGraph& interactions, size_t k, double probability);

}  // namespace ipin

#endif  // IPIN_BASELINES_DEGREE_DISCOUNT_H_
