#include "ipin/baselines/skim.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "ipin/common/check.h"
#include "ipin/common/random.h"
#include "ipin/sketch/bottom_k.h"

namespace ipin {
namespace {

// One live-edge instance of the IC model, as forward and reverse CSR.
struct Instance {
  StaticGraph forward;
  StaticGraph reverse;
};

std::vector<Instance> SampleInstances(const StaticGraph& graph,
                                      const SkimOptions& options, Rng* rng) {
  std::vector<Instance> instances;
  instances.reserve(options.num_instances);
  const size_t n = graph.num_nodes();
  for (size_t i = 0; i < options.num_instances; ++i) {
    std::vector<std::pair<NodeId, NodeId>> kept;
    for (NodeId u = 0; u < n; ++u) {
      for (const NodeId v : graph.Neighbors(u)) {
        if (rng->NextBernoulli(options.probability)) kept.emplace_back(u, v);
      }
    }
    Instance inst;
    inst.forward = StaticGraph::FromEdges(n, kept);
    inst.reverse = inst.forward.Transpose();
    instances.push_back(std::move(inst));
  }
  return instances;
}

// Cohen-style combined bottom-k reachability sketches: (instance, node)
// items are processed in ascending rank order; a reverse search from the
// item inserts its rank into the sketch of every node that reaches it,
// pruning at nodes whose sketch is already full.
std::vector<BottomK> BuildCombinedSketches(
    const std::vector<Instance>& instances, size_t n,
    const SkimOptions& options, Rng* rng) {
  std::vector<BottomK> sketches(n, BottomK(options.sketch_k));

  struct Item {
    uint64_t rank;
    uint32_t instance;
    NodeId node;
  };
  std::vector<Item> items;
  items.reserve(instances.size() * n);
  for (uint32_t i = 0; i < instances.size(); ++i) {
    for (NodeId v = 0; v < n; ++v) {
      items.push_back(Item{rng->NextUint64(), i, v});
    }
  }
  std::sort(items.begin(), items.end(),
            [](const Item& a, const Item& b) { return a.rank < b.rank; });

  std::vector<NodeId> stack;
  std::vector<uint32_t> visit_mark(n, 0xffffffffu);
  uint32_t visit_id = 0;
  for (const Item& item : items) {
    const StaticGraph& reverse = instances[item.instance].reverse;
    ++visit_id;
    stack.clear();
    stack.push_back(item.node);
    visit_mark[item.node] = visit_id;
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      // Prune once full: all k stored ranks are smaller than item.rank
      // (ascending processing), so neither u nor anything upstream that
      // reaches item only through u benefits from this rank.
      if (sketches[u].IsFull()) continue;
      sketches[u].AddHash(item.rank);
      for (const NodeId w : reverse.Neighbors(u)) {
        if (visit_mark[w] != visit_id) {
          visit_mark[w] = visit_id;
          stack.push_back(w);
        }
      }
    }
  }
  return sketches;
}

// Exact residual coverage of seeding `u`: number of still-uncovered
// (instance, node) pairs reachable from u, summed over instances.
size_t ResidualCoverage(const std::vector<Instance>& instances,
                        const std::vector<std::vector<char>>& covered,
                        NodeId u, std::vector<NodeId>* stack,
                        std::vector<uint32_t>* visit_mark,
                        uint32_t* visit_id) {
  size_t total = 0;
  for (size_t i = 0; i < instances.size(); ++i) {
    const StaticGraph& fwd = instances[i].forward;
    ++*visit_id;
    stack->clear();
    stack->push_back(u);
    (*visit_mark)[u] = *visit_id;
    while (!stack->empty()) {
      const NodeId x = stack->back();
      stack->pop_back();
      if (!covered[i][x]) ++total;
      for (const NodeId w : fwd.Neighbors(x)) {
        if ((*visit_mark)[w] != *visit_id) {
          (*visit_mark)[w] = *visit_id;
          stack->push_back(w);
        }
      }
    }
  }
  return total;
}

// Marks everything reachable from `u` as covered; returns newly covered.
size_t CommitSeed(const std::vector<Instance>& instances,
                  std::vector<std::vector<char>>* covered, NodeId u,
                  std::vector<NodeId>* stack,
                  std::vector<uint32_t>* visit_mark, uint32_t* visit_id) {
  size_t newly = 0;
  for (size_t i = 0; i < instances.size(); ++i) {
    const StaticGraph& fwd = instances[i].forward;
    ++*visit_id;
    stack->clear();
    stack->push_back(u);
    (*visit_mark)[u] = *visit_id;
    while (!stack->empty()) {
      const NodeId x = stack->back();
      stack->pop_back();
      if (!(*covered)[i][x]) {
        (*covered)[i][x] = 1;
        ++newly;
      }
      for (const NodeId w : fwd.Neighbors(x)) {
        if ((*visit_mark)[w] != *visit_id) {
          (*visit_mark)[w] = *visit_id;
          stack->push_back(w);
        }
      }
    }
  }
  return newly;
}

}  // namespace

SkimResult SelectSeedsSkim(const StaticGraph& graph, size_t k,
                           const SkimOptions& options) {
  IPIN_CHECK_GE(options.num_instances, 1u);
  IPIN_CHECK_GE(options.sketch_k, 2u);
  SkimResult result;
  const size_t n = graph.num_nodes();
  if (n == 0 || k == 0) return result;
  k = std::min(k, n);

  Rng rng(options.seed);
  const std::vector<Instance> instances = SampleInstances(graph, options, &rng);
  const std::vector<BottomK> sketches =
      BuildCombinedSketches(instances, n, options, &rng);

  // CELF over sketch estimates, confirmed by exact residual coverage.
  struct HeapEntry {
    double gain;
    NodeId node;
    size_t round;  // 0 = sketch estimate, else round of exact evaluation
  };
  const auto cmp = [](const HeapEntry& a, const HeapEntry& b) {
    if (a.gain != b.gain) return a.gain < b.gain;
    return a.node > b.node;
  };
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, decltype(cmp)> heap(
      cmp);
  for (NodeId u = 0; u < n; ++u) {
    // Inflate sketch estimates slightly so they act as optimistic bounds in
    // the lazy queue (bottom-k relative error ~ 1/sqrt(k)).
    const double optimism =
        1.0 + 2.0 / std::sqrt(static_cast<double>(options.sketch_k));
    heap.push(HeapEntry{sketches[u].Estimate() * optimism, u, 0});
  }

  std::vector<std::vector<char>> covered(
      instances.size(), std::vector<char>(n, 0));
  std::vector<NodeId> stack;
  std::vector<uint32_t> visit_mark(n, 0);
  uint32_t visit_id = 0;
  size_t evaluations = 0;
  size_t total_covered = 0;

  size_t round = 1;
  while (result.seeds.size() < k && !heap.empty()) {
    HeapEntry top = heap.top();
    heap.pop();
    if (top.round != round && evaluations < options.max_gain_evaluations) {
      top.gain = static_cast<double>(ResidualCoverage(
          instances, covered, top.node, &stack, &visit_mark, &visit_id));
      ++evaluations;
      top.round = round;
      heap.push(top);
      continue;
    }
    const size_t newly = CommitSeed(instances, &covered, top.node, &stack,
                                    &visit_mark, &visit_id);
    total_covered += newly;
    result.seeds.push_back(top.node);
    result.gains.push_back(static_cast<double>(newly));
    ++round;
  }
  result.estimated_spread = static_cast<double>(total_covered) /
                            static_cast<double>(instances.size());
  return result;
}

SkimResult SelectSeedsSkim(const InteractionGraph& interactions, size_t k,
                           const SkimOptions& options) {
  return SelectSeedsSkim(StaticGraph::FromInteractions(interactions), k,
                         options);
}

}  // namespace ipin
