#ifndef IPIN_BASELINES_PAGERANK_H_
#define IPIN_BASELINES_PAGERANK_H_

#include <cstddef>
#include <vector>

#include "ipin/graph/static_graph.h"
#include "ipin/graph/types.h"

namespace ipin {

/// PageRank power-iteration parameters. The paper's setup: restart
/// probability 0.15 (damping 0.85) and L1 convergence threshold 1e-4.
struct PageRankOptions {
  double damping = 0.85;
  double tolerance = 1e-4;
  size_t max_iterations = 200;
};

/// Computes PageRank scores of `graph` (scores sum to 1; dangling mass is
/// redistributed uniformly).
std::vector<double> ComputePageRank(const StaticGraph& graph,
                                    const PageRankOptions& options = {});

/// Top-k node ids by descending score (ties by ascending id).
std::vector<NodeId> TopKByScore(const std::vector<double>& scores, size_t k);

/// The paper's PageRank seed-selection baseline: ranks nodes by PageRank on
/// the *reversed* flattened interaction graph (PageRank measures incoming
/// importance; reversing converts it to outgoing influence).
std::vector<NodeId> SelectSeedsPageRank(const InteractionGraph& interactions,
                                        size_t k,
                                        const PageRankOptions& options = {});

}  // namespace ipin

#endif  // IPIN_BASELINES_PAGERANK_H_
