#ifndef IPIN_BASELINES_CONTINEST_H_
#define IPIN_BASELINES_CONTINEST_H_

#include <cstddef>
#include <vector>

#include "ipin/graph/interaction_graph.h"
#include "ipin/graph/static_graph.h"
#include "ipin/graph/types.h"

namespace ipin {

/// Options for the ConTinEst-style continuous-time influence maximizer
/// (after Du, Song, Gomez-Rodriguez, Zha: "Scalable Influence Estimation in
/// Continuous-Time Diffusion Networks", NIPS 2013).
struct ContinestOptions {
  /// Number L of (transmission-time sample x label sample) rounds; the
  /// influence estimator is (L-1) / sum of per-round minimum labels.
  size_t num_samples = 32;
  /// Diffusion time horizon T, in normalized delay units (per-edge delays
  /// are Exp(1)-scaled by 1 + weight/mean_weight, so typical single-hop
  /// delays are O(1)).
  double time_horizon = 5.0;
  /// PRNG seed.
  uint64_t seed = 0xc0417e57ULL;
};

/// The paper's Section 6 transformation of an interaction network into the
/// weighted static graph ConTinEst consumes: each interaction (u, v, t)
/// becomes edge (u, v) weighted t - first_out_time(u), where
/// first_out_time(u) is the time u first appears as a source (its assumed
/// infection time); duplicate edges keep the smallest weight.
WeightedStaticGraph BuildContinestGraph(const InteractionGraph& interactions);

/// Result of a ConTinEst run.
struct ContinestResult {
  std::vector<NodeId> seeds;
  /// Estimated influence sigma(S, T) after each pick.
  std::vector<double> influence_after_pick;
};

/// Runs ConTinEst: for each of L rounds, samples exponential per-edge
/// transmission delays and exponential node labels, computes every node's
/// minimum label within its forward ball of radius T (Cohen's randomized
/// neighbourhood estimation, ascending-label pruned reverse Dijkstra), then
/// greedily (lazy/CELF) maximizes the neighbourhood-size estimator.
ContinestResult SelectSeedsContinest(const WeightedStaticGraph& graph,
                                     size_t k,
                                     const ContinestOptions& options = {});

/// Convenience: applies BuildContinestGraph first.
ContinestResult SelectSeedsContinest(const InteractionGraph& interactions,
                                     size_t k,
                                     const ContinestOptions& options = {});

}  // namespace ipin

#endif  // IPIN_BASELINES_CONTINEST_H_
