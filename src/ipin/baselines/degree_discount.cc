#include "ipin/baselines/degree_discount.h"

#include <algorithm>
#include <queue>

#include "ipin/common/check.h"

namespace ipin {

std::vector<NodeId> SelectSeedsDegreeDiscount(const StaticGraph& graph,
                                              size_t k, double probability) {
  IPIN_CHECK_GE(probability, 0.0);
  IPIN_CHECK_LE(probability, 1.0);
  const size_t n = graph.num_nodes();
  k = std::min(k, n);
  std::vector<NodeId> seeds;
  if (k == 0) return seeds;

  std::vector<double> degree(n);
  std::vector<size_t> selected_in_neighbors(n, 0);
  std::vector<char> selected(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    degree[v] = static_cast<double>(graph.OutDegree(v));
  }

  // Lazy max-heap over discounted scores; entries are re-checked against
  // the current score when popped.
  struct HeapEntry {
    double score;
    NodeId node;
  };
  const auto cmp = [](const HeapEntry& a, const HeapEntry& b) {
    if (a.score != b.score) return a.score < b.score;
    return a.node > b.node;
  };
  const auto score_of = [&](NodeId v) {
    const double d = degree[v];
    const double t = static_cast<double>(selected_in_neighbors[v]);
    return d - 2.0 * t - (d - t) * t * probability;
  };
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, decltype(cmp)> heap(
      cmp);
  for (NodeId v = 0; v < n; ++v) heap.push(HeapEntry{score_of(v), v});

  while (seeds.size() < k && !heap.empty()) {
    const HeapEntry top = heap.top();
    heap.pop();
    if (selected[top.node]) continue;
    const double current = score_of(top.node);
    if (top.score != current) {
      heap.push(HeapEntry{current, top.node});  // stale; re-queue
      continue;
    }
    selected[top.node] = 1;
    seeds.push_back(top.node);
    // Discount every node the new seed points to.
    for (const NodeId v : graph.Neighbors(top.node)) {
      if (!selected[v]) {
        ++selected_in_neighbors[v];
        heap.push(HeapEntry{score_of(v), v});
      }
    }
  }
  return seeds;
}

std::vector<NodeId> SelectSeedsDegreeDiscount(
    const InteractionGraph& interactions, size_t k, double probability) {
  return SelectSeedsDegreeDiscount(StaticGraph::FromInteractions(interactions),
                                   k, probability);
}

}  // namespace ipin
