#ifndef IPIN_BASELINES_DEGREE_H_
#define IPIN_BASELINES_DEGREE_H_

#include <cstddef>
#include <vector>

#include "ipin/graph/interaction_graph.h"
#include "ipin/graph/static_graph.h"
#include "ipin/graph/types.h"

namespace ipin {

/// High Degree baseline (Kempe et al. 2003): the k nodes with the largest
/// out-degree in the flattened static graph (distinct out-neighbours).
std::vector<NodeId> SelectSeedsHighDegree(const StaticGraph& graph, size_t k);

/// Convenience overload flattening an interaction network first.
std::vector<NodeId> SelectSeedsHighDegree(const InteractionGraph& interactions,
                                          size_t k);

/// Smart High Degree (the paper's SHD): greedy maximum coverage over the
/// static out-neighbourhoods — pick the node covering the most not-yet-
/// covered distinct neighbours. The paper notes SHD is exactly the IRS
/// method with omega = 0. Implemented with CELF-style lazy evaluation.
std::vector<NodeId> SelectSeedsSmartHighDegree(const StaticGraph& graph,
                                               size_t k);

/// Convenience overload flattening an interaction network first.
std::vector<NodeId> SelectSeedsSmartHighDegree(
    const InteractionGraph& interactions, size_t k);

}  // namespace ipin

#endif  // IPIN_BASELINES_DEGREE_H_
