#ifndef IPIN_BASELINES_TEMPORAL_PAGERANK_H_
#define IPIN_BASELINES_TEMPORAL_PAGERANK_H_

#include <cstddef>
#include <vector>

#include "ipin/graph/interaction_graph.h"
#include "ipin/graph/types.h"

namespace ipin {

/// Options for streaming temporal PageRank.
struct TemporalPageRankOptions {
  /// Walk-continuation probability alpha (the damping factor).
  double alpha = 0.85;
  /// Exponential decay time constant tau for a node's active walk mass:
  /// mass halves every tau * ln 2 time units of inactivity. 0 picks
  /// 10% of the network's time span.
  double tau = 0.0;
};

/// Streaming temporal PageRank scores, in the spirit of Rozenshtein &
/// Gionis, "Temporal PageRank" (ECML/PKDD 2016): a single forward pass over
/// the interaction stream. Each interaction (u, v, t) starts a fresh unit
/// walk at u and forwards u's decayed active walk mass to v with damping
/// alpha; a node's score accumulates everything that ever flowed into it.
/// Unlike static PageRank on the flattened graph, scores respect time order
/// (mass can only flow along time-respecting chains) and repetition.
///
/// Returns one score per node (normalized to sum to 1 when any mass
/// exists). An extension baseline for seed selection.
std::vector<double> ComputeTemporalPageRank(
    const InteractionGraph& graph, const TemporalPageRankOptions& options = {});

/// Top-k seed selection by temporal PageRank of the REVERSED interactions
/// (outgoing influence rather than incoming importance — same convention as
/// the paper's static PageRank baseline).
std::vector<NodeId> SelectSeedsTemporalPageRank(
    const InteractionGraph& graph, size_t k,
    const TemporalPageRankOptions& options = {});

}  // namespace ipin

#endif  // IPIN_BASELINES_TEMPORAL_PAGERANK_H_
