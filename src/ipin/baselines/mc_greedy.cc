#include "ipin/baselines/mc_greedy.h"

#include <algorithm>
#include <queue>

#include "ipin/baselines/degree.h"
#include "ipin/common/check.h"

namespace ipin {
namespace {

// Spread of `seeds` estimated with common random numbers: run r always uses
// PRNG seed base + r, so two seed sets are compared under identical coin
// flips.
double EstimateSpread(const InteractionGraph& graph,
                      const std::vector<NodeId>& seeds,
                      const McGreedyOptions& options, size_t* simulations) {
  double total = 0.0;
  for (size_t r = 0; r < options.num_runs; ++r) {
    Rng rng(options.seed + r * 0x9e3779b97f4a7c15ULL);
    total += static_cast<double>(
        SimulateTcic(graph, seeds, options.tcic, &rng));
  }
  *simulations += options.num_runs;
  return total / static_cast<double>(options.num_runs);
}

}  // namespace

McGreedyResult SelectSeedsMcGreedy(const InteractionGraph& graph, size_t k,
                                   const McGreedyOptions& options) {
  IPIN_CHECK_GE(options.num_runs, 1u);
  McGreedyResult result;
  const size_t n = graph.num_nodes();
  if (n == 0 || k == 0) return result;
  k = std::min(k, n);

  // Candidate pool: all nodes, or the highest-out-degree subset.
  std::vector<NodeId> candidates;
  if (options.candidate_pool == 0 || options.candidate_pool >= n) {
    candidates.resize(n);
    for (size_t i = 0; i < n; ++i) candidates[i] = static_cast<NodeId>(i);
  } else {
    candidates = SelectSeedsHighDegree(graph, options.candidate_pool);
  }

  std::vector<NodeId> selected;
  double current_spread = 0.0;

  struct HeapEntry {
    double gain;
    NodeId node;
    size_t round;
  };
  const auto cmp = [](const HeapEntry& a, const HeapEntry& b) {
    if (a.gain != b.gain) return a.gain < b.gain;
    return a.node > b.node;
  };
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, decltype(cmp)> heap(
      cmp);
  // Initialize with a large bound so every candidate is evaluated lazily.
  for (const NodeId u : candidates) {
    heap.push(HeapEntry{static_cast<double>(n), u, 0});
  }

  size_t round = 1;
  while (selected.size() < k && !heap.empty() &&
         result.simulations_used < options.max_simulations) {
    HeapEntry top = heap.top();
    heap.pop();
    if (top.round != round) {
      std::vector<NodeId> with = selected;
      with.push_back(top.node);
      const double spread =
          EstimateSpread(graph, with, options, &result.simulations_used);
      top.gain = std::max(0.0, spread - current_spread);
      top.round = round;
      heap.push(top);
      continue;
    }
    selected.push_back(top.node);
    current_spread += top.gain;
    result.seeds.push_back(top.node);
    result.spread_after_pick.push_back(current_spread);
    ++round;
  }
  return result;
}

}  // namespace ipin
