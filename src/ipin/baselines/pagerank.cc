#include "ipin/baselines/pagerank.h"

#include <algorithm>
#include <cmath>

#include "ipin/common/check.h"

namespace ipin {

std::vector<double> ComputePageRank(const StaticGraph& graph,
                                    const PageRankOptions& options) {
  const size_t n = graph.num_nodes();
  if (n == 0) return {};
  IPIN_CHECK_GT(options.damping, 0.0);
  IPIN_CHECK_LT(options.damping, 1.0);

  std::vector<double> rank(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n, 0.0);

  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    double dangling_mass = 0.0;
    std::fill(next.begin(), next.end(), 0.0);
    for (NodeId u = 0; u < n; ++u) {
      const size_t degree = graph.OutDegree(u);
      if (degree == 0) {
        dangling_mass += rank[u];
        continue;
      }
      const double share = rank[u] / static_cast<double>(degree);
      for (const NodeId v : graph.Neighbors(u)) next[v] += share;
    }
    const double base = (1.0 - options.damping) / static_cast<double>(n) +
                        options.damping * dangling_mass /
                            static_cast<double>(n);
    double l1 = 0.0;
    for (size_t i = 0; i < n; ++i) {
      next[i] = base + options.damping * next[i];
      l1 += std::abs(next[i] - rank[i]);
    }
    rank.swap(next);
    if (l1 < options.tolerance) break;
  }
  return rank;
}

std::vector<NodeId> TopKByScore(const std::vector<double>& scores, size_t k) {
  std::vector<NodeId> order(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) order[i] = static_cast<NodeId>(i);
  k = std::min(k, scores.size());
  std::partial_sort(order.begin(), order.begin() + static_cast<ptrdiff_t>(k),
                    order.end(), [&scores](NodeId a, NodeId b) {
                      if (scores[a] != scores[b]) return scores[a] > scores[b];
                      return a < b;
                    });
  order.resize(k);
  return order;
}

std::vector<NodeId> SelectSeedsPageRank(const InteractionGraph& interactions,
                                        size_t k,
                                        const PageRankOptions& options) {
  const StaticGraph reversed =
      StaticGraph::FromInteractions(interactions, /*reversed=*/true);
  return TopKByScore(ComputePageRank(reversed, options), k);
}

}  // namespace ipin
