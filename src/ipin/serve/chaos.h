#ifndef IPIN_SERVE_CHAOS_H_
#define IPIN_SERVE_CHAOS_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ipin/serve/client.h"

// The deterministic chaos-drill engine (DESIGN.md §11): a seeded,
// schedule-driven orchestrator that replays a timeline of fault actions
// against a running serving fleet while a verifier thread asserts the
// tier's headline invariants. It replaces the ad-hoc shell drills of
// router_smoke_test.sh with a reusable harness any robustness change can
// script against, and — because the schedule is a pure function of
// (scenario, seed) — a failing drill replays EXACTLY from its seed.
//
// The engine splits in two:
//
//   * ChaosSchedule::Generate(scenario, seed): the pure part. Produces the
//     action timeline — kinds, targets (e.g. which primary dies), and
//     jittered offsets — from an ipin::Rng(seed). Same scenario + seed =
//     byte-identical ToJson(), asserted by tests/test_chaos_schedule.cc;
//     no processes, no clocks.
//
//   * ChaosDrill: the orchestration part (fork/exec; Linux). Spawns the
//     fleet described by ChaosDrillOptions (daemons publish readiness via
//     --port_file, see port_file.h), executes the schedule's actions at
//     their offsets (SIGKILL, respawn, shard-map installs + wire reloads,
//     corrupt-map rollback probes), and runs a verifier thread that
//     hammers the router with seeded queries, comparing every answer
//     against a reference single-index daemon:
//
//       - ZERO WRONG ANSWERS: a non-degraded OK answer (estimate or topk)
//         must be bit-identical to the reference's;
//       - HONEST DEGRADATION: degraded must be flagged iff coverage < 1;
//       - AVAILABILITY: >= min_availability of completed queries answered
//         OK (degraded allowed) across the whole timeline;
//       - RECOVERY: after the last action, an exact undegraded answer
//         within recovery_deadline_ms;
//       - NO LEAKED DAEMONS: after teardown every spawned pid is gone.
//
//     Every spawn, signal, install, and verdict is appended to a JSONL
//     ledger (schema "ipin.chaos.v1") for CI artifact upload.
//
// tools/ipin_chaos prepares the fleet artifacts (dataset, index, shard
// pieces, transition maps) and wires them into ChaosDrillOptions; see its
// header comment for the scenario walkthroughs.

namespace ipin::serve {

enum class ChaosActionKind {
  /// Start the daemons listed as new_shards (the grown fleet's additions).
  kSpawnNewShards,
  /// Install the transition (v2, old->new) map over the live map file and
  /// reload the router: double-dispatch begins.
  kInstallTransitionMap,
  /// SIGKILL the primary daemon named by `target`.
  kKillPrimary,
  /// Overwrite the live map with garbage and reload: the router must roll
  /// back (old epoch keeps routing); the good map is then restored.
  kCorruptMapReload,
  /// Respawn the daemon named by `target` with its original spec.
  kRestartDaemon,
  /// Install the finalized (transition-stripped) map and reload: the
  /// reshard completes and double-dispatch ends.
  kFinalizeMap,
};

/// Stable wire spelling ("spawn-new-shards", "kill-primary", ...).
const char* ChaosActionKindName(ChaosActionKind kind);

struct ChaosAction {
  /// Offset from drill start.
  int64_t at_ms = 0;
  ChaosActionKind kind = ChaosActionKind::kKillPrimary;
  /// Daemon name for kill/restart actions ("old2"); empty otherwise.
  std::string target;
};

struct ChaosScheduleOptions {
  /// Base spacing between consecutive actions.
  int64_t spacing_ms = 500;
  /// Each offset is jittered uniformly in +-(jitter * spacing_ms) — drawn
  /// from the schedule's Rng, so jitter is deterministic per seed.
  double jitter = 0.1;
  /// Shard counts of the reshard scenarios (old fleet -> grown fleet).
  size_t num_old_shards = 4;
  size_t num_new_shards = 6;
};

/// A generated drill timeline. Actions are ordered by at_ms.
struct ChaosSchedule {
  std::string scenario;
  uint64_t seed = 0;
  std::vector<ChaosAction> actions;

  /// One "ipin.chaos.v1" JSON object (stable field order): the replay
  /// contract — identical for identical (scenario, seed, options).
  std::string ToJson() const;

  /// Scenarios:
  ///   "kill-primary-mid-reshard"  spawn new shards, install the
  ///       transition map, SIGKILL a seed-chosen old primary mid-
  ///       migration, probe corrupt-map rollback, restart the victim,
  ///       finalize. The acceptance drill.
  ///   "replica-failover"  SIGKILL a seed-chosen primary, later restart
  ///       it: exercises replica promotion and probe-driven demotion with
  ///       no reshard in flight.
  /// nullopt for an unknown scenario.
  static std::optional<ChaosSchedule> Generate(
      const std::string& scenario, uint64_t seed,
      const ChaosScheduleOptions& options = {});
};

/// One daemon the drill owns: how to exec it, where its stdout/stderr go,
/// and the port file it publishes readiness through.
struct ChaosDaemonSpec {
  /// Schedule-addressable name ("old0", "replica2", "new4", "router",
  /// "reference").
  std::string name;
  /// argv[0] is the binary path.
  std::vector<std::string> argv;
  std::string log_file;
  /// Must match a --port_file argument in argv; readiness = the file
  /// reports the freshly spawned pid (stale files from a previous
  /// incarnation are ignored).
  std::string port_file;
};

struct ChaosDrillOptions {
  ChaosSchedule schedule;

  /// Fleet running from t=0: old-fleet primaries, replicas, the reference
  /// single-index daemon, and the router (in start order; the router
  /// should come last so its first probes find live backends).
  std::vector<ChaosDaemonSpec> initial_daemons;
  /// Daemons started by kSpawnNewShards.
  std::vector<ChaosDaemonSpec> new_shards;

  /// The live map file the router watches, and the prepared map documents
  /// the install actions copy over it.
  std::string live_map_path;
  std::string transition_map_path;
  std::string final_map_path;

  /// Router endpoint the verifier queries, and the reference daemon's.
  ClientOptions router;
  ClientOptions reference;

  /// Verifier: seeds drawn from [0, num_nodes) with its own
  /// Rng(schedule.seed), seed-set sizes in [1, max_seeds_per_query]; every
  /// verifier_topk_every-th query is a topk comparison instead.
  size_t num_nodes = 0;
  size_t max_seeds_per_query = 8;
  size_t verifier_topk_every = 16;
  int64_t query_deadline_ms = 400;
  /// Pause between verifier queries (0 = hammer).
  int64_t verifier_pause_ms = 2;

  /// Invariant thresholds.
  double min_availability = 0.99;
  int64_t recovery_deadline_ms = 10000;
  /// Teardown: SIGTERM then this long before escalating to SIGKILL (a
  /// daemon needing SIGKILL at teardown is reported as leaked).
  int64_t drain_deadline_ms = 5000;

  /// JSONL ledger path (required).
  std::string ledger_path;
};

/// Drill outcome. `passed` is the conjunction of the five invariants; on
/// failure `failure` names the first broken one.
struct ChaosDrillReport {
  size_t queries_total = 0;
  /// OK answers (degraded or not); availability = queries_ok / total.
  size_t queries_ok = 0;
  size_t queries_degraded = 0;
  /// Non-degraded answers that differed from the reference, plus
  /// degraded/coverage contradictions.
  size_t wrong_answers = 0;
  size_t invariant_violations = 0;
  /// UNAVAILABLE answers and exhausted-retry transport failures.
  size_t queries_failed = 0;
  double availability = 0.0;
  bool recovered = false;
  int64_t recovery_ms = -1;
  /// Daemons that survived SIGTERM teardown (killed, then reported here).
  std::vector<std::string> leaked_daemons;
  bool passed = false;
  std::string failure;
};

/// Executes one drill. Construction does nothing; Run() spawns the fleet,
/// replays the schedule, joins the verifier, tears the fleet down, and
/// writes the ledger. Run() is one-shot.
class ChaosDrill {
 public:
  explicit ChaosDrill(ChaosDrillOptions options);
  ~ChaosDrill();

  ChaosDrill(const ChaosDrill&) = delete;
  ChaosDrill& operator=(const ChaosDrill&) = delete;

  ChaosDrillReport Run();

 private:
  struct Daemon {
    ChaosDaemonSpec spec;
    long pid = -1;
    bool alive = false;
  };

  bool SpawnDaemon(const ChaosDaemonSpec& spec, std::string* error);
  bool WaitReady(const Daemon& daemon, int64_t deadline_ms,
                 std::string* error);
  bool InstallMap(const std::string& source_path, bool expect_rollback,
                  std::string* error);
  bool ExecuteAction(const ChaosAction& action, std::string* error);
  void Teardown(ChaosDrillReport* report);
  void LedgerLine(const std::string& json_object);

  ChaosDrillOptions options_;
  std::map<std::string, Daemon> daemons_;
  int ledger_fd_ = -1;
  int64_t start_ms_ = 0;  // drill epoch on the steady clock
};

}  // namespace ipin::serve

#endif  // IPIN_SERVE_CHAOS_H_
