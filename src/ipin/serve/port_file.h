#ifndef IPIN_SERVE_PORT_FILE_H_
#define IPIN_SERVE_PORT_FILE_H_

#include <optional>
#include <string>

// Port files: how a daemon publishes its endpoint to the script that
// spawned it. Fixed TCP ports collide when test suites run in parallel on
// one CI host; the fix is to bind port 0 (kernel-assigned) and write the
// chosen endpoint — plus the pid, for cleanup — to a file the script
// reads. One line:
//
//   pid=12345 program=ipin_oracled port=41233 socket=/tmp/x.sock
//
// `port` is -1 for a unix-socket-only daemon, `socket` is empty for a
// TCP-only one. The file is written to a sibling temp path and renamed
// into place, so a polling reader sees either nothing or the whole line,
// never a torn write. ipin_oracled and ipin_routerd expose it as
// --port_file; serve_smoke_test.sh, router_smoke_test.sh, and the chaos
// drill read it.

namespace ipin::serve {

/// Parsed port file.
struct PortFileInfo {
  long pid = -1;
  int port = -1;
  std::string socket;
  std::string program;
};

/// Atomically publishes this process's endpoint. `port` < 0 means no TCP
/// listener; `socket` empty means no unix listener. False on IO failure
/// (the temp file is removed).
bool WritePortFile(const std::string& path, const std::string& program,
                   int port, const std::string& socket);

/// Reads a port file written by WritePortFile; nullopt when the file is
/// missing or malformed (a reader polling for daemon readiness treats that
/// as "not up yet").
std::optional<PortFileInfo> ReadPortFile(const std::string& path);

}  // namespace ipin::serve

#endif  // IPIN_SERVE_PORT_FILE_H_
