#include "ipin/serve/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "ipin/common/logging.h"
#include "ipin/common/string_util.h"

namespace ipin::serve {
namespace {

void ApplyIoTimeout(int fd, int64_t timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

// Non-blocking connect with a poll deadline, restored to blocking after.
bool ConnectWithTimeout(int fd, const sockaddr* addr, socklen_t len,
                        int64_t timeout_ms) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, addr, len);
  if (rc != 0 && errno == EINPROGRESS) {
    pollfd pfd{fd, POLLOUT, 0};
    if (::poll(&pfd, 1, static_cast<int>(timeout_ms)) <= 0) return false;
    int err = 0;
    socklen_t err_len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) != 0 ||
        err != 0) {
      return false;
    }
    rc = 0;
  }
  ::fcntl(fd, F_SETFL, flags);
  return rc == 0;
}

}  // namespace

OracleClient::OracleClient(ClientOptions options)
    : options_(std::move(options)),
      rng_(options_.jitter_seed),
      io_timeout_ms_(options_.io_timeout_ms) {}

OracleClient::~OracleClient() { Disconnect(); }

void OracleClient::Disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  read_buffer_.clear();
}

bool OracleClient::EnsureConnected(std::string* error) {
  if (fd_ >= 0) return true;
  const bool unix_mode = !options_.unix_socket_path.empty();
  int fd = -1;
  bool ok = false;
  if (unix_mode) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.unix_socket_path.size() >= sizeof(addr.sun_path)) {
      if (error != nullptr) *error = "socket path too long";
      return false;
    }
    std::strncpy(addr.sun_path, options_.unix_socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ok = fd >= 0 &&
         ConnectWithTimeout(fd, reinterpret_cast<sockaddr*>(&addr),
                            sizeof(addr), options_.connect_timeout_ms);
  } else {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(options_.tcp_port));
    if (::inet_pton(AF_INET, options_.tcp_host.c_str(), &addr.sin_addr) != 1) {
      if (error != nullptr) *error = "bad host: " + options_.tcp_host;
      return false;
    }
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ok = fd >= 0 &&
         ConnectWithTimeout(fd, reinterpret_cast<sockaddr*>(&addr),
                            sizeof(addr), options_.connect_timeout_ms);
  }
  if (!ok) {
    if (error != nullptr) {
      *error = StrFormat("connect failed: %s", std::strerror(errno));
    }
    if (fd >= 0) ::close(fd);
    return false;
  }
  ApplyIoTimeout(fd, io_timeout_ms_);
  fd_ = fd;
  read_buffer_.clear();
  return true;
}

void OracleClient::SetIoTimeout(int64_t io_timeout_ms) {
  io_timeout_ms_ = std::max<int64_t>(1, io_timeout_ms);
  if (fd_ >= 0) ApplyIoTimeout(fd_, io_timeout_ms_);
}

bool OracleClient::SendLine(const std::string& line) {
  size_t written = 0;
  while (written < line.size()) {
    const ssize_t n = ::send(fd_, line.data() + written,
                             line.size() - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<size_t>(n);
  }
  return true;
}

bool OracleClient::ReadLine(std::string* line) {
  while (true) {
    const size_t newline = read_buffer_.find('\n');
    if (newline != std::string::npos) {
      line->assign(read_buffer_, 0, newline);
      read_buffer_.erase(0, newline + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) return false;
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // includes EAGAIN from SO_RCVTIMEO: a read timeout
    }
    read_buffer_.append(chunk, static_cast<size_t>(n));
  }
}

std::optional<Response> OracleClient::Call(const Request& request,
                                           std::string* error) {
  Request to_send = request;
  if (to_send.id == 0) to_send.id = next_id_++;
  if (to_send.method == Method::kQuery && to_send.trace_id == 0) {
    // Originate trace context here so a query's server-side spans and log
    // lines are correlatable with this call even when the caller passed no
    // id. 0 means "absent" on the wire, so roll until nonzero.
    do {
      to_send.trace_id = rng_.NextUint64();
    } while (to_send.trace_id == 0);
  }
  last_trace_id_ = to_send.trace_id;
  const std::string line = SerializeRequest(to_send);

  std::string last_error = "no attempts made";
  double backoff_ms = static_cast<double>(options_.backoff_initial_ms);
  for (int attempt = 0; attempt < std::max(1, options_.max_attempts);
       ++attempt) {
    if (attempt > 0) {
      ++retries_;
      // Jittered exponential backoff; an OVERLOADED hint can only stretch
      // the wait, never shrink it below the schedule.
      const double jitter =
          1.0 + options_.backoff_jitter * (2.0 * rng_.NextDouble() - 1.0);
      int64_t sleep_ms = static_cast<int64_t>(backoff_ms * jitter);
      sleep_ms = std::max<int64_t>(sleep_ms, retry_after_hint_);
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
      backoff_ms *= options_.backoff_multiplier;
    }
    retry_after_hint_ = 0;

    if (!EnsureConnected(&last_error)) continue;
    if (!SendLine(line)) {
      last_error = "send failed";
      Disconnect();
      continue;
    }
    // Responses on a connection carry no ordering guarantee (see
    // protocol.h): correlate by id, discarding any stray answer to an
    // earlier request on this connection.
    std::optional<Response> response;
    bool io_failed = false;
    for (;;) {
      std::string response_line;
      if (!ReadLine(&response_line)) {
        last_error = "read failed or timed out";
        io_failed = true;
        break;
      }
      response = ParseResponse(response_line);
      if (!response.has_value()) {
        last_error = "malformed response";
        io_failed = true;
        break;
      }
      if (response->id == to_send.id) break;
    }
    if (io_failed) {
      Disconnect();
      continue;
    }
    if (response->status == StatusCode::kOverloaded &&
        options_.retry_overloaded && attempt + 1 < options_.max_attempts) {
      last_error = "overloaded";
      retry_after_hint_ = response->retry_after_ms;
      continue;  // connection stays healthy; just back off and retry
    }
    return response;
  }
  if (error != nullptr) *error = last_error;
  return std::nullopt;
}

std::optional<Response> OracleClient::Query(const std::vector<NodeId>& seeds,
                                            QueryMode mode,
                                            int64_t deadline_ms,
                                            std::string* error) {
  Request request;
  request.method = Method::kQuery;
  request.seeds = seeds;
  request.mode = mode;
  request.deadline_ms = deadline_ms;
  return Call(request, error);
}

}  // namespace ipin::serve
