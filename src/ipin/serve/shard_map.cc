#include "ipin/serve/shard_map.h"

#include <sys/stat.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <unordered_set>
#include <utility>

#include "ipin/common/failpoint.h"
#include "ipin/common/hash.h"
#include "ipin/common/json.h"
#include "ipin/common/logging.h"
#include "ipin/common/string_util.h"
#include "ipin/obs/metrics.h"

namespace ipin::serve {
namespace {

constexpr char kSchemaV1[] = "ipin.shardmap.v1";
constexpr char kSchemaV2[] = "ipin.shardmap.v2";

// Writer side is hand-rolled like protocol.cc (common/json is a reader).
std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

bool Fail(std::string* error, std::string reason) {
  if (error != nullptr) *error = std::move(reason);
  return false;
}

std::optional<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return std::nullopt;
  return buffer.str();
}

// Reads one endpoint from a shard object; `prefix` is "" for the primary
// endpoint, "mirror_" for the hedging target. True when the fields are
// well-formed (including "entirely absent", which leaves *out invalid —
// the caller decides whether that is acceptable).
bool ParseEndpoint(const JsonValue& shard, const std::string& prefix,
                   ShardEndpoint* out, std::string* error) {
  *out = ShardEndpoint{};
  out->tcp_host.clear();
  out->unix_socket_path = shard.FindString(prefix + "unix_socket", "");
  const JsonValue* port = shard.Find(prefix + "tcp_port");
  if (port != nullptr) {
    if (!port->is_number() || port->number_value() < 0 ||
        port->number_value() > 65535 ||
        port->number_value() != static_cast<int>(port->number_value())) {
      return Fail(error, "bad " + prefix + "tcp_port");
    }
    out->tcp_port = static_cast<int>(port->number_value());
  }
  out->tcp_host = shard.FindString(prefix + "tcp_host", "127.0.0.1");
  if (!out->unix_socket_path.empty() && out->tcp_port >= 0) {
    return Fail(error,
                "shard endpoint must be unix_socket OR tcp_port, not both");
  }
  return true;
}

// Parses one epoch's {virtual_points, shards} pair out of `doc` into a
// ShardMap; shared between the top-level document and its transition block.
std::optional<ShardMap> ParseAssignment(const JsonValue& doc,
                                        std::string* error) {
  const double virtual_points = doc.FindNumber("virtual_points", 64.0);
  if (virtual_points < 1 || virtual_points > 4096 ||
      virtual_points != static_cast<int>(virtual_points)) {
    Fail(error, "bad virtual_points (want an integer in [1, 4096])");
    return std::nullopt;
  }
  const JsonValue* shards = doc.Find("shards");
  if (shards == nullptr || !shards->is_array() ||
      shards->array_items().empty()) {
    Fail(error, "shard map needs a non-empty shards array");
    return std::nullopt;
  }
  std::vector<ShardInfo> infos;
  std::unordered_set<std::string> names;
  infos.reserve(shards->array_items().size());
  for (const JsonValue& entry : shards->array_items()) {
    if (!entry.is_object()) {
      Fail(error, "shard entry is not an object");
      return std::nullopt;
    }
    ShardInfo info;
    info.name = entry.FindString("name", "");
    if (info.name.empty()) {
      Fail(error, "shard without a name");
      return std::nullopt;
    }
    if (!names.insert(info.name).second) {
      Fail(error, "duplicate shard name: " + info.name);
      return std::nullopt;
    }
    if (!ParseEndpoint(entry, "", &info.endpoint, error)) return std::nullopt;
    if (!info.endpoint.valid()) {
      Fail(error, "shard " + info.name + " has no endpoint");
      return std::nullopt;
    }
    if (!ParseEndpoint(entry, "mirror_", &info.mirror, error)) {
      return std::nullopt;
    }
    const JsonValue* replicas = entry.Find("replicas");
    if (replicas != nullptr) {
      if (!replicas->is_array() ||
          replicas->array_items().size() > kMaxReplicas) {
        Fail(error, "shard " + info.name + ": replicas must be an array of " +
                        "at most " + std::to_string(kMaxReplicas) +
                        " endpoints");
        return std::nullopt;
      }
      for (const JsonValue& replica : replicas->array_items()) {
        if (!replica.is_object()) {
          Fail(error, "shard " + info.name + ": replica is not an object");
          return std::nullopt;
        }
        ShardEndpoint ep;
        if (!ParseEndpoint(replica, "", &ep, error)) return std::nullopt;
        if (!ep.valid()) {
          Fail(error, "shard " + info.name + ": replica has no endpoint");
          return std::nullopt;
        }
        if (ep == info.endpoint) {
          Fail(error, "shard " + info.name +
                          ": replica duplicates the primary endpoint");
          return std::nullopt;
        }
        for (const ShardEndpoint& prior : info.replicas) {
          if (ep == prior) {
            Fail(error, "shard " + info.name + ": duplicate replica");
            return std::nullopt;
          }
        }
        info.replicas.push_back(std::move(ep));
      }
    }
    info.index_file = entry.FindString("index_file", "");
    info.fingerprint = entry.FindString("fingerprint", "");
    infos.push_back(std::move(info));
  }
  ShardMap map(std::move(infos), static_cast<int>(virtual_points));
  if (map.num_shards() == 0) {
    Fail(error, "invalid shard list");
    return std::nullopt;
  }
  return map;
}

void AppendShardJson(std::string* out, const ShardInfo& shard) {
  *out += "{\"name\": \"" + JsonEscape(shard.name) + "\"";
  const auto append_endpoint = [out](const std::string& prefix,
                                     const ShardEndpoint& ep) {
    if (!ep.unix_socket_path.empty()) {
      *out += ", \"" + prefix + "unix_socket\": \"" +
              JsonEscape(ep.unix_socket_path) + "\"";
    } else if (ep.tcp_port >= 0) {
      *out += ", \"" + prefix + "tcp_host\": \"" + JsonEscape(ep.tcp_host) +
              "\", \"" + prefix + "tcp_port\": " + std::to_string(ep.tcp_port);
    }
  };
  append_endpoint("", shard.endpoint);
  if (shard.mirror.valid()) append_endpoint("mirror_", shard.mirror);
  if (!shard.replicas.empty()) {
    *out += ", \"replicas\": [";
    for (size_t r = 0; r < shard.replicas.size(); ++r) {
      if (r > 0) *out += ", ";
      *out += "{";
      // append_endpoint writes a leading ", " — splice it out of the
      // object opener.
      std::string ep;
      const auto append_bare = [&ep](const std::string& prefix,
                                     const ShardEndpoint& e) {
        if (!e.unix_socket_path.empty()) {
          ep += "\"" + prefix + "unix_socket\": \"" +
                JsonEscape(e.unix_socket_path) + "\"";
        } else if (e.tcp_port >= 0) {
          ep += "\"" + prefix + "tcp_host\": \"" + JsonEscape(e.tcp_host) +
                "\", \"" + prefix + "tcp_port\": " +
                std::to_string(e.tcp_port);
        }
      };
      append_bare("", shard.replicas[r]);
      *out += ep + "}";
    }
    *out += "]";
  }
  if (!shard.index_file.empty()) {
    *out += ", \"index_file\": \"" + JsonEscape(shard.index_file) + "\"";
  }
  if (!shard.fingerprint.empty()) {
    *out += ", \"fingerprint\": \"" + JsonEscape(shard.fingerprint) + "\"";
  }
  *out += "}";
}

void AppendAssignmentJson(std::string* out, const ShardMap& map) {
  *out += "\"virtual_points\": " + std::to_string(map.virtual_points());
  *out += ", \"shards\": [";
  for (size_t i = 0; i < map.num_shards(); ++i) {
    if (i > 0) *out += ", ";
    AppendShardJson(out, map.shard(i));
  }
  *out += "]";
}

}  // namespace

ShardMap::ShardMap(std::vector<ShardInfo> shards, int virtual_points)
    : shards_(std::move(shards)),
      virtual_points_(std::max(1, virtual_points)) {
  std::unordered_set<std::string> names;
  for (const ShardInfo& shard : shards_) {
    if (shard.name.empty() || !shard.endpoint.valid() ||
        !names.insert(shard.name).second) {
      LogError("shard_map: invalid shard list (empty/duplicate name or "
               "missing endpoint)");
      shards_.clear();
      break;
    }
  }
  BuildRing();
}

void ShardMap::BuildRing() {
  ring_.clear();
  ring_.reserve(shards_.size() * static_cast<size_t>(virtual_points_));
  for (size_t s = 0; s < shards_.size(); ++s) {
    for (int v = 0; v < virtual_points_; ++v) {
      const std::string point_key = shards_[s].name + "#" + std::to_string(v);
      ring_.emplace_back(HashString(point_key), static_cast<uint32_t>(s));
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

size_t ShardMap::OwnerOf(NodeId node) const {
  // Single shard (or degenerate map): no ring walk needed.
  if (ring_.empty()) return 0;
  const uint64_t point = Hash64(node);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), point,
      [](const std::pair<uint64_t, uint32_t>& entry, uint64_t value) {
        return entry.first < value;
      });
  if (it == ring_.end()) it = ring_.begin();  // wrap around
  return it->second;
}

std::vector<std::vector<NodeId>> ShardMap::PartitionSeeds(
    std::span<const NodeId> seeds) const {
  std::vector<std::vector<NodeId>> parts(num_shards());
  for (const NodeId seed : seeds) parts[OwnerOf(seed)].push_back(seed);
  return parts;
}

void ShardMap::BeginTransition(std::shared_ptr<const ShardMap> previous) {
  if (previous != nullptr && previous->InTransition()) {
    // One hop only: a transition's previous epoch is always final. (The
    // rebalance tool never produces a nested block; defend anyway.)
    auto flattened = std::make_shared<ShardMap>(*previous);
    flattened->ClearTransition();
    previous_ = std::move(flattened);
    return;
  }
  previous_ = std::move(previous);
}

bool ShardMap::OwnerMoved(NodeId node) const {
  if (previous_ == nullptr) return false;
  return shards_[OwnerOf(node)].name !=
         previous_->shard(previous_->OwnerOf(node)).name;
}

std::optional<ShardMap> ShardMap::Parse(std::string_view json,
                                        std::string* error) {
  const auto doc = JsonValue::Parse(json);
  if (!doc.has_value() || !doc->is_object()) {
    Fail(error, "shard map is not a JSON object");
    return std::nullopt;
  }
  const std::string schema = doc->FindString("schema", "");
  if (schema != kSchemaV1 && schema != kSchemaV2) {
    Fail(error, std::string("shard map schema is neither ") + kSchemaV1 +
                    " nor " + kSchemaV2);
    return std::nullopt;
  }
  auto map = ParseAssignment(*doc, error);
  if (!map.has_value()) return std::nullopt;
  const JsonValue* transition = doc->Find("transition");
  if (transition != nullptr) {
    if (!transition->is_object()) {
      Fail(error, "transition is not an object");
      return std::nullopt;
    }
    if (transition->Find("transition") != nullptr) {
      Fail(error, "nested transition blocks are not allowed");
      return std::nullopt;
    }
    std::string prev_error;
    auto previous = ParseAssignment(*transition, &prev_error);
    if (!previous.has_value()) {
      Fail(error, "transition: " + prev_error);
      return std::nullopt;
    }
    map->BeginTransition(
        std::make_shared<const ShardMap>(std::move(*previous)));
  }
  return map;
}

std::optional<ShardMap> ShardMap::ParseFile(const std::string& path,
                                            std::string* error) {
  const auto doc = ReadFileToString(path);
  if (!doc.has_value()) {
    Fail(error, "cannot read " + path);
    return std::nullopt;
  }
  return Parse(*doc, error);
}

std::string ShardMap::ToJson() const {
  bool v2 = InTransition();
  for (const ShardInfo& shard : shards_) {
    if (!shard.replicas.empty() || !shard.index_file.empty() ||
        !shard.fingerprint.empty()) {
      v2 = true;
      break;
    }
  }
  std::string out = "{\"schema\": \"";
  out += v2 ? kSchemaV2 : kSchemaV1;
  out += "\", ";
  AppendAssignmentJson(&out, *this);
  if (InTransition()) {
    out += ", \"transition\": {";
    AppendAssignmentJson(&out, *previous_);
    out += "}";
  }
  out += "}";
  return out;
}

IrsApprox ExtractShardIndex(const IrsApprox& full, const ShardMap& map,
                            size_t shard) {
  std::vector<std::unique_ptr<VersionedHll>> sketches(full.num_nodes());
  for (NodeId u = 0; u < full.num_nodes(); ++u) {
    const SketchView sketch = full.Sketch(u);
    if (sketch && map.OwnerOf(u) == shard) {
      sketches[u] = sketch.Materialize();
    }
  }
  return IrsApprox(full.window(), full.options(), std::move(sketches));
}

ShardMapManager::ShardMapManager(std::string map_path)
    : map_path_(std::move(map_path)) {}

void ShardMapManager::Install(std::shared_ptr<const ShardMap> map) {
  std::lock_guard<std::mutex> lock(mu_);
  current_ = std::move(map);
  epoch_.fetch_add(1, std::memory_order_acq_rel);
}

std::shared_ptr<const ShardMap> ShardMapManager::Current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

ShardMapSnapshot ShardMapManager::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {current_, epoch_.load(std::memory_order_acquire)};
}

ShardMapManager::FileStamp ShardMapManager::StampOf(const std::string& path) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) return {};
  return {static_cast<int64_t>(st.st_mtim.tv_sec) * 1000000000 +
              st.st_mtim.tv_nsec,
          static_cast<int64_t>(st.st_size)};
}

ReloadStatus ShardMapManager::Reload(bool force) {
  std::lock_guard<std::mutex> reload_lock(reload_mu_);

  const FileStamp stamp = StampOf(map_path_);
  if (!force) {
    std::lock_guard<std::mutex> lock(mu_);
    if (stamp == last_stamp_ && current_ != nullptr) {
      return ReloadStatus::kNoChange;
    }
  }

  const auto rollback = [this](const std::string& reason) {
    IPIN_COUNTER_ADD("serve.shard.map.rollback", 1);
    LogError("serve: shard map reload rejected (" + reason +
             "); keeping epoch " + std::to_string(Epoch()));
    return ReloadStatus::kRolledBack;
  };

  if (IPIN_FAILPOINT("serve.shard.map").fail) {
    return rollback("injected serve.shard.map fault");
  }
  std::string error;
  auto map = ShardMap::ParseFile(map_path_, &error);
  if (!map.has_value()) return rollback(error);

  auto shared = std::make_shared<const ShardMap>(std::move(*map));
  {
    std::lock_guard<std::mutex> lock(mu_);
    current_ = std::move(shared);
    last_stamp_ = stamp;
    epoch_.fetch_add(1, std::memory_order_acq_rel);
  }
  IPIN_COUNTER_ADD("serve.shard.map.ok", 1);
  LogInfo(StrFormat("serve: shard map loaded from %s (%zu shards, epoch %llu%s)",
                    map_path_.c_str(), Current()->num_shards(),
                    static_cast<unsigned long long>(Epoch()),
                    Current()->InTransition() ? ", in transition" : ""));
  return ReloadStatus::kOk;
}

}  // namespace ipin::serve
