#include "ipin/serve/chaos.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>

#include "ipin/common/logging.h"
#include "ipin/common/random.h"
#include "ipin/common/string_util.h"
#include "ipin/serve/port_file.h"

namespace ipin::serve {
namespace {

int64_t SteadyNowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (const char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::optional<std::string> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Atomic overwrite (tmp + rename): a reloading router must never read a
/// half-written map.
bool WriteFileAtomic(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".chaos.tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out.flush()) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

/// Tally shared between the verifier thread and Run(); mutex-guarded (the
/// drill is measurement infrastructure, not a hot path).
struct VerifierTally {
  std::mutex mu;
  size_t total = 0;
  size_t ok = 0;
  size_t degraded = 0;
  size_t wrong = 0;
  size_t invariant_violations = 0;
  size_t failed = 0;
  std::vector<std::string> wrong_details;
};

bool SameTopk(const std::vector<std::pair<NodeId, double>>& a,
              const std::vector<std::pair<NodeId, double>>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].first != b[i].first || a[i].second != b[i].second) return false;
  }
  return true;
}

}  // namespace

const char* ChaosActionKindName(ChaosActionKind kind) {
  switch (kind) {
    case ChaosActionKind::kSpawnNewShards:
      return "spawn-new-shards";
    case ChaosActionKind::kInstallTransitionMap:
      return "install-transition-map";
    case ChaosActionKind::kKillPrimary:
      return "kill-primary";
    case ChaosActionKind::kCorruptMapReload:
      return "corrupt-map-reload";
    case ChaosActionKind::kRestartDaemon:
      return "restart-daemon";
    case ChaosActionKind::kFinalizeMap:
      return "finalize-map";
  }
  return "unknown";
}

std::string ChaosSchedule::ToJson() const {
  std::string out = "{\"schema\": \"ipin.chaos.v1\", \"scenario\": \"" +
                    JsonEscape(scenario) + "\", \"seed\": " +
                    std::to_string(seed) + ", \"actions\": [";
  for (size_t i = 0; i < actions.size(); ++i) {
    if (i > 0) out += ", ";
    out += StrFormat("{\"at_ms\": %lld, \"kind\": \"%s\"",
                     static_cast<long long>(actions[i].at_ms),
                     ChaosActionKindName(actions[i].kind));
    if (!actions[i].target.empty()) {
      out += ", \"target\": \"" + JsonEscape(actions[i].target) + "\"";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

std::optional<ChaosSchedule> ChaosSchedule::Generate(
    const std::string& scenario, uint64_t seed,
    const ChaosScheduleOptions& options) {
  ChaosSchedule schedule;
  schedule.scenario = scenario;
  schedule.seed = seed;
  Rng rng(seed);
  const int64_t spacing = std::max<int64_t>(1, options.spacing_ms);
  const int64_t jitter_ms = static_cast<int64_t>(
      std::llround(static_cast<double>(spacing) *
                   std::clamp(options.jitter, 0.0, 0.9)));
  size_t step = 0;
  const auto push = [&](ChaosActionKind kind, const std::string& target) {
    ChaosAction action;
    action.kind = kind;
    action.target = target;
    int64_t at = spacing * static_cast<int64_t>(step + 1);
    if (jitter_ms > 0) {
      at += static_cast<int64_t>(rng.NextBounded(
                static_cast<uint64_t>(2 * jitter_ms + 1))) -
            jitter_ms;
    }
    action.at_ms = std::max<int64_t>(1, at);
    ++step;
    schedule.actions.push_back(std::move(action));
  };
  // The victim draw comes FIRST so tooling can pre-provision its replica
  // before computing any offsets.
  const size_t victim =
      rng.NextBounded(std::max<size_t>(1, options.num_old_shards));
  const std::string victim_name = StrFormat("old%zu", victim);
  if (scenario == "kill-primary-mid-reshard") {
    push(ChaosActionKind::kSpawnNewShards, "");
    push(ChaosActionKind::kInstallTransitionMap, "");
    push(ChaosActionKind::kKillPrimary, victim_name);
    push(ChaosActionKind::kCorruptMapReload, "");
    push(ChaosActionKind::kRestartDaemon, victim_name);
    push(ChaosActionKind::kFinalizeMap, "");
  } else if (scenario == "replica-failover") {
    push(ChaosActionKind::kKillPrimary, victim_name);
    push(ChaosActionKind::kRestartDaemon, victim_name);
  } else {
    return std::nullopt;
  }
  return schedule;
}

ChaosDrill::ChaosDrill(ChaosDrillOptions options)
    : options_(std::move(options)) {}

ChaosDrill::~ChaosDrill() {
  // Last-resort reaper: Run()'s Teardown already SIGTERMed the fleet; a
  // drill destroyed mid-failure must still not leak daemons.
  for (auto& [name, daemon] : daemons_) {
    if (daemon.alive && daemon.pid > 0) {
      ::kill(static_cast<pid_t>(daemon.pid), SIGKILL);
      ::waitpid(static_cast<pid_t>(daemon.pid), nullptr, 0);
      daemon.alive = false;
    }
  }
  if (ledger_fd_ >= 0) ::close(ledger_fd_);
}

void ChaosDrill::LedgerLine(const std::string& json_object) {
  if (ledger_fd_ < 0) return;
  const std::string line = json_object + "\n";
  // One line per write; JSONL readers tolerate a torn tail.
  (void)!::write(ledger_fd_, line.data(), line.size());
}

bool ChaosDrill::SpawnDaemon(const ChaosDaemonSpec& spec,
                             std::string* error) {
  if (!spec.port_file.empty()) std::remove(spec.port_file.c_str());
  const int log_fd = ::open(spec.log_file.c_str(),
                            O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (log_fd < 0) {
    *error = "cannot open log file " + spec.log_file;
    return false;
  }
  std::vector<char*> argv;
  argv.reserve(spec.argv.size() + 1);
  for (const std::string& arg : spec.argv) {
    argv.push_back(const_cast<char*>(arg.c_str()));
  }
  argv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(log_fd);
    *error = "fork failed";
    return false;
  }
  if (pid == 0) {
    ::dup2(log_fd, STDOUT_FILENO);
    ::dup2(log_fd, STDERR_FILENO);
    ::close(log_fd);
    ::execv(argv[0], argv.data());
    _exit(127);
  }
  ::close(log_fd);
  Daemon& daemon = daemons_[spec.name];
  daemon.spec = spec;
  daemon.pid = pid;
  daemon.alive = true;
  LedgerLine(StrFormat(
      "{\"type\": \"spawn\", \"t_ms\": %lld, \"name\": \"%s\", \"pid\": "
      "%ld}",
      static_cast<long long>(SteadyNowMs() - start_ms_), spec.name.c_str(),
      static_cast<long>(pid)));
  return true;
}

bool ChaosDrill::WaitReady(const Daemon& daemon, int64_t deadline_ms,
                           std::string* error) {
  const int64_t give_up = SteadyNowMs() + deadline_ms;
  while (SteadyNowMs() < give_up) {
    const std::optional<PortFileInfo> info =
        ReadPortFile(daemon.spec.port_file);
    if (info.has_value() && info->pid == daemon.pid) return true;
    int status = 0;
    if (::waitpid(static_cast<pid_t>(daemon.pid), &status, WNOHANG) ==
        daemon.pid) {
      daemons_[daemon.spec.name].alive = false;
      *error = StrFormat("daemon %s (pid %ld) died before readiness",
                         daemon.spec.name.c_str(),
                         static_cast<long>(daemon.pid));
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  *error = "daemon " + daemon.spec.name + " not ready in time";
  return false;
}

bool ChaosDrill::InstallMap(const std::string& source_path,
                            bool expect_rollback, std::string* error) {
  const std::optional<std::string> bytes = ReadFileBytes(source_path);
  if (!bytes.has_value()) {
    *error = "cannot read map " + source_path;
    return false;
  }
  if (!WriteFileAtomic(options_.live_map_path, *bytes)) {
    *error = "cannot install map over " + options_.live_map_path;
    return false;
  }
  ClientOptions copts = options_.router;
  OracleClient client(copts);
  Request reload;
  reload.method = Method::kReload;
  std::string call_error;
  const std::optional<Response> response = client.Call(reload, &call_error);
  if (!response.has_value() || response->status != StatusCode::kOk) {
    *error = "map reload RPC failed: " + call_error;
    return false;
  }
  double rolled_back = 0.0;
  for (const auto& [key, value] : response->info) {
    if (key == "rolled_back") rolled_back = value;
  }
  if ((rolled_back != 0.0) != expect_rollback) {
    *error = StrFormat("reload rolled_back=%g, expected %d", rolled_back,
                       expect_rollback ? 1 : 0);
    return false;
  }
  return true;
}

bool ChaosDrill::ExecuteAction(const ChaosAction& action,
                               std::string* error) {
  switch (action.kind) {
    case ChaosActionKind::kSpawnNewShards: {
      for (const ChaosDaemonSpec& spec : options_.new_shards) {
        if (!SpawnDaemon(spec, error)) return false;
        if (!WaitReady(daemons_[spec.name], 15000, error)) return false;
      }
      return true;
    }
    case ChaosActionKind::kInstallTransitionMap:
      return InstallMap(options_.transition_map_path,
                        /*expect_rollback=*/false, error);
    case ChaosActionKind::kFinalizeMap:
      return InstallMap(options_.final_map_path, /*expect_rollback=*/false,
                        error);
    case ChaosActionKind::kCorruptMapReload: {
      const std::optional<std::string> good =
          ReadFileBytes(options_.live_map_path);
      if (!good.has_value()) {
        *error = "cannot read live map for corruption";
        return false;
      }
      if (!WriteFileAtomic(options_.live_map_path,
                           "{\"schema\": \"ipin.shardmap.v2\", "
                           "\"shards\": [")) {
        *error = "cannot corrupt live map";
        return false;
      }
      ClientOptions copts = options_.router;
      OracleClient client(copts);
      Request reload;
      reload.method = Method::kReload;
      std::string call_error;
      const std::optional<Response> response =
          client.Call(reload, &call_error);
      const bool rollback_seen =
          response.has_value() && response->status == StatusCode::kOk &&
          std::any_of(response->info.begin(), response->info.end(),
                      [](const std::pair<std::string, double>& kv) {
                        return kv.first == "rolled_back" && kv.second != 0.0;
                      });
      // Restore the good map regardless: a failed assertion must not leave
      // the fleet routing on a corrupt file for the rest of the drill.
      if (!WriteFileAtomic(options_.live_map_path, *good)) {
        *error = "cannot restore live map after corruption";
        return false;
      }
      if (!rollback_seen) {
        *error = "corrupt map reload did not roll back";
        return false;
      }
      return true;
    }
    case ChaosActionKind::kKillPrimary: {
      auto it = daemons_.find(action.target);
      if (it == daemons_.end() || !it->second.alive) {
        *error = "kill target " + action.target + " not running";
        return false;
      }
      ::kill(static_cast<pid_t>(it->second.pid), SIGKILL);
      ::waitpid(static_cast<pid_t>(it->second.pid), nullptr, 0);
      it->second.alive = false;
      return true;
    }
    case ChaosActionKind::kRestartDaemon: {
      auto it = daemons_.find(action.target);
      if (it == daemons_.end()) {
        *error = "restart target " + action.target + " unknown";
        return false;
      }
      if (it->second.alive) return true;  // nothing to do
      const ChaosDaemonSpec spec = it->second.spec;
      if (!SpawnDaemon(spec, error)) return false;
      return WaitReady(daemons_[spec.name], 15000, error);
    }
  }
  *error = "unknown action kind";
  return false;
}

void ChaosDrill::Teardown(ChaosDrillReport* report) {
  // SIGTERM everything, give the fleet one shared drain window, then
  // escalate. A daemon that ignores SIGTERM is a leak — the invariant the
  // smoke drills could only assert by hand.
  for (auto& [name, daemon] : daemons_) {
    if (daemon.alive) ::kill(static_cast<pid_t>(daemon.pid), SIGTERM);
  }
  const int64_t give_up = SteadyNowMs() + options_.drain_deadline_ms;
  for (auto& [name, daemon] : daemons_) {
    if (!daemon.alive) continue;
    bool reaped = false;
    while (SteadyNowMs() < give_up) {
      if (::waitpid(static_cast<pid_t>(daemon.pid), nullptr, WNOHANG) ==
          daemon.pid) {
        reaped = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    if (!reaped) {
      report->leaked_daemons.push_back(name);
      ::kill(static_cast<pid_t>(daemon.pid), SIGKILL);
      ::waitpid(static_cast<pid_t>(daemon.pid), nullptr, 0);
    }
    daemon.alive = false;
  }
}

ChaosDrillReport ChaosDrill::Run() {
  ChaosDrillReport report;
  start_ms_ = SteadyNowMs();
  ledger_fd_ = ::open(options_.ledger_path.c_str(),
                      O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (ledger_fd_ < 0) {
    report.failure = "cannot open ledger " + options_.ledger_path;
    return report;
  }
  LedgerLine("{\"type\": \"schedule\", \"schedule\": " +
             options_.schedule.ToJson() + "}");

  std::string error;
  for (const ChaosDaemonSpec& spec : options_.initial_daemons) {
    if (!SpawnDaemon(spec, &error) ||
        !WaitReady(daemons_[spec.name], 15000, &error)) {
      report.failure = error;
      Teardown(&report);
      return report;
    }
  }

  // Verifier thread: seeded query stream against the router, every answer
  // cross-checked with the reference single-index daemon. Estimates and
  // topk lists compare with EXACT equality — the tier's exactness claim is
  // bit-identity, not tolerance.
  VerifierTally tally;
  std::atomic<bool> stop{false};
  std::thread verifier([this, &tally, &stop] {
    Rng rng(options_.schedule.seed ^ 0xda7a5eedc0ffee42ULL);
    ClientOptions router_opts = options_.router;
    router_opts.max_attempts = 2;
    OracleClient router(router_opts);
    OracleClient reference(options_.reference);
    size_t n = 0;
    while (!stop.load(std::memory_order_acquire)) {
      ++n;
      Request request;
      request.deadline_ms = options_.query_deadline_ms;
      const bool topk = options_.verifier_topk_every > 0 &&
                        n % options_.verifier_topk_every == 0;
      if (topk) {
        request.method = Method::kTopk;
        request.k = 10;
      } else {
        request.method = Method::kQuery;
        request.mode = QueryMode::kSketch;
        const size_t num_seeds =
            1 + rng.NextBounded(std::max<size_t>(
                    1, options_.max_seeds_per_query));
        for (size_t i = 0; i < num_seeds; ++i) {
          request.seeds.push_back(static_cast<NodeId>(
              rng.NextBounded(std::max<size_t>(1, options_.num_nodes))));
        }
      }
      std::string call_error;
      const std::optional<Response> response =
          router.Call(request, &call_error);
      std::lock_guard<std::mutex> lock(tally.mu);
      ++tally.total;
      if (!response.has_value() ||
          response->status == StatusCode::kUnavailable ||
          response->status == StatusCode::kOverloaded ||
          response->status == StatusCode::kDeadlineExceeded ||
          response->status == StatusCode::kInternal) {
        ++tally.failed;
      } else if (response->status == StatusCode::kOk) {
        ++tally.ok;
        // Honest degradation: through the router (shards_total > 0) the
        // degraded bit must equal coverage < 1 exactly.
        if (response->shards_total > 0 &&
            response->degraded != (response->coverage < 1.0)) {
          ++tally.invariant_violations;
          tally.wrong_details.push_back(StrFormat(
              "degraded=%d but coverage=%.6f (query %zu)",
              response->degraded ? 1 : 0, response->coverage, n));
        }
        if (response->degraded) {
          ++tally.degraded;
        } else {
          // Full-coverage answers must be bit-identical to the reference.
          const std::optional<Response> truth =
              reference.Call(request, nullptr);
          if (truth.has_value() && truth->status == StatusCode::kOk) {
            const bool same =
                topk ? SameTopk(response->topk, truth->topk)
                     : response->estimate == truth->estimate;
            if (!same) {
              ++tally.wrong;
              tally.wrong_details.push_back(StrFormat(
                  "%s mismatch: router=%.17g reference=%.17g (query %zu)",
                  topk ? "topk" : "estimate",
                  topk ? 0.0 : response->estimate,
                  topk ? 0.0 : truth->estimate, n));
            }
          }
        }
      } else {
        // BAD_REQUEST on a well-formed drill query is a router bug.
        ++tally.invariant_violations;
        tally.wrong_details.push_back(
            StrFormat("unexpected status on query %zu", n));
      }
      if (options_.verifier_pause_ms > 0) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(options_.verifier_pause_ms));
      }
    }
  });

  // Replay the schedule at its offsets.
  bool schedule_ok = true;
  for (const ChaosAction& action : options_.schedule.actions) {
    const int64_t target = start_ms_ + action.at_ms;
    while (SteadyNowMs() < target) {
      std::this_thread::sleep_for(std::chrono::milliseconds(
          std::min<int64_t>(20, std::max<int64_t>(1,
                                                  target - SteadyNowMs()))));
    }
    const int64_t actual = SteadyNowMs() - start_ms_;
    std::string action_error;
    const bool ok = ExecuteAction(action, &action_error);
    LedgerLine(StrFormat(
        "{\"type\": \"action\", \"kind\": \"%s\", \"target\": \"%s\", "
        "\"planned_ms\": %lld, \"actual_ms\": %lld, \"ok\": %s%s}",
        ChaosActionKindName(action.kind), JsonEscape(action.target).c_str(),
        static_cast<long long>(action.at_ms),
        static_cast<long long>(actual), ok ? "true" : "false",
        ok ? ""
           : (", \"error\": \"" + JsonEscape(action_error) + "\"").c_str()));
    if (!ok) {
      report.failure = StrFormat("action %s failed: %s",
                                 ChaosActionKindName(action.kind),
                                 action_error.c_str());
      schedule_ok = false;
      break;
    }
  }

  // Recovery: after the last action the fleet must converge back to exact
  // undegraded answers within the deadline.
  if (schedule_ok) {
    const int64_t recovery_start = SteadyNowMs();
    const int64_t give_up = recovery_start + options_.recovery_deadline_ms;
    ClientOptions router_opts = options_.router;
    router_opts.max_attempts = 2;
    OracleClient router(router_opts);
    OracleClient reference(options_.reference);
    Request probe;
    probe.method = Method::kQuery;
    probe.mode = QueryMode::kSketch;
    for (NodeId u = 0; u < 8 && u < static_cast<NodeId>(options_.num_nodes);
         ++u) {
      probe.seeds.push_back(u);
    }
    probe.deadline_ms = options_.query_deadline_ms;
    while (SteadyNowMs() < give_up) {
      const std::optional<Response> got = router.Call(probe, nullptr);
      if (got.has_value() && got->status == StatusCode::kOk &&
          !got->degraded) {
        const std::optional<Response> truth =
            reference.Call(probe, nullptr);
        if (truth.has_value() && truth->status == StatusCode::kOk &&
            got->estimate == truth->estimate) {
          report.recovered = true;
          report.recovery_ms = SteadyNowMs() - recovery_start;
          break;
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }

  stop.store(true, std::memory_order_release);
  verifier.join();

  {
    std::lock_guard<std::mutex> lock(tally.mu);
    report.queries_total = tally.total;
    report.queries_ok = tally.ok;
    report.queries_degraded = tally.degraded;
    report.wrong_answers = tally.wrong;
    report.invariant_violations = tally.invariant_violations;
    report.queries_failed = tally.failed;
    report.availability =
        tally.total == 0 ? 0.0
                         : static_cast<double>(tally.ok) /
                               static_cast<double>(tally.total);
    for (const std::string& detail : tally.wrong_details) {
      LedgerLine("{\"type\": \"wrong\", \"detail\": \"" +
                 JsonEscape(detail) + "\"}");
    }
  }

  Teardown(&report);

  if (report.failure.empty()) {
    if (report.wrong_answers > 0) {
      report.failure = "wrong answers observed";
    } else if (report.invariant_violations > 0) {
      report.failure = "degradation/coverage invariant violated";
    } else if (report.availability < options_.min_availability) {
      report.failure = StrFormat("availability %.4f below %.4f",
                                 report.availability,
                                 options_.min_availability);
    } else if (!report.recovered) {
      report.failure = "no exact answer within the recovery deadline";
    } else if (!report.leaked_daemons.empty()) {
      report.failure = "daemons leaked past SIGTERM teardown";
    }
  }
  report.passed = report.failure.empty();

  std::string leaked = "[";
  for (size_t i = 0; i < report.leaked_daemons.size(); ++i) {
    if (i > 0) leaked += ", ";
    leaked += "\"" + JsonEscape(report.leaked_daemons[i]) + "\"";
  }
  leaked += "]";
  LedgerLine(StrFormat(
      "{\"type\": \"report\", \"queries_total\": %zu, \"queries_ok\": %zu, "
      "\"queries_degraded\": %zu, \"wrong_answers\": %zu, "
      "\"invariant_violations\": %zu, \"queries_failed\": %zu, "
      "\"availability\": %.6f, \"recovered\": %s, \"recovery_ms\": %lld, "
      "\"leaked\": %s, \"passed\": %s, \"failure\": \"%s\"}",
      report.queries_total, report.queries_ok, report.queries_degraded,
      report.wrong_answers, report.invariant_violations,
      report.queries_failed, report.availability,
      report.recovered ? "true" : "false",
      static_cast<long long>(report.recovery_ms), leaked.c_str(),
      report.passed ? "true" : "false",
      JsonEscape(report.failure).c_str()));
  return report;
}

}  // namespace ipin::serve
