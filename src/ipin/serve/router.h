#ifndef IPIN_SERVE_ROUTER_H_
#define IPIN_SERVE_ROUTER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "ipin/common/thread_pool.h"
#include "ipin/obs/window.h"
#include "ipin/serve/client.h"
#include "ipin/serve/flight_recorder.h"
#include "ipin/serve/health.h"
#include "ipin/serve/protocol.h"
#include "ipin/serve/queue.h"
#include "ipin/serve/shard_map.h"

// The scatter-gather router of the sharded serving tier (DESIGN.md §11): a
// daemon core speaking the same newline-JSON protocol as OracleServer, but
// answering each query by fanning it out to per-shard ipin_oracled backends
// and merging their partials.
//
//   * Exact merge. Shard legs are sent with want_ranks=true; each backend
//     returns the per-cell max-rank vector of its seed subset. Seeds
//     partition disjointly by shard-map ownership and cellwise max is
//     associative/commutative, so folding the shard vectors cellwise and
//     estimating once reproduces the single-process answer bit for bit (the
//     argument lives in shard_map.h). topk merges per-shard top-k lists the
//     same way: ownership is disjoint, so the global top-k is a subset of
//     the union of local top-k lists.
//   * Shard health. A per-shard circuit breaker (health.h) turns
//     consecutive leg failures into suspect then down; down shards are
//     skipped outright (their seeds are reported missing immediately
//     instead of burning the deadline) and recovered by a background prober
//     sending cheap health RPCs.
//   * Deadlines and hedging. Each leg gets the request's remaining budget
//     minus shard_deadline_margin_ms (so the router always has time left to
//     merge and answer). With hedge_after_ms > 0 a leg's first attempt is
//     capped at that much; a straggler or failure is then retried once on
//     the shard's mirror endpoint (or the primary again) with the remaining
//     budget — one slow replica no longer sets the request's latency.
//   * Partial results. If at least one owning shard answers, the router
//     answers OK with degraded=true when any shard is missing, plus
//     shards_total / shards_answered and a conservative coverage bound
//     (fraction of requested seeds whose owner answered). Only when NO
//     shard answers does the client see UNAVAILABLE (with retry_after_ms).
//     BAD_REQUEST from a shard (seed out of range — deterministic, since
//     every shard keeps the full node space) is propagated as BAD_REQUEST.
//   * Resharding. The shard map hot-reloads through ShardMapManager ("reload"
//     verb or SIGHUP in ipin_routerd): epoch-swapped pickup, rollback on a
//     corrupt map. In-flight requests finish their fan-out on the map (and
//     client fleet) they started with. Router responses report the
//     shard-map epoch. While the map carries a transition block (a live
//     reshard, see shard_map.h), the router DOUBLE-DISPATCHES every seed
//     whose owner differs between the epochs: the seed rides its new
//     owner's leg AND a fallback leg to its old owner, concurrently. The
//     merge is cellwise max — idempotent — so the overlap cannot double-
//     count, and the answer stays bit-identical to the single-index answer
//     as long as either owner is up. A seed counts as covered when ANY leg
//     carrying it answers; coverage/degraded are computed per seed, so a
//     SIGKILLed new owner mid-migration costs nothing while the old owner
//     still answers. topk fans out to both epochs' fleets and dedupes
//     candidates by node id (estimates agree — same sketches).
//   * Replica failover. Each shard may list R replicas in the map (v2),
//     each serving the same shard file. The health tracker runs its state
//     machine per endpoint and keeps an active endpoint per shard: when the
//     active endpoint's circuit opens a replica is PROMOTED (all subsequent
//     legs dial it, not just hedged retries), and a probe healing the
//     primary demotes the replica. The shard only reports down when every
//     endpoint is down. The "reshard_status" admin verb reports transition
//     state and per-epoch down counts.
//
// Failpoint sites: serve.shard.connect (leg fails before dialing),
// serve.shard.rpc (each RPC attempt fails — error_prob(p) gives seeded
// random shard faults), serve.shard.merge (the merge step fails →
// INTERNAL), serve.shard.map (reload rollback, see shard_map.h).
//
// Observability (on top of the serve.* request metrics, which the router
// shares so ipin_top works unchanged): serve.shard.legs{,.ok,.failed,
// .skipped}, serve.shard.hedged, serve.shard.leg_us, serve.shard.probe{,.ok},
// serve.shard.health.* and serve.shard.down_count (health.h),
// serve.shard.map.{ok,rollback}, serve.requests.partial,
// serve.latency.route_us. The client's trace_id rides every shard leg
// (parent_span = trace_id), so one id spans the router lane and each
// backend's lanes; the flight recorder keeps one record per leg (with its
// shard number) plus one per request.

namespace ipin::serve {

struct RouterOptions {
  /// Exactly one of the two endpoints, as in ServerOptions.
  std::string unix_socket_path;
  int tcp_port = -1;

  int num_workers = 4;
  size_t queue_capacity = 64;
  size_t max_connections = 64;

  int64_t default_deadline_ms = 1000;
  int64_t retry_after_ms = 50;
  int64_t drain_deadline_ms = 2000;
  int64_t write_timeout_ms = 2000;

  /// Per-leg connect budget to a shard backend.
  int64_t connect_timeout_ms = 250;
  /// Carved off the request's remaining budget to form each leg's deadline,
  /// reserving time for the merge + response write.
  int64_t shard_deadline_margin_ms = 20;
  /// > 0: cap a leg's first attempt here and retry a straggler once on the
  /// mirror (or primary) with the remaining budget. 0 disables hedging.
  int64_t hedge_after_ms = 0;

  ShardHealthOptions health;

  size_t flight_recorder_size = 256;
  size_t flight_slow_size = 64;
  int64_t slow_query_us = 100000;
  int64_t stats_window_s = 10;
};

class RouterServer {
 public:
  /// `map` must outlive the server (and should usually have a map installed
  /// before Start, though the router answers UNAVAILABLE until one is).
  RouterServer(ShardMapManager* map, RouterOptions options);
  ~RouterServer();

  RouterServer(const RouterServer&) = delete;
  RouterServer& operator=(const RouterServer&) = delete;

  /// Binds, listens, and spawns acceptor + workers + the shard prober.
  bool Start();

  /// Graceful drain, mirroring OracleServer::Shutdown. Idempotent.
  void Shutdown();

  bool running() const { return running_.load(std::memory_order_acquire); }
  int bound_port() const { return bound_port_; }
  size_t queue_depth() const { return queue_.Depth(); }

  std::string DebugDump() const { return flight_->DumpJson(); }
  const FlightRecorder& flight_recorder() const { return *flight_; }

  /// Health states of the current fleet's shards (empty before the first
  /// query/probe touched a fleet). Test/introspection hook.
  std::vector<ShardState> ShardHealth() const;

  const RouterOptions& options() const { return options_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Connection;

  struct Task {
    Request request;
    Clock::time_point deadline;
    Clock::time_point enqueued;
    int64_t admission_us = 0;
    std::shared_ptr<Connection> conn;
  };

  // One shard-map epoch's worth of backends: the map, its health tracker,
  // and a pool of reusable clients per shard endpoint. Legs hold the fleet
  // via shared_ptr, so a reshard builds a fresh fleet while in-flight
  // requests finish on the old one (health state starts clean after a
  // reshard — the prober re-discovers a down backend within one failure
  // round). When the map is in transition the fleet also carries the
  // PREVIOUS epoch's pools and health tracker (`prev` = true selects them)
  // so double-dispatch fallback legs can dial the old owners.
  struct ShardFleet {
    ShardFleet(std::shared_ptr<const ShardMap> map, uint64_t epoch,
               const RouterOptions& options);

    const ShardMap& SideMap(bool prev) const {
      return prev ? *map->previous() : *map;
    }
    ShardHealthTracker& SideHealth(bool prev) {
      return prev ? *prev_health : health;
    }

    std::unique_ptr<OracleClient> Borrow(bool prev, size_t shard,
                                         size_t endpoint);
    void Return(bool prev, size_t shard, size_t endpoint,
                std::unique_ptr<OracleClient> client);
    /// A fresh, unpooled client for the given endpoint index (0 = primary,
    /// i = replicas[i-1]); prefer_mirror picks the mirror endpoint when the
    /// shard has one (hedged retries only — mirrors are not replicas).
    std::unique_ptr<OracleClient> NewClient(bool prev, size_t shard,
                                            size_t endpoint,
                                            bool prefer_mirror) const;

    const std::shared_ptr<const ShardMap> map;
    const uint64_t epoch;
    // By value: legs hold the fleet past a server shutdown, so the fleet
    // must not reference RouterServer members.
    const RouterOptions options;
    ShardHealthTracker health;
    /// Previous-epoch health; non-null iff map->InTransition().
    std::unique_ptr<ShardHealthTracker> prev_health;

    struct Pool {
      std::mutex mu;
      std::vector<std::unique_ptr<OracleClient>> idle;
    };
    /// pools[shard][endpoint]; prev_pools mirrors the previous map's shards.
    std::vector<std::vector<std::unique_ptr<Pool>>> pools;
    std::vector<std::vector<std::unique_ptr<Pool>>> prev_pools;
  };

  // Scatter-gather rendezvous: one slot per leg, workers wait on the cv
  // until every leg delivered or the deadline passed. Refcounted so a
  // straggler leg completing after the wait timed out writes into a live
  // object (its result is simply ignored).
  struct Gather {
    std::mutex mu;
    std::condition_variable cv;
    size_t pending = 0;
    std::vector<std::optional<Response>> results;  // one per leg
  };

  void AcceptLoop();
  void ReadLoop(std::shared_ptr<Connection> conn);
  void WorkerLoop();
  void ProbeLoop();
  void ReapFinishedReaders();

  void HandleRequest(const std::shared_ptr<Connection>& conn,
                     Request&& request);
  /// The scatter-gather evaluation of one query/topk request.
  Response EvaluateScatter(const Request& request, Clock::time_point deadline);
  Response StatsResponse(const Request& request);
  void RecordRejected(uint64_t trace_id, int64_t id, QueryMode mode,
                      size_t num_seeds, StatusCode status,
                      Clock::time_point received);

  /// The fleet for the current shard-map epoch, building one on first use
  /// or after a reshard. nullptr while no map is installed.
  std::shared_ptr<ShardFleet> Fleet();

  /// One shard RPC with health bookkeeping, replica failover, hedging,
  /// failpoints, and a leg flight record; returns the shard response or
  /// nullopt. `prev` targets the previous-epoch fleet (double-dispatch
  /// fallback legs during a transition). Static and fed only refcounted
  /// state: a leg stuck in a socket timeout may outlive the scatter wait
  /// (and even server shutdown) without dangling.
  static std::optional<Response> RunShardLeg(
      const std::shared_ptr<ShardFleet>& fleet, bool prev, size_t shard,
      const Request& leg, Clock::time_point leg_deadline,
      FlightRecorder* flight);

  static void WriteResponse(const std::shared_ptr<Connection>& conn,
                            const Response& response,
                            int64_t write_timeout_ms);

  ShardMapManager* const map_;
  const RouterOptions options_;

  int listen_fd_ = -1;
  int bound_port_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  Clock::time_point drain_deadline_{};

  BoundedQueue<Task> queue_;
  std::thread acceptor_;
  std::unique_ptr<ThreadPool> worker_pool_;

  std::mutex conns_mu_;
  struct ReaderSlot {
    std::thread thread;
    std::shared_ptr<Connection> conn;
  };
  std::vector<ReaderSlot> readers_;
  size_t active_connections_ = 0;

  mutable std::mutex fleet_mu_;
  std::shared_ptr<ShardFleet> fleet_;

  std::mutex probe_mu_;
  std::condition_variable probe_cv_;
  std::thread prober_;
  bool probe_stop_ = false;

  // shared_ptr: leg closures carry it past the scatter wait (see
  // RunShardLeg).
  std::shared_ptr<FlightRecorder> flight_;
  obs::WindowedAggregator window_;
  std::atomic<uint64_t> next_trace_id_{1};
};

}  // namespace ipin::serve

#endif  // IPIN_SERVE_ROUTER_H_
