#include "ipin/serve/index_manager.h"

#include <sys/stat.h>

#include <chrono>
#include <utility>

#include "ipin/common/failpoint.h"
#include "ipin/common/logging.h"
#include "ipin/common/string_util.h"
#include "ipin/core/oracle_io.h"
#include "ipin/obs/metrics.h"
#include "ipin/obs/trace_events.h"

namespace ipin::serve {

IndexManager::IndexManager(std::string index_path)
    : index_path_(std::move(index_path)) {}

IndexManager::~IndexManager() { StopWatcher(); }

void IndexManager::Install(std::shared_ptr<const IrsApprox> index) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    current_ = std::move(index);
    epoch_.fetch_add(1, std::memory_order_acq_rel);
  }
  IPIN_GAUGE_SET("serve.index.epoch", Epoch());
}

void IndexManager::SetExact(std::shared_ptr<const IrsExact> exact) {
  std::lock_guard<std::mutex> lock(mu_);
  exact_ = std::move(exact);
}

std::shared_ptr<const IrsApprox> IndexManager::Current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

std::shared_ptr<const IrsExact> IndexManager::Exact() const {
  std::lock_guard<std::mutex> lock(mu_);
  return exact_;
}

IndexSnapshot IndexManager::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return IndexSnapshot{current_, exact_,
                       epoch_.load(std::memory_order_relaxed)};
}

IndexManager::FileStamp IndexManager::StampOf(const std::string& path) {
  struct ::stat st{};
  if (::stat(path.c_str(), &st) != 0) return FileStamp{};
  return FileStamp{
      .mtime_ns = static_cast<int64_t>(st.st_mtim.tv_sec) * 1'000'000'000 +
                  st.st_mtim.tv_nsec,
      .size = static_cast<int64_t>(st.st_size),
  };
}

ReloadStatus IndexManager::Reload(bool force) {
  std::lock_guard<std::mutex> reload_lock(reload_mu_);
  if (index_path_.empty()) return ReloadStatus::kNoChange;

  const FileStamp stamp = StampOf(index_path_);
  if (!force) {
    std::lock_guard<std::mutex> lock(mu_);
    if (stamp == last_stamp_) return ReloadStatus::kNoChange;
  }

  // The failpoint sits before the load: delay mode holds the reload open
  // (queries must keep flowing from the old epoch meanwhile), error mode
  // simulates an unreadable/corrupt file without touching the disk.
  const bool injected_failure = IPIN_FAILPOINT("serve.reload").fail;
  IndexLoadResult result;
  if (!injected_failure) result = LoadInfluenceIndexDetailed(index_path_);

  // A reload only ever replaces a good index with a fully verified one:
  // degraded loads (dropped sections) are fine for a cold start from a
  // damaged disk (the CLI path), but a hot swap must not lose sketches the
  // serving index still has.
  const bool acceptable =
      !injected_failure && result.status == IndexLoadStatus::kOk;
  if (!acceptable) {
    IPIN_COUNTER_ADD("serve.reload.rollback", 1);
    LogError(StrFormat(
        "serve: reload of '%s' rejected (%s); keeping epoch %llu",
        index_path_.c_str(),
        injected_failure ? "injected failure"
        : result.status == IndexLoadStatus::kDegraded
            ? "degraded: corrupt sections"
        : result.status == IndexLoadStatus::kMissing ? "missing/unreadable"
        : result.status == IndexLoadStatus::kTruncated ? "truncated"
                                                       : "corrupt",
        static_cast<unsigned long long>(Epoch())));
    std::lock_guard<std::mutex> lock(mu_);
    last_stamp_ = stamp;  // don't retry the same bad file every poll
    return ReloadStatus::kRolledBack;
  }

  auto fresh = std::make_shared<const IrsApprox>(std::move(*result.index));
  {
    std::lock_guard<std::mutex> lock(mu_);
    current_ = std::move(fresh);
    last_stamp_ = stamp;
    epoch_.fetch_add(1, std::memory_order_acq_rel);
  }
  IPIN_COUNTER_ADD("serve.reload.ok", 1);
  IPIN_GAUGE_SET("serve.index.epoch", Epoch());
  // Marks the epoch flip in the Chrome trace, so request lanes before and
  // after the swap can be told apart.
  IPIN_TRACE_INSTANT("serve.index.reload");
  LogInfo(StrFormat("serve: reloaded '%s' -> epoch %llu", index_path_.c_str(),
                    static_cast<unsigned long long>(Epoch())));
  return ReloadStatus::kOk;
}

void IndexManager::StartWatcher(int64_t check_interval_ms) {
  StopWatcher();
  {
    std::lock_guard<std::mutex> lock(watcher_mu_);
    watcher_stop_ = false;
  }
  {
    // Seed the stamp so the watcher only reacts to future changes.
    std::lock_guard<std::mutex> lock(mu_);
    last_stamp_ = StampOf(index_path_);
  }
  watcher_ = std::thread([this, check_interval_ms] {
    std::unique_lock<std::mutex> lock(watcher_mu_);
    while (!watcher_stop_) {
      watcher_cv_.wait_for(lock,
                           std::chrono::milliseconds(check_interval_ms),
                           [this] { return watcher_stop_; });
      if (watcher_stop_) break;
      lock.unlock();
      (void)Reload(/*force=*/false);
      lock.lock();
    }
  });
}

void IndexManager::StopWatcher() {
  {
    std::lock_guard<std::mutex> lock(watcher_mu_);
    watcher_stop_ = true;
  }
  watcher_cv_.notify_all();
  if (watcher_.joinable()) watcher_.join();
}

}  // namespace ipin::serve
