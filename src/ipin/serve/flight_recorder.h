#ifndef IPIN_SERVE_FLIGHT_RECORDER_H_
#define IPIN_SERVE_FLIGHT_RECORDER_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "ipin/serve/protocol.h"

// Slow-query flight recorder: a bounded in-memory ring of the last N
// completed requests plus every request that exceeded the slow-query
// threshold, each with per-stage wall-clock timings. The recorder answers
// the question "what did the slowest recent requests actually spend their
// time on" without logs, sampling profilers, or a restart: the "debug"
// protocol verb (and SIGUSR1 in ipin_oracled) dumps it as JSON.
//
// The recorder is deliberately cheap on the hot path — one mutex-guarded
// struct copy per completed request — and stays compiled in even under
// -DIPIN_OBS_DISABLED: the protocol's "debug" verb must answer with the
// same document shape in every build.
//
// Dump schema ("ipin.debug.v1"):
//
//   {"schema": "ipin.debug.v1",
//    "slow_threshold_us": 100000,
//    "recorded": 1234,            // requests seen since start
//    "slow_recorded": 7,          // of which exceeded the threshold
//    "recent": [ <record>, ... ], // oldest -> newest, bounded ring
//    "slow":   [ <record>, ... ]} // oldest -> newest, bounded ring
//
//   <record> = {"shard": 1,            // router shard legs only
//               "trace_id": "00c0ffee0badf00d", "id": 7,
//               "mode": "auto", "status": "OK", "degraded": false,
//               "seeds": 3, "epoch": 2, "age_us": 52341,
//               "admission_us": 12, "queue_us": 480, "eval_us": 1790,
//               "write_us": 55, "total_us": 2337}
//
// age_us is the time between the request's completion and the dump, so a
// reader can line records up against log timestamps.

namespace ipin::serve {

/// One completed request, as the flight recorder saw it.
struct RequestRecord {
  uint64_t trace_id = 0;
  int64_t id = 0;
  QueryMode mode = QueryMode::kAuto;
  StatusCode status = StatusCode::kOk;
  bool degraded = false;
  size_t num_seeds = 0;
  uint64_t epoch = 0;
  /// Router only: the shard a leg record went to (-1 = not a shard leg;
  /// such records omit "shard" from the dump). The router records one leg
  /// record per shard RPC plus one overall record per request, all under
  /// the request's trace_id, so a dump shows which leg made a request slow.
  int shard = -1;
  /// Per-stage timings. admission covers parse + admission decision,
  /// queue the bounded-queue wait, eval the oracle evaluation, write the
  /// response serialization + socket write. total is end-to-end and can
  /// exceed the sum (scheduling gaps between stages).
  int64_t admission_us = 0;
  int64_t queue_us = 0;
  int64_t eval_us = 0;
  int64_t write_us = 0;
  int64_t total_us = 0;
  /// When the request completed (set by Record()).
  std::chrono::steady_clock::time_point completed{};
};

class FlightRecorder {
 public:
  /// Keeps the last `recent_capacity` requests and, separately, the last
  /// `slow_capacity` requests whose total_us exceeded `slow_threshold_us`.
  FlightRecorder(size_t recent_capacity, size_t slow_capacity,
                 int64_t slow_threshold_us);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Records one completed request (stamps record.completed itself).
  void Record(RequestRecord record);

  /// Renders the "ipin.debug.v1" document described above.
  std::string DumpJson() const;

  /// Snapshots for tests, oldest -> newest.
  std::vector<RequestRecord> RecentSnapshot() const;
  std::vector<RequestRecord> SlowSnapshot() const;

  /// Requests seen / requests over the threshold since construction.
  uint64_t recorded() const;
  uint64_t slow_recorded() const;

  int64_t slow_threshold_us() const { return slow_threshold_us_; }

 private:
  // Fixed-capacity ring: write cursor wraps once size reaches capacity.
  struct Ring {
    explicit Ring(size_t capacity) : capacity(capacity) {}
    void Push(const RequestRecord& record);
    std::vector<RequestRecord> OldestFirst() const;
    const size_t capacity;
    std::vector<RequestRecord> slots;
    size_t next = 0;  // absolute count of pushes
  };

  const int64_t slow_threshold_us_;
  mutable std::mutex mu_;
  Ring recent_;
  Ring slow_;
  uint64_t recorded_ = 0;
  uint64_t slow_recorded_ = 0;
};

}  // namespace ipin::serve

#endif  // IPIN_SERVE_FLIGHT_RECORDER_H_
