#include "ipin/serve/port_file.h"

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "ipin/common/string_util.h"

namespace ipin::serve {

bool WritePortFile(const std::string& path, const std::string& program,
                   int port, const std::string& socket) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    out << StrFormat("pid=%ld program=%s port=%d socket=%s",
                     static_cast<long>(::getpid()), program.c_str(), port,
                     socket.c_str())
        << '\n';
    if (!out.flush()) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

std::optional<PortFileInfo> ReadPortFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::string line;
  if (!std::getline(in, line)) return std::nullopt;
  PortFileInfo info;
  bool have_pid = false;
  std::istringstream fields(line);
  std::string field;
  while (fields >> field) {
    const size_t eq = field.find('=');
    if (eq == std::string::npos) return std::nullopt;
    const std::string key = field.substr(0, eq);
    const std::string value = field.substr(eq + 1);
    if (key == "pid") {
      info.pid = std::strtol(value.c_str(), nullptr, 10);
      have_pid = true;
    } else if (key == "port") {
      info.port = static_cast<int>(std::strtol(value.c_str(), nullptr, 10));
    } else if (key == "socket") {
      info.socket = value;
    } else if (key == "program") {
      info.program = value;
    }
  }
  if (!have_pid || (info.port < 0 && info.socket.empty())) {
    return std::nullopt;
  }
  return info;
}

}  // namespace ipin::serve
