#ifndef IPIN_SERVE_HEALTH_H_
#define IPIN_SERVE_HEALTH_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

// Per-shard health state machine of the scatter-gather router — the circuit
// breaker that keeps a dead or dying shard from burning every request's
// deadline budget (DESIGN.md §11):
//
//           consecutive failures >= suspect_after
//   HEALTHY ------------------------------------> SUSPECT
//           consecutive failures >= down_after
//   SUSPECT ------------------------------------> DOWN
//   any     --- one success ---------------------> HEALTHY
//
//   * HEALTHY / SUSPECT: requests flow. SUSPECT is the early-warning band —
//     the shard is failing but the circuit is still closed, so a transient
//     blip (one dropped connection) never costs availability.
//   * DOWN: the circuit is open. AllowRequest() refuses, so queries skip
//     the shard immediately (a partial answer now beats a full answer
//     after a guaranteed timeout) and the shard gets no recovery-fighting
//     load. Recovery is probe-based: the router's prober sends a cheap
//     health RPC every probe_interval_ms (ProbeDue() rate-limits it) and
//     one success closes the circuit.
//
// Replica failover (shard maps may list R failover endpoints per shard):
// the state machine above runs PER ENDPOINT — endpoint 0 is the primary,
// 1..R the replicas — and each shard carries an `active` endpoint index
// that all regular legs dial:
//
//   * Promotion. When the active endpoint's circuit opens, the tracker
//     advances `active` to the next endpoint that is not down (wrapping).
//     All subsequent legs go to the promoted replica — unlike hedging,
//     which only re-sends a straggling leg to the mirror once.
//   * Demotion. When a probe recovers the PRIMARY (endpoint 0) while a
//     replica is active, `active` returns to the primary. A replica
//     recovering while another endpoint serves does not steal traffic.
//   * The shard's circuit is open (AllowRequest false) only while EVERY
//     endpoint is down.
//
// Counters: serve.shard.health.{suspect,down,recovered} count per-endpoint
// transitions, serve.shard.health.{promoted,demoted} count active-endpoint
// switches; the serve.shard.down_count gauge tracks how many shards have
// ALL endpoints down. All methods are thread-safe (one mutex; transitions
// are rare and the per-leg check is two loads).

namespace ipin::serve {

enum class ShardState { kHealthy, kSuspect, kDown };

/// "healthy", "suspect", "down" (for logs and stats).
const char* ShardStateName(ShardState state);

struct ShardHealthOptions {
  /// Consecutive failures that turn a healthy shard suspect.
  int suspect_after = 1;
  /// Consecutive failures that open the circuit (must be >= suspect_after).
  int down_after = 3;
  /// Minimum spacing between recovery probes to a down endpoint.
  int64_t probe_interval_ms = 200;
};

class ShardHealthTracker {
 public:
  /// One endpoint (the primary) per shard.
  explicit ShardHealthTracker(size_t num_shards,
                              ShardHealthOptions options = {});
  /// endpoints_per_shard[s] = 1 + number of replicas of shard s (clamped to
  /// >= 1). Endpoint 0 is the primary and starts active.
  ShardHealthTracker(const std::vector<size_t>& endpoints_per_shard,
                     ShardHealthOptions options);

  ShardHealthTracker(const ShardHealthTracker&) = delete;
  ShardHealthTracker& operator=(const ShardHealthTracker&) = delete;

  /// May a regular (non-probe) request go to `shard`? False exactly when
  /// every endpoint's circuit is open.
  bool AllowRequest(size_t shard) const;

  /// The endpoint index regular legs should dial (0 = primary).
  size_t ActiveEndpoint(size_t shard) const;
  size_t NumEndpoints(size_t shard) const;

  /// Is a recovery probe due for `shard`? True only when some endpoint is
  /// down, at most once per endpoint per probe_interval_ms (the call claims
  /// the slot and stores the endpoint to probe in *endpoint when non-null;
  /// the primary is probed first so demotion happens as soon as it heals).
  bool ProbeDue(size_t shard) { return ProbeDueEndpoint(shard, nullptr); }
  bool ProbeDueEndpoint(size_t shard, size_t* endpoint);

  /// Outcome of a request or probe leg against `shard`'s ACTIVE endpoint.
  void OnSuccess(size_t shard);
  void OnFailure(size_t shard);
  /// Outcome addressed to a specific endpoint (probes, replica legs).
  void OnEndpointSuccess(size_t shard, size_t endpoint);
  void OnEndpointFailure(size_t shard, size_t endpoint);

  /// State of the active endpoint — the shard's effective state.
  ShardState state(size_t shard) const;
  ShardState endpoint_state(size_t shard, size_t endpoint) const;
  int consecutive_failures(size_t shard) const;
  std::vector<ShardState> Snapshot() const;
  /// Shards whose every endpoint is down.
  size_t DownCount() const;

  size_t num_shards() const { return shards_.size(); }
  const ShardHealthOptions& options() const { return options_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Endpoint {
    ShardState state = ShardState::kHealthy;
    int consecutive_failures = 0;
    Clock::time_point next_probe{};
  };
  struct Shard {
    std::vector<Endpoint> endpoints;
    size_t active = 0;
  };

  void HandleSuccessLocked(size_t shard, size_t endpoint);
  void HandleFailureLocked(size_t shard, size_t endpoint);
  void PublishDownCount() const;  // callers hold mu_
  static bool AllDown(const Shard& s);

  const ShardHealthOptions options_;
  mutable std::mutex mu_;
  std::vector<Shard> shards_;
};

}  // namespace ipin::serve

#endif  // IPIN_SERVE_HEALTH_H_
