#ifndef IPIN_SERVE_HEALTH_H_
#define IPIN_SERVE_HEALTH_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

// Per-shard health state machine of the scatter-gather router — the circuit
// breaker that keeps a dead or dying shard from burning every request's
// deadline budget (DESIGN.md §11):
//
//           consecutive failures >= suspect_after
//   HEALTHY ------------------------------------> SUSPECT
//           consecutive failures >= down_after
//   SUSPECT ------------------------------------> DOWN
//   any     --- one success ---------------------> HEALTHY
//
//   * HEALTHY / SUSPECT: requests flow. SUSPECT is the early-warning band —
//     the shard is failing but the circuit is still closed, so a transient
//     blip (one dropped connection) never costs availability.
//   * DOWN: the circuit is open. AllowRequest() refuses, so queries skip
//     the shard immediately (a partial answer now beats a full answer
//     after a guaranteed timeout) and the shard gets no recovery-fighting
//     load. Recovery is probe-based: the router's prober sends a cheap
//     health RPC every probe_interval_ms (ProbeDue() rate-limits it) and
//     one success closes the circuit.
//
// Counters: serve.shard.health.{suspect,down,recovered} count transitions;
// the serve.shard.down_count gauge tracks how many shards are currently
// down. All methods are thread-safe (one mutex; transitions are rare and
// the per-leg check is two loads).

namespace ipin::serve {

enum class ShardState { kHealthy, kSuspect, kDown };

/// "healthy", "suspect", "down" (for logs and stats).
const char* ShardStateName(ShardState state);

struct ShardHealthOptions {
  /// Consecutive failures that turn a healthy shard suspect.
  int suspect_after = 1;
  /// Consecutive failures that open the circuit (must be >= suspect_after).
  int down_after = 3;
  /// Minimum spacing between recovery probes to a down shard.
  int64_t probe_interval_ms = 200;
};

class ShardHealthTracker {
 public:
  explicit ShardHealthTracker(size_t num_shards,
                              ShardHealthOptions options = {});

  ShardHealthTracker(const ShardHealthTracker&) = delete;
  ShardHealthTracker& operator=(const ShardHealthTracker&) = delete;

  /// May a regular (non-probe) request go to `shard`? False exactly when
  /// the circuit is open (state down).
  bool AllowRequest(size_t shard) const;

  /// Is a recovery probe due for `shard`? True only for down shards, at
  /// most once per probe_interval_ms (the call claims the slot).
  bool ProbeDue(size_t shard);

  /// Outcome of a request or probe leg against `shard`.
  void OnSuccess(size_t shard);
  void OnFailure(size_t shard);

  ShardState state(size_t shard) const;
  int consecutive_failures(size_t shard) const;
  std::vector<ShardState> Snapshot() const;
  /// Shards currently in state down.
  size_t DownCount() const;

  size_t num_shards() const { return shards_.size(); }
  const ShardHealthOptions& options() const { return options_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Shard {
    ShardState state = ShardState::kHealthy;
    int consecutive_failures = 0;
    Clock::time_point next_probe{};
  };

  void PublishDownCount() const;  // callers hold mu_

  const ShardHealthOptions options_;
  mutable std::mutex mu_;
  std::vector<Shard> shards_;
};

}  // namespace ipin::serve

#endif  // IPIN_SERVE_HEALTH_H_
