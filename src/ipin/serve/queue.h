#ifndef IPIN_SERVE_QUEUE_H_
#define IPIN_SERVE_QUEUE_H_

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

// Bounded MPMC request queue — the admission-control point of the serving
// layer. Producers (connection readers) use the non-blocking TryPush and
// turn a rejection into an OVERLOADED response (load shedding); consumers
// (workers) block in Pop. The queue never grows past its capacity, so the
// serve.queue.depth gauge is bounded by construction.
//
// Lifecycle: Open -> Drain (pushes rejected, pops keep emptying the
// backlog) -> Pop returns nullopt once the backlog is empty. Reopen() is for
// tests only.

namespace ipin::serve {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Enqueues unless the queue is full or draining. Never blocks.
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (draining_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is draining and empty
  /// (then nullopt — the consumer's signal to exit).
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    ready_.wait(lock, [this] { return draining_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Non-blocking Pop: nullopt when nothing is queued right now.
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Rejects all future pushes; consumers drain the backlog, then see
  /// nullopt from Pop.
  void Drain() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      draining_ = true;
    }
    ready_.notify_all();
  }

  /// Tests only: undo Drain.
  void Reopen() {
    std::lock_guard<std::mutex> lock(mu_);
    draining_ = false;
  }

  size_t Depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

  bool draining() const {
    std::lock_guard<std::mutex> lock(mu_);
    return draining_;
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool draining_ = false;
};

}  // namespace ipin::serve

#endif  // IPIN_SERVE_QUEUE_H_
