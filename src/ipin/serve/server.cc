#include "ipin/serve/server.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <queue>

#include "ipin/common/failpoint.h"
#include "ipin/common/logging.h"
#include "ipin/common/string_util.h"
#include "ipin/core/influence_oracle.h"
#include "ipin/obs/export.h"
#include "ipin/obs/metrics.h"
#include "ipin/obs/trace_events.h"
#include "ipin/sketch/estimators.h"
#include "ipin/sketch/kernels.h"

namespace ipin::serve {
namespace {

// A protocol line longer than this is abuse, not a request.
constexpr size_t kMaxLineBytes = 1 << 20;

int64_t ToMicros(std::chrono::steady_clock::duration d) {
  return std::chrono::duration_cast<std::chrono::microseconds>(d).count();
}

void SetSendTimeout(int fd, int64_t timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

// Bounded write: the socket carries SO_SNDTIMEO, so each send() blocks at
// most timeout_ms; the elapsed check on top bounds the WHOLE response even
// against a peer that drains one byte per timeout window. A peer that stops
// reading therefore costs at most ~2x timeout_ms of thread time, never a
// wedged reader/worker.
bool WriteAll(int fd, const std::string& data, int64_t timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  size_t written = 0;
  while (written < data.size()) {
    const ssize_t n = ::send(fd, data.data() + written, data.size() - written,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // SO_SNDTIMEO expired: the peer is not reading.
        IPIN_COUNTER_ADD("serve.write.timeouts", 1);
      }
      return false;
    }
    written += static_cast<size_t>(n);
    if (written < data.size() && std::chrono::steady_clock::now() >= deadline) {
      IPIN_COUNTER_ADD("serve.write.timeouts", 1);
      return false;
    }
  }
  return true;
}

}  // namespace

struct OracleServer::Connection {
  explicit Connection(int fd) : fd(fd) {}
  ~Connection() {
    if (fd >= 0) ::close(fd);
  }

  const int fd;
  std::mutex write_mu;             // responses are single lines, one writer at
                                   // a time keeps them uninterleaved
  std::string read_buffer;
  std::atomic<bool> broken{false};       // write side failed; stop responding
  std::atomic<bool> reader_done{false};  // reader thread exited (reapable)
};

// Shared with the reload thread via shared_ptr: Shutdown() may detach that
// thread if a reload is wedged inside the loader, so nothing it touches may
// live in the server object itself.
struct OracleServer::ReloadState {
  std::mutex mu;
  std::condition_variable cv;
  struct Job {
    std::shared_ptr<Connection> conn;
    int64_t id = 0;
    uint64_t trace_id = 0;
  };
  std::deque<Job> jobs;
  bool stop = false;
  bool exited = false;
};

OracleServer::OracleServer(IndexManager* index, ServerOptions options)
    : index_(index),
      options_(std::move(options)),
      queue_(options_.queue_capacity),
      flight_(options_.flight_recorder_size, options_.flight_slow_size,
              options_.slow_query_us),
      window_(obs::WindowedAggregatorOptions{
          /*sample_period_ms=*/1000,
          /*num_buckets=*/std::max<size_t>(
              64, static_cast<size_t>(std::max<int64_t>(
                      0, options_.stats_window_s)) * 2)}) {
  if (options_.audit_rate > 0.0) {
    audit_every_ = static_cast<uint64_t>(
        std::max(1.0, std::round(1.0 / std::min(1.0, options_.audit_rate))));
  }
}

OracleServer::~OracleServer() { Shutdown(); }

bool OracleServer::Start() {
  if (running_.load(std::memory_order_acquire)) return true;
  const bool unix_mode = !options_.unix_socket_path.empty();
  if (unix_mode == (options_.tcp_port >= 0)) {
    LogError("serve: set exactly one of unix_socket_path / tcp_port");
    return false;
  }

  if (unix_mode) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.unix_socket_path.size() >= sizeof(addr.sun_path)) {
      LogError("serve: socket path too long: " + options_.unix_socket_path);
      return false;
    }
    std::strncpy(addr.sun_path, options_.unix_socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      LogError(StrFormat("serve: socket(): %s", std::strerror(errno)));
      return false;
    }
    ::unlink(options_.unix_socket_path.c_str());  // stale socket from a crash
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      LogError(StrFormat("serve: bind(%s): %s",
                         options_.unix_socket_path.c_str(),
                         std::strerror(errno)));
      ::close(listen_fd_);
      listen_fd_ = -1;
      return false;
    }
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      LogError(StrFormat("serve: socket(): %s", std::strerror(errno)));
      return false;
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(options_.tcp_port));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      LogError(StrFormat("serve: bind(127.0.0.1:%d): %s", options_.tcp_port,
                         std::strerror(errno)));
      ::close(listen_fd_);
      listen_fd_ = -1;
      return false;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                      &len) == 0) {
      bound_port_ = ntohs(bound.sin_port);
    }
  }

  if (::listen(listen_fd_, 128) != 0) {
    LogError(StrFormat("serve: listen(): %s", std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }

  running_.store(true, std::memory_order_release);
  draining_.store(false, std::memory_order_release);

#ifndef IPIN_OBS_DISABLED
  // One registry sample per second backs the stats verb's win_* fields and
  // ipin_top. Not started in obs-disabled builds: the macros record
  // nothing, so the ring would only ever hold empty snapshots.
  window_.Start();
#endif

  // Dedicated reload thread: a slow or wedged Reload() blocks only this
  // thread — never a connection reader or query worker — and Shutdown()
  // can abandon it (detach) if it outlasts the drain deadline.
  reload_state_ = std::make_shared<ReloadState>();
  reload_thread_ = std::thread([state = reload_state_, index = index_,
                                write_timeout = options_.write_timeout_ms] {
    for (;;) {
      ReloadState::Job job;
      bool draining;
      {
        std::unique_lock<std::mutex> lock(state->mu);
        state->cv.wait(lock,
                       [&] { return state->stop || !state->jobs.empty(); });
        if (state->jobs.empty()) break;  // stop requested, nothing pending
        job = std::move(state->jobs.front());
        state->jobs.pop_front();
        draining = state->stop;
      }
      Response response;
      response.id = job.id;
      response.trace_id = job.trace_id;
      if (draining) {
        // Answer rather than reload: a fresh epoch is useless to a server
        // that is shutting down, and this keeps the drain bounded.
        response.status = StatusCode::kUnavailable;
        response.error = "server is draining";
      } else {
        IPIN_LATENCY_SCOPE("serve.latency.reload_us");
        const ReloadStatus status = index->Reload();
        response.status = StatusCode::kOk;
        response.epoch = index->Epoch();
        response.info.emplace_back(
            "rolled_back", status == ReloadStatus::kRolledBack ? 1.0 : 0.0);
      }
      WriteResponse(job.conn, response, write_timeout);
    }
    {
      std::lock_guard<std::mutex> lock(state->mu);
      state->exited = true;
    }
    state->cv.notify_all();
  });

  acceptor_ = std::thread([this] { AcceptLoop(); });
  worker_pool_ =
      std::make_unique<ThreadPool>(static_cast<size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    worker_pool_->Submit([this] { WorkerLoop(); });
  }
  LogInfo(StrFormat(
      "serve: listening on %s (%d workers, queue %zu)",
      unix_mode ? options_.unix_socket_path.c_str()
                : StrFormat("127.0.0.1:%d", bound_port_).c_str(),
      options_.num_workers, options_.queue_capacity));
  return true;
}

void OracleServer::AcceptLoop() {
  while (running_.load(std::memory_order_acquire) &&
         !draining_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) {
      ReapFinishedReaders();
      continue;
    }
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;  // listener closed (shutdown) or unrecoverable
    }
    if (IPIN_FAILPOINT("serve.accept").fail) {
      // Injected accept failure: the kernel handed us the connection but
      // the server "could not" take it — clients see a reset and retry.
      IPIN_COUNTER_ADD("serve.accept.failures", 1);
      ::close(fd);
      continue;
    }
    SetSendTimeout(fd, options_.write_timeout_ms);
    auto conn = std::make_shared<Connection>(fd);
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      if (active_connections_ >= options_.max_connections) {
        Response reject;
        reject.status = StatusCode::kOverloaded;
        reject.retry_after_ms = options_.retry_after_ms;
        reject.error = "connection limit reached";
        IPIN_COUNTER_ADD("serve.requests.shed", 1);
        WriteResponse(conn, reject, options_.write_timeout_ms);
        continue;  // conn destructor closes fd
      }
      ++active_connections_;
      IPIN_GAUGE_SET("serve.connections.active", active_connections_);
      readers_.push_back(ReaderSlot{
          std::thread([this, conn] { ReadLoop(conn); }), conn});
    }
    ReapFinishedReaders();
  }
}

void OracleServer::ReapFinishedReaders() {
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (size_t i = 0; i < readers_.size();) {
    if (readers_[i].conn->reader_done.load(std::memory_order_acquire)) {
      readers_[i].thread.join();
      readers_[i] = std::move(readers_.back());
      readers_.pop_back();
    } else {
      ++i;
    }
  }
}

void OracleServer::ReadLoop(std::shared_ptr<Connection> conn) {
  std::string line;
  while (true) {
    // Buffered line read.
    size_t newline;
    while ((newline = conn->read_buffer.find('\n')) == std::string::npos) {
      char chunk[4096];
      const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
      if (n == 0) goto done;  // peer closed / drain shutdown(SHUT_RD)
      if (n < 0) {
        if (errno == EINTR) continue;
        goto done;
      }
      conn->read_buffer.append(chunk, static_cast<size_t>(n));
      if (conn->read_buffer.size() > kMaxLineBytes) {
        LogWarning("serve: dropping connection with oversized request line");
        goto done;
      }
    }
    line.assign(conn->read_buffer, 0, newline);
    conn->read_buffer.erase(0, newline + 1);

    if (IPIN_FAILPOINT("serve.read").fail) {
      // Injected read fault: the bytes arrived but the server treats the
      // connection as unreadable, as a torn TCP stream would look.
      IPIN_COUNTER_ADD("serve.read.failures", 1);
      goto done;
    }
    if (line.empty()) continue;

    std::string parse_error;
    int64_t id = 0;
    auto request = ParseRequest(line, &parse_error, &id);
    if (!request.has_value()) {
      Response bad;
      bad.id = id;
      bad.status = StatusCode::kBadRequest;
      bad.error = parse_error;
      IPIN_COUNTER_ADD("serve.requests.bad", 1);
      WriteResponse(conn, bad, options_.write_timeout_ms);
      continue;
    }
    HandleRequest(conn, std::move(*request));
    if (conn->broken.load(std::memory_order_acquire)) break;
  }
done:
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    --active_connections_;
    IPIN_GAUGE_SET("serve.connections.active", active_connections_);
  }
  conn->reader_done.store(true, std::memory_order_release);
}

void OracleServer::HandleRequest(const std::shared_ptr<Connection>& conn,
                                 Request&& request) {
  const Clock::time_point now = Clock::now();
  switch (request.method) {
    case Method::kHealth: {
      // Answered inline so liveness probes work even with a full queue.
      IPIN_LATENCY_SCOPE("serve.latency.health_us");
      const IndexSnapshot snapshot = index_->Snapshot();
      Response response;
      response.id = request.id;
      response.trace_id = request.trace_id;
      response.status = snapshot.epoch > 0 ? StatusCode::kOk
                                           : StatusCode::kUnavailable;
      response.epoch = snapshot.epoch;
      WriteResponse(conn, response, options_.write_timeout_ms);
      return;
    }
    case Method::kStats: {
      IPIN_LATENCY_SCOPE("serve.latency.stats_us");
      WriteResponse(conn, StatsResponse(request), options_.write_timeout_ms);
      return;
    }
    case Method::kMetrics: {
      // The scrape endpoint: answered inline (like health) so a dashboard
      // keeps seeing metrics precisely when the queue is full and they
      // matter most. The registry classes exist in every build, so this
      // answers (with an empty-ish registry) even under IPIN_OBS_DISABLED.
      IPIN_LATENCY_SCOPE("serve.latency.metrics_us");
      Response response;
      response.id = request.id;
      response.trace_id = request.trace_id;
      response.status = StatusCode::kOk;
      response.epoch = index_->Epoch();
      response.payload =
          request.format == MetricsFormat::kJson
              ? obs::GlobalMetricsReportJson()
              : obs::MetricsPrometheusText(
                    obs::MetricsRegistry::Global().Snapshot());
      WriteResponse(conn, response, options_.write_timeout_ms);
      return;
    }
    case Method::kDebug: {
      // Flight-recorder dump, inline for the same reason as metrics: the
      // slow queries it explains are exactly when workers are busy.
      IPIN_LATENCY_SCOPE("serve.latency.debug_us");
      Response response;
      response.id = request.id;
      response.trace_id = request.trace_id;
      response.status = StatusCode::kOk;
      response.epoch = index_->Epoch();
      response.payload = flight_.DumpJson();
      WriteResponse(conn, response, options_.write_timeout_ms);
      return;
    }
    case Method::kReload: {
      // Handed to the dedicated reload thread (which also writes the
      // response): a slow or wedged reload never occupies a query worker
      // or this reader, and queries keep flowing from the old epoch while
      // it runs.
      Response response;
      response.id = request.id;
      response.trace_id = request.trace_id;
      if (draining_.load(std::memory_order_acquire)) {
        response.status = StatusCode::kUnavailable;
        response.error = "server is draining";
        WriteResponse(conn, response, options_.write_timeout_ms);
        return;
      }
      constexpr size_t kMaxPendingReloads = 4;
      {
        std::lock_guard<std::mutex> lock(reload_state_->mu);
        if (reload_state_->jobs.size() >= kMaxPendingReloads) {
          response.status = StatusCode::kOverloaded;
          response.retry_after_ms = options_.retry_after_ms;
        } else {
          reload_state_->jobs.push_back(
              ReloadState::Job{conn, request.id, request.trace_id});
          reload_state_->cv.notify_one();
        }
      }
      if (response.status == StatusCode::kOverloaded) {
        IPIN_COUNTER_ADD("serve.requests.shed", 1);
        WriteResponse(conn, response, options_.write_timeout_ms);
      }
      return;
    }
    case Method::kReshardStatus: {
      // Router-only admin verb: an oracle backend has no shard map to
      // report on, and answering OK here would make a misconfigured client
      // believe it is talking to a router.
      Response response;
      response.id = request.id;
      response.trace_id = request.trace_id;
      response.status = StatusCode::kBadRequest;
      response.error = "reshard_status is a router verb";
      IPIN_COUNTER_ADD("serve.requests.bad", 1);
      WriteResponse(conn, response, options_.write_timeout_ms);
      return;
    }
    case Method::kQuery:
    case Method::kTopk:
      break;
  }

  // Admission control for queries. A query without a trace id gets one
  // here, so every path below (responses, spans, flight records, logs) can
  // refer to the request by it.
  if (request.trace_id == 0) {
    request.trace_id = next_trace_id_.fetch_add(1, std::memory_order_relaxed);
  }
  const uint64_t trace_id = request.trace_id;
  IPIN_TRACE_ASYNC_BEGIN("serve.request", trace_id);

  const int64_t deadline_ms = request.deadline_ms > 0
                                  ? request.deadline_ms
                                  : options_.default_deadline_ms;
  Task task;
  task.deadline = now + std::chrono::milliseconds(deadline_ms);
  task.enqueued = now;
  task.conn = conn;
  const int64_t id = request.id;

  if (draining_.load(std::memory_order_acquire)) {
    Response response;
    response.id = id;
    response.trace_id = trace_id;
    response.status = StatusCode::kUnavailable;
    response.error = "server is draining";
    response.retry_after_ms = options_.retry_after_ms;
    WriteResponse(conn, response, options_.write_timeout_ms);
    RecordRejected(trace_id, id, request.mode, request.seeds.size(),
                   StatusCode::kUnavailable, now);
    IPIN_TRACE_ASYNC_END("serve.request", trace_id);
    return;
  }
  task.admission_us = ToMicros(Clock::now() - now);
  // TryPush takes the task by value, so the request is gone either way:
  // snapshot what the rejection paths need first.
  const QueryMode mode = request.mode;
  const size_t num_seeds = request.seeds.size();
  task.request = std::move(request);
  if (!queue_.TryPush(std::move(task))) {
    // Load shedding: reject now with a backoff hint rather than queueing
    // beyond capacity.
    Response response;
    response.id = id;
    response.trace_id = trace_id;
    response.status = StatusCode::kOverloaded;
    response.retry_after_ms = options_.retry_after_ms;
    IPIN_COUNTER_ADD("serve.requests.shed", 1);
    WriteResponse(conn, response, options_.write_timeout_ms);
    RecordRejected(trace_id, id, mode, num_seeds, StatusCode::kOverloaded,
                   now);
    IPIN_TRACE_ASYNC_END("serve.request", trace_id);
    return;
  }
  IPIN_TRACE_ASYNC_BEGIN("serve.queue", trace_id);
  IPIN_COUNTER_ADD("serve.requests.accepted", 1);
  IPIN_GAUGE_SET("serve.queue.depth", queue_.Depth());
}

void OracleServer::RecordRejected(uint64_t trace_id, int64_t id,
                                  QueryMode mode, size_t num_seeds,
                                  StatusCode status,
                                  Clock::time_point received) {
  RequestRecord record;
  record.trace_id = trace_id;
  record.id = id;
  record.mode = mode;
  record.status = status;
  record.num_seeds = num_seeds;
  record.epoch = index_->Epoch();
  record.total_us = ToMicros(Clock::now() - received);
  record.admission_us = record.total_us;
  flight_.Record(record);
}

void OracleServer::WorkerLoop() {
  while (true) {
    auto task = queue_.Pop();
    if (!task.has_value()) return;  // drained and empty
    IPIN_GAUGE_SET("serve.queue.depth", queue_.Depth());
    const Clock::time_point now = Clock::now();
    const uint64_t trace_id = task->request.trace_id;
    const int64_t queue_us = ToMicros(now - task->enqueued);
    IPIN_HISTOGRAM_RECORD("serve.queue.wait_us", queue_us);
    IPIN_TRACE_ASYNC_END("serve.queue", trace_id);

    // During drain, requests older than the drain deadline are answered
    // immediately; the rest still get evaluated.
    const bool past_drain =
        draining_.load(std::memory_order_acquire) && now >= drain_deadline_;

    Response response;
    int64_t eval_us = 0;
    if (now >= task->deadline || past_drain) {
      // Early drop at dequeue: an expired request never occupies a worker
      // for evaluation.
      response.id = task->request.id;
      response.trace_id = trace_id;
      response.status = StatusCode::kDeadlineExceeded;
      response.epoch = index_->Epoch();
      IPIN_COUNTER_ADD("serve.requests.deadline_exceeded", 1);
    } else {
      IPIN_LATENCY_SCOPE("serve.latency.query_us");
      IPIN_TRACE_ASYNC_BEGIN("serve.eval", trace_id);
      const Clock::time_point eval_start = Clock::now();
      response = EvaluateQuery(task->request, task->deadline);
      eval_us = ToMicros(Clock::now() - eval_start);
      IPIN_TRACE_ASYNC_END("serve.eval", trace_id);
    }
    IPIN_TRACE_ASYNC_BEGIN("serve.write", trace_id);
    const Clock::time_point write_start = Clock::now();
    WriteResponse(task->conn, response, options_.write_timeout_ms);
    const Clock::time_point done = Clock::now();
    IPIN_TRACE_ASYNC_END("serve.write", trace_id);
    IPIN_TRACE_ASYNC_END("serve.request", trace_id);

    RequestRecord record;
    record.trace_id = trace_id;
    record.id = task->request.id;
    record.mode = task->request.mode;
    record.status = response.status;
    record.degraded = response.degraded;
    record.num_seeds = task->request.seeds.size();
    record.epoch = response.epoch;
    record.admission_us = task->admission_us;
    record.queue_us = queue_us;
    record.eval_us = eval_us;
    record.write_us = ToMicros(done - write_start);
    record.total_us = ToMicros(done - task->enqueued);
    flight_.Record(record);
    if (record.total_us > options_.slow_query_us) {
      LogWarning(StrFormat(
          "serve: slow query trace_id=%s id=%lld status=%s total_us=%lld "
          "(admission=%lld queue=%lld eval=%lld write=%lld)",
          TraceIdToHex(trace_id).c_str(),
          static_cast<long long>(record.id), StatusCodeName(record.status),
          static_cast<long long>(record.total_us),
          static_cast<long long>(record.admission_us),
          static_cast<long long>(record.queue_us),
          static_cast<long long>(record.eval_us),
          static_cast<long long>(record.write_us)));
    }
  }
}

Response OracleServer::EvaluateQuery(const Request& request,
                                     Clock::time_point deadline) {
  Response response;
  response.id = request.id;
  response.trace_id = request.trace_id;

  // One-lock snapshot: the whole evaluation runs on this index (and exact
  // map), and the reported epoch is the one these pointers were installed
  // at — a reload swapping the manager mid-query can skew neither.
  const IndexSnapshot snapshot = index_->Snapshot();
  const std::shared_ptr<const IrsApprox>& index = snapshot.index;
  response.epoch = snapshot.epoch;
  if (index == nullptr) {
    response.status = StatusCode::kUnavailable;
    response.error = "no index loaded";
    response.retry_after_ms = options_.retry_after_ms;
    return response;
  }

  if (request.method == Method::kTopk) {
    // The k individually most influential SKETCHED nodes (a node without a
    // sketch never sent inside the window; its IRS is empty and it is never
    // ranked — this also keeps shard partials disjoint, since a shard index
    // holds sketches only for the nodes it owns). Bounded worst-on-top
    // heap: O(n log k), ties broken by ascending node id so the order — and
    // the router's merge of shard partials — is deterministic.
    const size_t k = std::min<size_t>(
        static_cast<size_t>(std::max<int64_t>(1, request.k)),
        index->num_nodes());
    const auto better = [](const std::pair<NodeId, double>& a,
                           const std::pair<NodeId, double>& b) {
      if (a.second != b.second) return a.second > b.second;
      return a.first < b.first;
    };
    // priority_queue treats its comparator as less-than, so comparing with
    // `better` keeps the WORST kept entry on top, ready to evict.
    std::priority_queue<std::pair<NodeId, double>,
                        std::vector<std::pair<NodeId, double>>,
                        decltype(better)>
        worst_first(better);
    QueryBudget budget;
    budget.deadline = deadline;
    for (NodeId u = 0; u < index->num_nodes(); ++u) {
      if (u % 4096 == 0 && budget.Expired()) {
        response.status = StatusCode::kDeadlineExceeded;
        IPIN_COUNTER_ADD("serve.requests.deadline_exceeded", 1);
        return response;
      }
      const SketchView sketch = index->Sketch(u);
      if (!sketch) continue;
      worst_first.emplace(u, sketch.Estimate());
      if (worst_first.size() > k) worst_first.pop();
    }
    response.topk.resize(worst_first.size());
    for (size_t i = worst_first.size(); i-- > 0;) {
      response.topk[i] = worst_first.top();
      worst_first.pop();
    }
    response.status = StatusCode::kOk;
    IPIN_COUNTER_ADD("serve.requests.ok", 1);
    return response;
  }

  for (const NodeId seed : request.seeds) {
    if (static_cast<size_t>(seed) >= index->num_nodes()) {
      response.status = StatusCode::kBadRequest;
      response.error = "seed out of range";
      IPIN_COUNTER_ADD("serve.requests.bad", 1);
      return response;
    }
  }

  bool answered = false;
  bool degraded = false;
  double estimate = 0.0;

  // Exact attempt: bounded by both the request deadline and the server's
  // exact-latency budget, so a miss leaves time for the sketch fallback.
  // want_ranks forces the sketch path — the rank vector only exists there —
  // so an explicit "exact" + want_ranks request is answered degraded.
  const bool want_exact =
      request.mode != QueryMode::kSketch && !request.want_ranks;
  if (request.want_ranks && request.mode == QueryMode::kExact) degraded = true;
  if (want_exact) {
    const std::shared_ptr<const IrsExact>& exact = snapshot.exact;
    if (exact == nullptr || exact->num_nodes() < index->num_nodes()) {
      // Exact map unloaded (or stale vs. the serving index): "exact"
      // explicitly asked for it, so its answer is degraded; "auto" treats
      // sketch-only service as the normal case.
      degraded = request.mode == QueryMode::kExact;
    } else {
      QueryBudget budget;
      budget.deadline = std::min(
          deadline, Clock::now() + std::chrono::milliseconds(
                                       options_.exact_budget_ms));
      // serve.eval: delay mode burns the exact budget (a slow evaluation),
      // error mode fails the attempt outright — both degrade to sketch.
      const bool eval_fault = IPIN_FAILPOINT("serve.eval").fail;
      if (!eval_fault) {
        const ExactInfluenceOracle oracle(exact.get());
        const BudgetedValue result =
            oracle.InfluenceOfSetBudgeted(request.seeds, budget);
        if (!result.exceeded) {
          estimate = result.value;
          answered = true;
        }
      }
      if (!answered) degraded = true;
    }
  }

  bool answered_by_sketch = false;
  if (!answered && request.want_ranks) {
    // Rank-vector variant of IrsApprox::EstimateUnionSize, mirrored here so
    // the estimate is bit-identical to the plain sketch path AND the union's
    // per-cell max ranks travel back in the response — the partial a
    // scatter-gather router folds (cellwise max) into an exact global
    // answer. An all-zero vector (no seed has a sketch) is both the merge
    // identity and EstimateFromRanks == 0.0, matching the plain path.
    const size_t beta = static_cast<size_t>(1)
                        << index->options().precision;
    std::vector<uint8_t> ranks(beta, 0);
    bool any = false;
    QueryBudget budget;
    budget.deadline = deadline;
    size_t scanned = 0;
    for (const NodeId u : request.seeds) {
      if (++scanned % 64 == 0 && budget.Expired()) {
        response.status = StatusCode::kDeadlineExceeded;
        IPIN_COUNTER_ADD("serve.requests.deadline_exceeded", 1);
        return response;
      }
      const SketchView sketch = index->Sketch(u);
      if (!sketch) continue;
      any = true;
      kernels::CellwiseMaxU8(ranks.data(), sketch.max_ranks().data(), beta);
    }
    estimate = any ? EstimateFromRanks(ranks) : 0.0;
    response.ranks = std::move(ranks);
    answered = true;
    answered_by_sketch = true;
  }
  if (!answered) {
    const SketchInfluenceOracle oracle(index.get());
    QueryBudget budget;
    budget.deadline = deadline;
    const BudgetedValue result =
        oracle.InfluenceOfSetBudgeted(request.seeds, budget);
    if (result.exceeded) {
      response.status = StatusCode::kDeadlineExceeded;
      IPIN_COUNTER_ADD("serve.requests.deadline_exceeded", 1);
      return response;
    }
    estimate = result.value;
    answered_by_sketch = true;
  }

  if (Clock::now() >= deadline) {
    // The answer exists but arrived too late to be truthful about.
    response.status = StatusCode::kDeadlineExceeded;
    IPIN_COUNTER_ADD("serve.requests.deadline_exceeded", 1);
    return response;
  }
  response.status = StatusCode::kOk;
  response.estimate = estimate;
  response.degraded = degraded;
  IPIN_COUNTER_ADD("serve.requests.ok", 1);
  if (degraded) {
    IPIN_COUNTER_ADD("serve.requests.degraded", 1);
    LogDebug(StrFormat("serve: degraded answer trace_id=%s id=%lld",
                       TraceIdToHex(request.trace_id).c_str(),
                       static_cast<long long>(request.id)));
  }
#ifndef IPIN_OBS_DISABLED
  if (answered_by_sketch) MaybeAudit(snapshot, request.seeds, estimate);
#else
  (void)answered_by_sketch;
#endif
  return response;
}

#ifndef IPIN_OBS_DISABLED
void OracleServer::MaybeAudit(const IndexSnapshot& snapshot,
                              const std::vector<NodeId>& seeds,
                              double estimate) {
  if (audit_every_ == 0 || seeds.empty()) return;
  const std::shared_ptr<const IrsExact>& exact = snapshot.exact;
  // Same coverage condition as the exact serving path: auditing against a
  // stale exact map would measure reload skew, not sketch error.
  if (exact == nullptr || exact->num_nodes() < snapshot.index->num_nodes()) {
    return;
  }
  if (audit_tick_.fetch_add(1, std::memory_order_relaxed) % audit_every_ !=
      0) {
    return;
  }
  IPIN_COUNTER_ADD("serve.audit.sampled", 1);
  // Fire-and-forget on the shared global pool (NOT the serve worker pool):
  // the exact re-evaluation never holds a serving worker, and the captured
  // shared_ptr keeps the audited epoch's exact map alive even across a
  // reload or server shutdown.
  GlobalPool().Submit([exact, seeds, estimate] {
    const ExactInfluenceOracle oracle(exact.get());
    const double truth = oracle.InfluenceOfSet(seeds);
    if (truth <= 0.0) {
      IPIN_COUNTER_ADD("serve.audit.zero_truth", 1);
      IPIN_COUNTER_ADD("serve.audit.completed", 1);
      return;
    }
    // Histograms hold non-negative integers, so the signed relative error
    // is split into over/under histograms, scaled to per-mille.
    const double rel = (estimate - truth) / truth;
    const uint64_t abs_pm =
        static_cast<uint64_t>(std::fabs(rel) * 1000.0 + 0.5);
    IPIN_HISTOGRAM_RECORD("serve.audit.rel_error_abs_pm", abs_pm);
    if (rel >= 0.0) {
      IPIN_HISTOGRAM_RECORD("serve.audit.rel_error_over_pm", abs_pm);
    } else {
      IPIN_HISTOGRAM_RECORD("serve.audit.rel_error_under_pm", abs_pm);
    }
    IPIN_COUNTER_ADD("serve.audit.completed", 1);
  });
}
#endif  // IPIN_OBS_DISABLED

Response OracleServer::StatsResponse(const Request& request) {
  Response response;
  response.id = request.id;
  response.trace_id = request.trace_id;
  response.status = StatusCode::kOk;
  const IndexSnapshot snapshot = index_->Snapshot();
  const std::shared_ptr<const IrsApprox>& index = snapshot.index;
  response.epoch = snapshot.epoch;
  size_t active;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    active = active_connections_;
  }
  response.info = {
      {"queue_depth", static_cast<double>(queue_.Depth())},
      {"queue_capacity", static_cast<double>(options_.queue_capacity)},
      {"workers", static_cast<double>(options_.num_workers)},
      {"connections_active", static_cast<double>(active)},
      {"num_nodes",
       index == nullptr ? 0.0 : static_cast<double>(index->num_nodes())},
      {"exact_loaded", snapshot.exact != nullptr ? 1.0 : 0.0},
      {"draining", draining_.load(std::memory_order_acquire) ? 1.0 : 0.0},
  };
  if (options_.shard_count > 0) {
    response.info.emplace_back("shard_id",
                               static_cast<double>(options_.shard_id));
    response.info.emplace_back("shard_count",
                               static_cast<double>(options_.shard_count));
  }
#ifndef IPIN_OBS_DISABLED
  // Trailing-window view from the per-second sampler: rates per second and
  // query-latency percentiles over the last stats_window_s seconds. All 0
  // until the sampler has at least two samples.
  const double win_s = static_cast<double>(options_.stats_window_s);
  const obs::HistogramSnapshot latency =
      window_.WindowedHistogram("serve.latency.query_us", win_s);
  response.info.emplace_back("win_s", win_s);
  response.info.emplace_back("win_qps",
                             window_.Rate("serve.requests.accepted", win_s));
  response.info.emplace_back("win_ok_per_s",
                             window_.Rate("serve.requests.ok", win_s));
  response.info.emplace_back("win_shed_per_s",
                             window_.Rate("serve.requests.shed", win_s));
  response.info.emplace_back(
      "win_degraded_per_s", window_.Rate("serve.requests.degraded", win_s));
  response.info.emplace_back(
      "win_deadline_per_s",
      window_.Rate("serve.requests.deadline_exceeded", win_s));
  response.info.emplace_back("win_query_count",
                             static_cast<double>(latency.count));
  response.info.emplace_back("win_p50_us", latency.P50());
  response.info.emplace_back("win_p95_us", latency.P95());
  response.info.emplace_back("win_p99_us", latency.P99());
#endif
  return response;
}

void OracleServer::WriteResponse(const std::shared_ptr<Connection>& conn,
                                 const Response& response,
                                 int64_t write_timeout_ms) {
  if (conn->broken.load(std::memory_order_acquire)) return;
  const std::string line = SerializeResponse(response);
  std::lock_guard<std::mutex> lock(conn->write_mu);
  if (conn->broken.load(std::memory_order_acquire)) return;
  if (!WriteAll(conn->fd, line, write_timeout_ms)) {
    conn->broken.store(true, std::memory_order_release);
    // Kick the connection's reader out of recv() so the connection is torn
    // down instead of continuing to feed a peer that cannot be answered.
    ::shutdown(conn->fd, SHUT_RDWR);
  }
}

void OracleServer::Shutdown() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  LogInfo("serve: draining");
  drain_deadline_ =
      Clock::now() + std::chrono::milliseconds(options_.drain_deadline_ms);
  draining_.store(true, std::memory_order_release);

  // 1. Stop accepting connections.
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (!options_.unix_socket_path.empty()) {
    ::unlink(options_.unix_socket_path.c_str());
  }

  // 2. Stop reading new requests: half-close every connection. Responses
  // for queued work still go out on the write side.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& slot : readers_) ::shutdown(slot.conn->fd, SHUT_RD);
  }

  // 3. Drain the queue: workers answer everything still in it (evaluating
  // while the drain deadline allows), then exit on the empty signal.
  queue_.Drain();
  worker_pool_.reset();  // ThreadPool dtor joins once every WorkerLoop exits

  // 4. Readers have seen EOF by now (and any reader stuck writing to a
  // non-consuming peer is released by the write timeout); join and release
  // the connections (closing each fd once its last in-flight response
  // holder is gone).
  std::vector<ReaderSlot> readers;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    readers.swap(readers_);
  }
  for (auto& slot : readers) {
    if (slot.thread.joinable()) slot.thread.join();
  }

  // 5. Readers are gone, so no new reload jobs can arrive: stop the reload
  // thread, bounded by the drain deadline.
  StopReloadThread();
  window_.Stop();
  IPIN_GAUGE_SET("serve.queue.depth", 0);
  LogInfo("serve: drained, all workers stopped");
}

void OracleServer::StopReloadThread() {
  if (reload_state_ == nullptr) return;
  bool exited;
  {
    std::unique_lock<std::mutex> lock(reload_state_->mu);
    reload_state_->stop = true;
    reload_state_->cv.notify_all();
    // A healthy thread exits in microseconds; give a busy one until the
    // drain deadline (but at least a small grace period).
    const auto wait_until = std::max(
        drain_deadline_, Clock::now() + std::chrono::milliseconds(100));
    exited = reload_state_->cv.wait_until(
        lock, wait_until, [this] { return reload_state_->exited; });
  }
  if (exited) {
    if (reload_thread_.joinable()) reload_thread_.join();
  } else if (reload_thread_.joinable()) {
    // Wedged inside the index loader (hung disk/NFS, delay failpoint):
    // abandon it rather than blocking shutdown forever. It only touches
    // its refcounted state, the IndexManager (which outlives the server by
    // contract), and refcounted connections.
    LogWarning(
        "serve: reload thread still busy past the drain deadline; detaching");
    reload_thread_.detach();
  }
  reload_state_.reset();
}

}  // namespace ipin::serve
