#include "ipin/serve/server.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "ipin/common/failpoint.h"
#include "ipin/common/logging.h"
#include "ipin/common/string_util.h"
#include "ipin/core/influence_oracle.h"
#include "ipin/obs/metrics.h"

namespace ipin::serve {
namespace {

// A protocol line longer than this is abuse, not a request.
constexpr size_t kMaxLineBytes = 1 << 20;

// Only referenced from IPIN_* instrumentation macro arguments, which
// compile out under -DIPIN_OBS_DISABLED.
[[maybe_unused]] int64_t ToMicros(std::chrono::steady_clock::duration d) {
  return std::chrono::duration_cast<std::chrono::microseconds>(d).count();
}

bool WriteAll(int fd, const std::string& data) {
  size_t written = 0;
  while (written < data.size()) {
    const ssize_t n = ::send(fd, data.data() + written, data.size() - written,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

struct OracleServer::Connection {
  explicit Connection(int fd) : fd(fd) {}
  ~Connection() {
    if (fd >= 0) ::close(fd);
  }

  const int fd;
  std::mutex write_mu;             // responses are single lines, one writer at
                                   // a time keeps them uninterleaved
  std::string read_buffer;
  std::atomic<bool> broken{false};       // write side failed; stop responding
  std::atomic<bool> reader_done{false};  // reader thread exited (reapable)
};

OracleServer::OracleServer(IndexManager* index, ServerOptions options)
    : index_(index),
      options_(std::move(options)),
      queue_(options_.queue_capacity) {}

OracleServer::~OracleServer() { Shutdown(); }

bool OracleServer::Start() {
  if (running_.load(std::memory_order_acquire)) return true;
  const bool unix_mode = !options_.unix_socket_path.empty();
  if (unix_mode == (options_.tcp_port >= 0)) {
    LogError("serve: set exactly one of unix_socket_path / tcp_port");
    return false;
  }

  if (unix_mode) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.unix_socket_path.size() >= sizeof(addr.sun_path)) {
      LogError("serve: socket path too long: " + options_.unix_socket_path);
      return false;
    }
    std::strncpy(addr.sun_path, options_.unix_socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      LogError(StrFormat("serve: socket(): %s", std::strerror(errno)));
      return false;
    }
    ::unlink(options_.unix_socket_path.c_str());  // stale socket from a crash
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      LogError(StrFormat("serve: bind(%s): %s",
                         options_.unix_socket_path.c_str(),
                         std::strerror(errno)));
      ::close(listen_fd_);
      listen_fd_ = -1;
      return false;
    }
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      LogError(StrFormat("serve: socket(): %s", std::strerror(errno)));
      return false;
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(options_.tcp_port));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      LogError(StrFormat("serve: bind(127.0.0.1:%d): %s", options_.tcp_port,
                         std::strerror(errno)));
      ::close(listen_fd_);
      listen_fd_ = -1;
      return false;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                      &len) == 0) {
      bound_port_ = ntohs(bound.sin_port);
    }
  }

  if (::listen(listen_fd_, 128) != 0) {
    LogError(StrFormat("serve: listen(): %s", std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }

  running_.store(true, std::memory_order_release);
  draining_.store(false, std::memory_order_release);
  acceptor_ = std::thread([this] { AcceptLoop(); });
  workers_.reserve(static_cast<size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  LogInfo(StrFormat(
      "serve: listening on %s (%d workers, queue %zu)",
      unix_mode ? options_.unix_socket_path.c_str()
                : StrFormat("127.0.0.1:%d", bound_port_).c_str(),
      options_.num_workers, options_.queue_capacity));
  return true;
}

void OracleServer::AcceptLoop() {
  while (running_.load(std::memory_order_acquire) &&
         !draining_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) {
      ReapFinishedReaders();
      continue;
    }
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;  // listener closed (shutdown) or unrecoverable
    }
    if (IPIN_FAILPOINT("serve.accept").fail) {
      // Injected accept failure: the kernel handed us the connection but
      // the server "could not" take it — clients see a reset and retry.
      IPIN_COUNTER_ADD("serve.accept.failures", 1);
      ::close(fd);
      continue;
    }
    auto conn = std::make_shared<Connection>(fd);
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      if (active_connections_ >= options_.max_connections) {
        Response reject;
        reject.status = StatusCode::kOverloaded;
        reject.retry_after_ms = options_.retry_after_ms;
        reject.error = "connection limit reached";
        IPIN_COUNTER_ADD("serve.requests.shed", 1);
        WriteResponse(conn, reject);
        continue;  // conn destructor closes fd
      }
      ++active_connections_;
      IPIN_GAUGE_SET("serve.connections.active", active_connections_);
      readers_.push_back(ReaderSlot{
          std::thread([this, conn] { ReadLoop(conn); }), conn});
    }
    ReapFinishedReaders();
  }
}

void OracleServer::ReapFinishedReaders() {
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (size_t i = 0; i < readers_.size();) {
    if (readers_[i].conn->reader_done.load(std::memory_order_acquire)) {
      readers_[i].thread.join();
      readers_[i] = std::move(readers_.back());
      readers_.pop_back();
    } else {
      ++i;
    }
  }
}

void OracleServer::ReadLoop(std::shared_ptr<Connection> conn) {
  std::string line;
  while (true) {
    // Buffered line read.
    size_t newline;
    while ((newline = conn->read_buffer.find('\n')) == std::string::npos) {
      char chunk[4096];
      const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
      if (n == 0) goto done;  // peer closed / drain shutdown(SHUT_RD)
      if (n < 0) {
        if (errno == EINTR) continue;
        goto done;
      }
      conn->read_buffer.append(chunk, static_cast<size_t>(n));
      if (conn->read_buffer.size() > kMaxLineBytes) {
        LogWarning("serve: dropping connection with oversized request line");
        goto done;
      }
    }
    line.assign(conn->read_buffer, 0, newline);
    conn->read_buffer.erase(0, newline + 1);

    if (IPIN_FAILPOINT("serve.read").fail) {
      // Injected read fault: the bytes arrived but the server treats the
      // connection as unreadable, as a torn TCP stream would look.
      IPIN_COUNTER_ADD("serve.read.failures", 1);
      goto done;
    }
    if (line.empty()) continue;

    std::string parse_error;
    int64_t id = 0;
    auto request = ParseRequest(line, &parse_error, &id);
    if (!request.has_value()) {
      Response bad;
      bad.id = id;
      bad.status = StatusCode::kBadRequest;
      bad.error = parse_error;
      IPIN_COUNTER_ADD("serve.requests.bad", 1);
      WriteResponse(conn, bad);
      continue;
    }
    HandleRequest(conn, std::move(*request));
    if (conn->broken.load(std::memory_order_acquire)) break;
  }
done:
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    --active_connections_;
    IPIN_GAUGE_SET("serve.connections.active", active_connections_);
  }
  conn->reader_done.store(true, std::memory_order_release);
}

void OracleServer::HandleRequest(const std::shared_ptr<Connection>& conn,
                                 Request&& request) {
  const Clock::time_point now = Clock::now();
  switch (request.method) {
    case Method::kHealth: {
      // Answered inline so liveness probes work even with a full queue.
      IPIN_LATENCY_SCOPE("serve.latency.health_us");
      Response response;
      response.id = request.id;
      response.status = index_->Epoch() > 0 ? StatusCode::kOk
                                            : StatusCode::kUnavailable;
      response.epoch = index_->Epoch();
      WriteResponse(conn, response);
      return;
    }
    case Method::kStats: {
      IPIN_LATENCY_SCOPE("serve.latency.stats_us");
      WriteResponse(conn, StatsResponse(request.id));
      return;
    }
    case Method::kReload: {
      // Inline on the connection thread: a slow or wedged reload never
      // occupies a query worker, and queries keep flowing from the old
      // epoch while this blocks.
      IPIN_LATENCY_SCOPE("serve.latency.reload_us");
      const ReloadStatus status = index_->Reload();
      Response response;
      response.id = request.id;
      response.status = StatusCode::kOk;
      response.epoch = index_->Epoch();
      response.info.emplace_back(
          "rolled_back", status == ReloadStatus::kRolledBack ? 1.0 : 0.0);
      WriteResponse(conn, response);
      return;
    }
    case Method::kQuery:
      break;
  }

  // Admission control for queries.
  const int64_t deadline_ms = request.deadline_ms > 0
                                  ? request.deadline_ms
                                  : options_.default_deadline_ms;
  Task task;
  task.deadline = now + std::chrono::milliseconds(deadline_ms);
  task.enqueued = now;
  task.conn = conn;
  const int64_t id = request.id;
  task.request = std::move(request);

  if (draining_.load(std::memory_order_acquire)) {
    Response response;
    response.id = id;
    response.status = StatusCode::kUnavailable;
    response.error = "server is draining";
    response.retry_after_ms = options_.retry_after_ms;
    WriteResponse(conn, response);
    return;
  }
  if (!queue_.TryPush(std::move(task))) {
    // Load shedding: reject now with a backoff hint rather than queueing
    // beyond capacity.
    Response response;
    response.id = id;
    response.status = StatusCode::kOverloaded;
    response.retry_after_ms = options_.retry_after_ms;
    IPIN_COUNTER_ADD("serve.requests.shed", 1);
    WriteResponse(conn, response);
    return;
  }
  IPIN_COUNTER_ADD("serve.requests.accepted", 1);
  IPIN_GAUGE_SET("serve.queue.depth", queue_.Depth());
}

void OracleServer::WorkerLoop() {
  while (true) {
    auto task = queue_.Pop();
    if (!task.has_value()) return;  // drained and empty
    IPIN_GAUGE_SET("serve.queue.depth", queue_.Depth());
    const Clock::time_point now = Clock::now();
    IPIN_HISTOGRAM_RECORD("serve.queue.wait_us",
                          ToMicros(now - task->enqueued));

    // During drain, requests older than the drain deadline are answered
    // immediately; the rest still get evaluated.
    const bool past_drain =
        draining_.load(std::memory_order_acquire) && now >= drain_deadline_;

    Response response;
    if (now >= task->deadline || past_drain) {
      // Early drop at dequeue: an expired request never occupies a worker
      // for evaluation.
      response.id = task->request.id;
      response.status = StatusCode::kDeadlineExceeded;
      response.epoch = index_->Epoch();
      IPIN_COUNTER_ADD("serve.requests.deadline_exceeded", 1);
    } else {
      IPIN_LATENCY_SCOPE("serve.latency.query_us");
      response = EvaluateQuery(task->request, task->deadline);
    }
    WriteResponse(task->conn, response);
  }
}

Response OracleServer::EvaluateQuery(const Request& request,
                                     Clock::time_point deadline) {
  Response response;
  response.id = request.id;

  // Snapshot the epoch: the whole evaluation runs on this index even if a
  // reload swaps the manager's pointer mid-query.
  const std::shared_ptr<const IrsApprox> index = index_->Current();
  response.epoch = index_->Epoch();
  if (index == nullptr) {
    response.status = StatusCode::kUnavailable;
    response.error = "no index loaded";
    response.retry_after_ms = options_.retry_after_ms;
    return response;
  }
  for (const NodeId seed : request.seeds) {
    if (static_cast<size_t>(seed) >= index->num_nodes()) {
      response.status = StatusCode::kBadRequest;
      response.error = "seed out of range";
      IPIN_COUNTER_ADD("serve.requests.bad", 1);
      return response;
    }
  }

  bool answered = false;
  bool degraded = false;
  double estimate = 0.0;

  // Exact attempt: bounded by both the request deadline and the server's
  // exact-latency budget, so a miss leaves time for the sketch fallback.
  const bool want_exact = request.mode != QueryMode::kSketch;
  if (want_exact) {
    const std::shared_ptr<const IrsExact> exact = index_->Exact();
    if (exact == nullptr || exact->num_nodes() < index->num_nodes()) {
      // Exact map unloaded (or stale vs. the serving index): "exact"
      // explicitly asked for it, so its answer is degraded; "auto" treats
      // sketch-only service as the normal case.
      degraded = request.mode == QueryMode::kExact;
    } else {
      QueryBudget budget;
      budget.deadline = std::min(
          deadline, Clock::now() + std::chrono::milliseconds(
                                       options_.exact_budget_ms));
      // serve.eval: delay mode burns the exact budget (a slow evaluation),
      // error mode fails the attempt outright — both degrade to sketch.
      const bool eval_fault = IPIN_FAILPOINT("serve.eval").fail;
      if (!eval_fault) {
        const ExactInfluenceOracle oracle(exact.get());
        const BudgetedValue result =
            oracle.InfluenceOfSetBudgeted(request.seeds, budget);
        if (!result.exceeded) {
          estimate = result.value;
          answered = true;
        }
      }
      if (!answered) degraded = true;
    }
  }

  if (!answered) {
    const SketchInfluenceOracle oracle(index.get());
    QueryBudget budget;
    budget.deadline = deadline;
    const BudgetedValue result =
        oracle.InfluenceOfSetBudgeted(request.seeds, budget);
    if (result.exceeded) {
      response.status = StatusCode::kDeadlineExceeded;
      IPIN_COUNTER_ADD("serve.requests.deadline_exceeded", 1);
      return response;
    }
    estimate = result.value;
  }

  if (Clock::now() >= deadline) {
    // The answer exists but arrived too late to be truthful about.
    response.status = StatusCode::kDeadlineExceeded;
    IPIN_COUNTER_ADD("serve.requests.deadline_exceeded", 1);
    return response;
  }
  response.status = StatusCode::kOk;
  response.estimate = estimate;
  response.degraded = degraded;
  IPIN_COUNTER_ADD("serve.requests.ok", 1);
  if (degraded) IPIN_COUNTER_ADD("serve.requests.degraded", 1);
  return response;
}

Response OracleServer::StatsResponse(int64_t id) {
  Response response;
  response.id = id;
  response.status = StatusCode::kOk;
  response.epoch = index_->Epoch();
  const std::shared_ptr<const IrsApprox> index = index_->Current();
  size_t active;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    active = active_connections_;
  }
  response.info = {
      {"queue_depth", static_cast<double>(queue_.Depth())},
      {"queue_capacity", static_cast<double>(options_.queue_capacity)},
      {"workers", static_cast<double>(options_.num_workers)},
      {"connections_active", static_cast<double>(active)},
      {"num_nodes",
       index == nullptr ? 0.0 : static_cast<double>(index->num_nodes())},
      {"exact_loaded", index_->Exact() != nullptr ? 1.0 : 0.0},
      {"draining", draining_.load(std::memory_order_acquire) ? 1.0 : 0.0},
  };
  return response;
}

void OracleServer::WriteResponse(const std::shared_ptr<Connection>& conn,
                                 const Response& response) {
  if (conn->broken.load(std::memory_order_acquire)) return;
  const std::string line = SerializeResponse(response);
  std::lock_guard<std::mutex> lock(conn->write_mu);
  if (!WriteAll(conn->fd, line)) {
    conn->broken.store(true, std::memory_order_release);
  }
}

void OracleServer::Shutdown() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  LogInfo("serve: draining");
  drain_deadline_ =
      Clock::now() + std::chrono::milliseconds(options_.drain_deadline_ms);
  draining_.store(true, std::memory_order_release);

  // 1. Stop accepting connections.
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (!options_.unix_socket_path.empty()) {
    ::unlink(options_.unix_socket_path.c_str());
  }

  // 2. Stop reading new requests: half-close every connection. Responses
  // for queued work still go out on the write side.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& slot : readers_) ::shutdown(slot.conn->fd, SHUT_RD);
  }

  // 3. Drain the queue: workers answer everything still in it (evaluating
  // while the drain deadline allows), then exit on the empty signal.
  queue_.Drain();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();

  // 4. Readers have seen EOF by now; join and release the connections
  // (closing each fd once its last in-flight response holder is gone).
  std::vector<ReaderSlot> readers;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    readers.swap(readers_);
  }
  for (auto& slot : readers) {
    if (slot.thread.joinable()) slot.thread.join();
  }
  IPIN_GAUGE_SET("serve.queue.depth", 0);
  LogInfo("serve: drained, all workers stopped");
}

}  // namespace ipin::serve
