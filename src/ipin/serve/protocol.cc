#include "ipin/serve/protocol.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "ipin/common/json.h"
#include "ipin/common/string_util.h"

namespace ipin::serve {
namespace {

// Serialization stays hand-rolled (like obs/export.cc): the reader side uses
// common/json, the writer side controls its bytes exactly.

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

const char* MethodName(Method method) {
  switch (method) {
    case Method::kQuery:
      return "query";
    case Method::kTopk:
      return "topk";
    case Method::kHealth:
      return "health";
    case Method::kStats:
      return "stats";
    case Method::kReload:
      return "reload";
    case Method::kMetrics:
      return "metrics";
    case Method::kDebug:
      return "debug";
    case Method::kReshardStatus:
      return "reshard_status";
  }
  return "query";
}

const char* ModeName(QueryMode mode) {
  switch (mode) {
    case QueryMode::kSketch:
      return "sketch";
    case QueryMode::kExact:
      return "exact";
    case QueryMode::kAuto:
      return "auto";
  }
  return "auto";
}

bool Fail(std::string* error, const char* reason) {
  if (error != nullptr) *error = reason;
  return false;
}

// JSON numbers arrive as doubles; a cast that leaves the destination's
// range is undefined behavior, so every integer field goes through one of
// these. Clamping to +/-2^53 keeps the value exactly representable.
int64_t ToClampedInt64(double v) {
  constexpr double kLimit = 9007199254740992.0;  // 2^53
  if (!std::isfinite(v)) return 0;
  return static_cast<int64_t>(std::clamp(v, -kLimit, kLimit));
}

bool IsValidNodeIdNumber(double v) {
  return std::isfinite(v) && v >= 0.0 &&
         v <= static_cast<double>(std::numeric_limits<NodeId>::max()) &&
         std::trunc(v) == v;
}

// Parses the optional hex trace-context field `key`. True on success (value
// absent counts, leaving *out at 0); false fails the request.
bool ParseTraceField(const JsonValue& doc, const char* key, uint64_t* out,
                     std::string* error) {
  *out = 0;
  const JsonValue* value = doc.Find(key);
  if (value == nullptr) return true;
  if (!value->is_string()) {
    Fail(error, "trace ids must be hex strings");
    return false;
  }
  const auto id = TraceIdFromHex(value->string_value());
  if (!id.has_value()) {
    Fail(error, "trace ids must be 1-16 hex digits");
    return false;
  }
  *out = *id;
  return true;
}

}  // namespace

std::string TraceIdToHex(uint64_t id) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(id));
  return buf;
}

std::optional<uint64_t> TraceIdFromHex(std::string_view hex) {
  if (hex.empty() || hex.size() > 16) return std::nullopt;
  uint64_t value = 0;
  for (const char c : hex) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      return std::nullopt;
    }
    value = (value << 4) | static_cast<uint64_t>(digit);
  }
  return value;
}

std::string RanksToHex(const std::vector<uint8_t>& ranks) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(ranks.size() * 2);
  for (const uint8_t rank : ranks) {
    out += kDigits[rank >> 4];
    out += kDigits[rank & 0xf];
  }
  return out;
}

std::optional<std::vector<uint8_t>> RanksFromHex(std::string_view hex) {
  if (hex.size() % 2 != 0) return std::nullopt;
  std::vector<uint8_t> ranks;
  ranks.reserve(hex.size() / 2);
  int acc = 0;
  for (size_t i = 0; i < hex.size(); ++i) {
    const char c = hex[i];
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      return std::nullopt;
    }
    if (i % 2 == 0) {
      acc = digit << 4;
    } else {
      ranks.push_back(static_cast<uint8_t>(acc | digit));
    }
  }
  return ranks;
}

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kBadRequest:
      return "BAD_REQUEST";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kOverloaded:
      return "OVERLOADED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "INTERNAL";
}

std::optional<StatusCode> StatusCodeFromName(std::string_view name) {
  for (const StatusCode code :
       {StatusCode::kOk, StatusCode::kBadRequest, StatusCode::kDeadlineExceeded,
        StatusCode::kOverloaded, StatusCode::kUnavailable,
        StatusCode::kInternal}) {
    if (name == StatusCodeName(code)) return code;
  }
  return std::nullopt;
}

std::optional<Request> ParseRequest(std::string_view line, std::string* error,
                                    int64_t* id_out) {
  const auto doc = JsonValue::Parse(line);
  if (!doc.has_value() || !doc->is_object()) {
    Fail(error, "request is not a JSON object");
    return std::nullopt;
  }
  Request request;
  request.id = ToClampedInt64(doc->FindNumber("id", 0.0));
  if (id_out != nullptr) *id_out = request.id;

  const std::string method = doc->FindString("method", "query");
  if (method == "query") {
    request.method = Method::kQuery;
  } else if (method == "topk") {
    request.method = Method::kTopk;
  } else if (method == "health") {
    request.method = Method::kHealth;
  } else if (method == "stats") {
    request.method = Method::kStats;
  } else if (method == "reload") {
    request.method = Method::kReload;
  } else if (method == "metrics") {
    request.method = Method::kMetrics;
  } else if (method == "debug") {
    request.method = Method::kDebug;
  } else if (method == "reshard_status") {
    request.method = Method::kReshardStatus;
  } else {
    Fail(error, "unknown method");
    return std::nullopt;
  }

  const std::string format = doc->FindString("format", "prom");
  if (format == "prom") {
    request.format = MetricsFormat::kPrometheus;
  } else if (format == "json") {
    request.format = MetricsFormat::kJson;
  } else {
    Fail(error, "unknown format");
    return std::nullopt;
  }

  if (!ParseTraceField(*doc, "trace_id", &request.trace_id, error) ||
      !ParseTraceField(*doc, "parent_span", &request.parent_span, error)) {
    return std::nullopt;
  }

  const std::string mode = doc->FindString("mode", "auto");
  if (mode == "sketch") {
    request.mode = QueryMode::kSketch;
  } else if (mode == "exact") {
    request.mode = QueryMode::kExact;
  } else if (mode == "auto") {
    request.mode = QueryMode::kAuto;
  } else {
    Fail(error, "unknown mode");
    return std::nullopt;
  }

  const double deadline = doc->FindNumber("deadline_ms", 0.0);
  if (deadline < 0) {
    Fail(error, "negative deadline_ms");
    return std::nullopt;
  }
  request.deadline_ms = ToClampedInt64(deadline);

  request.k = ToClampedInt64(doc->FindNumber("k", 10.0));
  if (request.method == Method::kTopk && request.k < 1) {
    Fail(error, "topk needs k >= 1");
    return std::nullopt;
  }
  const JsonValue* want_ranks = doc->Find("want_ranks");
  request.want_ranks =
      want_ranks != nullptr && want_ranks->is_bool() && want_ranks->bool_value();

  const JsonValue* seeds = doc->Find("seeds");
  if (seeds != nullptr) {
    if (!seeds->is_array()) {
      Fail(error, "seeds is not an array");
      return std::nullopt;
    }
    request.seeds.reserve(seeds->array_items().size());
    for (const JsonValue& s : seeds->array_items()) {
      if (!s.is_number() || !IsValidNodeIdNumber(s.number_value())) {
        Fail(error, "seed is not a non-negative integer node id");
        return std::nullopt;
      }
      request.seeds.push_back(static_cast<NodeId>(s.number_value()));
    }
  }
  if (request.method == Method::kQuery && request.seeds.empty()) {
    Fail(error, "query without seeds");
    return std::nullopt;
  }
  return request;
}

std::string SerializeRequest(const Request& request) {
  std::string out = "{\"id\": " + std::to_string(request.id) +
                    ", \"method\": \"" + MethodName(request.method) + "\"";
  if (request.method == Method::kQuery) {
    out += ", \"seeds\": [";
    for (size_t i = 0; i < request.seeds.size(); ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(request.seeds[i]);
    }
    out += "], \"mode\": \"";
    out += ModeName(request.mode);
    out += "\"";
  }
  if (request.method == Method::kQuery && request.want_ranks) {
    out += ", \"want_ranks\": true";
  }
  if (request.method == Method::kTopk) {
    out += ", \"k\": " + std::to_string(request.k);
  }
  if (request.method == Method::kMetrics &&
      request.format != MetricsFormat::kPrometheus) {
    out += ", \"format\": \"json\"";
  }
  if (request.deadline_ms > 0) {
    out += ", \"deadline_ms\": " + std::to_string(request.deadline_ms);
  }
  if (request.trace_id != 0) {
    out += ", \"trace_id\": \"" + TraceIdToHex(request.trace_id) + "\"";
  }
  if (request.parent_span != 0) {
    out += ", \"parent_span\": \"" + TraceIdToHex(request.parent_span) + "\"";
  }
  out += "}\n";
  return out;
}

std::optional<Response> ParseResponse(std::string_view line) {
  const auto doc = JsonValue::Parse(line);
  if (!doc.has_value() || !doc->is_object()) return std::nullopt;
  Response response;
  response.id = ToClampedInt64(doc->FindNumber("id", 0.0));
  const auto status = StatusCodeFromName(doc->FindString("status", ""));
  if (!status.has_value()) return std::nullopt;
  response.status = *status;
  response.estimate = doc->FindNumber("estimate", 0.0);
  const JsonValue* degraded = doc->Find("degraded");
  response.degraded =
      degraded != nullptr && degraded->is_bool() && degraded->bool_value();
  const std::string ranks_hex = doc->FindString("ranks", "");
  if (!ranks_hex.empty()) {
    auto ranks = RanksFromHex(ranks_hex);
    if (!ranks.has_value()) return std::nullopt;
    response.ranks = std::move(*ranks);
  }
  const JsonValue* topk = doc->Find("topk");
  if (topk != nullptr) {
    if (!topk->is_array()) return std::nullopt;
    response.topk.reserve(topk->array_items().size());
    for (const JsonValue& pair : topk->array_items()) {
      if (!pair.is_array() || pair.array_items().size() != 2) {
        return std::nullopt;
      }
      const JsonValue& node = pair.array_items()[0];
      const JsonValue& estimate = pair.array_items()[1];
      if (!node.is_number() || !IsValidNodeIdNumber(node.number_value()) ||
          !estimate.is_number()) {
        return std::nullopt;
      }
      response.topk.emplace_back(static_cast<NodeId>(node.number_value()),
                                 estimate.number_value());
    }
  }
  response.epoch = static_cast<uint64_t>(
      std::max<int64_t>(0, ToClampedInt64(doc->FindNumber("epoch", 0.0))));
  response.shards_total = ToClampedInt64(doc->FindNumber("shards_total", 0.0));
  response.shards_answered =
      ToClampedInt64(doc->FindNumber("shards_answered", 0.0));
  response.coverage = doc->FindNumber("coverage", 0.0);
  response.retry_after_ms = ToClampedInt64(doc->FindNumber("retry_after_ms", 0.0));
  response.error = doc->FindString("error", "");
  const auto trace_id = TraceIdFromHex(doc->FindString("trace_id", ""));
  response.trace_id = trace_id.value_or(0);
  response.payload = doc->FindString("payload", "");
  const JsonValue* info = doc->Find("info");
  if (info != nullptr && info->is_object()) {
    for (const auto& [key, value] : info->object_items()) {
      if (value.is_number()) response.info.emplace_back(key, value.number_value());
    }
  }
  return response;
}

std::string SerializeResponse(const Response& response) {
  std::string out = "{\"id\": " + std::to_string(response.id) +
                    ", \"status\": \"" + StatusCodeName(response.status) + "\"";
  if (response.status == StatusCode::kOk) {
    out += ", \"estimate\": " + JsonNumber(response.estimate);
    out += response.degraded ? ", \"degraded\": true" : ", \"degraded\": false";
  }
  if (!response.ranks.empty()) {
    out += ", \"ranks\": \"" + RanksToHex(response.ranks) + "\"";
  }
  if (!response.topk.empty()) {
    out += ", \"topk\": [";
    for (size_t i = 0; i < response.topk.size(); ++i) {
      if (i > 0) out += ", ";
      out += "[" + std::to_string(response.topk[i].first) + ", " +
             JsonNumber(response.topk[i].second) + "]";
    }
    out += "]";
  }
  out += ", \"epoch\": " + std::to_string(response.epoch);
  if (response.shards_total > 0) {
    out += ", \"shards_total\": " + std::to_string(response.shards_total);
    out += ", \"shards_answered\": " + std::to_string(response.shards_answered);
    out += ", \"coverage\": " + JsonNumber(response.coverage);
  }
  if (response.retry_after_ms > 0) {
    out += ", \"retry_after_ms\": " + std::to_string(response.retry_after_ms);
  }
  if (!response.error.empty()) {
    out += ", \"error\": \"" + JsonEscape(response.error) + "\"";
  }
  if (response.trace_id != 0) {
    out += ", \"trace_id\": \"" + TraceIdToHex(response.trace_id) + "\"";
  }
  if (!response.payload.empty()) {
    out += ", \"payload\": \"" + JsonEscape(response.payload) + "\"";
  }
  if (!response.info.empty()) {
    out += ", \"info\": {";
    for (size_t i = 0; i < response.info.size(); ++i) {
      if (i > 0) out += ", ";
      out += '"';
      out += JsonEscape(response.info[i].first);
      out += "\": ";
      out += JsonNumber(response.info[i].second);
    }
    out += "}";
  }
  out += "}\n";
  return out;
}

}  // namespace ipin::serve
