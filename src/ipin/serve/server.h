#ifndef IPIN_SERVE_SERVER_H_
#define IPIN_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "ipin/common/thread_pool.h"
#include "ipin/obs/window.h"
#include "ipin/serve/flight_recorder.h"
#include "ipin/serve/index_manager.h"
#include "ipin/serve/protocol.h"
#include "ipin/serve/queue.h"

// The influence-oracle daemon core: a multi-threaded server speaking the
// newline-delimited JSON protocol of protocol.h over a Unix-domain or
// localhost-TCP socket. Robustness model (DESIGN.md §9):
//
//   * Admission control. Parsed query requests go through a bounded queue
//     (BoundedQueue); when it is full the reader answers OVERLOADED with a
//     retry_after_ms hint instead of queueing — offered load beyond
//     capacity is shed at the door and the queue-depth gauge stays bounded.
//   * Deadlines. Every query carries a deadline (its own or the server
//     default) fixed at admission. Workers re-check it at dequeue (an
//     expired request is answered DEADLINE_EXCEEDED without evaluation) and
//     evaluation itself runs under a QueryBudget, so one oversized query
//     cannot hold a worker past its deadline.
//   * Graceful degradation. "exact"/"auto" queries run the exact oracle
//     under an exact-latency budget; when the budget trips, the exact map
//     is unloaded, or an eval fault is injected, the worker falls back to
//     the sketch estimate and sets degraded=true.
//   * Hot reload. Queries snapshot the IndexManager epoch; reloads swap it
//     atomically and roll back on any validation failure (old epoch keeps
//     serving). Reload requests are handed to a dedicated reload thread,
//     so a slow or wedged reload never occupies a query worker or a
//     connection reader.
//   * Slow-consumer protection. Response writes carry a send timeout
//     (write_timeout_ms); a client that pipelines requests but never reads
//     its socket gets its connection marked broken and torn down instead
//     of wedging the reader or a worker in a blocking send forever.
//   * Graceful shutdown. Shutdown() stops accepting, rejects new requests,
//     answers everything already queued (evaluated if the drain deadline
//     allows, DEADLINE_EXCEEDED otherwise), flushes the responses, then
//     joins every thread. The write timeout and the drain deadline bound
//     every join except a reload wedged inside the index loader, which is
//     detached (and logged) rather than waited on forever.
//
// Failpoint sites: serve.accept (drop fresh connections), serve.read
// (connection read errors), serve.eval (slow/failed exact evaluation,
// forcing degradation), serve.reload (see IndexManager).
//
// Observability (all under serve.*): requests.{accepted,ok,shed,
// deadline_exceeded,degraded,bad}, queue.depth, queue.wait_us,
// connections.active, latency.{query,health,stats,reload}_us, index.epoch,
// reload.{ok,rollback}, audit.{sampled,completed,zero_truth},
// audit.rel_error_{abs,over,under}_pm.
//
// Request observability (the tentpole of DESIGN.md §7):
//
//   * Trace context. Every query carries a 64-bit trace id — the client's,
//     or one the server assigns at admission. The id links the request's
//     stages (serve.request / serve.queue / serve.eval / serve.write) as
//     Chrome-trace async events on one lane, tags slow-query and
//     degradation log lines, and is echoed in the response.
//   * Live introspection. A WindowedAggregator samples the metrics
//     registry once a second; "stats" answers carry trailing-window rates
//     and percentiles (win_qps, win_p99_us, ...) and the "metrics" verb
//     returns the full registry (Prometheus text or JSON) inline — both
//     work under a full queue.
//   * Flight recorder. Every completed query (including shed and expired
//     ones) lands in a bounded ring with per-stage timings; queries over
//     slow_query_us additionally land in a separate slow ring and log a
//     warning. The "debug" verb (and SIGUSR1 in ipin_oracled) dumps both.
//   * Accuracy audit. A deterministic 1-in-N sample of sketch-served
//     answers is re-evaluated exactly off the hot path (on the shared
//     global pool) when the exact map is loaded; signed relative error
//     lands in the serve.audit.rel_error_* histograms, so sketch drift is
//     visible in production without a benchmark run.
//
// Under -DIPIN_OBS_DISABLED the trace events, windowed stats, and audit
// compile out / stay off; the flight recorder and the metrics/debug verbs
// keep answering (with whatever the registry holds) so the wire protocol
// keeps its shape in every build.

namespace ipin::serve {

struct ServerOptions {
  /// Exactly one of the two endpoints must be set: a Unix-domain socket
  /// path, or a TCP port on 127.0.0.1 (0 = pick an ephemeral port, see
  /// bound_port()).
  std::string unix_socket_path;
  int tcp_port = -1;

  int num_workers = 4;
  size_t queue_capacity = 64;
  size_t max_connections = 64;

  /// Deadline applied when a request does not carry its own.
  int64_t default_deadline_ms = 1000;
  /// Budget for the exact evaluation attempt before degrading to sketch.
  int64_t exact_budget_ms = 50;
  /// Backoff hint attached to OVERLOADED / UNAVAILABLE responses.
  int64_t retry_after_ms = 50;
  /// During Shutdown(), queued requests older than this are answered
  /// DEADLINE_EXCEEDED instead of evaluated.
  int64_t drain_deadline_ms = 2000;
  /// Bound on writing one response to a connection. A peer that stops
  /// reading (full socket buffer) past this is treated as broken and its
  /// connection is torn down — a blocking send never wedges a reader or
  /// worker thread indefinitely.
  int64_t write_timeout_ms = 2000;

  /// Flight recorder: last N completed queries, last M slow ones, and the
  /// total-latency threshold (microseconds) that makes a query "slow".
  size_t flight_recorder_size = 256;
  size_t flight_slow_size = 64;
  int64_t slow_query_us = 100000;
  /// Fraction of sketch-served answers re-evaluated exactly off the hot
  /// path (0 disables the audit; 0.01 = every ~100th answer). Requires the
  /// exact map to be loaded; no-op under -DIPIN_OBS_DISABLED.
  double audit_rate = 0.0;
  /// Trailing window (seconds) for the win_* fields of the stats verb.
  int64_t stats_window_s = 10;

  /// Identity of this daemon inside a sharded deployment (ipin_oracled
  /// --shard_id/--shard_count), echoed by the stats verb so operators and
  /// drills can tell shards apart. -1/0 = not a shard.
  int shard_id = -1;
  int shard_count = 0;
};

class OracleServer {
 public:
  /// `index` must outlive the server.
  OracleServer(IndexManager* index, ServerOptions options);
  ~OracleServer();

  OracleServer(const OracleServer&) = delete;
  OracleServer& operator=(const OracleServer&) = delete;

  /// Binds, listens, and spawns the acceptor + worker threads. False (with
  /// a logged reason) on bind/listen failure.
  bool Start();

  /// Graceful drain as described above. Idempotent.
  void Shutdown();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Port actually bound (TCP mode; useful with tcp_port = 0).
  int bound_port() const { return bound_port_; }

  /// Current queue depth (bounded by options().queue_capacity).
  size_t queue_depth() const { return queue_.Depth(); }

  /// The flight recorder's "ipin.debug.v1" dump (same document the "debug"
  /// verb returns) — for SIGUSR1 handlers and tests.
  std::string DebugDump() const { return flight_.DumpJson(); }

  const FlightRecorder& flight_recorder() const { return flight_; }

  const ServerOptions& options() const { return options_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Connection;

  struct Task {
    Request request;
    Clock::time_point deadline;
    Clock::time_point enqueued;
    /// Time spent in parse + admission before the queue push.
    int64_t admission_us = 0;
    std::shared_ptr<Connection> conn;
  };

  // Reload requests run on a dedicated thread; the state it shares with
  // the server is refcounted so a wedged reload can be detached at
  // shutdown without dangling anything.
  struct ReloadState;

  void AcceptLoop();
  void ReadLoop(std::shared_ptr<Connection> conn);
  void WorkerLoop();
  void ReapFinishedReaders();
  void StopReloadThread();

  /// Admission decision + queueing for one parsed request; answers
  /// health/stats/metrics/debug inline and hands reloads to the reload
  /// thread.
  void HandleRequest(const std::shared_ptr<Connection>& conn,
                     Request&& request);
  Response EvaluateQuery(const Request& request, Clock::time_point deadline);
  Response StatsResponse(const Request& request);
  /// Records a query rejected before it reached a worker (shed / drain).
  void RecordRejected(uint64_t trace_id, int64_t id, QueryMode mode,
                      size_t num_seeds, StatusCode status,
                      Clock::time_point received);
#ifndef IPIN_OBS_DISABLED
  /// Maybe re-evaluates a sketch-served answer exactly, off the hot path.
  void MaybeAudit(const IndexSnapshot& snapshot,
                  const std::vector<NodeId>& seeds, double estimate);
#endif

  /// Static (no `this`): also called from the reload thread, which may
  /// outlive the server if a wedged reload forces a detach.
  static void WriteResponse(const std::shared_ptr<Connection>& conn,
                            const Response& response,
                            int64_t write_timeout_ms);

  IndexManager* const index_;
  const ServerOptions options_;

  int listen_fd_ = -1;
  int bound_port_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  Clock::time_point drain_deadline_{};

  BoundedQueue<Task> queue_;
  std::thread acceptor_;
  // Query workers run as num_workers long-lived WorkerLoop tasks on the
  // shared pool abstraction (common/thread_pool.h); Shutdown drains the
  // queue (WorkerLoop exits on the empty signal) and resets the pool,
  // whose destructor joins.
  std::unique_ptr<ThreadPool> worker_pool_;
  std::shared_ptr<ReloadState> reload_state_;
  std::thread reload_thread_;

  std::mutex conns_mu_;
  struct ReaderSlot {
    std::thread thread;
    std::shared_ptr<Connection> conn;
  };
  std::vector<ReaderSlot> readers_;
  size_t active_connections_ = 0;

  FlightRecorder flight_;
  obs::WindowedAggregator window_;
  /// Server-assigned trace ids for requests that arrive without one.
  std::atomic<uint64_t> next_trace_id_{1};
  /// Deterministic 1-in-audit_every_ sampling (0 = audit disabled).
  uint64_t audit_every_ = 0;
  std::atomic<uint64_t> audit_tick_{0};
};

}  // namespace ipin::serve

#endif  // IPIN_SERVE_SERVER_H_
