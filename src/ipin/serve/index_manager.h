#ifndef IPIN_SERVE_INDEX_MANAGER_H_
#define IPIN_SERVE_INDEX_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "ipin/core/irs_approx.h"
#include "ipin/core/irs_exact.h"

// Epoch-swapped ownership of the serving index. Queries snapshot the current
// index as a shared_ptr and keep computing on it while a reload swaps the
// pointer underneath — in-flight requests always finish on the epoch they
// started on, and the old index is freed when its last query completes.
//
// Reloads go through oracle_io's validating loader (CRC-framed sections from
// the crash-safety layer). A file that is missing, truncated, corrupt, or
// even partially damaged (degraded load) is REJECTED for serving: the old
// index stays installed ("rollback"), serve.reload.rollback is incremented
// and an error is logged — the daemon alerts instead of crashing or silently
// serving a worse index than it already has. Only a fully verified load
// advances the epoch (serve.reload.ok).
//
// The optional exact-summary map supports the "exact" query mode; it is
// installed in-process (SetExact) and can be dropped under memory pressure
// (UnloadExact) — queries then degrade to the sketch estimate.

namespace ipin::serve {

/// A consistent view of the serving state, taken under one lock
/// acquisition: `epoch` is the epoch `index`/`exact` were installed at,
/// never the epoch of a reload that landed between two reads.
struct IndexSnapshot {
  std::shared_ptr<const IrsApprox> index;
  std::shared_ptr<const IrsExact> exact;
  uint64_t epoch = 0;
};

/// Outcome of one reload attempt.
enum class ReloadStatus {
  kOk,          // new index verified and swapped in; epoch advanced
  kRolledBack,  // new file rejected (missing/corrupt/degraded); old index
                // (if any) keeps serving
  kNoChange,    // reload skipped: file unchanged since the last attempt
};

class IndexManager {
 public:
  /// `index_path` is the file Reload() reads. May be empty for in-process
  /// use (tests, benches) — then Install() is the only way to load.
  explicit IndexManager(std::string index_path);
  ~IndexManager();

  IndexManager(const IndexManager&) = delete;
  IndexManager& operator=(const IndexManager&) = delete;

  /// Installs an in-memory index (first epoch or test swap).
  void Install(std::shared_ptr<const IrsApprox> index);

  /// Installs/drops the exact-summary map.
  void SetExact(std::shared_ptr<const IrsExact> exact);
  void UnloadExact() { SetExact(nullptr); }

  /// Loads index_path through the validating loader and swaps it in if (and
  /// only if) every section verifies. Failpoint "serve.reload": error mode
  /// forces the rollback path, delay mode simulates a slow load (the old
  /// index keeps serving throughout — Current() never blocks on a reload).
  /// `force` bypasses the file-unchanged short-circuit.
  ReloadStatus Reload(bool force = true);

  /// Starts/stops a background thread that polls the file every
  /// `check_interval_ms` and reloads when its mtime or size changed.
  void StartWatcher(int64_t check_interval_ms);
  void StopWatcher();

  /// The serving snapshot: nullptr when nothing was ever loaded.
  std::shared_ptr<const IrsApprox> Current() const;
  std::shared_ptr<const IrsExact> Exact() const;

  /// Index + exact map + epoch under one lock: use this wherever a
  /// response reports the epoch an answer was computed on, so a reload
  /// landing between separate Current()/Epoch() calls cannot skew it.
  IndexSnapshot Snapshot() const;

  /// Epoch of the installed index; 0 = nothing installed yet. Each
  /// successful Install/Reload increments it.
  uint64_t Epoch() const { return epoch_.load(std::memory_order_acquire); }

  const std::string& index_path() const { return index_path_; }

 private:
  struct FileStamp {
    int64_t mtime_ns = -1;
    int64_t size = -1;
    bool operator==(const FileStamp&) const = default;
  };
  static FileStamp StampOf(const std::string& path);

  const std::string index_path_;

  mutable std::mutex mu_;  // guards current_, exact_, last_stamp_
  std::shared_ptr<const IrsApprox> current_;
  std::shared_ptr<const IrsExact> exact_;
  FileStamp last_stamp_;
  // Written only under mu_ (so Snapshot() is consistent); atomic so the
  // fast Epoch() read stays lock-free.
  std::atomic<uint64_t> epoch_{0};

  // Serializes reload attempts (watcher vs. request-triggered).
  std::mutex reload_mu_;

  std::mutex watcher_mu_;
  std::condition_variable watcher_cv_;
  std::thread watcher_;
  bool watcher_stop_ = false;
};

}  // namespace ipin::serve

#endif  // IPIN_SERVE_INDEX_MANAGER_H_
