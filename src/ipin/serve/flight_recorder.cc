#include "ipin/serve/flight_recorder.h"

#include <algorithm>

#include "ipin/common/string_util.h"

namespace ipin::serve {
namespace {

const char* ModeName(QueryMode mode) {
  switch (mode) {
    case QueryMode::kSketch:
      return "sketch";
    case QueryMode::kExact:
      return "exact";
    case QueryMode::kAuto:
      return "auto";
  }
  return "auto";
}

void AppendRecordJson(const RequestRecord& record,
                      std::chrono::steady_clock::time_point now,
                      std::string* out) {
  const int64_t age_us =
      std::chrono::duration_cast<std::chrono::microseconds>(now -
                                                            record.completed)
          .count();
  if (record.shard >= 0) {
    out->append(StrFormat("{\"shard\":%d,", record.shard));
  } else {
    out->append("{");
  }
  out->append(StrFormat(
      "\"trace_id\":\"%s\",\"id\":%lld,\"mode\":\"%s\",\"status\":\"%s\","
      "\"degraded\":%s,\"seeds\":%zu,\"epoch\":%llu,\"age_us\":%lld,"
      "\"admission_us\":%lld,\"queue_us\":%lld,\"eval_us\":%lld,"
      "\"write_us\":%lld,\"total_us\":%lld}",
      TraceIdToHex(record.trace_id).c_str(),
      static_cast<long long>(record.id), ModeName(record.mode),
      StatusCodeName(record.status), record.degraded ? "true" : "false",
      record.num_seeds, static_cast<unsigned long long>(record.epoch),
      static_cast<long long>(age_us),
      static_cast<long long>(record.admission_us),
      static_cast<long long>(record.queue_us),
      static_cast<long long>(record.eval_us),
      static_cast<long long>(record.write_us),
      static_cast<long long>(record.total_us)));
}

}  // namespace

void FlightRecorder::Ring::Push(const RequestRecord& record) {
  if (capacity == 0) return;
  if (slots.size() < capacity) {
    slots.push_back(record);
  } else {
    slots[next % capacity] = record;
  }
  ++next;
}

std::vector<RequestRecord> FlightRecorder::Ring::OldestFirst() const {
  std::vector<RequestRecord> out;
  out.reserve(slots.size());
  if (slots.size() < capacity) {
    out = slots;  // not yet wrapped: insertion order is age order
  } else {
    for (size_t i = 0; i < capacity; ++i) {
      out.push_back(slots[(next + i) % capacity]);
    }
  }
  return out;
}

FlightRecorder::FlightRecorder(size_t recent_capacity, size_t slow_capacity,
                               int64_t slow_threshold_us)
    : slow_threshold_us_(slow_threshold_us),
      recent_(recent_capacity),
      slow_(slow_capacity) {}

void FlightRecorder::Record(RequestRecord record) {
  record.completed = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  ++recorded_;
  recent_.Push(record);
  if (record.total_us > slow_threshold_us_) {
    ++slow_recorded_;
    slow_.Push(record);
  }
}

std::string FlightRecorder::DumpJson() const {
  const auto now = std::chrono::steady_clock::now();
  std::vector<RequestRecord> recent;
  std::vector<RequestRecord> slow;
  uint64_t recorded;
  uint64_t slow_recorded;
  {
    std::lock_guard<std::mutex> lock(mu_);
    recent = recent_.OldestFirst();
    slow = slow_.OldestFirst();
    recorded = recorded_;
    slow_recorded = slow_recorded_;
  }
  std::string out = StrFormat(
      "{\"schema\":\"ipin.debug.v1\",\"slow_threshold_us\":%lld,"
      "\"recorded\":%llu,\"slow_recorded\":%llu,\"recent\":[",
      static_cast<long long>(slow_threshold_us_),
      static_cast<unsigned long long>(recorded),
      static_cast<unsigned long long>(slow_recorded));
  for (size_t i = 0; i < recent.size(); ++i) {
    if (i > 0) out += ',';
    AppendRecordJson(recent[i], now, &out);
  }
  out += "],\"slow\":[";
  for (size_t i = 0; i < slow.size(); ++i) {
    if (i > 0) out += ',';
    AppendRecordJson(slow[i], now, &out);
  }
  out += "]}";
  return out;
}

std::vector<RequestRecord> FlightRecorder::RecentSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recent_.OldestFirst();
}

std::vector<RequestRecord> FlightRecorder::SlowSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slow_.OldestFirst();
}

uint64_t FlightRecorder::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

uint64_t FlightRecorder::slow_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slow_recorded_;
}

}  // namespace ipin::serve
