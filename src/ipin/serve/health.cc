#include "ipin/serve/health.h"

#include <algorithm>

#include "ipin/common/logging.h"
#include "ipin/common/string_util.h"
#include "ipin/obs/metrics.h"

namespace ipin::serve {

const char* ShardStateName(ShardState state) {
  switch (state) {
    case ShardState::kHealthy:
      return "healthy";
    case ShardState::kSuspect:
      return "suspect";
    case ShardState::kDown:
      return "down";
  }
  return "down";
}

ShardHealthTracker::ShardHealthTracker(size_t num_shards,
                                       ShardHealthOptions options)
    : options_([&options] {
        options.suspect_after = std::max(1, options.suspect_after);
        options.down_after =
            std::max(options.suspect_after, options.down_after);
        options.probe_interval_ms = std::max<int64_t>(1,
                                                      options.probe_interval_ms);
        return options;
      }()),
      shards_(num_shards) {}

bool ShardHealthTracker::AllowRequest(size_t shard) const {
  std::lock_guard<std::mutex> lock(mu_);
  return shards_[shard].state != ShardState::kDown;
}

bool ShardHealthTracker::ProbeDue(size_t shard) {
  std::lock_guard<std::mutex> lock(mu_);
  Shard& s = shards_[shard];
  if (s.state != ShardState::kDown) return false;
  const Clock::time_point now = Clock::now();
  if (now < s.next_probe) return false;
  s.next_probe = now + std::chrono::milliseconds(options_.probe_interval_ms);
  return true;
}

void ShardHealthTracker::OnSuccess(size_t shard) {
  std::lock_guard<std::mutex> lock(mu_);
  Shard& s = shards_[shard];
  s.consecutive_failures = 0;
  if (s.state == ShardState::kHealthy) return;
  const bool was_down = s.state == ShardState::kDown;
  s.state = ShardState::kHealthy;
  if (was_down) {
    IPIN_COUNTER_ADD("serve.shard.health.recovered", 1);
    LogInfo(StrFormat("serve: shard %zu recovered (circuit closed)", shard));
    PublishDownCount();
  }
}

void ShardHealthTracker::OnFailure(size_t shard) {
  std::lock_guard<std::mutex> lock(mu_);
  Shard& s = shards_[shard];
  ++s.consecutive_failures;
  if (s.state == ShardState::kHealthy &&
      s.consecutive_failures >= options_.suspect_after) {
    s.state = ShardState::kSuspect;
    IPIN_COUNTER_ADD("serve.shard.health.suspect", 1);
    LogWarning(StrFormat("serve: shard %zu suspect (%d consecutive failures)",
                         shard, s.consecutive_failures));
  }
  if (s.state == ShardState::kSuspect &&
      s.consecutive_failures >= options_.down_after) {
    s.state = ShardState::kDown;
    // First probe is due immediately: a shard that just died during a
    // restart should come back as fast as the prober can notice.
    s.next_probe = Clock::now();
    IPIN_COUNTER_ADD("serve.shard.health.down", 1);
    LogWarning(StrFormat("serve: shard %zu down (circuit open after %d "
                         "consecutive failures)",
                         shard, s.consecutive_failures));
    PublishDownCount();
  }
}

void ShardHealthTracker::PublishDownCount() const {
  size_t down = 0;
  for (const Shard& s : shards_) {
    if (s.state == ShardState::kDown) ++down;
  }
  IPIN_GAUGE_SET("serve.shard.down_count", static_cast<double>(down));
}

ShardState ShardHealthTracker::state(size_t shard) const {
  std::lock_guard<std::mutex> lock(mu_);
  return shards_[shard].state;
}

int ShardHealthTracker::consecutive_failures(size_t shard) const {
  std::lock_guard<std::mutex> lock(mu_);
  return shards_[shard].consecutive_failures;
}

std::vector<ShardState> ShardHealthTracker::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ShardState> states;
  states.reserve(shards_.size());
  for (const Shard& s : shards_) states.push_back(s.state);
  return states;
}

size_t ShardHealthTracker::DownCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t down = 0;
  for (const Shard& s : shards_) {
    if (s.state == ShardState::kDown) ++down;
  }
  return down;
}

}  // namespace ipin::serve
